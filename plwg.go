// Package plwg is a partitionable light-weight group service: an
// implementation of Rodrigues and Guo, "Partitionable Light-Weight
// Groups" (ICDCS 2000).
//
// Many distributed applications organize processes into large numbers of
// virtually synchronous groups with overlapping membership. Running the
// full virtual-synchrony machinery (failure detection, flush, agreement)
// per group is wasteful; a light-weight group (LWG) service multiplexes
// many user-level groups onto a small pool of heavy-weight groups (HWGs)
// that carry the expensive protocols. This package adds what the paper
// contributes: correct operation across network partitions, including
// reconciliation of the mapping decisions that concurrent partitions
// inevitably make differently.
//
// The library is built around a deterministic discrete-event simulation
// of the paper's testbed (a shared 10 Mbps Ethernet segment), so
// experiments are exactly reproducible. The full protocol stack —
// virtual synchrony, naming service, LWG service — is real protocol code
// exchanging messages through the simulated network.
//
// # Quick start
//
//	cluster, _ := plwg.NewCluster(plwg.Config{Nodes: 4, NameServers: []int{0}})
//	p1 := cluster.Process(1)
//	p2 := cluster.Process(2)
//	g1, _ := p1.Join("chat")
//	g2, _ := p2.Join("chat")
//	g2.OnData(func(src plwg.ProcessID, data []byte) {
//	    fmt.Printf("%v says %s\n", src, data)
//	})
//	cluster.Run(3 * time.Second) // let membership converge
//	g1.Send([]byte("hello"))
//	cluster.Run(time.Second)
//
// Partitions are injected with Cluster.Partition and healed with
// Cluster.Heal; the service reconciles mappings and merges concurrent
// views automatically.
package plwg

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"plwg/internal/core"
	"plwg/internal/ids"
	"plwg/internal/naming"
	"plwg/internal/netsim"
	"plwg/internal/sim"
	"plwg/internal/trace"
	"plwg/internal/vsync"
)

// Re-exported identifier and view types. A View is a group membership
// snapshot identified by (coordinator, sequence-number).
type (
	// ProcessID identifies a process (one per cluster node).
	ProcessID = ids.ProcessID
	// GroupName names a light-weight group.
	GroupName = ids.LWGID
	// HWGID identifies a heavy-weight group.
	HWGID = ids.HWGID
	// View is a group membership snapshot.
	View = ids.View
	// ViewID identifies a view.
	ViewID = ids.ViewID
)

// Config configures a Cluster.
type Config struct {
	// Nodes is the number of simulated nodes (one process each).
	Nodes int
	// NameServers lists the node indices hosting naming-service
	// replicas. Place one per prospective partition. Defaults to {0}.
	NameServers []int
	// Seed drives the deterministic random source. Runs with equal
	// seeds and inputs are bit-identical.
	Seed int64
	// Net overrides the network model (zero fields take the 10 Mbps
	// shared-Ethernet defaults).
	Net netsim.Params
	// Service overrides the LWG service timers and Figure 1 policy
	// parameters.
	Service core.Config
	// Vsync overrides the heavy-weight group layer timers.
	Vsync vsync.Config
	// Naming overrides the naming-service timers.
	Naming naming.Config
	// CollectTrace enables in-memory protocol tracing (see
	// Cluster.Trace).
	CollectTrace bool
}

// Cluster is a simulated cluster running the full protocol stack. All
// methods must be called from one goroutine; time only advances inside
// Run/RunUntil.
type Cluster struct {
	sim     *sim.Sim
	net     *netsim.Network
	procs   []*Process
	servers map[ProcessID]*naming.Server
	tracer  *trace.Recorder
}

// Process is one node's light-weight group service instance.
type Process struct {
	cluster *Cluster
	pid     ProcessID
	ep      *core.Endpoint
	groups  map[GroupName]*Group
}

// Group is a process's handle on one light-weight group.
type Group struct {
	p        *Process
	name     GroupName
	onData   func(src ProcessID, data []byte)
	onView   func(view View)
	onState  func(state []byte)
	provider func() []byte
	left     bool
}

// upcallRouter routes core upcalls to Group handlers.
type upcallRouter Process

var _ core.Upcalls = (*upcallRouter)(nil)

// View implements core.Upcalls.
func (r *upcallRouter) View(lwg GroupName, view View) {
	p := (*Process)(r)
	if g, ok := p.groups[lwg]; ok && g.onView != nil {
		g.onView(view)
	}
}

// Data implements core.Upcalls.
func (r *upcallRouter) Data(lwg GroupName, src ProcessID, data []byte) {
	p := (*Process)(r)
	if g, ok := p.groups[lwg]; ok && g.onData != nil {
		g.onData(src, data)
	}
}

var _ core.StateHandler = (*upcallRouter)(nil)

// SnapshotState implements core.StateHandler.
func (r *upcallRouter) SnapshotState(lwg GroupName) []byte {
	p := (*Process)(r)
	if g, ok := p.groups[lwg]; ok && g.provider != nil {
		return g.provider()
	}
	return nil
}

// InstallState implements core.StateHandler.
func (r *upcallRouter) InstallState(lwg GroupName, state []byte) {
	p := (*Process)(r)
	if g, ok := p.groups[lwg]; ok && g.onState != nil {
		g.onState(state)
	}
}

// NewCluster builds a cluster of Config.Nodes processes with naming
// servers on the configured nodes.
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		return nil, errors.New("plwg: Config.Nodes must be positive")
	}
	serverIdx := cfg.NameServers
	if len(serverIdx) == 0 {
		serverIdx = []int{0}
	}
	serverPids := make([]ProcessID, len(serverIdx))
	for i, n := range serverIdx {
		if n < 0 || n >= cfg.Nodes {
			return nil, fmt.Errorf("plwg: name server index %d out of range", n)
		}
		serverPids[i] = ProcessID(n)
	}

	s := sim.New(cfg.Seed)
	nw := netsim.New(s, cfg.Net)
	c := &Cluster{
		sim:     s,
		net:     nw,
		servers: make(map[ProcessID]*naming.Server),
	}
	var tr trace.Tracer = trace.Nop{}
	if cfg.CollectTrace {
		c.tracer = &trace.Recorder{}
		tr = c.tracer
	}

	for i := 0; i < cfg.Nodes; i++ {
		pid := ProcessID(i)
		mux := netsim.NewMux()
		p := &Process{cluster: c, pid: pid, groups: make(map[GroupName]*Group)}
		p.ep = core.New(core.Params{
			Net:     nw,
			PID:     pid,
			Servers: serverPids,
			Config:  cfg.Service,
			Vsync:   cfg.Vsync,
			Naming:  cfg.Naming,
			Upcalls: (*upcallRouter)(p),
			Tracer:  tr,
		}, mux)
		for _, sp := range serverPids {
			if sp == pid {
				srv := naming.NewServer(naming.ServerParams{
					Net: nw, PID: pid, Peers: serverPids,
					Config: cfg.Naming, Tracer: tr,
				})
				mux.Handle(naming.ServerPrefix, srv.HandleMessage)
				srv.Start()
				c.servers[pid] = srv
			}
		}
		nw.AddNode(pid, mux.Handler())
		c.procs = append(c.procs, p)
	}
	return c, nil
}

// Process returns the process on node i.
func (c *Cluster) Process(i int) *Process {
	if i < 0 || i >= len(c.procs) {
		return nil
	}
	return c.procs[i]
}

// Nodes returns the cluster size.
func (c *Cluster) Nodes() int { return len(c.procs) }

// Run advances virtual time by d, executing all protocol activity due in
// that window.
func (c *Cluster) Run(d time.Duration) { c.sim.RunFor(d) }

// RunUntil advances time in steps until pred returns true or max virtual
// time has passed, and reports whether pred held.
func (c *Cluster) RunUntil(pred func() bool, step, max time.Duration) bool {
	deadline := c.sim.Now().Add(max)
	for !pred() {
		if c.sim.Now() >= deadline {
			return false
		}
		c.sim.RunFor(step)
	}
	return true
}

// Now returns the elapsed virtual time.
func (c *Cluster) Now() time.Duration { return c.sim.Now().Duration() }

// Partition splits the network into the given components (node indices).
// Unlisted nodes form an implicit extra component.
func (c *Cluster) Partition(components ...[]int) {
	groups := make([][]netsim.NodeID, len(components))
	for i, comp := range components {
		for _, n := range comp {
			groups[i] = append(groups[i], ProcessID(n))
		}
	}
	c.net.SetPartitions(groups...)
}

// Heal removes all partitions.
func (c *Cluster) Heal() { c.net.Heal() }

// Crash permanently crashes node i.
func (c *Cluster) Crash(i int) { c.net.Crash(ProcessID(i)) }

// NetStats returns the network traffic counters.
func (c *Cluster) NetStats() netsim.Stats { return c.net.Stats() }

// ResetNetStats zeroes the network traffic counters.
func (c *Cluster) ResetNetStats() { c.net.ResetStats() }

// Trace returns the protocol trace recorder (nil unless
// Config.CollectTrace was set).
func (c *Cluster) Trace() *trace.Recorder { return c.tracer }

// NamingDump renders each naming server's database in the style of the
// paper's Tables 3 and 4.
func (c *Cluster) NamingDump() string {
	var b strings.Builder
	for _, p := range c.procs {
		if srv, ok := c.servers[p.pid]; ok {
			fmt.Fprintf(&b, "server %v:\n%s", p.pid, indent(srv.DB().Dump()))
		}
	}
	return b.String()
}

func indent(s string) string {
	if s == "" {
		return "  (empty)\n"
	}
	return "  " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n  ") + "\n"
}

// --- Process ---------------------------------------------------------------

// PID returns the process identifier.
func (p *Process) PID() ProcessID { return p.pid }

// Join joins (or creates) the named light-weight group and returns the
// group handle. Register handlers on the handle before advancing time.
func (p *Process) Join(name GroupName) (*Group, error) {
	if _, ok := p.groups[name]; ok {
		return nil, core.ErrAlreadyMember
	}
	if err := p.ep.Join(name); err != nil {
		return nil, err
	}
	g := &Group{p: p, name: name}
	p.groups[name] = g
	return g, nil
}

// Groups returns the names of the groups the process is a member of.
func (p *Process) Groups() []GroupName { return p.ep.LWGs() }

// Mapping returns the heavy-weight group the named group is currently
// mapped on at this process.
func (p *Process) Mapping(name GroupName) (HWGID, bool) { return p.ep.Mapping(name) }

// HWGs returns the heavy-weight groups the process belongs to.
func (p *Process) HWGs() []HWGID { return p.ep.HWGs() }

// RunPolicyNow triggers one immediate pass of the mapping heuristics
// (they also run on Config.Service.PolicyInterval).
func (p *Process) RunPolicyNow() { p.ep.RunPolicyNow() }

// --- Group -------------------------------------------------------------------

// Name returns the group's name.
func (g *Group) Name() GroupName { return g.name }

// OnData registers the delivery handler. Handlers run on the simulation
// goroutine.
func (g *Group) OnData(fn func(src ProcessID, data []byte)) { g.onData = fn }

// OnView registers the view-change handler.
func (g *Group) OnView(fn func(view View)) { g.onView = fn }

// StateProvider registers the snapshot function used to transfer this
// group's application state to joining members (called at the admitting
// coordinator; a nil result transfers nothing).
func (g *Group) StateProvider(fn func() []byte) { g.provider = fn }

// OnState registers the handler receiving a state snapshot when this
// process joins an existing group; it runs before the first View upcall.
func (g *Group) OnState(fn func(state []byte)) { g.onState = fn }

// Send multicasts data to the group with view-synchronous semantics.
func (g *Group) Send(data []byte) error {
	if g.left {
		return core.ErrNotMember
	}
	return g.p.ep.Send(g.name, data)
}

// View returns the current view, if one is installed.
func (g *Group) View() (View, bool) { return g.p.ep.LWGView(g.name) }

// Leave leaves the group.
func (g *Group) Leave() error {
	if g.left {
		return core.ErrNotMember
	}
	g.left = true
	delete(g.p.groups, g.name)
	return g.p.ep.Leave(g.name)
}

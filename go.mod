module plwg

go 1.22

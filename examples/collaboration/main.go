// Collaboration: a CCTL-style groupware session (the paper's second
// motivating application) — one application managing several channels
// per session: a whiteboard, a chat and a presence channel, with members
// joining and leaving as users come and go. Because the channels of one
// session share membership, the dynamic service maps them onto a single
// heavy-weight group. When a channel's membership drifts mildly (a user
// joins only the chat), the Figure 1 hysteresis deliberately keeps the
// mapping stable; only a strong drift (overlap below 1/k_m) triggers a
// switch.
//
//	go run ./examples/collaboration
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"plwg"
)

var channels = []plwg.GroupName{"session/whiteboard", "session/chat", "session/presence"}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := plwg.NewCluster(plwg.Config{
		Nodes:       6,
		NameServers: []int{0},
		Seed:        11,
	})
	if err != nil {
		return err
	}

	// User 1 starts a collaboration session, creating the channels one
	// after another — the optimistic creation-time mapping then puts
	// them all on one heavy-weight group. Users 2 and 3 join the
	// existing session.
	handles := make(map[plwg.GroupName]map[int]*plwg.Group)
	for _, ch := range channels {
		handles[ch] = make(map[int]*plwg.Group)
	}
	for _, ch := range channels {
		g, err := cluster.Process(1).Join(ch)
		if err != nil {
			return err
		}
		handles[ch][1] = g
		cluster.Run(time.Second)
	}
	for _, user := range []int{2, 3} {
		joinSession(cluster, handles, user)
		cluster.Run(500 * time.Millisecond)
	}
	if !waitMembers(cluster, handles, 3) {
		return fmt.Errorf("session did not converge")
	}

	fmt.Println("session up: 3 users × 3 channels")
	fmt.Printf("user 1's channels: %v\n", cluster.Process(1).Groups())
	for _, ch := range channels {
		if h, ok := cluster.Process(1).Mapping(ch); ok {
			fmt.Printf("  %s rides on %v\n", ch, h)
		}
	}
	fmt.Printf("heavy-weight groups at user 1: %v (one HWG carries the session)\n",
		cluster.Process(1).HWGs())

	// Draw and chat.
	handles["session/chat"][2].OnData(func(src plwg.ProcessID, data []byte) {
		fmt.Printf("[chat @ user2] %v: %s\n", src, data)
	})
	handles["session/whiteboard"][3].OnData(func(src plwg.ProcessID, data []byte) {
		fmt.Printf("[draw @ user3] %v: %s\n", src, data)
	})
	_ = handles["session/chat"][1].Send([]byte("shall we start?"))
	_ = handles["session/whiteboard"][1].Send([]byte("rect(10,10,40,30)"))
	cluster.Run(time.Second)

	// The whiteboard is stateful: user 1 provides its drawing log to
	// late joiners (virtual-synchrony state transfer).
	var drawing []string
	handles["session/whiteboard"][1].OnData(func(_ plwg.ProcessID, data []byte) {
		drawing = append(drawing, string(data))
	})
	handles["session/whiteboard"][1].StateProvider(func() []byte {
		return []byte(strings.Join(drawing, ";"))
	})
	_ = handles["session/whiteboard"][1].Send([]byte("circle(25,25,10)"))
	cluster.Run(time.Second)

	// A fourth user joins late, and only the chat channel: channel
	// membership drifts apart.
	fmt.Println("--- user 4 joins the chat only ---")
	g, err := cluster.Process(4).Join("session/chat")
	if err != nil {
		return err
	}
	handles["session/chat"][4] = g
	cluster.Run(3 * time.Second)
	v, _ := g.View()
	fmt.Printf("chat view now %v\n", v)

	// A fifth user joins the whiteboard and receives the accumulated
	// drawing before its first view.
	fmt.Println("--- user 5 joins the whiteboard; state transfer ---")
	wb, err := cluster.Process(5).Join("session/whiteboard")
	if err != nil {
		return err
	}
	handles["session/whiteboard"][5] = wb
	wb.OnState(func(state []byte) {
		fmt.Printf("user 5 received whiteboard state: %q\n", state)
	})
	cluster.Run(3 * time.Second)

	// Run the mapping heuristics. The drift is mild — the whiteboard
	// still shares 3 of the HWG's 4 members — so the Figure 1
	// hysteresis keeps every channel where it is (stability by design;
	// switches would only start below 25% overlap).
	for pass := 0; pass < 2; pass++ {
		for i := 1; i <= 4; i++ {
			cluster.Process(i).RunPolicyNow()
		}
		cluster.Run(3 * time.Second)
	}
	for _, ch := range channels {
		if h, ok := cluster.Process(1).Mapping(ch); ok {
			fmt.Printf("after policy: %s rides on %v\n", ch, h)
		}
	}

	// User 2 leaves the whole session.
	fmt.Println("--- user 2 leaves the session ---")
	for _, ch := range channels {
		if h, ok := handles[ch][2]; ok {
			_ = h.Leave()
		}
	}
	cluster.Run(2 * time.Second)
	for _, ch := range channels {
		if h, ok := handles[ch][1]; ok {
			if v, ok := h.View(); ok {
				fmt.Printf("%s: %v\n", ch, v)
			}
		}
	}
	return nil
}

func joinSession(c *plwg.Cluster, handles map[plwg.GroupName]map[int]*plwg.Group, user int) {
	for _, ch := range channels {
		g, err := c.Process(user).Join(ch)
		if err != nil {
			log.Fatal(err)
		}
		handles[ch][user] = g
	}
}

func waitMembers(c *plwg.Cluster, handles map[plwg.GroupName]map[int]*plwg.Group, n int) bool {
	return c.RunUntil(func() bool {
		for _, ch := range channels {
			for _, g := range handles[ch] {
				v, ok := g.View()
				if !ok || len(v.Members) != n {
					return false
				}
			}
		}
		return true
	}, 200*time.Millisecond, 30*time.Second)
}

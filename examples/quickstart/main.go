// Quickstart: create a cluster, join a light-weight group from several
// processes, exchange virtually synchronous multicasts, and watch views
// change as members come and go.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"plwg"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Four simulated nodes on a shared 10 Mbps Ethernet; the naming
	// service runs on node 0.
	cluster, err := plwg.NewCluster(plwg.Config{
		Nodes:       4,
		NameServers: []int{0},
		Seed:        1,
	})
	if err != nil {
		return err
	}

	// p1 creates the group, p2 and p3 join it.
	groups := make(map[int]*plwg.Group)
	for _, n := range []int{1, 2, 3} {
		n := n
		g, err := cluster.Process(n).Join("chat")
		if err != nil {
			return err
		}
		g.OnView(func(v plwg.View) {
			fmt.Printf("[%5.2fs] p%d sees view %v\n", cluster.Now().Seconds(), n, v)
		})
		g.OnData(func(src plwg.ProcessID, data []byte) {
			fmt.Printf("[%5.2fs] p%d got %q from %v\n", cluster.Now().Seconds(), n, data, src)
		})
		groups[n] = g
	}

	// Let membership converge, then talk.
	converged := cluster.RunUntil(func() bool {
		v, ok := groups[1].View()
		return ok && len(v.Members) == 3
	}, 100*time.Millisecond, 15*time.Second)
	if !converged {
		return fmt.Errorf("membership did not converge")
	}

	fmt.Println("--- sending ---")
	if err := groups[1].Send([]byte("hello, group")); err != nil {
		return err
	}
	cluster.Run(time.Second)

	// p3 leaves; the survivors install a smaller view.
	fmt.Println("--- p3 leaves ---")
	if err := groups[3].Leave(); err != nil {
		return err
	}
	cluster.Run(2 * time.Second)

	// p2 crashes; failure detection removes it.
	fmt.Println("--- p2 crashes ---")
	cluster.Crash(2)
	cluster.Run(3 * time.Second)

	v, _ := groups[1].View()
	fmt.Printf("final view at p1: %v\n", v)
	if hwg, ok := cluster.Process(1).Mapping("chat"); ok {
		fmt.Printf("the group rides on heavy-weight group %v\n", hwg)
	}
	return nil
}

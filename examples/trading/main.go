// Trading: the Swiss Exchange Trading System workload from the paper's
// introduction — one group per data "subject", many overlapping groups
// among the same trading hosts. The light-weight group service maps the
// many subject groups onto a handful of heavy-weight groups, so the
// per-group cost of virtual synchrony (failure detection, flush) is paid
// once per host set instead of once per subject.
//
//	go run ./examples/trading
package main

import (
	"fmt"
	"log"
	"time"

	"plwg"
)

const (
	hosts    = 8  // trading hosts
	subjects = 12 // data subjects (bonds, equities, derivatives, ...)
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := plwg.NewCluster(plwg.Config{
		Nodes:       hosts,
		NameServers: []int{0},
		Seed:        7,
	})
	if err != nil {
		return err
	}

	// Two desks: hosts 0–3 trade equities subjects, hosts 4–7 trade
	// bond subjects. Subjects within a desk have identical membership,
	// so the dynamic service co-locates each desk's subjects on one
	// heavy-weight group.
	subjectName := func(i int) plwg.GroupName {
		if i < subjects/2 {
			return plwg.GroupName(fmt.Sprintf("equity-%d", i))
		}
		return plwg.GroupName(fmt.Sprintf("bond-%d", i-subjects/2))
	}
	desk := func(i int) []int {
		if i < subjects/2 {
			return []int{0, 1, 2, 3}
		}
		return []int{4, 5, 6, 7}
	}

	handles := make(map[plwg.GroupName]map[int]*plwg.Group)
	quotes := make(map[plwg.GroupName]int)
	for i := 0; i < subjects; i++ {
		name := subjectName(i)
		handles[name] = make(map[int]*plwg.Group)
		for _, h := range desk(i) {
			g, err := cluster.Process(h).Join(name)
			if err != nil {
				return err
			}
			name := name
			g.OnData(func(plwg.ProcessID, []byte) { quotes[name]++ })
			handles[name][h] = g
		}
		// Stagger subject creation as a live system would.
		cluster.Run(300 * time.Millisecond)
	}

	ok := cluster.RunUntil(func() bool {
		for i := 0; i < subjects; i++ {
			g := handles[subjectName(i)][desk(i)[0]]
			v, has := g.View()
			if !has || len(v.Members) != 4 {
				return false
			}
		}
		return true
	}, 200*time.Millisecond, 30*time.Second)
	if !ok {
		return fmt.Errorf("subjects did not converge")
	}

	fmt.Printf("%d subjects across %d hosts\n", subjects, hosts)
	for _, h := range []int{0, 4} {
		fmt.Printf("host %d carries %d subjects on heavy-weight groups %v\n",
			h, len(cluster.Process(h).Groups()), cluster.Process(h).HWGs())
	}

	// Disseminate quotes on every subject.
	fmt.Println("--- quote dissemination ---")
	cluster.ResetNetStats()
	for round := 0; round < 50; round++ {
		for i := 0; i < subjects; i++ {
			name := subjectName(i)
			quote := fmt.Sprintf("%s px=%d", name, 100+round)
			if err := handles[name][desk(i)[0]].Send([]byte(quote)); err != nil {
				return err
			}
		}
		cluster.Run(20 * time.Millisecond)
	}
	cluster.Run(time.Second)
	st := cluster.NetStats()
	var delivered int
	for _, n := range quotes {
		delivered += n
	}
	fmt.Printf("sent %d quotes; %d deliveries; %d frames on the wire (%v)\n",
		50*subjects, delivered, st.Frames, byKind(st.ByKind))

	// A trading host fails; one heavy-weight flush repairs every subject
	// of its desk at once (the paper's resource-sharing win).
	fmt.Println("--- host 3 fails ---")
	crashAt := cluster.Now()
	cluster.Crash(3)
	recovered := cluster.RunUntil(func() bool {
		for i := 0; i < subjects/2; i++ {
			v, has := handles[subjectName(i)][0].View()
			if !has || len(v.Members) != 3 {
				return false
			}
		}
		return true
	}, 50*time.Millisecond, 20*time.Second)
	if !recovered {
		return fmt.Errorf("equity subjects did not recover")
	}
	fmt.Printf("all %d equity subjects re-installed views %.0fms after the crash\n",
		subjects/2, (cluster.Now()-crashAt).Seconds()*1000)
	return nil
}

func byKind(m map[string]int64) string {
	return fmt.Sprintf("data=%d ack=%d heartbeat=%d flush=%d naming=%d",
		m["data"], m["ack"], m["heartbeat"], m["flush"], m["naming"]+m["naming-sync"])
}

// Partition: the paper's headline scenario. A light-weight group is
// created independently on both sides of a network partition — each side
// maps it onto a different heavy-weight group through its own naming
// server. When the partition heals, the four reconciliation steps of
// Section 6 run:
//
//  1. the naming servers reconcile and send MULTIPLE-MAPPINGS callbacks,
//  2. the view on the lower-gid HWG switches to the higher-gid HWG,
//  3. the concurrent views discover each other on the shared HWG,
//  4. one MERGE-VIEWS flush merges them into a single view.
//
// go run ./examples/partition
package main

import (
	"fmt"
	"log"
	"time"

	"plwg"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := plwg.NewCluster(plwg.Config{
		Nodes:        8,
		NameServers:  []int{0, 4}, // one naming replica per future partition
		Seed:         3,
		CollectTrace: true,
	})
	if err != nil {
		return err
	}

	fmt.Println("=== partitioning the network: {p0..p3} | {p4..p7} ===")
	cluster.Partition([]int{0, 1, 2, 3}, []int{4, 5, 6, 7})

	// Both sides create the "orders" group, unaware of each other.
	sideA := joinAll(cluster, "orders", 1, 2)
	sideB := joinAll(cluster, "orders", 5, 6)
	cluster.Run(5 * time.Second)

	va, _ := sideA[1].View()
	vb, _ := sideB[5].View()
	ha, _ := cluster.Process(1).Mapping("orders")
	hb, _ := cluster.Process(5).Mapping("orders")
	fmt.Printf("side A view %v on %v\n", va, ha)
	fmt.Printf("side B view %v on %v\n", vb, hb)
	fmt.Println("\nnaming databases while partitioned:")
	fmt.Print(cluster.NamingDump())

	// Both sides make progress independently (partitionable semantics).
	logDeliveries(cluster, sideA, sideB)
	_ = sideA[1].Send([]byte("A-side order #1"))
	_ = sideB[5].Send([]byte("B-side order #1"))
	cluster.Run(time.Second)

	fmt.Println("\n=== healing the partition ===")
	cluster.Heal()
	merged := cluster.RunUntil(func() bool {
		v1, ok1 := sideA[1].View()
		v2, ok2 := sideB[5].View()
		return ok1 && ok2 && v1.ID == v2.ID && len(v1.Members) == 4
	}, 100*time.Millisecond, 30*time.Second)
	if !merged {
		return fmt.Errorf("views did not merge after the heal")
	}

	v, _ := sideA[1].View()
	h, _ := cluster.Process(1).Mapping("orders")
	fmt.Printf("\nmerged view %v on %v (the higher-gid HWG won, §6.2)\n", v, h)
	fmt.Println("\nnaming databases after reconciliation (ancestors garbage-collected):")
	fmt.Print(cluster.NamingDump())

	fmt.Println("\nreconciliation events:")
	for _, e := range cluster.Trace().Events {
		switch e.What {
		case "multiple-mappings", "reconcile", "switch", "merge-views":
			fmt.Println(" ", e)
		}
	}

	// The merged group carries traffic end to end.
	_ = sideB[5].Send([]byte("post-merge order"))
	cluster.Run(time.Second)
	return nil
}

func joinAll(c *plwg.Cluster, name plwg.GroupName, nodes ...int) map[int]*plwg.Group {
	out := make(map[int]*plwg.Group, len(nodes))
	for _, n := range nodes {
		g, err := c.Process(n).Join(name)
		if err != nil {
			log.Fatal(err)
		}
		out[n] = g
	}
	return out
}

func logDeliveries(c *plwg.Cluster, sides ...map[int]*plwg.Group) {
	for _, side := range sides {
		for n, g := range side {
			n := n
			g.OnData(func(src plwg.ProcessID, data []byte) {
				fmt.Printf("[%5.2fs] p%d delivered %q from %v\n",
					c.Now().Seconds(), n, data, src)
			})
		}
	}
}

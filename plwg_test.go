package plwg

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(Config{}); err == nil {
		t.Error("zero nodes must be rejected")
	}
	if _, err := NewCluster(Config{Nodes: 2, NameServers: []int{5}}); err == nil {
		t.Error("out-of-range name server must be rejected")
	}
	c, err := NewCluster(Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if c.Process(-1) != nil || c.Process(2) != nil {
		t.Error("out-of-range Process must return nil")
	}
	if c.Nodes() != 2 {
		t.Errorf("Nodes = %d", c.Nodes())
	}
}

func TestQuickstartFlow(t *testing.T) {
	c, err := NewCluster(Config{Nodes: 4, NameServers: []int{0}, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	g1, err := c.Process(1).Join("chat")
	if err != nil {
		t.Fatal(err)
	}
	g2, err := c.Process(2).Join("chat")
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	g2.OnData(func(src ProcessID, data []byte) {
		got = append(got, fmt.Sprintf("%v:%s", src, data))
	})
	ok := c.RunUntil(func() bool {
		v, has := g1.View()
		return has && len(v.Members) == 2
	}, 100*time.Millisecond, 10*time.Second)
	if !ok {
		t.Fatal("membership did not converge")
	}
	if err := g1.Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	c.Run(time.Second)
	if len(got) != 1 || got[0] != "p1:hello" {
		t.Fatalf("delivery = %v", got)
	}
}

func TestViewHandler(t *testing.T) {
	c, err := NewCluster(Config{Nodes: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var views []View
	g1, _ := c.Process(1).Join("g")
	g1.OnView(func(v View) { views = append(views, v) })
	c.Run(2 * time.Second)
	if _, err := c.Process(2).Join("g"); err != nil {
		t.Fatal(err)
	}
	c.Run(3 * time.Second)
	if len(views) < 2 {
		t.Fatalf("expected at least 2 view upcalls, got %d", len(views))
	}
	last := views[len(views)-1]
	if len(last.Members) != 2 {
		t.Errorf("final view = %v", last)
	}
}

func TestPartitionHealEndToEnd(t *testing.T) {
	c, err := NewCluster(Config{Nodes: 8, NameServers: []int{0, 4}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	c.Partition([]int{0, 1, 2, 3}, []int{4, 5, 6, 7})
	gA, _ := c.Process(1).Join("subject")
	gB, _ := c.Process(5).Join("subject")
	c.Run(5 * time.Second)
	if vA, ok := gA.View(); !ok || len(vA.Members) != 1 {
		t.Fatalf("side A view wrong: %v %v", vA, ok)
	}
	c.Heal()
	converged := c.RunUntil(func() bool {
		vA, okA := gA.View()
		vB, okB := gB.View()
		return okA && okB && vA.ID == vB.ID && len(vA.Members) == 2
	}, 200*time.Millisecond, 20*time.Second)
	if !converged {
		t.Fatalf("views did not merge after heal; naming:\n%s", c.NamingDump())
	}
	dump := c.NamingDump()
	if !strings.Contains(dump, "subject") {
		t.Errorf("naming dump missing the group:\n%s", dump)
	}
}

func TestLeaveViaHandle(t *testing.T) {
	c, _ := NewCluster(Config{Nodes: 3, Seed: 2})
	g1, _ := c.Process(1).Join("g")
	g2, _ := c.Process(2).Join("g")
	c.Run(4 * time.Second)
	if err := g2.Leave(); err != nil {
		t.Fatal(err)
	}
	if err := g2.Send([]byte("x")); err == nil {
		t.Error("Send after Leave must fail")
	}
	if err := g2.Leave(); err == nil {
		t.Error("double Leave must fail")
	}
	c.Run(2 * time.Second)
	v, ok := g1.View()
	if !ok || len(v.Members) != 1 {
		t.Errorf("remaining view = %v", v)
	}
}

func TestCrashViaCluster(t *testing.T) {
	c, _ := NewCluster(Config{Nodes: 4, Seed: 5})
	g1, _ := c.Process(1).Join("g")
	g2, _ := c.Process(2).Join("g")
	_ = g2
	c.Run(4 * time.Second)
	c.Crash(2)
	ok := c.RunUntil(func() bool {
		v, has := g1.View()
		return has && len(v.Members) == 1
	}, 100*time.Millisecond, 10*time.Second)
	if !ok {
		t.Fatal("view did not recover from the crash")
	}
}

func TestNetStatsExposed(t *testing.T) {
	c, _ := NewCluster(Config{Nodes: 2, Seed: 9})
	g, _ := c.Process(1).Join("g")
	c.Run(2 * time.Second)
	_ = g.Send(make([]byte, 1000))
	c.Run(time.Second)
	st := c.NetStats()
	if st.Frames == 0 || st.Bytes == 0 {
		t.Errorf("stats empty: %+v", st)
	}
	if st.ByKind["data"] == 0 {
		t.Errorf("no data frames accounted: %v", st.ByKind)
	}
	c.ResetNetStats()
	if c.NetStats().Frames != 0 {
		t.Error("ResetNetStats did not clear")
	}
}

func TestTraceCollection(t *testing.T) {
	c, _ := NewCluster(Config{Nodes: 2, Seed: 4, CollectTrace: true})
	_, _ = c.Process(1).Join("g")
	c.Run(2 * time.Second)
	tr := c.Trace()
	if tr == nil || len(tr.Events) == 0 {
		t.Fatal("no trace collected")
	}
	if got := tr.Filter("lwg", ""); len(got) == 0 {
		t.Error("no lwg-layer events recorded")
	}
}

func TestDeterminismAcrossClusters(t *testing.T) {
	run := func() string {
		c, _ := NewCluster(Config{Nodes: 6, NameServers: []int{0, 3}, Seed: 42})
		var handles []*Group
		for i := 1; i < 6; i++ {
			g, _ := c.Process(i).Join("g")
			handles = append(handles, g)
		}
		c.Run(4 * time.Second)
		c.Partition([]int{0, 1, 2}, []int{3, 4, 5})
		c.Run(4 * time.Second)
		c.Heal()
		c.Run(8 * time.Second)
		var out strings.Builder
		for _, g := range handles {
			v, _ := g.View()
			fmt.Fprintf(&out, "%v;", v)
		}
		out.WriteString(c.NamingDump())
		return out.String()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("nondeterministic cluster runs:\n%s\nvs\n%s", a, b)
	}
}

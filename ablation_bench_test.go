package plwg

// Ablation benchmarks for the design choices called out in DESIGN.md §5.
// Each ablation flips one design decision and reports the same headline
// metric as the main experiment, so the contribution of the decision is
// directly visible in `go test -bench=Ablation`.

import (
	"testing"
	"time"

	"plwg/internal/bench"
	"plwg/internal/netsim"
	"plwg/internal/vsync"
)

// BenchmarkAckPolicyAblation compares the two stability schemes of the
// vsync layer: one acknowledgement frame per delivered message
// (Horus-style, the default — and the source of the static
// configuration's interference tax) versus periodic cumulative
// acknowledgement vectors.
func BenchmarkAckPolicyAblation(b *testing.B) {
	policies := []struct {
		name string
		pol  vsync.AckPolicy
	}{
		{"per-message", vsync.AckPerMessage},
		{"periodic", vsync.AckPeriodic},
	}
	for _, mode := range []bench.Mode{bench.StaticLWG, bench.DynamicLWG} {
		for _, p := range policies {
			b.Run(mode.String()+"/"+p.name, func(b *testing.B) {
				var last bench.LatencyResult
				for i := 0; i < b.N; i++ {
					last = bench.RunLatencyWith(mode, 8, int64(i+1), benchDurations(),
						bench.Options{AckPolicy: p.pol})
					if !last.Converged {
						b.Fatal("run did not converge")
					}
				}
				b.ReportMetric(last.MeanMs, "latency-ms")
			})
		}
	}
}

// BenchmarkBusVsPointToPoint ablates the shared-medium assumption: on
// independent point-to-point links the static configuration's
// interference (everybody shares one wire and one stability domain)
// largely disappears, confirming that the Figure 2 latency gap is a
// shared-medium effect — exactly why the paper's testbed (10 Mbps shared
// Ethernet) shows it.
func BenchmarkBusVsPointToPoint(b *testing.B) {
	nets := []struct {
		name string
		p2p  bool
	}{
		{"shared-bus", false},
		{"point-to-point", true},
	}
	for _, nt := range nets {
		for _, mode := range []bench.Mode{bench.StaticLWG, bench.DynamicLWG} {
			b.Run(nt.name+"/"+mode.String(), func(b *testing.B) {
				params := netsim.DefaultParams()
				params.PointToPoint = nt.p2p
				var last bench.LatencyResult
				for i := 0; i < b.N; i++ {
					last = bench.RunLatencyWith(mode, 8, int64(i+1), benchDurations(),
						bench.Options{Net: &params})
					if !last.Converged {
						b.Fatal("run did not converge")
					}
				}
				b.ReportMetric(last.MeanMs, "latency-ms")
			})
		}
	}
}

// BenchmarkOrderingAblation compares FIFO and sequencer-based total-order
// delivery: the token round adds latency and per-message frames, the
// price of a uniform delivery sequence.
func BenchmarkOrderingAblation(b *testing.B) {
	modes := []struct {
		name string
		ord  vsync.OrderingMode
	}{
		{"fifo", vsync.OrderingFIFO},
		{"total-order", vsync.OrderingTotal},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			var last bench.LatencyResult
			for i := 0; i < b.N; i++ {
				last = bench.RunLatencyWith(bench.DynamicLWG, 8, int64(i+1), benchDurations(),
					bench.Options{Ordering: m.ord})
				if !last.Converged {
					b.Fatal("run did not converge")
				}
			}
			b.ReportMetric(last.MeanMs, "latency-ms")
		})
	}
}

// BenchmarkReconcileRuleAblation compares the Section 6.2 rule ("switch
// to the HIGHEST heavy-weight group identifier") with its mirror image.
// Any agreed total order reconciles correctly; the metric is
// heal-to-convergence time for a LWG created independently in two
// partitions.
func BenchmarkReconcileRuleAblation(b *testing.B) {
	rules := []struct {
		name   string
		lowest bool
	}{
		{"highest-gid", false},
		{"lowest-gid", true},
	}
	for _, r := range rules {
		b.Run(r.name, func(b *testing.B) {
			var ms float64
			for i := 0; i < b.N; i++ {
				cfg := Config{Nodes: 8, NameServers: []int{0, 4}, Seed: int64(i + 1)}
				cfg.Service.ReconcileToLowest = r.lowest
				c, err := NewCluster(cfg)
				if err != nil {
					b.Fatal(err)
				}
				c.Partition([]int{0, 1, 2, 3}, []int{4, 5, 6, 7})
				gA, _ := c.Process(1).Join("a")
				gB, _ := c.Process(5).Join("a")
				c.Run(4 * time.Second)
				healAt := c.Now()
				c.Heal()
				ok := c.RunUntil(func() bool {
					vA, okA := gA.View()
					vB, okB := gB.View()
					return okA && okB && vA.ID == vB.ID && len(vA.Members) == 2
				}, 50*time.Millisecond, 30*time.Second)
				if !ok {
					b.Fatalf("rule %s never converged", r.name)
				}
				ms = float64(c.Now()-healAt) / float64(time.Millisecond)
			}
			b.ReportMetric(ms, "heal-to-converged-ms")
		})
	}
}

// BenchmarkPolicyAblation sweeps the Figure 1 hysteresis parameter k_m:
// with k_m = 1 every sub-unity overlap triggers a switch (no
// hysteresis), with the paper's k_m = 4 only a 25% overlap does. The
// metric is the number of switch operations a mild membership drift
// provokes — the paper chose 4 precisely to keep this at zero.
func BenchmarkPolicyAblation(b *testing.B) {
	for _, km := range []int{1, 2, 4} {
		b.Run(kmLabel(km), func(b *testing.B) {
			var switches float64
			for i := 0; i < b.N; i++ {
				cfg := Config{Nodes: 8, NameServers: []int{0}, Seed: int64(i + 1), CollectTrace: true}
				cfg.Service.Policy.KM = km
				cfg.Service.Policy.KC = 4
				cfg.Service.PolicyInterval = time.Hour
				c, err := NewCluster(cfg)
				if err != nil {
					b.Fatal(err)
				}
				// A 6-member group and a 2-member subgroup sharing its
				// HWG: 2/6 overlap is a minority for k_m ≥ 3 only.
				for _, p := range []int{1, 2, 3, 4, 5, 6} {
					if _, err := c.Process(p).Join("big"); err != nil {
						b.Fatal(err)
					}
				}
				c.Run(6 * time.Second)
				for _, p := range []int{1, 2} {
					if _, err := c.Process(p).Join("small"); err != nil {
						b.Fatal(err)
					}
				}
				c.Run(4 * time.Second)
				for n := 1; n <= 6; n++ {
					c.Process(n).RunPolicyNow()
				}
				c.Run(4 * time.Second)
				switches = 0
				for _, e := range c.Trace().Events {
					if e.What == "switch" {
						switches++
					}
				}
			}
			b.ReportMetric(switches, "switch-events")
		})
	}
}

func kmLabel(km int) string {
	switch km {
	case 1:
		return "km=1"
	case 2:
		return "km=2"
	default:
		return "km=4"
	}
}

package main

import (
	"reflect"
	"testing"
)

func TestParseNs(t *testing.T) {
	tests := []struct {
		in      string
		want    []int
		wantErr bool
	}{
		{"1,2,4", []int{1, 2, 4}, false},
		{" 8 , 16 ", []int{8, 16}, false},
		{"1", []int{1}, false},
		{"", nil, true},
		{"a", nil, true},
		{"0", nil, true},
		{"-3", nil, true},
		{"1,,2", []int{1, 2}, false},
	}
	for _, tt := range tests {
		got, err := parseNs(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("parseNs(%q) err = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err == nil && !reflect.DeepEqual(got, tt.want) {
			t.Errorf("parseNs(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "nope", "-ns", "1"}, nil); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-ns", "x"}, nil); err == nil {
		t.Error("bad sweep accepted")
	}
}

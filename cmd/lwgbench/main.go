// Command lwgbench regenerates the paper's evaluation (Section 3.3,
// Figure 2): for every point of the groups-per-set sweep it builds the
// three configurations — no LWG service, static LWG service, dynamic LWG
// service — on the simulated 10 Mbps shared Ethernet and measures
// data-transfer latency, throughput and crash-recovery time.
//
// It also runs the fig-scale sweep: the naming service's anti-entropy
// cost as the number of light-weight groups grows, comparing the
// digest/delta protocol against the full-database push baseline.
//
// Usage:
//
//	lwgbench -experiment fig2-latency|fig2-throughput|fig2-recovery|fig-scale|enum-throughput|all
//	         [-ns 1,2,4,8,16,32] [-groups 64,256,1024,4096]
//	         [-enum-scope n3g2] [-enum-depth 5] [-enum-par 4]
//	         [-seed 1] [-measure 5s] [-json BENCH_plwg.json]
//	         [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// With -json, the full sweep plus the codec microbenchmarks run and the
// results are written as a flat machine-readable record list, the
// committed perf baseline future PRs diff against. The profile flags
// write pprof data for the run (the memory profile is taken at exit).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"plwg/internal/bench"
	"plwg/internal/vsync"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lwgbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("lwgbench", flag.ContinueOnError)
	experiment := fs.String("experiment", "all",
		"fig2-latency | fig2-throughput | fig2-recovery | fig-scale | rt-throughput | rt-trace-ctx | enum-throughput | all")
	enumScope := fs.String("enum-scope", "n3g2", "enum-throughput scope")
	enumDepth := fs.Int("enum-depth", 5, "enum-throughput depth bound")
	enumPar := fs.Int("enum-par", 4, "enum-throughput fast-mode worker count")
	nsFlag := fs.String("ns", "1,2,4,8,16,32", "comma-separated groups-per-set sweep")
	groupsFlag := fs.String("groups", "64,256,1024,4096",
		"comma-separated LWG-count sweep for fig-scale")
	procsFlag := fs.String("procs", "1,4",
		"comma-separated GOMAXPROCS sweep for rt-throughput")
	seed := fs.Int64("seed", 1, "simulation seed (runs are deterministic per seed)")
	measure := fs.Duration("measure", 5*time.Second, "virtual measurement window")
	jsonPath := fs.String("json", "", "write machine-readable results to this file and exit")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file at exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ns, err := parseNs(*nsFlag)
	if err != nil {
		return err
	}
	groups, err := parseNs(*groupsFlag)
	if err != nil {
		return err
	}
	procs, err := parseNs(*procsFlag)
	if err != nil {
		return err
	}
	d := bench.DefaultDurations()
	d.Measure = *measure

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "lwgbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "lwgbench: memprofile:", err)
			}
		}()
	}

	if *jsonPath != "" {
		return writeJSON(*jsonPath, ns, groups, procs, *seed, d, out,
			*enumScope, *enumDepth, *enumPar)
	}

	fmt.Fprintf(out, "plwg evaluation — %d-node simulated 10 Mbps shared Ethernet, seed %d\n",
		8, *seed)
	fmt.Fprintf(out, "configurations: no-lwg (one HWG per group), static-lwg (all groups on one HWG),\n")
	fmt.Fprintf(out, "                dynamic-lwg (this library)\n\n")

	switch *experiment {
	case "fig2-latency":
		bench.Figure2Latency(out, ns, *seed, d)
	case "fig2-throughput":
		bench.Figure2Throughput(out, ns, *seed, d)
	case "fig2-recovery":
		bench.Figure2Recovery(out, ns, *seed, d)
	case "fig-scale":
		bench.FigScale(out, groups, *seed, d)
	case "rt-throughput":
		bench.RTThroughput(out, procs, *measure, *seed)
	case "rt-trace-ctx":
		bench.RTTraceContextRecords(out, *measure, *seed)
	case "enum-throughput":
		bench.EnumThroughput(out, *enumScope, *enumDepth, *enumPar)
	case "all":
		bench.Figure2Latency(out, ns, *seed, d)
		fmt.Fprintln(out)
		bench.Figure2Throughput(out, ns, *seed, d)
		fmt.Fprintln(out)
		bench.Figure2Recovery(out, ns, *seed, d)
		fmt.Fprintln(out)
		bench.FigScale(out, groups, *seed, d)
		fmt.Fprintln(out)
		bench.RTThroughput(out, procs, *measure, *seed)
		fmt.Fprintln(out)
		bench.EnumThroughput(out, *enumScope, *enumDepth, *enumPar)
	default:
		return fmt.Errorf("unknown experiment %q", *experiment)
	}
	return nil
}

// writeJSON runs the Figure 2 and fig-scale sweeps plus the codec
// microbenchmarks and writes the flat record list (mode × metric ×
// value).
func writeJSON(path string, ns, groups, procs []int, seed int64, d bench.Durations, out *os.File,
	enumScope string, enumDepth, enumPar int) error {
	fmt.Fprintf(out, "writing %s (sweep %v, groups %v, procs %v, seed %d, measure %v)\n",
		path, ns, groups, procs, seed, d.Measure)
	recs := bench.Figure2Records(out, ns, seed, d)
	recs = append(recs, bench.FigScaleRecords(out, groups, seed, d)...)
	recs = append(recs, bench.ObservabilityRecords(out, seed, d)...)
	recs = append(recs, bench.RTThroughputRecords(out, procs, 3*time.Second, seed)...)
	recs = append(recs, bench.RTTraceContextRecords(out, 3*time.Second, seed)...)
	recs = append(recs, bench.RTAddrKeyRecords(out)...)
	recs = append(recs, bench.EnumThroughputRecords(out, enumScope, enumDepth, enumPar)...)
	fmt.Fprintln(out, "  codec microbenchmarks...")
	for _, s := range vsync.CodecBenchStats() {
		parts := strings.SplitN(s.Name, "-", 2) // "encode-wire" -> op, codec
		recs = append(recs,
			bench.Record{Experiment: "codec-" + parts[0], Mode: parts[1], Metric: "ns_per_op", Value: s.NsPerOp},
			bench.Record{Experiment: "codec-" + parts[0], Mode: parts[1], Metric: "allocs_per_op", Value: s.AllocsPerOp})
	}
	rep := bench.Report{
		GeneratedBy: "go run ./cmd/lwgbench -json " + path,
		Seed:        seed,
		MeasureSecs: d.Measure.Seconds(),
		Records:     recs,
	}
	if err := bench.WriteReport(path, rep); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %d records\n", len(recs))
	return nil
}

func parseNs(s string) ([]int, error) {
	var ns []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad sweep value %q", part)
		}
		ns = append(ns, n)
	}
	if len(ns) == 0 {
		return nil, fmt.Errorf("empty sweep")
	}
	return ns, nil
}

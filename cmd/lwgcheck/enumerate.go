package main

import (
	"fmt"
	"io"
	"os"
	"time"

	"plwg/internal/explore"
	"plwg/internal/metrics"
)

// enumOpts carries the -enumerate flag values.
type enumOpts struct {
	scope      string
	depth      int
	budget     int
	checkpoint string
	traceOut   string
	noShrink   bool
	verbose    bool
	par        int
	por        bool
	probeMemo  bool
	progress   time.Duration
}

// runEnumerate is the -enumerate mode: sweep the scope's state graph,
// report coverage, and shrink the first wedge into a reproducer.
func runEnumerate(out io.Writer, o enumOpts) error {
	sc, err := explore.ParseScope(o.scope)
	if err != nil {
		return err
	}
	reg := metrics.NewRegistry()
	cfg := explore.EnumConfig{
		Scope:     sc,
		Depth:     o.depth,
		Budget:    o.budget,
		Par:       o.par,
		POR:       o.por,
		ProbeMemo: o.probeMemo,
		Progress:  o.progress,
		Metrics:   reg,
		Log: func(format string, args ...any) {
			fmt.Fprintf(out, format+"\n", args...)
		},
	}
	if o.checkpoint != "" {
		text, err := os.ReadFile(o.checkpoint)
		switch {
		case err == nil:
			cp, err := explore.ParseCheckpoint(string(text))
			if err != nil {
				return err
			}
			if cp.Scope.String() != sc.String() || cp.Depth != o.depth {
				return fmt.Errorf("checkpoint %s is for scope %s depth %d, not %s depth %d",
					o.checkpoint, cp.Scope, cp.Depth, sc, o.depth)
			}
			// The pruning layers decide which states ever enter the visited
			// and memo sets, so they are part of the sweep's identity: a
			// checkpoint taken with different flags describes a different
			// (but equally sound) sweep and cannot be continued under these.
			if cp.POR != o.por || cp.ProbeMemo != o.probeMemo {
				return fmt.Errorf("checkpoint %s was taken with -por=%v -probe-memo=%v; rerun with those flags or delete it",
					o.checkpoint, cp.POR, cp.ProbeMemo)
			}
			cfg.Resume = cp
			fmt.Fprintf(out, "resuming from %s: %d states visited, frontier %d\n",
				o.checkpoint, cp.Stats.Visited, len(cp.Frontier))
		case !os.IsNotExist(err):
			return err
		}
	}

	res := explore.Enumerate(cfg)
	st := res.Stats
	fmt.Fprintf(out, "scope %s depth %d: %d states visited, %d pruned, %d runs, deepest %d\n",
		sc, o.depth, st.Visited, st.Pruned, st.Runs, st.Deepest)
	if o.verbose {
		_ = reg.WriteText(out)
	}

	if o.checkpoint != "" {
		if res.Checkpoint != nil {
			if err := os.WriteFile(o.checkpoint,
				[]byte(explore.EncodeCheckpoint(res.Checkpoint)), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(out, "checkpoint written to %s (frontier %d)\n",
				o.checkpoint, len(res.Checkpoint.Frontier))
		} else if res.Swept {
			// The sweep is done; a stale checkpoint would make the next
			// invocation a no-op.
			_ = os.Remove(o.checkpoint)
		}
	}

	if len(res.Findings) == 0 {
		if res.Swept {
			fmt.Fprintf(out, "scope swept clean\n")
		} else {
			fmt.Fprintf(out, "budget exhausted before the scope was swept (resume with -checkpoint)\n")
		}
		return nil
	}

	f := res.Findings[0]
	fmt.Fprintf(out, "%d findings; first at depth %d\n", len(res.Findings), len(f.Schedule.Ops))
	s := f.Schedule
	if !o.noShrink {
		fmt.Fprintf(out, "shrinking (%d ops)...\n", len(s.Ops))
		s = explore.Shrink(s, func(c explore.Schedule) bool {
			return explore.Run(c).Failed()
		})
	}
	report(out, s, explore.Run(s))
	if err := exportTrace(out, o.traceOut, f.Result.World.Events); err != nil {
		return err
	}
	return fmt.Errorf("%d findings in scope %s", len(res.Findings), sc)
}

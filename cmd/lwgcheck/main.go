// Command lwgcheck sweeps the light-weight group stack through seeded
// random chaos schedules, verifies the paper's safety properties with the
// invariant checker (internal/check), and shrinks any failing schedule to
// a minimal reproducer.
//
// Usage:
//
//	lwgcheck -seeds 1000                # sweep seeds 1..1000
//	lwgcheck -seeds 50 -nodes 12 -ops 100 -duration 45s
//	lwgcheck -replay failing.schedule   # re-run a printed reproducer
//
// With -rtnet the same schedules run against a live loopback cluster of
// rtnet nodes over real UDP, with the transport fault layer injecting
// loss, duplication, reordering, delay jitter and asymmetric partitions:
//
//	lwgcheck -rtnet -seeds 100          # real-network sweep, default faults
//	lwgcheck -rtnet -faults 'loss=0.1,delay=1ms..5ms' -par 8
//	lwgcheck -rtnet -replay failing.schedule
//
// With -enumerate the random sweep is replaced by bounded model checking:
// every reachable operation interleaving of a small scope is executed,
// state-digest pruning closes the search, and every reached state must
// pass the safety checks and reconverge after a heal (the liveness bound):
//
//	lwgcheck -enumerate -scope n3g2 -depth 12
//	lwgcheck -enumerate -scope n4g2c1 -budget 2000 -checkpoint sweep.ckpt
//	lwgcheck -enumerate -scope n3g2 -depth 8 -par 8 -por=false -probe-memo=false
//
// The sweep runs -par expansion workers (default GOMAXPROCS) with
// partial-order reduction and probe memoisation on; results are
// identical at every -par value, and -por=false -probe-memo=false
// reproduces the original exhaustive sweep exactly (see DESIGN §7).
//
// On failure the reproducer is printed in the replayable schedule format
// and the exit status is 1.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"plwg/internal/check"
	"plwg/internal/explore"
	"plwg/internal/trace"
)

// defaultRTFaults is the stock real-network fault schedule: light loss,
// duplication, heavy reordering and delay jitter on every link (the
// asymmetric partitions come from the schedules' part ops).
const defaultRTFaults = "loss=0.05,dup=0.05,reorder=0.1,delay=200us..2ms"

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lwgcheck:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("lwgcheck", flag.ContinueOnError)
	seeds := fs.Int("seeds", 100, "number of seeds to sweep")
	start := fs.Int64("start", 1, "first seed")
	nodes := fs.Int("nodes", 8, "cluster size")
	ops := fs.Int("ops", 60, "operations per schedule")
	lwgs := fs.Int("lwgs", 3, "light-weight groups per schedule")
	crashes := fs.Int("crashes", 2, "crash budget per schedule")
	duration := fs.Duration("duration", 0, "quiescence window after the final heal (0 = default 30s)")
	replay := fs.String("replay", "", "replay a schedule file instead of sweeping")
	noShrink := fs.Bool("noshrink", false, "report failures without shrinking")
	verbose := fs.Bool("v", false, "print one line per seed")
	rtMode := fs.Bool("rtnet", false, "run schedules over real UDP (loopback cluster) instead of the simulator")
	faults := fs.String("faults", defaultRTFaults, "fault spec for -rtnet (see rtnet.ParseFaultSpec)")
	rtScale := fs.Float64("rtscale", 0.1, "virtual-to-real time scale for -rtnet op delays")
	par := fs.Int("par", max(1, runtime.NumCPU()/2), "concurrent schedules for -rtnet; expansion workers for -enumerate (default GOMAXPROCS there)")
	traceOut := fs.String("trace", "", "export one run's trace events to this file (.json = Chrome trace, otherwise JSONL) and explain the stitched protocol operations; a sweep exports its first failing run, or the last seed when all pass")
	enum := fs.Bool("enumerate", false, "bounded model checking: enumerate every schedule of a small scope instead of sweeping random seeds")
	scope := fs.String("scope", "n3g2", "enumeration scope, n<nodes>g<groups>[c<crashes>]")
	depth := fs.Int("depth", 12, "enumeration op-prefix depth bound")
	budget := fs.Int("budget", 0, "enumeration run budget per invocation (0 = run until the scope is swept)")
	checkpoint := fs.String("checkpoint", "", "enumeration checkpoint file: resumed when present, written when the budget stops the sweep early")
	por := fs.Bool("por", true, "enumeration: partial-order reduction (sleep sets); -por=false sweeps the unreduced graph")
	probeMemo := fs.Bool("probe-memo", true, "enumeration: probe-trajectory memoisation; -probe-memo=false runs every liveness probe concretely")
	progressIv := fs.Duration("progress", 0, "enumeration: emit a heartbeat line (states, states/sec, frontier, memo-hit rate) at this interval (0 = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *enum {
		// -par doubles as the expansion worker count, but its rtnet-sized
		// default is wrong here: enumeration workers are CPU bound, so an
		// unset flag means one worker per available CPU.
		enumPar := runtime.GOMAXPROCS(0)
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "par" {
				enumPar = *par
			}
		})
		return runEnumerate(out, enumOpts{
			scope:      *scope,
			depth:      *depth,
			budget:     *budget,
			checkpoint: *checkpoint,
			traceOut:   *traceOut,
			noShrink:   *noShrink,
			verbose:    *verbose,
			par:        enumPar,
			por:        *por,
			probeMemo:  *probeMemo,
			progress:   *progressIv,
		})
	}
	// Real-network runs are wall-clock bound, so the sweep defaults shrink
	// to keep a 100-seed pass in the minutes range. Explicit flags win.
	if *rtMode {
		set := make(map[string]bool)
		fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["nodes"] {
			*nodes = 5
		}
		if !set["ops"] {
			*ops = 30
		}
		if !set["lwgs"] {
			*lwgs = 2
		}
		if !set["crashes"] {
			*crashes = 1
		}
	}
	rtOpts := explore.RTOptions{Faults: *faults, Scale: *rtScale}
	if *nodes < 2 {
		return fmt.Errorf("-nodes must be at least 2 (got %d)", *nodes)
	}
	if *lwgs < 1 {
		return fmt.Errorf("-lwgs must be at least 1 (got %d)", *lwgs)
	}
	if *ops < 0 || *seeds < 0 || *crashes < 0 {
		return fmt.Errorf("-ops, -seeds and -crashes must not be negative")
	}

	if *replay != "" {
		text, err := os.ReadFile(*replay)
		if err != nil {
			return err
		}
		s, err := explore.Parse(string(text))
		if err != nil {
			return err
		}
		var r explore.Result
		if *rtMode || s.RTFaults != "" {
			r, err = explore.RunRT(s, rtOpts)
			if err != nil {
				return err
			}
		} else {
			r = explore.Run(s)
		}
		report(out, s, r)
		if err := exportTrace(out, *traceOut, r.World.Events); err != nil {
			return err
		}
		if r.Failed() {
			return fmt.Errorf("schedule failed")
		}
		fmt.Fprintf(out, "schedule passed (%d trace events)\n", len(r.World.Events))
		return nil
	}

	cfg := explore.GenConfig{
		Nodes:   *nodes,
		Ops:     *ops,
		LWGs:    *lwgs,
		Crashes: *crashes,
		Quiesce: *duration,
	}
	swept := 0
	// With -trace, keep the events worth explaining: the first failure
	// wins (that is the run someone will want to reconstruct), otherwise
	// the last seed's events. Sweep progress callbacks are serialized,
	// so plain captures are safe even for the parallel -rtnet sweep.
	var traceEvents []trace.Event
	traceLocked := false
	progress := func(seed int64, r explore.Result) {
		swept++
		if *traceOut != "" && !traceLocked {
			traceEvents = r.World.Events
			if r.Failed() {
				traceLocked = true
			}
		}
		if *verbose || r.Failed() {
			status := "ok"
			if r.Failed() {
				status = fmt.Sprintf("FAIL (%d violations, completed=%v)",
					len(r.Violations), r.Completed)
			}
			fmt.Fprintf(out, "seed %d: %s\n", seed, status)
		}
		// Real-network failures can be load-sensitive and vanish on the
		// replay that builds the final report, so print the violations
		// from the original run while we have them.
		if r.Failed() && len(r.Violations) > 0 {
			fmt.Fprintf(out, "%s", check.Summary(r.Violations))
		}
	}
	var failing []explore.Schedule
	if *rtMode {
		var err error
		failing, err = explore.SweepRT(*start, *seeds, cfg, rtOpts, *par, progress)
		if err != nil {
			return err
		}
	} else {
		failing = explore.Sweep(*start, *seeds, cfg, progress)
	}
	fmt.Fprintf(out, "%d seeds swept, %d failing\n", swept, len(failing))
	if err := exportTrace(out, *traceOut, traceEvents); err != nil {
		return err
	}
	if len(failing) == 0 {
		return nil
	}

	// Shrink and print a reproducer for the first failure; the rest are
	// listed by seed only.
	runOnce := func(c explore.Schedule) explore.Result {
		if *rtMode {
			r, err := explore.RunRT(c, rtOpts)
			if err != nil {
				return explore.Result{}
			}
			return r
		}
		return explore.Run(c)
	}
	s := failing[0]
	if !*noShrink {
		fmt.Fprintf(out, "shrinking seed %d (%d ops)...\n", s.Seed, len(s.Ops))
		s = explore.Shrink(s, func(c explore.Schedule) bool {
			return runOnce(c).Failed()
		})
	}
	report(out, s, runOnce(s))
	if len(failing) > 1 {
		fmt.Fprintf(out, "other failing seeds:")
		for _, f := range failing[1:] {
			fmt.Fprintf(out, " %d", f.Seed)
		}
		fmt.Fprintln(out)
	}
	return fmt.Errorf("%d of %d seeds failed", len(failing), swept)
}

// explainLimit caps how many stitched operations the explain mode
// prints; the exported file always holds everything.
const explainLimit = 12

// exportTrace writes the events to path (Chrome trace for .json, JSONL
// otherwise) and prints the explain summary: every multi-node protocol
// operation stitched out of the event stream, up to explainLimit.
func exportTrace(out io.Writer, path string, events []trace.Event) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		err = trace.WriteChromeTrace(f, events)
	} else {
		err = trace.WriteJSONL(f, events)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("export trace %q: %w", path, err)
	}
	ops := trace.Stitch(events)
	fmt.Fprintf(out, "trace: %d events -> %s (%d stitched ops)\n", len(events), path, len(ops))
	printed := 0
	for _, op := range ops {
		if len(op.Nodes) < 2 {
			continue // single-node ops add noise, not causality
		}
		if printed == explainLimit {
			fmt.Fprintf(out, "... (explain output capped at %d ops; the full trace is in %s)\n", explainLimit, path)
			break
		}
		fmt.Fprint(out, trace.Explain(op))
		printed++
	}
	return nil
}

func report(out io.Writer, s explore.Schedule, r explore.Result) {
	if !r.Completed {
		fmt.Fprintf(out, "run did not complete within the step budget (livelock?)\n")
	}
	if len(r.Violations) > 0 {
		fmt.Fprintf(out, "violations:\n%s", check.Summary(r.Violations))
	}
	if r.Failed() {
		fmt.Fprintf(out, "reproducer:\n%s", explore.Reproducer(s))
	}
}

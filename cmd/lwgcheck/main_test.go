package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"plwg/internal/explore"
	"plwg/internal/ids"
)

func TestSweepCleanSeeds(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-seeds", "2", "-nodes", "5", "-ops", "12", "-duration", "20s"}, &out)
	if err != nil {
		t.Fatalf("clean sweep failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "2 seeds swept, 0 failing") {
		t.Errorf("unexpected output:\n%s", out.String())
	}
}

func TestReplayFaultedSchedule(t *testing.T) {
	// A schedule with an injected delivery suppression must fail, print
	// violations and a reproducer, and exit non-zero.
	s := explore.Random(2, explore.GenConfig{Nodes: 5, Ops: 12, LWGs: 2})
	s.Fault = explore.Fault{Node: firstDeliverer(t, s), Drop: 1}
	if !explore.Run(s).Failed() {
		t.Skip("fault not detectable on this schedule")
	}
	path := filepath.Join(t.TempDir(), "failing.schedule")
	if err := os.WriteFile(path, []byte(explore.Encode(s)), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	err := run([]string{"-replay", path}, &out)
	if err == nil {
		t.Fatalf("replay of failing schedule succeeded:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "violations:") ||
		!strings.Contains(out.String(), "reproducer:") {
		t.Errorf("failure report incomplete:\n%s", out.String())
	}
}

func TestReplayRejectsBadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.schedule")
	if err := os.WriteFile(path, []byte("not a schedule\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-replay", path}, &out); err == nil {
		t.Fatal("garbage schedule accepted")
	}
}

// firstDeliverer returns a node that delivers at least one LWG message
// during a clean run of s.
func firstDeliverer(t *testing.T, s explore.Schedule) ids.ProcessID {
	t.Helper()
	r := explore.Run(s)
	for _, e := range r.World.Events {
		if e.Layer == "lwg" && e.What == "lwg-deliver" {
			return e.Node
		}
	}
	t.Skip("schedule delivers no messages")
	return 0
}

// Command lwgnode runs the partitionable light-weight group service on a
// real network (UDP). Two modes:
//
// Demo (default): boots a four-node cluster over loopback UDP inside one
// process, joins a group everywhere, injects a partition, lets both
// sides work, heals, and narrates the reconciliation:
//
//	lwgnode -demo
//
// Single node: one process of a multi-process deployment. Every process
// needs the same peer list and naming-server list:
//
//	lwgnode -pid 0 -listen 127.0.0.1:7100 \
//	        -peers 0=127.0.0.1:7100,1=127.0.0.1:7101,2=127.0.0.1:7102 \
//	        -servers 0 -join chat -chat
//
// In single-node mode the process joins the named groups, prints every
// view change and delivery, and (with -chat) multicasts a line per
// second. With -debug addr it also serves live introspection over HTTP:
// /metrics (text exposition), /debug/trace (JSONL event snapshot),
// /debug/lwg (membership and mappings) and /debug/pprof.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"plwg/internal/core"
	"plwg/internal/ids"
	"plwg/internal/metrics"
	"plwg/internal/rtnet"
	"plwg/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lwgnode:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lwgnode", flag.ContinueOnError)
	demo := fs.Bool("demo", false, "run the self-contained four-node demo")
	pid := fs.Int("pid", 0, "this process's identifier")
	listen := fs.String("listen", "127.0.0.1:0", "UDP listen address")
	peersFlag := fs.String("peers", "", "peer map: 0=host:port,1=host:port,...")
	serversFlag := fs.String("servers", "0", "naming-server pids, comma separated")
	joinFlag := fs.String("join", "", "groups to join, comma separated")
	chat := fs.Bool("chat", false, "multicast a line per second on each joined group")
	runFor := fs.Duration("for", 0, "exit after this long (0 = until SIGINT)")
	faults := fs.String("faults", "", "outbound fault spec, e.g. 'loss=0.1,delay=1ms..5ms;3:block' (see rtnet.ParseFaultSpec)")
	debug := fs.String("debug", "", "serve /metrics, /debug/trace, /debug/lwg and /debug/pprof on this HTTP address (e.g. 127.0.0.1:7180)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *demo || *peersFlag == "" {
		return runDemo()
	}
	return runSingle(*pid, *listen, *peersFlag, *serversFlag, *joinFlag, *chat, *runFor, *faults, *debug)
}

// printer logs upcalls (invoked on the protocol goroutine).
type printer struct{ pid int }

func (p printer) View(lwg ids.LWGID, v ids.View) {
	fmt.Printf("[p%d] %s: view %v\n", p.pid, lwg, v)
}

func (p printer) Data(lwg ids.LWGID, src ids.ProcessID, data []byte) {
	fmt.Printf("[p%d] %s: %v says %q\n", p.pid, lwg, src, data)
}

func runSingle(pid int, listen, peersFlag, serversFlag, joinFlag string, chat bool, runFor time.Duration, faults, debug string) error {
	peers, err := parsePeers(peersFlag)
	if err != nil {
		return err
	}
	servers, err := parsePids(serversFlag)
	if err != nil {
		return err
	}
	faultSpec, err := rtnet.ParseFaultSpec(faults)
	if err != nil {
		return err
	}
	cfg := rtnet.NodeConfig{
		PID:         ids.ProcessID(pid),
		Listen:      listen,
		Peers:       peers,
		NameServers: servers,
		Upcalls:     printer{pid: pid},
		Seed:        int64(pid + 1),
	}
	if debug != "" {
		// The debug endpoint implies full observability: a registry for
		// /metrics and a ring for /debug/trace snapshots.
		cfg.Metrics = metrics.NewRegistry()
		cfg.Tracer = trace.NewRing(trace.DefaultRingCapacity)
	}
	node, err := rtnet.Listen(cfg)
	if err != nil {
		return err
	}
	defer node.Close()
	node.SetFaultSpec(faultSpec)
	if err := node.Start(); err != nil {
		return err
	}
	fmt.Printf("node p%d listening on %v\n", pid, node.Addr())
	if faults != "" {
		fmt.Printf("node p%d injecting faults: %s\n", pid, faultSpec)
	}
	if debug != "" {
		ln, err := net.Listen("tcp", debug)
		if err != nil {
			return fmt.Errorf("debug listen %q: %w", debug, err)
		}
		defer ln.Close()
		go func() { _ = http.Serve(ln, node.DebugHandler()) }()
		fmt.Printf("node p%d debug endpoint on http://%v\n", pid, ln.Addr())
	}

	groups := splitList(joinFlag)
	for _, g := range groups {
		g := ids.LWGID(g)
		node.Do(func(ep *core.Endpoint) {
			if err := ep.Join(g); err != nil {
				fmt.Fprintf(os.Stderr, "join %s: %v\n", g, err)
			}
		})
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	var timeout <-chan time.Time
	if runFor > 0 {
		timeout = time.After(runFor)
	}
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	n := 0
	for {
		select {
		case <-stop:
			return nil
		case <-timeout:
			return nil
		case <-tick.C:
			if !chat {
				continue
			}
			n++
			msg := []byte(fmt.Sprintf("hello %d from p%d", n, pid))
			for _, g := range groups {
				g := ids.LWGID(g)
				node.Do(func(ep *core.Endpoint) { _ = ep.Send(g, msg) })
			}
		}
	}
}

func runDemo() error {
	fmt.Println("=== lwgnode demo: 4 nodes over real UDP (loopback) ===")
	const n = 4
	nodes := make([]*rtnet.Node, n)
	for i := 0; i < n; i++ {
		node, err := rtnet.Listen(rtnet.NodeConfig{
			PID:         ids.ProcessID(i),
			Listen:      "127.0.0.1:0",
			NameServers: []ids.ProcessID{0, 2},
			Upcalls:     printer{pid: i},
			Seed:        int64(i + 1),
		})
		if err != nil {
			return err
		}
		nodes[i] = node
		defer node.Close()
	}
	peers := make(map[ids.ProcessID]string, n)
	for i, node := range nodes {
		peers[ids.ProcessID(i)] = node.Addr().String()
		fmt.Printf("p%d at %v\n", i, node.Addr())
	}
	for _, node := range nodes {
		if err := node.SetPeers(peers); err != nil {
			return err
		}
		if err := node.Start(); err != nil {
			return err
		}
	}

	fmt.Println("\n--- all nodes join group \"orders\" ---")
	for i := 0; i < n; i++ {
		nodes[i].Do(func(ep *core.Endpoint) { _ = ep.Join("orders") })
	}
	time.Sleep(3 * time.Second)

	fmt.Println("\n--- multicast from p1 ---")
	nodes[1].Do(func(ep *core.Endpoint) { _ = ep.Send("orders", []byte("pre-partition")) })
	time.Sleep(time.Second)

	fmt.Println("\n--- partition {p0,p1} | {p2,p3} ---")
	nodes[0].Block(2, 3)
	nodes[1].Block(2, 3)
	nodes[2].Block(0, 1)
	nodes[3].Block(0, 1)
	time.Sleep(3 * time.Second)

	fmt.Println("\n--- both sides keep working ---")
	nodes[0].Do(func(ep *core.Endpoint) { _ = ep.Send("orders", []byte("A-side order")) })
	nodes[2].Do(func(ep *core.Endpoint) { _ = ep.Send("orders", []byte("B-side order")) })
	time.Sleep(2 * time.Second)

	fmt.Println("\n--- heal: reconciliation merges the views ---")
	for _, node := range nodes {
		node.Unblock()
	}
	time.Sleep(5 * time.Second)

	fmt.Println("\n--- post-merge multicast from p3 ---")
	nodes[3].Do(func(ep *core.Endpoint) { _ = ep.Send("orders", []byte("merged!")) })
	time.Sleep(2 * time.Second)
	fmt.Println("\ndemo complete")
	return nil
}

func parsePeers(s string) (map[ids.ProcessID]string, error) {
	out := make(map[ids.ProcessID]string)
	for _, part := range splitList(s) {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad peer %q (want pid=host:port)", part)
		}
		pid, err := strconv.Atoi(kv[0])
		if err != nil {
			return nil, fmt.Errorf("bad peer pid %q", kv[0])
		}
		out[ids.ProcessID(pid)] = kv[1]
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty peer map")
	}
	return out, nil
}

func parsePids(s string) ([]ids.ProcessID, error) {
	var out []ids.ProcessID
	for _, part := range splitList(s) {
		pid, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad pid %q", part)
		}
		out = append(out, ids.ProcessID(pid))
	}
	return out, nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}

package main

import (
	"testing"

	"plwg/internal/ids"
)

func TestParsePeers(t *testing.T) {
	got, err := parsePeers("0=127.0.0.1:7000, 2=10.0.0.1:9,")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "127.0.0.1:7000" || got[2] != "10.0.0.1:9" {
		t.Errorf("parsePeers = %v", got)
	}
	for _, bad := range []string{"", "0", "x=1:2", "0=a=b=c"} {
		if _, err := parsePeers(bad); err == nil && bad != "0=a=b=c" {
			t.Errorf("parsePeers(%q) accepted", bad)
		}
	}
}

func TestParsePids(t *testing.T) {
	got, err := parsePids("0, 4 ,7")
	if err != nil {
		t.Fatal(err)
	}
	want := []ids.ProcessID{0, 4, 7}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("parsePids = %v", got)
	}
	if _, err := parsePids("a"); err == nil {
		t.Error("bad pid accepted")
	}
}

func TestSplitList(t *testing.T) {
	if got := splitList(" a, ,b ,"); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("splitList = %v", got)
	}
	if got := splitList(""); len(got) != 0 {
		t.Errorf("splitList(\"\") = %v", got)
	}
}

// Command lwgsim replays the paper's reconciliation scenarios and prints
// the naming-service database evolution of Tables 3 and 4.
//
// Usage:
//
//	lwgsim -scenario table3   # inconsistent mappings after a heal
//	lwgsim -scenario table4   # full evolution to a single merged mapping
package main

import (
	"flag"
	"fmt"
	"os"

	"plwg/internal/bench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lwgsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lwgsim", flag.ContinueOnError)
	scenario := fs.String("scenario", "table4", "table3 | table4")
	seed := fs.Int64("seed", 1, "simulation seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *scenario {
	case "table3":
		bench.Table3Scenario(os.Stdout, *seed)
	case "table4":
		bench.Table4Scenario(os.Stdout, *seed)
	default:
		return fmt.Errorf("unknown scenario %q", *scenario)
	}
	return nil
}

// Command lwgcollect is the cluster-wide observability collector: it
// polls every node's debug endpoint (/metrics, /debug/trace,
// /debug/lwg) on an interval, merges the per-node trace rings into one
// causally stitched cross-node view, and serves:
//
//	/cluster/metrics  every node's samples with a node label, plus
//	                  cluster_* instruments (text exposition)
//	/cluster/ops      stitched operation timelines (merge-views,
//	                  switches, flushes, view installs) as JSONL
//	/cluster/health   partition map and per-node reachability as JSON
//
// Typical use against a three-node lwgnode deployment:
//
//	lwgcollect -listen 127.0.0.1:9090 -interval 2s \
//	           -targets http://127.0.0.1:7070,http://127.0.0.1:7071,http://127.0.0.1:7072
//
// Unreachable nodes degrade to last-known-state (marked stale in the
// health report), so the collector keeps describing the cluster right
// through the partitions it exists to observe.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"plwg/internal/collect"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lwgcollect:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lwgcollect", flag.ContinueOnError)
	targets := fs.String("targets", "", "comma-separated node debug base URLs (http://host:port)")
	listen := fs.String("listen", "127.0.0.1:9090", "HTTP listen address for the /cluster endpoints")
	interval := fs.Duration("interval", 2*time.Second, "scrape interval")
	rounds := fs.Int("rounds", 0, "exit after this many scrape rounds (0 = run until SIGINT)")
	maxEvents := fs.Int("max-events", 0, "merged trace-event cap (0 = default)")
	quiet := fs.Bool("quiet", false, "suppress the per-round progress line")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *targets == "" {
		return fmt.Errorf("no -targets given")
	}
	var urls []string
	for _, t := range strings.Split(*targets, ",") {
		t = strings.TrimSpace(t)
		if t == "" {
			continue
		}
		if !strings.Contains(t, "://") {
			t = "http://" + t
		}
		urls = append(urls, t)
	}

	cfg := collect.Config{Targets: urls, Interval: *interval, MaxEvents: *maxEvents}
	if !*quiet {
		cfg.Logf = func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, "lwgcollect: "+format+"\n", a...)
		}
	}
	c := collect.New(cfg)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Printf("lwgcollect: serving /cluster/{metrics,ops,health} on http://%s, scraping %d node(s) every %v\n",
		ln.Addr(), len(urls), *interval)
	srv := &http.Server{Handler: c.Handler()}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if *rounds > 0 {
		for i := 0; i < *rounds && ctx.Err() == nil; i++ {
			c.ScrapeOnce(ctx)
			if i < *rounds-1 {
				select {
				case <-ctx.Done():
				case <-time.After(*interval):
				}
			}
		}
		return nil
	}
	c.Run(ctx)
	return nil
}

package plwg_test

import (
	"fmt"
	"time"

	"plwg"
)

// The basic lifecycle: build a cluster, join a group from two processes,
// exchange a message.
func Example() {
	cluster, _ := plwg.NewCluster(plwg.Config{Nodes: 4, NameServers: []int{0}, Seed: 1})

	g1, _ := cluster.Process(1).Join("chat")
	g2, _ := cluster.Process(2).Join("chat")
	g2.OnData(func(src plwg.ProcessID, data []byte) {
		fmt.Printf("%v: %s\n", src, data)
	})

	cluster.RunUntil(func() bool {
		v, ok := g1.View()
		return ok && len(v.Members) == 2
	}, 100*time.Millisecond, 10*time.Second)

	_ = g1.Send([]byte("hello, group"))
	cluster.Run(time.Second)
	// Output: p1: hello, group
}

// Partitions split a group into concurrent views; healing reconciles
// them automatically (the paper's contribution).
func ExampleCluster_Partition() {
	cluster, _ := plwg.NewCluster(plwg.Config{Nodes: 8, NameServers: []int{0, 4}, Seed: 3})
	cluster.Partition([]int{0, 1, 2, 3}, []int{4, 5, 6, 7})

	// Created independently on both sides: two concurrent views on two
	// different heavy-weight groups.
	gA, _ := cluster.Process(1).Join("orders")
	gB, _ := cluster.Process(5).Join("orders")
	cluster.Run(5 * time.Second)
	vA, _ := gA.View()
	vB, _ := gB.View()
	fmt.Printf("partitioned: %d + %d members\n", len(vA.Members), len(vB.Members))

	cluster.Heal()
	cluster.RunUntil(func() bool {
		a, okA := gA.View()
		b, okB := gB.View()
		return okA && okB && a.ID == b.ID
	}, 200*time.Millisecond, 30*time.Second)
	vA, _ = gA.View()
	fmt.Printf("healed: %d members, one view\n", len(vA.Members))
	// Output:
	// partitioned: 1 + 1 members
	// healed: 2 members, one view
}

// State transfer hands a joiner the group's application state before its
// first view.
func ExampleGroup_StateProvider() {
	cluster, _ := plwg.NewCluster(plwg.Config{Nodes: 3, NameServers: []int{0}, Seed: 2})

	counter := 0
	g1, _ := cluster.Process(1).Join("counter")
	g1.StateProvider(func() []byte { return []byte(fmt.Sprint(counter)) })
	g1.OnData(func(plwg.ProcessID, []byte) { counter++ })
	cluster.Run(2 * time.Second)
	_ = g1.Send([]byte("inc"))
	_ = g1.Send([]byte("inc"))
	cluster.Run(time.Second)

	g2, _ := cluster.Process(2).Join("counter")
	g2.OnState(func(state []byte) {
		fmt.Printf("joiner starts from state %s\n", state)
	})
	cluster.Run(4 * time.Second)
	// Output: joiner starts from state 2
}

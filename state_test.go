package plwg

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestStateTransferToJoiner: a stateful group member accumulates state
// from delivered messages; a late joiner receives the snapshot before
// its first view and can continue from it.
func TestStateTransferToJoiner(t *testing.T) {
	c, err := NewCluster(Config{Nodes: 4, NameServers: []int{0}, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	// p1 keeps a log of everything delivered.
	var log []string
	g1, _ := c.Process(1).Join("doc")
	g1.StateProvider(func() []byte {
		return []byte(strings.Join(log, "\n"))
	})
	g1.OnData(func(src ProcessID, data []byte) {
		log = append(log, fmt.Sprintf("%v:%s", src, data))
	})
	c.Run(2 * time.Second)
	for i := 0; i < 3; i++ {
		if err := g1.Send([]byte(fmt.Sprintf("edit-%d", i))); err != nil {
			t.Fatal(err)
		}
		c.Run(200 * time.Millisecond)
	}
	if len(log) != 3 {
		t.Fatalf("self-delivery log = %v", log)
	}

	// p2 joins late and must receive the accumulated state first.
	var gotState string
	var stateBeforeView bool
	var sawView bool
	g2, _ := c.Process(2).Join("doc")
	g2.OnState(func(state []byte) {
		gotState = string(state)
		stateBeforeView = !sawView
	})
	g2.OnView(func(View) { sawView = true })
	c.Run(4 * time.Second)

	want := "p1:edit-0\np1:edit-1\np1:edit-2"
	if gotState != want {
		t.Fatalf("joiner state = %q, want %q", gotState, want)
	}
	if !stateBeforeView {
		t.Error("state must be installed before the first View upcall")
	}

	// Traffic after the join reaches the joiner normally.
	var post []string
	g2.OnData(func(src ProcessID, data []byte) {
		post = append(post, string(data))
	})
	_ = g1.Send([]byte("edit-3"))
	c.Run(time.Second)
	if len(post) != 1 || post[0] != "edit-3" {
		t.Errorf("post-join delivery = %v", post)
	}
}

// TestStateTransferNilProviderTransfersNothing: groups without a provider
// behave exactly as before.
func TestStateTransferNilProviderTransfersNothing(t *testing.T) {
	c, _ := NewCluster(Config{Nodes: 3, Seed: 5})
	g1, _ := c.Process(1).Join("g")
	_ = g1
	c.Run(2 * time.Second)
	called := false
	g2, _ := c.Process(2).Join("g")
	g2.OnState(func([]byte) { called = true })
	c.Run(3 * time.Second)
	if called {
		t.Error("OnState fired with no provider registered")
	}
	v, ok := g2.View()
	if !ok || len(v.Members) != 2 {
		t.Fatalf("join failed: %v %v", v, ok)
	}
}

// TestStateTransferSnapshotConsistency: the snapshot is taken after the
// admission flush, so it includes every message delivered in the old
// view — even one sent just before the join.
func TestStateTransferSnapshotConsistency(t *testing.T) {
	c, _ := NewCluster(Config{Nodes: 3, Seed: 9})
	count := 0
	g1, _ := c.Process(1).Join("ctr")
	g1.StateProvider(func() []byte { return []byte(fmt.Sprintf("%d", count)) })
	g1.OnData(func(ProcessID, []byte) { count++ })
	c.Run(2 * time.Second)

	// Send and join back to back: the flush orders the send before the
	// admission, so the snapshot must already count it.
	_ = g1.Send([]byte("tick"))
	var got string
	g2, _ := c.Process(2).Join("ctr")
	g2.OnState(func(s []byte) { got = string(s) })
	c.Run(4 * time.Second)
	if got != "1" {
		t.Errorf("snapshot = %q, want %q (message sent before join must be included)", got, "1")
	}
}

package plwg

// This file hosts one testing.B benchmark per table and figure of the
// paper's evaluation, as `go test -bench` entry points. Each benchmark
// runs a scaled-down instance of the corresponding experiment on the
// deterministic simulator and reports the experiment's headline metric
// through b.ReportMetric, so `go test -bench=. -benchmem` regenerates the
// whole evaluation surface. The full-resolution sweeps (paper-scale n and
// longer measurement windows) are produced by cmd/lwgbench and
// cmd/lwgsim.

import (
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"plwg/internal/bench"
	"plwg/internal/ids"
	"plwg/internal/naming"
	"plwg/internal/policy"
	"plwg/internal/workload"
)

// benchDurations trades a little resolution for benchmark turnaround.
func benchDurations() bench.Durations {
	return bench.Durations{
		SetupMax:    60 * time.Second,
		Measure:     2 * time.Second,
		RecoveryMax: 20 * time.Second,
	}
}

// BenchmarkFig2Latency reproduces Figure 2's data-transfer latency
// series: mean one-way delivery latency under fixed offered load, per
// configuration, at n = 8 groups per set.
func BenchmarkFig2Latency(b *testing.B) {
	for _, mode := range bench.Modes {
		b.Run(mode.String(), func(b *testing.B) {
			var last bench.LatencyResult
			for i := 0; i < b.N; i++ {
				last = bench.RunLatency(mode, 8, int64(i+1), benchDurations())
				if !last.Converged {
					b.Fatal("run did not converge")
				}
			}
			b.ReportMetric(last.MeanMs, "latency-ms")
			b.ReportMetric(last.P99Ms, "p99-ms")
		})
	}
}

// BenchmarkFig2Throughput reproduces Figure 2's throughput series:
// aggregate delivered payload with closed-loop senders, at n = 8.
func BenchmarkFig2Throughput(b *testing.B) {
	for _, mode := range bench.Modes {
		b.Run(mode.String(), func(b *testing.B) {
			var last bench.ThroughputResult
			for i := 0; i < b.N; i++ {
				last = bench.RunThroughput(mode, 8, int64(i+1), benchDurations())
				if !last.Converged {
					b.Fatal("run did not converge")
				}
			}
			b.ReportMetric(last.TotalKBps, "KB/s")
			b.ReportMetric(last.MsgsPerSec, "msgs/s")
		})
	}
}

// BenchmarkFig2Recovery reproduces Figure 2's recovery-time series: time
// until every group containing a crashed member reinstalls its view, plus
// the disruption inflicted on an unrelated group (the interference
// effect), at n = 8.
func BenchmarkFig2Recovery(b *testing.B) {
	for _, mode := range bench.Modes {
		b.Run(mode.String(), func(b *testing.B) {
			var last bench.RecoveryResult
			for i := 0; i < b.N; i++ {
				last = bench.RunRecovery(mode, 8, int64(i+1), benchDurations())
				if !last.Converged {
					b.Fatal("run did not converge")
				}
			}
			b.ReportMetric(last.MaxMs, "recovery-ms")
			b.ReportMetric(last.UnrelatedProbeMaxMs, "unrelated-disruption-ms")
		})
	}
}

// BenchmarkTable3Reconcile reproduces Table 3: the naming-service
// database merge after a partition heals. The metric is the virtual time
// from heal to the merged (conflicting) database being visible.
func BenchmarkTable3Reconcile(b *testing.B) {
	var ms float64
	for i := 0; i < b.N; i++ {
		c, _ := NewCluster(Config{Nodes: 8, NameServers: []int{0, 4}, Seed: int64(i + 1)})
		c.Partition([]int{0, 1, 2, 3}, []int{4, 5, 6, 7})
		_, _ = c.Process(1).Join("a")
		_, _ = c.Process(5).Join("a")
		c.Run(4 * time.Second)
		healAt := c.Now()
		c.Heal()
		if !c.RunUntil(func() bool {
			return strings.Count(c.NamingDump(), "->") >= 3 // one server merged both mappings
		}, 20*time.Millisecond, 10*time.Second) {
			b.Fatal("databases never merged")
		}
		ms = float64(c.Now()-healAt) / float64(time.Millisecond)
	}
	b.ReportMetric(ms, "merge-visible-ms")
}

// BenchmarkTable4Convergence reproduces Table 4: the full evolution from
// inconsistent mappings to a single merged view, measuring heal-to-
// convergence time (stages 1–4 of Section 6).
func BenchmarkTable4Convergence(b *testing.B) {
	var ms float64
	for i := 0; i < b.N; i++ {
		c, _ := NewCluster(Config{Nodes: 8, NameServers: []int{0, 4}, Seed: int64(i + 1)})
		c.Partition([]int{0, 1, 2, 3}, []int{4, 5, 6, 7})
		gA, _ := c.Process(1).Join("a")
		gB, _ := c.Process(5).Join("a")
		c.Run(4 * time.Second)
		healAt := c.Now()
		c.Heal()
		if !c.RunUntil(func() bool {
			vA, okA := gA.View()
			vB, okB := gB.View()
			return okA && okB && vA.ID == vB.ID && len(vA.Members) == 2
		}, 50*time.Millisecond, 30*time.Second) {
			b.Fatal("views never merged")
		}
		ms = float64(c.Now()-healAt) / float64(time.Millisecond)
	}
	b.ReportMetric(ms, "heal-to-converged-ms")
}

// BenchmarkMergeViewsFlushSharing quantifies the Figure 5 design point:
// one forced HWG flush merges the concurrent views of ALL light-weight
// groups mapped on it at once, so the per-LWG merge cost drops as more
// LWGs share the HWG. The metric is heal-to-convergence time per LWG.
func BenchmarkMergeViewsFlushSharing(b *testing.B) {
	for _, groups := range []int{1, 4, 16} {
		b.Run(groupCountLabel(groups), func(b *testing.B) {
			var perLwgMs float64
			for i := 0; i < b.N; i++ {
				c, _ := NewCluster(Config{Nodes: 8, NameServers: []int{0, 4}, Seed: int64(i + 1)})
				names := make([]GroupName, groups)
				handles := make(map[GroupName][]*Group)
				for g := 0; g < groups; g++ {
					names[g] = GroupName("g" + string(rune('a'+g%26)) + string(rune('0'+g/26)))
				}
				for _, name := range names {
					for _, p := range []int{1, 2, 5, 6} {
						h, err := c.Process(p).Join(name)
						if err != nil {
							b.Fatal(err)
						}
						handles[name] = append(handles[name], h)
					}
					c.Run(300 * time.Millisecond)
				}
				c.Run(5 * time.Second)
				c.Partition([]int{0, 1, 2, 3}, []int{4, 5, 6, 7})
				c.Run(4 * time.Second)
				healAt := c.Now()
				c.Heal()
				ok := c.RunUntil(func() bool {
					for _, hs := range handles {
						ref, has := hs[0].View()
						if !has || len(ref.Members) != 4 {
							return false
						}
						for _, h := range hs[1:] {
							v, has := h.View()
							if !has || v.ID != ref.ID {
								return false
							}
						}
					}
					return true
				}, 100*time.Millisecond, 60*time.Second)
				if !ok {
					b.Fatal("views never merged")
				}
				perLwgMs = float64(c.Now()-healAt) / float64(time.Millisecond) / float64(groups)
			}
			b.ReportMetric(perLwgMs, "heal-ms-per-lwg")
		})
	}
}

// BenchmarkPolicyRules measures the pure cost of one Figure 1 heuristics
// pass over many groups (the paper runs it once a minute precisely
// because it is cheap).
func BenchmarkPolicyRules(b *testing.B) {
	p := policy.DefaultParams()
	var hwgs []policy.HWG
	for i := 0; i < 50; i++ {
		members := make([]ids.ProcessID, 8)
		for j := range members {
			members[j] = ids.ProcessID((i + j) % 64)
		}
		hwgs = append(hwgs, policy.HWG{GID: ids.HWGID(i + 1), Members: ids.NewMembers(members...)})
	}
	lwg := ids.NewMembers(1, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 1; j < len(hwgs); j++ {
			policy.ShouldCollapse(hwgs[0].Members, hwgs[j].Members, p)
		}
		policy.Interference(lwg, hwgs[0], hwgs, p)
	}
}

// BenchmarkNamingMerge measures the naming-service database merge (the
// reconciliation primitive run on every anti-entropy exchange) across
// database sizes — the paper's §5.2 scalability concern.
func BenchmarkNamingMerge(b *testing.B) {
	for _, size := range []int{100, 1000, 5000} {
		b.Run(fmt.Sprintf("%d-entries", size), func(b *testing.B) {
			var entries []naming.Entry
			for i := 0; i < size; i++ {
				entries = append(entries, naming.Entry{
					LWG:  ids.LWGID(fmt.Sprintf("g%d", i%(size/4+1))),
					View: ids.ViewID{Coord: ids.ProcessID(i % 8), Seq: uint64(i + 1)},
					HWG:  ids.HWGID(i%16 + 1),
					Ver:  1,
				})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				db := naming.NewDB()
				db.Merge(entries)
			}
			b.ReportMetric(float64(size)/float64(b.Elapsed().Nanoseconds()/int64(b.N))*1e9, "entries/s")
		})
	}
}

// BenchmarkSimulatorEventRate measures the raw event throughput of the
// discrete-event substrate (events of simulated work per wall-clock
// second), the limit on experiment scale.
func BenchmarkSimulatorEventRate(b *testing.B) {
	h := bench.NewHarness(bench.DynamicLWG, workload.Fig2Topology(4), 1)
	if !h.Setup(60 * time.Second) {
		b.Fatal("setup failed")
	}
	for gi, g := range h.Topo.Groups {
		gi, g := gi, g
		h.Every(5*time.Millisecond, func() { h.Send(gi, g.Sender(), 512) })
	}
	start := h.S.Steps()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.S.RunFor(100 * time.Millisecond)
	}
	b.StopTimer()
	b.ReportMetric(float64(h.S.Steps()-start)/float64(b.N), "events/op")
}

func groupCountLabel(n int) string {
	switch n {
	case 1:
		return "1-lwg"
	case 4:
		return "4-lwgs"
	default:
		return "16-lwgs"
	}
}

var _ io.Writer // keep io imported if renderers move here later

package rtnet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"plwg/internal/core"
	"plwg/internal/ids"
	"plwg/internal/metrics"
	"plwg/internal/trace"
)

// startDebugCluster boots a cluster like startCluster but instruments
// node 0 with a metrics registry and a trace ring.
func startDebugCluster(t *testing.T, n int) ([]*Node, []*collector, *metrics.Registry, *trace.Ring) {
	t.Helper()
	reg := metrics.NewRegistry()
	ring := trace.NewRing(trace.DefaultRingCapacity)
	nodes := make([]*Node, n)
	cols := make([]*collector, n)
	for i := 0; i < n; i++ {
		cols[i] = &collector{}
		cfg := NodeConfig{
			PID:         ids.ProcessID(i),
			Listen:      "127.0.0.1:0",
			NameServers: []ids.ProcessID{0},
			Upcalls:     cols[i],
			Seed:        int64(i + 1),
		}
		if i == 0 {
			cfg.Metrics = reg
			cfg.Tracer = ring
		}
		node, err := Listen(cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	peers := make(map[ids.ProcessID]string, n)
	for i, node := range nodes {
		peers[ids.ProcessID(i)] = node.Addr().String()
	}
	for _, node := range nodes {
		if err := node.SetPeers(peers); err != nil {
			t.Fatal(err)
		}
		if err := node.Start(); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, node := range nodes {
			node.Close()
		}
	})
	return nodes, cols, reg, ring
}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// parseTextMetrics parses the /metrics exposition format back into a
// name{labels} -> value map, failing the test on any malformed line.
func parseTextMetrics(t *testing.T, body string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for ln, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			fields := strings.Fields(rest)
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed TYPE comment %q", ln+1, line)
			}
			switch fields[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown metric kind %q", ln+1, fields[1])
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value separator in %q", ln+1, line)
		}
		val, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("line %d: bad value in %q: %v", ln+1, line, err)
		}
		name := line[:sp]
		if _, dup := out[name]; dup {
			t.Fatalf("line %d: duplicate series %q", ln+1, name)
		}
		out[name] = val
	}
	return out
}

// TestDebugEndpoints drives live traffic through a 3-node UDP cluster
// and checks the debug surface of the instrumented node: /metrics
// parses and carries every layer's families, /debug/trace is valid
// JSONL that stitches, and /debug/lwg reports the converged membership.
func TestDebugEndpoints(t *testing.T) {
	nodes, cols, _, _ := startDebugCluster(t, 3)
	for i := range nodes {
		i := i
		nodes[i].Do(func(ep *core.Endpoint) {
			if err := ep.Join("dbg"); err != nil {
				t.Errorf("join at %d: %v", i, err)
			}
		})
	}
	eventually(t, 15*time.Second, func() bool {
		v, ok := cols[0].lastView()
		return ok && v.Members.Equal(ids.NewMembers(0, 1, 2))
	}, "membership did not converge")

	srv := httptest.NewServer(nodes[0].DebugHandler())
	defer srv.Close()

	// Keep traffic flowing while the endpoints are scraped: the handlers
	// must be safe against a live protocol loop (the -race run enforces
	// it).
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			nodes[i%3].Do(func(ep *core.Endpoint) {
				_ = ep.Send("dbg", []byte("debug-traffic"))
			})
			time.Sleep(2 * time.Millisecond)
		}
	}()
	defer func() { close(stop); <-done }()

	for i := 0; i < 5; i++ {
		code, body := httpGet(t, srv.URL+"/metrics")
		if code != http.StatusOK {
			t.Fatalf("/metrics status %d", code)
		}
		series := parseTextMetrics(t, body)
		for _, want := range []string{
			"rtnet_datagrams_sent_total", "rtnet_datagrams_recv_total",
			"hwg_sends_total", "hwg_view_installs_total",
			"lwg_joins_total", "lwg_view_installs_total",
			"ns_rounds_total",
		} {
			if _, ok := series[want]; !ok {
				t.Fatalf("scrape %d: /metrics missing %s\n%s", i, want, body)
			}
		}
		if series["lwg_groups"] != 1 {
			t.Errorf("lwg_groups = %v, want 1", series["lwg_groups"])
		}

		code, body = httpGet(t, srv.URL+"/debug/trace")
		if code != http.StatusOK {
			t.Fatalf("/debug/trace status %d", code)
		}
		events, err := trace.ParseJSONL(strings.NewReader(body))
		if err != nil {
			t.Fatalf("scrape %d: /debug/trace is not valid JSONL: %v", i, err)
		}
		if len(events) == 0 {
			t.Fatalf("scrape %d: /debug/trace returned no events", i)
		}
		for _, ev := range events {
			if ev.Node != 0 {
				t.Fatalf("event from foreign node %v in local ring", ev.Node)
			}
		}
		if i == 0 {
			if ops := trace.Stitch(events); len(ops) == 0 {
				t.Error("no ops stitched from the live trace ring")
			}
		}
		time.Sleep(20 * time.Millisecond)
	}

	code, body := httpGet(t, srv.URL+"/debug/lwg")
	if code != http.StatusOK {
		t.Fatalf("/debug/lwg status %d", code)
	}
	var dbg DebugLWG
	if err := json.Unmarshal([]byte(body), &dbg); err != nil {
		t.Fatalf("/debug/lwg is not valid JSON: %v\n%s", err, body)
	}
	if dbg.PID != 0 {
		t.Errorf("pid = %v, want 0", dbg.PID)
	}
	if len(dbg.LWGs) != 1 || dbg.LWGs[0].LWG != "dbg" {
		t.Fatalf("lwgs = %+v, want one entry for dbg", dbg.LWGs)
	}
	if got := len(dbg.LWGs[0].Members); got != 3 {
		t.Errorf("members = %v, want 3", dbg.LWGs[0].Members)
	}
	if dbg.LWGs[0].HWG == "" || len(dbg.HWGs) == 0 {
		t.Errorf("mapping not reported: %+v hwgs=%v", dbg.LWGs[0], dbg.HWGs)
	}

	code, _ = httpGet(t, srv.URL+"/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status %d", code)
	}
}

// debugFetch is the goroutine-safe httpGet: scraper goroutines cannot
// call t.Fatalf, so failures come back as errors.
func debugFetch(url string) (int, string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, "", err
	}
	return resp.StatusCode, string(body), nil
}

// TestDebugEndpointsConcurrent hammers every debug endpoint from several
// goroutines while protocol traffic flows AND the fault table mutates
// underneath (SetFaults / SetLinkFault / Block / ClearFaults mid-scrape).
// The -race run is the real assertion: the debug surface — which is what
// lwgcollect polls in production — must never race the protocol loop or
// the fault layer, and every response must stay parseable even while the
// cluster is being actively broken.
func TestDebugEndpointsConcurrent(t *testing.T) {
	nodes, cols, _, ring := startDebugCluster(t, 3)
	for i := range nodes {
		nodes[i].Do(func(ep *core.Endpoint) { _ = ep.Join("dbg") })
	}
	eventually(t, 15*time.Second, func() bool {
		v, ok := cols[0].lastView()
		return ok && v.Members.Equal(ids.NewMembers(0, 1, 2))
	}, "membership did not converge")

	srv := httptest.NewServer(nodes[0].DebugHandler())
	defer srv.Close()

	stop := make(chan struct{})
	var bgWg, scrWg sync.WaitGroup

	// Traffic: every node keeps sending while the scrapers run.
	bgWg.Add(1)
	go func() {
		defer bgWg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			nodes[i%3].Do(func(ep *core.Endpoint) {
				_ = ep.Send("dbg", []byte("concurrent-traffic"))
			})
			time.Sleep(time.Millisecond)
		}
	}()

	// Fault mutator: cycle the whole mutation surface against the live
	// links — spec installs, per-link overrides, symmetric blocks, clears.
	bgWg.Add(1)
	go func() {
		defer bgWg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 4 {
			case 0:
				if err := nodes[0].SetFaults("loss=0.1,dup=0.1,delay=100us..1ms"); err != nil {
					t.Errorf("SetFaults: %v", err)
				}
			case 1:
				nodes[0].SetLinkFault(2, &FaultRule{Reorder: 0.5, DelayMax: time.Millisecond})
				nodes[1].Block(2)
			case 2:
				nodes[1].Unblock()
				nodes[0].SetLinkFault(2, nil)
			case 3:
				nodes[0].ClearFaults()
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Scrapers: four concurrent pollers × every endpoint, exactly the
	// load pattern a collector fleet puts on one node.
	scrapeErrs := make(chan error, 64)
	for g := 0; g < 4; g++ {
		scrWg.Add(1)
		go func() {
			defer scrWg.Done()
			for i := 0; i < 25; i++ {
				for _, path := range []string{"/metrics", "/debug/trace", "/debug/lwg"} {
					code, body, err := debugFetch(srv.URL + path)
					if err != nil || code != http.StatusOK {
						select {
						case scrapeErrs <- fmt.Errorf("%s: code %d err %v", path, code, err):
						default:
						}
						continue
					}
					switch path {
					case "/debug/trace":
						if _, err := trace.ParseJSONL(strings.NewReader(body)); err != nil {
							select {
							case scrapeErrs <- fmt.Errorf("trace JSONL under load: %v", err):
							default:
							}
						}
					case "/debug/lwg":
						var dbg DebugLWG
						if err := json.Unmarshal([]byte(body), &dbg); err != nil {
							select {
							case scrapeErrs <- fmt.Errorf("lwg JSON under load: %v", err):
							default:
							}
						}
					}
				}
			}
		}()
	}

	// The scrapers bound the run; the traffic and mutator loops stop once
	// they finish (or once a generous deadline decides something wedged).
	done := make(chan struct{})
	go func() { scrWg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Error("concurrent debug scrape did not finish in 60s")
	}
	close(stop)
	bgWg.Wait()
	for len(scrapeErrs) > 0 {
		t.Error(<-scrapeErrs)
	}

	// Leave the cluster healthy and the surface coherent: faults cleared,
	// one final scrape parses, and the ring kept absorbing events.
	nodes[0].ClearFaults()
	nodes[1].Unblock()
	code, body := httpGet(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("final /metrics status %d", code)
	}
	parseTextMetrics(t, body)
	if ring.Total() == 0 {
		t.Error("trace ring absorbed no events during the run")
	}
}

// TestDebugEndpointsDisabled covers the uninstrumented node: the debug
// surface stays up but reports the disabled subsystems as 404.
func TestDebugEndpointsDisabled(t *testing.T) {
	nodes, _ := startCluster(t, 1, []ids.ProcessID{0})
	srv := httptest.NewServer(nodes[0].DebugHandler())
	defer srv.Close()

	if code, _ := httpGet(t, srv.URL+"/metrics"); code != http.StatusNotFound {
		t.Errorf("/metrics without registry: status %d, want 404", code)
	}
	if code, _ := httpGet(t, srv.URL+"/debug/trace"); code != http.StatusNotFound {
		t.Errorf("/debug/trace without ring: status %d, want 404", code)
	}
	if code, _ := httpGet(t, srv.URL+"/debug/lwg"); code != http.StatusOK {
		t.Errorf("/debug/lwg status %d, want 200", code)
	}
}

package rtnet

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"plwg/internal/ids"
	"plwg/internal/metrics"
	"plwg/internal/netsim"
	"plwg/internal/sim"
	"plwg/internal/wire"
)

// envelope is the unit of transfer: one encoded envelope per UDP
// datagram (pre-fragmentation). A leading tag byte selects the codec:
// hot message types that implement wire.Marshaler use the compact
// binary codec; everything else rides a per-datagram gob stream (gob
// re-sends type descriptors on every independent stream, which is why
// the hot path avoids it). Concrete message types must be registered
// with gob by the protocol packages (their RegisterWireTypes
// functions), which also install the codec decoders.
type envelope struct {
	From ids.ProcessID
	Addr string
	Uni  bool
	Msg  netsim.Message
}

const (
	envGob   byte = 0 // gob-encoded envelope follows
	envCodec byte = 1 // binary codec: From, Uni, Addr, then the message
)

// Transport is a netsim.Transport over UDP. Multicast is emulated by
// unicast fan-out to every peer; receivers filter by their local
// subscriptions, which matches the semantics of the simulated network
// (and of IP multicast on a LAN segment).
type Transport struct {
	d     *Driver
	pid   ids.ProcessID
	conn  *net.UDPConn
	peers map[ids.ProcessID]*net.UDPAddr
	order []ids.ProcessID // deterministic fan-out order

	// Loop-confined state.
	subs    map[netsim.Addr]bool
	handler netsim.Handler
	// blocked emulates a network partition on the real transport:
	// traffic to and from the listed peers is dropped.
	blocked map[ids.ProcessID]bool

	// nextMsgID numbers outgoing envelopes for fragmentation
	// (loop-confined).
	nextMsgID uint64

	// faults injects per-link loss/dup/reorder/delay/one-way-block on
	// the send path. Mutable from any goroutine (see faults.go).
	faults *faultTable

	// ins holds the wire-level instruments. Counters are atomic and
	// nil-safe, so the reader goroutine and timer callbacks may bump
	// them without coordination.
	ins transportMetrics

	closeOnce sync.Once
	closed    chan struct{}
	readerWG  sync.WaitGroup
}

var _ netsim.Transport = (*Transport)(nil)

// transportMetrics are the transport's wire-level instruments. With
// metrics disabled every field is nil and the nil-receiver methods
// no-op.
type transportMetrics struct {
	dgramsSent *metrics.Counter
	bytesSent  *metrics.Counter
	dgramsRecv *metrics.Counter
	bytesRecv  *metrics.Counter
	faultDrops *metrics.Counter
}

// Instrument resolves the transport's counters from the registry (nil
// disables them). Call before Start.
func (t *Transport) Instrument(r *metrics.Registry) {
	t.ins = transportMetrics{
		dgramsSent: r.Counter("rtnet_datagrams_sent_total"),
		bytesSent:  r.Counter("rtnet_bytes_sent_total"),
		dgramsRecv: r.Counter("rtnet_datagrams_recv_total"),
		bytesRecv:  r.Counter("rtnet_bytes_recv_total"),
		faultDrops: r.Counter("rtnet_fault_drops_total"),
	}
}

func (t *Transport) countSend(n int) {
	t.ins.dgramsSent.Inc()
	t.ins.bytesSent.Add(int64(n))
}

// NewTransport builds the node's transport on an already-bound UDP
// connection. peers maps every process (other than this one) to its UDP
// address. Call SetHandler before Start.
func NewTransport(d *Driver, pid ids.ProcessID, conn *net.UDPConn, peers map[ids.ProcessID]*net.UDPAddr) *Transport {
	t := &Transport{
		d:       d,
		pid:     pid,
		conn:    conn,
		peers:   make(map[ids.ProcessID]*net.UDPAddr, len(peers)),
		subs:    make(map[netsim.Addr]bool),
		blocked: make(map[ids.ProcessID]bool),
		faults:  newFaultTable(1),
		closed:  make(chan struct{}),
	}
	for p, a := range peers {
		if p == pid {
			continue
		}
		t.peers[p] = a
		t.order = append(t.order, p)
	}
	t.order = []ids.ProcessID(ids.NewMembers(t.order...))
	return t
}

// SetHandler installs the node's message dispatcher (typically a
// netsim.Mux handler). Must be called before Start.
func (t *Transport) SetHandler(h netsim.Handler) { t.handler = h }

// Start launches the UDP reader.
func (t *Transport) Start() {
	t.readerWG.Add(1)
	go t.readLoop()
}

// Close shuts the reader down and closes the socket.
func (t *Transport) Close() {
	t.closeOnce.Do(func() { close(t.closed) })
	_ = t.conn.Close()
	t.readerWG.Wait()
}

// LocalAddr returns the bound UDP address.
func (t *Transport) LocalAddr() *net.UDPAddr {
	a, _ := t.conn.LocalAddr().(*net.UDPAddr)
	return a
}

// Sim implements netsim.Transport.
func (t *Transport) Sim() *sim.Sim { return t.d.Sim() }

// Subscribe implements netsim.Transport (local node only).
func (t *Transport) Subscribe(id netsim.NodeID, addr netsim.Addr) {
	if id == t.pid {
		t.subs[addr] = true
	}
}

// Unsubscribe implements netsim.Transport (local node only).
func (t *Transport) Unsubscribe(id netsim.NodeID, addr netsim.Addr) {
	if id == t.pid {
		delete(t.subs, addr)
	}
}

// Block drops all traffic to and from the listed peers until Unblock —
// fault injection emulating a network partition on the real transport.
// Must be called on the driver loop (via Driver.Do/Call).
func (t *Transport) Block(peers ...ids.ProcessID) {
	for _, p := range peers {
		t.blocked[p] = true
	}
}

// Unblock lifts all Block rules. Must be called on the driver loop.
func (t *Transport) Unblock() {
	t.blocked = make(map[ids.ProcessID]bool)
}

// SeedFaults reseeds the fault-injection RNG; decisions are a pure
// function of the seed and the outgoing datagram sequence. Safe from
// any goroutine.
func (t *Transport) SeedFaults(seed int64) { t.faults.reseed(seed) }

// SetFaultSpec replaces the whole fault configuration (nil clears all
// rules). Safe from any goroutine, including while traffic flows.
func (t *Transport) SetFaultSpec(fs *FaultSpec) { t.faults.install(fs) }

// SetDefaultFault sets the rule applied to every link without an
// explicit override (nil restores a clean default). Safe from any
// goroutine.
func (t *Transport) SetDefaultFault(r *FaultRule) { t.faults.setDefault(r) }

// SetLinkFault overrides the rule for the directed link to one peer
// (nil removes the override, falling back to the default rule). Safe
// from any goroutine.
func (t *Transport) SetLinkFault(to ids.ProcessID, r *FaultRule) { t.faults.setLink(to, r) }

// sendChunks pushes the datagrams of one message to one peer through
// the fault table: drop, duplicate, or delay each chunk as the link's
// rule dictates. Must be called on the driver loop (delayed copies are
// scheduled on the driver's clock; the writes themselves may then fire
// from timer callbacks, which is fine — *net.UDPConn writes are
// thread-safe).
func (t *Transport) sendChunks(to ids.ProcessID, addr *net.UDPAddr, chunks [][]byte) {
	for _, c := range chunks {
		send, delays := t.faults.plan(to)
		if !send {
			t.ins.faultDrops.Inc()
			continue
		}
		if delays == nil {
			_, _ = t.conn.WriteToUDP(c, addr)
			t.countSend(len(c))
			continue
		}
		for _, d := range delays {
			if d <= 0 {
				_, _ = t.conn.WriteToUDP(c, addr)
				t.countSend(len(c))
				continue
			}
			c := c
			t.d.Sim().After(d, func() {
				select {
				case <-t.closed:
				default:
					_, _ = t.conn.WriteToUDP(c, addr)
					t.countSend(len(c))
				}
			})
		}
	}
}

// Multicast implements netsim.Transport: fan out to every peer and loop
// back locally if subscribed. Must be called on the driver loop.
func (t *Transport) Multicast(from netsim.NodeID, addr netsim.Addr, msg netsim.Message) {
	if from != t.pid {
		return
	}
	buf, err := encodeEnvelope(&envelope{From: from, Addr: string(addr), Msg: msg})
	if err != nil {
		return // unregistered type; nothing sane to do at this layer
	}
	t.nextMsgID++
	chunks := fragment(t.nextMsgID, buf.B)
	buf.Release()
	for _, p := range t.order {
		if t.blocked[p] {
			continue
		}
		t.sendChunks(p, t.peers[p], chunks)
	}
	if t.subs[addr] {
		// Local delivery stays asynchronous, like a looped-back packet.
		t.d.Sim().After(0, func() {
			if t.handler != nil && t.subs[addr] {
				t.handler(from, addr, msg)
			}
		})
	}
}

// Unicast implements netsim.Transport. Must be called on the driver loop.
func (t *Transport) Unicast(from, to netsim.NodeID, addr netsim.Addr, msg netsim.Message) {
	if from != t.pid {
		return
	}
	if to == t.pid {
		t.d.Sim().After(0, func() {
			if t.handler != nil {
				t.handler(from, addr, msg)
			}
		})
		return
	}
	peer, ok := t.peers[to]
	if !ok || t.blocked[to] {
		return
	}
	buf, err := encodeEnvelope(&envelope{From: from, Addr: string(addr), Uni: true, Msg: msg})
	if err != nil {
		return
	}
	t.nextMsgID++
	chunks := fragment(t.nextMsgID, buf.B)
	buf.Release()
	t.sendChunks(to, peer, chunks)
}

func (t *Transport) readLoop() {
	defer t.readerWG.Done()
	buf := make([]byte, 256*1024)
	reasm := newReassembler()
	for {
		n, raddr, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-t.closed:
				return
			default:
				// Transient error; keep reading until closed.
				continue
			}
		}
		t.ins.dgramsRecv.Inc()
		t.ins.bytesRecv.Add(int64(n))
		data, err := reasm.add(raddr.String(), buf[:n])
		if err != nil || data == nil {
			continue // malformed, or more chunks to come
		}
		env, err := decodeEnvelope(data)
		if err != nil {
			continue // malformed datagram
		}
		t.d.Do(func() {
			if t.blocked[env.From] {
				return // partitioned away
			}
			addr := netsim.Addr(env.Addr)
			if !env.Uni && !t.subs[addr] {
				return // not subscribed: filtered like IP multicast
			}
			if t.handler != nil {
				t.handler(env.From, addr, env.Msg)
			}
		})
	}
}

// encodeEnvelope serializes the envelope into a pooled buffer. The
// caller must Release the buffer once the bytes are copied out
// (fragment copies them into per-chunk datagrams). The gob fallback
// shares the pooled storage but still pays a fresh encoder per
// datagram: each datagram is decoded as an independent stream, and gob
// streams cannot be split (the type descriptors live at the front).
func encodeEnvelope(env *envelope) (*wire.Buffer, error) {
	b := wire.GetBuffer()
	if m, ok := env.Msg.(wire.Marshaler); ok {
		b.Byte(envCodec)
		b.Int64(int64(env.From))
		b.Bool(env.Uni)
		b.String(env.Addr)
		if wire.Encode(b, m) {
			return b, nil
		}
		// Nested content without codec support (e.g. a data message
		// carrying an unregistered payload): gob the whole envelope.
		b.Reset()
	}
	b.Byte(envGob)
	if err := gob.NewEncoder(b).Encode(env); err != nil {
		b.Release()
		return nil, fmt.Errorf("encode envelope: %w", err)
	}
	return b, nil
}

func decodeEnvelope(data []byte) (envelope, error) {
	if len(data) == 0 {
		return envelope{}, fmt.Errorf("decode envelope: empty")
	}
	switch data[0] {
	case envCodec:
		r := wire.NewReader(data[1:])
		env := envelope{From: ids.ProcessID(r.Int64())}
		env.Uni = r.Bool()
		env.Addr = r.String()
		m, err := wire.Decode(r)
		if err != nil {
			return envelope{}, fmt.Errorf("decode envelope: %w", err)
		}
		msg, ok := m.(netsim.Message)
		if !ok {
			return envelope{}, fmt.Errorf("decode envelope: %T is not a message", m)
		}
		env.Msg = msg
		return env, nil
	case envGob:
		var env envelope
		if err := gob.NewDecoder(bytes.NewReader(data[1:])).Decode(&env); err != nil {
			return envelope{}, fmt.Errorf("decode envelope: %w", err)
		}
		return env, nil
	default:
		return envelope{}, fmt.Errorf("decode envelope: unknown codec tag %d", data[0])
	}
}

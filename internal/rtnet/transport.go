// The transport's data plane is pipelined across goroutines while the
// protocol itself stays on the single-threaded driver loop:
//
//	       UDP socket
//	           │ ReadFromUDPAddrPort (reader goroutine: syscall only)
//	           ▼
//	hash(source) % W  ──────────────► decode worker pool (W goroutines)
//	                                  reassembly + decodeEnvelope,
//	                                  batch into []envelope
//	           ┌──────────────────────────┘ Driver.doEnvBatch
//	           ▼
//	    driver loop (single goroutine)
//	    subscription filter, partition filter, handler upcalls,
//	    protocol stacks, fault-injection decisions, encode + fragment
//	           │ sendChunks → send rings (bounded, sharded by peer)
//	           ▼
//	    writer goroutines ── WriteToUDPAddrPort ──► UDP socket
//
// Invariants that make this safe:
//
//   - Datagrams partition across decode workers by source address, so
//     all fragments of one message reassemble in one worker's private
//     reassembler and per-source arrival order is preserved end to end
//     (worker channel FIFO → batch order → inbox FIFO).
//   - Every protocol decision that consumes randomness — the fault
//     table's drop/duplicate/delay plan — runs on the loop, in the
//     same order as the historical inline path, so a seed replays the
//     identical fault schedule and lwgcheck -rtnet reproducers stay
//     deterministic. Writers only move already-decided bytes.
//   - Encoded single-datagram messages fan out to N peers as one
//     reference-counted wire.Buffer (the fragment header is written in
//     place); the last writer to finish releases it to the pool.
//   - The send path shards by destination: each writer owns one ring
//     and each peer maps to one ring, so a peer's datagrams leave in
//     FIFO order. (A single shared ring with concurrent writers would
//     reorder adjacent same-peer datagrams on every send; the
//     protocols treat reordering as rare transport misbehaviour to
//     repair, not a steady state to live under.)
//   - The rings are bounded: when a writer falls behind, enqueue drops
//     the datagram and counts rtnet_send_ring_overflow_total instead
//     of blocking the protocol loop. UDP loss is already part of the
//     model; the vsync NACK machinery repairs it.
//
// Shutdown ordering: Close closes t.closed and the socket; the reader
// unblocks, exits, and closes the worker channels; workers drain their
// channels and exit; writers exit on t.closed; Close then drains any
// requests left in the ring to release their buffers.
package rtnet

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"net"
	"net/netip"
	"runtime"
	"sync"
	"time"

	"plwg/internal/ids"
	"plwg/internal/metrics"
	"plwg/internal/netsim"
	"plwg/internal/sim"
	"plwg/internal/trace"
	"plwg/internal/wire"
)

// envelope is the unit of transfer: one encoded envelope per UDP
// datagram (pre-fragmentation). A leading tag byte selects the codec:
// hot message types that implement wire.Marshaler use the compact
// binary codec; everything else rides a per-datagram gob stream (gob
// re-sends type descriptors on every independent stream, which is why
// the hot path avoids it). Concrete message types must be registered
// with gob by the protocol packages (their RegisterWireTypes
// functions), which also install the codec decoders.
type envelope struct {
	From ids.ProcessID
	Addr string
	Uni  bool
	Msg  netsim.Message

	// tc is the optional wire-level trace context. Unexported so the gob
	// fallback never serializes it as part of the body: the context rides
	// between the tag byte and the body (envCodecTC/envGobTC), one layout
	// for both codecs, invisible to decoders that predate it.
	tc *wire.TraceCtx
}

const (
	envGob     byte = 0 // gob-encoded envelope follows
	envCodec   byte = 1 // binary codec: From, Uni, Addr, then the message
	envCodecTC byte = 2 // trace context, then the envCodec layout
	envGobTC   byte = 3 // trace context, then the envGob layout
)

// PipelineConfig tunes the transport's parallel data plane. The zero
// value picks defaults (a small decode pool and two writer goroutines,
// sized off the core count). Set Inline to run the whole data plane on
// the reader and loop goroutines — the historical single-goroutine
// path, kept as the A/B baseline for the rt-throughput experiment.
type PipelineConfig struct {
	// Inline disables the pipeline: envelopes decode on the reader
	// goroutine and enter the loop one at a time, and WriteToUDP runs
	// synchronously on the protocol loop.
	Inline bool
	// DecodeWorkers is the decode pool size (default min(4, NumCPU)).
	// Datagrams partition across workers by source address, so all
	// fragments of one message reassemble on one worker and per-source
	// arrival order is preserved.
	DecodeWorkers int
	// SendWriters is the number of writer goroutines (default 2). Each
	// writer drains its own send-ring shard and peers map to shards by
	// address hash, preserving per-peer datagram order.
	SendWriters int
	// SendRingSize bounds the send rings' total capacity across shards
	// (default 4096 datagrams). When a destination's shard is full the
	// datagram is dropped and counted in
	// rtnet_send_ring_overflow_total — explicit backpressure instead of
	// silently blocking the protocol loop.
	SendRingSize int
}

const (
	defaultSendRing = 4096
	defaultWriters  = 2
	// envBatch caps how many decoded envelopes one worker submits per
	// DoBatch: large enough to amortize the inbox lock and wakeup over
	// a burst, small enough to keep delivery latency flat.
	envBatch = 64
	// rxQueueLen is the per-worker datagram queue. When a worker's
	// queue is full the reader blocks — backpressure onto the socket
	// buffer, which is the component sized to absorb bursts.
	rxQueueLen = 512
)

func (pc PipelineConfig) resolved() PipelineConfig {
	if pc.Inline {
		return PipelineConfig{Inline: true}
	}
	if pc.DecodeWorkers <= 0 {
		pc.DecodeWorkers = runtime.NumCPU()
		if pc.DecodeWorkers > 4 {
			pc.DecodeWorkers = 4
		}
		if pc.DecodeWorkers < 1 {
			pc.DecodeWorkers = 1
		}
	}
	if pc.SendWriters <= 0 {
		pc.SendWriters = defaultWriters
	}
	if pc.SendRingSize <= 0 {
		pc.SendRingSize = defaultSendRing
	}
	return pc
}

// rxDatagram is one received datagram handed from the reader to a
// decode worker. data is heap-owned by the receiver chain (the reader
// copies out of its read buffer), so reassembly may alias it.
type rxDatagram struct {
	from netip.AddrPort
	data []byte
}

type decodeWorker struct {
	ch chan rxDatagram
}

// sendChunk is one datagram of an encoded message, pre-fault-plan. When
// buf is non-nil, data aliases the refcounted buffer and every enqueue
// must Retain it; when nil, data is a GC-owned slice shared freely.
type sendChunk struct {
	data []byte
	buf  *wire.Buffer
}

// sendReq is one datagram on the send ring. The request owns one
// reference on buf (when non-nil); whoever finishes with the request —
// writer, overflow drop, or shutdown drain — releases it.
type sendReq struct {
	data []byte
	buf  *wire.Buffer
	to   netip.AddrPort
}

// Transport is a netsim.Transport over UDP. Multicast is emulated by
// unicast fan-out to every peer; receivers filter by their local
// subscriptions, which matches the semantics of the simulated network
// (and of IP multicast on a LAN segment).
type Transport struct {
	d       *Driver
	pid     ids.ProcessID
	conn    *net.UDPConn
	peers   map[ids.ProcessID]*net.UDPAddr
	peersAP map[ids.ProcessID]netip.AddrPort
	order   []ids.ProcessID // deterministic fan-out order

	// Loop-confined state.
	subs    map[netsim.Addr]bool
	handler netsim.Handler
	// blocked emulates a network partition on the real transport:
	// traffic to and from the listed peers is dropped.
	blocked map[ids.ProcessID]bool

	// nextMsgID numbers outgoing envelopes for fragmentation
	// (loop-confined).
	nextMsgID uint64
	// chunkScratch is the loop-confined scratch slice encodeChunks
	// reuses across messages, so steady-state sends allocate no chunk
	// headers.
	chunkScratch []sendChunk

	// faults injects per-link loss/dup/reorder/delay/one-way-block on
	// the send path. Mutable from any goroutine (see faults.go).
	faults *faultTable

	// tracer receives wire-level receive events (WireRecv) so live rings
	// record cross-node causality; nil disables them. Set before Start.
	tracer trace.Tracer
	// sampleEvery gates the trace context on high-volume message kinds
	// (data/ack/heartbeat/nack): every Nth such send is stamped, the
	// rest carry no context. Control traffic is always stamped. 0
	// disables contexts entirely. Loop-confined with tcSeq.
	sampleEvery int
	tcSeq       uint64
	// inTC is the "current inbound trace context" slot: set for the
	// duration of one deliverEnv handler call, so the protocol stacks —
	// which run synchronously on the driver loop under deliverEnv — can
	// pick up the sender context without any interface change.
	// Loop-confined.
	inTC   wire.TraceCtx
	inTCOK bool

	// pc configures the parallel data plane. Set before Start.
	pc PipelineConfig

	// workers is the decode pool; sendQs are the send rings, one per
	// writer, sharded by destination so each peer's datagrams stay FIFO
	// (concurrent writers draining one shared ring would reorder
	// adjacent datagrams to the same peer on every send, which the
	// protocols tolerate as rare transport misbehaviour, not as the
	// steady state). Both are nil on the inline path.
	workers []*decodeWorker
	sendQs  []chan sendReq

	// ins holds the wire-level instruments. Counters are atomic and
	// nil-safe, so the reader goroutine and timer callbacks may bump
	// them without coordination.
	ins transportMetrics

	closeOnce sync.Once
	closed    chan struct{}
	readerWG  sync.WaitGroup
	decodeWG  sync.WaitGroup
	writerWG  sync.WaitGroup
}

var _ netsim.Transport = (*Transport)(nil)

// transportMetrics are the transport's wire-level instruments. With
// metrics disabled every field is nil and the nil-receiver methods
// no-op.
type transportMetrics struct {
	dgramsSent       *metrics.Counter
	bytesSent        *metrics.Counter
	dgramsRecv       *metrics.Counter
	bytesRecv        *metrics.Counter
	faultDrops       *metrics.Counter
	dgramsMalformed  *metrics.Counter
	sendErrors       *metrics.Counter
	sendRingOverflow *metrics.Counter
	sendRingDepth    *metrics.Gauge
	decodeQueueDepth *metrics.Gauge
	traceCtxSent     *metrics.Counter
	traceCtxRecv     *metrics.Counter
}

// Instrument resolves the transport's counters from the registry (nil
// disables them). Call before Start.
func (t *Transport) Instrument(r *metrics.Registry) {
	t.ins = transportMetrics{
		dgramsSent:       r.Counter("rtnet_datagrams_sent_total"),
		bytesSent:        r.Counter("rtnet_bytes_sent_total"),
		dgramsRecv:       r.Counter("rtnet_datagrams_recv_total"),
		bytesRecv:        r.Counter("rtnet_bytes_recv_total"),
		faultDrops:       r.Counter("rtnet_fault_drops_total"),
		dgramsMalformed:  r.Counter("rtnet_datagrams_malformed_total"),
		sendErrors:       r.Counter("rtnet_send_errors_total"),
		sendRingOverflow: r.Counter("rtnet_send_ring_overflow_total"),
		sendRingDepth:    r.Gauge("rtnet_send_ring_depth"),
		decodeQueueDepth: r.Gauge("rtnet_decode_queue_depth"),
		traceCtxSent:     r.Counter("rtnet_trace_ctx_sent_total"),
		traceCtxRecv:     r.Counter("rtnet_trace_ctx_recv_total"),
	}
}

// TraceContext enables wire-level trace contexts: every control send —
// and every sampleEvery'th high-volume send (data/ack/heartbeat/nack) —
// carries a wire.TraceCtx, which the receiving node records into tracer
// (when non-nil) as a WireRecv event and exposes to its protocol stacks
// for one-way latency measurement. sampleEvery <= 0 disables contexts.
// Call before Start.
func (t *Transport) TraceContext(tracer trace.Tracer, sampleEvery int) {
	if _, nop := tracer.(trace.Nop); nop {
		tracer = nil
	}
	t.tracer = tracer
	t.sampleEvery = sampleEvery
}

// InboundTraceCtx returns the trace context of the envelope currently
// being delivered, if it carried one. Only meaningful on the driver
// loop, during a handler call under deliverEnv; the slot is cleared when
// the delivery returns.
func (t *Transport) InboundTraceCtx() (wire.TraceCtx, bool) {
	return t.inTC, t.inTCOK
}

// stampTC attaches a trace context to an outgoing envelope, applying the
// sampling policy. Loop-confined (tcSeq and the fault RNG share the
// loop's historical-order guarantee).
func (t *Transport) stampTC(env *envelope) {
	if t.sampleEvery <= 0 {
		return
	}
	if k, ok := env.Msg.(netsim.Kinder); ok {
		switch k.Kind() {
		case "data", "ack", "heartbeat", "nack":
			t.tcSeq++
			if t.tcSeq%uint64(t.sampleEvery) != 0 {
				return
			}
		}
	}
	env.tc = &wire.TraceCtx{
		Origin:  int64(t.pid),
		VT:      int64(t.d.Sim().Now()),
		Wall:    time.Now().UnixNano(),
		Sampled: true,
		Ref:     env.Addr,
	}
	t.ins.traceCtxSent.Inc()
}

func (t *Transport) countSend(n int) {
	t.ins.dgramsSent.Inc()
	t.ins.bytesSent.Add(int64(n))
}

// NewTransport builds the node's transport on an already-bound UDP
// connection. peers maps every process (other than this one) to its UDP
// address. Call SetHandler before Start.
func NewTransport(d *Driver, pid ids.ProcessID, conn *net.UDPConn, peers map[ids.ProcessID]*net.UDPAddr) *Transport {
	t := &Transport{
		d:       d,
		pid:     pid,
		conn:    conn,
		subs:    make(map[netsim.Addr]bool),
		blocked: make(map[ids.ProcessID]bool),
		faults:  newFaultTable(1),
		closed:  make(chan struct{}),
	}
	filtered := make(map[ids.ProcessID]*net.UDPAddr, len(peers))
	for p, a := range peers {
		if p == pid {
			continue
		}
		filtered[p] = a
	}
	t.setPeers(filtered)
	return t
}

// setPeers installs the address book (and its netip mirror, used by the
// send path to avoid per-datagram conversions). Call before Start.
func (t *Transport) setPeers(peers map[ids.ProcessID]*net.UDPAddr) {
	t.peers = peers
	t.peersAP = make(map[ids.ProcessID]netip.AddrPort, len(peers))
	t.order = t.order[:0]
	for p, a := range peers {
		// Unmap 4-in-6 addresses (UDPAddr.AddrPort yields ::ffff:a.b.c.d
		// for IPv4): an AF_INET socket rejects the mapped form.
		ap := a.AddrPort()
		t.peersAP[p] = netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port())
		t.order = append(t.order, p)
	}
	t.order = []ids.ProcessID(ids.NewMembers(t.order...))
}

// SetHandler installs the node's message dispatcher (typically a
// netsim.Mux handler). Must be called before Start.
func (t *Transport) SetHandler(h netsim.Handler) { t.handler = h }

// Start launches the data plane: the UDP reader, and — unless the
// pipeline is disabled — the decode pool and the send-ring writers.
func (t *Transport) Start() {
	t.pc = t.pc.resolved()
	if !t.pc.Inline {
		ringSize := (t.pc.SendRingSize + t.pc.SendWriters - 1) / t.pc.SendWriters
		t.sendQs = make([]chan sendReq, t.pc.SendWriters)
		for i := range t.sendQs {
			t.sendQs[i] = make(chan sendReq, ringSize)
		}
		for _, q := range t.sendQs {
			t.writerWG.Add(1)
			go t.writeLoop(q)
		}
		t.workers = make([]*decodeWorker, t.pc.DecodeWorkers)
		for i := range t.workers {
			t.workers[i] = &decodeWorker{ch: make(chan rxDatagram, rxQueueLen)}
		}
		for _, w := range t.workers {
			t.decodeWG.Add(1)
			go t.decodeLoop(w)
		}
	}
	t.readerWG.Add(1)
	go t.readLoop()
}

// Close shuts the data plane down: reader first (it closes the worker
// channels on exit), then the decode workers drain, then the writers
// stop, then any requests still queued on the ring are drained so their
// buffers return to the pool.
func (t *Transport) Close() {
	t.closeOnce.Do(func() { close(t.closed) })
	_ = t.conn.Close()
	t.readerWG.Wait()
	t.decodeWG.Wait()
	t.writerWG.Wait()
	for _, q := range t.sendQs {
	drain:
		for {
			select {
			case req := <-q:
				if req.buf != nil {
					req.buf.Release()
				}
			default:
				break drain
			}
		}
	}
}

// LocalAddr returns the bound UDP address.
func (t *Transport) LocalAddr() *net.UDPAddr {
	a, _ := t.conn.LocalAddr().(*net.UDPAddr)
	return a
}

// Sim implements netsim.Transport.
func (t *Transport) Sim() *sim.Sim { return t.d.Sim() }

// Subscribe implements netsim.Transport (local node only).
func (t *Transport) Subscribe(id netsim.NodeID, addr netsim.Addr) {
	if id == t.pid {
		t.subs[addr] = true
	}
}

// Unsubscribe implements netsim.Transport (local node only).
func (t *Transport) Unsubscribe(id netsim.NodeID, addr netsim.Addr) {
	if id == t.pid {
		delete(t.subs, addr)
	}
}

// Block drops all traffic to and from the listed peers until Unblock —
// fault injection emulating a network partition on the real transport.
// Must be called on the driver loop (via Driver.Do/Call).
func (t *Transport) Block(peers ...ids.ProcessID) {
	for _, p := range peers {
		t.blocked[p] = true
	}
}

// Unblock lifts all Block rules. Must be called on the driver loop.
func (t *Transport) Unblock() {
	t.blocked = make(map[ids.ProcessID]bool)
}

// SeedFaults reseeds the fault-injection RNG; decisions are a pure
// function of the seed and the outgoing datagram sequence. Safe from
// any goroutine.
func (t *Transport) SeedFaults(seed int64) { t.faults.reseed(seed) }

// SetFaultSpec replaces the whole fault configuration (nil clears all
// rules). Safe from any goroutine, including while traffic flows.
func (t *Transport) SetFaultSpec(fs *FaultSpec) { t.faults.install(fs) }

// SetDefaultFault sets the rule applied to every link without an
// explicit override (nil restores a clean default). Safe from any
// goroutine.
func (t *Transport) SetDefaultFault(r *FaultRule) { t.faults.setDefault(r) }

// SetLinkFault overrides the rule for the directed link to one peer
// (nil removes the override, falling back to the default rule). Safe
// from any goroutine.
func (t *Transport) SetLinkFault(to ids.ProcessID, r *FaultRule) { t.faults.setLink(to, r) }

// dispatch hands one datagram to the wire. Pipeline: non-blocking
// enqueue on the destination's send-ring shard, dropping (with the
// overflow counter) when that writer has fallen a full ring behind.
// Inline: synchronous write on the caller's goroutine. Takes ownership
// of the request's buffer reference in both cases.
func (t *Transport) dispatch(req sendReq) {
	if t.sendQs == nil {
		t.writeOut(req)
		return
	}
	q := t.sendQs[apHash(req.to)%uint32(len(t.sendQs))]
	select {
	case q <- req:
		t.ins.sendRingDepth.Set(int64(len(q)))
	default:
		t.ins.sendRingOverflow.Inc()
		if req.buf != nil {
			req.buf.Release()
		}
	}
}

// writeOut performs the socket write and releases the request's buffer
// reference. Write failures count in rtnet_send_errors_total unless the
// transport is shutting down (closing the socket makes in-flight writes
// fail by design).
func (t *Transport) writeOut(req sendReq) {
	if _, err := t.conn.WriteToUDPAddrPort(req.data, req.to); err != nil {
		select {
		case <-t.closed:
		default:
			t.ins.sendErrors.Inc()
		}
	} else {
		t.countSend(len(req.data))
	}
	if req.buf != nil {
		req.buf.Release()
	}
}

func (t *Transport) writeLoop(q chan sendReq) {
	defer t.writerWG.Done()
	for {
		select {
		case <-t.closed:
			return
		case req := <-q:
			t.writeOut(req)
		}
	}
}

// sendChunks pushes the datagrams of one message to one peer through
// the fault table: drop, duplicate, or delay each chunk as the link's
// rule dictates. Must be called on the driver loop — the fault plan
// consumes the deterministic RNG, and keeping that on-loop is what
// makes a seed replay the identical fault schedule regardless of how
// many writer goroutines move the bytes afterwards.
func (t *Transport) sendChunks(to ids.ProcessID, addr netip.AddrPort, chunks []sendChunk) {
	for _, c := range chunks {
		send, delays := t.faults.plan(to)
		if !send {
			t.ins.faultDrops.Inc()
			continue
		}
		if delays == nil {
			if c.buf != nil {
				c.buf.Retain()
			}
			t.dispatch(sendReq{data: c.data, buf: c.buf, to: addr})
			continue
		}
		for _, d := range delays {
			if d <= 0 {
				if c.buf != nil {
					c.buf.Retain()
				}
				t.dispatch(sendReq{data: c.data, buf: c.buf, to: addr})
				continue
			}
			c := c
			if c.buf != nil {
				c.buf.Retain()
			}
			t.d.Sim().After(d, func() {
				select {
				case <-t.closed:
					if c.buf != nil {
						c.buf.Release()
					}
				default:
					t.dispatch(sendReq{data: c.data, buf: c.buf, to: addr})
				}
			})
		}
	}
}

// encodeChunks encodes env and splits it into datagram chunks, bumping
// the message counter. The common single-datagram case writes the
// fragment header in place in the pooled encode buffer, so the fan-out
// to N peers shares one refcounted buffer with zero copies; larger
// messages fall back to per-chunk GC-owned slices. The scratch slice is
// loop-confined and reused across messages; callers must hand it back
// via t.chunkScratch = chunks[:0] after dispatching, and must Release
// buf (when non-nil) to drop the encoder's own reference.
func (t *Transport) encodeChunks(env *envelope) (chunks []sendChunk, buf *wire.Buffer) {
	b, err := encodeEnvelopeFramed(env)
	if err != nil {
		return nil, nil // unregistered type; nothing sane to do at this layer
	}
	t.nextMsgID++
	if len(b.B) <= fragHeader+fragPayload {
		writeFragHeader(b.B, t.nextMsgID, 0, 1)
		return append(t.chunkScratch[:0], sendChunk{data: b.B, buf: b}), b
	}
	chunks = t.chunkScratch[:0]
	for _, c := range fragment(t.nextMsgID, b.B[fragHeader:]) {
		chunks = append(chunks, sendChunk{data: c})
	}
	b.Release()
	return chunks, nil
}

// Multicast implements netsim.Transport: fan out to every peer and loop
// back locally if subscribed. Must be called on the driver loop.
func (t *Transport) Multicast(from netsim.NodeID, addr netsim.Addr, msg netsim.Message) {
	if from != t.pid {
		return
	}
	env := envelope{From: from, Addr: string(addr), Msg: msg}
	t.stampTC(&env)
	chunks, buf := t.encodeChunks(&env)
	if chunks == nil {
		return // unregistered type; nothing sane to do at this layer
	}
	for _, p := range t.order {
		if t.blocked[p] {
			continue
		}
		t.sendChunks(p, t.peersAP[p], chunks)
	}
	if buf != nil {
		buf.Release()
	}
	t.chunkScratch = chunks[:0]
	if t.subs[addr] {
		// Local delivery stays asynchronous, like a looped-back packet.
		t.d.Sim().After(0, func() {
			if t.handler != nil && t.subs[addr] {
				t.handler(from, addr, msg)
			}
		})
	}
}

// Unicast implements netsim.Transport. Must be called on the driver loop.
func (t *Transport) Unicast(from, to netsim.NodeID, addr netsim.Addr, msg netsim.Message) {
	if from != t.pid {
		return
	}
	if to == t.pid {
		t.d.Sim().After(0, func() {
			if t.handler != nil {
				t.handler(from, addr, msg)
			}
		})
		return
	}
	peer, ok := t.peersAP[to]
	if !ok || t.blocked[to] {
		return
	}
	env := envelope{From: from, Addr: string(addr), Uni: true, Msg: msg}
	t.stampTC(&env)
	chunks, buf := t.encodeChunks(&env)
	if chunks == nil {
		return
	}
	t.sendChunks(to, peer, chunks)
	if buf != nil {
		buf.Release()
	}
	t.chunkScratch = chunks[:0]
}

// deliverEnv runs the receive-side protocol checks for one decoded
// envelope. Loop-confined: it reads blocked/subs and invokes the
// handler, so it must only run on the driver goroutine (the inbox).
func (t *Transport) deliverEnv(env *envelope) {
	if t.blocked[env.From] {
		return // partitioned away
	}
	addr := netsim.Addr(env.Addr)
	if !env.Uni && !t.subs[addr] {
		return // not subscribed: filtered like IP multicast
	}
	if env.tc != nil {
		t.ins.traceCtxRecv.Inc()
		t.inTC, t.inTCOK = *env.tc, true
		if t.tracer != nil {
			t.tracer.Trace(trace.Event{
				At:    t.d.Sim().Now(),
				Node:  t.pid,
				Layer: "net",
				What:  trace.WireRecv,
				Src:   ids.ProcessID(env.tc.Origin),
				Ref:   env.tc.Ref,
				Data:  env.Addr,
			})
		}
	}
	if t.handler != nil {
		t.handler(env.From, addr, env.Msg)
	}
	t.inTCOK = false
}

// apHash partitions datagram sources across decode workers (FNV-1a over
// the address and port).
func apHash(ap netip.AddrPort) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	a := ap.Addr().As16()
	for _, c := range a {
		h = (h ^ uint32(c)) * prime32
	}
	p := ap.Port()
	h = (h ^ uint32(p&0xff)) * prime32
	h = (h ^ uint32(p>>8)) * prime32
	return h
}

func (t *Transport) readLoop() {
	defer t.readerWG.Done()
	if len(t.workers) > 0 {
		// Closing the worker channels (after the final sends below)
		// lets the workers drain and exit; they never close their own
		// channel, so the blocking handoff can't deadlock.
		defer func() {
			for _, w := range t.workers {
				close(w.ch)
			}
		}()
	}
	var reasm *reassembler
	if len(t.workers) == 0 {
		reasm = newReassembler()
	}
	buf := make([]byte, 256*1024)
	nw := uint32(len(t.workers))
	for {
		n, from, err := t.conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			select {
			case <-t.closed:
				return
			default:
				// Transient error; keep reading until closed.
				continue
			}
		}
		t.ins.dgramsRecv.Inc()
		t.ins.bytesRecv.Add(int64(n))
		// Copy out of the reusable read buffer; everything downstream
		// (reassembly, decoded messages via aliasing readers) owns this
		// slice.
		data := make([]byte, n)
		copy(data, buf[:n])
		if nw == 0 {
			t.rxInline(reasm, from, data)
			continue
		}
		w := t.workers[apHash(from)%nw]
		w.ch <- rxDatagram{from: from, data: data}
		t.ins.decodeQueueDepth.Set(int64(len(w.ch)))
	}
}

// rxInline is the historical single-goroutine receive path: reassemble
// and decode on the reader, enter the loop one packet at a time.
func (t *Transport) rxInline(reasm *reassembler, from netip.AddrPort, data []byte) {
	data, err := reasm.add(from, data)
	if err != nil {
		t.ins.dgramsMalformed.Inc()
		return
	}
	if data == nil {
		return // more chunks to come
	}
	env, err := decodeEnvelope(data)
	if err != nil {
		t.ins.dgramsMalformed.Inc()
		return
	}
	t.d.doEnv(t, env)
}

// decodeLoop is one decode worker: reassemble and decode the datagrams
// of its source partition, accumulate bursts, and submit each burst to
// the driver as a single batch (one inbox lock, one wakeup).
func (t *Transport) decodeLoop(w *decodeWorker) {
	defer t.decodeWG.Done()
	reasm := newReassembler()
	envs := make([]envelope, 0, envBatch)
	for {
		d, ok := <-w.ch
		if !ok {
			return
		}
		envs = t.decodeInto(envs[:0], reasm, d)
		chClosed := false
	drain:
		// Opportunistically drain whatever else is already queued so
		// one submission covers the whole burst.
		for len(envs) < envBatch {
			select {
			case d, ok := <-w.ch:
				if !ok {
					chClosed = true
					break drain
				}
				envs = t.decodeInto(envs, reasm, d)
			default:
				break drain
			}
		}
		t.d.doEnvBatch(t, envs)
		if chClosed {
			return
		}
	}
}

// decodeInto reassembles and decodes one datagram, appending the
// resulting envelope (if the datagram completed a message) to envs.
func (t *Transport) decodeInto(envs []envelope, reasm *reassembler, d rxDatagram) []envelope {
	data, err := reasm.add(d.from, d.data)
	if err != nil {
		t.ins.dgramsMalformed.Inc()
		return envs
	}
	if data == nil {
		return envs // more chunks to come
	}
	env, err := decodeEnvelope(data)
	if err != nil {
		t.ins.dgramsMalformed.Inc()
		return envs
	}
	return append(envs, env)
}

// PipelineStats is a point-in-time snapshot of the parallel data plane,
// served by the /debug/rtnet endpoint. Queue lengths are sampled
// racily, which is fine for observability.
type PipelineStats struct {
	Inline          bool  `json:"inline"`
	DecodeWorkers   int   `json:"decode_workers"`
	SendWriters     int   `json:"send_writers"`
	SendRingCap     int   `json:"send_ring_cap"`
	SendRingLen     int   `json:"send_ring_len"`
	DecodeQueueLens []int `json:"decode_queue_lens"`
}

// PipelineStats snapshots the data-plane configuration and queue
// depths. Call after Start.
func (t *Transport) PipelineStats() PipelineStats {
	st := PipelineStats{
		Inline:        t.pc.Inline,
		DecodeWorkers: len(t.workers),
		SendWriters:   len(t.sendQs),
	}
	for _, q := range t.sendQs {
		st.SendRingCap += cap(q)
		st.SendRingLen += len(q)
	}
	for _, w := range t.workers {
		st.DecodeQueueLens = append(st.DecodeQueueLens, len(w.ch))
	}
	return st
}

// encodeEnvelope serializes the envelope into a pooled buffer. The
// caller must Release the buffer once the bytes are copied out. The gob
// fallback shares the pooled storage but still pays a fresh encoder per
// datagram: each datagram is decoded as an independent stream, and gob
// streams cannot be split (the type descriptors live at the front).
func encodeEnvelope(env *envelope) (*wire.Buffer, error) {
	b := wire.GetBuffer()
	if err := encodeEnvelopeInto(b, env); err != nil {
		b.Release()
		return nil, err
	}
	return b, nil
}

// encodeEnvelopeFramed is encodeEnvelope with fragHeader bytes of
// zero-padding reserved at the front, so a message that fits one
// datagram can have its fragment header written in place and the pooled
// buffer handed to the writers directly — no per-chunk copy.
func encodeEnvelopeFramed(env *envelope) (*wire.Buffer, error) {
	b := wire.GetBuffer()
	var pad [fragHeader]byte
	b.B = append(b.B, pad[:]...)
	if err := encodeEnvelopeInto(b, env); err != nil {
		b.Release()
		return nil, err
	}
	return b, nil
}

func encodeEnvelopeInto(b *wire.Buffer, env *envelope) error {
	prefix := len(b.B)
	if m, ok := env.Msg.(wire.Marshaler); ok {
		if env.tc != nil {
			b.Byte(envCodecTC)
			env.tc.MarshalWire(b)
		} else {
			b.Byte(envCodec)
		}
		b.Int64(int64(env.From))
		b.Bool(env.Uni)
		b.String(env.Addr)
		if wire.Encode(b, m) {
			return nil
		}
		// Nested content without codec support (e.g. a data message
		// carrying an unregistered payload): gob the whole envelope.
		b.B = b.B[:prefix]
	}
	if env.tc != nil {
		b.Byte(envGobTC)
		env.tc.MarshalWire(b)
	} else {
		b.Byte(envGob)
	}
	if err := gob.NewEncoder(b).Encode(env); err != nil {
		return fmt.Errorf("encode envelope: %w", err)
	}
	return nil
}

func decodeEnvelope(data []byte) (envelope, error) {
	if len(data) == 0 {
		return envelope{}, fmt.Errorf("decode envelope: empty")
	}
	switch data[0] {
	case envCodec, envCodecTC:
		r := wire.NewReader(data[1:])
		var tc *wire.TraceCtx
		if data[0] == envCodecTC {
			tc = new(wire.TraceCtx)
			if !tc.UnmarshalWire(r) {
				return envelope{}, fmt.Errorf("decode envelope: bad trace context")
			}
		}
		env := envelope{From: ids.ProcessID(r.Int64()), tc: tc}
		env.Uni = r.Bool()
		env.Addr = r.String()
		m, err := wire.Decode(r)
		if err != nil {
			return envelope{}, fmt.Errorf("decode envelope: %w", err)
		}
		msg, ok := m.(netsim.Message)
		if !ok {
			return envelope{}, fmt.Errorf("decode envelope: %T is not a message", m)
		}
		env.Msg = msg
		return env, nil
	case envGob, envGobTC:
		body := data[1:]
		var tc *wire.TraceCtx
		if data[0] == envGobTC {
			r := wire.NewReader(body)
			tc = new(wire.TraceCtx)
			if !tc.UnmarshalWire(r) {
				return envelope{}, fmt.Errorf("decode envelope: bad trace context")
			}
			body = body[len(body)-r.Len():]
		}
		var env envelope
		if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&env); err != nil {
			return envelope{}, fmt.Errorf("decode envelope: %w", err)
		}
		env.tc = tc
		return env, nil
	default:
		return envelope{}, fmt.Errorf("decode envelope: unknown codec tag %d", data[0])
	}
}

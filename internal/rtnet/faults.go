package rtnet

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"plwg/internal/ids"
)

// Link-level fault injection for the real-network transport.
//
// The simulated network (internal/netsim) can lose and jitter frames, but
// until now the real UDP path only knew the crude symmetric `blocked` map.
// This layer injects per-link, seeded faults on the SEND side of a
// transport, per datagram (i.e. per fragment chunk, so losing one chunk of
// a fragmented message and duplicating another are both reachable states):
//
//   - loss: the datagram is dropped with probability Loss;
//   - duplication: a second copy is sent with probability Dup;
//   - delay + jitter: every surviving copy is held for a uniform delay in
//     [DelayMin, DelayMax];
//   - reorder: with probability Reorder a copy is additionally held back
//     by a random extra delay, letting later datagrams overtake it;
//   - block: a one-way (asymmetric) partition — everything on the link is
//     dropped, while the reverse direction (the peer's transport) is
//     untouched.
//
// Rules are resolved per destination peer: an explicit link rule wins,
// otherwise the default rule applies, otherwise the link is clean.
// Decisions are drawn from a per-transport seeded source, so a node that
// emits the same datagram sequence makes the same fault decisions; the
// wall-clock arrival times on a real network remain, of course,
// nondeterministic. Mutation is safe from any goroutine (the table is
// mutex-guarded), which is what lets tests and the lwgcheck driver
// reconfigure faults while the reader and protocol loops run.

// FaultRule describes the fault behaviour of one directed link (or the
// default for all links). The zero value is a clean link.
type FaultRule struct {
	// Block drops every datagram (one-way partition).
	Block bool
	// Loss is the per-datagram drop probability in [0,1].
	Loss float64
	// Dup is the per-datagram duplication probability in [0,1].
	Dup float64
	// Reorder is the probability a copy is held back by an extra random
	// delay (up to reorderWindow), letting younger datagrams overtake it.
	Reorder float64
	// DelayMin/DelayMax bound the base per-copy latency (uniform).
	DelayMin, DelayMax time.Duration
}

// reorderWindow returns how far a reordered copy may be held back: four
// times the configured maximum delay, with a floor that is enough to
// overtake back-to-back sends even on a link with no configured delay.
func (r *FaultRule) reorderWindow() time.Duration {
	w := 4 * r.DelayMax
	if w < 2*time.Millisecond {
		w = 2 * time.Millisecond
	}
	return w
}

// clean reports whether the rule injects nothing.
func (r *FaultRule) clean() bool {
	return !r.Block && r.Loss == 0 && r.Dup == 0 && r.Reorder == 0 &&
		r.DelayMin == 0 && r.DelayMax == 0
}

func (r *FaultRule) String() string {
	if r == nil || r.clean() {
		return "clean"
	}
	var parts []string
	if r.Block {
		parts = append(parts, "block")
	}
	if r.Loss > 0 {
		parts = append(parts, fmt.Sprintf("loss=%g", r.Loss))
	}
	if r.Dup > 0 {
		parts = append(parts, fmt.Sprintf("dup=%g", r.Dup))
	}
	if r.Reorder > 0 {
		parts = append(parts, fmt.Sprintf("reorder=%g", r.Reorder))
	}
	if r.DelayMin > 0 || r.DelayMax > 0 {
		if r.DelayMax > r.DelayMin {
			parts = append(parts, fmt.Sprintf("delay=%v..%v", r.DelayMin, r.DelayMax))
		} else {
			parts = append(parts, fmt.Sprintf("delay=%v", r.DelayMin))
		}
	}
	return strings.Join(parts, ",")
}

// FaultSpec is a complete fault configuration for one transport: a default
// rule for every outgoing link plus per-peer overrides.
type FaultSpec struct {
	Default *FaultRule
	Links   map[ids.ProcessID]*FaultRule
}

// String renders the spec in the grammar ParseFaultSpec accepts.
func (fs *FaultSpec) String() string {
	if fs == nil {
		return ""
	}
	var clauses []string
	if fs.Default != nil {
		clauses = append(clauses, fs.Default.String())
	}
	peers := make([]ids.ProcessID, 0, len(fs.Links))
	for p := range fs.Links {
		peers = append(peers, p)
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	for _, p := range peers {
		clauses = append(clauses, fmt.Sprintf("%d:%s", p, fs.Links[p]))
	}
	return strings.Join(clauses, ";")
}

// ParseFaultSpec parses the fault-rule grammar used by the lwgnode and
// lwgcheck command lines:
//
//	spec    := clause (';' clause)*
//	clause  := [peer ':'] rule         peer is a decimal process id
//	rule    := item (',' item)*
//	item    := 'block' | 'clean'
//	         | 'loss='  prob | 'dup=' prob | 'reorder=' prob
//	         | 'delay=' dur [ '..' dur ]
//
// A clause without a peer prefix sets the default rule for every link;
// a peer-prefixed clause overrides one directed link. Examples:
//
//	loss=0.05,dup=0.05,reorder=0.1,delay=200us..2ms
//	loss=0.2;3:block            (lossy everywhere, one-way partition to 3)
//
// An empty spec parses to a nil-rule FaultSpec (everything clean).
func ParseFaultSpec(spec string) (*FaultSpec, error) {
	fs := &FaultSpec{Links: make(map[ids.ProcessID]*FaultRule)}
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return fs, nil
	}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		ruleText := clause
		var peer ids.ProcessID = -1
		if i := strings.Index(clause, ":"); i >= 0 {
			n, err := strconv.Atoi(strings.TrimSpace(clause[:i]))
			if err != nil || n < 0 {
				return nil, fmt.Errorf("faults: bad peer %q in %q", clause[:i], clause)
			}
			peer = ids.ProcessID(n)
			ruleText = clause[i+1:]
		}
		rule, err := parseFaultRule(ruleText)
		if err != nil {
			return nil, err
		}
		if peer < 0 {
			fs.Default = rule
		} else {
			fs.Links[peer] = rule
		}
	}
	return fs, nil
}

func parseFaultRule(text string) (*FaultRule, error) {
	r := &FaultRule{}
	for _, item := range strings.Split(text, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		switch {
		case item == "block":
			r.Block = true
		case item == "clean":
			// explicit no-op rule (overrides the default on one link)
		case strings.HasPrefix(item, "loss="),
			strings.HasPrefix(item, "dup="),
			strings.HasPrefix(item, "reorder="):
			kv := strings.SplitN(item, "=", 2)
			p, err := strconv.ParseFloat(kv[1], 64)
			if err != nil || p < 0 || p > 1 {
				return nil, fmt.Errorf("faults: %s wants a probability in [0,1], got %q", kv[0], kv[1])
			}
			switch kv[0] {
			case "loss":
				r.Loss = p
			case "dup":
				r.Dup = p
			case "reorder":
				r.Reorder = p
			}
		case strings.HasPrefix(item, "delay="):
			val := strings.TrimPrefix(item, "delay=")
			lo, hi := val, val
			if i := strings.Index(val, ".."); i >= 0 {
				lo, hi = val[:i], val[i+2:]
			}
			dlo, err1 := time.ParseDuration(lo)
			dhi, err2 := time.ParseDuration(hi)
			if err1 != nil || err2 != nil || dlo < 0 || dhi < dlo {
				return nil, fmt.Errorf("faults: bad delay %q (want dur or dur..dur)", val)
			}
			r.DelayMin, r.DelayMax = dlo, dhi
		default:
			return nil, fmt.Errorf("faults: unknown item %q", item)
		}
	}
	return r, nil
}

// faultTable is the live fault configuration of one transport. All methods
// are safe from any goroutine.
type faultTable struct {
	mu     sync.Mutex
	rng    *rand.Rand
	def    *FaultRule
	links  map[ids.ProcessID]*FaultRule
	active bool // cached: any rule installed (checked under mu)
}

func newFaultTable(seed int64) *faultTable {
	return &faultTable{
		rng:   rand.New(rand.NewSource(seed)),
		links: make(map[ids.ProcessID]*FaultRule),
	}
}

func (ft *faultTable) reseed(seed int64) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	ft.rng = rand.New(rand.NewSource(seed))
}

func (ft *faultTable) setDefault(r *FaultRule) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	ft.def = r
	ft.refreshActive()
}

func (ft *faultTable) setLink(to ids.ProcessID, r *FaultRule) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	if r == nil {
		delete(ft.links, to)
	} else {
		ft.links[to] = r
	}
	ft.refreshActive()
}

// install replaces the whole table with the spec (nil clears everything).
func (ft *faultTable) install(fs *FaultSpec) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	ft.def = nil
	ft.links = make(map[ids.ProcessID]*FaultRule)
	if fs != nil {
		ft.def = fs.Default
		for p, r := range fs.Links {
			ft.links[p] = r
		}
	}
	ft.refreshActive()
}

func (ft *faultTable) refreshActive() {
	ft.active = ft.def != nil || len(ft.links) > 0
}

// plan decides the fate of one datagram to one peer: whether it is sent at
// all, and the injected delay of each copy (one entry per copy; a zero
// delay means "send now"). The common no-faults case returns (true, nil).
func (ft *faultTable) plan(to ids.ProcessID) (send bool, delays []time.Duration) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	if !ft.active {
		return true, nil
	}
	r := ft.links[to]
	if r == nil {
		r = ft.def
	}
	if r == nil || r.clean() {
		return true, nil
	}
	if r.Block {
		return false, nil
	}
	if r.Loss > 0 && ft.rng.Float64() < r.Loss {
		return false, nil
	}
	copies := 1
	if r.Dup > 0 && ft.rng.Float64() < r.Dup {
		copies = 2
	}
	delays = make([]time.Duration, copies)
	for i := range delays {
		d := r.DelayMin
		if r.DelayMax > r.DelayMin {
			d += time.Duration(ft.rng.Int63n(int64(r.DelayMax - r.DelayMin)))
		}
		if r.Reorder > 0 && ft.rng.Float64() < r.Reorder {
			d += time.Duration(ft.rng.Int63n(int64(r.reorderWindow())))
		}
		delays[i] = d
	}
	return true, delays
}

// Package rtnet runs the protocol stacks on a real network. The same
// protocol code that runs under the deterministic simulator runs here
// unchanged: a Driver executes a sim.Sim event loop in real time (timers
// fire at wall-clock deadlines), and a Transport implements
// netsim.Transport over UDP, emulating multicast by unicast fan-out with
// receiver-side subscription filtering.
//
// Concurrency model: everything protocol-related (stacks, endpoints,
// upcalls) runs on the driver's single loop goroutine — the same
// single-threaded discipline the simulator enforces. External goroutines
// (UDP readers, application code) enter the loop through Driver.Do.
package rtnet

import (
	"sync"
	"time"

	"plwg/internal/sim"
)

// Driver executes a simulation engine in real time. Virtual time is
// wall-clock time since Start.
type Driver struct {
	s     *sim.Sim
	start time.Time

	mu    sync.Mutex
	inbox []func()

	wake chan struct{}
	stop chan struct{}
	done chan struct{}

	startOnce sync.Once
	stopOnce  sync.Once
}

// NewDriver creates a real-time driver around a fresh engine.
func NewDriver(seed int64) *Driver {
	return &Driver{
		s:    sim.New(seed),
		wake: make(chan struct{}, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
}

// Sim exposes the engine. Only code running on the loop goroutine (timer
// callbacks and functions passed to Do) may touch it.
func (d *Driver) Sim() *sim.Sim { return d.s }

// Do schedules fn to run on the loop goroutine. It is safe to call from
// any goroutine; fn runs at (approximately) the current wall-clock
// instant of virtual time. Do never blocks on fn.
func (d *Driver) Do(fn func()) {
	d.mu.Lock()
	d.inbox = append(d.inbox, fn)
	d.mu.Unlock()
	select {
	case d.wake <- struct{}{}:
	default:
	}
}

// Call runs fn on the loop goroutine and waits for it to finish — the
// synchronous variant of Do, for application code that needs a result.
func (d *Driver) Call(fn func()) {
	ch := make(chan struct{})
	d.Do(func() {
		defer close(ch)
		fn()
	})
	<-ch
}

// Start launches the loop goroutine.
func (d *Driver) Start() {
	d.startOnce.Do(func() {
		d.start = time.Now()
		go d.loop()
	})
}

// Close stops the loop and waits for it to exit.
func (d *Driver) Close() {
	d.stopOnce.Do(func() { close(d.stop) })
	<-d.done
}

func (d *Driver) loop() {
	defer close(d.done)
	const idleSleep = 50 * time.Millisecond
	for {
		// Run everything due up to the current wall-clock instant.
		now := sim.Time(time.Since(d.start))
		d.s.RunUntil(now)

		// Drain externally injected work (packets, application calls).
		d.mu.Lock()
		batch := d.inbox
		d.inbox = nil
		d.mu.Unlock()
		for _, fn := range batch {
			fn()
		}
		if len(batch) > 0 {
			// The batch may have scheduled immediate events.
			d.s.RunUntil(sim.Time(time.Since(d.start)))
		}

		// Sleep until the next timer deadline, an injection, or stop.
		sleep := idleSleep
		if next, ok := d.s.NextAt(); ok {
			until := time.Duration(next - sim.Time(time.Since(d.start)))
			if until < 0 {
				until = 0
			}
			if until < sleep {
				sleep = until
			}
		}
		if sleep <= 0 {
			select {
			case <-d.stop:
				return
			default:
				continue
			}
		}
		timer := time.NewTimer(sleep)
		select {
		case <-d.stop:
			timer.Stop()
			return
		case <-d.wake:
			timer.Stop()
		case <-timer.C:
		}
	}
}

// Package rtnet runs the protocol stacks on a real network. The same
// protocol code that runs under the deterministic simulator runs here
// unchanged: a Driver executes a sim.Sim event loop in real time (timers
// fire at wall-clock deadlines), and a Transport implements
// netsim.Transport over UDP, emulating multicast by unicast fan-out with
// receiver-side subscription filtering.
//
// Concurrency model: everything protocol-related (stacks, endpoints,
// upcalls) runs on the driver's single loop goroutine — the same
// single-threaded discipline the simulator enforces. External goroutines
// (the transport's decode workers, application code) enter the loop
// through Driver.Do/DoBatch/Call; the data plane around the loop
// (socket reads, reassembly, envelope decoding, socket writes) runs on
// its own goroutines (see the package comment in transport.go).
package rtnet

import (
	"sync"
	"time"

	"plwg/internal/sim"
)

// task is one unit of injected loop work. Application calls carry a
// closure in fn; decoded envelopes from the transport's decode workers
// ride inline in env instead (tr non-nil), so the per-packet hot path
// allocates no closure and the envelope value travels by copy into the
// inbox slice.
type task struct {
	fn  func()
	tr  *Transport
	env envelope
}

// Driver executes a simulation engine in real time. Virtual time is
// wall-clock time since Start.
type Driver struct {
	s     *sim.Sim
	start time.Time

	mu    sync.Mutex
	inbox []task
	// spare is the drained batch's backing array, handed back by the
	// loop so the inbox and the loop ping-pong between two slices
	// instead of allocating one per drain.
	spare []task

	wake chan struct{}
	stop chan struct{}
	done chan struct{}

	startOnce sync.Once
	stopOnce  sync.Once
}

// spareCap bounds the recycled inbox backing array: a rare burst can
// grow the batch arbitrarily, but we don't pin that much memory
// forever.
const spareCap = 4096

// NewDriver creates a real-time driver around a fresh engine.
func NewDriver(seed int64) *Driver {
	return &Driver{
		s:    sim.New(seed),
		wake: make(chan struct{}, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
}

// Sim exposes the engine. Only code running on the loop goroutine (timer
// callbacks and functions passed to Do) may touch it.
func (d *Driver) Sim() *sim.Sim { return d.s }

// Do schedules fn to run on the loop goroutine. It is safe to call from
// any goroutine; fn runs at (approximately) the current wall-clock
// instant of virtual time. Do never blocks on fn.
func (d *Driver) Do(fn func()) {
	d.mu.Lock()
	d.inbox = append(d.inbox, task{fn: fn})
	d.mu.Unlock()
	d.wakeup()
}

// DoBatch schedules every fn to run on the loop goroutine, in order,
// under a single inbox lock acquisition and a single wakeup — the
// batched form of Do for producers that accumulate work off-loop.
// Functions from one DoBatch run in slice order; batches from different
// goroutines interleave at batch granularity, and the FIFO guarantee of
// Do is preserved across both entry points.
func (d *Driver) DoBatch(fns []func()) {
	if len(fns) == 0 {
		return
	}
	d.mu.Lock()
	for _, fn := range fns {
		d.inbox = append(d.inbox, task{fn: fn})
	}
	d.mu.Unlock()
	d.wakeup()
}

// doEnv injects one decoded envelope for delivery on the loop — the
// closure-free single-packet form used by the inline data plane.
func (d *Driver) doEnv(t *Transport, env envelope) {
	d.mu.Lock()
	d.inbox = append(d.inbox, task{tr: t, env: env})
	d.mu.Unlock()
	d.wakeup()
}

// doEnvBatch injects a batch of decoded envelopes for delivery on the
// loop: one lock acquisition and one wakeup for the whole burst. The
// envelope values are copied into the inbox, so the caller may reuse
// envs immediately.
func (d *Driver) doEnvBatch(t *Transport, envs []envelope) {
	if len(envs) == 0 {
		return
	}
	d.mu.Lock()
	for i := range envs {
		d.inbox = append(d.inbox, task{tr: t, env: envs[i]})
	}
	d.mu.Unlock()
	d.wakeup()
}

func (d *Driver) wakeup() {
	select {
	case d.wake <- struct{}{}:
	default:
	}
}

// Call runs fn on the loop goroutine and waits for it to finish — the
// synchronous variant of Do, for application code that needs a result.
func (d *Driver) Call(fn func()) {
	ch := make(chan struct{})
	d.Do(func() {
		defer close(ch)
		fn()
	})
	<-ch
}

// Start launches the loop goroutine.
func (d *Driver) Start() {
	d.startOnce.Do(func() {
		d.start = time.Now()
		go d.loop()
	})
}

// Close stops the loop and waits for it to exit.
func (d *Driver) Close() {
	d.stopOnce.Do(func() { close(d.stop) })
	<-d.done
}

func (d *Driver) loop() {
	defer close(d.done)
	const idleSleep = 50 * time.Millisecond
	for {
		// Run everything due up to the current wall-clock instant.
		now := sim.Time(time.Since(d.start))
		d.s.RunUntil(now)

		// Drain externally injected work (packets, application calls)
		// with a double-buffer swap: the inbox and the just-run batch
		// alternate as backing arrays, so steady state allocates
		// nothing per drain.
		d.mu.Lock()
		batch := d.inbox
		d.inbox = d.spare[:0]
		d.spare = nil
		d.mu.Unlock()
		for i := range batch {
			if batch[i].fn != nil {
				batch[i].fn()
			} else {
				batch[i].tr.deliverEnv(&batch[i].env)
			}
		}
		if len(batch) > 0 {
			// The batch may have scheduled immediate events.
			d.s.RunUntil(sim.Time(time.Since(d.start)))
		}
		// Hand the drained array back for the next swap, dropping the
		// task references (envelopes hold message payloads) so the GC
		// isn't pinned by stale batches.
		clear(batch)
		if cap(batch) <= spareCap {
			d.mu.Lock()
			if d.spare == nil {
				d.spare = batch[:0]
			}
			d.mu.Unlock()
		}

		// Sleep until the next timer deadline, an injection, or stop.
		sleep := idleSleep
		if next, ok := d.s.NextAt(); ok {
			until := time.Duration(next - sim.Time(time.Since(d.start)))
			if until < 0 {
				until = 0
			}
			if until < sleep {
				sleep = until
			}
		}
		if sleep <= 0 {
			select {
			case <-d.stop:
				return
			default:
				continue
			}
		}
		timer := time.NewTimer(sleep)
		select {
		case <-d.stop:
			timer.Stop()
			return
		case <-d.wake:
			timer.Stop()
		case <-timer.C:
		}
	}
}

package rtnet

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzReassemble fragments arbitrary payloads, replays the chunks through
// a seed-derived mix of reordering and duplication, and checks the
// reassembled message is byte-identical. It also feeds the raw payload to
// the reassembler as a datagram, which must reject or survive it without
// panicking.
func FuzzReassemble(f *testing.F) {
	f.Add([]byte("hello"), uint64(1))
	f.Add(bytes.Repeat([]byte{0xAB}, fragPayload+1), uint64(7))
	f.Add([]byte{}, uint64(0))
	f.Add(bytes.Repeat([]byte("plwg"), fragPayload), uint64(42))
	f.Fuzz(func(t *testing.T, data []byte, seed uint64) {
		if len(data) > 4*fragPayload {
			data = data[:4*fragPayload]
		}
		chunks := fragment(seed, data)
		if chunks == nil {
			t.Fatal("fragment refused a valid payload")
		}

		r := rand.New(rand.NewSource(int64(seed)))
		deliver := append([][]byte(nil), chunks...)
		// Duplicate a few chunks, then shuffle the whole batch.
		for i := 0; i < len(chunks) && i < 3; i++ {
			deliver = append(deliver, chunks[r.Intn(len(chunks))])
		}
		r.Shuffle(len(deliver), func(i, j int) {
			deliver[i], deliver[j] = deliver[j], deliver[i]
		})

		re := newReassembler()
		var got []byte
		for _, d := range deliver {
			out, err := re.add(fragAddr(1), d)
			if err != nil {
				t.Fatalf("add rejected a generated chunk: %v", err)
			}
			if out != nil {
				got = out
			}
		}
		if got == nil && len(data) > 0 {
			t.Fatal("reassembly never completed")
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("reassembly mismatch: %d vs %d bytes", len(got), len(data))
		}

		// Arbitrary bytes must never panic the reassembler.
		_, _ = re.add(fragAddr(1), data)
	})
}

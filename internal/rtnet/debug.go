package rtnet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"

	"plwg/internal/core"
	"plwg/internal/ids"
	"plwg/internal/trace"
)

// DebugHandler serves a node's live introspection surface:
//
//	/metrics        metrics registry in a text exposition format
//	/debug/lwg      JSON snapshot of group membership and mappings
//	/debug/rtnet    JSON snapshot of the transport's data-plane pipeline
//	                (worker/writer counts, ring and queue depths)
//	/debug/trace    the trace ring as JSONL (requires a *trace.Ring or
//	                other Snapshotter as the node's Tracer)
//	/debug/pprof/   the standard Go profiling endpoints
//
// The handler is safe to serve while the protocol runs: /metrics reads
// atomic instruments, /debug/trace snapshots the ring under its own
// lock, /debug/rtnet samples queue lengths racily (observability only),
// and /debug/lwg hops onto the protocol loop for a consistent view.
func (n *Node) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", n.serveMetrics)
	mux.HandleFunc("/debug/lwg", n.serveLWG)
	mux.HandleFunc("/debug/rtnet", n.serveRTNet)
	mux.HandleFunc("/debug/trace", n.serveTrace)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (n *Node) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	reg := n.Registry()
	if reg == nil {
		http.Error(w, "metrics disabled (NodeConfig.Metrics is nil)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = reg.WriteText(w)
	// The trace ring lives outside the registry; surface its overwrite
	// count so a scraper can tell when /debug/trace history is partial
	// (a stitched op with missing legs then means "ring wrapped", not
	// "protocol bug").
	if ring, ok := n.cfg.Tracer.(*trace.Ring); ok {
		fmt.Fprintf(w, "# TYPE trace_ring_dropped_total counter\ntrace_ring_dropped_total %d\n", ring.Dropped())
		fmt.Fprintf(w, "# TYPE trace_ring_events_total counter\ntrace_ring_events_total %d\n", ring.Total())
	}
}

func (n *Node) serveRTNet(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(n.tr.PipelineStats())
}

func (n *Node) serveTrace(w http.ResponseWriter, _ *http.Request) {
	snap, ok := n.cfg.Tracer.(trace.Snapshotter)
	if !ok {
		http.Error(w, "tracing disabled (Tracer is not a Snapshotter)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = trace.WriteJSONL(w, snap.Snapshot())
}

// DebugLWG is the JSON shape of /debug/lwg. It is exported so the
// collector (internal/collect) can decode node snapshots with the same
// struct the node encodes.
type DebugLWG struct {
	PID  ids.ProcessID   `json:"pid"`
	LWGs []DebugLWGEntry `json:"lwgs"`
	HWGs []string        `json:"hwgs"`
}

// DebugLWGEntry is one light-weight group in a DebugLWG snapshot.
type DebugLWGEntry struct {
	LWG     string   `json:"lwg"`
	View    string   `json:"view,omitempty"`
	Members []string `json:"members,omitempty"`
	HWG     string   `json:"hwg,omitempty"`
	Coord   bool     `json:"coordinator"`
}

func (n *Node) serveLWG(w http.ResponseWriter, _ *http.Request) {
	var out DebugLWG
	n.Do(func(ep *core.Endpoint) {
		out.PID = ep.PID()
		for _, lwg := range ep.LWGs() {
			e := DebugLWGEntry{LWG: string(lwg), Coord: ep.IsLWGCoordinator(lwg)}
			if v, ok := ep.LWGView(lwg); ok {
				e.View = v.ID.String()
				for _, m := range v.Members {
					e.Members = append(e.Members, m.String())
				}
			}
			if hwg, ok := ep.Mapping(lwg); ok {
				e.HWG = hwg.String()
			}
			out.LWGs = append(out.LWGs, e)
		}
		for _, h := range ep.HWGs() {
			out.HWGs = append(out.HWGs, h.String())
		}
	})
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(out)
}

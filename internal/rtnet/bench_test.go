package rtnet

import (
	"net"
	"testing"
)

// BenchmarkReassemblerAddrKey models the per-datagram receive work the
// read path performs before decoding: derive the reassembly key from
// the remote address and run the datagram through the reassembler.
// Before the pipeline PR the key was raddr.String() — one string
// allocation per datagram — and the single-chunk case copied the
// payload; the value-struct key (netip.AddrPort) plus the single-chunk
// aliasing fast path take this to zero allocations.
func BenchmarkReassemblerAddrKey(b *testing.B) {
	payload := make([]byte, 1024)
	chunks := fragment(1, payload)
	if len(chunks) != 1 {
		b.Fatal("expected a single chunk")
	}
	raddr := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 54321}
	ap := raddr.AddrPort()
	re := newReassembler()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := re.add(ap, chunks[0])
		if err != nil || out == nil {
			b.Fatal("reassembly failed")
		}
	}
}

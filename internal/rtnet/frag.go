package rtnet

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"time"
)

// UDP datagrams top out near 64 KiB (and fragment at the IP layer long
// before that); protocol messages — flush fills, naming databases, state
// transfers — can exceed it. The transport therefore chunks every
// encoded envelope into datagrams of at most fragPayload bytes and
// reassembles on receipt. Loss of any chunk abandons the whole message
// after a timeout, which is indistinguishable from losing the datagram —
// the protocols already tolerate that.

const (
	// fragPayload is the chunk payload size: safely below common UDP
	// socket buffer and loopback MTU limits.
	fragPayload = 32 * 1024
	// fragHeader is: magic(2) msgID(8) index(2) total(2).
	fragHeader = 14
	// fragTimeout abandons incomplete reassemblies.
	fragTimeout = 5 * time.Second
)

var fragMagic = [2]byte{0xB6, 0x1D}

// fragKey identifies a reassembly: datagrams carry no decoded sender
// identity, so the remote socket address stands in for it. The address
// is the comparable netip.AddrPort value — deriving the key from a
// received datagram costs no allocation (raddr.String() used to be one
// string allocation per datagram on the hot receive path).
type fragKey struct {
	from  netip.AddrPort // remote UDP address
	msgID uint64
}

type fragBuf struct {
	chunks  [][]byte
	have    int
	started time.Time
}

// writeFragHeader fills the fragment header at the front of dst (which
// must be at least fragHeader bytes).
func writeFragHeader(dst []byte, msgID uint64, idx, total uint16) {
	dst[0] = fragMagic[0]
	dst[1] = fragMagic[1]
	binary.BigEndian.PutUint64(dst[2:10], msgID)
	binary.BigEndian.PutUint16(dst[10:12], idx)
	binary.BigEndian.PutUint16(dst[12:14], total)
}

// fragment splits an encoded envelope into datagram-sized chunks.
func fragment(msgID uint64, data []byte) [][]byte {
	total := (len(data) + fragPayload - 1) / fragPayload
	if total == 0 {
		total = 1
	}
	if total > 0xffff {
		return nil // absurd; drop rather than overflow the header
	}
	out := make([][]byte, 0, total)
	for i := 0; i < total; i++ {
		lo := i * fragPayload
		hi := lo + fragPayload
		if hi > len(data) {
			hi = len(data)
		}
		chunk := make([]byte, fragHeader+hi-lo)
		writeFragHeader(chunk, msgID, uint16(i), uint16(total))
		copy(chunk[fragHeader:], data[lo:hi])
		out = append(out, chunk)
	}
	return out
}

// reassembler rebuilds envelopes from chunks (single-goroutine: the UDP
// read loop).
type reassembler struct {
	bufs   map[fragKey]*fragBuf
	now    func() time.Time // injectable for GC tests
	lastGC time.Time
}

func newReassembler() *reassembler {
	return newReassemblerClock(time.Now)
}

func newReassemblerClock(now func() time.Time) *reassembler {
	return &reassembler{
		bufs:   make(map[fragKey]*fragBuf),
		now:    now,
		lastGC: now(),
	}
}

// add consumes one datagram and returns the completed envelope bytes
// when the last chunk arrives. Ownership of the datagram's memory
// transfers to the reassembler: single-chunk messages return an alias
// of the payload (no copy — the dominant case on the hot receive path)
// and multi-chunk payloads are held by alias until assembly, so the
// caller must pass a slice it will never reuse (not a shared read
// buffer).
func (r *reassembler) add(from netip.AddrPort, datagram []byte) ([]byte, error) {
	if len(datagram) < fragHeader || datagram[0] != fragMagic[0] || datagram[1] != fragMagic[1] {
		return nil, fmt.Errorf("not a fragment datagram")
	}
	msgID := binary.BigEndian.Uint64(datagram[2:10])
	idx := int(binary.BigEndian.Uint16(datagram[10:12]))
	total := int(binary.BigEndian.Uint16(datagram[12:14]))
	if total == 0 || idx >= total {
		return nil, fmt.Errorf("bad fragment header idx=%d total=%d", idx, total)
	}
	payload := datagram[fragHeader:]
	if total == 1 {
		return payload, nil
	}
	k := fragKey{from: from, msgID: msgID}
	b := r.bufs[k]
	if b == nil {
		b = &fragBuf{chunks: make([][]byte, total), started: r.now()}
		r.bufs[k] = b
	}
	if len(b.chunks) != total {
		// Conflicting totals: restart the buffer.
		b = &fragBuf{chunks: make([][]byte, total), started: r.now()}
		r.bufs[k] = b
	}
	if b.chunks[idx] == nil {
		b.chunks[idx] = payload
		b.have++
	}
	if b.have < total {
		r.gc()
		return nil, nil
	}
	delete(r.bufs, k)
	var out []byte
	for _, c := range b.chunks {
		out = append(out, c...)
	}
	return out, nil
}

// gc abandons stale reassemblies. Under memory pressure (many buffers
// outstanding) it sweeps on every call; otherwise it still sweeps once
// per fragTimeout so a handful of abandoned partials on a long-running
// node is reclaimed instead of living forever.
func (r *reassembler) gc() {
	now := r.now()
	if len(r.bufs) < 64 && now.Sub(r.lastGC) < fragTimeout {
		return
	}
	r.lastGC = now
	cutoff := now.Add(-fragTimeout)
	for k, b := range r.bufs {
		if b.started.Before(cutoff) {
			delete(r.bufs, k)
		}
	}
}

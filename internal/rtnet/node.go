package rtnet

import (
	"fmt"
	"net"

	"plwg/internal/core"
	"plwg/internal/ids"
	"plwg/internal/metrics"
	"plwg/internal/naming"
	"plwg/internal/netsim"
	"plwg/internal/trace"
	"plwg/internal/vsync"
)

// NodeConfig describes one live process of the light-weight group
// service.
type NodeConfig struct {
	// PID is this process's identifier.
	PID ids.ProcessID
	// Listen is the UDP address to bind ("127.0.0.1:0" for an ephemeral
	// port).
	Listen string
	// Peers maps every other process to its UDP address. It may be
	// filled in after binding (see Node.SetPeers) when ports are
	// ephemeral.
	Peers map[ids.ProcessID]string
	// NameServers lists the processes hosting naming replicas; if PID is
	// among them, this node runs a server too.
	NameServers []ids.ProcessID
	// Service, Vsync and Naming override protocol configuration.
	Service core.Config
	Vsync   vsync.Config
	Naming  naming.Config
	// Upcalls receives View/Data callbacks — ON THE DRIVER LOOP
	// GOROUTINE. Hand off to channels for application work.
	Upcalls core.Upcalls
	// Tracer records protocol events (optional). A *trace.Ring here
	// additionally makes the node's event history snapshottable through
	// the debug endpoint.
	Tracer trace.Tracer
	// Metrics receives instrumentation from every layer of the stack
	// (transport, vsync, core, naming); nil disables it at zero
	// hot-path cost.
	Metrics *metrics.Registry
	// Pipeline tunes the transport's parallel data plane (decode pool,
	// send ring, writer goroutines). The zero value picks defaults; set
	// Pipeline.Inline for the single-goroutine baseline path.
	Pipeline PipelineConfig
	// TraceSampleEvery gates the wire-level trace context on
	// high-volume traffic (data/ack/heartbeat/nack envelopes): every Nth
	// such send carries the sender's causal context; control traffic
	// always does. 0 picks the default (64); a negative value disables
	// wire trace contexts entirely. Only meaningful when the node is
	// instrumented (Tracer or Metrics set) — an uninstrumented node
	// never stamps contexts.
	TraceSampleEvery int
	// Seed seeds the node's local engine.
	Seed int64
}

// DefaultTraceSampleEvery is the default wire trace-context sampling
// interval for high-volume message kinds: 1-in-64 keeps the rt-throughput
// overhead well inside the observability budget while still yielding
// hundreds of latency samples per second at data-plane rates.
const DefaultTraceSampleEvery = 64

// Node is one live process: driver + UDP transport + LWG endpoint (and
// possibly a naming server).
type Node struct {
	cfg NodeConfig
	d   *Driver
	tr  *Transport
	ep  *core.Endpoint
	srv *naming.Server
	mux *netsim.Mux
}

// Listen binds the node's UDP socket. Call before Start; the bound
// address (with the resolved ephemeral port) is available via Addr.
func Listen(cfg NodeConfig) (*Node, error) {
	core.RegisterWireTypes()
	naming.RegisterWireTypes()

	laddr, err := net.ResolveUDPAddr("udp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("resolve %q: %w", cfg.Listen, err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("listen %q: %w", cfg.Listen, err)
	}
	// Large socket buffers absorb fan-out bursts; what still gets lost
	// is repaired by the vsync layer's NACK machinery.
	_ = conn.SetReadBuffer(4 << 20)
	_ = conn.SetWriteBuffer(4 << 20)
	d := NewDriver(cfg.Seed)
	n := &Node{
		cfg: cfg,
		d:   d,
		tr:  NewTransport(d, cfg.PID, conn, nil),
		mux: netsim.NewMux(),
	}
	// Fault decisions derive from the node seed (offset so they are not
	// correlated with the protocol engine's own randomness).
	n.tr.SeedFaults(cfg.Seed ^ 0x5bd1e995)
	n.tr.pc = cfg.Pipeline
	n.tr.Instrument(cfg.Metrics)
	// Wire trace contexts ride only on instrumented nodes: stamping costs
	// a wall-clock read and a few bytes per sampled envelope, and without
	// a tracer or registry nobody could consume them.
	if cfg.TraceSampleEvery >= 0 && (cfg.Tracer != nil || cfg.Metrics != nil) {
		every := cfg.TraceSampleEvery
		if every == 0 {
			every = DefaultTraceSampleEvery
		}
		n.tr.TraceContext(cfg.Tracer, every)
	}
	return n, nil
}

// Addr returns the bound UDP address.
func (n *Node) Addr() *net.UDPAddr { return n.tr.LocalAddr() }

// SetPeers installs (or replaces) the peer address book; required before
// Start when NodeConfig.Peers was incomplete at Listen time.
func (n *Node) SetPeers(peers map[ids.ProcessID]string) error {
	resolved := make(map[ids.ProcessID]*net.UDPAddr, len(peers))
	for p, a := range peers {
		if p == n.cfg.PID {
			continue
		}
		ua, err := net.ResolveUDPAddr("udp", a)
		if err != nil {
			return fmt.Errorf("resolve peer %v %q: %w", p, a, err)
		}
		resolved[p] = ua
	}
	n.tr.setPeers(resolved)
	return nil
}

// Start assembles the protocol stack and begins processing.
func (n *Node) Start() error {
	if len(n.tr.peers) == 0 && len(n.cfg.Peers) > 0 {
		if err := n.SetPeers(n.cfg.Peers); err != nil {
			return err
		}
	}
	n.ep = core.New(core.Params{
		Net:     n.tr,
		PID:     n.cfg.PID,
		Servers: n.cfg.NameServers,
		Config:  n.cfg.Service,
		Vsync:   n.cfg.Vsync,
		Naming:  n.cfg.Naming,
		Upcalls: n.cfg.Upcalls,
		Tracer:  n.cfg.Tracer,
		Metrics: n.cfg.Metrics,
	}, n.mux)
	for _, sp := range n.cfg.NameServers {
		if sp == n.cfg.PID {
			n.srv = naming.NewServer(naming.ServerParams{
				Net: n.tr, PID: n.cfg.PID, Peers: n.cfg.NameServers,
				Config: n.cfg.Naming, Tracer: n.cfg.Tracer,
				Metrics: n.cfg.Metrics,
			})
			n.mux.Handle(naming.ServerPrefix, n.srv.HandleMessage)
			n.srv.Start()
		}
	}
	n.tr.SetHandler(n.mux.Handler())
	n.tr.Start()
	n.d.Start()
	return nil
}

// Registry returns the node's metrics registry (nil when metrics are
// disabled). Safe from any goroutine — instruments are atomic.
func (n *Node) Registry() *metrics.Registry { return n.cfg.Metrics }

// Do runs fn against the endpoint on the protocol goroutine and waits
// for it (the only safe way to issue Join/Leave/Send or read views from
// application code).
func (n *Node) Do(fn func(ep *core.Endpoint)) {
	n.d.Call(func() { fn(n.ep) })
}

// Block injects a partition at this node: traffic to and from the given
// peers is dropped until Unblock. Partition both sides symmetrically for
// a faithful split.
func (n *Node) Block(peers ...ids.ProcessID) {
	n.d.Call(func() { n.tr.Block(peers...) })
}

// Unblock lifts all partition rules at this node.
func (n *Node) Unblock() {
	n.d.Call(func() { n.tr.Unblock() })
}

// SetFaults parses a fault spec (see ParseFaultSpec for the grammar) and
// installs it on this node's transport, replacing any previous rules.
// Safe from any goroutine, at any time after Listen.
func (n *Node) SetFaults(spec string) error {
	fs, err := ParseFaultSpec(spec)
	if err != nil {
		return err
	}
	n.tr.SetFaultSpec(fs)
	return nil
}

// SetFaultSpec installs a parsed fault configuration (nil clears all
// rules). Safe from any goroutine.
func (n *Node) SetFaultSpec(fs *FaultSpec) { n.tr.SetFaultSpec(fs) }

// SetLinkFault overrides the fault rule on the directed link to one peer
// (nil removes the override). Safe from any goroutine.
func (n *Node) SetLinkFault(to ids.ProcessID, r *FaultRule) { n.tr.SetLinkFault(to, r) }

// ClearFaults removes every fault rule. Safe from any goroutine.
func (n *Node) ClearFaults() { n.tr.SetFaultSpec(nil) }

// NamingDBSnapshot returns a copy of this node's naming-server database,
// or nil when the node hosts no server. The copy is taken on the protocol
// loop, so it is a consistent point-in-time snapshot that the caller may
// read from any goroutine afterwards.
func (n *Node) NamingDBSnapshot() *naming.DB {
	var db *naming.DB
	n.d.Call(func() {
		if n.srv == nil {
			return
		}
		db = naming.NewDB()
		db.Merge(n.srv.DB().All())
	})
	return db
}

// Close stops the protocol loop and the transport.
func (n *Node) Close() {
	n.d.Close()
	n.tr.Close()
}

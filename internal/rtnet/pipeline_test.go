package rtnet

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"plwg/internal/core"
	"plwg/internal/ids"
	"plwg/internal/metrics"
	"plwg/internal/wire"
)

// TestDriverDoBatchFIFO submits numbered batches from several goroutines
// concurrently and checks the per-submitter FIFO guarantee: functions
// from one DoBatch run in slice order, and a submitter's successive
// batches run in submission order. (Cross-submitter interleaving is
// unspecified.)
func TestDriverDoBatchFIFO(t *testing.T) {
	d := NewDriver(1)
	d.Start()
	defer d.Close()

	const (
		submitters = 8
		batches    = 50
		batchLen   = 20
	)
	type event struct{ submitter, seq int }
	var (
		mu  sync.Mutex
		log []event
	)
	var wg sync.WaitGroup
	for s := 0; s < submitters; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			seq := 0
			for b := 0; b < batches; b++ {
				fns := make([]func(), batchLen)
				for i := range fns {
					e := event{submitter: s, seq: seq}
					seq++
					fns[i] = func() {
						mu.Lock()
						log = append(log, e)
						mu.Unlock()
					}
				}
				d.DoBatch(fns)
			}
		}()
	}
	wg.Wait()

	want := submitters * batches * batchLen
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		n := len(log)
		mu.Unlock()
		if n == want {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d batched functions ran", n, want)
		}
		time.Sleep(5 * time.Millisecond)
	}

	next := make([]int, submitters)
	mu.Lock()
	defer mu.Unlock()
	for i, e := range log {
		if e.seq != next[e.submitter] {
			t.Fatalf("event %d: submitter %d ran seq %d, want %d (FIFO violated)",
				i, e.submitter, e.seq, next[e.submitter])
		}
		next[e.submitter]++
	}
}

// TestDriverDoAndDoBatchInterleaved checks Do and DoBatch share one FIFO:
// a submitter alternating between them still observes its own order.
func TestDriverDoAndDoBatchInterleaved(t *testing.T) {
	d := NewDriver(1)
	d.Start()
	defer d.Close()

	var (
		mu  sync.Mutex
		got []int
	)
	record := func(v int) func() {
		return func() {
			mu.Lock()
			got = append(got, v)
			mu.Unlock()
		}
	}
	const n = 300
	seq := 0
	for seq < n {
		if seq%3 == 0 {
			d.Do(record(seq))
			seq++
		} else {
			d.DoBatch([]func(){record(seq), record(seq + 1)})
			seq += 2
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		l := len(got)
		mu.Unlock()
		if l >= n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d functions ran", l, n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for i, v := range got {
		if v != i {
			t.Fatalf("position %d ran value %d: Do/DoBatch order mixed up", i, v)
		}
	}
}

// TestSendRingOverflowBackpressure drives dispatch against full
// send-ring shards with no writers draining them: the overflowing
// datagrams must be dropped (never block) and counted, and the
// refcounted buffers they carried must be released.
func TestSendRingOverflowBackpressure(t *testing.T) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	d := NewDriver(1)
	tr := NewTransport(d, 0, conn, nil)
	reg := metrics.NewRegistry()
	tr.Instrument(reg)
	// Hand-build the rings without writers, so nothing drains them.
	const ringCap = 2
	tr.sendQs = []chan sendReq{make(chan sendReq, ringCap)}
	to := conn.LocalAddr().(*net.UDPAddr).AddrPort()

	buf := wire.GetBuffer()
	buf.B = append(buf.B, make([]byte, 64)...)
	const sends = 7
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < sends; i++ {
			buf.Retain()
			tr.dispatch(sendReq{data: buf.B, buf: buf, to: to})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("dispatch blocked on a full send ring")
	}

	if got := reg.Totals()["rtnet_send_ring_overflow_total"]; got != sends-ringCap {
		t.Fatalf("overflow counter = %d, want %d", got, sends-ringCap)
	}
	if got := len(tr.sendQs[0]); got != ringCap {
		t.Fatalf("ring holds %d requests, want %d", got, ringCap)
	}
	// Refcount audit: the encoder reference plus one per queued request
	// must remain; the overflowed references must already be gone. Drain
	// and release everything — a correct count ends exactly at zero
	// references (Release returns the buffer to the pool on the last
	// one, which we can't observe directly, so check via the counter
	// value reached before).
	for i := 0; i < ringCap; i++ {
		req := <-tr.sendQs[0]
		req.buf.Release()
	}
	buf.Release() // the encoder's own reference
}

// TestPipelineCloseMidFlight closes clusters while senders have just
// stopped and datagrams — including multi-fragment messages — are still
// in flight through the decode pool, the inbox, and the send rings. Run
// under -race this exercises the shutdown ordering: reader exit closes
// the worker channels, workers drain, writers stop, rings drain.
func TestPipelineCloseMidFlight(t *testing.T) {
	for round := 0; round < 3; round++ {
		nodes, cols := startCluster(t, 3, []ids.ProcessID{0})
		for i := 0; i < 3; i++ {
			nodes[i].Do(func(ep *core.Endpoint) { _ = ep.Join("mf") })
		}
		eventually(t, 15*time.Second, func() bool {
			v, ok := cols[0].lastView()
			return ok && v.Members.Equal(ids.NewMembers(0, 1, 2))
		}, "membership did not converge")

		stop := make(chan struct{})
		var wg sync.WaitGroup
		big := make([]byte, 3*fragPayload/2) // forces fragmentation
		for i, n := range nodes {
			i, n := i, n
			wg.Add(1)
			go func() {
				defer wg.Done()
				for k := 0; ; k++ {
					select {
					case <-stop:
						return
					default:
					}
					payload := []byte(fmt.Sprintf("n%d-%d", i, k))
					if k%10 == 0 {
						payload = big
					}
					n.Do(func(ep *core.Endpoint) { _ = ep.Send("mf", payload) })
				}
			}()
		}
		time.Sleep(300 * time.Millisecond)
		close(stop)
		wg.Wait()
		// Close immediately: the rings, worker queues and inbox still
		// hold in-flight datagrams from the burst that just stopped.
		for _, n := range nodes {
			n.Close()
		}
	}
}

package rtnet

import (
	"testing"
	"time"

	"plwg/internal/ids"
)

func TestParseFaultSpec(t *testing.T) {
	fs, err := ParseFaultSpec("loss=0.05,dup=0.05,reorder=0.1,delay=200us..2ms")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	r := fs.Default
	if r == nil {
		t.Fatal("no default rule")
	}
	if r.Loss != 0.05 || r.Dup != 0.05 || r.Reorder != 0.1 {
		t.Fatalf("probabilities wrong: %+v", r)
	}
	if r.DelayMin != 200*time.Microsecond || r.DelayMax != 2*time.Millisecond {
		t.Fatalf("delays wrong: %+v", r)
	}
	if len(fs.Links) != 0 {
		t.Fatalf("unexpected link rules: %v", fs.Links)
	}
}

func TestParseFaultSpecPerLink(t *testing.T) {
	fs, err := ParseFaultSpec("loss=0.2;3:block;7:clean")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if fs.Default == nil || fs.Default.Loss != 0.2 {
		t.Fatalf("default wrong: %+v", fs.Default)
	}
	if r := fs.Links[3]; r == nil || !r.Block {
		t.Fatalf("link 3 should be blocked: %+v", r)
	}
	if r := fs.Links[7]; r == nil || !r.clean() {
		t.Fatalf("link 7 should be an explicit clean override: %+v", r)
	}
}

func TestParseFaultSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"loss=1.5",       // probability out of range
		"loss=abc",       // not a number
		"delay=oops",     // not a duration
		"delay=5ms..1ms", // inverted range
		"frobnicate",     // unknown item
		"x:block",        // bad peer id
		"-1:block",       // negative peer id
		"dup=0.5,zap=1",  // unknown item after a good one
	} {
		if _, err := ParseFaultSpec(bad); err == nil {
			t.Errorf("spec %q: expected error, got none", bad)
		}
	}
}

func TestFaultSpecRoundTrip(t *testing.T) {
	in := "loss=0.1,delay=1ms..4ms;2:block;5:dup=0.25,reorder=0.5"
	fs, err := ParseFaultSpec(in)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	again, err := ParseFaultSpec(fs.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", fs.String(), err)
	}
	if fs.String() != again.String() {
		t.Fatalf("round trip changed spec: %q vs %q", fs.String(), again.String())
	}
}

func TestFaultPlanDeterministic(t *testing.T) {
	mk := func() *faultTable {
		ft := newFaultTable(42)
		ft.setDefault(&FaultRule{Loss: 0.3, Dup: 0.3, Reorder: 0.3, DelayMin: time.Millisecond, DelayMax: 5 * time.Millisecond})
		return ft
	}
	a, b := mk(), mk()
	for i := 0; i < 1000; i++ {
		to := ids.ProcessID(i % 4)
		sa, da := a.plan(to)
		sb, db := b.plan(to)
		if sa != sb || len(da) != len(db) {
			t.Fatalf("step %d: decisions diverged (%v,%v) vs (%v,%v)", i, sa, da, sb, db)
		}
		for j := range da {
			if da[j] != db[j] {
				t.Fatalf("step %d copy %d: delay %v vs %v", i, j, da[j], db[j])
			}
		}
	}
}

func TestFaultPlanBlockAndOverride(t *testing.T) {
	ft := newFaultTable(1)
	ft.setDefault(&FaultRule{Block: true})
	ft.setLink(2, &FaultRule{}) // explicit clean override
	if send, _ := ft.plan(1); send {
		t.Fatal("default block should drop")
	}
	if send, delays := ft.plan(2); !send || delays != nil {
		t.Fatalf("clean override should pass through, got send=%v delays=%v", send, delays)
	}
	ft.setLink(2, nil) // remove override: falls back to blocked default
	if send, _ := ft.plan(2); send {
		t.Fatal("after removing the override the default block should apply")
	}
}

func TestFaultPlanLossRate(t *testing.T) {
	ft := newFaultTable(7)
	ft.setDefault(&FaultRule{Loss: 0.5})
	dropped := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if send, _ := ft.plan(1); !send {
			dropped++
		}
	}
	if dropped < n*4/10 || dropped > n*6/10 {
		t.Fatalf("loss=0.5 dropped %d of %d", dropped, n)
	}
}

func TestFaultPlanCleanFastPath(t *testing.T) {
	ft := newFaultTable(1)
	if send, delays := ft.plan(3); !send || delays != nil {
		t.Fatalf("empty table must be a no-op, got send=%v delays=%v", send, delays)
	}
	ft.setDefault(&FaultRule{Loss: 1})
	ft.install(nil) // clear everything
	if send, delays := ft.plan(3); !send || delays != nil {
		t.Fatalf("cleared table must be a no-op, got send=%v delays=%v", send, delays)
	}
}

package rtnet

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"plwg/internal/core"
	"plwg/internal/ids"
)

// TestFaultMutationDuringTrafficAndClose hammers the thread-safety
// contract of the fault layer: fault rules are mutated from several
// goroutines while the protocol loop sends, the UDP readers receive,
// and finally while the nodes shut down. Run under -race this covers
// the transport close / reader-goroutine / fault-table interleavings.
func TestFaultMutationDuringTrafficAndClose(t *testing.T) {
	nodes, cols := startCluster(t, 3, []ids.ProcessID{0})

	for i := 0; i < 3; i++ {
		nodes[i].Do(func(ep *core.Endpoint) {
			if err := ep.Join("g"); err != nil {
				t.Errorf("join at %d: %v", i, err)
			}
		})
	}
	eventually(t, 15*time.Second, func() bool {
		v, ok := cols[0].lastView()
		return ok && v.Members.Equal(ids.NewMembers(0, 1, 2))
	}, "membership did not converge")

	stopMut := make(chan struct{})
	var mutWG sync.WaitGroup
	// Two mutators per node flip between fault specs as fast as they can.
	for _, n := range nodes {
		n := n
		for g := 0; g < 2; g++ {
			mutWG.Add(1)
			go func() {
				defer mutWG.Done()
				specs := []string{
					"loss=0.2,dup=0.2,reorder=0.3,delay=100us..1ms",
					"1:block;loss=0.05",
					"",
				}
				for i := 0; ; i++ {
					select {
					case <-stopMut:
						return
					default:
					}
					if err := n.SetFaults(specs[i%len(specs)]); err != nil {
						t.Errorf("SetFaults: %v", err)
						return
					}
					n.SetLinkFault(2, &FaultRule{Dup: 0.5})
					n.SetLinkFault(2, nil)
					n.ClearFaults()
				}
			}()
		}
	}

	// Traffic while the rules churn.
	stopSend := make(chan struct{})
	var sendWG sync.WaitGroup
	for i, n := range nodes {
		i, n := i, n
		sendWG.Add(1)
		go func() {
			defer sendWG.Done()
			for k := 0; ; k++ {
				select {
				case <-stopSend:
					return
				default:
				}
				n.Do(func(ep *core.Endpoint) {
					_ = ep.Send("g", []byte(fmt.Sprintf("n%d-%d", i, k)))
				})
				time.Sleep(time.Millisecond)
			}
		}()
	}

	time.Sleep(2 * time.Second)
	close(stopSend)
	sendWG.Wait()
	// Close the nodes while the fault mutators are still running: rule
	// mutation must stay safe against the dying reader and loop.
	for _, n := range nodes {
		n.Close()
	}
	close(stopMut)
	mutWG.Wait()
}

package rtnet

import (
	"bytes"
	"net/netip"
	"testing"
	"time"
)

// fakeClock is a manually-advanced time source for reassembler tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// partial feeds the first chunk of a multi-chunk message, leaving a
// dangling reassembly buffer.
func partial(t *testing.T, r *reassembler, from netip.AddrPort, msgID uint64) {
	t.Helper()
	data := make([]byte, fragPayload+100) // two chunks
	chunks := fragment(msgID, data)
	if len(chunks) < 2 {
		t.Fatalf("want a multi-chunk message, got %d chunks", len(chunks))
	}
	out, err := r.add(from, chunks[0])
	if err != nil || out != nil {
		t.Fatalf("partial add: out=%v err=%v", out, err)
	}
}

// TestFragGCReclaimsStalePartialsBelowThreshold is the regression test
// for the gc() early return: with fewer than 64 buffers outstanding the
// old code never swept, so a stale partial (its peer crashed, or the
// missing chunk was lost for good) leaked forever.
func TestFragGCReclaimsStalePartialsBelowThreshold(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	r := newReassemblerClock(clk.now)

	partial(t, r, netip.MustParseAddrPort("10.0.0.1:1"), 1)
	partial(t, r, netip.MustParseAddrPort("10.0.0.2:1"), 2)
	if len(r.bufs) != 2 {
		t.Fatalf("want 2 partial buffers, have %d", len(r.bufs))
	}

	// Well past the reassembly timeout, a fresh partial arrives and
	// triggers the periodic sweep. The two stale buffers must go.
	clk.advance(fragTimeout + time.Second)
	partial(t, r, netip.MustParseAddrPort("10.0.0.3:1"), 3)
	if len(r.bufs) != 1 {
		t.Fatalf("stale partials not reclaimed: %d buffers outstanding", len(r.bufs))
	}
	if _, ok := r.bufs[fragKey{from: netip.MustParseAddrPort("10.0.0.3:1"), msgID: 3}]; !ok {
		t.Fatal("the fresh partial was swept instead of the stale ones")
	}
}

// TestFragGCKeepsFreshPartials: a sweep must not reap buffers still
// inside the reassembly window.
func TestFragGCKeepsFreshPartials(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	r := newReassemblerClock(clk.now)

	partial(t, r, netip.MustParseAddrPort("10.0.0.1:1"), 1)
	clk.advance(fragTimeout / 2)
	partial(t, r, netip.MustParseAddrPort("10.0.0.2:1"), 2)
	clk.advance(fragTimeout/2 + time.Millisecond) // first is now stale, second not
	partial(t, r, netip.MustParseAddrPort("10.0.0.3:1"), 3)

	if _, ok := r.bufs[fragKey{from: netip.MustParseAddrPort("10.0.0.1:1"), msgID: 1}]; ok {
		t.Fatal("stale partial survived the sweep")
	}
	if _, ok := r.bufs[fragKey{from: netip.MustParseAddrPort("10.0.0.2:1"), msgID: 2}]; !ok {
		t.Fatal("fresh partial was reaped")
	}
}

// TestFragStormConflictingTotals: datagrams claiming different totals
// for the same (sender, msgID) must restart the buffer — and the
// message must still complete once a consistent set of chunks lands.
func TestFragStormConflictingTotals(t *testing.T) {
	r := newReassembler()
	from := netip.MustParseAddrPort("10.0.0.9:9")

	big := make([]byte, 2*fragPayload+50) // three chunks
	for i := range big {
		big[i] = byte(i * 7)
	}
	small := make([]byte, fragPayload+50) // two chunks
	for i := range small {
		small[i] = byte(i * 13)
	}
	bigChunks := fragment(1, big)
	smallChunks := fragment(1, small) // same msgID, conflicting total

	// Start reassembling the 3-chunk flavour…
	if out, err := r.add(from, bigChunks[0]); err != nil || out != nil {
		t.Fatalf("first chunk: out=%v err=%v", out, err)
	}
	if out, err := r.add(from, bigChunks[1]); err != nil || out != nil {
		t.Fatalf("second chunk: out=%v err=%v", out, err)
	}
	// …then a conflicting total restarts the buffer mid-reassembly.
	if out, err := r.add(from, smallChunks[0]); err != nil || out != nil {
		t.Fatalf("conflicting chunk: out=%v err=%v", out, err)
	}
	b := r.bufs[fragKey{from: from, msgID: 1}]
	if b == nil || len(b.chunks) != 2 || b.have != 1 {
		t.Fatalf("buffer not restarted: %+v", b)
	}
	// A late chunk of the old flavour conflicts again and restarts again.
	if out, err := r.add(from, bigChunks[2]); err != nil || out != nil {
		t.Fatalf("late old chunk: out=%v err=%v", out, err)
	}
	// Finally a consistent pair completes.
	if out, err := r.add(from, smallChunks[0]); err != nil || out != nil {
		t.Fatalf("restart chunk: out=%v err=%v", out, err)
	}
	out, err := r.add(from, smallChunks[1])
	if err != nil {
		t.Fatalf("final chunk: %v", err)
	}
	if !bytes.Equal(out, small) {
		t.Fatalf("reassembled %d bytes, want the %d-byte message", len(out), len(small))
	}
	if len(r.bufs) != 0 {
		t.Fatalf("%d buffers left after completion", len(r.bufs))
	}
}

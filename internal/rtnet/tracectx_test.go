package rtnet

import (
	"bytes"
	"encoding/gob"
	"sync"
	"testing"

	"plwg/internal/wire"
)

// gobTestMsg has no codec (wire.Marshaler) support, forcing the gob
// envelope fallback.
type gobTestMsg struct{ Data []byte }

func (m *gobTestMsg) WireSize() int { return len(m.Data) }

var gobTestRegOnce sync.Once

func registerGobTestMsg() {
	gobTestRegOnce.Do(func() { gob.Register(&gobTestMsg{}) })
}

// TestEnvelopeTraceCtxCodecRoundTrip checks the envCodecTC layout: the
// trace context rides between the tag byte and the codec body, and both
// come back intact.
func TestEnvelopeTraceCtxCodecRoundTrip(t *testing.T) {
	registerFragTestMsg()
	tc := wire.TraceCtx{Origin: 4, VT: 123456, Wall: 1700000000000000001, Sampled: true, Ref: "hwg/9"}
	env := &envelope{From: 4, Uni: true, Addr: "hwg/9", Msg: &fragTestMsg{Data: []byte("payload")}, tc: &tc}
	buf, err := encodeEnvelope(env)
	if err != nil {
		t.Fatal(err)
	}
	defer buf.Release()
	if buf.B[0] != envCodecTC {
		t.Fatalf("tag = %d, want envCodecTC (%d)", buf.B[0], envCodecTC)
	}
	dec, err := decodeEnvelope(buf.B)
	if err != nil {
		t.Fatal(err)
	}
	if dec.tc == nil || *dec.tc != tc {
		t.Fatalf("trace context: got %+v, want %+v", dec.tc, tc)
	}
	if dec.From != env.From || dec.Uni != env.Uni || dec.Addr != env.Addr {
		t.Fatalf("envelope header mismatch: %+v vs %+v", dec, env)
	}
	m, ok := dec.Msg.(*fragTestMsg)
	if !ok || !bytes.Equal(m.Data, []byte("payload")) {
		t.Fatalf("body corrupted: %#v", dec.Msg)
	}
}

// TestEnvelopeTraceCtxGobRoundTrip checks the envGobTC layout: same
// trace-context prefix, gob-encoded body.
func TestEnvelopeTraceCtxGobRoundTrip(t *testing.T) {
	registerGobTestMsg()
	tc := wire.TraceCtx{Origin: 2, VT: 7, Wall: 99, Sampled: true, Ref: "ns/0"}
	env := &envelope{From: 2, Addr: "ns/0", Msg: &gobTestMsg{Data: []byte("gob body")}, tc: &tc}
	buf, err := encodeEnvelope(env)
	if err != nil {
		t.Fatal(err)
	}
	defer buf.Release()
	if buf.B[0] != envGobTC {
		t.Fatalf("tag = %d, want envGobTC (%d)", buf.B[0], envGobTC)
	}
	dec, err := decodeEnvelope(buf.B)
	if err != nil {
		t.Fatal(err)
	}
	if dec.tc == nil || *dec.tc != tc {
		t.Fatalf("trace context: got %+v, want %+v", dec.tc, tc)
	}
	m, ok := dec.Msg.(*gobTestMsg)
	if !ok || !bytes.Equal(m.Data, []byte("gob body")) {
		t.Fatalf("body corrupted: %#v", dec.Msg)
	}
}

// TestEnvelopeWithoutTraceCtxKeepsLegacyTags pins backward
// compatibility: an unstamped envelope must encode with the original
// envCodec/envGob tags so uninstrumented peers interoperate.
func TestEnvelopeWithoutTraceCtxKeepsLegacyTags(t *testing.T) {
	registerFragTestMsg()
	registerGobTestMsg()
	codecEnv := &envelope{From: 1, Msg: &fragTestMsg{Data: []byte("x")}}
	buf, err := encodeEnvelope(codecEnv)
	if err != nil {
		t.Fatal(err)
	}
	if buf.B[0] != envCodec {
		t.Fatalf("codec tag = %d, want envCodec (%d)", buf.B[0], envCodec)
	}
	buf.Release()
	gobEnv := &envelope{From: 1, Msg: &gobTestMsg{Data: []byte("x")}}
	buf, err = encodeEnvelope(gobEnv)
	if err != nil {
		t.Fatal(err)
	}
	if buf.B[0] != envGob {
		t.Fatalf("gob tag = %d, want envGob (%d)", buf.B[0], envGob)
	}
	buf.Release()
}

// TestEnvelopeTraceCtxTruncated checks that every strict prefix of a
// TC-tagged envelope fails to decode rather than mis-parsing: the trace
// context sits in front of the body, so corruption there must not be
// interpreted as message bytes.
func TestEnvelopeTraceCtxTruncated(t *testing.T) {
	registerFragTestMsg()
	tc := wire.TraceCtx{Origin: 1, VT: 2, Wall: 3, Sampled: true, Ref: "hwg/1"}
	env := &envelope{From: 1, Msg: &fragTestMsg{Data: []byte("abc")}, tc: &tc}
	buf, err := encodeEnvelope(env)
	if err != nil {
		t.Fatal(err)
	}
	defer buf.Release()
	for cut := 1; cut < len(buf.B); cut++ {
		if _, err := decodeEnvelope(buf.B[:cut]); err == nil {
			t.Fatalf("truncated envelope (%d of %d bytes) decoded", cut, len(buf.B))
		}
	}
}

package rtnet

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"plwg/internal/core"
	"plwg/internal/ids"
	"plwg/internal/wire"
)

// fragTestMsg is a codec-capable message used to exercise the envelope
// codec against the fragmentation layer without reaching into other
// packages' unexported types.
type fragTestMsg struct{ Data []byte }

func (m *fragTestMsg) WireSize() int                   { return len(m.Data) }
func (m *fragTestMsg) WireID() byte                    { return 255 }
func (m *fragTestMsg) MarshalWire(b *wire.Buffer) bool { b.Bytes(m.Data); return true }

var fragTestRegOnce sync.Once

func registerFragTestMsg() {
	fragTestRegOnce.Do(func() {
		wire.Register(255, func(r *wire.Reader) (wire.Marshaler, error) {
			m := &fragTestMsg{Data: append([]byte(nil), r.Bytes()...)}
			if err := r.Err(); err != nil {
				return nil, err
			}
			return m, nil
		})
	})
}

// TestEnvelopeCodecSurvivesFragmentation pushes a codec-encoded envelope
// bigger than one fragment through encode → fragment → reassemble →
// decode and checks it comes back intact.
func TestEnvelopeCodecSurvivesFragmentation(t *testing.T) {
	registerFragTestMsg()
	payload := make([]byte, 3*fragPayload/2) // guaranteed to span fragments
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	env := &envelope{From: 7, Msg: &fragTestMsg{Data: payload}}
	buf, err := encodeEnvelope(env)
	if err != nil {
		t.Fatal(err)
	}
	if buf.B[0] != envCodec {
		t.Fatalf("expected codec envelope, got tag %d", buf.B[0])
	}
	chunks := fragment(42, buf.B)
	buf.Release()
	if len(chunks) < 2 {
		t.Fatalf("payload did not fragment: %d chunk(s)", len(chunks))
	}
	r := newReassembler()
	var whole []byte
	for _, c := range chunks {
		got, err := r.add(fragAddr(1), c)
		if err != nil {
			t.Fatal(err)
		}
		if got != nil {
			if whole != nil {
				t.Fatal("reassembler produced two messages")
			}
			whole = got
		}
	}
	if whole == nil {
		t.Fatal("reassembly incomplete after all fragments")
	}
	dec, err := decodeEnvelope(whole)
	if err != nil {
		t.Fatal(err)
	}
	if dec.From != env.From || dec.Uni != env.Uni {
		t.Fatalf("envelope header mismatch: %+v vs %+v", dec, env)
	}
	m, ok := dec.Msg.(*fragTestMsg)
	if !ok {
		t.Fatalf("decoded %T, want *fragTestMsg", dec.Msg)
	}
	if !bytes.Equal(m.Data, payload) {
		t.Fatal("payload corrupted across fragmentation")
	}
}

// TestUDPBatchCrossesFragmentation packs several large LWG sends into
// one batch whose wire size exceeds the UDP fragmentation threshold and
// checks every payload arrives intact and in FIFO order over real
// sockets.
func TestUDPBatchCrossesFragmentation(t *testing.T) {
	svc := core.Config{
		MaxBatchBytes: 256 * 1024, // flush by delay, not size
		MaxBatchDelay: 25 * time.Millisecond,
	}
	nodes := make([]*Node, 2)
	cols := make([]*collector, 2)
	for i := 0; i < 2; i++ {
		cols[i] = &collector{}
		node, err := Listen(NodeConfig{
			PID:         ids.ProcessID(i),
			Listen:      "127.0.0.1:0",
			NameServers: []ids.ProcessID{0},
			Service:     svc,
			Upcalls:     cols[i],
			Seed:        int64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	peers := map[ids.ProcessID]string{}
	for i, node := range nodes {
		peers[ids.ProcessID(i)] = node.Addr().String()
	}
	for _, node := range nodes {
		if err := node.SetPeers(peers); err != nil {
			t.Fatal(err)
		}
		if err := node.Start(); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, node := range nodes {
			node.Close()
		}
	})

	for i := 0; i < 2; i++ {
		nodes[i].Do(func(ep *core.Endpoint) { _ = ep.Join("big") })
	}
	eventually(t, 15*time.Second, func() bool {
		v, ok := cols[1].lastView()
		return ok && v.Members.Equal(ids.NewMembers(0, 1))
	}, "membership did not converge")

	// Six ~10 KiB sends in one driver turn: they coalesce into a single
	// batch of ~60 KiB, which must cross the 32 KiB fragment boundary.
	const n = 6
	var want []string
	for i := 0; i < n; i++ {
		want = append(want, fmt.Sprintf("%d|%s", i, strings.Repeat(string(rune('a'+i)), 10*1024)))
	}
	nodes[0].Do(func(ep *core.Endpoint) {
		for _, msg := range want {
			if err := ep.Send("big", []byte(msg)); err != nil {
				t.Errorf("send: %v", err)
			}
		}
	})
	eventually(t, 15*time.Second, func() bool {
		return len(cols[1].dataCopy()) >= n
	}, "batched payloads not delivered")

	got := cols[1].dataCopy()
	if len(got) != n {
		t.Fatalf("receiver delivered %d messages, want %d", len(got), n)
	}
	for i, msg := range want {
		if got[i] != "p0:"+msg {
			gi, wi := got[i], "p0:"+msg
			if len(gi) > 40 {
				gi = gi[:40] + "..."
			}
			if len(wi) > 40 {
				wi = wi[:40] + "..."
			}
			t.Fatalf("message %d corrupted or reordered: got %q, want %q", i, gi, wi)
		}
	}
}

package rtnet

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"plwg/internal/core"
	"plwg/internal/ids"
	"plwg/internal/vsync"
)

// collector receives upcalls (on the driver loop) and hands them to the
// test goroutine.
type collector struct {
	mu    sync.Mutex
	views []ids.View
	data  []string
}

func (c *collector) View(_ ids.LWGID, v ids.View) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.views = append(c.views, v.Clone())
}

func (c *collector) Data(_ ids.LWGID, src ids.ProcessID, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.data = append(c.data, fmt.Sprintf("%v:%s", src, data))
}

func (c *collector) lastView() (ids.View, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.views) == 0 {
		return ids.View{}, false
	}
	return c.views[len(c.views)-1], true
}

func (c *collector) dataCopy() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.data...)
}

// startCluster boots n nodes over real UDP on loopback with ephemeral
// ports.
func startCluster(t *testing.T, n int, servers []ids.ProcessID) ([]*Node, []*collector) {
	t.Helper()
	nodes := make([]*Node, n)
	cols := make([]*collector, n)
	for i := 0; i < n; i++ {
		cols[i] = &collector{}
		node, err := Listen(NodeConfig{
			PID:         ids.ProcessID(i),
			Listen:      "127.0.0.1:0",
			NameServers: servers,
			Upcalls:     cols[i],
			Seed:        int64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	peers := make(map[ids.ProcessID]string, n)
	for i, node := range nodes {
		peers[ids.ProcessID(i)] = node.Addr().String()
	}
	for _, node := range nodes {
		if err := node.SetPeers(peers); err != nil {
			t.Fatal(err)
		}
		if err := node.Start(); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, node := range nodes {
			node.Close()
		}
	})
	return nodes, cols
}

// eventually polls cond (on the test goroutine) until it holds or the
// real-time deadline passes.
func eventually(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("timeout: %s", msg)
}

// TestUDPClusterEndToEnd runs the full stack — vsync, naming, LWG service
// — over real UDP sockets on loopback: join, converge, multicast, and
// recover from a (process-level) crash.
func TestUDPClusterEndToEnd(t *testing.T) {
	nodes, cols := startCluster(t, 3, []ids.ProcessID{0})

	for i := 0; i < 3; i++ {
		nodes[i].Do(func(ep *core.Endpoint) {
			if err := ep.Join("live"); err != nil {
				t.Errorf("join at %d: %v", i, err)
			}
		})
	}
	eventually(t, 15*time.Second, func() bool {
		v, ok := cols[0].lastView()
		return ok && v.Members.Equal(ids.NewMembers(0, 1, 2))
	}, "membership did not converge over UDP")

	nodes[1].Do(func(ep *core.Endpoint) {
		if err := ep.Send("live", []byte("over-the-wire")); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	eventually(t, 10*time.Second, func() bool {
		for _, c := range []*collector{cols[0], cols[2]} {
			found := false
			for _, d := range c.dataCopy() {
				if d == "p1:over-the-wire" {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}, "multicast not delivered over UDP")

	// Kill node 2's process (close socket and loop): the survivors'
	// failure detectors must trim the view.
	nodes[2].Close()
	eventually(t, 15*time.Second, func() bool {
		v, ok := cols[0].lastView()
		return ok && v.Members.Equal(ids.NewMembers(0, 1))
	}, "view did not recover from the process crash")
}

// TestUDPLeave exercises the leave path over the real transport.
func TestUDPLeave(t *testing.T) {
	nodes, cols := startCluster(t, 2, []ids.ProcessID{0})
	for i := 0; i < 2; i++ {
		nodes[i].Do(func(ep *core.Endpoint) { _ = ep.Join("g") })
	}
	eventually(t, 15*time.Second, func() bool {
		v, ok := cols[0].lastView()
		return ok && len(v.Members) == 2
	}, "no convergence")
	nodes[1].Do(func(ep *core.Endpoint) { _ = ep.Leave("g") })
	eventually(t, 10*time.Second, func() bool {
		v, ok := cols[0].lastView()
		return ok && v.Members.Equal(ids.NewMembers(0))
	}, "leave did not shrink the view")
}

// TestUDPPartitionAndHeal runs the paper's headline scenario over real
// UDP sockets: a partition splits the group, both sides keep operating
// with concurrent views, and the heal merges them back.
func TestUDPPartitionAndHeal(t *testing.T) {
	nodes, cols := startCluster(t, 4, []ids.ProcessID{0, 2})
	for i := 0; i < 4; i++ {
		nodes[i].Do(func(ep *core.Endpoint) { _ = ep.Join("g") })
	}
	eventually(t, 20*time.Second, func() bool {
		v, ok := cols[0].lastView()
		return ok && len(v.Members) == 4
	}, "initial convergence")

	// Partition {0,1} | {2,3}.
	nodes[0].Block(2, 3)
	nodes[1].Block(2, 3)
	nodes[2].Block(0, 1)
	nodes[3].Block(0, 1)
	eventually(t, 20*time.Second, func() bool {
		vA, okA := cols[0].lastView()
		vB, okB := cols[2].lastView()
		return okA && okB &&
			vA.Members.Equal(ids.NewMembers(0, 1)) &&
			vB.Members.Equal(ids.NewMembers(2, 3))
	}, "views did not split")

	// Both sides make progress.
	nodes[0].Do(func(ep *core.Endpoint) { _ = ep.Send("g", []byte("A")) })
	nodes[2].Do(func(ep *core.Endpoint) { _ = ep.Send("g", []byte("B")) })

	// Heal.
	for _, n := range nodes {
		n.Unblock()
	}
	eventually(t, 30*time.Second, func() bool {
		vA, okA := cols[0].lastView()
		vB, okB := cols[2].lastView()
		return okA && okB && vA.ID == vB.ID && len(vA.Members) == 4
	}, "views did not merge after the heal")
}

// TestUDPTotalOrder runs total-order delivery over real UDP: datagrams
// from different senders genuinely race, and every member must still
// deliver the identical sequence.
func TestUDPTotalOrder(t *testing.T) {
	nodes := make([]*Node, 3)
	cols := make([]*collector, 3)
	for i := 0; i < 3; i++ {
		cols[i] = &collector{}
		node, err := Listen(NodeConfig{
			PID:         ids.ProcessID(i),
			Listen:      "127.0.0.1:0",
			NameServers: []ids.ProcessID{0},
			Vsync:       vsync.Config{Ordering: vsync.OrderingTotal},
			Upcalls:     cols[i],
			Seed:        int64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	peers := make(map[ids.ProcessID]string, 3)
	for i, node := range nodes {
		peers[ids.ProcessID(i)] = node.Addr().String()
	}
	for _, node := range nodes {
		if err := node.SetPeers(peers); err != nil {
			t.Fatal(err)
		}
		if err := node.Start(); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, node := range nodes {
			node.Close()
		}
	})

	for i := 0; i < 3; i++ {
		nodes[i].Do(func(ep *core.Endpoint) { _ = ep.Join("ord") })
	}
	eventually(t, 20*time.Second, func() bool {
		v, ok := cols[0].lastView()
		return ok && len(v.Members) == 3
	}, "no convergence")

	// Concurrent bursts from all three nodes.
	const perSender = 20
	for r := 0; r < perSender; r++ {
		for i := 0; i < 3; i++ {
			i, r := i, r
			nodes[i].Do(func(ep *core.Endpoint) {
				_ = ep.Send("ord", []byte(fmt.Sprintf("m%d", r)))
			})
		}
	}
	eventually(t, 20*time.Second, func() bool {
		for _, c := range cols {
			if len(c.dataCopy()) < 3*perSender {
				return false
			}
		}
		return true
	}, "not all messages delivered")

	ref := cols[0].dataCopy()
	for i := 1; i < 3; i++ {
		got := cols[i].dataCopy()
		if len(got) != len(ref) {
			t.Fatalf("node %d delivered %d, node 0 delivered %d", i, len(got), len(ref))
		}
		for j := range ref {
			if got[j] != ref[j] {
				t.Fatalf("total order violated over UDP at %d: %q vs %q", j, got[j], ref[j])
			}
		}
	}
}

// TestDriverDoFromManyGoroutines hammers Do concurrently; the loop must
// serialize everything without races (run with -race).
func TestDriverDoFromManyGoroutines(t *testing.T) {
	d := NewDriver(1)
	d.Start()
	defer d.Close()
	counter := 0 // loop-confined
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				d.Do(func() { counter++ })
			}
		}()
	}
	wg.Wait()
	got := 0
	d.Call(func() { got = counter })
	if got != 8*200 {
		t.Fatalf("counter = %d, want %d", got, 8*200)
	}
}

// TestDriverTimerFiresInRealTime checks wall-clock timer semantics.
func TestDriverTimerFiresInRealTime(t *testing.T) {
	d := NewDriver(1)
	fired := make(chan time.Time, 1)
	start := time.Now()
	d.Do(func() {
		d.Sim().After(150*time.Millisecond, func() {
			fired <- time.Now()
		})
	})
	d.Start()
	defer d.Close()
	select {
	case at := <-fired:
		elapsed := at.Sub(start)
		if elapsed < 120*time.Millisecond {
			t.Errorf("timer fired too early: %v", elapsed)
		}
		if elapsed > 2*time.Second {
			t.Errorf("timer fired far too late: %v", elapsed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timer never fired")
	}
}

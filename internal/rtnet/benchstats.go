package rtnet

import (
	"net"
	"net/netip"
	"testing"
)

// BenchStat is one transport microbenchmark result, exported for
// inclusion in BENCH_plwg.json (cmd/lwgbench -json).
type BenchStat struct {
	Name        string
	NsPerOp     float64
	AllocsPerOp float64
}

// AddrKeyBenchStats measures the per-datagram receive-path work in
// front of envelope decoding for a representative 1 KiB single-chunk
// datagram, in two variants:
//
//	reassemble-addrkey-string: the historical key derivation —
//	  raddr.String() per datagram (one string allocation) feeding a
//	  string-keyed map, plus a payload copy out of the reassembler.
//	reassemble-addrkey: the current path — the comparable
//	  netip.AddrPort is the key (no allocation) and the single-chunk
//	  fast path returns an alias of the datagram payload (no copy).
//
// Recorded side by side in BENCH_plwg.json so the alloc reduction stays
// visible in the committed baseline.
func AddrKeyBenchStats() []BenchStat {
	payload := make([]byte, 1024)
	chunks := fragment(1, payload)
	raddr := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 54321}
	ap := raddr.AddrPort()
	mk := func(name string, fn func(b *testing.B)) BenchStat {
		r := testing.Benchmark(fn)
		return BenchStat{Name: name, NsPerOp: float64(r.NsPerOp()), AllocsPerOp: float64(r.AllocsPerOp())}
	}
	return []BenchStat{
		mk("reassemble-addrkey-string", func(b *testing.B) {
			re := newReassembler()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// Model the old hot path: derive a fresh string key from
				// the UDPAddr, then copy the payload out (the reassembler
				// no longer does either, so both are modelled here).
				key, err := netip.ParseAddrPort(raddr.String())
				if err != nil {
					b.Fatal(err)
				}
				out, err2 := re.add(key, chunks[0])
				if err2 != nil || out == nil {
					b.Fatal("reassembly failed")
				}
				buf := make([]byte, len(out))
				copy(buf, out)
			}
		}),
		mk("reassemble-addrkey", func(b *testing.B) {
			re := newReassembler()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, err := re.add(ap, chunks[0])
				if err != nil || out == nil {
					b.Fatal("reassembly failed")
				}
			}
		}),
	}
}

package rtnet

import (
	"bytes"
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"plwg/internal/core"
	"plwg/internal/ids"
)

// fragAddr builds a distinct reassembly key per fake sender: fragKey is
// now the remote netip.AddrPort, not a string.
func fragAddr(port uint16) netip.AddrPort {
	return netip.AddrPortFrom(netip.AddrFrom4([4]byte{127, 0, 0, 1}), port)
}

func TestFragmentRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, size := range []int{0, 1, 100, fragPayload, fragPayload + 1, 3*fragPayload + 17, 200_000} {
		data := make([]byte, size)
		r.Read(data)
		chunks := fragment(42, data)
		wantChunks := (size + fragPayload - 1) / fragPayload
		if wantChunks == 0 {
			wantChunks = 1
		}
		if len(chunks) != wantChunks {
			t.Fatalf("size %d: %d chunks, want %d", size, len(chunks), wantChunks)
		}
		re := newReassembler()
		var got []byte
		for i, c := range chunks {
			out, err := re.add(fragAddr(1), c)
			if err != nil {
				t.Fatalf("size %d chunk %d: %v", size, i, err)
			}
			if i < len(chunks)-1 && out != nil {
				t.Fatalf("size %d: completed early at chunk %d", size, i)
			}
			if i == len(chunks)-1 {
				got = out
			}
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("size %d: reassembly mismatch (%d vs %d bytes)", size, len(got), len(data))
		}
	}
}

func TestFragmentOutOfOrderAndDuplicates(t *testing.T) {
	data := make([]byte, 5*fragPayload/2)
	rand.New(rand.NewSource(2)).Read(data)
	chunks := fragment(7, data)
	re := newReassembler()
	// Deliver in reverse with duplicates.
	var got []byte
	for i := len(chunks) - 1; i >= 0; i-- {
		if out, _ := re.add(fragAddr(1), chunks[i]); out != nil {
			got = out
		}
		if out, _ := re.add(fragAddr(1), chunks[i]); out != nil {
			got = out
		}
	}
	if !bytes.Equal(got, data) {
		t.Fatal("out-of-order reassembly failed")
	}
}

// TestFragmentReassemblyAdversity replays one fragmented message through
// the delivery patterns a lossy, reordering, duplicating network can
// produce and checks reassembly completes exactly when every chunk was
// seen at least once.
func TestFragmentReassemblyAdversity(t *testing.T) {
	data := make([]byte, 4*fragPayload+123)
	rand.New(rand.NewSource(3)).Read(data)
	chunks := fragment(9, data)
	n := len(chunks) // 5

	seq := func(idx ...int) [][]byte {
		out := make([][]byte, 0, len(idx))
		for _, i := range idx {
			out = append(out, chunks[i])
		}
		return out
	}
	shuffled := func(seed int64) [][]byte {
		idx := rand.New(rand.NewSource(seed)).Perm(n)
		return seq(idx...)
	}

	cases := []struct {
		name     string
		deliver  [][]byte
		complete bool
	}{
		{"in order", seq(0, 1, 2, 3, 4), true},
		{"reversed", seq(4, 3, 2, 1, 0), true},
		{"random order", shuffled(11), true},
		{"every chunk duplicated", seq(0, 0, 1, 1, 2, 2, 3, 3, 4, 4), true},
		{"duplicates interleaved out of order", seq(2, 4, 2, 0, 1, 4, 3), true},
		{"loss of one chunk", seq(0, 1, 3, 4), false},
		{"loss of all but one", seq(2), false},
		{"loss then full retransmit", seq(0, 1, 3, 4, 0, 1, 2, 3, 4), true},
		{"stale duplicates after completion", append(seq(0, 1, 2, 3, 4), seq(1, 3)...), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			re := newReassembler()
			var got []byte
			for _, d := range tc.deliver {
				if out, err := re.add(fragAddr(1), d); err != nil {
					t.Fatalf("add: %v", err)
				} else if out != nil {
					got = out
				}
			}
			if !tc.complete {
				if got != nil {
					t.Fatal("reassembly completed despite loss")
				}
				return
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("reassembly mismatch (%d vs %d bytes)", len(got), len(data))
			}
		})
	}
}

func TestFragmentInterleavedSenders(t *testing.T) {
	a := bytes.Repeat([]byte{0xAA}, 2*fragPayload)
	b := bytes.Repeat([]byte{0xBB}, 2*fragPayload)
	ca := fragment(1, a)
	cb := fragment(1, b) // same msgID, different sender
	re := newReassembler()
	var gotA, gotB []byte
	for i := range ca {
		if out, _ := re.add(fragAddr(100), ca[i]); out != nil {
			gotA = out
		}
		if out, _ := re.add(fragAddr(200), cb[i]); out != nil {
			gotB = out
		}
	}
	if !bytes.Equal(gotA, a) || !bytes.Equal(gotB, b) {
		t.Fatal("interleaved senders corrupted reassembly")
	}
}

func TestFragmentRejectsGarbage(t *testing.T) {
	re := newReassembler()
	if _, err := re.add(fragAddr(1), []byte{1, 2, 3}); err == nil {
		t.Error("short datagram accepted")
	}
	bad := make([]byte, fragHeader+4)
	bad[0] = fragMagic[0]
	bad[1] = fragMagic[1]
	// idx >= total
	bad[10], bad[11] = 0, 5
	bad[12], bad[13] = 0, 2
	if _, err := re.add(fragAddr(1), bad); err == nil {
		t.Error("bad header accepted")
	}
}

// TestUDPLargeStateTransfer pushes a state snapshot bigger than a UDP
// datagram through the real transport: fragmentation must carry it.
func TestUDPLargeStateTransfer(t *testing.T) {
	nodes, cols := startCluster(t, 2, []ids.ProcessID{0})
	big := bytes.Repeat([]byte("whiteboard-stroke;"), 8_000) // ~144 KB

	nodes[0].Do(func(ep *core.Endpoint) { _ = ep.Join("doc") })
	time.Sleep(time.Second)
	nodes[1].Do(func(ep *core.Endpoint) { _ = ep.Join("doc") })
	eventually(t, 15*time.Second, func() bool {
		v, ok := cols[0].lastView()
		return ok && len(v.Members) == 2
	}, "no convergence")

	nodes[0].Do(func(ep *core.Endpoint) {
		if err := ep.Send("doc", big); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	eventually(t, 15*time.Second, func() bool {
		for _, d := range cols[1].dataCopy() {
			if len(d) > len(big) { // "p0:" prefix + payload
				return true
			}
		}
		return false
	}, "large payload not delivered over UDP")
	for _, d := range cols[1].dataCopy() {
		if len(d) > len(big) && d[3:] != string(big) {
			t.Fatal("large payload corrupted")
		}
	}
}

package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Record is one machine-readable benchmark datum: a (experiment, mode,
// n, metric) cell of the Figure 2 sweeps, or a codec microbenchmark
// number. BENCH_plwg.json is a flat list of these so downstream tooling
// can diff perf trajectories across PRs without parsing tables.
type Record struct {
	Experiment string  `json:"experiment"`
	Mode       string  `json:"mode"`
	N          int     `json:"n,omitempty"`
	Metric     string  `json:"metric"`
	Value      float64 `json:"value"`
}

// Report is the top-level BENCH_plwg.json document.
type Report struct {
	GeneratedBy string   `json:"generated_by"`
	Seed        int64    `json:"seed"`
	MeasureSecs float64  `json:"measure_secs"`
	Records     []Record `json:"records"`
}

// Figure2Records runs the three Figure 2 experiments over the sweep and
// collects every metric as a flat record list.
func Figure2Records(w io.Writer, ns []int, seed int64, d Durations) []Record {
	var recs []Record
	for _, n := range ns {
		for _, m := range Modes {
			fmt.Fprintf(w, "  fig2 n=%d %s...\n", n, m)
			if r := RunLatency(m, n, seed, d); r.Converged {
				recs = append(recs,
					Record{"fig2-latency", m.String(), n, "mean_ms", r.MeanMs},
					Record{"fig2-latency", m.String(), n, "p99_ms", r.P99Ms})
			}
			if r := RunThroughput(m, n, seed, d); r.Converged {
				recs = append(recs,
					Record{"fig2-throughput", m.String(), n, "total_kbps", r.TotalKBps},
					Record{"fig2-throughput", m.String(), n, "msgs_per_sec", r.MsgsPerSec})
			}
			if r := RunRecovery(m, n, seed, d); r.Converged {
				recs = append(recs,
					Record{"fig2-recovery", m.String(), n, "max_ms", r.MaxMs},
					Record{"fig2-recovery", m.String(), n, "unrelated_probe_max_ms", r.UnrelatedProbeMaxMs})
			}
		}
	}
	return recs
}

// WriteReport writes the report as indented JSON to path.
func WriteReport(path string, rep Report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

package bench

import (
	"strings"
	"testing"
	"time"
)

func scaleTestDurations() Durations {
	return Durations{
		SetupMax:    30 * time.Second,
		Measure:     3 * time.Second,
		RecoveryMax: 30 * time.Second,
	}
}

func TestRunScaleBothProtocolsConverge(t *testing.T) {
	d := scaleTestDurations()
	full := RunScale(true, 64, 1, d)
	delta := RunScale(false, 64, 1, d)
	if !full.Converged {
		t.Fatalf("full-push did not converge: %+v", full)
	}
	if !delta.Converged {
		t.Fatalf("digest/delta did not converge: %+v", delta)
	}
	if full.SyncBytesPerRound <= 0 || delta.SyncBytesPerRound <= 0 {
		t.Fatalf("missing traffic accounting: full %+v delta %+v", full, delta)
	}
	// The acceptance bar is >= 10x at 1024 groups; even at 64 the digest
	// protocol must clear it comfortably in the quiescent steady state.
	if ratio := full.SyncBytesPerRound / delta.SyncBytesPerRound; ratio < 10 {
		t.Fatalf("steady-state reduction %.1fx < 10x (full %.0f B/round, delta %.1f B/round)",
			ratio, full.SyncBytesPerRound, delta.SyncBytesPerRound)
	}
	// Post-heal convergence must not regress materially vs the baseline.
	if delta.HealMs > 2*full.HealMs+1000 {
		t.Fatalf("digest heal %.0fms much worse than full-push %.0fms", delta.HealMs, full.HealMs)
	}
}

func TestRunScaleDeterministic(t *testing.T) {
	d := scaleTestDurations()
	a := RunScale(false, 48, 7, d)
	b := RunScale(false, 48, 7, d)
	// Wall-clock differs run to run; the modeled metrics must not.
	a.SteadyWallMs, b.SteadyWallMs = 0, 0
	if a != b {
		t.Fatalf("fig-scale not deterministic:\n a: %+v\n b: %+v", a, b)
	}
}

func TestFigScaleRenders(t *testing.T) {
	var b strings.Builder
	FigScale(&b, []int{16}, 1, scaleTestDurations())
	out := b.String()
	if !strings.Contains(out, "fig-scale") || !strings.Contains(out, "16") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestFigScaleRecords(t *testing.T) {
	var b strings.Builder
	recs := FigScaleRecords(&b, []int{16}, 1, scaleTestDurations())
	if len(recs) == 0 {
		t.Fatal("no records")
	}
	seen := make(map[string]bool)
	for _, r := range recs {
		if r.Experiment != "fig-scale" || r.N != 16 {
			t.Fatalf("bad record %+v", r)
		}
		seen[r.Mode+"/"+r.Metric] = true
	}
	for _, want := range []string{
		"full-push/sync_bytes_per_round",
		"digest-delta/sync_bytes_per_round",
		"digest-delta/heal_ms",
	} {
		if !seen[want] {
			t.Fatalf("missing record %s in %v", want, recs)
		}
	}
}

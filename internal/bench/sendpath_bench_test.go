package bench

import (
	"testing"
	"time"
)

// BenchmarkSendPath drives the Figure 2 closed-loop throughput workload
// through the dynamic configuration with LWG message packing on and
// off. The msgs/s metric is the A/B signal; allocs are reported because
// the simulated hot path should not regress allocation-wise either.
func BenchmarkSendPath(b *testing.B) {
	d := Durations{SetupMax: 120 * time.Second, Measure: 2 * time.Second}
	for _, cfg := range []struct {
		name            string
		disableBatching bool
	}{
		{"batched", false},
		{"unbatched", true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			var last ThroughputResult
			for i := 0; i < b.N; i++ {
				last = RunThroughputWith(DynamicLWG, 8, int64(i+1), d,
					Options{DisableBatching: cfg.disableBatching})
				if !last.Converged {
					b.Fatal("run did not converge")
				}
			}
			b.ReportMetric(last.MsgsPerSec, "msgs/s")
			b.ReportMetric(last.TotalKBps, "KB/s")
		})
	}
}

package bench

import (
	"testing"
	"time"

	"plwg/internal/metrics"
	"plwg/internal/trace"
)

// BenchmarkSendPath drives the Figure 2 closed-loop throughput workload
// through the dynamic configuration with LWG message packing on and
// off, and once more with the full observability stack (registry +
// ring tracer) enabled. The msgs/s metric is the A/B signal; allocs are
// reported because the simulated hot path should not regress
// allocation-wise either — compare "batched" against "instrumented" for
// the observability overhead.
func BenchmarkSendPath(b *testing.B) {
	d := Durations{SetupMax: 120 * time.Second, Measure: 2 * time.Second}
	for _, cfg := range []struct {
		name            string
		disableBatching bool
		instrument      bool
	}{
		{"batched", false, false},
		{"unbatched", true, false},
		{"instrumented", false, true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			var last ThroughputResult
			for i := 0; i < b.N; i++ {
				opts := Options{DisableBatching: cfg.disableBatching}
				if cfg.instrument {
					opts.Metrics = metrics.NewRegistry()
					opts.Tracer = trace.NewRing(trace.DefaultRingCapacity)
				}
				last = RunThroughputWith(DynamicLWG, 8, int64(i+1), d, opts)
				if !last.Converged {
					b.Fatal("run did not converge")
				}
			}
			b.ReportMetric(last.MsgsPerSec, "msgs/s")
			b.ReportMetric(last.TotalKBps, "KB/s")
		})
	}
}

// TestInstrumentationPreservesResults pins the observation-only
// contract: the registry and tracer must not perturb the protocol. Two
// identical runs — one bare, one fully instrumented — must produce
// byte-identical throughput results on the deterministic simulator.
func TestInstrumentationPreservesResults(t *testing.T) {
	d := Durations{SetupMax: 120 * time.Second, Measure: time.Second}
	plain := RunThroughputWith(DynamicLWG, 4, 1, d, Options{})
	reg := metrics.NewRegistry()
	instr := RunThroughputWith(DynamicLWG, 4, 1, d, Options{
		Metrics: reg,
		Tracer:  trace.NewRing(trace.DefaultRingCapacity),
	})
	if !plain.Converged || !instr.Converged {
		t.Fatal("runs did not converge")
	}
	if plain != instr {
		t.Fatalf("instrumentation changed the run:\nplain %+v\ninstr %+v", plain, instr)
	}
	// And the run must actually have been observed.
	totals := reg.Totals()
	for _, name := range []string{"lwg_sends_total", "lwg_deliveries_total", "hwg_sends_total"} {
		if totals[name] == 0 {
			t.Errorf("instrumented run recorded no %s", name)
		}
	}
}

package bench

import (
	"fmt"
	"io"
	"time"

	"plwg/internal/ids"
	"plwg/internal/metrics"
	"plwg/internal/sim"
	"plwg/internal/workload"
)

// Durations controls experiment length; tests shrink them, the CLI uses
// the defaults.
type Durations struct {
	// SetupMax bounds the convergence wait.
	SetupMax time.Duration
	// Measure is the measurement window for latency/throughput.
	Measure time.Duration
	// RecoveryMax bounds the crash-recovery wait.
	RecoveryMax time.Duration
}

// DefaultDurations returns the durations used by cmd/lwgbench.
func DefaultDurations() Durations {
	return Durations{
		SetupMax:    120 * time.Second,
		Measure:     5 * time.Second,
		RecoveryMax: 30 * time.Second,
	}
}

// Workload parameters of the Figure 2 experiments.
const (
	// MsgSize is the data-transfer payload (bytes).
	MsgSize = 1024
	// PerSetRate is the aggregate offered load per group set
	// (messages/s) in the latency experiment. With both sets active the
	// data alone fills ~54% of the 10 Mbps bus; stability and liveness
	// overhead push the busiest configuration well past 80%, matching
	// the paper's "loaded Ethernet" where the configurations separate.
	PerSetRate = 300.0
	// RecoveryBgRate is the per-set background load during the recovery
	// experiment — moderate, so even the most overhead-heavy
	// configuration stays below bus saturation and the measurement
	// captures recovery, not congestive collapse.
	RecoveryBgRate = 150.0
)

// LatencyResult is one cell of the Figure 2 latency graph.
type LatencyResult struct {
	Converged bool
	MeanMs    float64
	P99Ms     float64
	Samples   int
	HWGs      int
}

// RunLatency measures mean one-way delivery latency under the fixed
// offered load (Figure 2, "latency").
func RunLatency(mode Mode, n int, seed int64, d Durations) LatencyResult {
	return RunLatencyWith(mode, n, seed, d, Options{})
}

// RunLatencyWith is RunLatency with harness overrides (ablations).
func RunLatencyWith(mode Mode, n int, seed int64, d Durations, opts Options) LatencyResult {
	h := NewHarnessWith(mode, workload.Fig2Topology(n), seed, opts)
	if !h.Setup(d.SetupMax) {
		return LatencyResult{}
	}
	// Bounded reservoir: long measurement windows record an unbounded
	// number of deliveries, but memory stays at the reservoir capacity
	// (count/mean/min/max stay exact; p99 is estimated from the sample).
	hist := metrics.NewReservoir(8192, seed)
	h.OnDeliver(func(_ int, member, src ids.ProcessID, id uint64, _ int) {
		if member == src {
			return
		}
		if t0, ok := h.SentAt(id); ok {
			hist.Add(h.S.Now().Sub(t0))
		}
	})
	// Each group sends at PerSetRate/n msg/s (Poisson) so the per-set
	// aggregate offered load is constant across n.
	interval := time.Duration(float64(n) / PerSetRate * float64(time.Second))
	for gi, g := range h.Topo.Groups {
		gi, g := gi, g
		h.Poisson(interval, func() { h.Send(gi, g.Sender(), MsgSize) })
	}
	h.S.RunFor(d.Measure)
	h.StopTraffic()
	h.S.RunFor(200 * time.Millisecond) // drain in-flight deliveries
	return LatencyResult{
		Converged: true,
		MeanMs:    float64(hist.Mean()) / float64(time.Millisecond),
		P99Ms:     float64(hist.Percentile(99)) / float64(time.Millisecond),
		Samples:   int(hist.Count()),
		HWGs:      h.HWGCount(),
	}
}

// ThroughputResult is one cell of the Figure 2 throughput graph.
type ThroughputResult struct {
	Converged bool
	// TotalKBps is the aggregate payload delivered to remote receivers
	// per second.
	TotalKBps float64
	// MsgsPerSec is the aggregate send completion rate.
	MsgsPerSec float64
}

// RunThroughput measures saturation throughput with one closed-loop
// sender per group (a sender posts the next message when its previous
// one completes its round trip through the shared bus).
func RunThroughput(mode Mode, n int, seed int64, d Durations) ThroughputResult {
	return RunThroughputWith(mode, n, seed, d, Options{})
}

// RunThroughputWith is RunThroughput with harness overrides (ablations,
// e.g. DisableBatching for the batched-vs-unbatched A/B).
func RunThroughputWith(mode Mode, n int, seed int64, d Durations, opts Options) ThroughputResult {
	h := NewHarnessWith(mode, workload.Fig2Topology(n), seed, opts)
	if !h.Setup(d.SetupMax) {
		return ThroughputResult{}
	}
	outstanding := make(map[int]uint64, len(h.Topo.Groups))
	var bytesDelivered, completions int64
	var measuring bool
	h.OnDeliver(func(gi int, member, src ids.ProcessID, id uint64, size int) {
		g := h.Topo.Groups[gi]
		if member != src {
			if measuring {
				bytesDelivered += int64(size)
			}
			return
		}
		// Self-delivery closes the loop: post the next message.
		if src == g.Sender() && outstanding[gi] == id {
			if measuring {
				completions++
			}
			outstanding[gi] = h.Send(gi, g.Sender(), MsgSize)
		}
	})
	for gi, g := range h.Topo.Groups {
		outstanding[gi] = h.Send(gi, g.Sender(), MsgSize)
	}
	// Warm up, then measure.
	h.S.RunFor(500 * time.Millisecond)
	measuring = true
	h.S.RunFor(d.Measure)
	measuring = false
	secs := d.Measure.Seconds()
	return ThroughputResult{
		Converged:  true,
		TotalKBps:  float64(bytesDelivered) / 1024 / secs,
		MsgsPerSec: float64(completions) / secs,
	}
}

// RecoveryResult is one cell of the Figure 2 recovery graph.
type RecoveryResult struct {
	Converged bool
	// MaxMs is the time until the last affected group reinstalled a view
	// excluding the crashed member.
	MaxMs float64
	// MeanMs averages the per-group recovery times.
	MeanMs float64
	// UnrelatedProbeMaxMs is the worst delivery latency observed by a
	// group that did NOT contain the crashed process during the
	// recovery — the paper's interference effect: a static mapping
	// stops unrelated groups while the shared HWG flushes.
	UnrelatedProbeMaxMs float64
}

// RunRecovery crashes one member of set A and measures how long every
// affected group needs to reinstall its view (Figure 2, "recovery
// time"), while probing an unaffected set-B group for disruption.
func RunRecovery(mode Mode, n int, seed int64, d Durations) RecoveryResult {
	h := NewHarness(mode, workload.Fig2Topology(n), seed)
	if !h.Setup(d.SetupMax) {
		return RecoveryResult{}
	}
	const victim = ids.ProcessID(3) // a member of every set-A group

	// Probe traffic on the first set-B group (unaffected by the crash).
	var probeMax time.Duration
	probeGi := -1
	for gi, g := range h.Topo.Groups {
		if g.Set == 1 {
			probeGi = gi
			break
		}
	}
	h.OnDeliver(func(gi int, member, src ids.ProcessID, id uint64, _ int) {
		if gi != probeGi || member == src {
			return
		}
		if t0, ok := h.SentAt(id); ok {
			if lat := h.S.Now().Sub(t0); lat > probeMax {
				probeMax = lat
			}
		}
	})
	if probeGi >= 0 {
		// Fine-grained probes: the disruption window (unrelated groups
		// stopped while the shared HWG flushes) lasts only a few
		// milliseconds in the simulator, so probe densely.
		g := h.Topo.Groups[probeGi]
		h.Every(5*time.Millisecond, func() { h.Send(probeGi, g.Sender(), 64) })
	}

	// Background load (as in the paper's loaded network): every group
	// keeps sending, so the n concurrent recovery protocols of the
	// no-LWG configuration contend for the bus and the flush has real
	// unstable traffic to reconcile.
	interval := time.Duration(float64(n) / RecoveryBgRate * float64(time.Second))
	for gi, g := range h.Topo.Groups {
		if gi == probeGi {
			continue
		}
		gi, g := gi, g
		h.Poisson(interval, func() {
			if !h.NW.Crashed(g.Sender()) {
				h.Send(gi, g.Sender(), MsgSize)
			}
		})
	}
	h.S.RunFor(300 * time.Millisecond) // let the load reach steady state

	crashAt := h.S.Now()
	h.NW.Crash(victim)

	affected := make(map[int]ids.Members) // group index -> surviving members
	for gi, g := range h.Topo.Groups {
		if g.Members.Contains(victim) {
			affected[gi] = g.Members.Without(victim)
		}
	}
	recoveredAt := make(map[int]sim.Time)
	deadline := crashAt.Add(d.RecoveryMax)
	for len(recoveredAt) < len(affected) && h.S.Now() < deadline {
		h.S.RunFor(5 * time.Millisecond)
		for gi, want := range affected {
			if _, done := recoveredAt[gi]; done {
				continue
			}
			ok := true
			for _, p := range want {
				v, has := h.GroupView(gi, p)
				if !has || !v.Members.Equal(want) {
					ok = false
					break
				}
			}
			if ok {
				recoveredAt[gi] = h.S.Now()
			}
		}
	}
	h.StopTraffic()
	// Drain probe messages that were buffered during the flush window;
	// their (large) delivery latencies are the interference signal.
	h.S.RunFor(300 * time.Millisecond)
	if len(recoveredAt) < len(affected) {
		return RecoveryResult{}
	}
	var maxD, sumD time.Duration
	for _, at := range recoveredAt {
		dur := at.Sub(crashAt)
		sumD += dur
		if dur > maxD {
			maxD = dur
		}
	}
	return RecoveryResult{
		Converged:           true,
		MaxMs:               float64(maxD) / float64(time.Millisecond),
		MeanMs:              float64(sumD) / float64(len(recoveredAt)) / float64(time.Millisecond),
		UnrelatedProbeMaxMs: float64(probeMax) / float64(time.Millisecond),
	}
}

// DefaultNs is the paper-style sweep of groups-per-set.
var DefaultNs = []int{1, 2, 4, 8, 16, 32}

// Figure2Latency renders the latency series for every configuration.
func Figure2Latency(w io.Writer, ns []int, seed int64, d Durations) {
	fmt.Fprintf(w, "Figure 2 — data transfer latency (mean one-way ms; payload %dB, %v msg/s per set)\n",
		MsgSize, PerSetRate)
	fmt.Fprintf(w, "%6s %12s %12s %12s\n", "n", "no-lwg", "static-lwg", "dynamic-lwg")
	for _, n := range ns {
		fmt.Fprintf(w, "%6d", n)
		for _, m := range Modes {
			r := RunLatency(m, n, seed, d)
			if !r.Converged {
				fmt.Fprintf(w, " %12s", "n/a")
				continue
			}
			fmt.Fprintf(w, " %12.2f", r.MeanMs)
		}
		fmt.Fprintln(w)
	}
}

// Figure2Throughput renders the throughput series for every
// configuration.
func Figure2Throughput(w io.Writer, ns []int, seed int64, d Durations) {
	fmt.Fprintf(w, "Figure 2 — throughput (aggregate delivered payload, KB/s; closed-loop senders)\n")
	fmt.Fprintf(w, "%6s %12s %12s %12s\n", "n", "no-lwg", "static-lwg", "dynamic-lwg")
	for _, n := range ns {
		fmt.Fprintf(w, "%6d", n)
		for _, m := range Modes {
			r := RunThroughput(m, n, seed, d)
			if !r.Converged {
				fmt.Fprintf(w, " %12s", "n/a")
				continue
			}
			fmt.Fprintf(w, " %12.0f", r.TotalKBps)
		}
		fmt.Fprintln(w)
	}
}

// Figure2Recovery renders the recovery-time series for every
// configuration, plus the unrelated-group disruption column pair.
func Figure2Recovery(w io.Writer, ns []int, seed int64, d Durations) {
	fmt.Fprintf(w, "Figure 2 — recovery time after a member crash (ms until last affected group reinstalls)\n")
	fmt.Fprintf(w, "%6s %12s %12s %12s   | unrelated-group probe max (ms)\n",
		"n", "no-lwg", "static-lwg", "dynamic-lwg")
	for _, n := range ns {
		fmt.Fprintf(w, "%6d", n)
		var probes [3]float64
		for i, m := range Modes {
			r := RunRecovery(m, n, seed, d)
			if !r.Converged {
				fmt.Fprintf(w, " %12s", "n/a")
				continue
			}
			fmt.Fprintf(w, " %12.0f", r.MaxMs)
			probes[i] = r.UnrelatedProbeMaxMs
		}
		fmt.Fprintf(w, "   | %8.1f %8.1f %8.1f\n", probes[0], probes[1], probes[2])
	}
}

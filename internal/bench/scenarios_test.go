package bench

import (
	"strings"
	"testing"

	"plwg/internal/ids"
)

func TestTable3InconsistentMappings(t *testing.T) {
	var b strings.Builder
	c := Table3Scenario(&b, 1)
	out := b.String()
	// While partitioned, each side's server must have its own mappings.
	if !strings.Contains(out, "databases while partitioned") {
		t.Fatalf("missing partition stage:\n%s", out)
	}
	// After the heal and one reconciliation round, server 0 must hold
	// two live mappings per LWG (Table 3's merged database).
	for _, lwg := range []ids.LWGID{"a", "b"} {
		live := c.servers[0].DB().Live(lwg)
		if len(live) != 2 {
			t.Errorf("merged db: LWG %s has %d live mappings, want 2\n%s",
				lwg, len(live), c.servers[0].DB().Dump())
		}
		if !c.servers[0].DB().Conflict(lwg) {
			t.Errorf("merged db: LWG %s not flagged as conflicting", lwg)
		}
	}
}

func TestTable4MergeEvolution(t *testing.T) {
	var b strings.Builder
	Table4Scenario(&b, 1)
	out := b.String()
	if !strings.Contains(out, "Converged: one live mapping per LWG") {
		t.Fatalf("Table 4 evolution did not converge:\n%s", out)
	}
	// The reconciliation trace must show the Section 6 machinery.
	for _, want := range []string{"multiple-mappings", "merge-step"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
}

package bench

import (
	"encoding/binary"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"plwg/internal/core"
	"plwg/internal/ids"
	"plwg/internal/metrics"
	"plwg/internal/rtnet"
)

// rt-throughput: the real-network data-plane experiment. Unlike the
// Figure 2 sweeps (virtual time on the simulated bus), this one runs a
// live loopback UDP cluster under wall-clock time and measures how many
// messages per second the rtnet stack moves end to end — the number
// that is bounded by syscalls and loop occupancy, not protocol cost.
// Sweeping GOMAXPROCS separates protocol cost (unchanged at any core
// count) from data-plane parallelism (the off-loop codec pipeline and
// writer goroutines only help when there are cores to run them).

// RTOptions configures one rt-throughput run.
type RTOptions struct {
	// Nodes is the cluster size (default 4). Every node joins one group
	// and every node is a closed-loop sender.
	Nodes int
	// Window is the target number of outstanding messages per sender
	// (default 8). Senders are ack-clocked: a remote delivery earns one
	// credit and a send costs (Nodes-1) credits, so the aggregate send
	// rate locks onto the rate the network actually drains instead of
	// the rate the local loopback can absorb.
	Window int
	// Payload is the message payload size in bytes (default 1 KiB,
	// matching the Figure 2 workload).
	Payload int
	// Inline runs the historical single-goroutine data plane (decode on
	// the reader, one Driver.Do per packet, synchronous WriteToUDP on
	// the loop) as the A/B baseline for the parallel pipeline.
	Inline bool
	// TraceSampleEvery forwards to rtnet.NodeConfig.TraceSampleEvery:
	// 0 keeps the default wire trace-context sampling (every node here
	// carries a metrics registry, so stamping is on), negative disables
	// trace contexts entirely — the A/B baseline for the overhead gate.
	TraceSampleEvery int
}

func (o RTOptions) withDefaults() RTOptions {
	if o.Nodes <= 0 {
		o.Nodes = 4
	}
	if o.Window <= 0 {
		o.Window = 8
	}
	if o.Payload < 16 {
		o.Payload = MsgSize
	}
	return o
}

// RTResult is one cell of the rt-throughput experiment.
type RTResult struct {
	Converged bool
	// Procs is the GOMAXPROCS the run executed under.
	Procs int
	// MsgsPerSec is the unique-message delivery rate: aggregate remote
	// deliveries per second divided by (Nodes-1) — how many messages per
	// second the data plane actually carries to every remote member.
	MsgsPerSec float64
	// DeliveriesPerSec is the aggregate remote-delivery rate across all
	// receivers (MsgsPerSec × (Nodes-1)).
	DeliveriesPerSec float64
	// P99Ms is the p99 send→remote-delivery latency.
	P99Ms float64
	// RingOverflow is the rtnet_send_ring_overflow_total counter at the
	// end of the run (0 on the inline path, which has no ring).
	RingOverflow int64
}

// rtCollector receives one node's upcalls on its driver loop.
type rtCollector struct {
	pid ids.ProcessID

	mu   sync.Mutex
	view ids.View
	ok   bool

	measuring  *atomic.Bool
	deliveries *atomic.Int64
	lat        *metrics.Reservoir
	latMu      *sync.Mutex
	// credits is the node's ack clock: each remote delivery adds one,
	// each send consumes (Nodes-1). kick nudges the feeder.
	credits *atomic.Int64
	kick    chan struct{}
}

func (c *rtCollector) View(_ ids.LWGID, v ids.View) {
	c.mu.Lock()
	c.view, c.ok = v.Clone(), true
	c.mu.Unlock()
}

func (c *rtCollector) Data(_ ids.LWGID, src ids.ProcessID, data []byte) {
	if len(data) < 8 || src == c.pid {
		return
	}
	// A remote delivery earns one send credit (the ack clock).
	c.credits.Add(1)
	select {
	case c.kick <- struct{}{}:
	default:
	}
	if !c.measuring.Load() {
		return
	}
	c.deliveries.Add(1)
	sent := int64(binary.BigEndian.Uint64(data))
	if d := time.Duration(time.Now().UnixNano() - sent); d > 0 {
		c.latMu.Lock()
		c.lat.Add(d)
		c.latMu.Unlock()
	}
}

func (c *rtCollector) converged(want ids.Members) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ok && c.view.Members.Equal(want)
}

// RunRTThroughput runs the closed-loop workload on a live loopback UDP
// cluster under the given GOMAXPROCS and measures aggregate throughput
// and tail latency. The GOMAXPROCS override is process-wide for the
// duration of the run and restored afterwards.
func RunRTThroughput(procs int, measure time.Duration, seed int64, o RTOptions) (RTResult, error) {
	o = o.withDefaults()
	if procs > 0 {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
	} else {
		procs = runtime.GOMAXPROCS(0)
	}
	res := RTResult{Procs: procs}

	var (
		measuring  atomic.Bool
		deliveries atomic.Int64
		latMu      sync.Mutex
		lat        = metrics.NewReservoir(8192, seed)
		reg        = metrics.NewRegistry()
	)

	nodes := make([]*rtnet.Node, o.Nodes)
	cols := make([]*rtCollector, o.Nodes)
	closeAll := func() {
		for _, n := range nodes {
			if n != nil {
				n.Close()
			}
		}
	}
	for i := 0; i < o.Nodes; i++ {
		cols[i] = &rtCollector{
			pid:        ids.ProcessID(i),
			measuring:  &measuring,
			deliveries: &deliveries,
			lat:        lat,
			latMu:      &latMu,
			credits:    new(atomic.Int64),
			kick:       make(chan struct{}, 1),
		}
		n, err := rtnet.Listen(rtnet.NodeConfig{
			PID:              ids.ProcessID(i),
			Listen:           "127.0.0.1:0",
			NameServers:      []ids.ProcessID{0},
			Upcalls:          cols[i],
			Metrics:          reg,
			Seed:             seed*1009 + int64(i),
			Pipeline:         rtnet.PipelineConfig{Inline: o.Inline},
			TraceSampleEvery: o.TraceSampleEvery,
		})
		if err != nil {
			closeAll()
			return res, fmt.Errorf("rt-throughput node %d: %w", i, err)
		}
		nodes[i] = n
	}
	defer closeAll()
	peers := make(map[ids.ProcessID]string, o.Nodes)
	for i, n := range nodes {
		peers[ids.ProcessID(i)] = n.Addr().String()
	}
	for i, n := range nodes {
		if err := n.SetPeers(peers); err != nil {
			return res, err
		}
		if err := n.Start(); err != nil {
			return res, fmt.Errorf("rt-throughput node %d start: %w", i, err)
		}
	}

	const group ids.LWGID = "rt"
	for _, n := range nodes {
		n.Do(func(ep *core.Endpoint) { _ = ep.Join(group) })
	}
	var all []ids.ProcessID
	for i := 0; i < o.Nodes; i++ {
		all = append(all, ids.ProcessID(i))
	}
	want := ids.NewMembers(all...)
	deadline := time.Now().Add(30 * time.Second)
	for {
		n := 0
		for _, c := range cols {
			if c.converged(want) {
				n++
			}
		}
		if n == o.Nodes {
			break
		}
		if time.Now().After(deadline) {
			return res, nil // not converged
		}
		time.Sleep(25 * time.Millisecond)
	}

	// Feeders: every node is an ack-clocked sender. A send costs
	// (Nodes-1) credits and every remote delivery earns one, so the
	// send rate equilibrates to what the data plane actually delivers;
	// the initial grant puts Window messages in flight per sender. The
	// send timestamp rides in the payload so receivers compute latency
	// without a shared map.
	cost := int64(o.Nodes - 1)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i, n := range nodes {
		i, n := i, n
		cols[i].credits.Store(int64(o.Window) * cost)
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := cols[i]
			payload := make([]byte, o.Payload)
			for {
				for c.credits.Load() >= cost {
					c.credits.Add(-cost)
					n.Do(func(ep *core.Endpoint) {
						binary.BigEndian.PutUint64(payload, uint64(time.Now().UnixNano()))
						_ = ep.Send(group, payload)
					})
				}
				select {
				case <-stop:
					return
				case <-c.kick:
				}
			}
		}()
	}

	time.Sleep(500 * time.Millisecond) // warm up
	measuring.Store(true)
	time.Sleep(measure)
	measuring.Store(false)
	close(stop)
	wg.Wait()

	secs := measure.Seconds()
	latMu.Lock()
	p99 := lat.Percentile(99)
	latMu.Unlock()
	res.Converged = true
	res.DeliveriesPerSec = float64(deliveries.Load()) / secs
	res.MsgsPerSec = res.DeliveriesPerSec / float64(o.Nodes-1)
	res.P99Ms = float64(p99) / float64(time.Millisecond)
	res.RingOverflow = reg.Totals()["rtnet_send_ring_overflow_total"]
	return res, nil
}

// RTThroughput prints the GOMAXPROCS sweep for both data planes.
func RTThroughput(w io.Writer, procsList []int, measure time.Duration, seed int64) {
	fmt.Fprintln(w, "== rt-throughput: real-UDP data plane, closed-loop senders ==")
	fmt.Fprintf(w, "%-10s %-9s %12s %14s %10s %10s\n",
		"plane", "procs", "msgs/s", "deliveries/s", "p99 ms", "overflow")
	for _, inline := range []bool{true, false} {
		name := "pipeline"
		if inline {
			name = "inline"
		}
		for _, p := range procsList {
			r, err := RunRTThroughput(p, measure, seed, RTOptions{Inline: inline})
			if err != nil || !r.Converged {
				fmt.Fprintf(w, "%-10s %-9d (did not converge: %v)\n", name, p, err)
				continue
			}
			fmt.Fprintf(w, "%-10s %-9d %12.0f %14.0f %10.2f %10d\n",
				name, r.Procs, r.MsgsPerSec, r.DeliveriesPerSec, r.P99Ms, r.RingOverflow)
		}
	}
}

// RTAddrKeyRecords runs the transport receive-path microbenchmarks and
// returns their records (the alloc-reduction trajectory of the
// reassembly key path).
func RTAddrKeyRecords(w io.Writer) []Record {
	fmt.Fprintln(w, "  rtnet receive-path microbenchmarks...")
	var recs []Record
	for _, s := range rtnet.AddrKeyBenchStats() {
		recs = append(recs,
			Record{Experiment: "rt-recvpath", Mode: s.Name, Metric: "ns_per_op", Value: s.NsPerOp},
			Record{Experiment: "rt-recvpath", Mode: s.Name, Metric: "allocs_per_op", Value: s.AllocsPerOp})
	}
	return recs
}

// RTThroughputRecords runs the sweep and returns the flat records for
// BENCH_plwg.json: (experiment=rt-throughput, mode=inline|pipeline,
// n=GOMAXPROCS).
func RTThroughputRecords(w io.Writer, procsList []int, measure time.Duration, seed int64) []Record {
	var recs []Record
	for _, inline := range []bool{true, false} {
		mode := "pipeline"
		if inline {
			mode = "inline"
		}
		for _, p := range procsList {
			fmt.Fprintf(w, "  rt-throughput %s procs=%d...\n", mode, p)
			r, err := RunRTThroughput(p, measure, seed, RTOptions{Inline: inline})
			if err != nil || !r.Converged {
				continue
			}
			recs = append(recs,
				Record{"rt-throughput", mode, p, "msgs_per_sec", r.MsgsPerSec},
				Record{"rt-throughput", mode, p, "deliveries_per_sec", r.DeliveriesPerSec},
				Record{"rt-throughput", mode, p, "p99_ms", r.P99Ms})
		}
	}
	return recs
}

package bench

import (
	"fmt"
	"io"
	"time"

	"plwg/internal/ids"
	"plwg/internal/naming"
	"plwg/internal/netsim"
	"plwg/internal/sim"
)

// The fig-scale experiment measures how the naming service's
// anti-entropy scales with the number of light-weight groups — the
// regime the LWG idea exists for (thousands of cheap groups amortized
// over few heavy-weight groups). It runs a fixed four-server replica set
// carrying a sweep of LWG counts and compares the legacy full-database
// push-pull against the digest/delta protocol on three axes: steady-state
// sync bytes per round, reconcile work per round, and post-heal
// convergence time.
//
// Unlike the Figure 2 experiments the servers carry the database alone
// (no core endpoints): at 4096 groups the interesting cost IS the
// reconciliation traffic, and the paper's 10 Mbps bus would saturate on
// full-push payloads alone, so the sweep models a 100 Mbps switched LAN.

// ScaleServers is the fixed replica-set size of the fig-scale sweep.
const ScaleServers = 4

// scaleNetParams returns the fig-scale network model: a 100 Mbps LAN
// (the paper's 10 Mbps shared Ethernet cannot even carry the full-push
// baseline at thousands of groups).
func scaleNetParams() netsim.Params {
	p := netsim.DefaultParams()
	p.BandwidthBps = 100e6
	return p
}

// ScaleResult is one cell of the fig-scale sweep.
type ScaleResult struct {
	Converged bool
	Groups    int
	// SetupMs is the virtual time until the seeded database reached all
	// replicas.
	SetupMs float64
	// SyncBytesPerRound / SyncFramesPerRound are modeled anti-entropy
	// traffic (frame overhead included) per sync-timer round in the
	// steady (quiescent) state.
	SyncBytesPerRound  float64
	SyncFramesPerRound float64
	// MergeEntriesPerRound / ConflictChecksPerRound count reconcile work
	// in the steady state (deterministic CPU proxies).
	MergeEntriesPerRound   float64
	ConflictChecksPerRound float64
	// SteadyWallMs is the host wall-clock cost of simulating the steady
	// window (machine-dependent; a coarse reconcile-CPU indicator).
	SteadyWallMs float64
	// HealMs is the virtual time from partition heal to full convergence
	// of all replicas.
	HealMs float64
}

// scaleWorld is the four-server fixture of the sweep.
type scaleWorld struct {
	s       *sim.Sim
	nw      *netsim.Network
	servers []*naming.Server
}

func newScaleWorld(fullPush bool, seed int64) *scaleWorld {
	s := sim.New(seed)
	nw := netsim.New(s, scaleNetParams())
	w := &scaleWorld{s: s, nw: nw}
	pids := make([]ids.ProcessID, ScaleServers)
	for i := range pids {
		pids[i] = ids.ProcessID(i)
	}
	cfg := naming.Config{MappingTTL: -1, FullPush: fullPush}
	for _, pid := range pids {
		srv := naming.NewServer(naming.ServerParams{
			Net: nw, PID: pid, Peers: pids, Config: cfg,
		})
		mux := netsim.NewMux()
		mux.Handle(naming.ServerPrefix, srv.HandleMessage)
		nw.AddNode(pid, mux.Handler())
		srv.Start()
		w.servers = append(w.servers, srv)
	}
	return w
}

// scaleLWG names the i-th group of the sweep.
func scaleLWG(i int) ids.LWGID { return ids.LWGID(fmt.Sprintf("lwg-%04d", i)) }

// converged reports whether every replica stores the same database.
func (w *scaleWorld) converged() bool {
	h := w.servers[0].DB().Hash()
	n := len(w.servers[0].DB().LWGs())
	for _, srv := range w.servers[1:] {
		if srv.DB().Hash() != h || len(srv.DB().LWGs()) != n {
			return false
		}
	}
	return true
}

// runUntilConverged polls convergence and returns the elapsed virtual
// time, or false after max.
func (w *scaleWorld) runUntilConverged(max time.Duration) (time.Duration, bool) {
	start := w.s.Now()
	deadline := start.Add(max)
	for !w.converged() {
		if w.s.Now() >= deadline {
			return w.s.Now().Sub(start), false
		}
		w.s.RunFor(100 * time.Millisecond)
	}
	return w.s.Now().Sub(start), true
}

// syncTraffic sums the anti-entropy bytes and frames of a stats window.
func syncTraffic(st netsim.Stats) (bytes, frames int64) {
	for _, kind := range []string{"naming-sync", "naming-digest", "naming-delta"} {
		bytes += st.BytesByKind[kind]
		frames += st.ByKind[kind]
	}
	return bytes, frames
}

// RunScale measures one (protocol, group-count) cell: seed the database,
// converge, measure a quiescent steady-state window, then partition the
// replica set, diverge both sides, heal, and time re-convergence.
// Durations map as SetupMax → initial convergence bound, Measure →
// steady-state window, RecoveryMax → post-heal convergence bound.
func RunScale(fullPush bool, groups int, seed int64, d Durations) ScaleResult {
	w := newScaleWorld(fullPush, seed)
	res := ScaleResult{Groups: groups}

	// Seed every mapping at server 0; anti-entropy spreads them.
	for i := 0; i < groups; i++ {
		w.servers[0].DB().Put(naming.Entry{
			LWG:  scaleLWG(i),
			View: ids.ViewID{Coord: ids.ProcessID(i % ScaleServers), Seq: 1},
			HWG:  ids.HWGID(i%8) + 1,
			Ver:  1,
		})
	}
	setup, ok := w.runUntilConverged(d.SetupMax)
	if !ok {
		return res
	}
	res.SetupMs = float64(setup) / float64(time.Millisecond)

	// Steady state: nothing changes; measure what reconciliation costs
	// anyway. Rounds are counted from the servers' own counters so the
	// normalization is exact regardless of timer phase.
	w.nw.ResetStats()
	for _, srv := range w.servers {
		srv.ResetSyncStats()
	}
	wallStart := time.Now()
	w.s.RunFor(d.Measure)
	res.SteadyWallMs = float64(time.Since(wallStart)) / float64(time.Millisecond)
	var rounds, mergeEntries, conflictChecks int64
	for _, srv := range w.servers {
		st := srv.SyncStats()
		rounds += st["rounds"]
		mergeEntries += st["merge_entries"]
		conflictChecks += st["conflict_checks"]
	}
	if rounds > 0 {
		bytes, frames := syncTraffic(w.nw.Stats())
		res.SyncBytesPerRound = float64(bytes) / float64(rounds)
		res.SyncFramesPerRound = float64(frames) / float64(rounds)
		res.MergeEntriesPerRound = float64(mergeEntries) / float64(rounds)
		res.ConflictChecksPerRound = float64(conflictChecks) / float64(rounds)
	}

	// Partition {0,1} | {2,3}, remap disjoint slices of the groups on
	// each side (new versions, different targets), converge each side
	// internally, then heal and time full re-convergence.
	w.nw.SetPartitions([]netsim.NodeID{0, 1}, []netsim.NodeID{2, 3})
	for i := 0; i < groups; i += 8 {
		w.servers[0].DB().Put(naming.Entry{
			LWG:  scaleLWG(i),
			View: ids.ViewID{Coord: ids.ProcessID(i % ScaleServers), Seq: 1},
			HWG:  100, Ver: 2,
		})
	}
	for i := 4; i < groups; i += 8 {
		w.servers[2].DB().Put(naming.Entry{
			LWG:  scaleLWG(i),
			View: ids.ViewID{Coord: ids.ProcessID(i % ScaleServers), Seq: 1},
			HWG:  101, Ver: 2,
		})
	}
	w.s.RunFor(2 * time.Second)
	w.nw.Heal()
	heal, ok := w.runUntilConverged(d.RecoveryMax)
	if !ok {
		return res
	}
	res.HealMs = float64(heal) / float64(time.Millisecond)
	res.Converged = true
	return res
}

// scaleModeName labels the two compared protocols.
func scaleModeName(fullPush bool) string {
	if fullPush {
		return "full-push"
	}
	return "digest-delta"
}

// FigScale renders the scaling sweep: for each LWG count, steady-state
// anti-entropy bytes per round under both protocols, the reduction
// factor, and post-heal convergence times.
func FigScale(w io.Writer, groups []int, seed int64, d Durations) {
	fmt.Fprintf(w, "fig-scale — naming anti-entropy vs LWG count (%d servers, 100 Mbps LAN)\n",
		ScaleServers)
	fmt.Fprintf(w, "%7s %15s %15s %9s %12s %12s\n",
		"groups", "full B/round", "delta B/round", "reduction", "full heal", "delta heal")
	for _, g := range groups {
		full := RunScale(true, g, seed, d)
		delta := RunScale(false, g, seed, d)
		if !full.Converged || !delta.Converged {
			fmt.Fprintf(w, "%7d %15s\n", g, "n/a")
			continue
		}
		reduction := 0.0
		if delta.SyncBytesPerRound > 0 {
			reduction = full.SyncBytesPerRound / delta.SyncBytesPerRound
		}
		fmt.Fprintf(w, "%7d %15.0f %15.1f %8.0fx %10.0fms %10.0fms\n",
			g, full.SyncBytesPerRound, delta.SyncBytesPerRound, reduction,
			full.HealMs, delta.HealMs)
	}
}

// FigScaleRecords runs the sweep for the machine-readable report.
func FigScaleRecords(w io.Writer, groups []int, seed int64, d Durations) []Record {
	var recs []Record
	for _, g := range groups {
		for _, fullPush := range []bool{true, false} {
			mode := scaleModeName(fullPush)
			fmt.Fprintf(w, "  fig-scale groups=%d %s...\n", g, mode)
			r := RunScale(fullPush, g, seed, d)
			if !r.Converged {
				continue
			}
			recs = append(recs,
				Record{"fig-scale", mode, g, "sync_bytes_per_round", r.SyncBytesPerRound},
				Record{"fig-scale", mode, g, "sync_frames_per_round", r.SyncFramesPerRound},
				Record{"fig-scale", mode, g, "merge_entries_per_round", r.MergeEntriesPerRound},
				Record{"fig-scale", mode, g, "conflict_checks_per_round", r.ConflictChecksPerRound},
				Record{"fig-scale", mode, g, "setup_ms", r.SetupMs},
				Record{"fig-scale", mode, g, "heal_ms", r.HealMs},
				Record{"fig-scale", mode, g, "steady_wall_ms", r.SteadyWallMs})
		}
	}
	return recs
}

package bench

import (
	"strings"
	"testing"
	"time"

	"plwg/internal/workload"
)

func shortDurations() Durations {
	return Durations{
		SetupMax:    60 * time.Second,
		Measure:     2 * time.Second,
		RecoveryMax: 20 * time.Second,
	}
}

func TestHarnessSetupAllModes(t *testing.T) {
	for _, mode := range Modes {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			h := NewHarness(mode, workload.Fig2Topology(2), 1)
			if !h.Setup(60 * time.Second) {
				t.Fatalf("%v did not converge (virtual %v)", mode, h.S.Now().Duration())
			}
			if !h.Converged() {
				t.Fatal("Converged() inconsistent")
			}
		})
	}
}

func TestHWGCountPerMode(t *testing.T) {
	// The structural claim of the paper: with n groups per set, the
	// no-LWG configuration runs 2n heavy-weight groups, the static one
	// runs 1, and the dynamic one converges to 2 (one per set).
	const n = 3
	counts := map[Mode]int{}
	for _, mode := range Modes {
		h := NewHarness(mode, workload.Fig2Topology(n), 1)
		if !h.Setup(60 * time.Second) {
			t.Fatalf("%v did not converge", mode)
		}
		h.RunPolicyEverywhere()
		h.S.RunFor(3 * time.Second)
		counts[mode] = h.HWGCount()
	}
	if counts[NoLWG] != 2*n {
		t.Errorf("no-lwg HWGs = %d, want %d", counts[NoLWG], 2*n)
	}
	if counts[StaticLWG] != 1 {
		t.Errorf("static HWGs = %d, want 1", counts[StaticLWG])
	}
	if counts[DynamicLWG] != 2 {
		t.Errorf("dynamic HWGs = %d, want 2", counts[DynamicLWG])
	}
}

func TestLatencyExperimentRuns(t *testing.T) {
	for _, mode := range Modes {
		r := RunLatency(mode, 2, 1, shortDurations())
		if !r.Converged {
			t.Fatalf("%v latency run did not converge", mode)
		}
		if r.Samples == 0 || r.MeanMs <= 0 {
			t.Errorf("%v: no latency samples (%+v)", mode, r)
		}
		// Sanity: a 1KB frame takes ~0.86ms on a 10 Mbps bus; one-way
		// latency must be at least that and far below a second.
		if r.MeanMs < 0.5 || r.MeanMs > 1000 {
			t.Errorf("%v: implausible latency %.2fms", mode, r.MeanMs)
		}
	}
}

func TestThroughputExperimentRuns(t *testing.T) {
	for _, mode := range Modes {
		r := RunThroughput(mode, 2, 1, shortDurations())
		if !r.Converged {
			t.Fatalf("%v throughput run did not converge", mode)
		}
		if r.TotalKBps <= 0 || r.MsgsPerSec <= 0 {
			t.Errorf("%v: no throughput measured (%+v)", mode, r)
		}
		// The bus is 10 Mbps ≈ 1220 KB/s; deliveries fan out to 3
		// remote receivers, so delivered payload can exceed raw bus
		// bandwidth ×3, but not more.
		if r.TotalKBps > 3*1250 {
			t.Errorf("%v: impossible throughput %.0f KB/s", mode, r.TotalKBps)
		}
	}
}

func TestRecoveryExperimentRuns(t *testing.T) {
	for _, mode := range Modes {
		r := RunRecovery(mode, 2, 1, shortDurations())
		if !r.Converged {
			t.Fatalf("%v recovery run did not complete", mode)
		}
		// Detection alone needs the failure-detection timeout (350ms).
		if r.MaxMs < 100 || r.MaxMs > 20000 {
			t.Errorf("%v: implausible recovery %.0fms", mode, r.MaxMs)
		}
	}
}

func TestFigure2Shapes(t *testing.T) {
	// The qualitative claims of Section 3.3 at a modest scale:
	//  (a) recovery: no-lwg recovery grows with n and is worse than
	//      dynamic (resource sharing);
	//  (b) interference: the static configuration disturbs unrelated
	//      groups during recovery far more than the dynamic one.
	if testing.Short() {
		t.Skip("multi-second simulation sweep")
	}
	d := shortDurations()
	recNo8 := RunRecovery(NoLWG, 8, 1, d)
	recDyn8 := RunRecovery(DynamicLWG, 8, 1, d)
	recStat8 := RunRecovery(StaticLWG, 8, 1, d)
	if !recNo8.Converged || !recDyn8.Converged || !recStat8.Converged {
		t.Fatal("recovery runs did not converge")
	}
	if recNo8.MaxMs <= recDyn8.MaxMs {
		t.Errorf("resource sharing not visible: no-lwg %.0fms <= dynamic %.0fms",
			recNo8.MaxMs, recDyn8.MaxMs)
	}
	if recStat8.UnrelatedProbeMaxMs <= recDyn8.UnrelatedProbeMaxMs {
		t.Errorf("interference not visible: static probe %.1fms <= dynamic probe %.1fms",
			recStat8.UnrelatedProbeMaxMs, recDyn8.UnrelatedProbeMaxMs)
	}
}

func TestFigureRenderers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation sweep")
	}
	d := Durations{SetupMax: 60 * time.Second, Measure: time.Second, RecoveryMax: 20 * time.Second}
	var b strings.Builder
	Figure2Latency(&b, []int{1}, 1, d)
	Figure2Throughput(&b, []int{1}, 1, d)
	Figure2Recovery(&b, []int{1}, 1, d)
	out := b.String()
	for _, want := range []string{"latency", "throughput", "recovery", "dynamic-lwg"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "n/a") {
		t.Errorf("some cells did not converge:\n%s", out)
	}
}

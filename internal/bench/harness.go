// Package bench is the experiment harness reproducing the paper's
// evaluation (Section 3.3, Figure 2, Tables 3–4). It builds the three
// compared configurations —
//
//   - no LWG service: each user group is one virtually synchronous
//     (heavy-weight) group of its own;
//   - static LWG service: every user group is a light-weight group mapped
//     onto one heavy-weight group containing all processes;
//   - dynamic LWG service: the full service of this repository, which
//     maps each set of identical-membership groups onto its own
//     heavy-weight group;
//
// — drives identical workloads through them, and measures data-transfer
// latency, throughput and crash-recovery time on the simulated 10 Mbps
// shared Ethernet.
package bench

import (
	"encoding/binary"
	"fmt"
	"time"

	"plwg/internal/core"
	"plwg/internal/ids"
	"plwg/internal/metrics"
	"plwg/internal/naming"
	"plwg/internal/netsim"
	"plwg/internal/sim"
	"plwg/internal/trace"
	"plwg/internal/vsync"
	"plwg/internal/workload"
)

// Mode selects the configuration under test.
type Mode int

const (
	// NoLWG: one heavy-weight group per user group.
	NoLWG Mode = iota + 1
	// StaticLWG: all user groups mapped statically onto one heavy-weight
	// group spanning every process.
	StaticLWG
	// DynamicLWG: the paper's dynamic light-weight group service.
	DynamicLWG
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case NoLWG:
		return "no-lwg"
	case StaticLWG:
		return "static-lwg"
	case DynamicLWG:
		return "dynamic-lwg"
	default:
		return "unknown"
	}
}

// Modes lists the three configurations in the paper's order.
var Modes = []Mode{NoLWG, StaticLWG, DynamicLWG}

// staticHWG is the pre-seeded heavy-weight group of the static
// configuration.
const staticHWG ids.HWGID = 1 << 20

// Harness hosts one configuration over one topology.
type Harness struct {
	Mode Mode
	Topo workload.Topology
	S    *sim.Sim
	NW   *netsim.Network

	// Dynamic/static configurations.
	eps     map[ids.ProcessID]*core.Endpoint
	servers []*naming.Server
	// NoLWG configuration.
	stacks map[ids.ProcessID]*vsync.Stack

	// groupIdx maps a LWG name (or NoLWG group id) to the topology
	// index.
	groupIdx map[ids.LWGID]int

	// Message bookkeeping for latency measurements.
	sentAt  map[uint64]sim.Time
	nextMsg uint64

	// onDeliver, when set, observes every delivery.
	onDeliver func(gi int, member, src ids.ProcessID, id uint64, size int)

	// Tracer records protocol events when set before NewHarness builds
	// the stacks (see NewHarnessTraced).
	Tracer trace.Tracer
	opts   Options

	tickers []stopper
}

// stopper is anything the harness can cancel at StopTraffic.
type stopper interface{ Stop() }

// benchPayload is the NoLWG-mode payload.
type benchPayload struct {
	ID   uint64
	Size int
}

// WireSize implements vsync.Payload.
func (p benchPayload) WireSize() int { return p.Size }

// Options are optional harness overrides, used by the ablation
// benchmarks.
type Options struct {
	// Tracer records protocol events (a *trace.Recorder for analysis
	// runs, a *trace.Ring for overhead-representative ones).
	Tracer trace.Tracer
	// Metrics receives instrumentation from every simulated process
	// (the registry is shared across the cluster, so counters aggregate
	// cluster-wide); nil disables it.
	Metrics *metrics.Registry
	// AckPolicy overrides the stability scheme of the vsync layer.
	AckPolicy vsync.AckPolicy
	// Ordering overrides the multicast delivery order.
	Ordering vsync.OrderingMode
	// Net overrides the network model.
	Net *netsim.Params
	// DisableBatching turns off LWG message packing (A/B runs).
	DisableBatching bool
}

// NewHarness builds the configuration over the topology. Call Setup to
// join all groups and wait for convergence.
func NewHarness(mode Mode, topo workload.Topology, seed int64) *Harness {
	return NewHarnessWith(mode, topo, seed, Options{})
}

// NewHarnessTraced is NewHarness with a protocol-trace recorder.
func NewHarnessTraced(mode Mode, topo workload.Topology, seed int64, tr *trace.Recorder) *Harness {
	return NewHarnessWith(mode, topo, seed, Options{Tracer: tr})
}

// NewHarnessWith is NewHarness with ablation overrides.
func NewHarnessWith(mode Mode, topo workload.Topology, seed int64, opts Options) *Harness {
	s := sim.New(seed)
	netParams := netsim.DefaultParams()
	if opts.Net != nil {
		netParams = *opts.Net
	}
	h := &Harness{
		Mode:     mode,
		Topo:     topo,
		S:        s,
		NW:       netsim.New(s, netParams),
		groupIdx: make(map[ids.LWGID]int),
		sentAt:   make(map[uint64]sim.Time),
		Tracer:   opts.Tracer,
		opts:     opts,
	}
	for i, g := range topo.Groups {
		h.groupIdx[g.Name] = i
	}
	switch mode {
	case NoLWG:
		h.buildNoLWG()
	case StaticLWG, DynamicLWG:
		h.buildLWG(mode == StaticLWG)
	}
	return h
}

// tracer returns the configured tracer or a no-op.
func (h *Harness) tracer() trace.Tracer {
	if h.Tracer != nil {
		return h.Tracer
	}
	return trace.Nop{}
}

// gidOf maps a topology group index to its NoLWG heavy-weight group id.
func gidOf(gi int) ids.HWGID { return ids.HWGID(gi + 1) }

func (h *Harness) buildNoLWG() {
	h.stacks = make(map[ids.ProcessID]*vsync.Stack)
	cfg := vsync.DefaultConfig()
	cfg.AutoStopOk = true
	if h.opts.AckPolicy != 0 {
		cfg.AckPolicy = h.opts.AckPolicy
	}
	if h.opts.Ordering != 0 {
		cfg.Ordering = h.opts.Ordering
	}
	for i := 0; i < h.Topo.Procs; i++ {
		pid := ids.ProcessID(i)
		up := &noLWGUpcalls{h: h, pid: pid}
		st := vsync.NewStack(vsync.Params{
			Net: h.NW, PID: pid, Config: cfg, Upcalls: up, Tracer: h.tracer(),
			Metrics: h.opts.Metrics,
		})
		mux := netsim.NewMux()
		mux.Handle(vsync.AddrPrefix, st.HandleMessage)
		h.NW.AddNode(pid, mux.Handler())
		h.stacks[pid] = st
	}
}

// noLWGUpcalls records deliveries for the NoLWG configuration.
type noLWGUpcalls struct {
	h   *Harness
	pid ids.ProcessID
}

func (u *noLWGUpcalls) View(ids.HWGID, ids.View) {}

func (u *noLWGUpcalls) Data(gid ids.HWGID, src ids.ProcessID, payload vsync.Payload) {
	p, ok := payload.(benchPayload)
	if !ok {
		return
	}
	if u.h.onDeliver != nil {
		u.h.onDeliver(int(gid)-1, u.pid, src, p.ID, p.Size)
	}
}

func (u *noLWGUpcalls) Stop(ids.HWGID) {}

func (h *Harness) buildLWG(static bool) {
	h.eps = make(map[ids.ProcessID]*core.Endpoint)
	serverPids := []ids.ProcessID{0}
	svcCfg := core.DefaultConfig()
	svcCfg.DisableBatching = h.opts.DisableBatching
	if static {
		svcCfg.PolicyInterval = 24 * time.Hour // mapping is frozen
	} else {
		svcCfg.PolicyInterval = 10 * time.Second
	}
	for i := 0; i < h.Topo.Procs; i++ {
		pid := ids.ProcessID(i)
		mux := netsim.NewMux()
		up := &lwgUpcalls{h: h, pid: pid}
		ep := core.New(core.Params{
			Net:     h.NW,
			PID:     pid,
			Servers: serverPids,
			Config:  svcCfg,
			Vsync:   vsync.Config{AckPolicy: h.opts.AckPolicy, Ordering: h.opts.Ordering},
			Upcalls: up,
			Tracer:  h.tracer(),
			Metrics: h.opts.Metrics,
		}, mux)
		for _, sp := range serverPids {
			if sp == pid {
				srv := naming.NewServer(naming.ServerParams{
					Net: h.NW, PID: pid, Peers: serverPids,
					Metrics: h.opts.Metrics,
				})
				mux.Handle(naming.ServerPrefix, srv.HandleMessage)
				srv.Start()
				h.servers = append(h.servers, srv)
			}
		}
		h.NW.AddNode(pid, mux.Handler())
		h.eps[pid] = ep
	}
	if static {
		// Pre-seed the static mapping: every user group onto the one
		// shared heavy-weight group.
		for i, g := range h.Topo.Groups {
			for _, srv := range h.servers {
				srv.DB().Put(naming.Entry{
					LWG:  g.Name,
					View: ids.ViewID{Coord: 0, Seq: uint64(i) + 1},
					HWG:  staticHWG,
					Ver:  1,
					// The static mapping is configuration, not a lease:
					// it never expires.
					Refreshed: int64(^uint64(0) >> 2),
				})
			}
		}
	}
}

// lwgUpcalls records deliveries for the LWG configurations.
type lwgUpcalls struct {
	h   *Harness
	pid ids.ProcessID
}

func (u *lwgUpcalls) View(ids.LWGID, ids.View) {}

func (u *lwgUpcalls) Data(lwg ids.LWGID, src ids.ProcessID, data []byte) {
	gi, ok := u.h.groupIdx[lwg]
	if !ok || len(data) < 8 {
		return
	}
	id := binary.BigEndian.Uint64(data)
	if u.h.onDeliver != nil {
		u.h.onDeliver(gi, u.pid, src, id, len(data))
	}
}

// Setup joins every process into its groups (staggered, as a real
// deployment would) and runs until every group's view matches its
// intended membership. It reports whether convergence was reached within
// maxWait of virtual time.
func (h *Harness) Setup(maxWait time.Duration) bool {
	for gi, g := range h.Topo.Groups {
		gi, g := gi, g
		// The first member creates the group; the rest join shortly
		// after, so creation-time mappings see the existing groups.
		base := time.Duration(gi) * 20 * time.Millisecond
		h.S.After(base, func() { h.join(gi, g.Members[0]) })
		for mi, p := range g.Members[1:] {
			p := p
			h.S.After(base+500*time.Millisecond+time.Duration(mi)*5*time.Millisecond,
				func() { h.join(gi, p) })
		}
	}
	deadline := h.S.Now().Add(maxWait)
	for !h.Converged() {
		if h.S.Now() >= deadline {
			return false
		}
		h.S.RunFor(100 * time.Millisecond)
	}
	// Let stability traffic settle.
	h.S.RunFor(500 * time.Millisecond)
	return true
}

func (h *Harness) join(gi int, p ids.ProcessID) {
	switch h.Mode {
	case NoLWG:
		_ = h.stacks[p].Join(gidOf(gi))
	default:
		_ = h.eps[p].Join(h.Topo.Groups[gi].Name)
	}
}

// GroupView returns the member's current view of the group.
func (h *Harness) GroupView(gi int, p ids.ProcessID) (ids.View, bool) {
	switch h.Mode {
	case NoLWG:
		return h.stacks[p].CurrentView(gidOf(gi))
	default:
		return h.eps[p].LWGView(h.Topo.Groups[gi].Name)
	}
}

// Converged reports whether every group's every member sees exactly the
// intended membership.
func (h *Harness) Converged() bool {
	for gi, g := range h.Topo.Groups {
		for _, p := range g.Members {
			v, ok := h.GroupView(gi, p)
			if !ok || !v.Members.Equal(g.Members) {
				return false
			}
		}
	}
	return true
}

// Send multicasts one message of the given payload size on the group and
// returns its id (recorded with the send timestamp for latency
// accounting).
func (h *Harness) Send(gi int, from ids.ProcessID, size int) uint64 {
	h.nextMsg++
	id := h.nextMsg
	h.sentAt[id] = h.S.Now()
	switch h.Mode {
	case NoLWG:
		_ = h.stacks[from].Send(gidOf(gi), benchPayload{ID: id, Size: size})
	default:
		data := make([]byte, size)
		binary.BigEndian.PutUint64(data, id)
		_ = h.eps[from].Send(h.Topo.Groups[gi].Name, data)
	}
	return id
}

// SentAt returns the send timestamp of a message id.
func (h *Harness) SentAt(id uint64) (sim.Time, bool) {
	t, ok := h.sentAt[id]
	return t, ok
}

// OnDeliver installs the global delivery observer.
func (h *Harness) OnDeliver(fn func(gi int, member, src ids.ProcessID, id uint64, size int)) {
	h.onDeliver = fn
}

// Every registers a periodic task that is stopped by StopTraffic.
func (h *Harness) Every(period time.Duration, fn func()) {
	h.tickers = append(h.tickers, h.S.Every(period, fn))
}

// Poisson registers a task firing with exponential inter-arrival times of
// the given mean (a Poisson process, like the paper's loaded-network
// traffic). Perfectly periodic senders would self-organize into a
// collision-free schedule on the deterministic bus and hide all queueing.
// Stopped by StopTraffic.
func (h *Harness) Poisson(mean time.Duration, fn func()) {
	stopped := false
	h.tickers = append(h.tickers, &poissonTask{stop: func() { stopped = true }})
	var schedule func()
	schedule = func() {
		d := time.Duration(h.S.Rand().ExpFloat64() * float64(mean))
		h.S.After(d, func() {
			if stopped {
				return
			}
			fn()
			schedule()
		})
	}
	schedule()
}

// poissonTask adapts a stop function to the ticker slice.
type poissonTask struct{ stop func() }

// Stop implements the subset of sim.Ticker the harness uses.
func (p *poissonTask) Stop() { p.stop() }

// StopTraffic cancels all periodic tasks registered with Every.
func (h *Harness) StopTraffic() {
	for _, t := range h.tickers {
		t.Stop()
	}
	h.tickers = nil
}

// RunPolicyEverywhere triggers one mapping-heuristics pass at every
// process, in process order (LWG modes only).
func (h *Harness) RunPolicyEverywhere() {
	for i := 0; i < h.Topo.Procs; i++ {
		if ep, ok := h.eps[ids.ProcessID(i)]; ok {
			ep.RunPolicyNow()
		}
	}
}

// HWGCount returns how many distinct heavy-weight groups the
// configuration uses (a resource-sharing metric).
func (h *Harness) HWGCount() int {
	switch h.Mode {
	case NoLWG:
		return len(h.Topo.Groups)
	default:
		seen := make(map[ids.HWGID]bool)
		for _, ep := range h.eps {
			for _, g := range ep.HWGs() {
				seen[g] = true
			}
		}
		return len(seen)
	}
}

// Registry returns the cluster-wide metrics registry (nil unless
// Options.Metrics was set).
func (h *Harness) Registry() *metrics.Registry { return h.opts.Metrics }

// Describe returns a one-line summary for table headers.
func (h *Harness) Describe() string {
	return fmt.Sprintf("%s: %d groups on %d HWGs", h.Mode, len(h.Topo.Groups), h.HWGCount())
}

// Metrics convenience re-export so callers need not import the package.
type Histogram = metrics.Histogram

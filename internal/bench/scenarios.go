package bench

import (
	"fmt"
	"io"
	"time"

	"plwg/internal/core"
	"plwg/internal/ids"
	"plwg/internal/naming"
	"plwg/internal/netsim"
	"plwg/internal/sim"
	"plwg/internal/trace"
)

// This file replays the paper's Tables 3 and 4: the evolution of the
// naming-service database through a partition and its healing.
//
// Figure 3's situation — the same LWGs mapped onto different HWGs in two
// concurrent partitions — is constructed by partitioning the network
// before the groups are created, so each side's creators and name server
// make independent mapping decisions. After the heal, the database passes
// through exactly the paper's stages:
//
//	1) merged naming service: both partitions' mappings coexist (Table 3)
//	2) merged HWGs:           concurrent LWG views on merged HWG views
//	3) switched LWGs:         all views of a LWG on the same (highest-gid)
//	                          HWG (Section 6.2)
//	4) merged LWGs:           one view per LWG, ancestors garbage-collected
//	                          (Table 4)

// scenarioCluster is a minimal full-stack cluster for the scenario
// player.
type scenarioCluster struct {
	s       *sim.Sim
	nw      *netsim.Network
	eps     map[ids.ProcessID]*core.Endpoint
	servers map[ids.ProcessID]*naming.Server
	tracer  *trace.Recorder
}

func newScenarioCluster(nodes int, serverPids []ids.ProcessID, seed int64) *scenarioCluster {
	s := sim.New(seed)
	nw := netsim.New(s, netsim.DefaultParams())
	c := &scenarioCluster{
		s: s, nw: nw,
		eps:     make(map[ids.ProcessID]*core.Endpoint),
		servers: make(map[ids.ProcessID]*naming.Server),
		tracer:  &trace.Recorder{},
	}
	svc := core.DefaultConfig()
	svc.PolicyInterval = time.Hour // scenarios drive reconfiguration themselves
	for i := 0; i < nodes; i++ {
		pid := ids.ProcessID(i)
		mux := netsim.NewMux()
		ep := core.New(core.Params{
			Net: nw, PID: pid, Servers: serverPids, Config: svc, Tracer: c.tracer,
		}, mux)
		for _, sp := range serverPids {
			if sp == pid {
				srv := naming.NewServer(naming.ServerParams{
					Net: nw, PID: pid, Peers: serverPids, Tracer: c.tracer,
				})
				mux.Handle(naming.ServerPrefix, srv.HandleMessage)
				srv.Start()
				c.servers[pid] = srv
			}
		}
		nw.AddNode(pid, mux.Handler())
		c.eps[pid] = ep
	}
	return c
}

func (c *scenarioCluster) dumpServer(w io.Writer, pid ids.ProcessID) {
	fmt.Fprintf(w, "  name server at %v:\n", pid)
	d := c.servers[pid].DB().Dump()
	if d == "" {
		fmt.Fprintln(w, "    (empty)")
		return
	}
	for _, line := range splitLines(d) {
		fmt.Fprintf(w, "    %s\n", line)
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// Table3Scenario builds Figure 3's inconsistent mappings and prints the
// per-partition databases and the merged database of Table 3.
func Table3Scenario(w io.Writer, seed int64) *scenarioCluster {
	c := newScenarioCluster(8, []ids.ProcessID{0, 4}, seed)
	fmt.Fprintln(w, "== Table 3: inconsistent mappings across a partition ==")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Partitioning: p = {p0..p3}, p' = {p4..p7}")
	c.nw.SetPartitions(
		[]netsim.NodeID{0, 1, 2, 3},
		[]netsim.NodeID{4, 5, 6, 7},
	)
	// In partition p, p1 creates LWG a and p2 creates LWG b (distinct
	// creators → distinct HWGs); in partition p', p5 and p6 do the same.
	_ = c.eps[1].Join("a")
	_ = c.eps[2].Join("b")
	_ = c.eps[5].Join("a")
	_ = c.eps[6].Join("b")
	c.s.RunFor(3 * time.Second)
	// Second members join within each partition.
	_ = c.eps[2].Join("a")
	_ = c.eps[1].Join("b")
	_ = c.eps[6].Join("a")
	_ = c.eps[5].Join("b")
	c.s.RunFor(3 * time.Second)

	fmt.Fprintln(w, "\n-- databases while partitioned --")
	c.dumpServer(w, 0)
	c.dumpServer(w, 4)

	fmt.Fprintln(w, "\nHealing the partition; name servers reconcile by anti-entropy ...")
	c.nw.Heal()
	// Advance in small steps and capture the database at the moment the
	// reconciled (conflicting) state is visible — the LWG layer starts
	// repairing it within a few hundred milliseconds, so the Table 3
	// state is transient by design.
	deadline := c.s.Now().Add(5 * time.Second)
	for c.s.Now() < deadline {
		db := c.servers[0].DB()
		if db.Conflict("a") && db.Conflict("b") {
			break
		}
		c.s.RunFor(20 * time.Millisecond)
	}
	fmt.Fprintln(w, "\n-- merged naming service (stage 1, Table 3) --")
	c.dumpServer(w, 0)
	return c
}

// Table4Scenario continues Table3Scenario through the four stages of
// Table 4, printing the database after each stage completes.
func Table4Scenario(w io.Writer, seed int64) {
	c := Table3Scenario(w, seed)
	fmt.Fprintln(w, "\n== Table 4: evolution to a single merged mapping ==")

	// Stages 2–4 proceed autonomously: the HWGs merge, the
	// MULTIPLE-MAPPINGS callbacks make the lower-gid views switch, the
	// concurrent views meet on one HWG and merge, and the naming service
	// garbage-collects the ancestors. Poll until each LWG has exactly
	// one live mapping.
	deadline := c.s.Now().Add(30 * time.Second)
	converged := func() bool {
		for _, lwg := range []ids.LWGID{"a", "b"} {
			if len(c.servers[0].DB().Live(lwg)) != 1 || c.servers[0].DB().Conflict(lwg) {
				return false
			}
			if len(c.servers[4].DB().Live(lwg)) != 1 {
				return false
			}
		}
		return true
	}
	for !converged() && c.s.Now() < deadline {
		c.s.RunFor(250 * time.Millisecond)
	}
	fmt.Fprintln(w, "\n-- after reconciliation: switched and merged (stage 4, Table 4) --")
	c.dumpServer(w, 0)
	c.dumpServer(w, 4)

	fmt.Fprintln(w, "\n-- resulting light-weight group views --")
	for _, lwg := range []ids.LWGID{"a", "b"} {
		for _, pid := range []ids.ProcessID{1, 2, 5, 6} {
			if v, ok := c.eps[pid].LWGView(lwg); ok {
				h, _ := c.eps[pid].Mapping(lwg)
				fmt.Fprintf(w, "  %s at %v: view %v on %v\n", lwg, pid, v, h)
			}
		}
	}
	fmt.Fprintln(w, "\n-- reconciliation trace (lwg + naming layers) --")
	for _, e := range c.tracer.Events {
		switch e.What {
		case "multiple-mappings", "reconcile", "reconcile-switch",
			trace.LWGMergeStep, trace.LWGSwitch, trace.LWGRebind:
			fmt.Fprintf(w, "  %s\n", e.String())
		}
	}
	if converged() {
		fmt.Fprintln(w, "\nConverged: one live mapping per LWG; obsolete views garbage-collected.")
	} else {
		fmt.Fprintln(w, "\nWARNING: did not converge within the scenario horizon.")
	}
}

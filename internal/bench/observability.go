package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"plwg/internal/metrics"
	"plwg/internal/trace"
)

// ObservabilityRecords measures what the full observability stack — the
// metrics registry plus a ring tracer, both enabled on every simulated
// process — does to the Figure 2 dynamic-lwg throughput point at n = 8,
// and dumps the instrumented run's cluster-wide counter totals.
//
// The simulation runs on virtual time, so the throughput delta captures
// behavioral interference (there must be none: instrumentation only
// observes) while the wall-clock delta, printed but deliberately not
// recorded (it is machine-dependent), shows the real CPU cost. The
// committed overhead_pct record is the regression gate: it must stay
// under the 5% observability budget.
func ObservabilityRecords(w io.Writer, seed int64, d Durations) []Record {
	const n = 8
	mode := DynamicLWG
	fmt.Fprintf(w, "  observability overhead (%s n=%d)...\n", mode, n)

	runtime.GC() // keep prior sweeps' garbage out of the wall-clock compare
	w0 := time.Now()
	plain := RunThroughputWith(mode, n, seed, d, Options{})
	plainWall := time.Since(w0)

	reg := metrics.NewRegistry()
	ring := trace.NewRing(trace.DefaultRingCapacity)
	runtime.GC()
	w1 := time.Now()
	instr := RunThroughputWith(mode, n, seed, d, Options{Metrics: reg, Tracer: ring})
	instrWall := time.Since(w1)

	if !plain.Converged || !instr.Converged {
		fmt.Fprintf(w, "  observability run did not converge; skipping records\n")
		return nil
	}
	overhead := 0.0
	if plain.TotalKBps > 0 {
		overhead = 100 * (plain.TotalKBps - instr.TotalKBps) / plain.TotalKBps
	}
	fmt.Fprintf(w, "  plain %.1f kbps (%v wall), instrumented %.1f kbps (%v wall), overhead %.2f%%\n",
		plain.TotalKBps, plainWall.Round(time.Millisecond),
		instr.TotalKBps, instrWall.Round(time.Millisecond), overhead)

	recs := []Record{
		{"observability", mode.String(), n, "plain_kbps", plain.TotalKBps},
		{"observability", mode.String(), n, "instrumented_kbps", instr.TotalKBps},
		{"observability", mode.String(), n, "overhead_pct", overhead},
		{"observability", mode.String(), n, "trace_events", float64(ring.Total())},
		{"observability", mode.String(), n, "trace_dropped", float64(ring.Dropped())},
	}
	totals := reg.Totals()
	names := make([]string, 0, len(totals))
	for name := range totals {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		recs = append(recs, Record{"registry-totals", mode.String(), n, name, float64(totals[name])})
	}
	return recs
}

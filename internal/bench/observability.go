package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"plwg/internal/metrics"
	"plwg/internal/trace"
)

// ObservabilityRecords measures what the full observability stack — the
// metrics registry plus a ring tracer, both enabled on every simulated
// process — does to the Figure 2 dynamic-lwg throughput point at n = 8,
// and dumps the instrumented run's cluster-wide counter totals.
//
// The simulation runs on virtual time, so the throughput delta captures
// behavioral interference (there must be none: instrumentation only
// observes) while the wall-clock delta, printed but deliberately not
// recorded (it is machine-dependent), shows the real CPU cost. The
// committed overhead_pct record is the regression gate: it must stay
// under the 5% observability budget.
func ObservabilityRecords(w io.Writer, seed int64, d Durations) []Record {
	const n = 8
	mode := DynamicLWG
	fmt.Fprintf(w, "  observability overhead (%s n=%d)...\n", mode, n)

	runtime.GC() // keep prior sweeps' garbage out of the wall-clock compare
	w0 := time.Now()
	plain := RunThroughputWith(mode, n, seed, d, Options{})
	plainWall := time.Since(w0)

	reg := metrics.NewRegistry()
	ring := trace.NewRing(trace.DefaultRingCapacity)
	runtime.GC()
	w1 := time.Now()
	instr := RunThroughputWith(mode, n, seed, d, Options{Metrics: reg, Tracer: ring})
	instrWall := time.Since(w1)

	if !plain.Converged || !instr.Converged {
		fmt.Fprintf(w, "  observability run did not converge; skipping records\n")
		return nil
	}
	overhead := 0.0
	if plain.TotalKBps > 0 {
		overhead = 100 * (plain.TotalKBps - instr.TotalKBps) / plain.TotalKBps
	}
	fmt.Fprintf(w, "  plain %.1f kbps (%v wall), instrumented %.1f kbps (%v wall), overhead %.2f%%\n",
		plain.TotalKBps, plainWall.Round(time.Millisecond),
		instr.TotalKBps, instrWall.Round(time.Millisecond), overhead)

	recs := []Record{
		{"observability", mode.String(), n, "plain_kbps", plain.TotalKBps},
		{"observability", mode.String(), n, "instrumented_kbps", instr.TotalKBps},
		{"observability", mode.String(), n, "overhead_pct", overhead},
		{"observability", mode.String(), n, "trace_events", float64(ring.Total())},
		{"observability", mode.String(), n, "trace_dropped", float64(ring.Dropped())},
	}
	totals := reg.Totals()
	names := make([]string, 0, len(totals))
	for name := range totals {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		recs = append(recs, Record{"registry-totals", mode.String(), n, name, float64(totals[name])})
	}
	return recs
}

// RTTraceContextRecords measures what stamping wire trace contexts at
// the default sampling rate does to the real-UDP data plane: the same
// closed-loop rt-throughput run with trace contexts disabled (the
// baseline) and enabled (what a production cluster scraped by lwgcollect
// runs). Unlike the simulated sweep above this one is wall-clock bound,
// so the throughput delta IS the wire cost — the extra ~30 bytes per
// sampled envelope plus the stamp/decode work. The committed
// overhead_pct record is the regression gate: it must stay under the 3%
// budget for the default 1-in-64 sampling.
func RTTraceContextRecords(w io.Writer, measure time.Duration, seed int64) []Record {
	fmt.Fprintln(w, "  rt-throughput wire trace-context overhead...")
	// A single closed-loop run has double-digit noise on a small shared
	// box (a one-core container time-slices four nodes' worth of
	// goroutines), so the arms run as interleaved pairs and the committed
	// overhead is the MEDIAN of the per-pair deltas: pairing cancels the
	// machine drift both arms see, the median discards the rounds a
	// scheduler hiccup ruined.
	const rounds = 5
	var base, sampled RTResult
	var deltas []float64
	for round := 0; round < rounds; round++ {
		b, err := RunRTThroughput(0, measure, seed, RTOptions{TraceSampleEvery: -1})
		if err != nil || !b.Converged {
			fmt.Fprintf(w, "  baseline run did not converge (%v); skipping records\n", err)
			return nil
		}
		s, err := RunRTThroughput(0, measure, seed, RTOptions{})
		if err != nil || !s.Converged {
			fmt.Fprintf(w, "  sampled run did not converge (%v); skipping records\n", err)
			return nil
		}
		if b.MsgsPerSec > 0 {
			deltas = append(deltas, 100*(b.MsgsPerSec-s.MsgsPerSec)/b.MsgsPerSec)
		}
		if b.MsgsPerSec > base.MsgsPerSec {
			base = b
		}
		if s.MsgsPerSec > sampled.MsgsPerSec {
			sampled = s
		}
	}
	if len(deltas) == 0 {
		return nil
	}
	sort.Float64s(deltas)
	overhead := deltas[len(deltas)/2]
	fmt.Fprintf(w, "  no trace ctx %.0f msgs/s peak, default sampling %.0f msgs/s peak, median paired overhead %.2f%%\n",
		base.MsgsPerSec, sampled.MsgsPerSec, overhead)
	return []Record{
		{"observability", "rt-trace-ctx", base.Procs, "baseline_msgs_per_sec", base.MsgsPerSec},
		{"observability", "rt-trace-ctx", sampled.Procs, "sampled_msgs_per_sec", sampled.MsgsPerSec},
		{"observability", "rt-trace-ctx", sampled.Procs, "overhead_pct", overhead},
		{"observability", "rt-trace-ctx", base.Procs, "baseline_p99_ms", base.P99Ms},
		{"observability", "rt-trace-ctx", sampled.Procs, "sampled_p99_ms", sampled.P99Ms},
	}
}

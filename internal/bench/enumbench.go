package bench

import (
	"fmt"
	"io"
	"time"

	"plwg/internal/explore"
	"plwg/internal/metrics"
)

// Enumeration-throughput benchmark: how fast does lwgcheck -enumerate
// move through a scope's state graph, and how much of that speed comes
// from each optimisation layer?
//
// The experiment sweeps one fixed scope twice:
//
//   - baseline: the original exhaustive sweep — serial, no partial-order
//     reduction, every liveness probe run concretely.
//   - fast: the full engine — worker-pool expansion, sleep-set POR and
//     probe-trajectory memoisation with settle-suffix riding.
//
// Both modes sweep the same scope to the same depth with the production
// quiescence window, so states_per_sec is comparable and speedup_x is
// the end-to-end per-core gain a sweep actually sees. memo_hit_rate and
// por_runs_reduction_x attribute the gain to its two algorithmic layers.
// Findings and the swept verdict are also cross-checked: the fast mode
// must reach the same verdict as the baseline or the records are not
// emitted.

// EnumThroughputResult is one mode's measurement.
type EnumThroughputResult struct {
	Mode     string
	Scope    string
	Depth    int
	Elapsed  time.Duration
	Stats    explore.EnumStats
	Swept    bool
	Findings int
	// MemoHits and RideHits are zero in baseline mode.
	MemoHits int64
	RideHits int64
	PORCut   int64
}

// StatesPerSec is the sweep rate: distinct states visited per second.
func (r EnumThroughputResult) StatesPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Stats.Visited) / r.Elapsed.Seconds()
}

// RunEnumThroughput sweeps the scope once in the given mode.
func RunEnumThroughput(scope string, depth, par int, fast bool) (EnumThroughputResult, error) {
	sc, err := explore.ParseScope(scope)
	if err != nil {
		return EnumThroughputResult{}, err
	}
	reg := metrics.NewRegistry()
	cfg := explore.EnumConfig{
		Scope:     sc,
		Depth:     depth,
		Par:       par,
		POR:       fast,
		ProbeMemo: fast,
		Metrics:   reg,
	}
	start := time.Now()
	res := explore.Enumerate(cfg)
	mode := "baseline"
	if fast {
		mode = "fast"
	}
	return EnumThroughputResult{
		Mode:     mode,
		Scope:    scope,
		Depth:    depth,
		Elapsed:  time.Since(start),
		Stats:    res.Stats,
		Swept:    res.Swept,
		Findings: len(res.Findings),
		MemoHits: reg.Counter("enum_memo_hits_total").Value(),
		RideHits: reg.Counter("enum_ride_hits_total").Value(),
		PORCut:   reg.Counter("enum_por_skipped_total").Value(),
	}, nil
}

// EnumThroughputRecords runs the two-mode comparison and returns the
// BENCH_plwg.json records. par is the fast mode's worker count (the
// baseline is always serial — it is the pre-optimisation engine).
func EnumThroughputRecords(w io.Writer, scope string, depth, par int) []Record {
	fmt.Fprintf(w, "  enum-throughput %s depth=%d (baseline)...\n", scope, depth)
	base, err := RunEnumThroughput(scope, depth, 1, false)
	if err != nil {
		fmt.Fprintf(w, "  enum-throughput: %v\n", err)
		return nil
	}
	fmt.Fprintf(w, "  enum-throughput %s depth=%d (fast, par=%d)...\n", scope, depth, par)
	fast, err := RunEnumThroughput(scope, depth, par, true)
	if err != nil {
		fmt.Fprintf(w, "  enum-throughput: %v\n", err)
		return nil
	}
	if base.Swept != fast.Swept || base.Findings != fast.Findings {
		fmt.Fprintf(w, "  enum-throughput: verdict mismatch (baseline swept=%v findings=%d, fast swept=%v findings=%d) — records withheld\n",
			base.Swept, base.Findings, fast.Swept, fast.Findings)
		return nil
	}
	// Liveness probes only run on newly visited states, so hits/visited
	// is the fraction of probes the memo short-circuited.
	memoRate := 0.0
	if fast.Stats.Visited > 0 {
		memoRate = float64(fast.MemoHits) / float64(fast.Stats.Visited)
	}
	porReduction := 0.0
	if fast.Stats.Runs > 0 {
		porReduction = float64(base.Stats.Runs) / float64(fast.Stats.Runs)
	}
	speedup := 0.0
	if base.StatesPerSec() > 0 {
		speedup = fast.StatesPerSec() / base.StatesPerSec()
	}
	fmt.Fprintf(w, "  enum-throughput: baseline %.1f states/s (%v), fast %.1f states/s (%v), speedup %.2fx\n",
		base.StatesPerSec(), base.Elapsed.Round(time.Millisecond),
		fast.StatesPerSec(), fast.Elapsed.Round(time.Millisecond), speedup)
	return []Record{
		{Experiment: "enum-throughput", Mode: "baseline", N: depth, Metric: "states_per_sec", Value: base.StatesPerSec()},
		{Experiment: "enum-throughput", Mode: "baseline", N: depth, Metric: "runs", Value: float64(base.Stats.Runs)},
		{Experiment: "enum-throughput", Mode: "baseline", N: depth, Metric: "states_visited", Value: float64(base.Stats.Visited)},
		{Experiment: "enum-throughput", Mode: "fast", N: depth, Metric: "states_per_sec", Value: fast.StatesPerSec()},
		{Experiment: "enum-throughput", Mode: "fast", N: depth, Metric: "runs", Value: float64(fast.Stats.Runs)},
		{Experiment: "enum-throughput", Mode: "fast", N: depth, Metric: "states_visited", Value: float64(fast.Stats.Visited)},
		{Experiment: "enum-throughput", Mode: "fast", N: depth, Metric: "speedup_x", Value: speedup},
		{Experiment: "enum-throughput", Mode: "fast", N: depth, Metric: "memo_hit_rate", Value: memoRate},
		{Experiment: "enum-throughput", Mode: "fast", N: depth, Metric: "runs_reduction_x", Value: porReduction},
	}
}

// EnumThroughput prints the comparison as a table (the -experiment
// enum-throughput mode).
func EnumThroughput(w io.Writer, scope string, depth, par int) {
	fmt.Fprintf(w, "== enum-throughput: bounded model checking, scope %s depth %d ==\n", scope, depth)
	fmt.Fprintf(w, "%-10s %10s %12s %10s %10s %10s\n",
		"mode", "runs", "states/s", "memo", "rides", "por-cut")
	for _, fast := range []bool{false, true} {
		p := 1
		if fast {
			p = par
		}
		r, err := RunEnumThroughput(scope, depth, p, fast)
		if err != nil {
			fmt.Fprintf(w, "error: %v\n", err)
			return
		}
		fmt.Fprintf(w, "%-10s %10d %12.1f %10d %10d %10d\n",
			r.Mode, r.Stats.Runs, r.StatesPerSec(), r.MemoHits, r.RideHits, r.PORCut)
	}
}

package bench

import (
	"os"
	"testing"
	"time"

	"plwg/internal/core"
	"plwg/internal/ids"
	"plwg/internal/naming"
	"plwg/internal/netsim"
	"plwg/internal/sim"
	"plwg/internal/trace"
	"plwg/internal/workload"
)

// TestDebugStatic is development scaffolding: set BENCH_DEBUG=1 to dump a
// trace of the static configuration's setup.
func TestDebugStatic(t *testing.T) {
	if os.Getenv("BENCH_DEBUG") == "" {
		t.Skip("set BENCH_DEBUG=1 to run")
	}
	topo := workload.Fig2Topology(1)
	s := sim.New(1)
	nw := netsim.New(s, netsim.DefaultParams())
	rec := &trace.Recorder{}
	eps := make(map[ids.ProcessID]*core.Endpoint)
	serverPids := []ids.ProcessID{0}
	svc := core.DefaultConfig()
	svc.PolicyInterval = 24 * time.Hour
	var servers []*naming.Server
	for i := 0; i < topo.Procs; i++ {
		pid := ids.ProcessID(i)
		mux := netsim.NewMux()
		ep := core.New(core.Params{
			Net: nw, PID: pid, Servers: serverPids, Config: svc, Tracer: rec,
		}, mux)
		if pid == 0 {
			srv := naming.NewServer(naming.ServerParams{Net: nw, PID: 0, Peers: serverPids, Tracer: rec})
			mux.Handle(naming.ServerPrefix, srv.HandleMessage)
			srv.Start()
			servers = append(servers, srv)
		}
		nw.AddNode(pid, mux.Handler())
		eps[pid] = ep
	}
	for i, g := range topo.Groups {
		servers[0].DB().Put(naming.Entry{
			LWG: g.Name, View: ids.ViewID{Coord: 0, Seq: uint64(i) + 1}, HWG: staticHWG, Ver: 1,
		})
	}
	for _, g := range topo.Groups {
		for _, p := range g.Members {
			_ = eps[p].Join(g.Name)
		}
	}
	s.RunFor(20 * time.Second)
	t.Log("\n" + rec.Dump())
	for _, g := range topo.Groups {
		for _, p := range g.Members {
			v, ok := eps[p].LWGView(g.Name)
			t.Logf("%s@%v: %v ok=%v", g.Name, p, v, ok)
		}
	}
	t.Log(servers[0].DB().Dump())
}

package naming

import (
	"encoding/gob"
	"sync"
)

var registerOnce sync.Once

// RegisterWireTypes registers the naming service's message types with
// encoding/gob, for transports that serialize messages, and installs the
// binary-codec decoders for the digest/delta anti-entropy messages.
func RegisterWireTypes() {
	registerOnce.Do(func() {
		registerCodecs()
		gob.Register(&msgRequest{})
		gob.Register(&msgReply{})
		gob.Register(&msgSync{})
		gob.Register(&msgDigest{})
		gob.Register(&msgDelta{})
		gob.Register(&MsgMultipleMappings{})
	})
}

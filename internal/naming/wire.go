package naming

import (
	"encoding/gob"
	"sync"
)

var registerOnce sync.Once

// RegisterWireTypes registers the naming service's message types with
// encoding/gob, for transports that serialize messages.
func RegisterWireTypes() {
	registerOnce.Do(func() {
		gob.Register(&msgRequest{})
		gob.Register(&msgReply{})
		gob.Register(&msgSync{})
		gob.Register(&MsgMultipleMappings{})
	})
}

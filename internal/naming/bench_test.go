package naming

import (
	"testing"
	"time"

	"plwg/internal/ids"
)

func benchSeedGroups(db *DB, groups int) {
	for i := 0; i < groups; i++ {
		lwg := ids.LWGID("lwg-" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+i/676)))
		db.Put(Entry{LWG: lwg, View: vid(1, 1), HWG: ids.HWGID(i%5) + 1, Ver: 1, Refreshed: 1})
	}
}

// BenchmarkAntiEntropyRound measures one full digest/delta exchange
// between two servers with 256 groups, one of which changed: the
// steady-state reconcile cost of the naming service.
func BenchmarkAntiEntropyRound(b *testing.B) {
	w := newSrvWorld(b, 2, Config{MappingTTL: -1, SyncInterval: time.Hour, MaxIdleSkips: -1})
	const groups = 256
	benchSeedGroups(w.servers[0].DB(), groups)
	benchSeedGroups(w.servers[1].DB(), groups)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// One group's mapping advances, then a round reconciles it.
		w.servers[0].DB().Put(Entry{
			LWG: "lwg-aaa", View: vid(1, 1), HWG: 1,
			Ver: uint64(i) + 2, Refreshed: 1,
		})
		w.servers[0].antiEntropy()
		w.s.RunFor(100 * time.Millisecond)
	}
}

// BenchmarkDigestVector measures recomputing one group's digest plus
// assembling the vector over 1024 groups with warm caches — the
// per-probe CPU cost at fig-scale size.
func BenchmarkDigestVector(b *testing.B) {
	db := NewDB()
	benchSeedGroups(db, 1024)
	db.DigestVector() // warm the per-group caches
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Put(Entry{LWG: "lwg-aaa", View: vid(1, 1), HWG: 1, Ver: uint64(i) + 2, Refreshed: 1})
		db.DigestVector()
		db.Hash()
	}
}

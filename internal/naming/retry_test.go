package naming

import (
	"testing"
	"time"

	"plwg/internal/ids"
	"plwg/internal/netsim"
	"plwg/internal/sim"
)

// blackholeNet is a minimal netsim.Transport that records every unicast
// and silently drops it (unless answer is set, which replies to each
// request immediately). It isolates the client's retry machinery from
// the full simulated network.
type blackholeNet struct {
	s      *sim.Sim
	sent   []ids.ProcessID // destination of each unicast, in order
	answer func(to ids.ProcessID, req *msgRequest)
}

func (b *blackholeNet) Sim() *sim.Sim                                        { return b.s }
func (b *blackholeNet) Multicast(netsim.NodeID, netsim.Addr, netsim.Message) {}
func (b *blackholeNet) Subscribe(netsim.NodeID, netsim.Addr)                 {}
func (b *blackholeNet) Unsubscribe(netsim.NodeID, netsim.Addr)               {}
func (b *blackholeNet) Unicast(_, to netsim.NodeID, _ netsim.Addr, msg netsim.Message) {
	b.sent = append(b.sent, to)
	if b.answer != nil {
		if req, ok := msg.(*msgRequest); ok {
			b.answer(to, req)
		}
	}
}

func newRetryClient(nServers int, net *blackholeNet, cfg Config) *Client {
	servers := make([]ids.ProcessID, nServers)
	for i := range servers {
		servers[i] = ids.ProcessID(i)
	}
	return NewClient(ClientParams{Net: net, PID: 9, Servers: servers, Config: cfg})
}

// TestRetrySweepsServerListWithBackoff: with every server silent, the
// client must sweep the full list once per round, pause between rounds,
// and only give up after RetryRounds rounds.
func TestRetrySweepsServerListWithBackoff(t *testing.T) {
	s := sim.New(1)
	net := &blackholeNet{s: s}
	cfg := Config{
		RequestTimeout: 100 * time.Millisecond,
		RetryBackoff:   200 * time.Millisecond,
		RetryRounds:    3,
	}
	c := newRetryClient(2, net, cfg)

	done, ok := false, true
	c.ReadLive("a", func(_ []Entry, o bool) { done, ok = true, o })

	// Round 1 (2 servers × 100ms) ends by t=200ms; the old code failed
	// permanently right there.
	s.RunFor(250 * time.Millisecond)
	if done {
		t.Fatal("request gave up after a single pass over the server list")
	}
	if len(net.sent) != 2 {
		t.Fatalf("round 1 sent %d attempts, want 2", len(net.sent))
	}

	// With backoff 200ms (+ up to 50% jitter, doubling, capped) and two
	// more rounds, everything is over well inside 3 seconds.
	s.RunFor(3 * time.Second)
	if !done {
		t.Fatal("request never completed")
	}
	if ok {
		t.Fatal("request reported success with every server silent")
	}
	if len(net.sent) != 6 {
		t.Fatalf("sent %d attempts total, want 3 rounds × 2 servers = 6", len(net.sent))
	}
	// The sweep must rotate through both servers each round.
	seen := map[ids.ProcessID]int{}
	for _, to := range net.sent {
		seen[to]++
	}
	if seen[0] != 3 || seen[1] != 3 {
		t.Fatalf("attempts not spread over the list: %v", seen)
	}
}

// TestRetrySucceedsOnLaterRound: servers that wake up after the first
// sweep (partition heals, loss subsides) must still answer the request —
// the regression this PR fixes.
func TestRetrySucceedsOnLaterRound(t *testing.T) {
	s := sim.New(1)
	net := &blackholeNet{s: s}
	cfg := Config{
		RequestTimeout: 100 * time.Millisecond,
		RetryBackoff:   200 * time.Millisecond,
		RetryRounds:    4,
	}
	c := newRetryClient(2, net, cfg)

	done, ok := false, false
	c.ReadLive("a", func(_ []Entry, o bool) { done, ok = true, o })

	// Let round 1 fail, then "heal": answer every subsequent attempt.
	s.RunFor(250 * time.Millisecond)
	if done {
		t.Fatal("request completed before the heal")
	}
	net.answer = func(_ ids.ProcessID, req *msgRequest) {
		s.After(10*time.Millisecond, func() {
			c.HandleMessage(0, ClientPrefix, &msgReply{ReqID: req.ReqID})
		})
	}
	s.RunFor(3 * time.Second)
	if !done || !ok {
		t.Fatalf("request did not succeed after the heal: done=%v ok=%v", done, ok)
	}
}

// TestReplyStopsAttemptTimer: when the reply lands, the in-flight
// timeout timer must be cancelled, not left to fire into a dead
// closure.
func TestReplyStopsAttemptTimer(t *testing.T) {
	s := sim.New(1)
	net := &blackholeNet{s: s}
	c := newRetryClient(1, net, Config{RequestTimeout: 100 * time.Millisecond})

	c.ReadLive("a", func([]Entry, bool) {})
	p := c.pending[1]
	if p == nil || p.timer == nil {
		t.Fatal("no pending request/timer after issue")
	}
	tm := p.timer
	c.HandleMessage(0, ClientPrefix, &msgReply{ReqID: 1})
	// Stop reports true only if the timer was still pending — i.e. the
	// client failed to cancel it.
	if tm.Stop() {
		t.Fatal("reply left the attempt timer running on the clock")
	}
	// And no retry may fire later.
	s.RunFor(5 * time.Second)
	if len(net.sent) != 1 {
		t.Fatalf("sent %d attempts after a successful reply, want 1", len(net.sent))
	}
}

// TestRetryBackoffGrowsAndCaps: inter-round pauses grow exponentially
// and respect the cap.
func TestRetryBackoffGrowsAndCaps(t *testing.T) {
	s := sim.New(1)
	net := &blackholeNet{s: s}
	cfg := Config{
		RequestTimeout:  50 * time.Millisecond,
		RetryBackoff:    100 * time.Millisecond,
		RetryBackoffMax: 250 * time.Millisecond,
		RetryRounds:     5,
	}
	c := newRetryClient(1, net, cfg)

	var attempts []sim.Time
	net.answer = func(ids.ProcessID, *msgRequest) {
		attempts = append(attempts, s.Now())
	}
	c.ReadLive("a", func([]Entry, bool) {})
	s.RunFor(10 * time.Second)
	if len(attempts) != 5 {
		t.Fatalf("got %d attempts, want 5", len(attempts))
	}
	// Gap between consecutive attempts = RequestTimeout + pause, where
	// pause_i = min(backoff*2^i, cap) + jitter in [0, 50%).
	wantMin := []time.Duration{100, 200, 250, 250} // ms, pre-jitter
	for i := 1; i < len(attempts); i++ {
		gap := time.Duration(attempts[i] - attempts[i-1])
		lo := cfg.RequestTimeout + wantMin[i-1]*time.Millisecond
		hi := cfg.RequestTimeout + wantMin[i-1]*time.Millisecond*3/2
		if gap < lo || gap > hi {
			t.Fatalf("gap %d = %v, want in [%v, %v]", i, gap, lo, hi)
		}
	}
}

package naming

import (
	"reflect"
	"testing"

	"plwg/internal/ids"
	"plwg/internal/wire"
)

// encodeMsg renders a digest/delta message with the binary codec.
func encodeMsg(t testing.TB, m wire.Marshaler) []byte {
	t.Helper()
	var b wire.Buffer
	if !wire.Encode(&b, m) {
		t.Fatalf("message %T did not encode", m)
	}
	return append([]byte(nil), b.B...)
}

// FuzzSyncCodec feeds arbitrary bytes to the digest/delta decoders: they
// must never panic, and anything that decodes must re-encode and decode
// back to the same message (round-trip stability), so a corrupted or
// adversarial datagram cannot corrupt reconciliation state.
func FuzzSyncCodec(f *testing.F) {
	RegisterWireTypes()
	seedDigest := &msgDigest{
		From: 3, Version: digestVersion, Gen: 17, DBHash: 0xfeedface,
		Digests: []LWGDigest{
			{LWG: "alpha", D: Digest{Count: 2, MaxVer: 9, Hash: 0xabc}},
			{LWG: "beta", D: Digest{Count: 1, MaxVer: 1, Hash: 1}},
		},
		Reply: true,
	}
	seedDelta := &msgDelta{
		From: 1,
		Groups: []groupDelta{
			{
				LWG: "alpha",
				D:   Digest{Count: 1, MaxVer: 4, Hash: 42},
				Entries: []Entry{{
					LWG:       "alpha",
					View:      ids.ViewID{Coord: 2, Seq: 3},
					Ancestors: ids.ViewIDs{{Coord: 2, Seq: 1}, {Coord: 2, Seq: 2}},
					HWG:       7,
					HWGView:   ids.ViewID{Coord: 2, Seq: 5},
					Ver:       4,
					Refreshed: 123456789,
					Deleted:   true,
				}},
			},
			{LWG: "empty-request"},
		},
		Reply: false,
	}
	f.Add(encodeMsg(f, seedDigest))
	f.Add(encodeMsg(f, seedDelta))
	f.Add(encodeMsg(f, &msgDigest{From: -1, Version: 99}))
	f.Add(encodeMsg(f, &msgDelta{Reply: true}))
	f.Add([]byte{byte(wireMsgDelta), 0x00, 0x00, 0xff})
	f.Add([]byte{byte(wireMsgDigest)})

	f.Fuzz(func(t *testing.T, raw []byte) {
		m, err := wire.Decode(wire.NewReader(raw))
		if err != nil {
			return
		}
		switch m.(type) {
		case *msgDigest, *msgDelta:
		default:
			return // an identifier of another package's type
		}
		re := encodeMsg(t, m)
		m2, err := wire.Decode(wire.NewReader(re))
		if err != nil {
			t.Fatalf("re-encoded message failed to decode: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("round trip drifted:\n first: %#v\nsecond: %#v", m, m2)
		}
	})
}

// TestSyncCodecRoundTrip pins exact round-trips for representative
// messages (the deterministic complement of the fuzz target).
func TestSyncCodecRoundTrip(t *testing.T) {
	RegisterWireTypes()
	msgs := []wire.Marshaler{
		&msgDigest{From: 2, Version: digestVersion, Gen: 5, DBHash: 999},
		&msgDigest{
			From: 0, Version: digestVersion, Reply: true,
			Digests: []LWGDigest{{LWG: "g", D: Digest{Count: 3, MaxVer: 2, Hash: 7}}},
		},
		&msgDelta{From: 1, Reply: true},
		&msgDelta{From: 3, Groups: []groupDelta{
			{LWG: "x", D: Digest{Count: 1, MaxVer: 1, Hash: 2}, Entries: []Entry{
				{LWG: "x", View: ids.ViewID{Coord: 1, Seq: 2}, HWG: 3, Ver: 1},
			}},
		}},
	}
	for _, m := range msgs {
		got, err := wire.Decode(wire.NewReader(encodeMsg(t, m)))
		if err != nil {
			t.Fatalf("%T: decode: %v", m, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("%T: round trip drifted:\n in:  %#v\n out: %#v", m, m, got)
		}
	}
}

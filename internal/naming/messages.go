package naming

import (
	"time"

	"plwg/internal/ids"
	"plwg/internal/netsim"
)

// Address prefixes. Servers listen on ServerPrefix, clients receive
// replies on ClientPrefix, and the light-weight group layer receives
// MULTIPLE-MAPPINGS callbacks on CallbackPrefix.
const (
	ServerPrefix   = "ns"
	ClientPrefix   = "nsc"
	CallbackPrefix = "nscb"
)

// op is a naming-service operation code.
type op int

const (
	opSetView op = iota + 1
	opReadLive
	opTestSet
	opDelete
)

func (o op) String() string {
	switch o {
	case opSetView:
		return "set-view"
	case opReadLive:
		return "read-live"
	case opTestSet:
		return "test-set"
	case opDelete:
		return "delete"
	default:
		return "unknown"
	}
}

// msgRequest is a client request to one name server.
type msgRequest struct {
	ReqID uint64
	From  ids.ProcessID
	Op    op
	LWG   ids.LWGID
	Entry Entry // for set-view / test-set / delete
}

// WireSize implements netsim.Message.
func (m *msgRequest) WireSize() int { return 32 + m.Entry.wireSize() }

// Kind implements netsim.Kinder.
func (m *msgRequest) Kind() string { return "naming" }

// msgReply answers a client request with the live mappings of the LWG as
// the server now sees them.
type msgReply struct {
	ReqID   uint64
	Entries []Entry
}

// WireSize implements netsim.Message.
func (m *msgReply) WireSize() int {
	n := 16
	for _, e := range m.Entries {
		n += e.wireSize()
	}
	return n
}

// Kind implements netsim.Kinder.
func (m *msgReply) Kind() string { return "naming" }

// msgSync is the anti-entropy exchange: a full copy of the sender's
// database. Reply defers a symmetric copy so one round makes both sides
// equal (push-pull).
type msgSync struct {
	From    ids.ProcessID
	Entries []Entry
	Reply   bool
}

// WireSize implements netsim.Message.
func (m *msgSync) WireSize() int {
	n := 24
	for _, e := range m.Entries {
		n += e.wireSize()
	}
	return n
}

// Kind implements netsim.Kinder.
func (m *msgSync) Kind() string { return "naming-sync" }

// digestVersion identifies the digest wire format. A responder that sees
// a different version cannot interpret the summaries and falls back to a
// full msgSync push, so mixed-version server sets still converge.
const digestVersion = 1

// msgDigest opens a digest/delta anti-entropy exchange. The initiating
// probe (Reply=false) carries only the sender's DB generation and summary
// hash — if the responder's hash matches, the exchange ends with an empty
// delta ack and no database content crosses the wire. Otherwise the
// responder answers with Reply=true and its full digest vector, and the
// initiator computes the differing groups.
type msgDigest struct {
	From    ids.ProcessID
	Version uint8
	Gen     uint64 // sender's DB generation when the exchange started
	DBHash  uint64 // sender's whole-DB summary hash
	Digests []LWGDigest
	Reply   bool
}

// WireSize implements netsim.Message.
func (m *msgDigest) WireSize() int {
	n := 24
	for _, d := range m.Digests {
		n += d.wireSize()
	}
	return n
}

// Kind implements netsim.Kinder.
func (m *msgDigest) Kind() string { return "naming-digest" }

// groupDelta carries one differing LWG: the sender's entries for the
// group plus the digest the sender had (D), so the receiver can tell
// whether its own post-merge state still differs and needs a reverse
// delta. A zero D with no entries asks the receiver to push the group.
type groupDelta struct {
	LWG     ids.LWGID
	D       Digest
	Entries []Entry
}

func (g groupDelta) wireSize() int {
	n := 22 + len(g.LWG)
	for _, e := range g.Entries {
		n += e.wireSize()
	}
	return n
}

// msgDelta carries the entries of only the differing groups. The
// initiator's delta (Reply=false) doubles as the reverse-direction
// request; the responder answers with Reply=true containing only the
// groups that still differ after its merge.
type msgDelta struct {
	From   ids.ProcessID
	Groups []groupDelta
	Reply  bool
}

// WireSize implements netsim.Message.
func (m *msgDelta) WireSize() int {
	n := 16
	for _, g := range m.Groups {
		n += g.wireSize()
	}
	return n
}

// Kind implements netsim.Kinder.
func (m *msgDelta) Kind() string { return "naming-delta" }

// MsgMultipleMappings is the callback of Section 6.1: the naming service
// detected that concurrent views of LWG are mapped onto different HWGs.
// It carries all the mappings stored for the LWG and is unicast to the
// coordinator of every affected view.
type MsgMultipleMappings struct {
	LWG      ids.LWGID
	Mappings []Entry
}

// WireSize implements netsim.Message.
func (m *MsgMultipleMappings) WireSize() int {
	n := 16
	for _, e := range m.Mappings {
		n += e.wireSize()
	}
	return n
}

// Kind implements netsim.Kinder.
func (m *MsgMultipleMappings) Kind() string { return "naming-cb" }

var (
	_ netsim.Message = (*msgRequest)(nil)
	_ netsim.Message = (*msgReply)(nil)
	_ netsim.Message = (*msgSync)(nil)
	_ netsim.Message = (*msgDigest)(nil)
	_ netsim.Message = (*msgDelta)(nil)
	_ netsim.Message = (*MsgMultipleMappings)(nil)
)

// Config holds the naming-service timers.
type Config struct {
	// RequestTimeout bounds one client request to one server before the
	// client fails over to the next server.
	RequestTimeout time.Duration
	// SyncInterval is the anti-entropy period between servers.
	SyncInterval time.Duration
	// NotifyInterval is the period at which persisting conflicts are
	// re-announced to the affected view coordinators.
	NotifyInterval time.Duration
	// MappingTTL is the mapping lease: entries not refreshed within the
	// TTL are expired (collects mappings of views whose members all
	// crashed). Zero disables expiry. Coordinators refresh on
	// core.Config.MappingRefreshInterval, which must be well below this.
	MappingTTL time.Duration
	// RetryBackoff is the pause after one full unanswered pass over the
	// server list before the client starts the next pass. It doubles per
	// round (with jitter) up to RetryBackoffMax.
	RetryBackoff time.Duration
	// RetryBackoffMax caps the exponential backoff.
	RetryBackoffMax time.Duration
	// RetryRounds is how many full passes over the server list a request
	// survives before it completes with ok == false. Under sustained
	// loss a single pass (the old behavior) fails far too eagerly.
	RetryRounds int
	// FullPush restores the original anti-entropy: push the whole
	// database every round instead of the digest/delta exchange. Kept as
	// the baseline for the fig-scale benchmark and the equivalence tests.
	FullPush bool
	// MaxIdleSkips bounds how many consecutive rounds a server may skip
	// probing a peer it already reconciled with while its own generation
	// is unchanged. The periodic forced probe re-verifies convergence,
	// bounding the exposure to lost acks or a summary-hash collision.
	// Zero means the default (8); negative disables skipping entirely.
	MaxIdleSkips int
}

// DefaultConfig returns timers sized for the simulated testbed.
func DefaultConfig() Config {
	return Config{
		RequestTimeout:  150 * time.Millisecond,
		SyncInterval:    300 * time.Millisecond,
		NotifyInterval:  500 * time.Millisecond,
		MappingTTL:      60 * time.Second,
		RetryBackoff:    200 * time.Millisecond,
		RetryBackoffMax: 3 * time.Second,
		RetryRounds:     4,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = d.RequestTimeout
	}
	if c.SyncInterval <= 0 {
		c.SyncInterval = d.SyncInterval
	}
	if c.NotifyInterval <= 0 {
		c.NotifyInterval = d.NotifyInterval
	}
	if c.MappingTTL == 0 {
		c.MappingTTL = d.MappingTTL
	}
	if c.MappingTTL < 0 {
		c.MappingTTL = 0 // explicit "disabled"
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = d.RetryBackoff
	}
	if c.RetryBackoffMax < c.RetryBackoff {
		c.RetryBackoffMax = d.RetryBackoffMax
		if c.RetryBackoffMax < c.RetryBackoff {
			c.RetryBackoffMax = c.RetryBackoff
		}
	}
	if c.RetryRounds == 0 {
		c.RetryRounds = d.RetryRounds
	}
	if c.RetryRounds < 1 {
		c.RetryRounds = 1 // a negative value means "single pass"
	}
	if c.MaxIdleSkips == 0 {
		c.MaxIdleSkips = 8
	}
	if c.MaxIdleSkips < 0 {
		c.MaxIdleSkips = 0 // explicit "never skip"
	}
	return c
}

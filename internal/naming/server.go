package naming

import (
	"fmt"
	"strings"
	"time"

	"plwg/internal/ids"
	"plwg/internal/metrics"
	"plwg/internal/netsim"
	"plwg/internal/sim"
	"plwg/internal/trace"
)

// Server is one name-server replica. Servers are "physically placed in
// strategic locations" (Section 5.2) — in the simulation, on a chosen
// subset of the nodes, e.g. one per prospective partition — and reconcile
// their databases by periodic anti-entropy, which also performs the
// database reconciliation when a partition heals.
//
// Reconciliation is a digest/delta exchange rather than a full database
// push: a round opens with a tiny probe carrying the initiator's
// whole-database summary hash; only if the hashes differ does the peer
// answer with its per-LWG digest vector, and only the groups whose
// digests differ have their entries shipped (in both directions, so one
// exchange still reconciles both replicas). Config.FullPush restores the
// original push-pull baseline.
type Server struct {
	pid    ids.ProcessID
	net    netsim.Transport
	clock  *sim.Sim
	cfg    Config
	db     *DB
	peers  []ids.ProcessID // other servers, in ring order
	next   int             // round-robin anti-entropy cursor
	tracer trace.Tracer

	// sync tracks per-peer exchange state for the idle-skip rule.
	sync map[ids.ProcessID]*peerSync
	// stats counts anti-entropy work (see SyncStats for the names),
	// backed by the injected metrics registry.
	stats *srvMetrics

	// notified remembers the last conflict snapshot announced per LWG so
	// unchanged conflicts are re-announced only by the periodic timer.
	notified map[ids.LWGID]string

	syncTicker   *sim.Ticker
	notifyTicker *sim.Ticker
	expireTicker *sim.Ticker
}

// peerSync is one peer's anti-entropy exchange state.
type peerSync struct {
	// done is true after a completed exchange; doneGen is OUR generation
	// snapshot taken when that exchange started. While the generation
	// still equals doneGen we know nothing new has appeared locally since
	// the peer last saw our state, so the round can be skipped. Snapshot
	// at start (not completion) is deliberately conservative: entries
	// merged during the exchange advance the generation past doneGen and
	// force one cheap confirming probe next round.
	done    bool
	doneGen uint64
	// skipped counts consecutive skipped rounds; a forced probe every
	// MaxIdleSkips rounds bounds the exposure to a lost ack or a
	// summary-hash collision.
	skipped int
	// pending/startGen bracket an exchange in flight: startGen is the
	// generation snapshot when we sent our probe or digest vector.
	pending  bool
	startGen uint64
}

// ServerParams bundles the dependencies of a Server.
type ServerParams struct {
	Net    netsim.Transport
	PID    ids.ProcessID
	Peers  []ids.ProcessID // all server pids (may include PID)
	Config Config
	Tracer trace.Tracer
	// Metrics receives the server's anti-entropy counters (as
	// ns_<name>_total); when nil a private registry backs SyncStats.
	Metrics *metrics.Registry
}

// NewServer creates a name server on the node. The caller must route mux
// prefix ServerPrefix to HandleMessage and call Start.
func NewServer(p ServerParams) *Server {
	tr := p.Tracer
	if tr == nil {
		tr = trace.Nop{}
	}
	var peers []ids.ProcessID
	for _, q := range p.Peers {
		if q != p.PID {
			peers = append(peers, q)
		}
	}
	return &Server{
		pid:      p.PID,
		net:      p.Net,
		clock:    p.Net.Sim(),
		cfg:      p.Config.withDefaults(),
		db:       NewDB(),
		peers:    peers,
		tracer:   tr,
		sync:     make(map[ids.ProcessID]*peerSync),
		stats:    newSrvMetrics(p.Metrics),
		notified: make(map[ids.LWGID]string),
	}
}

// Start arms the anti-entropy and conflict-notification timers.
func (s *Server) Start() {
	if s.syncTicker != nil {
		return
	}
	// Stagger by pid so servers do not sync in lockstep.
	phase := s.cfg.SyncInterval * time.Duration(int(s.pid)%7) / 7
	s.clock.After(phase, func() {
		if s.syncTicker != nil {
			return
		}
		s.syncTicker = s.clock.Every(s.cfg.SyncInterval, s.antiEntropy)
		s.notifyTicker = s.clock.Every(s.cfg.NotifyInterval, s.renotifyConflicts)
		if s.cfg.MappingTTL > 0 {
			s.expireTicker = s.clock.Every(s.cfg.MappingTTL/4, s.expireLeases)
		}
	})
}

// filterLapsed drops entries whose lease has already lapsed. Without this
// admission check, two servers with offset expiry scans resurrect each
// other's garbage through anti-entropy forever: each deletes the entry,
// then re-learns it from the peer before the peer's own scan fires.
func (s *Server) filterLapsed(entries []Entry) []Entry {
	if s.cfg.MappingTTL <= 0 {
		return entries
	}
	cutoff := int64(s.clock.Now()) - int64(s.cfg.MappingTTL)
	out := entries[:0]
	for _, e := range entries {
		if e.Refreshed >= cutoff {
			out = append(out, e)
		}
	}
	return out
}

// expireLeases collects mappings whose lease lapsed (dead-view garbage)
// and re-examines only the groups that lost entries.
func (s *Server) expireLeases() {
	dirty := s.db.Expire(int64(s.clock.Now()), s.cfg.MappingTTL)
	if len(dirty) == 0 {
		return
	}
	s.trace("expire", "collected lapsed mapping leases in %d groups", len(dirty))
	for _, lwg := range dirty {
		s.checkConflict(lwg)
	}
}

// Stop cancels the server's timers.
func (s *Server) Stop() {
	if s.syncTicker != nil {
		s.syncTicker.Stop()
		s.syncTicker = nil
	}
	if s.notifyTicker != nil {
		s.notifyTicker.Stop()
		s.notifyTicker = nil
	}
	if s.expireTicker != nil {
		s.expireTicker.Stop()
		s.expireTicker = nil
	}
}

// DB exposes the server's database for introspection (scenario dumps of
// Tables 3 and 4).
func (s *Server) DB() *DB { return s.db }

// PID returns the server's node.
func (s *Server) PID() ids.ProcessID { return s.pid }

// SyncStats returns a snapshot of the server's anti-entropy counters:
//
//	rounds          anti-entropy timer fires with at least one peer
//	skipped         rounds skipped by the idle rule (no probe sent)
//	probes_sent     digest probes opened
//	vectors_sent    digest-vector replies sent
//	deltas_sent     delta messages sent (either direction)
//	delta_groups    groups whose entries were shipped in deltas
//	delta_entries   entries shipped in deltas
//	fulls_sent      full-database syncs sent (baseline or fallback)
//	full_fallback   full syncs forced by a digest-version mismatch
//	merge_entries   entries passed to DB.Merge from sync messages
//	merge_changed   groups actually changed by sync merges
//	conflict_checks per-group conflict examinations after merges
//	sync_bytes      modeled bytes of all sync messages sent
//	exchanges_done  completed digest exchanges (both legs)
func (s *Server) SyncStats() map[string]int64 { return s.stats.snapshot() }

// ResetSyncStats starts a fresh counting window (benchmark windows). The
// underlying registry counters stay monotonic; SyncStats reports deltas
// against the window start.
func (s *Server) ResetSyncStats() { s.stats.reset() }

// HandleMessage is the network receive entry point for ServerPrefix.
func (s *Server) HandleMessage(from netsim.NodeID, _ netsim.Addr, msg netsim.Message) {
	switch m := msg.(type) {
	case *msgRequest:
		s.onRequest(from, m)
	case *msgSync:
		s.onSync(m)
	case *msgDigest:
		s.onDigest(m)
	case *msgDelta:
		s.onDelta(m)
	}
}

func (s *Server) onRequest(from netsim.NodeID, r *msgRequest) {
	changed := false
	switch r.Op {
	case opSetView:
		changed = s.db.Put(r.Entry)
	case opTestSet:
		// Atomic at this server: install the mapping only if the LWG has
		// no live mapping yet; either way the reply carries the current
		// live set.
		if len(s.db.Live(r.LWG)) == 0 {
			changed = s.db.Put(r.Entry)
		}
	case opDelete:
		e := r.Entry
		e.Deleted = true
		changed = s.db.Put(e)
	case opReadLive:
		// read-only
	}
	s.net.Unicast(s.pid, from, ClientPrefix, &msgReply{
		ReqID:   r.ReqID,
		Entries: s.db.Live(r.LWG),
	})
	if changed {
		s.trace("update", "%s %s by %v", r.Op, r.LWG, from)
		s.checkConflict(r.LWG)
	}
}

// peerState returns (creating if needed) the exchange state for a peer.
func (s *Server) peerState(peer ids.ProcessID) *peerSync {
	st := s.sync[peer]
	if st == nil {
		st = &peerSync{}
		s.sync[peer] = st
	}
	return st
}

// sendSync sends one anti-entropy message and accounts its modeled size.
func (s *Server) sendSync(peer ids.ProcessID, m netsim.Message) {
	s.stats.add("sync_bytes", int64(m.WireSize()))
	s.net.Unicast(s.pid, peer, ServerPrefix, m)
}

// antiEntropy runs one reconciliation round against the next ring peer.
//
// Baseline (Config.FullPush): push the full database; the peer merges and
// answers with its own database (push-pull), so one exchange reconciles
// both replicas — including after a partition heals.
//
// Digest mode: if our generation has not moved since the last completed
// exchange with this peer, skip the round entirely (bounded by
// MaxIdleSkips). Otherwise open with a probe carrying only our summary
// hash; the entry exchange happens in onDigest/onDelta and only for the
// groups that actually differ.
func (s *Server) antiEntropy() {
	if len(s.peers) == 0 {
		return
	}
	peer := s.peers[s.next%len(s.peers)]
	s.next++
	s.stats.add("rounds", 1)
	if s.cfg.FullPush {
		s.stats.add("fulls_sent", 1)
		s.sendSync(peer, &msgSync{From: s.pid, Entries: s.db.All()})
		return
	}
	st := s.peerState(peer)
	if st.done && st.doneGen == s.db.Generation() && st.skipped < s.cfg.MaxIdleSkips {
		st.skipped++
		s.stats.add("skipped", 1)
		return
	}
	st.skipped = 0
	st.pending = true
	st.startGen = s.db.Generation()
	s.stats.add("probes_sent", 1)
	s.tracer.Trace(trace.Event{
		At:    s.clock.Now(),
		Node:  s.pid,
		Layer: "ns",
		What:  trace.NSDigest,
		Ref:   peer.String(),
		Text:  fmt.Sprintf("probe to %v gen=%d", peer, st.startGen),
	})
	s.sendSync(peer, &msgDigest{
		From:    s.pid,
		Version: digestVersion,
		Gen:     st.startGen,
		DBHash:  s.db.Hash(),
	})
}

// fallbackFull answers an uninterpretable digest message with the legacy
// full push, so mixed-format server sets still converge: the peer merges
// the entries and (for a non-reply sync) pushes its own database back.
func (s *Server) fallbackFull(peer ids.ProcessID) {
	s.trace("reconcile", "digest version mismatch with %v; full sync", peer)
	s.stats.add("full_fallback", 1)
	s.stats.add("fulls_sent", 1)
	s.sendSync(peer, &msgSync{From: s.pid, Entries: s.db.All()})
}

func (s *Server) onDigest(m *msgDigest) {
	if m.Version != digestVersion {
		s.fallbackFull(m.From)
		return
	}
	if !m.Reply {
		// Probe from an initiator. Equal summary hashes end the exchange
		// with an empty ack — and tell us the peer has our state, so our
		// own next round against it can skip too.
		if m.DBHash == s.db.Hash() {
			st := s.peerState(m.From)
			st.done = true
			st.doneGen = s.db.Generation()
			st.pending = false
			s.stats.add("deltas_sent", 1)
			s.sendSync(m.From, &msgDelta{From: s.pid, Reply: true})
			return
		}
		// Hashes differ: answer with our digest vector; the initiator
		// computes the differing groups. Completion for our side is the
		// initiator's delta (handled in onDelta).
		st := s.peerState(m.From)
		st.pending = true
		st.startGen = s.db.Generation()
		s.stats.add("vectors_sent", 1)
		s.tracer.Trace(trace.Event{
			At:    s.clock.Now(),
			Node:  s.pid,
			Layer: "ns",
			What:  trace.NSDigest,
			Ref:   m.From.String(),
			Text:  fmt.Sprintf("digest vector to %v (hash differs)", m.From),
		})
		s.sendSync(m.From, &msgDigest{
			From:    s.pid,
			Version: digestVersion,
			Gen:     st.startGen,
			DBHash:  s.db.Hash(),
			Digests: s.db.DigestVector(),
			Reply:   true,
		})
		return
	}
	// Digest vector from the responder: ship entries for every group
	// whose digests differ, and ask (zero digest, no entries) for groups
	// only the responder has. The delta also carries our digest per
	// group so the responder can tell whether a reverse delta is needed.
	diff := diffDigests(s.db.DigestVector(), m.Digests)
	groups := make([]groupDelta, 0, len(diff))
	for _, lwg := range diff {
		groups = append(groups, groupDelta{
			LWG:     lwg,
			D:       s.db.DigestOf(lwg),
			Entries: s.db.EntriesOf(lwg),
		})
	}
	s.stats.add("deltas_sent", 1)
	s.stats.add("delta_groups", int64(len(groups)))
	for _, g := range groups {
		s.stats.add("delta_entries", int64(len(g.Entries)))
	}
	s.sendSync(m.From, &msgDelta{From: s.pid, Groups: groups})
}

func (s *Server) onDelta(m *msgDelta) {
	// Merge what the peer sent, tracking which groups changed.
	var dirty []ids.LWGID
	entries := 0
	for _, g := range m.Groups {
		entries += len(g.Entries)
		dirty = append(dirty, s.db.Merge(s.filterLapsed(g.Entries))...)
	}
	if !m.Reply {
		// Initiator's delta: answer with our entries for every group
		// whose post-merge digest still differs from the one the
		// initiator reported — those are exactly the groups where the
		// initiator's state is not yet the merge of both replicas.
		reply := make([]groupDelta, 0, len(m.Groups))
		for _, g := range m.Groups {
			d := s.db.DigestOf(g.LWG)
			if d == g.D {
				continue
			}
			reply = append(reply, groupDelta{
				LWG:     g.LWG,
				D:       d,
				Entries: s.db.EntriesOf(g.LWG),
			})
		}
		s.stats.add("deltas_sent", 1)
		s.stats.add("delta_groups", int64(len(reply)))
		for _, g := range reply {
			s.stats.add("delta_entries", int64(len(g.Entries)))
		}
		s.sendSync(m.From, &msgDelta{From: s.pid, Groups: reply, Reply: true})
	}
	// Either side: receiving a delta completes the exchange in flight.
	if st := s.sync[m.From]; st != nil && st.pending {
		st.pending = false
		st.done = true
		st.doneGen = st.startGen
		st.skipped = 0
		s.stats.add("exchanges_done", 1)
	}
	if len(dirty) > 0 {
		s.stats.add("merge_entries", int64(entries))
		s.stats.add("merge_changed", int64(len(dirty)))
		s.trace("reconcile", "merged delta of %d groups from %v", len(m.Groups), m.From)
		s.checkConflicts(dirty)
	}
}

func (s *Server) onSync(m *msgSync) {
	dirty := s.db.Merge(s.filterLapsed(m.Entries))
	if !m.Reply {
		s.stats.add("fulls_sent", 1)
		s.sendSync(m.From, &msgSync{From: s.pid, Entries: s.db.All(), Reply: true})
	}
	if len(dirty) > 0 {
		s.stats.add("merge_entries", int64(len(m.Entries)))
		s.stats.add("merge_changed", int64(len(dirty)))
		s.trace("reconcile", "merged %d entries from %v", len(m.Entries), m.From)
		s.checkConflicts(dirty)
	}
}

// checkConflicts re-examines only the given (dirty) groups.
func (s *Server) checkConflicts(lwgs []ids.LWGID) {
	for _, lwg := range lwgs {
		s.checkConflict(lwg)
	}
}

// checkConflict sends MULTIPLE-MAPPINGS to the coordinator of every live
// view of the LWG when concurrent views are mapped onto different HWGs
// (the global peer discovery of Section 6.1).
func (s *Server) checkConflict(lwg ids.LWGID) {
	s.stats.add("conflict_checks", 1)
	if !s.db.Conflict(lwg) {
		delete(s.notified, lwg)
		return
	}
	live := s.db.Live(lwg)
	snap := snapshot(live)
	if s.notified[lwg] == snap {
		return // unchanged; the periodic timer re-announces
	}
	s.notified[lwg] = snap
	s.notify(lwg, live)
}

// renotifyConflicts periodically re-announces persisting conflicts, in
// case an earlier callback was lost to a partition or raced a view
// change.
func (s *Server) renotifyConflicts() {
	for _, lwg := range s.db.LWGs() {
		if s.db.Conflict(lwg) {
			live := s.db.Live(lwg)
			s.notified[lwg] = snapshot(live)
			s.notify(lwg, live)
		}
	}
}

func (s *Server) notify(lwg ids.LWGID, live []Entry) {
	targets := make(map[ids.ProcessID]bool)
	for _, e := range live {
		targets[e.View.Coord] = true
	}
	coords := make(ids.Members, 0, len(targets))
	for coord := range targets {
		coords = append(coords, coord)
	}
	coords = ids.NewMembers(coords...) // deterministic emission order
	s.tracer.Trace(trace.Event{
		At:    s.clock.Now(),
		Node:  s.pid,
		Layer: "ns",
		What:  "multiple-mappings",
		Text:  fmt.Sprintf("%s has %d conflicting mappings", lwg, len(live)),
		Group: string(lwg),
	})
	for _, coord := range coords {
		s.net.Unicast(s.pid, coord, CallbackPrefix, &MsgMultipleMappings{
			LWG:      lwg,
			Mappings: append([]Entry(nil), live...),
		})
	}
}

func snapshot(es []Entry) string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = fmt.Sprintf("%v>%v@%d", e.View, e.HWG, e.Ver)
	}
	return strings.Join(parts, ";")
}

func (s *Server) trace(what, format string, args ...any) {
	s.tracer.Trace(trace.Event{
		At:    s.clock.Now(),
		Node:  s.pid,
		Layer: "ns",
		What:  what,
		Text:  fmt.Sprintf(format, args...),
	})
}

package naming

import (
	"fmt"
	"strings"
	"time"

	"plwg/internal/ids"
	"plwg/internal/netsim"
	"plwg/internal/sim"
	"plwg/internal/trace"
)

// Server is one name-server replica. Servers are "physically placed in
// strategic locations" (Section 5.2) — in the simulation, on a chosen
// subset of the nodes, e.g. one per prospective partition — and reconcile
// their databases by periodic push-pull anti-entropy, which also performs
// the database reconciliation when a partition heals.
type Server struct {
	pid    ids.ProcessID
	net    netsim.Transport
	clock  *sim.Sim
	cfg    Config
	db     *DB
	peers  []ids.ProcessID // other servers, in ring order
	next   int             // round-robin anti-entropy cursor
	tracer trace.Tracer

	// notified remembers the last conflict snapshot announced per LWG so
	// unchanged conflicts are re-announced only by the periodic timer.
	notified map[ids.LWGID]string

	syncTicker   *sim.Ticker
	notifyTicker *sim.Ticker
	expireTicker *sim.Ticker
}

// ServerParams bundles the dependencies of a Server.
type ServerParams struct {
	Net    netsim.Transport
	PID    ids.ProcessID
	Peers  []ids.ProcessID // all server pids (may include PID)
	Config Config
	Tracer trace.Tracer
}

// NewServer creates a name server on the node. The caller must route mux
// prefix ServerPrefix to HandleMessage and call Start.
func NewServer(p ServerParams) *Server {
	tr := p.Tracer
	if tr == nil {
		tr = trace.Nop{}
	}
	var peers []ids.ProcessID
	for _, q := range p.Peers {
		if q != p.PID {
			peers = append(peers, q)
		}
	}
	return &Server{
		pid:      p.PID,
		net:      p.Net,
		clock:    p.Net.Sim(),
		cfg:      p.Config.withDefaults(),
		db:       NewDB(),
		peers:    peers,
		tracer:   tr,
		notified: make(map[ids.LWGID]string),
	}
}

// Start arms the anti-entropy and conflict-notification timers.
func (s *Server) Start() {
	if s.syncTicker != nil {
		return
	}
	// Stagger by pid so servers do not sync in lockstep.
	phase := s.cfg.SyncInterval * time.Duration(int(s.pid)%7) / 7
	s.clock.After(phase, func() {
		if s.syncTicker != nil {
			return
		}
		s.syncTicker = s.clock.Every(s.cfg.SyncInterval, s.antiEntropy)
		s.notifyTicker = s.clock.Every(s.cfg.NotifyInterval, s.renotifyConflicts)
		if s.cfg.MappingTTL > 0 {
			s.expireTicker = s.clock.Every(s.cfg.MappingTTL/4, s.expireLeases)
		}
	})
}

// filterLapsed drops entries whose lease has already lapsed. Without this
// admission check, two servers with offset expiry scans resurrect each
// other's garbage through anti-entropy forever: each deletes the entry,
// then re-learns it from the peer before the peer's own scan fires.
func (s *Server) filterLapsed(entries []Entry) []Entry {
	if s.cfg.MappingTTL <= 0 {
		return entries
	}
	cutoff := int64(s.clock.Now()) - int64(s.cfg.MappingTTL)
	out := entries[:0]
	for _, e := range entries {
		if e.Refreshed >= cutoff {
			out = append(out, e)
		}
	}
	return out
}

// expireLeases collects mappings whose lease lapsed (dead-view garbage).
func (s *Server) expireLeases() {
	if s.db.Expire(int64(s.clock.Now()), s.cfg.MappingTTL) {
		s.trace("expire", "collected lapsed mapping leases")
		for _, lwg := range s.db.LWGs() {
			s.checkConflict(lwg)
		}
	}
}

// Stop cancels the server's timers.
func (s *Server) Stop() {
	if s.syncTicker != nil {
		s.syncTicker.Stop()
		s.syncTicker = nil
	}
	if s.notifyTicker != nil {
		s.notifyTicker.Stop()
		s.notifyTicker = nil
	}
	if s.expireTicker != nil {
		s.expireTicker.Stop()
		s.expireTicker = nil
	}
}

// DB exposes the server's database for introspection (scenario dumps of
// Tables 3 and 4).
func (s *Server) DB() *DB { return s.db }

// PID returns the server's node.
func (s *Server) PID() ids.ProcessID { return s.pid }

// HandleMessage is the network receive entry point for ServerPrefix.
func (s *Server) HandleMessage(from netsim.NodeID, _ netsim.Addr, msg netsim.Message) {
	switch m := msg.(type) {
	case *msgRequest:
		s.onRequest(from, m)
	case *msgSync:
		s.onSync(m)
	}
}

func (s *Server) onRequest(from netsim.NodeID, r *msgRequest) {
	changed := false
	switch r.Op {
	case opSetView:
		changed = s.db.Put(r.Entry)
	case opTestSet:
		// Atomic at this server: install the mapping only if the LWG has
		// no live mapping yet; either way the reply carries the current
		// live set.
		if len(s.db.Live(r.LWG)) == 0 {
			changed = s.db.Put(r.Entry)
		}
	case opDelete:
		e := r.Entry
		e.Deleted = true
		changed = s.db.Put(e)
	case opReadLive:
		// read-only
	}
	s.net.Unicast(s.pid, from, ClientPrefix, &msgReply{
		ReqID:   r.ReqID,
		Entries: s.db.Live(r.LWG),
	})
	if changed {
		s.trace("update", "%s %s by %v", r.Op, r.LWG, from)
		s.checkConflict(r.LWG)
	}
}

// antiEntropy pushes the full database to the next peer in the ring; the
// peer merges and answers with its own database (push-pull), so one
// exchange reconciles both replicas — including after a partition heals.
func (s *Server) antiEntropy() {
	if len(s.peers) == 0 {
		return
	}
	peer := s.peers[s.next%len(s.peers)]
	s.next++
	s.net.Unicast(s.pid, peer, ServerPrefix, &msgSync{From: s.pid, Entries: s.db.All()})
}

func (s *Server) onSync(m *msgSync) {
	changed := s.db.Merge(s.filterLapsed(m.Entries))
	if !m.Reply {
		s.net.Unicast(s.pid, m.From, ServerPrefix, &msgSync{
			From: s.pid, Entries: s.db.All(), Reply: true,
		})
	}
	if changed {
		s.trace("reconcile", "merged %d entries from %v", len(m.Entries), m.From)
		for _, lwg := range s.db.LWGs() {
			s.checkConflict(lwg)
		}
	}
}

// checkConflict sends MULTIPLE-MAPPINGS to the coordinator of every live
// view of the LWG when concurrent views are mapped onto different HWGs
// (the global peer discovery of Section 6.1).
func (s *Server) checkConflict(lwg ids.LWGID) {
	if !s.db.Conflict(lwg) {
		delete(s.notified, lwg)
		return
	}
	live := s.db.Live(lwg)
	snap := snapshot(live)
	if s.notified[lwg] == snap {
		return // unchanged; the periodic timer re-announces
	}
	s.notified[lwg] = snap
	s.notify(lwg, live)
}

// renotifyConflicts periodically re-announces persisting conflicts, in
// case an earlier callback was lost to a partition or raced a view
// change.
func (s *Server) renotifyConflicts() {
	for _, lwg := range s.db.LWGs() {
		if s.db.Conflict(lwg) {
			live := s.db.Live(lwg)
			s.notified[lwg] = snapshot(live)
			s.notify(lwg, live)
		}
	}
}

func (s *Server) notify(lwg ids.LWGID, live []Entry) {
	targets := make(map[ids.ProcessID]bool)
	for _, e := range live {
		targets[e.View.Coord] = true
	}
	coords := make(ids.Members, 0, len(targets))
	for coord := range targets {
		coords = append(coords, coord)
	}
	coords = ids.NewMembers(coords...) // deterministic emission order
	s.tracer.Trace(trace.Event{
		At:    s.clock.Now(),
		Node:  s.pid,
		Layer: "ns",
		What:  "multiple-mappings",
		Text:  fmt.Sprintf("%s has %d conflicting mappings", lwg, len(live)),
		Group: string(lwg),
	})
	for _, coord := range coords {
		s.net.Unicast(s.pid, coord, CallbackPrefix, &MsgMultipleMappings{
			LWG:      lwg,
			Mappings: append([]Entry(nil), live...),
		})
	}
}

func snapshot(es []Entry) string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = fmt.Sprintf("%v>%v@%d", e.View, e.HWG, e.Ver)
	}
	return strings.Join(parts, ";")
}

func (s *Server) trace(what, format string, args ...any) {
	s.tracer.Trace(trace.Event{
		At:    s.clock.Now(),
		Node:  s.pid,
		Layer: "ns",
		What:  what,
		Text:  fmt.Sprintf(format, args...),
	})
}

package naming

import (
	"testing"

	"plwg/internal/ids"
)

// FuzzDBMerge decodes arbitrary bytes into a stream of entry operations
// and checks the database invariants hold under any input: merge
// idempotence, tombstone stickiness, and no live entry with an ancestor
// also live.
func FuzzDBMerge(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{255, 254, 1, 9, 3, 200, 17, 5, 5, 5, 5, 90})
	f.Fuzz(func(t *testing.T, raw []byte) {
		entries := decodeEntries(raw)
		db := NewDB()
		db.Merge(entries)
		dump1 := db.Dump()
		// Idempotence.
		if dirty := db.Merge(entries); len(dirty) != 0 {
			t.Fatalf("re-merge reported change in %v\ninput: %v", dirty, entries)
		}
		if db.Dump() != dump1 {
			t.Fatal("re-merge changed the database")
		}
		// Invariant: no live entry is an ancestor of another entry of
		// the same LWG.
		for _, lwg := range db.LWGs() {
			live := db.Live(lwg)
			for _, a := range live {
				for _, b := range live {
					if a.View != b.View && db.Concurrent(lwg, a.View, b.View) == false &&
						db.genealogy(lwg).IsAncestor(a.View, b.View) {
						t.Fatalf("live ancestor survived GC: %v < %v", a.View, b.View)
					}
				}
			}
		}
		// Order independence: merging in reverse yields the same state.
		rev := make([]Entry, len(entries))
		for i, e := range entries {
			rev[len(entries)-1-i] = e
		}
		db2 := NewDB()
		db2.Merge(rev)
		if db2.Dump() != dump1 {
			t.Fatalf("merge order dependence:\n%s\nvs\n%s", dump1, db2.Dump())
		}
	})
}

// decodeEntries makes a deterministic entry stream out of fuzz bytes.
// Small ID spaces force collisions, ancestry and tombstone interactions.
func decodeEntries(raw []byte) []Entry {
	var out []Entry
	for i := 0; i+5 < len(raw); i += 6 {
		e := Entry{
			LWG:       ids.LWGID(string(rune('a' + raw[i]%3))),
			View:      ids.ViewID{Coord: ids.ProcessID(raw[i+1] % 4), Seq: uint64(raw[i+2]%8) + 1},
			HWG:       ids.HWGID(raw[i+3]%4) + 1,
			Ver:       uint64(raw[i+4] % 8),
			Deleted:   raw[i+5]&1 == 1,
			Refreshed: int64(raw[i+5]),
		}
		// Ancestors: derive deterministically from the byte soup, but
		// keep the genealogy a DAG as the protocol guarantees (an
		// ancestor causally precedes its descendant): generated edges
		// always point to strictly smaller sequence numbers.
		if raw[i+5]&2 != 0 && e.View.Seq > 1 {
			anc := ids.ViewID{Coord: ids.ProcessID(raw[i+5] % 4), Seq: uint64(raw[i+4])%e.View.Seq + 1}
			if anc.Seq < e.View.Seq {
				e.Ancestors = ids.ViewIDs{anc}
			}
		}
		out = append(out, e)
	}
	return out
}

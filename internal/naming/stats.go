package naming

import "plwg/internal/metrics"

// syncStatNames are the anti-entropy work counters, in reporting order
// (see Server.SyncStats for their meanings).
var syncStatNames = []string{
	"rounds",
	"skipped",
	"probes_sent",
	"vectors_sent",
	"deltas_sent",
	"delta_groups",
	"delta_entries",
	"fulls_sent",
	"full_fallback",
	"merge_entries",
	"merge_changed",
	"conflict_checks",
	"sync_bytes",
	"exchanges_done",
}

// srvMetrics backs the server's anti-entropy counters with a metrics
// registry (shared when one is injected through ServerParams.Metrics,
// private otherwise so SyncStats keeps working). Registry counters are
// monotonic; ResetSyncStats therefore records a baseline and SyncStats
// reports deltas against it, preserving the old windowed semantics
// without un-publishing the cumulative values.
type srvMetrics struct {
	counters map[string]*metrics.Counter
	base     map[string]int64
}

func newSrvMetrics(r *metrics.Registry) *srvMetrics {
	if r == nil {
		r = metrics.NewRegistry()
	}
	sm := &srvMetrics{
		counters: make(map[string]*metrics.Counter, len(syncStatNames)),
		base:     make(map[string]int64, len(syncStatNames)),
	}
	for _, n := range syncStatNames {
		sm.counters[n] = r.Counter("ns_" + n + "_total")
	}
	return sm
}

func (sm *srvMetrics) add(name string, delta int64) {
	sm.counters[name].Add(delta)
}

func (sm *srvMetrics) snapshot() map[string]int64 {
	out := make(map[string]int64, len(syncStatNames))
	for _, n := range syncStatNames {
		if v := sm.counters[n].Value() - sm.base[n]; v != 0 {
			out[n] = v
		}
	}
	return out
}

func (sm *srvMetrics) reset() {
	for _, n := range syncStatNames {
		sm.base[n] = sm.counters[n].Value()
	}
}

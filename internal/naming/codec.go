package naming

import (
	"plwg/internal/ids"
	"plwg/internal/wire"
)

// Binary-codec support (internal/wire) for the digest/delta anti-entropy
// messages — the naming traffic that recurs every sync round on the real
// transport. The request/reply and legacy full-sync messages are rare or
// fallback-only and stay on gob. Identifiers 32–47 are reserved for this
// package.

const (
	wireMsgDigest byte = iota + 32
	wireMsgDelta
)

func putNamingViewID(b *wire.Buffer, v ids.ViewID) {
	b.Int64(int64(v.Coord))
	b.Uint64(v.Seq)
}

func getNamingViewID(r *wire.Reader) ids.ViewID {
	return ids.ViewID{Coord: ids.ProcessID(r.Int64()), Seq: r.Uint64()}
}

func putEntry(b *wire.Buffer, e *Entry) {
	b.String(string(e.LWG))
	putNamingViewID(b, e.View)
	b.Uint64(uint64(len(e.Ancestors)))
	for _, a := range e.Ancestors {
		putNamingViewID(b, a)
	}
	b.Int64(int64(e.HWG))
	putNamingViewID(b, e.HWGView)
	b.Uint64(e.Ver)
	b.Int64(e.Refreshed)
	b.Bool(e.Deleted)
}

func getEntry(r *wire.Reader) Entry {
	var e Entry
	e.LWG = ids.LWGID(r.String())
	e.View = getNamingViewID(r)
	n := r.Uint64()
	if n > uint64(r.Len()) { // each ancestor takes ≥ 2 bytes
		r.Bytes() // force the sticky error via an oversized read
		return e
	}
	if n > 0 && r.Err() == nil {
		e.Ancestors = make(ids.ViewIDs, 0, n)
		for i := uint64(0); i < n && r.Err() == nil; i++ {
			e.Ancestors = append(e.Ancestors, getNamingViewID(r))
		}
	}
	e.HWG = ids.HWGID(r.Int64())
	e.HWGView = getNamingViewID(r)
	e.Ver = r.Uint64()
	e.Refreshed = r.Int64()
	e.Deleted = r.Bool()
	return e
}

// WireID implements wire.Marshaler.
func (m *msgDigest) WireID() byte { return wireMsgDigest }

// MarshalWire implements wire.Marshaler.
func (m *msgDigest) MarshalWire(b *wire.Buffer) bool {
	b.Int64(int64(m.From))
	b.Byte(m.Version)
	b.Uint64(m.Gen)
	b.Uint64(m.DBHash)
	b.Bool(m.Reply)
	b.Uint64(uint64(len(m.Digests)))
	for _, d := range m.Digests {
		b.String(string(d.LWG))
		b.Uint64(uint64(d.D.Count))
		b.Uint64(d.D.MaxVer)
		b.Uint64(d.D.Hash)
	}
	return true
}

// WireID implements wire.Marshaler.
func (m *msgDelta) WireID() byte { return wireMsgDelta }

// MarshalWire implements wire.Marshaler.
func (m *msgDelta) MarshalWire(b *wire.Buffer) bool {
	b.Int64(int64(m.From))
	b.Bool(m.Reply)
	b.Uint64(uint64(len(m.Groups)))
	for i := range m.Groups {
		g := &m.Groups[i]
		b.String(string(g.LWG))
		b.Uint64(uint64(g.D.Count))
		b.Uint64(g.D.MaxVer)
		b.Uint64(g.D.Hash)
		b.Uint64(uint64(len(g.Entries)))
		for j := range g.Entries {
			putEntry(b, &g.Entries[j])
		}
	}
	return true
}

func registerCodecs() {
	wire.Register(wireMsgDigest, func(r *wire.Reader) (wire.Marshaler, error) {
		m := &msgDigest{From: ids.ProcessID(r.Int64())}
		m.Version = r.Byte()
		m.Gen = r.Uint64()
		m.DBHash = r.Uint64()
		m.Reply = r.Bool()
		n := r.Uint64()
		if n > uint64(r.Len()) { // each element takes ≥ 4 bytes
			return nil, wire.ErrTruncated
		}
		if n > 0 && r.Err() == nil {
			m.Digests = make([]LWGDigest, 0, n)
			for i := uint64(0); i < n && r.Err() == nil; i++ {
				d := LWGDigest{LWG: ids.LWGID(r.String())}
				d.D.Count = uint32(r.Uint64())
				d.D.MaxVer = r.Uint64()
				d.D.Hash = r.Uint64()
				m.Digests = append(m.Digests, d)
			}
		}
		return m, r.Err()
	})
	wire.Register(wireMsgDelta, func(r *wire.Reader) (wire.Marshaler, error) {
		m := &msgDelta{From: ids.ProcessID(r.Int64())}
		m.Reply = r.Bool()
		n := r.Uint64()
		if n > uint64(r.Len()) { // each group takes ≥ 5 bytes
			return nil, wire.ErrTruncated
		}
		if n > 0 && r.Err() == nil {
			m.Groups = make([]groupDelta, 0, n)
			for i := uint64(0); i < n && r.Err() == nil; i++ {
				g := groupDelta{LWG: ids.LWGID(r.String())}
				g.D.Count = uint32(r.Uint64())
				g.D.MaxVer = r.Uint64()
				g.D.Hash = r.Uint64()
				en := r.Uint64()
				if en > uint64(r.Len()) { // each entry takes ≥ 20 bytes
					return nil, wire.ErrTruncated
				}
				if en > 0 && r.Err() == nil {
					g.Entries = make([]Entry, 0, en)
					for j := uint64(0); j < en && r.Err() == nil; j++ {
						g.Entries = append(g.Entries, getEntry(r))
					}
				}
				m.Groups = append(m.Groups, g)
			}
		}
		return m, r.Err()
	})
}

var (
	_ wire.Marshaler = (*msgDigest)(nil)
	_ wire.Marshaler = (*msgDelta)(nil)
)

package naming

import (
	"math/rand"
	"strings"
	"testing"

	"plwg/internal/ids"
)

func vid(c ids.ProcessID, s uint64) ids.ViewID { return ids.ViewID{Coord: c, Seq: s} }

func TestPutAndLive(t *testing.T) {
	db := NewDB()
	e := Entry{LWG: "a", View: vid(1, 1), HWG: 10, Ver: 1}
	if !db.Put(e) {
		t.Fatal("first Put must change the db")
	}
	if db.Put(e) {
		t.Fatal("identical Put must be a no-op")
	}
	live := db.Live("a")
	if len(live) != 1 || live[0].HWG != 10 {
		t.Fatalf("Live = %v", live)
	}
}

func TestPutVersionOrdering(t *testing.T) {
	db := NewDB()
	db.Put(Entry{LWG: "a", View: vid(1, 1), HWG: 10, Ver: 2})
	// An older write must not clobber a newer one.
	if db.Put(Entry{LWG: "a", View: vid(1, 1), HWG: 99, Ver: 1}) {
		t.Fatal("stale Put must be ignored")
	}
	if got := db.Live("a")[0].HWG; got != 10 {
		t.Fatalf("HWG = %v, want 10", got)
	}
	// A newer write re-maps the same view (Table 4 step 3: switching
	// re-maps an existing LWG view onto another HWG).
	if !db.Put(Entry{LWG: "a", View: vid(1, 1), HWG: 20, Ver: 3}) {
		t.Fatal("newer Put must apply")
	}
	if got := db.Live("a")[0].HWG; got != 20 {
		t.Fatalf("HWG = %v, want 20", got)
	}
}

func TestTombstoneVersioned(t *testing.T) {
	db := NewDB()
	db.Put(Entry{LWG: "a", View: vid(1, 1), HWG: 10, Ver: 1})
	db.Put(Entry{LWG: "a", View: vid(1, 1), Ver: 2, Deleted: true})
	if len(db.Live("a")) != 0 {
		t.Fatal("deleted mapping still live")
	}
	// Entries are single-writer per view, so a newer write was issued
	// after the delete: the group was re-founded under a recycled view
	// ID, and the mapping must resurrect.
	db.Put(Entry{LWG: "a", View: vid(1, 1), HWG: 10, Ver: 9})
	if len(db.Live("a")) != 1 {
		t.Fatal("re-created mapping must displace the older tombstone")
	}
	// Conversely, a delete that lost the version race was issued before
	// the stored entry and is discarded: the straggling retry of a
	// pre-re-creation dissolve must not kill the live mapping.
	if db.Put(Entry{LWG: "a", View: vid(1, 1), Ver: 5, Deleted: true}) {
		t.Fatal("stale delete reported a change")
	}
	if len(db.Live("a")) != 1 {
		t.Fatal("stale delete killed the live mapping")
	}
}

func TestGenealogyGC(t *testing.T) {
	// Table 4 step 4: once the merged view's mapping is stored, the
	// mappings of the merged (ancestor) views are deleted.
	db := NewDB()
	left, right := vid(1, 2), vid(4, 1)
	merged := vid(1, 3)
	db.Put(Entry{LWG: "a", View: left, HWG: 1, Ver: 1})
	db.Put(Entry{LWG: "a", View: right, HWG: 2, Ver: 1})
	if len(db.Live("a")) != 2 {
		t.Fatalf("want 2 concurrent mappings, got %d", len(db.Live("a")))
	}
	db.Put(Entry{
		LWG: "a", View: merged, HWG: 2, Ver: 1,
		Ancestors: ids.ViewIDs{left, right},
	})
	live := db.Live("a")
	if len(live) != 1 || live[0].View != merged {
		t.Fatalf("ancestors not GCed: %v", live)
	}
}

func TestGCArrivesBeforeAncestors(t *testing.T) {
	// Reconciliation can deliver the descendant first; ancestor entries
	// arriving later must be recognized as obsolete.
	db := NewDB()
	left, right, merged := vid(1, 2), vid(4, 1), vid(1, 3)
	db.Put(Entry{LWG: "a", View: merged, HWG: 2, Ver: 1, Ancestors: ids.ViewIDs{left, right}})
	db.Put(Entry{LWG: "a", View: left, HWG: 1, Ver: 1})
	db.Put(Entry{LWG: "a", View: right, HWG: 2, Ver: 1})
	live := db.Live("a")
	if len(live) != 1 || live[0].View != merged {
		t.Fatalf("late ancestors not GCed: %v", live)
	}
}

func TestConflictDetection(t *testing.T) {
	// Table 3: in partition p, lwg_a -> hwg_1; in partition p',
	// lwg'_a -> hwg'_2. After the naming databases merge, the service
	// must detect the inconsistent mappings.
	db := NewDB()
	db.Put(Entry{LWG: "a", View: vid(1, 2), HWG: 1, Ver: 1})
	if db.Conflict("a") {
		t.Fatal("single mapping is not a conflict")
	}
	db.Put(Entry{LWG: "a", View: vid(4, 1), HWG: 2, Ver: 1})
	if !db.Conflict("a") {
		t.Fatal("concurrent mappings to different HWGs must conflict")
	}
	// Concurrent views on the SAME HWG are not a naming conflict (they
	// are resolved by local peer discovery, Section 6.3).
	db2 := NewDB()
	db2.Put(Entry{LWG: "b", View: vid(1, 2), HWG: 7, Ver: 1})
	db2.Put(Entry{LWG: "b", View: vid(4, 1), HWG: 7, Ver: 1})
	if db2.Conflict("b") {
		t.Fatal("same-HWG concurrent views are not a naming conflict")
	}
}

func TestMergeTable3(t *testing.T) {
	// Reproduce Table 3 exactly: two partition-local databases merge into
	// one holding both mappings for each LWG.
	p := NewDB()
	p.Put(Entry{LWG: "a", View: vid(1, 2), HWG: 1, Ver: 1})
	p.Put(Entry{LWG: "b", View: vid(1, 7), HWG: 2, Ver: 1})
	pp := NewDB()
	pp.Put(Entry{LWG: "a", View: vid(4, 1), HWG: 2, Ver: 1})
	pp.Put(Entry{LWG: "b", View: vid(4, 3), HWG: 1, Ver: 1})

	p.Merge(pp.All())
	if got := len(p.Live("a")); got != 2 {
		t.Errorf("LWG a: %d live mappings, want 2", got)
	}
	if got := len(p.Live("b")); got != 2 {
		t.Errorf("LWG b: %d live mappings, want 2", got)
	}
	if !p.Conflict("a") || !p.Conflict("b") {
		t.Error("merged database must flag both LWGs as conflicting")
	}
}

func TestMergeCommutative(t *testing.T) {
	// Property: merging any permutation of the same entry set yields the
	// same live state (anti-entropy order must not matter).
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		var entries []Entry
		base := vid(1, 1)
		l, rgt, m := vid(1, 2), vid(4, 1), vid(1, 3)
		entries = append(entries,
			Entry{LWG: "a", View: base, HWG: 1, Ver: 1},
			Entry{LWG: "a", View: l, HWG: 1, Ver: 1, Ancestors: ids.ViewIDs{base}},
			Entry{LWG: "a", View: rgt, HWG: 2, Ver: 1, Ancestors: ids.ViewIDs{base}},
			Entry{LWG: "a", View: l, HWG: 3, Ver: 2, Ancestors: ids.ViewIDs{base}},
			Entry{LWG: "a", View: m, HWG: 3, Ver: 1, Ancestors: ids.ViewIDs{base, l, rgt}},
			Entry{LWG: "b", View: vid(2, 1), HWG: 5, Ver: 1},
			Entry{LWG: "b", View: vid(2, 1), Ver: 2, Deleted: true},
		)
		shuffled := append([]Entry(nil), entries...)
		r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })

		d1, d2 := NewDB(), NewDB()
		d1.Merge(entries)
		d2.Merge(shuffled)
		if d1.Dump() != d2.Dump() {
			t.Fatalf("merge not commutative:\n%s\nvs\n%s", d1.Dump(), d2.Dump())
		}
	}
}

func TestMergeIdempotent(t *testing.T) {
	db := NewDB()
	entries := []Entry{
		{LWG: "a", View: vid(1, 1), HWG: 1, Ver: 1},
		{LWG: "a", View: vid(4, 1), HWG: 2, Ver: 1},
	}
	db.Merge(entries)
	before := db.Dump()
	if dirty := db.Merge(entries); len(dirty) != 0 {
		t.Errorf("re-merging identical entries must report no change, got dirty %v", dirty)
	}
	if db.Dump() != before {
		t.Error("re-merge changed the database")
	}
}

func TestDumpFormat(t *testing.T) {
	db := NewDB()
	db.Put(Entry{LWG: "a", View: vid(1, 2), HWG: 1, HWGView: vid(1, 5), Ver: 1})
	dump := db.Dump()
	if !strings.Contains(dump, "LWG a:") || !strings.Contains(dump, "p1/2 -> hwg1(p1/5)") {
		t.Errorf("unexpected dump format:\n%s", dump)
	}
}

func TestLWGsSorted(t *testing.T) {
	db := NewDB()
	db.Put(Entry{LWG: "z", View: vid(1, 1), HWG: 1, Ver: 1})
	db.Put(Entry{LWG: "a", View: vid(1, 1), HWG: 1, Ver: 1})
	db.Put(Entry{LWG: "m", View: vid(1, 1), HWG: 1, Ver: 1})
	got := db.LWGs()
	if len(got) != 3 || got[0] != "a" || got[1] != "m" || got[2] != "z" {
		t.Errorf("LWGs = %v", got)
	}
}

func TestPreferredHWG(t *testing.T) {
	entries := []Entry{
		{LWG: "a", View: vid(1, 1), HWG: 3},
		{LWG: "a", View: vid(2, 1), HWG: 7},
		{LWG: "a", View: vid(3, 1), HWG: 5},
	}
	if got := PreferredHWG(entries); got != 7 {
		t.Errorf("PreferredHWG = %v, want 7 (highest gid wins, §6.2)", got)
	}
	if got := PreferredHWG(nil); got != ids.NoHWG {
		t.Errorf("PreferredHWG(nil) = %v, want NoHWG", got)
	}
}

package naming

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"plwg/internal/ids"
	"plwg/internal/netsim"
	"plwg/internal/sim"
)

// srvWorld is a cluster of name servers only (no clients): the fixture
// for anti-entropy protocol tests. All nodes run a server.
type srvWorld struct {
	t       testing.TB
	s       *sim.Sim
	nw      *netsim.Network
	servers []*Server
}

func newSrvWorld(t testing.TB, n int, cfg Config) *srvWorld {
	t.Helper()
	s := sim.New(7)
	nw := netsim.New(s, netsim.DefaultParams())
	w := &srvWorld{t: t, s: s, nw: nw}
	pids := make([]ids.ProcessID, n)
	for i := range pids {
		pids[i] = ids.ProcessID(i)
	}
	for _, pid := range pids {
		srv := NewServer(ServerParams{Net: nw, PID: pid, Peers: pids, Config: cfg})
		mux := netsim.NewMux()
		mux.Handle(ServerPrefix, srv.HandleMessage)
		nw.AddNode(pid, mux.Handler())
		srv.Start()
		w.servers = append(w.servers, srv)
	}
	return w
}

// converged reports whether every server stores the same database.
func (w *srvWorld) converged() bool {
	ref := w.servers[0].DB().All()
	for _, srv := range w.servers[1:] {
		if !reflect.DeepEqual(srv.DB().All(), ref) {
			return false
		}
	}
	return true
}

func (w *srvWorld) requireConverged() {
	w.t.Helper()
	if !w.converged() {
		w.t.Fatalf("servers did not converge:\n s0: %v\n s1: %v",
			w.servers[0].DB().All(), w.servers[1].DB().All())
	}
	h := w.servers[0].DB().Hash()
	for i, srv := range w.servers[1:] {
		if srv.DB().Hash() != h {
			w.t.Fatalf("server %d hash %x != server 0 hash %x", i+1, srv.DB().Hash(), h)
		}
	}
}

// randomEntry builds an arbitrary, internally consistent entry. Views of
// one coordinator form a chain, and the ancestor set of (c, s) is the
// full chain (c, 1..s-1): the protocol's contract is that Ancestors
// carries the complete transitive strict-ancestor set (a fixed function
// of the view), so ancestry knowledge survives garbage collection on
// every replica identically. Random, non-closed ancestor sets would make
// genealogies depend on which since-collected entries a replica saw.
func randomEntry(rng *rand.Rand) Entry {
	lwgs := []ids.LWGID{"alpha", "b", "group-with-a-long-name", "d7"}
	e := Entry{
		LWG:       lwgs[rng.Intn(len(lwgs))],
		View:      ids.ViewID{Coord: ids.ProcessID(rng.Intn(5)), Seq: uint64(rng.Intn(20)) + 1},
		HWG:       ids.HWGID(rng.Intn(4)) + 1,
		Ver:       uint64(rng.Intn(6)),
		Refreshed: rng.Int63n(1 << 40),
		Deleted:   rng.Intn(4) == 0,
	}
	if rng.Intn(2) == 0 {
		e.HWGView = ids.ViewID{Coord: e.View.Coord, Seq: uint64(rng.Intn(9)) + 1}
	}
	for s := uint64(1); s < e.View.Seq; s++ {
		e.Ancestors = append(e.Ancestors, ids.ViewID{Coord: e.View.Coord, Seq: s})
	}
	return e
}

// TestWireSizeMatchesEncoding pins Entry.wireSize to the length of the
// canonical encoding, so codec changes cannot silently skew the
// size-based network model and digest hashing.
func TestWireSizeMatchesEncoding(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		e := randomEntry(rng)
		enc := appendEntry(nil, &e)
		if len(enc) != e.wireSize() {
			t.Fatalf("entry %+v: wireSize %d != encoded length %d", e, e.wireSize(), len(enc))
		}
	}
	// The degenerate entry too.
	var zero Entry
	if got := len(appendEntry(nil, &zero)); got != zero.wireSize() {
		t.Fatalf("zero entry: wireSize %d != encoded length %d", zero.wireSize(), got)
	}
}

func TestGenerationAndDigestInvalidation(t *testing.T) {
	db := NewDB()
	g0 := db.Generation()
	e := Entry{LWG: "a", View: vid(1, 1), HWG: 1, Ver: 1}
	if !db.Put(e) {
		t.Fatal("first put reported no change")
	}
	if db.Generation() == g0 {
		t.Fatal("put did not advance the generation")
	}
	d1, h1 := db.DigestOf("a"), db.Hash()
	g1 := db.Generation()
	// A no-op re-put must not move the generation or the summaries.
	if db.Put(e) {
		t.Fatal("re-put reported change")
	}
	if db.Generation() != g1 || db.DigestOf("a") != d1 || db.Hash() != h1 {
		t.Fatal("no-op put disturbed generation or digests")
	}
	// A real change must invalidate both caches.
	db.Put(Entry{LWG: "a", View: vid(1, 1), HWG: 2, Ver: 2})
	if db.Generation() == g1 {
		t.Fatal("update did not advance the generation")
	}
	if db.DigestOf("a") == d1 {
		t.Fatal("update did not change the group digest")
	}
	if db.Hash() == h1 {
		t.Fatal("update did not change the database hash")
	}
	// Unrelated groups keep their digests.
	db.Put(Entry{LWG: "b", View: vid(2, 1), HWG: 1, Ver: 1})
	da := db.DigestOf("a")
	db.Put(Entry{LWG: "b", View: vid(2, 1), HWG: 3, Ver: 2})
	if db.DigestOf("a") != da {
		t.Fatal("changing group b disturbed group a's digest")
	}
}

func TestDigestDiff(t *testing.T) {
	mk := func(lwg ids.LWGID, h uint64) LWGDigest {
		return LWGDigest{LWG: lwg, D: Digest{Count: 1, MaxVer: 1, Hash: h}}
	}
	ours := []LWGDigest{mk("a", 1), mk("b", 2), mk("d", 4)}
	theirs := []LWGDigest{mk("b", 2), mk("c", 3), mk("d", 9)}
	got := diffDigests(ours, theirs)
	want := []ids.LWGID{"a", "c", "d"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("diffDigests = %v, want %v", got, want)
	}
	if diffDigests(nil, nil) != nil {
		t.Fatal("empty diff must be nil")
	}
}

// TestDigestSyncConverges seeds each server with distinct state and runs
// digest/delta anti-entropy until every replica stores the same database.
func TestDigestSyncConverges(t *testing.T) {
	w := newSrvWorld(t, 4, Config{MappingTTL: -1})
	rng := rand.New(rand.NewSource(9))
	for i, srv := range w.servers {
		for j := 0; j < 10+i; j++ {
			srv.DB().Put(randomEntry(rng))
		}
	}
	w.s.RunFor(5 * time.Second)
	w.requireConverged()
	st := w.nw.Stats()
	if st.ByKind["naming-sync"] != 0 {
		t.Fatalf("digest mode sent %d full syncs", st.ByKind["naming-sync"])
	}
	if st.ByKind["naming-digest"] == 0 || st.ByKind["naming-delta"] == 0 {
		t.Fatalf("digest protocol not exercised: %v", st.ByKind)
	}
}

// TestIdleSkipSuppressesTraffic checks that converged, quiescent servers
// stop probing (up to the forced re-verification every MaxIdleSkips).
func TestIdleSkipSuppressesTraffic(t *testing.T) {
	w := newSrvWorld(t, 2, Config{MappingTTL: -1})
	w.servers[0].DB().Put(Entry{LWG: "a", View: vid(1, 1), HWG: 1, Ver: 1})
	w.s.RunFor(3 * time.Second)
	w.requireConverged()

	w.nw.ResetStats()
	for _, srv := range w.servers {
		srv.ResetSyncStats()
	}
	const rounds = 32 // per server, at 300ms sync interval over ~9.6s
	w.s.RunFor(time.Duration(rounds) * 300 * time.Millisecond)
	st := w.nw.Stats()
	// Each forced probe (every MaxIdleSkips=8 rounds + 1) costs one
	// probe and one empty ack; everything else must be skipped.
	maxFrames := int64(2*(rounds/8+2)) * 2 // both servers probe
	frames := st.ByKind["naming-digest"] + st.ByKind["naming-delta"]
	if frames > maxFrames {
		t.Fatalf("idle traffic %d frames exceeds bound %d (%v)", frames, maxFrames, st.ByKind)
	}
	skipped := w.servers[0].SyncStats()["skipped"] + w.servers[1].SyncStats()["skipped"]
	if skipped < int64(rounds) {
		t.Fatalf("only %d rounds skipped, want >= %d", skipped, rounds)
	}
}

// TestDeltaShipsOnlyChangedGroups converges two servers on many groups,
// changes one, and checks the next exchange ships exactly that group.
func TestDeltaShipsOnlyChangedGroups(t *testing.T) {
	// Long sync interval: the test drives rounds by hand.
	w := newSrvWorld(t, 2, Config{MappingTTL: -1, SyncInterval: time.Hour})
	for i := 0; i < 50; i++ {
		e := Entry{
			LWG:  ids.LWGID(string(rune('a'+i%26)) + string(rune('a'+i/26))),
			View: vid(1, 1), HWG: 1, Ver: 1,
		}
		w.servers[0].DB().Put(e)
		w.servers[1].DB().Put(e)
	}
	w.servers[0].DB().Put(Entry{LWG: "aa", View: vid(1, 1), HWG: 2, Ver: 2})

	w.servers[0].antiEntropy()
	w.s.RunFor(time.Second)
	w.requireConverged()

	stats := w.servers[0].SyncStats()
	if got := stats["delta_groups"]; got != 1 {
		t.Fatalf("initiator shipped %d groups, want 1 (%v)", got, stats)
	}
	if got := stats["delta_entries"]; got != 1 {
		t.Fatalf("initiator shipped %d entries, want 1", got)
	}
	// The responder merged the newer entry and its digest now matches the
	// initiator's: no reverse delta content.
	if got := w.servers[1].SyncStats()["delta_groups"]; got != 0 {
		t.Fatalf("responder shipped %d groups back, want 0", got)
	}
}

// TestDigestVersionFallback sends a probe with an alien version and
// checks the responder falls back to a full sync that still converges
// both replicas.
func TestDigestVersionFallback(t *testing.T) {
	w := newSrvWorld(t, 2, Config{MappingTTL: -1, SyncInterval: time.Hour})
	w.servers[0].DB().Put(Entry{LWG: "a", View: vid(1, 1), HWG: 1, Ver: 1})
	w.servers[1].DB().Put(Entry{LWG: "b", View: vid(2, 1), HWG: 2, Ver: 1})

	// A "future" server probes pid 1: the responder cannot interpret the
	// digest and must push its full database; pid 0's normal onSync then
	// answers with its own, reconciling both.
	w.nw.Unicast(0, 1, ServerPrefix, &msgDigest{From: 0, Version: 99, DBHash: 12345})
	w.s.RunFor(time.Second)
	w.requireConverged()
	if got := w.servers[1].SyncStats()["full_fallback"]; got != 1 {
		t.Fatalf("full_fallback = %d, want 1", got)
	}
	if st := w.nw.Stats(); st.ByKind["naming-sync"] == 0 {
		t.Fatal("no full sync on the wire after version mismatch")
	}
}

// TestDirtySetConflictChecks verifies a merge re-examines only the
// groups it changed, not the whole database.
func TestDirtySetConflictChecks(t *testing.T) {
	w := newSrvWorld(t, 2, Config{MappingTTL: -1, SyncInterval: time.Hour})
	srv := w.servers[0]
	for i := 0; i < 40; i++ {
		srv.DB().Put(Entry{
			LWG:  ids.LWGID(string(rune('a' + i%26))),
			View: vid(1, uint64(i+1)), HWG: 1, Ver: 1,
		})
	}
	srv.ResetSyncStats()
	// A sync reply carrying one concurrent mapping for one group.
	srv.onSync(&msgSync{From: 1, Reply: true, Entries: []Entry{
		{LWG: "a", View: vid(3, 50), HWG: 9, Ver: 1},
	}})
	stats := srv.SyncStats()
	if got := stats["conflict_checks"]; got != 1 {
		t.Fatalf("conflict_checks = %d after single-group merge, want 1", got)
	}
	if got := stats["merge_changed"]; got != 1 {
		t.Fatalf("merge_changed = %d, want 1", got)
	}
}

// TestDigestHealConvergence partitions four servers, lets both sides
// diverge, heals, and requires full convergence under digest/delta sync.
func TestDigestHealConvergence(t *testing.T) {
	w := newSrvWorld(t, 4, Config{MappingTTL: -1})
	w.s.RunFor(time.Second)
	w.nw.SetPartitions([]netsim.NodeID{0, 1}, []netsim.NodeID{2, 3})
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 30; i++ {
		w.servers[i%2].DB().Put(randomEntry(rng))     // side A
		w.servers[2+(i%2)].DB().Put(randomEntry(rng)) // side B
	}
	w.s.RunFor(3 * time.Second)
	w.nw.Heal()
	w.s.RunFor(5 * time.Second)
	w.requireConverged()
}

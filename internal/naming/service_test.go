package naming

import (
	"testing"
	"time"

	"plwg/internal/ids"
	"plwg/internal/netsim"
	"plwg/internal/sim"
)

// nsWorld is a network with name servers on some nodes and clients on
// all, plus recorders for MULTIPLE-MAPPINGS callbacks.
type nsWorld struct {
	t         *testing.T
	s         *sim.Sim
	nw        *netsim.Network
	servers   map[ids.ProcessID]*Server
	clients   map[ids.ProcessID]*Client
	callbacks map[ids.ProcessID][]*MsgMultipleMappings
}

func newNSWorld(t *testing.T, nodes int, serverPids []ids.ProcessID) *nsWorld {
	t.Helper()
	s := sim.New(2)
	nw := netsim.New(s, netsim.DefaultParams())
	w := &nsWorld{
		t: t, s: s, nw: nw,
		servers:   make(map[ids.ProcessID]*Server),
		clients:   make(map[ids.ProcessID]*Client),
		callbacks: make(map[ids.ProcessID][]*MsgMultipleMappings),
	}
	for i := 0; i < nodes; i++ {
		pid := ids.ProcessID(i)
		mux := netsim.NewMux()
		cl := NewClient(ClientParams{Net: nw, PID: pid, Servers: serverPids})
		mux.Handle(ClientPrefix, cl.HandleMessage)
		mux.Handle(CallbackPrefix, func(pid ids.ProcessID) netsim.Handler {
			return func(_ netsim.NodeID, _ netsim.Addr, msg netsim.Message) {
				if m, ok := msg.(*MsgMultipleMappings); ok {
					w.callbacks[pid] = append(w.callbacks[pid], m)
				}
			}
		}(pid))
		for _, sp := range serverPids {
			if sp == pid {
				srv := NewServer(ServerParams{Net: nw, PID: pid, Peers: serverPids})
				mux.Handle(ServerPrefix, srv.HandleMessage)
				srv.Start()
				w.servers[pid] = srv
			}
		}
		nw.AddNode(pid, mux.Handler())
		w.clients[pid] = cl
	}
	return w
}

func TestClientSetRead(t *testing.T) {
	w := newNSWorld(t, 4, []ids.ProcessID{0})
	var ok bool
	w.clients[1].SetView(Entry{LWG: "a", View: vid(1, 1), HWG: 7, Ver: 1},
		func(_ []Entry, o bool) { ok = o })
	w.s.RunFor(time.Second)
	if !ok {
		t.Fatal("SetView did not complete")
	}
	var got ids.HWGID
	w.clients[2].Read("a", func(h ids.HWGID, o bool) {
		if o {
			got = h
		}
	})
	w.s.RunFor(time.Second)
	if got != 7 {
		t.Fatalf("Read = %v, want 7", got)
	}
}

func TestReadUnknownLWG(t *testing.T) {
	w := newNSWorld(t, 2, []ids.ProcessID{0})
	called := false
	w.clients[1].Read("nope", func(h ids.HWGID, o bool) {
		called = true
		if o {
			t.Errorf("Read of unknown LWG reported ok with hwg %v", h)
		}
	})
	w.s.RunFor(time.Second)
	if !called {
		t.Fatal("callback never ran")
	}
}

func TestTestSetAtomicity(t *testing.T) {
	// Two processes race to create the same LWG against the same server:
	// exactly one mapping wins and both observe it.
	w := newNSWorld(t, 4, []ids.ProcessID{0})
	var got1, got2 ids.HWGID
	w.clients[1].TestSetHWG("a", 10, func(h ids.HWGID, ok bool) {
		if ok {
			got1 = h
		}
	})
	w.clients[2].TestSetHWG("a", 20, func(h ids.HWGID, ok bool) {
		if ok {
			got2 = h
		}
	})
	w.s.RunFor(time.Second)
	if got1 != got2 {
		t.Fatalf("TestSet not atomic: %v vs %v", got1, got2)
	}
	if got1 != 10 && got1 != 20 {
		t.Fatalf("winner %v is neither proposal", got1)
	}
}

func TestFailoverToSecondServer(t *testing.T) {
	w := newNSWorld(t, 4, []ids.ProcessID{0, 1})
	w.nw.Crash(0)
	var ok bool
	// Client 0's preferred server is pid 0 (crashed); it must fail over.
	w.clients[2].SetView(Entry{LWG: "a", View: vid(2, 1), HWG: 3, Ver: 1},
		func(_ []Entry, o bool) { ok = o })
	w.s.RunFor(2 * time.Second)
	if !ok {
		t.Fatal("client did not fail over to the live server")
	}
}

func TestAllServersUnreachable(t *testing.T) {
	w := newNSWorld(t, 4, []ids.ProcessID{0, 1})
	w.nw.Crash(0)
	w.nw.Crash(1)
	done, ok := false, true
	w.clients[2].Read("a", func(_ ids.HWGID, o bool) { done, ok = true, o })
	// The client now retries with backoff for several rounds before
	// giving up, so allow the full retry budget to elapse.
	w.s.RunFor(10 * time.Second)
	if !done {
		t.Fatal("request never completed")
	}
	if ok {
		t.Fatal("request reported success with no reachable server")
	}
}

func TestAntiEntropyPropagation(t *testing.T) {
	w := newNSWorld(t, 4, []ids.ProcessID{0, 1})
	w.clients[0].SetView(Entry{LWG: "a", View: vid(1, 1), HWG: 9, Ver: 1}, func([]Entry, bool) {})
	w.s.RunFor(2 * time.Second) // several sync rounds
	if got := w.servers[1].DB().Live("a"); len(got) != 1 || got[0].HWG != 9 {
		t.Fatalf("server 1 did not learn the mapping: %v", got)
	}
}

func TestPartitionReconciliationAndCallback(t *testing.T) {
	// The Table 3 scenario over the wire: servers on nodes 0 and 4,
	// partition {0..3} | {4..7}; each side maps the same LWG onto a
	// different HWG. After the heal the servers reconcile, detect the
	// conflict, and notify the coordinators of both views.
	w := newNSWorld(t, 8, []ids.ProcessID{0, 4})
	w.nw.SetPartitions(
		[]netsim.NodeID{0, 1, 2, 3},
		[]netsim.NodeID{4, 5, 6, 7},
	)
	// Side p: view coordinated by p1 mapped on hwg1 (server 0).
	w.clients[1].SetView(Entry{LWG: "a", View: vid(1, 2), HWG: 1, Ver: 1}, func([]Entry, bool) {})
	// Side p': view coordinated by p5 mapped on hwg2 (server 4).
	w.clients[5].SetView(Entry{LWG: "a", View: vid(5, 1), HWG: 2, Ver: 1}, func([]Entry, bool) {})
	w.s.RunFor(2 * time.Second)

	// No callbacks while partitioned: each server sees one mapping.
	if len(w.callbacks[1]) != 0 || len(w.callbacks[5]) != 0 {
		t.Fatal("callback fired before any conflict was observable")
	}

	w.nw.Heal()
	w.s.RunFor(3 * time.Second)

	for _, srv := range w.servers {
		if got := len(srv.DB().Live("a")); got != 2 {
			t.Errorf("server %v has %d live mappings, want 2", srv.PID(), got)
		}
		if !srv.DB().Conflict("a") {
			t.Errorf("server %v does not flag the conflict", srv.PID())
		}
	}
	for _, coord := range []ids.ProcessID{1, 5} {
		if len(w.callbacks[coord]) == 0 {
			t.Errorf("coordinator %v received no MULTIPLE-MAPPINGS callback", coord)
			continue
		}
		cb := w.callbacks[coord][0]
		if cb.LWG != "a" || len(cb.Mappings) != 2 {
			t.Errorf("callback at %v = %+v", coord, cb)
		}
	}
}

func TestGCPropagatesAcrossServers(t *testing.T) {
	// After the merged view's mapping is written to one server,
	// anti-entropy must delete the ancestor mappings on the other.
	w := newNSWorld(t, 4, []ids.ProcessID{0, 1})
	left, right, merged := vid(1, 2), vid(2, 1), vid(1, 3)
	w.clients[0].SetView(Entry{LWG: "a", View: left, HWG: 1, Ver: 1}, func([]Entry, bool) {})
	w.clients[1].SetView(Entry{LWG: "a", View: right, HWG: 2, Ver: 1}, func([]Entry, bool) {})
	w.s.RunFor(2 * time.Second)
	w.clients[2].SetView(Entry{
		LWG: "a", View: merged, HWG: 2, Ver: 1, Ancestors: ids.ViewIDs{left, right},
	}, func([]Entry, bool) {})
	w.s.RunFor(2 * time.Second)
	for pid, srv := range w.servers {
		live := srv.DB().Live("a")
		if len(live) != 1 || live[0].View != merged {
			t.Errorf("server %v: live = %v, want only the merged view", pid, live)
		}
	}
}

func TestConflictClearedStopsCallbacks(t *testing.T) {
	w := newNSWorld(t, 4, []ids.ProcessID{0})
	left, right := vid(1, 2), vid(2, 1)
	w.clients[1].SetView(Entry{LWG: "a", View: left, HWG: 1, Ver: 1}, func([]Entry, bool) {})
	w.clients[2].SetView(Entry{LWG: "a", View: right, HWG: 2, Ver: 1}, func([]Entry, bool) {})
	w.s.RunFor(time.Second)
	if len(w.callbacks[1]) == 0 {
		t.Fatal("conflict callback expected")
	}
	// Resolve: re-map the left view onto hwg2 (the §6.2 rule).
	w.clients[1].SetView(Entry{LWG: "a", View: left, HWG: 2, Ver: 2}, func([]Entry, bool) {})
	w.s.RunFor(time.Second)
	n := len(w.callbacks[1])
	w.s.RunFor(3 * time.Second)
	if len(w.callbacks[1]) != n {
		t.Errorf("callbacks kept firing after the conflict was resolved (%d -> %d)",
			n, len(w.callbacks[1]))
	}
}

func TestLeaseExpiryCollectsDeadMappings(t *testing.T) {
	// A mapping written by a view whose members all crashed has no
	// descendant to supersede it; the lease mechanism must collect it.
	s := sim.New(1)
	nw := netsim.New(s, netsim.DefaultParams())
	srv := NewServer(ServerParams{
		Net: nw, PID: 0, Peers: []ids.ProcessID{0},
		Config: Config{MappingTTL: 2 * time.Second},
	})
	mux := netsim.NewMux()
	mux.Handle(ServerPrefix, srv.HandleMessage)
	nw.AddNode(0, mux.Handler())
	srv.Start()

	dead := Entry{LWG: "a", View: vid(9, 1), HWG: 1, Ver: 1, Refreshed: int64(s.Now())}
	srv.DB().Put(dead)
	s.RunFor(time.Second)
	if len(srv.DB().Live("a")) != 1 {
		t.Fatal("mapping expired before its TTL")
	}
	s.RunFor(3 * time.Second)
	if got := srv.DB().Live("a"); len(got) != 0 {
		t.Fatalf("dead mapping not collected: %v", got)
	}
}

func TestLeaseRefreshKeepsMappingAlive(t *testing.T) {
	s := sim.New(1)
	nw := netsim.New(s, netsim.DefaultParams())
	srv := NewServer(ServerParams{
		Net: nw, PID: 0, Peers: []ids.ProcessID{0},
		Config: Config{MappingTTL: 2 * time.Second},
	})
	mux := netsim.NewMux()
	mux.Handle(ServerPrefix, srv.HandleMessage)
	nw.AddNode(0, mux.Handler())
	srv.Start()

	ver := uint64(0)
	refresh := s.Every(500*time.Millisecond, func() {
		ver++
		srv.DB().Put(Entry{LWG: "a", View: vid(1, 1), HWG: 1, Ver: ver, Refreshed: int64(s.Now())})
	})
	s.RunFor(10 * time.Second)
	refresh.Stop()
	if got := srv.DB().Live("a"); len(got) != 1 {
		t.Fatalf("refreshed mapping expired: %v", got)
	}
	// Once refreshes stop, the lease lapses.
	s.RunFor(5 * time.Second)
	if got := srv.DB().Live("a"); len(got) != 0 {
		t.Fatalf("lapsed mapping survived: %v", got)
	}
}

func TestExpireDisabledByDefaultZero(t *testing.T) {
	db := NewDB()
	db.Put(Entry{LWG: "a", View: vid(1, 1), HWG: 1, Ver: 1})
	if dirty := db.Expire(int64(time.Hour), 0); len(dirty) != 0 {
		t.Fatal("ttl=0 must disable expiry")
	}
	if len(db.Live("a")) != 1 {
		t.Fatal("entry vanished with expiry disabled")
	}
}

func TestTable2Interface(t *testing.T) {
	// Experiment E2: the service exports the Table 2 primitives —
	// ns.set(lwg, hwg), ns.read(lwg) -> hwg, ns.testset(lwg, hwg) -> hwg
	// — in their asynchronous Go form.
	type table2 interface {
		Set(ids.LWGID, ids.HWGID, func(bool))
		Read(ids.LWGID, func(ids.HWGID, bool))
		TestSetHWG(ids.LWGID, ids.HWGID, func(ids.HWGID, bool))
	}
	var _ table2 = (*Client)(nil)

	// And they behave per the table.
	w := newNSWorld(t, 3, []ids.ProcessID{0})
	w.clients[1].Set("subject", 42, func(ok bool) {
		if !ok {
			t.Error("ns.set failed")
		}
	})
	w.s.RunFor(time.Second)
	w.clients[2].Read("subject", func(h ids.HWGID, ok bool) {
		if !ok || h != 42 {
			t.Errorf("ns.read = %v/%v, want 42/true", h, ok)
		}
	})
	w.s.RunFor(time.Second)
}

package naming

import (
	"encoding/binary"
	"fmt"

	"plwg/internal/ids"
)

// This file implements the per-LWG summaries behind digest/delta
// anti-entropy. Instead of shipping the full database every round
// (O(total entries) on the wire), a replica summarizes each LWG's entry
// set as a Digest — entry count, maximum version, and a content hash over
// the canonical encoding of the sorted entries (tombstones included, so a
// tombstone-only difference is still visible) — and the whole database as
// a single 64-bit hash over the sorted digest vector. A sync round then
// exchanges summaries first and entries only for the groups whose
// summaries differ.

// Digest summarizes one LWG's stored entry set.
type Digest struct {
	// Count is the number of stored entries, tombstones included.
	Count uint32
	// MaxVer is the highest entry version stored.
	MaxVer uint64
	// Hash is FNV-1a over the canonical encoding of the sorted entries.
	Hash uint64
}

// IsZero reports whether d summarizes an empty (unknown) group.
func (d Digest) IsZero() bool { return d == Digest{} }

// String renders the digest compactly for traces.
func (d Digest) String() string {
	return fmt.Sprintf("n=%d ver=%d h=%016x", d.Count, d.MaxVer, d.Hash)
}

// LWGDigest pairs a group name with its digest (one element of the
// digest vector exchanged by anti-entropy).
type LWGDigest struct {
	LWG ids.LWGID
	D   Digest
}

// wireSize is the element's serialized size, for the network model.
func (d LWGDigest) wireSize() int { return 2 + len(d.LWG) + 20 }

// FNV-1a 64-bit.
const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

func fnvBytes(h uint64, p []byte) uint64 {
	for _, b := range p {
		h ^= uint64(b)
		h *= fnvPrime
	}
	return h
}

// appendEntry appends the canonical fixed-width binary encoding of the
// entry. It is the ground truth both for the digest hashes (every replica
// must hash identical bytes for identical state) and for Entry.wireSize:
// the encoded length is exactly 53 + len(LWG) + 12*len(Ancestors).
func appendEntry(b []byte, e *Entry) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(len(e.LWG)))
	b = append(b, e.LWG...)
	b = appendViewID(b, e.View)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(e.Ancestors)))
	for _, a := range e.Ancestors {
		b = appendViewID(b, a)
	}
	b = binary.LittleEndian.AppendUint64(b, uint64(e.HWG))
	b = appendViewID(b, e.HWGView)
	b = binary.LittleEndian.AppendUint64(b, e.Ver)
	b = binary.LittleEndian.AppendUint64(b, uint64(e.Refreshed))
	if e.Deleted {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	return b
}

func appendViewID(b []byte, v ids.ViewID) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(v.Coord))
	return binary.LittleEndian.AppendUint64(b, v.Seq)
}

// DigestOf returns the summary of one LWG's entry set (the zero Digest
// for an unknown group). Summaries are cached and recomputed only after
// the group's entries change.
func (db *DB) DigestOf(lwg ids.LWGID) Digest {
	if d, ok := db.digests[lwg]; ok {
		return d
	}
	m := db.entries[lwg]
	if len(m) == 0 {
		return Digest{}
	}
	entries := db.EntriesOf(lwg)
	d := Digest{Count: uint32(len(entries))}
	h := uint64(fnvOffset)
	var buf []byte
	for i := range entries {
		if entries[i].Ver > d.MaxVer {
			d.MaxVer = entries[i].Ver
		}
		buf = appendEntry(buf[:0], &entries[i])
		h = fnvBytes(h, buf)
	}
	d.Hash = h
	db.digests[lwg] = d
	return d
}

// DigestVector returns the digest of every non-empty LWG, sorted by
// group name — the summary a replica sends instead of its database.
func (db *DB) DigestVector() []LWGDigest {
	out := make([]LWGDigest, 0, len(db.entries))
	for _, lwg := range db.LWGs() {
		if len(db.entries[lwg]) == 0 {
			continue
		}
		out = append(out, LWGDigest{LWG: lwg, D: db.DigestOf(lwg)})
	}
	return out
}

// Hash returns a single summary hash over the whole database (the sorted
// digest vector). Two replicas with equal hashes store the same entries,
// up to 64-bit collision; anti-entropy uses it as the cheap first-round
// probe and relies on the periodic forced exchange (Config.MaxIdleSkips)
// to bound the damage of a collision.
func (db *DB) Hash() uint64 {
	if db.dbHashOK {
		return db.dbHash
	}
	h := uint64(fnvOffset)
	var buf []byte
	for _, d := range db.DigestVector() {
		buf = buf[:0]
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(d.LWG)))
		buf = append(buf, d.LWG...)
		buf = binary.LittleEndian.AppendUint32(buf, d.D.Count)
		buf = binary.LittleEndian.AppendUint64(buf, d.D.MaxVer)
		buf = binary.LittleEndian.AppendUint64(buf, d.D.Hash)
		h = fnvBytes(h, buf)
	}
	db.dbHash, db.dbHashOK = h, true
	return h
}

// diffDigests merge-walks two sorted digest vectors and returns the
// groups whose summaries differ, including groups present on only one
// side, in sorted order.
func diffDigests(ours, theirs []LWGDigest) []ids.LWGID {
	var out []ids.LWGID
	i, j := 0, 0
	for i < len(ours) && j < len(theirs) {
		switch {
		case ours[i].LWG < theirs[j].LWG:
			out = append(out, ours[i].LWG)
			i++
		case ours[i].LWG > theirs[j].LWG:
			out = append(out, theirs[j].LWG)
			j++
		default:
			if ours[i].D != theirs[j].D {
				out = append(out, ours[i].LWG)
			}
			i++
			j++
		}
	}
	for ; i < len(ours); i++ {
		out = append(out, ours[i].LWG)
	}
	for ; j < len(theirs); j++ {
		out = append(out, theirs[j].LWG)
	}
	return out
}

// Package naming implements the paper's partitionable naming service
// (Section 5.2): a set of cooperating, weakly consistent name servers that
// store mappings between light-weight group views and heavy-weight group
// views.
//
// Because strong replica consistency cannot be enforced across partitions,
// the service deliberately allows inconsistent mappings to coexist and
// instead provides:
//
//   - view-aware mappings: the database stores LWG *views* mapped onto
//     HWG views, not just group-to-group associations, so concurrent
//     mappings from different partitions can coexist unambiguously
//     (Table 3);
//   - anti-entropy reconciliation: servers periodically exchange their
//     databases, so partition healing merges the mapping knowledge of both
//     sides;
//   - genealogy-based garbage collection: the service tracks the partial
//     order of views, and deletes a mapping as soon as a descendant view's
//     mapping is stored (Table 4's evolution);
//   - MULTIPLE-MAPPINGS callbacks: when concurrent views of one LWG are
//     found mapped onto different HWGs, the coordinators of the affected
//     views are notified so they can reconcile (Section 6.1).
//
// The classic Table 2 primitives (ns.set, ns.read, ns.testset) are
// provided as thin wrappers over the view-aware operations.
package naming

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"plwg/internal/ids"
)

// Entry is one mapping: a specific LWG view mapped onto a heavy-weight
// group (and, once known, a specific view of it). Entries are written only
// by the coordinator of the LWG view, so Ver imposes a single-writer
// version order; Deleted is a sticky tombstone.
type Entry struct {
	LWG ids.LWGID
	// View is the LWG view this mapping is for.
	View ids.ViewID
	// Ancestors is the full strict-ancestor set of View. Carrying the
	// transitive set (rather than immediate parents) keeps ancestry
	// queries correct even when intermediate entries were already
	// garbage-collected on the receiving server.
	Ancestors ids.ViewIDs
	// HWG is the heavy-weight group the view is mapped onto.
	HWG ids.HWGID
	// HWGView is the HWG view, when known (zero until the members have
	// joined it).
	HWGView ids.ViewID
	// Ver orders updates to the same View's mapping.
	Ver uint64
	// Refreshed is the (virtual-time, nanoseconds) timestamp of the
	// writer's last refresh. Mappings are leases: a coordinator
	// re-writes its mapping periodically, and servers expire mappings
	// whose lease lapsed — the only way to collect a mapping whose
	// view's members all crashed, since no descendant view will ever
	// supersede it through the genealogy. (An extension beyond the
	// paper, which does not address dead-view garbage.)
	Refreshed int64
	// Deleted marks a dissolved mapping.
	Deleted bool
}

// wireSize is the entry's serialized size, for the network model. It must
// equal the length of the canonical encoding produced by appendEntry —
// TestWireSizeMatchesEncoding asserts the two cannot drift apart.
func (e Entry) wireSize() int { return 53 + len(e.LWG) + 12*len(e.Ancestors) }

// String renders the mapping in the paper's notation, e.g.
// "lwg(p1/2) -> hwg3(p1/5)".
func (e Entry) String() string {
	s := fmt.Sprintf("%s(%v) -> %v", string(e.LWG), e.View, e.HWG)
	if !e.HWGView.IsZero() {
		s += fmt.Sprintf("(%v)", e.HWGView)
	}
	if e.Deleted {
		s += " [deleted]"
	}
	return s
}

// DB is the mapping database replicated at each name server. It is a pure
// data structure (no I/O); Server drives it. The merge operation is
// deterministic and commutative, so any exchange order converges.
type DB struct {
	entries map[ids.LWGID]map[ids.ViewID]*Entry
	gen     map[ids.LWGID]*ids.Genealogy

	// generation counts observable state changes; the anti-entropy layer
	// uses it to skip rounds against peers it already reconciled with.
	generation uint64
	// digests caches the per-LWG summary used by digest/delta sync;
	// entries are invalidated by touch and recomputed lazily.
	digests map[ids.LWGID]Digest
	// dbHash caches the whole-database summary hash (valid when dbHashOK).
	dbHash   uint64
	dbHashOK bool
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{
		entries: make(map[ids.LWGID]map[ids.ViewID]*Entry),
		gen:     make(map[ids.LWGID]*ids.Genealogy),
		digests: make(map[ids.LWGID]Digest),
	}
}

// touch records an observable change to the LWG's entry set: it bumps the
// generation and invalidates the cached digests.
func (db *DB) touch(lwg ids.LWGID) {
	db.generation++
	delete(db.digests, lwg)
	db.dbHashOK = false
}

// Generation returns a counter that increases on every observable state
// change (entry added, replaced, tombstoned, garbage-collected or
// expired). Two calls returning the same value bracket a quiescent span.
func (db *DB) Generation() uint64 { return db.generation }

func (db *DB) genealogy(lwg ids.LWGID) *ids.Genealogy {
	g := db.gen[lwg]
	if g == nil {
		g = ids.NewGenealogy()
		db.gen[lwg] = g
	}
	return g
}

// Put applies one entry and reports whether the database changed. Newer
// versions replace older ones, tombstones are sticky, and obsolete
// ancestors are garbage-collected.
func (db *DB) Put(e Entry) bool {
	g := db.genealogy(e.LWG)
	g.Record(e.View, e.Ancestors)

	m := db.entries[e.LWG]
	if m == nil {
		m = make(map[ids.ViewID]*Entry)
		db.entries[e.LWG] = m
	}
	changed := false
	cur, ok := m[e.View]
	switch {
	case !ok:
		// An entry whose view is a strict ancestor of an existing
		// entry's view is already obsolete — refuse it rather than
		// inserting and immediately garbage-collecting (which would
		// report a spurious change on every re-merge from a lagging
		// replica). Do NOT return early: recording the entry's
		// ancestry above may have revealed that an existing entry is
		// itself collectible now, so the gc below must still run.
		obsolete := false
		for w := range m {
			if g.IsAncestor(e.View, w) {
				obsolete = true
				break
			}
		}
		if !obsolete {
			cp := e
			m[e.View] = &cp
			changed = true
		}
	case e.Ver > cur.Ver,
		e.Ver == cur.Ver && tieBreakPrefer(e, *cur):
		// Higher version wins outright — tombstones included, in both
		// directions. Entries are single-writer per view (the view's
		// coordinator), so the version totally orders the writes to one
		// slot: a higher-versioned tombstone supersedes the refreshes
		// before it, and a higher-versioned live entry was written
		// after any tombstone it displaces (the group was dissolved and
		// then re-founded under a recycled view ID — the resurrection
		// must not inherit the old incarnation's death). A stale delete
		// whose retry loses the version race falls through to the
		// default and is discarded; equal versions with different
		// content (impossible under the single-writer discipline, but
		// replicas must converge regardless) break ties
		// deterministically.
		cp := e
		m[e.View] = &cp
		changed = true
	}
	if db.gc(e.LWG) {
		changed = true
	}
	if changed {
		db.touch(e.LWG)
	}
	return changed
}

// tieBreakPrefer imposes a deterministic total order on equal-version
// entries so replica merge is commutative: the greater
// (HWG, HWGView, Refreshed, Deleted) tuple wins.
func tieBreakPrefer(e, cur Entry) bool {
	if e.HWG != cur.HWG {
		return e.HWG > cur.HWG
	}
	if e.HWGView != cur.HWGView {
		return cur.HWGView.Less(e.HWGView)
	}
	if e.Refreshed != cur.Refreshed {
		return e.Refreshed > cur.Refreshed
	}
	return e.Deleted && !cur.Deleted
}

// gc removes every entry whose view is a strict ancestor of another
// entry's view: once a merged (or otherwise succeeding) view's mapping is
// stored, the mappings of its ancestors are obsolete (Section 5.2,
// Table 4 step 4).
func (db *DB) gc(lwg ids.LWGID) bool {
	m := db.entries[lwg]
	g := db.genealogy(lwg)
	var obsolete []ids.ViewID
	for v := range m {
		for w := range m {
			if v != w && g.IsAncestor(v, w) {
				obsolete = append(obsolete, v)
				break
			}
		}
	}
	for _, v := range obsolete {
		delete(m, v)
	}
	return len(obsolete) > 0
}

// Merge applies a batch of entries (from a client update or another
// server's database) and returns the set of LWGs whose stored state
// changed, sorted and duplicate-free (nil when nothing changed). Callers
// use the dirty set to re-examine only the affected groups instead of
// rescanning the whole database.
func (db *DB) Merge(entries []Entry) []ids.LWGID {
	var dirty []ids.LWGID
	seen := make(map[ids.LWGID]bool)
	for _, e := range entries {
		if db.Put(e) && !seen[e.LWG] {
			seen[e.LWG] = true
			dirty = append(dirty, e.LWG)
		}
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i] < dirty[j] })
	return dirty
}

// Live returns the non-deleted mappings of the LWG in deterministic
// order.
func (db *DB) Live(lwg ids.LWGID) []Entry {
	var out []Entry
	for _, e := range db.entries[lwg] {
		if !e.Deleted {
			out = append(out, *e)
		}
	}
	sortEntries(out)
	return out
}

// All returns every entry of every LWG, tombstones included (the
// anti-entropy payload).
func (db *DB) All() []Entry {
	var out []Entry
	for _, m := range db.entries {
		for _, e := range m {
			out = append(out, *e)
		}
	}
	sortEntries(out)
	return out
}

// EntriesOf returns every entry of one LWG, tombstones included, in
// deterministic (view) order — the per-group delta payload.
func (db *DB) EntriesOf(lwg ids.LWGID) []Entry {
	m := db.entries[lwg]
	if len(m) == 0 {
		return nil
	}
	out := make([]Entry, 0, len(m))
	for _, e := range m {
		out = append(out, *e)
	}
	sortEntries(out)
	return out
}

// LWGs returns the known light-weight group names in sorted order.
func (db *DB) LWGs() []ids.LWGID {
	out := make([]ids.LWGID, 0, len(db.entries))
	for l := range db.entries {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Expire hard-deletes entries (live and tombstoned) whose lease lapsed:
// Refreshed older than ttl before now. It returns the LWGs that lost
// entries, sorted (nil when nothing was removed). Expired entries
// re-learned from a lagging replica carry the same stale timestamp and
// expire again, so the fleet converges; a live coordinator's periodic
// refresh (higher Ver, fresh timestamp) wins over any expiry.
func (db *DB) Expire(now int64, ttl time.Duration) []ids.LWGID {
	if ttl <= 0 {
		return nil
	}
	cutoff := now - int64(ttl)
	var dirty []ids.LWGID
	for lwg, m := range db.entries {
		changed := false
		for v, e := range m {
			if e.Refreshed < cutoff {
				delete(m, v)
				changed = true
			}
		}
		if len(m) == 0 {
			delete(db.entries, lwg)
		}
		if changed {
			db.touch(lwg)
			dirty = append(dirty, lwg)
		}
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i] < dirty[j] })
	return dirty
}

// Conflict reports whether the LWG has concurrent live views mapped onto
// different heavy-weight groups — the condition that triggers
// MULTIPLE-MAPPINGS callbacks (Section 6.1).
func (db *DB) Conflict(lwg ids.LWGID) bool {
	live := db.Live(lwg)
	for i := 1; i < len(live); i++ {
		if live[i].HWG != live[0].HWG {
			return true
		}
	}
	return false
}

// Concurrent reports whether two views of the LWG are concurrent
// according to the recorded genealogy.
func (db *DB) Concurrent(lwg ids.LWGID, a, b ids.ViewID) bool {
	return db.genealogy(lwg).Concurrent(a, b)
}

// Dump renders the database in the style of the paper's Tables 3 and 4:
// one line per LWG listing its live view-to-view mappings.
func (db *DB) Dump() string {
	var b strings.Builder
	for _, lwg := range db.LWGs() {
		live := db.Live(lwg)
		if len(live) == 0 {
			continue
		}
		parts := make([]string, len(live))
		for i, e := range live {
			hv := ""
			if !e.HWGView.IsZero() {
				hv = fmt.Sprintf("(%v)", e.HWGView)
			}
			parts[i] = fmt.Sprintf("%v -> %v%s", e.View, e.HWG, hv)
		}
		fmt.Fprintf(&b, "LWG %s: %s\n", string(lwg), strings.Join(parts, ", "))
	}
	return b.String()
}

func sortEntries(es []Entry) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].LWG != es[j].LWG {
			return es[i].LWG < es[j].LWG
		}
		return es[i].View.Less(es[j].View)
	})
}

package naming

import (
	"time"

	"plwg/internal/ids"
	"plwg/internal/metrics"
	"plwg/internal/netsim"
	"plwg/internal/sim"
)

// Client is a process's naming-service access point. Requests go to the
// configured servers in order; a server that does not answer within
// RequestTimeout (crashed, or in another partition) is skipped and the
// next one is tried — "there is a high probability of having at least one
// server available at each partition" (Section 5.2). After a full
// unanswered pass over the server list the client pauses for a jittered,
// exponentially-growing backoff (RetryBackoff doubling up to
// RetryBackoffMax) and sweeps the list again; only after RetryRounds
// such passes does the operation complete with ok == false and leave
// further retries to the caller. Under transient loss or a short
// partition this rides out the outage instead of failing eagerly.
//
// All operations are asynchronous: the simulation is single-threaded, so
// results arrive through callbacks.
type Client struct {
	pid     ids.ProcessID
	net     netsim.Transport
	clock   *sim.Sim
	cfg     Config
	servers []ids.ProcessID

	nextReq uint64
	pending map[uint64]*pendingReq

	// Instruments (nil with metrics disabled; nil instruments no-op).
	cRequests *metrics.Counter
	cRetries  *metrics.Counter
	cFailures *metrics.Counter
}

type pendingReq struct {
	req     *msgRequest
	cb      func([]Entry, bool)
	tried   int // servers tried in the current round
	sIndex  int
	rounds  int           // full passes over the server list so far
	backoff time.Duration // pause before the next round (grows per round)
	// timer is the single outstanding clock entry for this request —
	// either a per-attempt timeout or an inter-round backoff sleep. It is
	// stopped when the reply lands so no dead timer stays queued.
	timer *sim.Timer
}

// ClientParams bundles the dependencies of a Client.
type ClientParams struct {
	Net     netsim.Transport
	PID     ids.ProcessID
	Servers []ids.ProcessID
	Config  Config
	// Metrics receives the client's request/retry/failure counters; nil
	// disables them.
	Metrics *metrics.Registry
}

// NewClient creates a naming client. The caller must route mux prefix
// ClientPrefix to HandleMessage.
func NewClient(p ClientParams) *Client {
	return &Client{
		pid:       p.PID,
		net:       p.Net,
		clock:     p.Net.Sim(),
		cfg:       p.Config.withDefaults(),
		servers:   append([]ids.ProcessID(nil), p.Servers...),
		pending:   make(map[uint64]*pendingReq),
		cRequests: p.Metrics.Counter("ns_client_requests_total"),
		cRetries:  p.Metrics.Counter("ns_client_retries_total"),
		cFailures: p.Metrics.Counter("ns_client_failures_total"),
	}
}

// HandleMessage is the network receive entry point for ClientPrefix.
func (c *Client) HandleMessage(_ netsim.NodeID, _ netsim.Addr, msg netsim.Message) {
	r, ok := msg.(*msgReply)
	if !ok {
		return
	}
	p, ok := c.pending[r.ReqID]
	if !ok {
		return // late reply from a failed-over server
	}
	delete(c.pending, r.ReqID)
	if p.timer != nil {
		p.timer.Stop()
		p.timer = nil
	}
	p.cb(r.Entries, true)
}

// SetView stores (or updates) the mapping of one LWG view. The callback
// receives the live mappings as the server now sees them.
func (c *Client) SetView(e Entry, cb func([]Entry, bool)) {
	c.issue(&msgRequest{Op: opSetView, LWG: e.LWG, Entry: e}, cb)
}

// ReadLive fetches the live mappings of the LWG.
func (c *Client) ReadLive(lwg ids.LWGID, cb func([]Entry, bool)) {
	c.issue(&msgRequest{Op: opReadLive, LWG: lwg}, cb)
}

// TestSet atomically installs the mapping if the LWG has no live mapping
// at the answering server, and returns the current live mappings either
// way (Table 2's ns.testset, extended with view information).
func (c *Client) TestSet(e Entry, cb func([]Entry, bool)) {
	c.issue(&msgRequest{Op: opTestSet, LWG: e.LWG, Entry: e}, cb)
}

// Delete tombstones the mapping of one LWG view (used when a group
// dissolves). The caller supplies the version from the same sequence its
// set-view refreshes use: entries are single-writer per view (the view's
// coordinator writes both refreshes and the dissolve), so the version
// totally orders a delete against the refreshes around it — a delete
// whose retry straggles in after the group was re-founded under the same
// view ID carries a provably older version and is discarded.
func (c *Client) Delete(lwg ids.LWGID, view ids.ViewID, ver uint64, cb func([]Entry, bool)) {
	c.issue(&msgRequest{Op: opDelete, LWG: lwg, Entry: Entry{
		LWG: lwg, View: view, Ver: ver, Refreshed: int64(c.clock.Now()),
	}}, cb)
}

// --- Table 2 compatibility wrappers ---------------------------------------

// Set implements Table 2's ns.set(lwg, hwg): it records a mapping for the
// group as a whole. The view-aware SetView is preferred; Set synthesizes
// a per-process pseudo-view so repeated Sets by one process overwrite each
// other.
func (c *Client) Set(lwg ids.LWGID, hwg ids.HWGID, done func(bool)) {
	c.SetView(Entry{
		LWG:       lwg,
		View:      ids.ViewID{Coord: c.pid, Seq: 1},
		HWG:       hwg,
		Ver:       uint64(c.clock.Now()),
		Refreshed: int64(c.clock.Now()),
	}, func(_ []Entry, ok bool) { done(ok) })
}

// Read implements Table 2's ns.read(lwg): it returns the current mapping
// for the group. With concurrent live mappings the highest HWG identifier
// wins, matching the reconciliation rule of Section 6.2.
func (c *Client) Read(lwg ids.LWGID, cb func(ids.HWGID, bool)) {
	c.ReadLive(lwg, func(entries []Entry, ok bool) {
		cb(PreferredHWG(entries), ok && len(entries) > 0)
	})
}

// TestSetHWG implements Table 2's ns.testset(lwg, hwg): it establishes
// the mapping if none exists and returns the winning mapping.
func (c *Client) TestSetHWG(lwg ids.LWGID, hwg ids.HWGID, cb func(ids.HWGID, bool)) {
	c.TestSet(Entry{
		LWG:       lwg,
		View:      ids.ViewID{Coord: c.pid, Seq: 1},
		HWG:       hwg,
		Ver:       uint64(c.clock.Now()),
		Refreshed: int64(c.clock.Now()),
	}, func(entries []Entry, ok bool) {
		cb(PreferredHWG(entries), ok && len(entries) > 0)
	})
}

// PreferredHWG returns the heavy-weight group a joiner should use given a
// set of live mappings: the highest group identifier, the same total
// order used by mapping reconciliation (Section 6.2).
func PreferredHWG(entries []Entry) ids.HWGID {
	var best ids.HWGID
	for _, e := range entries {
		if e.HWG > best {
			best = e.HWG
		}
	}
	return best
}

func (c *Client) issue(req *msgRequest, cb func([]Entry, bool)) {
	if len(c.servers) == 0 {
		cb(nil, false)
		return
	}
	c.nextReq++
	req.ReqID = c.nextReq
	req.From = c.pid
	c.cRequests.Inc()
	// Start at the server "closest" to this process (deterministic
	// spread: indexed by pid) so load distributes across replicas.
	p := &pendingReq{
		req: req, cb: cb,
		sIndex:  int(c.pid) % len(c.servers),
		backoff: c.cfg.RetryBackoff,
	}
	c.pending[req.ReqID] = p
	c.sendAttempt(p)
}

func (c *Client) sendAttempt(p *pendingReq) {
	server := c.servers[p.sIndex%len(c.servers)]
	c.net.Unicast(c.pid, server, ServerPrefix, p.req)
	p.timer = c.clock.After(c.cfg.RequestTimeout, func() {
		if _, live := c.pending[p.req.ReqID]; !live {
			return
		}
		p.tried++
		p.sIndex++
		c.cRetries.Inc()
		if p.tried < len(c.servers) {
			c.sendAttempt(p)
			return
		}
		// A full pass over the server list went unanswered.
		p.tried = 0
		p.rounds++
		if p.rounds >= c.cfg.RetryRounds {
			delete(c.pending, p.req.ReqID)
			p.timer = nil
			c.cFailures.Inc()
			p.cb(nil, false)
			return
		}
		// Back off before the next pass: exponential with jitter (up to
		// +50%) so a herd of clients re-converging after a heal does not
		// resweep the servers in lockstep.
		pause := p.backoff
		if jit := int64(pause / 2); jit > 0 {
			pause += time.Duration(c.clock.Rand().Int63n(jit))
		}
		p.backoff *= 2
		if p.backoff > c.cfg.RetryBackoffMax {
			p.backoff = c.cfg.RetryBackoffMax
		}
		p.timer = c.clock.After(pause, func() {
			if _, live := c.pending[p.req.ReqID]; !live {
				return
			}
			c.sendAttempt(p)
		})
	})
}

package naming

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"plwg/internal/ids"
	"plwg/internal/netsim"
	"plwg/internal/sim"
)

// nsOp is one scheduled database update in the equivalence scenario.
type nsOp struct {
	at     time.Duration
	server int
	entry  Entry
}

// genOps derives a deterministic schedule of random updates from a seed:
// which server takes the write, when, and what entry. Ops continue
// through the partition window so both sides diverge.
func genOps(seed int64, n int, servers int, span time.Duration) []nsOp {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]nsOp, 0, n)
	for i := 0; i < n; i++ {
		ops = append(ops, nsOp{
			at:     time.Duration(rng.Int63n(int64(span))),
			server: rng.Intn(servers),
			entry:  randomEntry(rng),
		})
	}
	return ops
}

// runEquivScenario executes the schedule on a fresh 4-server world with
// a mid-run partition and heal, then returns each server's final
// database. The scenario is fully deterministic for a given (cfg, ops).
func runEquivScenario(t *testing.T, cfg Config, ops []nsOp) [][]Entry {
	t.Helper()
	w := newSrvWorld(t, 4, cfg)
	for _, op := range ops {
		op := op
		w.s.After(op.at, func() { w.servers[op.server].DB().Put(op.entry) })
	}
	w.s.After(2*time.Second, func() {
		w.nw.SetPartitions([]netsim.NodeID{0, 1}, []netsim.NodeID{2, 3})
	})
	w.s.After(6*time.Second, func() { w.nw.Heal() })
	w.s.RunFor(15 * time.Second)
	out := make([][]Entry, len(w.servers))
	for i, srv := range w.servers {
		out[i] = srv.DB().All()
	}
	return out
}

// TestDigestEquivalentToFullPush is the equivalence oracle for the
// digest/delta protocol: under identical random op schedules, partitions
// and heals, digest/delta sync must converge every replica to exactly
// the database the legacy full-push protocol produces.
func TestDigestEquivalentToFullPush(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		ops := genOps(seed, 60, 4, 9*time.Second)
		full := runEquivScenario(t, Config{MappingTTL: -1, FullPush: true}, ops)
		delta := runEquivScenario(t, Config{MappingTTL: -1}, ops)
		// Both worlds internally converged…
		for i := 1; i < len(full); i++ {
			if !reflect.DeepEqual(full[i], full[0]) {
				t.Fatalf("seed %d: full-push world did not converge", seed)
			}
			if !reflect.DeepEqual(delta[i], delta[0]) {
				t.Fatalf("seed %d: digest world did not converge", seed)
			}
		}
		// …and to the same database.
		if !reflect.DeepEqual(delta[0], full[0]) {
			t.Fatalf("seed %d: digest result differs from full push\nfull:  %v\ndelta: %v",
				seed, full[0], delta[0])
		}
	}
}

// TestDigestEquivalenceWithLeases reruns the oracle with mapping leases
// enabled, so expiry interleaves with reconciliation in both worlds.
func TestDigestEquivalenceWithLeases(t *testing.T) {
	ops := genOps(99, 40, 4, 9*time.Second)
	// Refreshed timestamps from randomEntry are far in the "past" of the
	// virtual clock start, so a short TTL exercises expiry heavily.
	cfgFull := Config{MappingTTL: 4 * time.Second, FullPush: true}
	cfgDelta := Config{MappingTTL: 4 * time.Second}
	full := runEquivScenario(t, cfgFull, ops)
	delta := runEquivScenario(t, cfgDelta, ops)
	for i := 1; i < len(full); i++ {
		if !reflect.DeepEqual(full[i], full[0]) {
			t.Fatalf("full-push world did not converge with leases")
		}
		if !reflect.DeepEqual(delta[i], delta[0]) {
			t.Fatalf("digest world did not converge with leases")
		}
	}
	if !reflect.DeepEqual(delta[0], full[0]) {
		t.Fatalf("digest result differs from full push with leases\nfull:  %v\ndelta: %v",
			full[0], delta[0])
	}
}

// mixedWorld builds a cluster where some servers run the digest protocol
// and others are pinned to full push, checking cross-mode convergence
// (the upgrade scenario the version fallback exists for).
func TestMixedModeConvergence(t *testing.T) {
	s := sim.New(7)
	nw := netsim.New(s, netsim.DefaultParams())
	pids := []ids.ProcessID{0, 1, 2, 3}
	var servers []*Server
	for i, pid := range pids {
		cfg := Config{MappingTTL: -1}
		if i%2 == 1 {
			cfg.FullPush = true
		}
		srv := NewServer(ServerParams{Net: nw, PID: pid, Peers: pids, Config: cfg})
		mux := netsim.NewMux()
		mux.Handle(ServerPrefix, srv.HandleMessage)
		nw.AddNode(pid, mux.Handler())
		srv.Start()
		servers = append(servers, srv)
	}
	rng := rand.New(rand.NewSource(5))
	for _, srv := range servers {
		for j := 0; j < 8; j++ {
			srv.DB().Put(randomEntry(rng))
		}
	}
	s.RunFor(6 * time.Second)
	ref := servers[0].DB().All()
	for i, srv := range servers[1:] {
		if !reflect.DeepEqual(srv.DB().All(), ref) {
			t.Fatalf("mixed-mode server %d did not converge", i+1)
		}
	}
}

package check

import (
	"fmt"
	"sort"

	"plwg/internal/ids"
	"plwg/internal/trace"
)

// Record is one upcall in a per-process delivery log: either a view
// installation (View non-zero) or a data delivery (Src/Data set). The
// log-based API lets layers without structured tracing — the vsync tests
// record upcalls directly — share the agreement checker.
type Record struct {
	// View, when non-zero, marks installation of that view.
	View ids.ViewID
	// Src and Data describe a delivered message (View zero).
	Src  ids.ProcessID
	Data string
}

// Install returns a view-installation record.
func Install(v ids.ViewID) Record { return Record{View: v} }

// Deliver returns a data-delivery record.
func Deliver(src ids.ProcessID, data string) Record {
	return Record{Src: src, Data: data}
}

// endMark keys the batch delivered after a process's final view install.
const endMark = "∎"

// windows slices one process's log into per-view delivery batches keyed
// by "oldView->newView". Consecutive installs of the same view (switch
// re-binding) extend the current batch. When final is set, the batch
// after the last install is kept under "lastView->∎" — valid only for
// quiescent runs, where no further deliveries are pending.
func windows(log []Record, final bool) map[string][]string {
	out := make(map[string][]string)
	var cur ids.ViewID
	var batch []string
	for _, r := range log {
		if r.View.IsZero() {
			batch = append(batch, fmt.Sprintf("%v:%s", r.Src, r.Data))
			continue
		}
		if r.View == cur {
			continue // re-binding: same view, batch continues
		}
		if !cur.IsZero() {
			out[cur.String()+"->"+r.View.String()] = batch
		}
		batch = nil
		cur = r.View
	}
	if final && !cur.IsZero() {
		out[cur.String()+"->"+endMark] = batch
	}
	return out
}

// Agreement checks virtually synchronous delivery agreement over
// per-process logs of one group: any two processes that both installed
// the same two consecutive views must have delivered the same multiset
// of messages between them.
//
// final selects the processes whose last open view window is also
// compared (nil: none). That is only sound for processes known to have
// finished delivering — survivors of a quiescent run — so callers pass a
// predicate for "is a final member"; processes that crashed or left
// mid-view stop delivering early and must keep their last window open.
func Agreement(group string, logs map[ids.ProcessID][]Record, final func(ids.ProcessID) bool) []Violation {
	per := make(map[ids.ProcessID]map[string][]string, len(logs))
	pids := make([]ids.ProcessID, 0, len(logs))
	for p, log := range logs {
		per[p] = windows(log, final != nil && final(p))
		pids = append(pids, p)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })

	var out []Violation
	for i, p := range pids {
		for _, q := range pids[i+1:] {
			for key, dp := range per[p] {
				dq, ok := per[q][key]
				if !ok {
					continue // q did not install both views
				}
				diff := make(map[string]int)
				for _, d := range dp {
					diff[d]++
				}
				for _, d := range dq {
					diff[d]--
				}
				keys := make([]string, 0, len(diff))
				for d, n := range diff {
					if n != 0 {
						keys = append(keys, d)
					}
				}
				sort.Strings(keys)
				for _, d := range keys {
					out = append(out, Violation{InvAgreement, group, q, fmt.Sprintf(
						"window %s: delivery of %q differs between %v and %v (%+d)",
						key, d, p, q, diff[d])})
				}
			}
		}
	}
	return out
}

// DeliverySafety runs every event-based delivery check over the LWG-layer
// trace: agreement, duplicate suppression, sender self-delivery and
// member-only sourcing.
func DeliverySafety(w *World) []Violation {
	type key struct {
		view ids.ViewID
		src  ids.ProcessID
		data string
	}
	// Per group: per-process logs, send counts, delivery counts, and the
	// installed membership of each view.
	logs := make(map[string]map[ids.ProcessID][]Record)
	sent := make(map[string]map[key]int)
	delivered := make(map[string]map[ids.ProcessID]map[key]int)
	members := make(map[string]map[ids.ViewID]ids.Members)

	ensure := func(group string) {
		if logs[group] == nil {
			logs[group] = make(map[ids.ProcessID][]Record)
			sent[group] = make(map[key]int)
			delivered[group] = make(map[ids.ProcessID]map[key]int)
			members[group] = make(map[ids.ViewID]ids.Members)
		}
	}

	var out []Violation
	for _, e := range w.Events {
		if e.Layer != "lwg" {
			continue
		}
		switch e.What {
		case trace.LWGViewInstall:
			ensure(e.Group)
			logs[e.Group][e.Node] = append(logs[e.Group][e.Node], Install(e.View))
			if prev, ok := members[e.Group][e.View]; ok {
				if !prev.Equal(e.Members) {
					out = append(out, Violation{InvViewIdentity, e.Group, e.Node,
						fmt.Sprintf("view %v installed with members %v and %v",
							e.View, prev, e.Members)})
				}
			} else {
				members[e.Group][e.View] = e.Members
			}
		case trace.LWGSend:
			ensure(e.Group)
			sent[e.Group][key{e.View, e.Node, e.Data}]++
		case trace.LWGDeliver:
			ensure(e.Group)
			logs[e.Group][e.Node] = append(logs[e.Group][e.Node], Deliver(e.Src, e.Data))
			d := delivered[e.Group][e.Node]
			if d == nil {
				d = make(map[key]int)
				delivered[e.Group][e.Node] = d
			}
			d[key{e.View, e.Src, e.Data}]++
			if ms, ok := members[e.Group][e.View]; ok && !ms.Contains(e.Src) {
				out = append(out, Violation{InvForeignSrc, e.Group, e.Node,
					fmt.Sprintf("delivered %q from %v, not a member of view %v%v",
						e.Data, e.Src, e.View, ms)})
			}
		}
	}

	for _, group := range sortedKeys(logs) {
		// Final-window comparison and the self-delivery check only cover
		// processes still members at quiescence: anyone who crashed or
		// left stopped delivering mid-view, legitimately.
		finalMember := func(p ids.ProcessID) bool {
			return w.Quiescent() && !w.Crashed[p] &&
				w.Expected[ids.LWGID(group)].Contains(p)
		}
		out = append(out, Agreement(group, logs[group], finalMember)...)

		// Duplicate check: nobody delivers a message more often than its
		// source sent it in that view (and never a message nobody sent).
		for _, p := range sortedPIDs(delivered[group]) {
			for k, n := range delivered[group][p] {
				if s := sent[group][k]; n > s {
					out = append(out, Violation{InvDuplicate, group, p, fmt.Sprintf(
						"delivered %q from %v in %v %d times, sent %d times",
						k.data, k.src, k.view, n, s)})
				}
			}
		}

		// Self-delivery: a surviving sender delivers its own message in
		// the view it stamped it with (the vsync substrate loops
		// multicasts back to the sender before any view change can
		// supersede the stamped view). Only checkable at quiescence, and
		// only for senders still members at the end.
		for k, n := range sent[group] {
			if !finalMember(k.src) {
				continue
			}
			if got := delivered[group][k.src][k]; got < n {
				out = append(out, Violation{InvLost, group, k.src, fmt.Sprintf(
					"sent %q in %v %d times but delivered own message %d times",
					k.data, k.view, n, got)})
			}
		}
	}
	return out
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedPIDs[V any](m map[ids.ProcessID]V) []ids.ProcessID {
	out := make([]ids.ProcessID, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

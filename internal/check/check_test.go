package check

import (
	"strings"
	"testing"

	"plwg/internal/ids"
	"plwg/internal/naming"
	"plwg/internal/trace"
)

var (
	vA = ids.ViewID{Coord: 1, Seq: 1}
	vB = ids.ViewID{Coord: 1, Seq: 2}
	vC = ids.ViewID{Coord: 2, Seq: 7}
)

// evInstall builds a structured view-install event.
func evInstall(node ids.ProcessID, lwg string, v ids.ViewID, ms ids.Members, parents ...ids.ViewID) trace.Event {
	return trace.Event{
		Node: node, Layer: "lwg", What: trace.LWGViewInstall,
		Group: lwg, View: v, Members: ms, Parents: parents,
	}
}

func evSend(node ids.ProcessID, lwg string, v ids.ViewID, data string) trace.Event {
	return trace.Event{
		Node: node, Layer: "lwg", What: trace.LWGSend,
		Group: lwg, View: v, Src: node, Data: data,
	}
}

func evDeliver(node ids.ProcessID, lwg string, v ids.ViewID, src ids.ProcessID, data string) trace.Event {
	return trace.Event{
		Node: node, Layer: "lwg", What: trace.LWGDeliver,
		Group: lwg, View: v, Src: src, Data: data,
	}
}

// cleanRun is a correct two-process run: both install vA, exchange one
// message, then install vB.
func cleanRun() []trace.Event {
	m12 := ids.NewMembers(1, 2)
	return []trace.Event{
		evInstall(1, "g", vA, m12),
		evInstall(2, "g", vA, m12),
		evSend(1, "g", vA, "m1"),
		evDeliver(1, "g", vA, 1, "m1"),
		evDeliver(2, "g", vA, 1, "m1"),
		evInstall(1, "g", vB, m12, vA),
		evInstall(2, "g", vB, m12, vA),
	}
}

func invariants(vs []Violation) []string {
	seen := map[string]bool{}
	var out []string
	for _, v := range vs {
		if !seen[v.Invariant] {
			seen[v.Invariant] = true
			out = append(out, v.Invariant)
		}
	}
	return out
}

func TestCleanRunHasNoViolations(t *testing.T) {
	w := &World{Events: cleanRun()}
	if vs := Run(w); len(vs) != 0 {
		t.Fatalf("clean run flagged:\n%s", Summary(vs))
	}
}

// TestSuppressedDeliveryDetected is the acceptance check: dropping one
// delivery from an otherwise virtually synchronous run must surface as an
// agreement violation (and, since the victim closed the window, nothing
// else masks it).
func TestSuppressedDeliveryDetected(t *testing.T) {
	evs := cleanRun()
	var cut []trace.Event
	for _, e := range evs {
		if e.What == trace.LWGDeliver && e.Node == 2 {
			continue // suppressed: p2 never sees m1
		}
		cut = append(cut, e)
	}
	vs := Run(&World{Events: cut})
	if len(vs) == 0 {
		t.Fatal("suppressed delivery not detected")
	}
	found := false
	for _, v := range vs {
		if v.Invariant == InvAgreement && v.Group == "g" {
			found = true
			if !strings.Contains(v.Detail, "m1") {
				t.Errorf("violation does not name the message: %s", v.Detail)
			}
		}
	}
	if !found {
		t.Fatalf("no %s violation, got:\n%s", InvAgreement, Summary(vs))
	}
}

// TestSuppressedSelfDeliveryDetected drops the SENDER's own delivery:
// even without a closing view change this must surface, via the
// self-delivery check.
func TestSuppressedSelfDeliveryDetected(t *testing.T) {
	m12 := ids.NewMembers(1, 2)
	evs := []trace.Event{
		evInstall(1, "g", vA, m12),
		evInstall(2, "g", vA, m12),
		evSend(1, "g", vA, "m1"),
		// p1's own delivery suppressed; p2 delivers fine.
		evDeliver(2, "g", vA, 1, "m1"),
	}
	// Self-delivery is a quiescence check: without Expected nothing fires
	// (the message could still be in flight).
	if vs := Run(&World{Events: evs}); len(vs) != 0 {
		t.Fatalf("non-quiescent run flagged:\n%s", Summary(vs))
	}
	expected := map[ids.LWGID]ids.Members{"g": m12}
	vs := Run(&World{Events: evs, Expected: expected})
	found := false
	for _, v := range vs {
		if v.Invariant == InvLost && v.Node == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("lost self-delivery not detected, got:\n%s", Summary(vs))
	}
	// A crashed sender is exempt.
	vs = Run(&World{Events: evs,
		Expected: map[ids.LWGID]ids.Members{"g": ids.NewMembers(2)},
		Crashed:  map[ids.ProcessID]bool{1: true}})
	for _, v := range vs {
		if v.Invariant == InvLost {
			t.Fatalf("crashed sender flagged: %s", v)
		}
	}
}

func TestDuplicateDeliveryDetected(t *testing.T) {
	evs := append(cleanRun(), evDeliver(2, "g", vB, 1, "m1"))
	// m1 was sent once in vA; the extra delivery claims view vB, where it
	// was never sent.
	vs := Run(&World{Events: evs})
	found := false
	for _, v := range vs {
		if v.Invariant == InvDuplicate && v.Node == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("duplicate delivery not detected, got:\n%s", Summary(vs))
	}
}

func TestForeignSourceDetected(t *testing.T) {
	m12 := ids.NewMembers(1, 2)
	evs := []trace.Event{
		evInstall(1, "g", vA, m12),
		evSend(3, "g", vA, "x"),
		evDeliver(1, "g", vA, 3, "x"), // p3 is not a member of vA
	}
	vs := Run(&World{Events: evs})
	found := false
	for _, v := range vs {
		if v.Invariant == InvForeignSrc {
			found = true
		}
	}
	if !found {
		t.Fatalf("foreign source not detected, got:\n%s", Summary(vs))
	}
}

func TestViewIdentityDetected(t *testing.T) {
	evs := []trace.Event{
		evInstall(1, "g", vA, ids.NewMembers(1, 2)),
		evInstall(2, "g", vA, ids.NewMembers(1, 2, 3)), // same ID, other set
	}
	vs := Run(&World{Events: evs})
	if got := invariants(vs); len(got) != 1 || got[0] != InvViewIdentity {
		t.Fatalf("want exactly %s, got:\n%s", InvViewIdentity, Summary(vs))
	}
}

func TestGenealogyRegressionDetected(t *testing.T) {
	m := ids.NewMembers(1)
	evs := []trace.Event{
		evInstall(1, "g", vA, m),
		evInstall(1, "g", vB, m, vA), // vA ≺ vB
		evInstall(1, "g", vA, m),     // regression: back to the ancestor
	}
	vs := Run(&World{Events: evs})
	found := false
	for _, v := range vs {
		if v.Invariant == InvRegression && v.Node == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("regression not detected, got:\n%s", Summary(vs))
	}
}

func TestGenealogyCycleDetected(t *testing.T) {
	m := ids.NewMembers(1)
	evs := []trace.Event{
		evInstall(1, "g", vA, m, vB), // vB ≺ vA ...
		evInstall(2, "g", vB, m, vA), // ... and vA ≺ vB: a cycle
	}
	vs := Run(&World{Events: evs})
	found := false
	for _, v := range vs {
		if v.Invariant == InvOrder {
			found = true
		}
	}
	if !found {
		t.Fatalf("ancestry cycle not detected, got:\n%s", Summary(vs))
	}
}

// --- end-state checks --------------------------------------------------------

type fakeProc struct {
	views map[ids.LWGID]ids.View
	maps  map[ids.LWGID]ids.HWGID
}

func (f *fakeProc) LWGs() []ids.LWGID {
	var out []ids.LWGID
	for l := range f.views {
		out = append(out, l)
	}
	return out
}

func (f *fakeProc) LWGView(l ids.LWGID) (ids.View, bool) {
	v, ok := f.views[l]
	return v, ok
}

func (f *fakeProc) Mapping(l ids.LWGID) (ids.HWGID, bool) {
	h, ok := f.maps[l]
	return h, ok
}

func proc(l ids.LWGID, v ids.View, h ids.HWGID) *fakeProc {
	return &fakeProc{
		views: map[ids.LWGID]ids.View{l: v},
		maps:  map[ids.LWGID]ids.HWGID{l: h},
	}
}

func TestConvergenceChecks(t *testing.T) {
	view := ids.View{ID: vA, Members: ids.NewMembers(1, 2)}
	ok := &World{
		Procs: map[ids.ProcessID]Process{
			1: proc("g", view, 5),
			2: proc("g", view, 5),
		},
		Expected: map[ids.LWGID]ids.Members{"g": ids.NewMembers(1, 2)},
	}
	if vs := Convergence(ok); len(vs) != 0 {
		t.Fatalf("converged world flagged:\n%s", Summary(vs))
	}

	split := &World{
		Procs: map[ids.ProcessID]Process{
			1: proc("g", view, 5),
			2: proc("g", ids.View{ID: vC, Members: ids.NewMembers(2)}, 6),
		},
		Expected: map[ids.LWGID]ids.Members{"g": ids.NewMembers(1, 2)},
	}
	vs := Convergence(split)
	got := map[string]bool{}
	for _, v := range vs {
		got[v.Invariant] = true
	}
	if !got[InvConvergence] || !got[InvMapping] {
		t.Fatalf("split world: want %s and %s, got:\n%s",
			InvConvergence, InvMapping, Summary(vs))
	}
}

func TestNamingConvergenceChecks(t *testing.T) {
	entry := func(v ids.ViewID, h ids.HWGID, ver uint64, anc ...ids.ViewID) naming.Entry {
		return naming.Entry{LWG: "g", View: v, Ancestors: anc, HWG: h, Ver: ver}
	}
	// Conflicting concurrent mappings on one server.
	db := naming.NewDB()
	db.Put(entry(vA, 5, 1))
	db.Put(entry(vC, 6, 2))
	w := &World{Servers: map[ids.ProcessID]*naming.DB{0: db}}
	vs := NamingConvergence(w)
	if len(vs) == 0 || vs[0].Invariant != InvNaming {
		t.Fatalf("conflicting mappings not flagged:\n%s", Summary(vs))
	}

	// Two servers disagreeing on the (single) live mapping.
	dbA, dbB := naming.NewDB(), naming.NewDB()
	dbA.Put(entry(vA, 5, 1))
	dbB.Put(entry(vC, 6, 2))
	w = &World{
		Servers:  map[ids.ProcessID]*naming.DB{0: dbA, 4: dbB},
		Expected: map[ids.LWGID]ids.Members{"g": ids.NewMembers(1)},
	}
	vs = NamingConvergence(w)
	found := false
	for _, v := range vs {
		if v.Invariant == InvNaming && strings.Contains(v.Detail, "disagrees") {
			found = true
		}
	}
	if !found {
		t.Fatalf("cross-server disagreement not flagged:\n%s", Summary(vs))
	}

	// A group with members but no surviving mapping anywhere.
	w = &World{
		Servers:  map[ids.ProcessID]*naming.DB{0: naming.NewDB()},
		Expected: map[ids.LWGID]ids.Members{"g": ids.NewMembers(1)},
	}
	vs = NamingConvergence(w)
	if len(vs) == 0 {
		t.Fatal("missing mapping not flagged")
	}
}

func TestAgreementFinalWindow(t *testing.T) {
	logs := map[ids.ProcessID][]Record{
		1: {Install(vA), Deliver(1, "m1")},
		2: {Install(vA)}, // never saw m1, never installed another view
	}
	if vs := Agreement("g", logs, nil); len(vs) != 0 {
		t.Fatalf("open window flagged without quiescence:\n%s", Summary(vs))
	}
	all := func(ids.ProcessID) bool { return true }
	vs := Agreement("g", logs, all)
	if len(vs) == 0 {
		t.Fatal("final-window divergence not flagged under quiescence")
	}
	// With p2 excluded (it crashed or left), its open window is ignored.
	only1 := func(p ids.ProcessID) bool { return p == 1 }
	if vs := Agreement("g", logs, only1); len(vs) != 0 {
		t.Fatalf("non-final process's window compared:\n%s", Summary(vs))
	}
}

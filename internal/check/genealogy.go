package check

import (
	"fmt"

	"plwg/internal/ids"
	"plwg/internal/trace"
)

// GenealogyOrder checks that, per light-weight group, the view ancestry
// declared by installed views forms a strict partial order — irreflexive
// and antisymmetric; transitivity holds by construction of the closure —
// and that no process ever installs a view that is an ancestor of a view
// it had already installed (no regression to the past).
func GenealogyOrder(events []trace.Event) []Violation {
	type install struct {
		node ids.ProcessID
		view ids.ViewID
	}
	gens := make(map[string]*ids.Genealogy)
	seq := make(map[string][]install)
	for _, e := range events {
		if e.Layer != "lwg" || e.What != trace.LWGViewInstall {
			continue
		}
		g := gens[e.Group]
		if g == nil {
			g = ids.NewGenealogy()
			gens[e.Group] = g
		}
		g.Record(e.View, e.Parents)
		seq[e.Group] = append(seq[e.Group], install{e.Node, e.View})
	}

	var out []Violation
	for _, group := range sortedKeys(gens) {
		g := gens[group]

		// Strictness: no view is its own ancestor, and no two views are
		// mutual ancestors.
		var views ids.ViewIDs
		seen := make(map[ids.ViewID]bool)
		for _, in := range seq[group] {
			if !seen[in.view] {
				seen[in.view] = true
				views = append(views, in.view)
			}
		}
		ids.SortViewIDs(views)
		for i, v := range views {
			if g.IsAncestor(v, v) {
				out = append(out, Violation{InvOrder, group, -1,
					fmt.Sprintf("view %v is its own ancestor", v)})
			}
			for _, u := range views[i+1:] {
				if g.IsAncestor(v, u) && g.IsAncestor(u, v) {
					out = append(out, Violation{InvOrder, group, -1,
						fmt.Sprintf("views %v and %v are mutual ancestors", v, u)})
				}
			}
		}

		// No regression: once a process installed view u, it never
		// installs a strict ancestor of u afterwards. (Consecutively
		// re-installing the same identifier — a switch re-binding — is
		// legitimate; returning to an old identifier later is not.)
		prior := make(map[ids.ProcessID]ids.ViewIDs)
		last := make(map[ids.ProcessID]ids.ViewID)
		for _, in := range seq[group] {
			if v, ok := last[in.node]; ok && v == in.view {
				continue
			}
			for _, u := range prior[in.node] {
				if u != in.view && g.IsAncestor(in.view, u) {
					out = append(out, Violation{InvRegression, group, in.node,
						fmt.Sprintf("installed %v after its descendant %v", in.view, u)})
				}
			}
			if !prior[in.node].Contains(in.view) {
				prior[in.node] = append(prior[in.node], in.view)
			}
			last[in.node] = in.view
		}
	}
	return out
}

// Package check verifies the paper's global safety properties — the
// correctness claims of Sections 5 and 6 — over recorded protocol traces
// and end-state snapshots:
//
//   - virtually synchronous delivery within light-weight group views:
//     processes that install the same two consecutive views deliver the
//     same multiset of messages between them, no message is delivered
//     more often than it was sent, a sender (that survives) delivers its
//     own message, and deliveries only come from members of the view;
//   - view-identifier genealogy forms a strict partial order, and no
//     process ever regresses to an ancestor of a view it installed;
//   - after a partition heals and the system quiesces, the surviving
//     members of every light-weight group converge on a single view with
//     a single heavy-weight mapping;
//   - the naming databases converge to at most one live mapping per
//     group, agreeing across servers.
//
// The checker is pure: it consumes a World snapshot (trace events plus
// read-only endpoint and naming-database state) and returns the list of
// violations, so any test or tool — the chaos tests, the schedule
// explorer (internal/explore) and the lwgcheck CLI — can share one
// implementation instead of hand-rolled assertions.
package check

import (
	"fmt"
	"sort"

	"plwg/internal/ids"
	"plwg/internal/naming"
	"plwg/internal/trace"
)

// Invariant identifiers carried by violations.
const (
	InvAgreement    = "vs-agreement"        // same-view delivery sets differ
	InvDuplicate    = "vs-duplicate"        // delivered more often than sent
	InvLost         = "vs-self-delivery"    // sender missed its own message
	InvForeignSrc   = "vs-foreign-source"   // delivery from a non-member
	InvOrder        = "genealogy-order"     // ancestry is not a strict partial order
	InvRegression   = "view-regression"     // installed an ancestor of a prior view
	InvViewIdentity = "view-identity"       // one view identifier, two member sets
	InvConvergence  = "heal-convergence"    // survivors disagree after heal
	InvMapping      = "mapping-agreement"   // members disagree on the HWG mapping
	InvNaming       = "naming-convergence"  // naming databases kept conflicts
	InvOverflow     = "preinstall-overflow" // pre-install buffer shed a data message
)

// Violation is one detected breach of a safety property.
type Violation struct {
	// Invariant is one of the Inv* identifiers.
	Invariant string
	// Group names the group concerned (LWG name, or HWGID rendering).
	Group string
	// Node is the offending process, or -1 for a global property.
	Node ids.ProcessID
	// Detail is a human-readable description.
	Detail string
}

// String renders the violation as one line.
func (v Violation) String() string {
	at := "global"
	if v.Node >= 0 {
		at = v.Node.String()
	}
	return fmt.Sprintf("[%s] %s @%s: %s", v.Invariant, v.Group, at, v.Detail)
}

// Process is the read-only endpoint surface the checker consumes.
// *core.Endpoint implements it.
type Process interface {
	LWGs() []ids.LWGID
	LWGView(ids.LWGID) (ids.View, bool)
	Mapping(ids.LWGID) (ids.HWGID, bool)
}

// World is a snapshot of a run: the recorded trace plus read-only state.
// Any field may be left zero to skip the checks that need it.
type World struct {
	// Events is the recorded trace (all layers; the checker filters).
	Events []trace.Event
	// Procs holds the live endpoints by process.
	Procs map[ids.ProcessID]Process
	// Servers holds each naming server's database by server process.
	Servers map[ids.ProcessID]*naming.DB
	// Expected, when non-nil, asserts the run has quiesced: it maps every
	// light-weight group to the membership expected after the final heal
	// (the survivors). It enables the convergence checks and the
	// final-window delivery agreement.
	Expected map[ids.LWGID]ids.Members
	// Crashed marks processes that crashed during the run; they are
	// exempt from liveness-flavoured checks (self-delivery).
	Crashed map[ids.ProcessID]bool
}

// Quiescent reports whether the world claims to have quiesced (Expected
// set), which arms the end-state checks.
func (w *World) Quiescent() bool { return w.Expected != nil }

// Run executes every check and returns the violations in deterministic
// order.
func Run(w *World) []Violation {
	var out []Violation
	out = append(out, DeliverySafety(w)...)
	out = append(out, GenealogyOrder(w.Events)...)
	out = append(out, Overflow(w.Events)...)
	out = append(out, Convergence(w)...)
	out = append(out, NamingConvergence(w)...)
	Sort(out)
	return out
}

// Overflow reports every pre-install buffer drop recorded in the trace.
// The bounded buffer in internal/core sheds the oldest view-tagged data
// message when it overflows; that is a deliberate delivery gap, and runs
// that provoke it must fail loudly — an exhaustive schedule enumeration
// that silently lost a message would otherwise claim the interleaving
// safe.
func Overflow(events []trace.Event) []Violation {
	var out []Violation
	for _, e := range events {
		if e.Layer != "lwg" || e.What != trace.LWGPreInstallDrop {
			continue
		}
		out = append(out, Violation{InvOverflow, e.Group, e.Node,
			fmt.Sprintf("shed %q from %v tagged %v", e.Data, e.Src, e.View)})
	}
	return out
}

// Sort orders violations deterministically (by invariant, group, node,
// detail).
func Sort(vs []Violation) {
	sort.Slice(vs, func(i, j int) bool {
		a, b := vs[i], vs[j]
		if a.Invariant != b.Invariant {
			return a.Invariant < b.Invariant
		}
		if a.Group != b.Group {
			return a.Group < b.Group
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Detail < b.Detail
	})
}

// Summary renders violations one per line (empty string when none).
func Summary(vs []Violation) string {
	out := ""
	for _, v := range vs {
		out += v.String() + "\n"
	}
	return out
}

// --- end-state convergence ---------------------------------------------------

// Convergence checks that, per light-weight group, every expected
// surviving member ended with the same view — containing exactly the
// survivors — and the same heavy-weight mapping. It needs Expected and
// Procs.
func Convergence(w *World) []Violation {
	if w.Expected == nil || w.Procs == nil {
		return nil
	}
	var out []Violation
	for _, lwg := range sortedLWGs(w.Expected) {
		want := w.Expected[lwg]
		if len(want) == 0 {
			continue
		}
		ref, ok := w.Procs[want[0]].LWGView(lwg)
		if !ok {
			out = append(out, Violation{InvConvergence, string(lwg), want[0],
				"no view after quiescence"})
			continue
		}
		if !ref.Members.Equal(want) {
			out = append(out, Violation{InvConvergence, string(lwg), want[0],
				fmt.Sprintf("members %v, want %v", ref.Members, want)})
		}
		refHwg, _ := w.Procs[want[0]].Mapping(lwg)
		for _, p := range want[1:] {
			v, ok := w.Procs[p].LWGView(lwg)
			if !ok || v.ID != ref.ID {
				out = append(out, Violation{InvConvergence, string(lwg), p,
					fmt.Sprintf("view %v (ok=%v), want %v", v.ID, ok, ref.ID)})
			}
			if h, _ := w.Procs[p].Mapping(lwg); h != refHwg {
				out = append(out, Violation{InvMapping, string(lwg), p,
					fmt.Sprintf("mapped on %v, %v mapped on %v", h, want[0], refHwg)})
			}
		}
	}
	return out
}

// NamingConvergence checks that every naming database holds at most one
// live mapping per group, that a mapping survives for groups that still
// have members, and that the servers agree on it. It needs Servers;
// Expected arms the liveness and cross-server checks.
func NamingConvergence(w *World) []Violation {
	if len(w.Servers) == 0 {
		return nil
	}
	var out []Violation
	type mapping struct {
		view ids.ViewID
		hwg  ids.HWGID
	}
	agreed := make(map[ids.LWGID]mapping)
	agreedBy := make(map[ids.LWGID]ids.ProcessID)
	for _, srv := range sortedServers(w.Servers) {
		db := w.Servers[srv]
		names := db.LWGs()
		for _, lwg := range names {
			live := db.Live(lwg)
			if len(live) > 1 {
				out = append(out, Violation{InvNaming, string(lwg), srv,
					fmt.Sprintf("%d live mappings:\n%s", len(live), db.Dump())})
				continue
			}
			if len(live) == 0 {
				continue
			}
			got := mapping{live[0].View, live[0].HWG}
			if prev, ok := agreed[lwg]; ok && w.Quiescent() && prev != got {
				out = append(out, Violation{InvNaming, string(lwg), srv,
					fmt.Sprintf("live mapping %v->%v disagrees with %v's %v->%v",
						got.view, got.hwg, agreedBy[lwg], prev.view, prev.hwg)})
			} else if !ok {
				agreed[lwg] = got
				agreedBy[lwg] = srv
			}
		}
	}
	if w.Quiescent() {
		for _, lwg := range sortedLWGs(w.Expected) {
			if len(w.Expected[lwg]) == 0 {
				continue
			}
			for _, srv := range sortedServers(w.Servers) {
				if len(w.Servers[srv].Live(lwg)) == 0 {
					out = append(out, Violation{InvNaming, string(lwg), srv,
						"no live mapping for a group that still has members"})
				}
			}
		}
	}
	return out
}

func sortedLWGs[V any](m map[ids.LWGID]V) []ids.LWGID {
	out := make([]ids.LWGID, 0, len(m))
	for l := range m {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedServers(m map[ids.ProcessID]*naming.DB) []ids.ProcessID {
	out := make([]ids.ProcessID, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

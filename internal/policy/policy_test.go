package policy

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"plwg/internal/ids"
)

func mm(ps ...ids.ProcessID) ids.Members { return ids.NewMembers(ps...) }

func TestMinority(t *testing.T) {
	p := DefaultParams() // k_m = 4
	tests := []struct {
		name   string
		g1, g2 ids.Members
		want   bool
	}{
		{"1 of 4 is minority", mm(1), mm(1, 2, 3, 4), true},
		{"2 of 8 is minority", mm(1, 2), mm(1, 2, 3, 4, 5, 6, 7, 8), true},
		{"2 of 4 is not", mm(1, 2), mm(1, 2, 3, 4), false},
		{"not a subset", mm(1, 9), mm(1, 2, 3, 4, 5, 6, 7, 8), false},
		{"1 of 3 is not (3/4 < 1)", mm(1), mm(1, 2, 3), false},
		{"1 of 8", mm(1), mm(1, 2, 3, 4, 5, 6, 7, 8), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Minority(tt.g1, tt.g2, p); got != tt.want {
				t.Errorf("Minority(%v,%v) = %v, want %v", tt.g1, tt.g2, got, tt.want)
			}
		})
	}
}

func TestCloseEnough(t *testing.T) {
	p := DefaultParams() // k_c = 4
	tests := []struct {
		name   string
		g1, g2 ids.Members
		want   bool
	}{
		{"identical", mm(1, 2, 3, 4), mm(1, 2, 3, 4), true},
		{"3 of 4: diff 1 ≤ 1", mm(1, 2, 3), mm(1, 2, 3, 4), true},
		{"2 of 4: diff 2 > 1", mm(1, 2), mm(1, 2, 3, 4), false},
		{"6 of 8: diff 2 = 2", mm(1, 2, 3, 4, 5, 6), mm(1, 2, 3, 4, 5, 6, 7, 8), true},
		{"5 of 8: diff 3 > 2", mm(1, 2, 3, 4, 5), mm(1, 2, 3, 4, 5, 6, 7, 8), false},
		{"not subset", mm(9), mm(1, 2, 3, 4), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := CloseEnough(tt.g1, tt.g2, p); got != tt.want {
				t.Errorf("CloseEnough(%v,%v) = %v, want %v", tt.g1, tt.g2, got, tt.want)
			}
		})
	}
}

func TestPaperHysteresis(t *testing.T) {
	// Section 3.2: with k_m = k_c = 4, "for a LWG to be mapped on a HWG,
	// the number of their common members must be greater than 75% of the
	// size of the HWG, and the mapping remains stable until this number
	// is reduced to 25%".
	p := DefaultParams()
	hwg := mm(1, 2, 3, 4, 5, 6, 7, 8)
	// 75% (6 of 8) qualifies for mapping (close enough).
	if !CloseEnough(mm(1, 2, 3, 4, 5, 6), hwg, p) {
		t.Error("75% overlap should be close enough")
	}
	// 50% (4 of 8) does not qualify for mapping...
	if CloseEnough(mm(1, 2, 3, 4), hwg, p) {
		t.Error("50% overlap should not be close enough")
	}
	// ...but an existing mapping at 50% is kept (not yet a minority).
	if Minority(mm(1, 2, 3, 4), hwg, p) {
		t.Error("50% overlap must not trigger a switch")
	}
	// At 25% (2 of 8) the mapping finally breaks.
	if !Minority(mm(1, 2), hwg, p) {
		t.Error("25% overlap must trigger a switch")
	}
}

func TestShouldCollapse(t *testing.T) {
	p := DefaultParams()
	tests := []struct {
		name   string
		h1, h2 ids.Members
		want   bool
	}{
		// Identical membership: n1 = n2 = 0, k = 4 > 0 → collapse.
		{"identical", mm(1, 2, 3, 4), mm(1, 2, 3, 4), true},
		// Disjoint: k = 0 → no collapse.
		{"disjoint", mm(1, 2, 3, 4), mm(5, 6, 7, 8), false},
		// Subset and minority: keep separate (the small group would be
		// drowned by the big one's traffic).
		{"minority subset", mm(1), mm(1, 2, 3, 4), false},
		// Subset but not minority: n1 = 0 → collapse (k=3 > 0).
		{"large subset", mm(1, 2, 3), mm(1, 2, 3, 4), true},
		// Heavy overlap: k=3, n1=n2=1, √2 ≈ 1.41 < 3 → collapse.
		{"heavy overlap", mm(1, 2, 3, 4), mm(2, 3, 4, 5), true},
		// Light overlap: k=1, n1=n2=3, √18 ≈ 4.24 > 1 → keep apart.
		{"light overlap", mm(1, 2, 3, 9), mm(9, 6, 7, 8), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ShouldCollapse(tt.h1, tt.h2, p); got != tt.want {
				t.Errorf("ShouldCollapse(%v,%v) = %v, want %v", tt.h1, tt.h2, got, tt.want)
			}
		})
	}
}

func TestShouldCollapseSymmetric(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(randMembers(r))
			vals[1] = reflect.ValueOf(randMembers(r))
		},
	}
	p := DefaultParams()
	prop := func(a, b ids.Members) bool {
		return ShouldCollapse(a, b, p) == ShouldCollapse(b, a, p)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestCollapseInto(t *testing.T) {
	if CollapseInto(3, 7) != 7 || CollapseInto(7, 3) != 7 {
		t.Error("the higher group identifier must survive a collapse")
	}
}

func TestInterference(t *testing.T) {
	p := DefaultParams()
	cur := HWG{GID: 1, Members: mm(1, 2, 3, 4, 5, 6, 7, 8)}
	lwg := mm(1, 2) // 2 of 8 = minority → must switch

	t.Run("switch to close-enough hwg", func(t *testing.T) {
		known := []HWG{
			cur,
			{GID: 5, Members: mm(1, 2)},       // identical → close enough
			{GID: 3, Members: mm(1, 2, 3)},    // diff 1 > 3/4 → not close
			{GID: 9, Members: mm(5, 6, 7, 8)}, // not a superset
		}
		d := Interference(lwg, cur, known, p)
		if !d.Switch || d.Target != 5 {
			t.Errorf("decision = %+v, want switch to hwg5", d)
		}
	})

	t.Run("ties break to highest gid", func(t *testing.T) {
		known := []HWG{
			cur,
			{GID: 5, Members: mm(1, 2)},
			{GID: 8, Members: mm(1, 2)},
		}
		d := Interference(lwg, cur, known, p)
		if d.Target != 8 {
			t.Errorf("target = %v, want 8 (highest gid wins)", d.Target)
		}
	})

	t.Run("create new when nothing close", func(t *testing.T) {
		d := Interference(lwg, cur, []HWG{cur}, p)
		if !d.Switch || d.Target != ids.NoHWG {
			t.Errorf("decision = %+v, want switch to a fresh hwg", d)
		}
	})

	t.Run("no switch when not minority", func(t *testing.T) {
		big := mm(1, 2, 3)
		d := Interference(big, cur, nil, p)
		if d.Switch {
			t.Errorf("3 of 8 is not a minority; decision = %+v", d)
		}
	})
}

func TestInterferenceDeterministic(t *testing.T) {
	// The same inputs must always produce the same decision regardless of
	// candidate order (another of the paper's stability measures).
	p := DefaultParams()
	cur := HWG{GID: 1, Members: mm(1, 2, 3, 4, 5, 6, 7, 8)}
	lwg := mm(1, 2)
	known := []HWG{
		{GID: 5, Members: mm(1, 2)},
		{GID: 8, Members: mm(1, 2)},
		{GID: 2, Members: mm(1, 2)},
	}
	want := Interference(lwg, cur, known, p)
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 20; i++ {
		shuffled := append([]HWG(nil), known...)
		r.Shuffle(len(shuffled), func(a, b int) { shuffled[a], shuffled[b] = shuffled[b], shuffled[a] })
		if got := Interference(lwg, cur, shuffled, p); got != want {
			t.Fatalf("order-dependent decision: %+v vs %+v", got, want)
		}
	}
}

func TestShouldShrink(t *testing.T) {
	if !ShouldShrink(0) {
		t.Error("a member with no local LWG must leave its HWG")
	}
	if ShouldShrink(1) {
		t.Error("a member with local LWGs must stay")
	}
}

func TestPickInitialHWG(t *testing.T) {
	if got := PickInitialHWG(nil); got != ids.NoHWG {
		t.Errorf("no known HWGs: got %v, want NoHWG", got)
	}
	known := []HWG{
		{GID: 2, Members: mm(1, 2, 3, 4, 5)},
		{GID: 7, Members: mm(1, 2)},
		{GID: 4, Members: mm(1, 2)},
	}
	// Smallest membership wins; among equals, the highest gid.
	if got := PickInitialHWG(known); got != 7 {
		t.Errorf("PickInitialHWG = %v, want 7", got)
	}
}

func TestZeroParamsUseDefaults(t *testing.T) {
	// A zero Params behaves like the paper's k_m = k_c = 4.
	if Minority(mm(1), mm(1, 2, 3), Params{}) {
		t.Error("zero params must default to k_m = 4")
	}
	if !Minority(mm(1), mm(1, 2, 3, 4), Params{}) {
		t.Error("zero params must default to k_m = 4")
	}
}

func randMembers(r *rand.Rand) ids.Members {
	n := r.Intn(10)
	ps := make([]ids.ProcessID, n)
	for i := range ps {
		ps[i] = ids.ProcessID(r.Intn(12))
	}
	return ids.NewMembers(ps...)
}

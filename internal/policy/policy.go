// Package policy implements the mapping heuristics of Figure 1 of the
// paper: the predicates (minority, closeness) and the share, interference
// and shrink rules that balance the twin goals of resource sharing and
// interference minimization (Section 3.2).
//
// The rules are pure functions over membership sets, so every process
// evaluating them on the same local knowledge reaches the same decision —
// one of the paper's stability measures. Where several candidates match a
// criterion, the total order of group identifiers breaks the tie (the
// highest identifier wins, the same order used by partition
// reconciliation in Section 6.2).
package policy

import (
	"math"
	"sort"

	"plwg/internal/ids"
)

// Params are the configuration parameters of Figure 1. The paper's
// prototype uses KM = KC = 4: a LWG is mapped onto a HWG only when their
// common members exceed 75% of the HWG, and the mapping stays until the
// overlap drops to 25% — a deliberate hysteresis that prevents mapping
// oscillation.
type Params struct {
	// KM is k_m, the minority divisor.
	KM int
	// KC is k_c, the closeness divisor.
	KC int
}

// DefaultParams returns the paper's prototype setting, k_m = k_c = 4.
func DefaultParams() Params { return Params{KM: 4, KC: 4} }

func (p Params) withDefaults() Params {
	if p.KM <= 0 {
		p.KM = 4
	}
	if p.KC <= 0 {
		p.KC = 4
	}
	return p
}

// Minority reports whether g1 is a minority of g2: g1 ⊆ g2 and
// |g1| ≤ |g2|/k_m.
func Minority(g1, g2 ids.Members, p Params) bool {
	p = p.withDefaults()
	if !g1.SubsetOf(g2) {
		return false
	}
	return len(g1)*p.KM <= len(g2)
}

// CloseEnough reports whether g1 and g2 are close enough: g1 ⊆ g2 and
// |g2| − |g1| ≤ |g2|/k_c.
func CloseEnough(g1, g2 ids.Members, p Params) bool {
	p = p.withDefaults()
	if !g1.SubsetOf(g2) {
		return false
	}
	return (len(g2)-len(g1))*p.KC <= len(g2)
}

// ShouldCollapse evaluates the share rule for a pair of heavy-weight
// groups with memberships h1 and h2: writing |h1| = n1 + k, |h2| = n2 + k
// with k = |h1 ∩ h2|, the groups collapse when neither is a minority
// subset of the other and k > √(2·n1·n2).
func ShouldCollapse(h1, h2 ids.Members, p Params) bool {
	k := len(h1.Intersect(h2))
	n1 := len(h1) - k
	n2 := len(h2) - k
	sub1 := h1.SubsetOf(h2) && Minority(h1, h2, p)
	sub2 := h2.SubsetOf(h1) && Minority(h2, h1, p)
	if sub1 || sub2 {
		return false
	}
	return float64(k) > math.Sqrt(2*float64(n1)*float64(n2))
}

// CollapseInto returns the surviving group of a collapse: the higher
// group identifier wins, consistently with the reconciliation rule of
// Section 6.2, so every process picks the same survivor.
func CollapseInto(g1, g2 ids.HWGID) ids.HWGID {
	if g1 > g2 {
		return g1
	}
	return g2
}

// HWG describes one heavy-weight group known to the deciding process.
type HWG struct {
	GID     ids.HWGID
	Members ids.Members
}

// InterferenceDecision is the outcome of the interference rule for one
// light-weight group.
type InterferenceDecision struct {
	// Switch is true when the LWG should move off its current HWG.
	Switch bool
	// Target is the HWG to switch to; NoHWG when a fresh HWG with
	// membership identical to the LWG should be created.
	Target ids.HWGID
}

// Interference evaluates the interference rule for a light-weight group
// with membership lwg currently mapped onto the HWG cur: if the LWG is a
// minority of its HWG, switch it to a known HWG whose membership is close
// enough, or to a fresh HWG otherwise. Among several close-enough
// candidates the highest identifier wins.
func Interference(lwg ids.Members, cur HWG, known []HWG, p Params) InterferenceDecision {
	if !Minority(lwg, cur.Members, p) {
		return InterferenceDecision{}
	}
	var best ids.HWGID
	for _, h := range known {
		if h.GID == cur.GID {
			continue
		}
		if CloseEnough(lwg, h.Members, p) && h.GID > best {
			best = h.GID
		}
	}
	return InterferenceDecision{Switch: true, Target: best}
}

// ShouldShrink evaluates the shrink rule for one process: a member of a
// heavy-weight group with no light-weight group mapped onto it (from this
// process's perspective) should leave the HWG; a HWG abandoned by all
// members is thereby deleted.
func ShouldShrink(localLWGsOnHWG int) bool { return localLWGsOnHWG == 0 }

// PickInitialHWG implements the optimistic creation-time mapping
// (Section 3.2): a new LWG is assumed to resemble some existing group, so
// it is mapped onto one of the HWGs its creator already belongs to — the
// one whose membership is closest in size to the new group's expected
// singleton start, with the group-identifier order breaking ties. It
// returns NoHWG when the creator belongs to no HWG (a fresh HWG must be
// created).
func PickInitialHWG(known []HWG) ids.HWGID {
	if len(known) == 0 {
		return ids.NoHWG
	}
	sorted := append([]HWG(nil), known...)
	sort.Slice(sorted, func(i, j int) bool {
		if len(sorted[i].Members) != len(sorted[j].Members) {
			return len(sorted[i].Members) < len(sorted[j].Members)
		}
		return sorted[i].GID > sorted[j].GID
	})
	return sorted[0].GID
}

package workload

import (
	"testing"

	"plwg/internal/ids"
)

func TestFig2Topology(t *testing.T) {
	topo := Fig2Topology(3)
	if topo.Procs != 8 {
		t.Errorf("Procs = %d, want 8", topo.Procs)
	}
	if len(topo.Groups) != 6 {
		t.Fatalf("groups = %d, want 6", len(topo.Groups))
	}
	setA := ids.NewMembers(0, 1, 2, 3)
	setB := ids.NewMembers(4, 5, 6, 7)
	for i, g := range topo.Groups {
		if i < 3 {
			if g.Set != 0 || !g.Members.Equal(setA) {
				t.Errorf("group %d = %+v, want set A %v", i, g, setA)
			}
		} else {
			if g.Set != 1 || !g.Members.Equal(setB) {
				t.Errorf("group %d = %+v, want set B %v", i, g, setB)
			}
		}
	}
	if topo.Groups[0].Name != "a1" || topo.Groups[3].Name != "b1" {
		t.Errorf("names = %v, %v", topo.Groups[0].Name, topo.Groups[3].Name)
	}
	if topo.Groups[0].Sender() != 0 || topo.Groups[3].Sender() != 4 {
		t.Error("senders must be the first members")
	}
}

func TestGroupsOf(t *testing.T) {
	topo := Fig2Topology(2)
	if got := topo.GroupsOf(0); len(got) != 2 {
		t.Errorf("p0 is in %d groups, want 2", len(got))
	}
	if got := topo.GroupsOf(4); len(got) != 2 {
		t.Errorf("p4 is in %d groups, want 2", len(got))
	}
	for _, g := range topo.GroupsOf(0) {
		if g.Set != 0 {
			t.Errorf("p0 must only be in set A groups, got %+v", g)
		}
	}
	if got := topo.GroupsWith(3); len(got) != 2 {
		t.Errorf("GroupsWith(3) = %d", len(got))
	}
}

func TestOverlapTopology(t *testing.T) {
	topo := OverlapTopology(8, 4, 4, 2)
	if len(topo.Groups) != 4 {
		t.Fatalf("groups = %d", len(topo.Groups))
	}
	// Group 0 covers {0,1,2,3}, group 1 covers {2,3,4,5}: overlap 2.
	g0, g1 := topo.Groups[0], topo.Groups[1]
	if !g0.Members.Equal(ids.NewMembers(0, 1, 2, 3)) {
		t.Errorf("g0 members = %v", g0.Members)
	}
	if got := g0.Members.Intersect(g1.Members); len(got) != 2 {
		t.Errorf("overlap = %v, want 2 members", got)
	}
	// Wrap-around: the last group crosses the process ring boundary.
	g3 := topo.Groups[3]
	if !g3.Members.Equal(ids.NewMembers(6, 7, 0, 1)) {
		t.Errorf("g3 members = %v", g3.Members)
	}
}

// Package workload defines the experiment topologies and traffic
// patterns of the paper's evaluation (Section 3.3).
//
// The Figure 2 configuration is "two sets of n user groups where each
// group within a set has identical membership of 4 processes, and the two
// sets have disjoint membership": processes p0–p3 form set A with groups
// a1..an, processes p4–p7 form set B with groups b1..bn.
package workload

import (
	"fmt"

	"plwg/internal/ids"
)

// GroupRef identifies one user group of a topology.
type GroupRef struct {
	// Set indexes the group set (0 = "a", 1 = "b", ...).
	Set int
	// Index is the group's 1-based index within its set.
	Index int
	// Name is the light-weight group name ("a1", "b7", ...).
	Name ids.LWGID
	// Members is the group's membership.
	Members ids.Members
}

// Sender returns the group's designated traffic source (its first
// member).
func (g GroupRef) Sender() ids.ProcessID { return g.Members[0] }

// Topology is a set of user groups over a set of processes.
type Topology struct {
	// Procs is the number of processes (nodes).
	Procs int
	// Groups lists every user group.
	Groups []GroupRef
}

// Fig2Topology builds the paper's Figure 2 configuration with n groups
// per set: 8 processes, set A groups a1..an over {p0..p3}, set B groups
// b1..bn over {p4..p7}.
func Fig2Topology(n int) Topology {
	t := Topology{Procs: 8}
	setA := ids.NewMembers(0, 1, 2, 3)
	setB := ids.NewMembers(4, 5, 6, 7)
	for i := 1; i <= n; i++ {
		t.Groups = append(t.Groups, GroupRef{
			Set: 0, Index: i,
			Name:    ids.LWGID(fmt.Sprintf("a%d", i)),
			Members: setA.Clone(),
		})
	}
	for i := 1; i <= n; i++ {
		t.Groups = append(t.Groups, GroupRef{
			Set: 1, Index: i,
			Name:    ids.LWGID(fmt.Sprintf("b%d", i)),
			Members: setB.Clone(),
		})
	}
	return t
}

// OverlapTopology builds a topology where consecutive groups share part
// of their membership (the Swiss-Exchange-style "overlapping subjects"
// pattern from the paper's introduction): group i has `size` members
// starting at process i*stride mod procs.
func OverlapTopology(procs, groups, size, stride int) Topology {
	t := Topology{Procs: procs}
	for i := 0; i < groups; i++ {
		members := make([]ids.ProcessID, size)
		for j := 0; j < size; j++ {
			members[j] = ids.ProcessID((i*stride + j) % procs)
		}
		t.Groups = append(t.Groups, GroupRef{
			Set: 0, Index: i + 1,
			Name:    ids.LWGID(fmt.Sprintf("s%d", i+1)),
			Members: ids.NewMembers(members...),
		})
	}
	return t
}

// GroupsOf returns the groups that contain the process.
func (t Topology) GroupsOf(p ids.ProcessID) []GroupRef {
	var out []GroupRef
	for _, g := range t.Groups {
		if g.Members.Contains(p) {
			out = append(out, g)
		}
	}
	return out
}

// GroupsWith returns the groups whose membership contains the process
// (alias kept for readability at call sites measuring crash impact).
func (t Topology) GroupsWith(p ids.ProcessID) []GroupRef { return t.GroupsOf(p) }

package core

import (
	"fmt"

	"plwg/internal/ids"
	"plwg/internal/trace"
	"plwg/internal/vsync"
)

// LWG message packing: user sends from every LWG mapped on the same HWG
// coalesce into one lwgBatch multicast, amortizing the per-frame
// overhead, the vsync header, and the per-receiver processing cost
// across the batch. Each packed payload keeps its own LWG and view tag,
// so view-change filtering and the merge-views protocol see exactly the
// messages they would have seen unbatched.
//
// Ordering invariant: a batch never survives past a control message on
// its HWG. Every control send goes through hwgSend, which flushes the
// batch first — so batched data is multicast before any lwgStop,
// lwgFlushOk or lwgView it could otherwise reorder with, and LWG
// flushes account for it in the view it was sent in.
//
// Stop invariant: when the HWG itself stops (vsync flush), the vsync
// layer has already quiesced — a multicast now would be buffered and
// re-sent in the NEW heavy-weight view, still carrying the old LWG view
// tags, and dropped at every receiver as ancestor-view traffic. The
// batch is instead requeued as pending sends and re-tagged when the
// LWGs drain after the next view installs.

// enqueueBatch adds one data message to the HWG's send batch, flushing
// by size or arming the delay flush.
func (e *Endpoint) enqueueBatch(st *hwgState, msg *lwgData) {
	st.batch = append(st.batch, msg)
	st.batchBytes += msg.WireSize()
	if st.batchBytes >= e.cfg.MaxBatchBytes {
		e.flushBatch(st)
		return
	}
	if st.batchTimer == nil {
		st.batchTimer = e.clock.After(e.cfg.MaxBatchDelay, func() {
			st.batchTimer = nil
			e.flushBatch(st)
		})
	}
}

// flushBatch multicasts the pending batch, if any. A single packed
// message goes out as a plain lwgData — no batch framing to pay for.
// The LWGSend trace is emitted here, not at enqueue: a batched payload
// can still be pulled back (requeueBatch) and re-stamped under a later
// view, so only the copy that actually reaches the wire counts as sent —
// anything earlier double-counts against the delivery invariants.
func (e *Endpoint) flushBatch(st *hwgState) {
	if st.batchTimer != nil {
		st.batchTimer.Stop()
		st.batchTimer = nil
	}
	if len(st.batch) == 0 || st.stopped {
		return
	}
	batch := st.batch
	bytes := st.batchBytes
	st.batch, st.batchBytes = nil, 0
	for _, msg := range batch {
		e.traceSend(msg)
	}
	e.ins.batchFlushes.Inc()
	e.ins.batchedMsgs.Add(int64(len(batch)))
	e.ins.batchedBytes.Add(int64(bytes))
	if len(batch) == 1 {
		_ = e.hwg.Send(st.gid, batch[0])
		return
	}
	_ = e.hwg.Send(st.gid, &lwgBatch{Msgs: batch})
}

// traceSend records one data payload leaving under its final view tag,
// and counts it — only the copy that reaches the wire counts as sent.
func (e *Endpoint) traceSend(msg *lwgData) {
	e.ins.sends.Inc()
	if e.reg != nil {
		if m := e.lwgs[msg.LWG]; m != nil {
			m.cSends.Inc()
		}
	}
	e.traceEvent(trace.Event{
		What:  trace.LWGSend,
		Text:  fmt.Sprintf("%s: %q in %v", msg.LWG, msg.Data, msg.View),
		Group: string(msg.LWG),
		View:  msg.View,
		Src:   e.pid,
		Data:  string(msg.Data),
	})
}

// hwgSend multicasts a control message on the HWG, draining any pending
// data batch first so batched lwgData never reorders after control
// traffic (the flush and switch protocols depend on this).
func (e *Endpoint) hwgSend(gid ids.HWGID, p vsync.Payload) {
	if st := e.hwgs[gid]; st != nil {
		e.flushBatch(st)
	}
	_ = e.hwg.Send(gid, p)
}

// requeueBatch returns every batched payload to its LWG's pending-send
// queue (prepended, preserving order) — used when the HWG stops and the
// batch can no longer be multicast under its current view tags.
func (e *Endpoint) requeueBatch(st *hwgState) {
	if st.batchTimer != nil {
		st.batchTimer.Stop()
		st.batchTimer = nil
	}
	if len(st.batch) == 0 {
		return
	}
	batch := st.batch
	st.batch, st.batchBytes = nil, 0
	per := make(map[ids.LWGID][][]byte)
	for _, d := range batch {
		per[d.LWG] = append(per[d.LWG], d.Data)
	}
	for l, data := range per {
		if m := e.lwgs[l]; m != nil {
			m.pendingSends = append(data, m.pendingSends...)
		}
	}
}

// requeueBatchFor pulls one LWG's payloads out of the HWG batch and
// prepends them to its pending sends — used when that LWG installs a
// new view while payloads tagged with its old view are still packed
// (they would be dropped as ancestor-view traffic if multicast late).
func (e *Endpoint) requeueBatchFor(st *hwgState, m *lwgMember) {
	if len(st.batch) == 0 {
		return
	}
	var mine [][]byte
	kept := st.batch[:0]
	bytes := 0
	for _, d := range st.batch {
		if d.LWG == m.id {
			mine = append(mine, d.Data)
			continue
		}
		kept = append(kept, d)
		bytes += d.WireSize()
	}
	st.batch, st.batchBytes = kept, bytes
	if len(st.batch) == 0 && st.batchTimer != nil {
		st.batchTimer.Stop()
		st.batchTimer = nil
	}
	if len(mine) > 0 {
		m.pendingSends = append(mine, m.pendingSends...)
	}
}

package core

import (
	"fmt"

	"plwg/internal/ids"
	"plwg/internal/metrics"
	"plwg/internal/naming"
	"plwg/internal/policy"
	"plwg/internal/sim"
	"plwg/internal/trace"
)

// lwgState is the per-LWG protocol state of a member process.
type lwgState int

const (
	// lwgResolving: consulting the naming service for a mapping (and
	// possibly racing to create one).
	lwgResolving lwgState = iota + 1
	// lwgJoining: member of the mapped HWG, requesting admission into
	// the LWG view.
	lwgJoining
	// lwgActive: a LWG view is installed and traffic flows.
	lwgActive
	// lwgStopped: a LWG-level flush is in progress (sends are buffered).
	lwgStopped
	// lwgSwitching: re-mapping onto another HWG (sends are buffered).
	lwgSwitching
)

// lwgMember is the per-(process, LWG) protocol instance.
type lwgMember struct {
	e  *Endpoint
	id ids.LWGID

	state lwgState
	hwg   ids.HWGID
	view  ids.View
	// ancestors is the full strict-ancestor set of view, maintained so
	// concurrency can be decided locally and reported to the naming
	// service.
	ancestors ids.ViewIDs

	pendingSends [][]byte

	// preInstall buffers data received while resolving/joining, stamped
	// with views not yet installed (the admission announcement can lose
	// the race against the first data sent in the new view when the
	// joiner was not in the announcing vsync view). Replayed at install.
	preInstall []pendingData

	// Join machinery.
	proposedView ids.View // the singleton view offered to ns.testset
	foundNow     bool     // we won the creation race: found on HWG view
	joinTicker   *sim.Ticker
	joinTimer    *sim.Timer
	nsTimer      *sim.Timer

	// Coordinator-side LWG flush.
	fl             *lwgFlushRound
	pendingJoiners map[ids.ProcessID]bool
	pendingLeavers map[ids.ProcessID]bool
	// pendingRejoiners are processes already listed in the current view
	// that nevertheless requested admission: their stale membership was
	// carried into this view by a merge while they were still resolving,
	// so they missed any traffic the view has already carried. They are
	// served by cutting a fresh view (same members, new boundary) so
	// their delivery obligations start where their buffering did.
	pendingRejoiners map[ids.ProcessID]bool

	// seenTraffic reports whether any data has been delivered in the
	// current view; reset at every install. A quiet view is safe to
	// re-announce to a rejoiner — there is nothing it can have missed.
	seenTraffic bool

	// Leave intent of this process.
	leaveRequested bool
	leaveTicker    *sim.Ticker

	// Switching.
	switchTarget ids.HWGID
	switchTicker *sim.Ticker
	// sw is coordinator-side switch state (ready-collection).
	sw *switchRound

	// Per-LWG labeled counters, resolved once at membership creation
	// (nil with metrics disabled; nil instruments no-op).
	cSends    *metrics.Counter
	cDelivers *metrics.Counter
	// hLatency is the LWG-level one-way send→deliver latency histogram,
	// fed by wire trace contexts surviving through the HWG delivery path.
	hLatency *metrics.Histo
}

// lwgFlushRound is the coordinator-side state of one LWG-level flush.
type lwgFlushRound struct {
	view     ids.ViewID
	expected ids.Members
	got      map[ids.ProcessID]bool
	timer    *sim.Timer
	attempts int
	onDone   func()
}

// pendingData is one buffered pre-install data message.
type pendingData struct {
	src ids.ProcessID
	msg *lwgData
}

// switchRound is the coordinator-side state of one switching protocol
// run.
type switchRound struct {
	target ids.HWGID
	ready  map[ids.ProcessID]bool
	sent   bool // lwgView already announced on the target
}

func newLwgMember(e *Endpoint, id ids.LWGID) *lwgMember {
	return &lwgMember{
		e:                e,
		id:               id,
		pendingJoiners:   make(map[ids.ProcessID]bool),
		pendingLeavers:   make(map[ids.ProcessID]bool),
		pendingRejoiners: make(map[ids.ProcessID]bool),
		cSends:           e.reg.Counter("lwg_sends_total", metrics.L("lwg", string(id))),
		cDelivers:        e.reg.Counter("lwg_deliveries_total", metrics.L("lwg", string(id))),
		hLatency:         e.reg.Histogram("lwg_oneway_latency", metrics.L("lwg", string(id))),
	}
}

func (m *lwgMember) stopTimers() {
	for _, tk := range []*sim.Ticker{m.joinTicker, m.leaveTicker, m.switchTicker} {
		if tk != nil {
			tk.Stop()
		}
	}
	m.joinTicker, m.leaveTicker, m.switchTicker = nil, nil, nil
	for _, tm := range []*sim.Timer{m.joinTimer, m.nsTimer} {
		if tm != nil {
			tm.Stop()
		}
	}
	m.joinTimer, m.nsTimer = nil, nil
	if m.fl != nil {
		if m.fl.timer != nil {
			m.fl.timer.Stop()
		}
		m.fl = nil
	}
}

// isCoordinator reports whether this process coordinates the current LWG
// view.
func (m *lwgMember) isCoordinator() bool {
	return len(m.view.Members) > 0 && m.view.Coordinator() == m.e.pid
}

// actsAsCoordinator reports whether this process should drive the LWG
// reconfiguration protocol. Normally that is the view coordinator (the
// minimum member), which this subsumes. But when every member ahead of us
// is itself a pending leaver the real coordinator cannot be relied on to
// run the flush: a phantom resurrected by a merge (see maybeRepudiate)
// repudiates with a leave request yet holds no member state, so if the
// phantom is the minimum pid nobody would ever reconfigure — the view
// keeps the phantom forever and the mapping is never refreshed. The
// lowest member not pending leave steps in; the rule is deterministic, so
// at most one live process acts per view.
func (m *lwgMember) actsAsCoordinator() bool {
	for _, p := range m.view.Members {
		if p == m.e.pid {
			return true
		}
		if !m.pendingLeavers[p] {
			return false
		}
	}
	return false
}

// --- public downcalls ------------------------------------------------------

// Join starts joining the light-weight group: the mapping is resolved (or
// created) through the naming service, the process joins the mapped HWG
// if necessary, and the LWG join protocol admits it into the LWG view.
// The outcome arrives through the View upcall.
func (e *Endpoint) Join(lwg ids.LWGID) error {
	if _, ok := e.lwgs[lwg]; ok {
		return ErrAlreadyMember
	}
	m := newLwgMember(e, lwg)
	e.lwgs[lwg] = m
	m.state = lwgResolving
	e.ins.joins.Inc()
	e.updateGauges()
	e.trace("join", "%s: resolving mapping", lwg)
	m.resolveMapping()
	return nil
}

// Leave starts leaving the light-weight group.
func (e *Endpoint) Leave(lwg ids.LWGID) error {
	m, ok := e.lwgs[lwg]
	if !ok {
		return ErrNotMember
	}
	e.ins.leaves.Inc()
	m.requestLeave()
	return nil
}

// Send multicasts data to the light-weight group. While a flush, switch
// or view change is in progress the message is buffered and sent in the
// next stable state, stamped with the then-current LWG view.
func (e *Endpoint) Send(lwg ids.LWGID, data []byte) error {
	m, ok := e.lwgs[lwg]
	if !ok {
		return ErrNotMember
	}
	m.send(data)
	return nil
}

func (m *lwgMember) send(data []byte) {
	st := m.e.hwgs[m.hwg]
	if m.state != lwgActive || st == nil || st.stopped {
		m.pendingSends = append(m.pendingSends, data)
		return
	}
	msg := &lwgData{LWG: m.id, View: m.view.ID, Data: data}
	if m.e.cfg.DisableBatching {
		m.e.traceSend(msg)
		_ = m.e.hwg.Send(m.hwg, msg)
		return
	}
	// Batched payloads are traced as sent when the batch flushes — a
	// requeue can still re-stamp them under a later view before then.
	m.e.enqueueBatch(st, msg)
}

func (m *lwgMember) drainSends() {
	if m.state != lwgActive {
		return
	}
	pend := m.pendingSends
	m.pendingSends = nil
	for _, d := range pend {
		m.send(d)
	}
}

// --- mapping resolution ----------------------------------------------------

// resolveMapping implements the creation-time mapping (Section 3.2): read
// the naming service; join the mapped HWG if a mapping exists, otherwise
// optimistically propose one (an existing HWG of this process, or a fresh
// one) via ns.testset.
func (m *lwgMember) resolveMapping() {
	e := m.e
	e.ns.ReadLive(m.id, func(entries []naming.Entry, ok bool) {
		if e.lwgs[m.id] != m || m.state != lwgResolving {
			return
		}
		if !ok {
			m.nsTimer = e.clock.After(e.cfg.NSRetryInterval, m.resolveMapping)
			return
		}
		if len(entries) > 0 {
			m.targetHWG(naming.PreferredHWG(entries))
			return
		}
		m.proposeMapping()
	})
}

func (m *lwgMember) proposeMapping() {
	e := m.e
	// Optimistic rule: assume the new LWG resembles an existing group and
	// map it onto a HWG the creator already belongs to; create a fresh
	// HWG only when there is none.
	pick := policy.PickInitialHWG(e.knownHWGs())
	fresh := false
	if pick == ids.NoHWG {
		pick = e.allocHWGID()
		fresh = true
	}
	m.proposedView = ids.View{
		ID:      ids.ViewID{Coord: e.pid, Seq: e.nextLwgSeq(m.id)},
		Members: ids.NewMembers(e.pid),
	}
	entry := naming.Entry{
		LWG:       m.id,
		View:      m.proposedView.ID,
		HWG:       pick,
		Ver:       e.nextVer(),
		Refreshed: int64(e.clock.Now()),
	}
	e.ns.TestSet(entry, func(entries []naming.Entry, ok bool) {
		if e.lwgs[m.id] != m || m.state != lwgResolving {
			return
		}
		if !ok {
			m.nsTimer = e.clock.After(e.cfg.NSRetryInterval, m.resolveMapping)
			return
		}
		won := false
		for _, got := range entries {
			if got.View == m.proposedView.ID {
				won = true
				break
			}
		}
		if won {
			e.trace("create", "%s: founding on %v (fresh=%v)", m.id, pick, fresh)
			m.foundNow = true
			m.hwg = pick
			m.state = lwgJoining
			m.ensureHWGMembership(pick, fresh)
			m.maybeFound()
			return
		}
		// Lost the race: join whoever won.
		m.targetHWG(naming.PreferredHWG(entries))
	})
}

// targetHWG directs the join at the heavy-weight group the naming service
// mapped the LWG onto.
func (m *lwgMember) targetHWG(gid ids.HWGID) {
	e := m.e
	if gid == ids.NoHWG {
		m.nsTimer = e.clock.After(e.cfg.NSRetryInterval, m.resolveMapping)
		return
	}
	m.hwg = gid
	m.state = lwgJoining
	e.trace("join", "%s: mapped on %v, requesting admission", m.id, gid)
	m.ensureHWGMembership(gid, false)
	m.joinTicker = e.clock.Every(e.cfg.JoinRetryInterval, m.sendJoinReq)
	m.sendJoinReq()
	m.joinTimer = e.clock.After(e.cfg.LwgJoinTimeout, m.joinTimedOut)
}

func (m *lwgMember) ensureHWGMembership(gid ids.HWGID, fresh bool) {
	e := m.e
	e.hwgState(gid) // materialize bookkeeping
	if e.hwg.IsMember(gid) {
		return
	}
	if fresh {
		_ = e.hwg.Create(gid)
		return
	}
	_ = e.hwg.Join(gid)
}

func (m *lwgMember) sendJoinReq() {
	if m.state != lwgJoining {
		return
	}
	if _, ok := m.e.hwg.CurrentView(m.hwg); !ok {
		return // not yet a member of the HWG
	}
	m.e.hwgSend(m.hwg, &lwgJoinReq{LWG: m.id, From: m.e.pid})
}

// joinTimedOut fires when no LWG view admitted us: the mapping was stale
// (the members are gone or unreachable). Found our own view on the mapped
// HWG; if concurrent views exist elsewhere, reconciliation merges them
// later.
func (m *lwgMember) joinTimedOut() {
	if m.state != lwgJoining || m.foundNow {
		return
	}
	e := m.e
	e.trace("join", "%s: admission timed out, founding own view on %v", m.id, m.hwg)
	m.proposedView = ids.View{
		ID:      ids.ViewID{Coord: e.pid, Seq: e.nextLwgSeq(m.id)},
		Members: ids.NewMembers(e.pid),
	}
	m.foundNow = true
	m.maybeFound()
}

// maybeFound completes the founder path once the process has a view of
// the target HWG.
func (m *lwgMember) maybeFound() {
	if !m.foundNow || m.state != lwgJoining {
		return
	}
	hv, ok := m.e.hwg.CurrentView(m.hwg)
	if !ok || !hv.Contains(m.e.pid) {
		return // wait for the HWG view; onHWGView retries
	}
	m.foundNow = false
	rec := viewRecord{LWG: m.id, View: m.proposedView, Ancestors: nil}
	m.installView(rec, m.hwg)
	// Tell the other HWG members (and any concurrent joiners).
	m.e.hwgSend(m.hwg, &lwgView{Rec: rec, HWG: m.hwg})
}

// --- admission (coordinator side) ------------------------------------------

func (m *lwgMember) onJoinReq(from ids.ProcessID) {
	if m.view.Contains(from) {
		// A join request from a member of record. Either the joiner's
		// retry crossed its admission announcement in flight — it has
		// been mapped and pre-install buffering since before the
		// admission flush, so repeating the announcement is enough —
		// or a merge resurrected its stale membership while it was
		// still resolving its mapping, in which case any data already
		// sent in this view is gone for it and a repeated announcement
		// would hand it a delivery window with a hole in it. The two
		// are indistinguishable here, but a view that has carried no
		// traffic has nothing to miss (anything sent from now on is
		// buffered by the mapped joiner): re-announce only then,
		// otherwise cut a fresh view so the rejoiner's obligations
		// start at a clean boundary.
		if !m.seenTraffic {
			if m.isCoordinator() && m.state == lwgActive {
				m.e.hwgSend(m.hwg, &lwgView{
					Rec: viewRecord{LWG: m.id, View: m.view.Clone(), Ancestors: m.ancestors},
					HWG: m.hwg,
				})
			}
			return
		}
		m.pendingRejoiners[from] = true
		if m.actsAsCoordinator() {
			m.maybeLwgReconfig()
		}
		return
	}
	m.pendingJoiners[from] = true
	if m.actsAsCoordinator() {
		m.maybeLwgReconfig()
	}
}

func (m *lwgMember) onLeaveReq(from ids.ProcessID) {
	if !m.view.Contains(from) {
		return
	}
	m.pendingLeavers[from] = true
	if m.actsAsCoordinator() {
		m.maybeLwgReconfig()
	}
}

// maybeLwgReconfig runs the LWG join/leave protocol: a LWG-level flush
// (lwgStop / lwgFlushOk among the LWG's members only) followed by the new
// view announcement. The totally ordered HWG multicast guarantees every
// member closes the old view on the same message set.
func (m *lwgMember) maybeLwgReconfig() {
	e := m.e
	if m.state != lwgActive || m.fl != nil {
		return
	}
	joiners := make(ids.Members, 0, len(m.pendingJoiners))
	for p := range m.pendingJoiners {
		if !m.view.Contains(p) {
			joiners = append(joiners, p)
		}
	}
	// A rejoiner still in the view forces a view change even though the
	// membership is unchanged; one that fell out in the meantime is a
	// plain admission.
	rejoining := false
	for p := range m.pendingRejoiners {
		if m.view.Contains(p) {
			rejoining = true
		} else {
			joiners = append(joiners, p)
		}
	}
	leavers := make(ids.Members, 0, len(m.pendingLeavers)+1)
	for p := range m.pendingLeavers {
		if m.view.Contains(p) {
			leavers = append(leavers, p)
		}
	}
	if m.leaveRequested {
		leavers = append(leavers, e.pid)
	}
	if len(joiners) == 0 && len(leavers) == 0 && !rejoining {
		return
	}
	newMembers := m.view.Members.Clone()
	for _, p := range leavers {
		newMembers = newMembers.Without(p)
	}
	newMembers = newMembers.Union(ids.NewMembers(joiners...))
	oldID := m.view.ID
	rec := viewRecord{
		LWG: m.id,
		View: ids.View{
			ID:      reconfViewID(m.id, oldID, newMembers),
			Members: newMembers,
		},
		Ancestors: append(append(ids.ViewIDs{}, m.ancestors...), oldID),
	}
	// Rejoiners need the state snapshot too: they are fresh process
	// incarnations whatever the membership list says.
	admitting := len(joiners) > 0 || rejoining
	m.startLwgFlush("reconfig", func() {
		if len(rec.View.Members) == 0 {
			// Everyone left: dissolve the group.
			m.e.deleteMapping(m.id, oldID)
			m.e.hwgSend(m.hwg, &lwgView{Rec: rec, HWG: m.hwg})
			return
		}
		nv := &lwgView{Rec: rec, HWG: m.hwg}
		// State transfer: the flush has quiesced the old view, so the
		// snapshot reflects exactly the delivered messages.
		if admitting {
			if sh, ok := m.e.up.(StateHandler); ok {
				if st := sh.SnapshotState(m.id); st != nil {
					nv.HasState = true
					nv.State = st
				}
			}
		}
		m.e.hwgSend(m.hwg, nv)
	})
}

// startLwgFlush quiesces the current LWG view (coordinator side): members
// answer lwgFlushOk once stopped; onDone runs when all reachable members
// have answered.
func (m *lwgMember) startLwgFlush(why string, onDone func()) {
	e := m.e
	expected := m.flushExpected()
	m.fl = &lwgFlushRound{
		view:     m.view.ID,
		expected: expected,
		got:      make(map[ids.ProcessID]bool),
		onDone:   onDone,
	}
	e.ins.lwgFlushes.Inc()
	e.trace("lwg-flush", "%s: %s expected=%s", m.id, why, expected)
	m.state = lwgStopped
	e.hwgSend(m.hwg, &lwgStop{LWG: m.id, View: m.view.ID})
	m.armLwgFlushTimer()
}

// flushExpected is the set of LWG members that can still answer: those
// present in the current HWG view.
func (m *lwgMember) flushExpected() ids.Members {
	hv, ok := m.e.hwg.CurrentView(m.hwg)
	if !ok {
		return m.view.Members.Clone()
	}
	return m.view.Members.Intersect(hv.Members)
}

func (m *lwgMember) armLwgFlushTimer() {
	fl := m.fl
	fl.timer = m.e.clock.After(m.e.cfg.LwgFlushTimeout, func() {
		if m.fl != fl {
			return
		}
		fl.attempts++
		if fl.attempts >= 5 {
			// Give up; the HWG view change that is evidently in
			// progress will retrigger what is needed.
			m.abortLwgFlush()
			return
		}
		// Narrow to members still reachable and retry the stop.
		fl.expected = fl.expected.Intersect(m.flushExpected())
		if m.lwgFlushComplete() {
			return
		}
		m.e.hwgSend(m.hwg, &lwgStop{LWG: m.id, View: m.view.ID})
		m.armLwgFlushTimer()
	})
}

func (m *lwgMember) abortLwgFlush() {
	if m.fl != nil {
		if m.fl.timer != nil {
			m.fl.timer.Stop()
		}
		m.fl = nil
	}
	// Reset lwgStopped even without a local round: a member (or a
	// coordinator re-stopped by its own stale lwgStop echo) can be
	// quiesced by a round that died elsewhere, and nothing but this
	// abort will ever release it.
	if m.state == lwgStopped {
		m.state = lwgActive
		m.drainSends()
	}
}

func (m *lwgMember) onFlushOk(from ids.ProcessID, msg *lwgFlushOk) {
	fl := m.fl
	if fl == nil || msg.View != fl.view {
		return
	}
	fl.got[from] = true
	m.lwgFlushComplete()
}

func (m *lwgMember) lwgFlushComplete() bool {
	fl := m.fl
	for _, p := range fl.expected {
		if !fl.got[p] {
			return false
		}
	}
	if fl.timer != nil {
		fl.timer.Stop()
	}
	m.fl = nil
	fl.onDone()
	return true
}

func (m *lwgMember) onStop(msg *lwgStop) {
	if m.state == lwgResolving || m.state == lwgJoining {
		// Nothing to quiesce — no installed view, and sends queue until
		// admission. But the flush may be counting us: a reconfig that
		// cuts a fresh boundary for our own rejoin flushes the view our
		// stale membership sits in. Answer like the phantom case does.
		m.e.hwgSend(m.hwg, &lwgFlushOk{LWG: m.id, View: msg.View, From: m.e.pid})
		return
	}
	if msg.View != m.view.ID {
		return
	}
	// A stop echoed back for a round this coordinator already aborted
	// must not re-quiesce the view: no completion will ever release it.
	if m.fl == nil && m.isCoordinator() && m.state == lwgActive {
		return
	}
	if m.state == lwgActive {
		m.state = lwgStopped
	}
	// Answer (and re-answer duplicates) while quiesced.
	if m.state == lwgStopped {
		m.e.hwgSend(m.hwg, &lwgFlushOk{LWG: m.id, View: m.view.ID, From: m.e.pid})
	}
}

// --- leaving ---------------------------------------------------------------

func (m *lwgMember) requestLeave() {
	e := m.e
	switch m.state {
	case lwgResolving, lwgJoining:
		e.trace("leave", "%s: aborting join", m.id)
		if !m.proposedView.ID.IsZero() {
			// We may have won a creation race; withdraw the mapping.
			e.deleteMapping(m.id, m.proposedView.ID)
		}
		e.dropLwg(m.id)
		// A merge may have resurrected our stale membership from an
		// earlier incarnation while we were resolving: the view
		// announcement naming this process arrived, but with local
		// state present it was only recorded, never installed (that
		// needs a mapped joiner) and never repudiated (that needs no
		// state at all). Now that the state is gone, nobody would ever
		// answer for it — the survivors keep a ghost member forever.
		// Repudiate every recorded view of this LWG that claims us.
		for _, st := range e.hwgs {
			for _, rec := range st.known[m.id] {
				e.maybeRepudiate(st, rec)
			}
		}
		return
	}
	m.leaveRequested = true
	if len(m.view.Members) <= 1 {
		e.trace("leave", "%s: last member, dissolving", m.id)
		e.deleteMapping(m.id, m.view.ID)
		e.dropLwg(m.id)
		return
	}
	if m.isCoordinator() {
		m.maybeLwgReconfig()
		return
	}
	m.armLeaveTicker()
}

// armLeaveTicker announces this process's leave intent to the coordinator
// and keeps re-announcing until the removal view installs and drops the
// LWG (which stops all tickers).
func (m *lwgMember) armLeaveTicker() {
	e := m.e
	send := func() {
		if m.e.lwgs[m.id] == m {
			e.hwgSend(m.hwg, &lwgLeaveReq{LWG: m.id, From: e.pid})
		}
	}
	send()
	m.leaveTicker = e.clock.Every(e.cfg.JoinRetryInterval, send)
}

// deleteMapping tombstones the LWG view in the naming service, retrying a
// few times in the background.
func (e *Endpoint) deleteMapping(lwg ids.LWGID, view ids.ViewID) {
	attempt := 0
	// One version for all retries: they are resends of the same logical
	// delete, and a later re-creation of the mapping (same view ID, higher
	// version) must win against every one of them.
	ver := e.nextVer()
	var try func()
	try = func() {
		e.ns.Delete(lwg, view, ver, func(_ []naming.Entry, ok bool) {
			if !ok && attempt < 5 {
				attempt++
				e.clock.After(e.cfg.NSRetryInterval, try)
			}
		})
	}
	try()
}

// dropLwg removes all local state for the LWG.
func (e *Endpoint) dropLwg(lwg ids.LWGID) {
	m, ok := e.lwgs[lwg]
	if !ok {
		return
	}
	m.stopTimers()
	// Batched data this member already sent must still reach the group
	// (an unbatched send would have been multicast immediately).
	if st := e.hwgs[m.hwg]; st != nil {
		e.flushBatch(st)
	}
	if st := e.hwgs[m.hwg]; st != nil && st.local[lwg] {
		delete(st.local, lwg)
		if len(st.local) == 0 {
			st.emptySince = e.clock.Now()
		}
	}
	delete(e.lwgs, lwg)
	e.updateGauges()
}

// --- view installation -------------------------------------------------------

// installView makes rec the member's current LWG view on the given HWG
// and performs the coordinator's naming-service update.
func (m *lwgMember) installView(rec viewRecord, hwg ids.HWGID) {
	e := m.e
	oldHwg := m.hwg
	// Payloads still batched under the outgoing view would be multicast
	// with an ancestor view tag and dropped everywhere; pull them back
	// into the pending queue so drainSends re-stamps them below.
	if ost := e.hwgs[oldHwg]; ost != nil {
		e.requeueBatchFor(ost, m)
	}
	if m.joinTicker != nil {
		m.joinTicker.Stop()
		m.joinTicker = nil
	}
	if m.joinTimer != nil {
		m.joinTimer.Stop()
		m.joinTimer = nil
	}
	if m.switchTicker != nil {
		m.switchTicker.Stop()
		m.switchTicker = nil
	}
	m.sw = nil
	if m.fl != nil {
		if m.fl.timer != nil {
			m.fl.timer.Stop()
		}
		m.fl = nil
	}
	m.state = lwgActive
	m.view = rec.View.Clone()
	m.ancestors = append(ids.ViewIDs{}, rec.Ancestors...)
	m.hwg = hwg
	m.seenTraffic = false
	m.switchTarget = ids.NoHWG
	e.observeLwgView(m.id, rec.View.ID)

	if oldHwg != ids.NoHWG && oldHwg != hwg {
		if ost := e.hwgs[oldHwg]; ost != nil {
			delete(ost.local, m.id)
			ost.forward[m.id] = hwg
			delete(ost.known, m.id)
			if len(ost.local) == 0 {
				ost.emptySince = e.clock.Now()
			}
		}
	}
	st := e.hwgState(hwg)
	st.local[m.id] = true
	st.emptySince = 0
	delete(st.forward, m.id)
	e.recordKnown(st, rec)

	for p := range m.pendingJoiners {
		if rec.View.Contains(p) {
			delete(m.pendingJoiners, p)
		}
	}
	for p := range m.pendingLeavers {
		if !rec.View.Contains(p) {
			delete(m.pendingLeavers, p)
		}
	}
	// Any view minted after a rejoin request satisfies it: the rejoiner
	// adopts this view's announcement and has buffered its traffic since
	// before the flush.
	for p := range m.pendingRejoiners {
		if rec.View.Contains(p) {
			delete(m.pendingRejoiners, p)
		}
	}

	e.ins.viewInstalls.Inc()
	e.traceEvent(trace.Event{
		What:    trace.LWGViewInstall,
		Text:    fmt.Sprintf("%s: %v%s on %v", m.id, rec.View.ID, rec.View.Members, hwg),
		Group:   string(m.id),
		View:    rec.View.ID,
		Members: rec.View.Members.Clone(),
		Parents: append(ids.ViewIDs{}, rec.Ancestors...),
	})
	if m.isCoordinator() {
		e.updateMapping(m)
	}
	if e.up != nil {
		e.up.View(m.id, rec.View.Clone())
	}
	m.replayPreInstall()
	m.drainSends()
	// Serve joins and leaves that queued up during the change.
	if m.actsAsCoordinator() && (len(m.pendingJoiners) > 0 || len(m.pendingLeavers) > 0 ||
		len(m.pendingRejoiners) > 0 || m.leaveRequested) {
		m.maybeLwgReconfig()
	} else if m.leaveRequested && !m.isCoordinator() && m.leaveTicker == nil {
		// A leaving coordinator handles its own exit through a reconfig
		// flush — but a merge can install a view led by someone else
		// before that flush completes, and then nobody knows this
		// process still wants out. Announce the intent to the new
		// coordinator like any other leaver would.
		m.armLeaveTicker()
	}
}

// updateMapping writes the member's current mapping to the naming service
// (coordinator only), retrying on failure.
func (e *Endpoint) updateMapping(m *lwgMember) {
	viewAtWrite := m.view.ID
	hwgAtWrite := m.hwg
	var hwgView ids.ViewID
	if hv, ok := e.hwg.CurrentView(m.hwg); ok {
		hwgView = hv.ID
	}
	entry := naming.Entry{
		LWG:       m.id,
		View:      viewAtWrite,
		Ancestors: append(ids.ViewIDs{}, m.ancestors...),
		HWG:       hwgAtWrite,
		HWGView:   hwgView,
		Ver:       e.nextVer(),
		Refreshed: int64(e.clock.Now()),
	}
	e.ns.SetView(entry, func(_ []naming.Entry, ok bool) {
		if ok {
			return
		}
		e.clock.After(e.cfg.NSRetryInterval, func() {
			if cur, live := e.lwgs[m.id]; live && cur == m &&
				m.view.ID == viewAtWrite && m.hwg == hwgAtWrite && m.isCoordinator() {
				e.updateMapping(m)
			}
		})
	})
}

// recordKnown stores a view record in AV_p(hwg), pruning records the new
// one supersedes.
func (e *Endpoint) recordKnown(st *hwgState, rec viewRecord) {
	mv := st.known[rec.LWG]
	if mv == nil {
		mv = make(map[ids.ViewID]viewRecord)
		st.known[rec.LWG] = mv
	}
	mv[rec.View.ID] = rec
	for vid := range mv {
		if vid != rec.View.ID && rec.Ancestors.Contains(vid) {
			delete(mv, vid)
		}
	}
}

// reconfViewID mints the deterministic identifier of a coordinator-driven
// reconfiguration (join/leave): coordinated by the new membership's
// smallest member.
func reconfViewID(lwg ids.LWGID, old ids.ViewID, members ids.Members) ids.ViewID {
	coord := members.Min()
	if coord < 0 {
		coord = old.Coord
	}
	seq := groupMintedBit | hashViewInputs("reconf", lwg, append(ids.ViewIDs{old}, memberViewKey(members)...))
	return ids.ViewID{Coord: coord, Seq: seq}
}

// memberViewKey encodes a member set as pseudo view ids for hashing.
func memberViewKey(members ids.Members) ids.ViewIDs {
	out := make(ids.ViewIDs, len(members))
	for i, p := range members {
		out[i] = ids.ViewID{Coord: p, Seq: 0}
	}
	return out
}

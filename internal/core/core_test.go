package core

import (
	"fmt"
	"testing"
	"time"

	"plwg/internal/ids"
	"plwg/internal/metrics"
	"plwg/internal/naming"
	"plwg/internal/netsim"
	"plwg/internal/sim"
	"plwg/internal/trace"
	"plwg/internal/vsync"
)

// cEntry is one upcall observed by a test process.
type cEntry struct {
	kind string // "view" | "data"
	view ids.View
	src  ids.ProcessID
	data string
	at   sim.Time
}

// cRec records LWG upcalls per group.
type cRec struct {
	s   *sim.Sim
	log map[ids.LWGID][]cEntry
}

func (r *cRec) View(lwg ids.LWGID, v ids.View) {
	r.log[lwg] = append(r.log[lwg], cEntry{kind: "view", view: v, at: r.s.Now()})
}

func (r *cRec) Data(lwg ids.LWGID, src ids.ProcessID, data []byte) {
	r.log[lwg] = append(r.log[lwg], cEntry{kind: "data", src: src, data: string(data), at: r.s.Now()})
}

func (r *cRec) dataOf(lwg ids.LWGID) []string {
	var out []string
	for _, e := range r.log[lwg] {
		if e.kind == "data" {
			out = append(out, e.data)
		}
	}
	return out
}

// cWorld is a full-stack test cluster: endpoints + naming servers.
type cWorld struct {
	t       *testing.T
	s       *sim.Sim
	nw      *netsim.Network
	eps     map[ids.ProcessID]*Endpoint
	ups     map[ids.ProcessID]*cRec
	servers map[ids.ProcessID]*naming.Server
	tracer  *trace.Recorder
	reg     *metrics.Registry
	// chaosMembers and chaosCrashed carry the expected end-state
	// membership and the crash set out of the chaos schedule
	// (chaos_test.go).
	chaosMembers map[ids.LWGID]map[ids.ProcessID]bool
	chaosCrashed map[ids.ProcessID]bool
}

func newCWorld(t *testing.T, n int, serverPids []ids.ProcessID, cfg Config) *cWorld {
	return newCWorldNS(t, n, serverPids, cfg, naming.Config{})
}

func newCWorldNS(t *testing.T, n int, serverPids []ids.ProcessID, cfg Config, nsCfg naming.Config) *cWorld {
	return newCWorldVS(t, n, serverPids, cfg, nsCfg, vsync.Config{})
}

func newCWorldVS(t *testing.T, n int, serverPids []ids.ProcessID, cfg Config, nsCfg naming.Config, vsCfg vsync.Config) *cWorld {
	t.Helper()
	s := sim.New(3)
	nw := netsim.New(s, netsim.DefaultParams())
	w := &cWorld{
		t: t, s: s, nw: nw,
		eps:     make(map[ids.ProcessID]*Endpoint),
		ups:     make(map[ids.ProcessID]*cRec),
		servers: make(map[ids.ProcessID]*naming.Server),
		tracer:  &trace.Recorder{},
		reg:     metrics.NewRegistry(),
	}
	for i := 0; i < n; i++ {
		pid := ids.ProcessID(i)
		mux := netsim.NewMux()
		rec := &cRec{s: s, log: make(map[ids.LWGID][]cEntry)}
		ep := New(Params{
			Net:     nw,
			PID:     pid,
			Servers: serverPids,
			Config:  cfg,
			Vsync:   vsCfg,
			Naming:  nsCfg,
			Upcalls: rec,
			Tracer:  w.tracer,
			Metrics: w.reg,
		}, mux)
		for _, sp := range serverPids {
			if sp == pid {
				srv := naming.NewServer(naming.ServerParams{
					Net: nw, PID: pid, Peers: serverPids, Config: nsCfg, Tracer: w.tracer,
				})
				mux.Handle(naming.ServerPrefix, srv.HandleMessage)
				srv.Start()
				w.servers[pid] = srv
			}
		}
		nw.AddNode(pid, mux.Handler())
		w.eps[pid] = ep
		w.ups[pid] = rec
	}
	return w
}

func (w *cWorld) run(d time.Duration) { w.s.RunFor(d) }

// runPolicyEverywhere triggers the mapping heuristics at every process in
// process order (message emission must be deterministic for replayable
// tests).
func (w *cWorld) runPolicyEverywhere() {
	for i := 0; i < len(w.eps); i++ {
		if ep, ok := w.eps[ids.ProcessID(i)]; ok {
			ep.RunPolicyNow()
		}
	}
}

func (w *cWorld) lwgView(pid ids.ProcessID, lwg ids.LWGID) ids.View {
	w.t.Helper()
	v, ok := w.eps[pid].LWGView(lwg)
	if !ok {
		w.t.Fatalf("%v has no view of %s\ntrace:\n%s", pid, lwg, w.tracer.Dump())
	}
	return v
}

// requireLWG asserts all pids share one view of the LWG with exactly
// those members, all mapped on the same HWG.
func (w *cWorld) requireLWG(lwg ids.LWGID, pids ...ids.ProcessID) (ids.View, ids.HWGID) {
	w.t.Helper()
	want := w.lwgView(pids[0], lwg)
	hwg, _ := w.eps[pids[0]].Mapping(lwg)
	for _, p := range pids[1:] {
		got := w.lwgView(p, lwg)
		if got.ID != want.ID {
			w.t.Fatalf("%s: %v has view %v, %v has view %v\ntrace:\n%s",
				lwg, p, got, pids[0], want, w.tracer.Dump())
		}
		h, _ := w.eps[p].Mapping(lwg)
		if h != hwg {
			w.t.Fatalf("%s: mapping differs: %v@%v vs %v@%v", lwg, p, h, pids[0], hwg)
		}
	}
	if !want.Members.Equal(ids.NewMembers(pids...)) {
		w.t.Fatalf("%s members = %v, want %v\ntrace:\n%s",
			lwg, want.Members, ids.NewMembers(pids...), w.tracer.Dump())
	}
	return want, hwg
}

func testCfg() Config {
	c := DefaultConfig()
	c.PolicyInterval = time.Hour // tests trigger policy explicitly
	return c
}

// --- tests -------------------------------------------------------------------

func TestCreateLWG(t *testing.T) {
	w := newCWorld(t, 2, []ids.ProcessID{0}, testCfg())
	if err := w.eps[1].Join("a"); err != nil {
		t.Fatal(err)
	}
	w.run(2 * time.Second)
	v := w.lwgView(1, "a")
	if !v.Members.Equal(ids.NewMembers(1)) {
		t.Fatalf("founder view = %v", v)
	}
	if _, ok := w.eps[1].Mapping("a"); !ok {
		t.Fatal("no mapping after creation")
	}
	// The mapping must be registered with the naming service.
	if got := w.servers[0].DB().Live("a"); len(got) != 1 {
		t.Fatalf("naming entries = %v", got)
	}
}

func TestJoinExistingLWG(t *testing.T) {
	w := newCWorld(t, 3, []ids.ProcessID{0}, testCfg())
	if err := w.eps[1].Join("a"); err != nil {
		t.Fatal(err)
	}
	w.run(2 * time.Second)
	if err := w.eps[2].Join("a"); err != nil {
		t.Fatal(err)
	}
	w.run(3 * time.Second)
	w.requireLWG("a", 1, 2)
}

func TestDoubleJoinRejected(t *testing.T) {
	w := newCWorld(t, 2, []ids.ProcessID{0}, testCfg())
	if err := w.eps[1].Join("a"); err != nil {
		t.Fatal(err)
	}
	if err := w.eps[1].Join("a"); err != ErrAlreadyMember {
		t.Fatalf("second Join = %v", err)
	}
	if err := w.eps[1].Send("b", nil); err != ErrNotMember {
		t.Fatalf("Send to unjoined = %v", err)
	}
}

func TestConcurrentCreatorsConverge(t *testing.T) {
	// Two processes create the same LWG simultaneously; ns.testset picks
	// one winner and the loser joins it.
	w := newCWorld(t, 3, []ids.ProcessID{0}, testCfg())
	if err := w.eps[1].Join("a"); err != nil {
		t.Fatal(err)
	}
	if err := w.eps[2].Join("a"); err != nil {
		t.Fatal(err)
	}
	w.run(4 * time.Second)
	w.requireLWG("a", 1, 2)
	if got := w.servers[0].DB().Live("a"); len(got) != 1 {
		t.Fatalf("naming kept %d live mappings, want 1: %v", len(got), got)
	}
}

func TestResourceSharingSameMembership(t *testing.T) {
	// Several LWGs created by the same processes share one HWG (the
	// optimistic creation-time mapping).
	w := newCWorld(t, 3, []ids.ProcessID{0}, testCfg())
	for _, lwg := range []ids.LWGID{"a1", "a2", "a3"} {
		if err := w.eps[1].Join(lwg); err != nil {
			t.Fatal(err)
		}
		// Stagger so each creation sees the previously created HWG (the
		// optimistic creation-time mapping; simultaneous creations are
		// collapsed later by the share rule — see TestShareRuleCollapse).
		w.run(time.Second)
	}
	w.run(2 * time.Second)
	for _, lwg := range []ids.LWGID{"a1", "a2", "a3"} {
		if err := w.eps[2].Join(lwg); err != nil {
			t.Fatal(err)
		}
	}
	w.run(3 * time.Second)
	h1, _ := w.eps[1].Mapping("a1")
	h2, _ := w.eps[1].Mapping("a2")
	h3, _ := w.eps[1].Mapping("a3")
	if h1 != h2 || h2 != h3 {
		t.Fatalf("LWGs with identical membership use different HWGs: %v %v %v", h1, h2, h3)
	}
	if got := len(w.eps[1].HWGs()); got != 1 {
		t.Fatalf("p1 is a member of %d HWGs, want 1", got)
	}
}

func TestShareRuleCollapse(t *testing.T) {
	// Two LWGs with identical membership created simultaneously land on
	// two distinct HWGs; the share rule collapses them into the one with
	// the higher identifier.
	w := newCWorld(t, 3, []ids.ProcessID{0}, testCfg())
	if err := w.eps[1].Join("a"); err != nil {
		t.Fatal(err)
	}
	if err := w.eps[1].Join("b"); err != nil {
		t.Fatal(err)
	}
	w.run(2 * time.Second)
	for _, lwg := range []ids.LWGID{"a", "b"} {
		if err := w.eps[2].Join(lwg); err != nil {
			t.Fatal(err)
		}
	}
	w.run(3 * time.Second)
	hA, _ := w.eps[1].Mapping("a")
	hB, _ := w.eps[1].Mapping("b")
	if hA == hB {
		t.Skip("creations landed on one HWG; nothing to collapse")
	}
	w.runPolicyEverywhere()
	w.run(4 * time.Second)
	hA2, _ := w.eps[1].Mapping("a")
	hB2, _ := w.eps[1].Mapping("b")
	if hA2 != hB2 {
		t.Fatalf("share rule did not collapse: a@%v b@%v\ntrace:\n%s",
			hA2, hB2, w.tracer.Dump())
	}
	want := hA
	if hB > hA {
		want = hB
	}
	if hA2 != want {
		t.Errorf("collapsed into %v, want the higher gid %v", hA2, want)
	}
	w.requireLWG("a", 1, 2)
	w.requireLWG("b", 1, 2)
}

func TestDataDelivery(t *testing.T) {
	w := newCWorld(t, 4, []ids.ProcessID{0}, testCfg())
	for _, p := range []ids.ProcessID{1, 2} {
		if err := w.eps[p].Join("a"); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.eps[3].Join("b"); err != nil {
		t.Fatal(err)
	}
	w.run(4 * time.Second)
	w.requireLWG("a", 1, 2)
	if err := w.eps[1].Send("a", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	w.run(time.Second)
	for _, p := range []ids.ProcessID{1, 2} {
		if got := w.ups[p].dataOf("a"); len(got) != 1 || got[0] != "hello" {
			t.Errorf("%v delivered %v, want [hello]", p, got)
		}
	}
	// The non-member must see nothing of LWG a.
	if got := w.ups[3].dataOf("a"); len(got) != 0 {
		t.Errorf("non-member delivered %v", got)
	}
}

func TestLeave(t *testing.T) {
	w := newCWorld(t, 4, []ids.ProcessID{0}, testCfg())
	for _, p := range []ids.ProcessID{1, 2, 3} {
		if err := w.eps[p].Join("a"); err != nil {
			t.Fatal(err)
		}
	}
	w.run(4 * time.Second)
	w.requireLWG("a", 1, 2, 3)
	if err := w.eps[3].Leave("a"); err != nil {
		t.Fatal(err)
	}
	w.run(2 * time.Second)
	w.requireLWG("a", 1, 2)
	if _, ok := w.eps[3].LWGView("a"); ok {
		t.Error("leaver still has a view")
	}
}

func TestCoordinatorLeave(t *testing.T) {
	w := newCWorld(t, 4, []ids.ProcessID{0}, testCfg())
	for _, p := range []ids.ProcessID{1, 2, 3} {
		if err := w.eps[p].Join("a"); err != nil {
			t.Fatal(err)
		}
	}
	w.run(4 * time.Second)
	if !w.eps[1].IsLWGCoordinator("a") {
		t.Fatal("p1 should coordinate")
	}
	if err := w.eps[1].Leave("a"); err != nil {
		t.Fatal(err)
	}
	w.run(2 * time.Second)
	w.requireLWG("a", 2, 3)
	if !w.eps[2].IsLWGCoordinator("a") {
		t.Error("p2 should take over coordination")
	}
}

func TestLastLeaveDissolves(t *testing.T) {
	w := newCWorld(t, 2, []ids.ProcessID{0}, testCfg())
	if err := w.eps[1].Join("a"); err != nil {
		t.Fatal(err)
	}
	w.run(2 * time.Second)
	if err := w.eps[1].Leave("a"); err != nil {
		t.Fatal(err)
	}
	w.run(2 * time.Second)
	if got := w.servers[0].DB().Live("a"); len(got) != 0 {
		t.Fatalf("mapping not deleted: %v", got)
	}
}

func TestCrashTrimsLWGView(t *testing.T) {
	w := newCWorld(t, 4, []ids.ProcessID{0}, testCfg())
	for _, p := range []ids.ProcessID{1, 2, 3} {
		if err := w.eps[p].Join("a"); err != nil {
			t.Fatal(err)
		}
	}
	w.run(4 * time.Second)
	w.nw.Crash(3)
	w.run(3 * time.Second)
	w.requireLWG("a", 1, 2)
}

func TestSendsBufferedAcrossRecovery(t *testing.T) {
	w := newCWorld(t, 4, []ids.ProcessID{0}, testCfg())
	for _, p := range []ids.ProcessID{1, 2, 3} {
		if err := w.eps[p].Join("a"); err != nil {
			t.Fatal(err)
		}
	}
	w.run(4 * time.Second)
	w.nw.Crash(3)
	// Send while recovery is in flight: the message must eventually reach
	// the survivors.
	w.s.After(400*time.Millisecond, func() {
		_ = w.eps[1].Send("a", []byte("mid-recovery"))
	})
	w.run(4 * time.Second)
	for _, p := range []ids.ProcessID{1, 2} {
		found := false
		for _, d := range w.ups[p].dataOf("a") {
			if d == "mid-recovery" {
				found = true
			}
		}
		if !found {
			t.Errorf("%v missed the mid-recovery message: %v", p, w.ups[p].dataOf("a"))
		}
	}
}

func TestPartitionSplitsLWG(t *testing.T) {
	w := newCWorld(t, 8, []ids.ProcessID{0, 4}, testCfg())
	for _, p := range []ids.ProcessID{1, 2, 5, 6} {
		if err := w.eps[p].Join("a"); err != nil {
			t.Fatal(err)
		}
	}
	w.run(5 * time.Second)
	w.requireLWG("a", 1, 2, 5, 6)

	w.nw.SetPartitions([]netsim.NodeID{0, 1, 2, 3}, []netsim.NodeID{4, 5, 6, 7})
	w.run(4 * time.Second)
	va := w.lwgView(1, "a")
	vb := w.lwgView(5, "a")
	if !va.Members.Equal(ids.NewMembers(1, 2)) {
		t.Errorf("side A members = %v", va.Members)
	}
	if !vb.Members.Equal(ids.NewMembers(5, 6)) {
		t.Errorf("side B members = %v", vb.Members)
	}
	if va.ID == vb.ID {
		t.Error("concurrent LWG views must differ")
	}
	// Both sides keep working.
	_ = w.eps[1].Send("a", []byte("A"))
	_ = w.eps[5].Send("a", []byte("B"))
	w.run(time.Second)
	if got := w.ups[2].dataOf("a"); len(got) != 1 || got[0] != "A" {
		t.Errorf("side A delivery = %v", got)
	}
	if got := w.ups[6].dataOf("a"); len(got) != 1 || got[0] != "B" {
		t.Errorf("side B delivery = %v", got)
	}
}

func TestHealMergesLWGSameMapping(t *testing.T) {
	// Steps 3–4 only: both sides kept the same HWG mapping, so after the
	// HWG merges, local peer discovery and the merge-views protocol
	// rebuild a single LWG view.
	w := newCWorld(t, 8, []ids.ProcessID{0, 4}, testCfg())
	for _, p := range []ids.ProcessID{1, 2, 5, 6} {
		if err := w.eps[p].Join("a"); err != nil {
			t.Fatal(err)
		}
	}
	w.run(5 * time.Second)
	w.nw.SetPartitions([]netsim.NodeID{0, 1, 2, 3}, []netsim.NodeID{4, 5, 6, 7})
	w.run(4 * time.Second)
	w.nw.Heal()
	w.run(6 * time.Second)
	w.requireLWG("a", 1, 2, 5, 6)
	// The naming service must converge to exactly one live mapping.
	for _, srv := range w.servers {
		if got := srv.DB().Live("a"); len(got) != 1 {
			t.Errorf("server %v: %d live mappings, want 1:\n%s",
				srv.PID(), len(got), srv.DB().Dump())
		}
	}
}

func TestPartitionedCreationThenHeal(t *testing.T) {
	// The full Table 3 → Table 4 scenario: the LWG is created
	// independently in two partitions, mapped onto different HWGs. After
	// the heal the naming service reconciles (Step 1), the coordinators
	// switch to the highest-gid HWG (Step 2), the concurrent views
	// discover each other on the shared HWG (Step 3) and merge (Step 4).
	w := newCWorld(t, 8, []ids.ProcessID{0, 4}, testCfg())
	w.nw.SetPartitions([]netsim.NodeID{0, 1, 2, 3}, []netsim.NodeID{4, 5, 6, 7})
	for _, p := range []ids.ProcessID{1, 2} {
		if err := w.eps[p].Join("a"); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range []ids.ProcessID{5, 6} {
		if err := w.eps[p].Join("a"); err != nil {
			t.Fatal(err)
		}
	}
	w.run(5 * time.Second)
	hA, _ := w.eps[1].Mapping("a")
	hB, _ := w.eps[5].Mapping("a")
	if hA == hB {
		t.Fatalf("partitioned creations should map onto different HWGs (got %v both)", hA)
	}

	w.nw.Heal()
	w.run(10 * time.Second)

	_, hwg := w.requireLWG("a", 1, 2, 5, 6)
	want := hA
	if hB > hA {
		want = hB
	}
	if hwg != want {
		t.Errorf("reconciled mapping = %v, want the higher gid %v (§6.2)", hwg, want)
	}
	for _, srv := range w.servers {
		if got := srv.DB().Live("a"); len(got) != 1 {
			t.Errorf("server %v: %d live mappings, want 1:\n%s",
				srv.PID(), len(got), srv.DB().Dump())
		}
	}
	// Traffic flows in the merged group.
	_ = w.eps[1].Send("a", []byte("merged"))
	w.run(time.Second)
	for _, p := range []ids.ProcessID{2, 5, 6} {
		found := false
		for _, d := range w.ups[p].dataOf("a") {
			if d == "merged" {
				found = true
			}
		}
		if !found {
			t.Errorf("%v did not deliver post-merge traffic", p)
		}
	}
}

func TestInterferenceRuleSwitch(t *testing.T) {
	// A small LWG stuck on a big HWG must switch off it when the policy
	// runs (Figure 1, interference rule).
	w := newCWorld(t, 10, []ids.ProcessID{0}, testCfg())
	// Build a big LWG (8 members) and a small one (2 members) that the
	// creation-time optimism maps onto the same HWG.
	var big []ids.ProcessID
	for i := 1; i <= 8; i++ {
		big = append(big, ids.ProcessID(i))
	}
	for _, p := range big {
		if err := w.eps[p].Join("big"); err != nil {
			t.Fatal(err)
		}
	}
	w.run(6 * time.Second)
	w.requireLWG("big", big...)
	for _, p := range []ids.ProcessID{1, 2} {
		if err := w.eps[p].Join("small"); err != nil {
			t.Fatal(err)
		}
	}
	w.run(4 * time.Second)
	hBig, _ := w.eps[1].Mapping("big")
	hSmall, _ := w.eps[1].Mapping("small")
	if hBig != hSmall {
		t.Skipf("creation-time mapping did not co-locate (big=%v small=%v)", hBig, hSmall)
	}
	// Run the heuristics everywhere (the paper runs them periodically).
	w.runPolicyEverywhere()
	w.run(4 * time.Second)
	hSmall2, _ := w.eps[1].Mapping("small")
	if hSmall2 == hBig {
		t.Fatalf("interference rule did not switch the minority LWG\ntrace:\n%s", w.tracer.Dump())
	}
	w.requireLWG("small", 1, 2)
	hv, ok := w.eps[1].HWGStack().CurrentView(hSmall2)
	if !ok || !hv.Members.Equal(ids.NewMembers(1, 2)) {
		t.Errorf("new HWG membership = %v, want {p1,p2}", hv.Members)
	}
}

func TestShrinkRuleLeavesEmptyHWG(t *testing.T) {
	cfg := testCfg()
	cfg.ShrinkAfter = 500 * time.Millisecond
	w := newCWorld(t, 4, []ids.ProcessID{0}, cfg)
	for _, p := range []ids.ProcessID{1, 2} {
		if err := w.eps[p].Join("a"); err != nil {
			t.Fatal(err)
		}
	}
	w.run(3 * time.Second)
	hwg, _ := w.eps[1].Mapping("a")
	// Everyone leaves the LWG; the HWG is now useless.
	_ = w.eps[1].Leave("a")
	_ = w.eps[2].Leave("a")
	w.run(2 * time.Second)
	w.runPolicyEverywhere()
	w.run(time.Second)
	w.runPolicyEverywhere() // second pass: past ShrinkAfter
	w.run(2 * time.Second)
	for _, p := range []ids.ProcessID{1, 2} {
		for _, g := range w.eps[p].HWGs() {
			if g == hwg {
				t.Errorf("%v still member of shrunk HWG %v", p, hwg)
			}
		}
	}
}

func TestForwardPointerRedirectsJoiner(t *testing.T) {
	// A LWG switches HWGs; a joiner holding the stale mapping must be
	// redirected by the forward pointer (Section 3.1).
	w := newCWorld(t, 10, []ids.ProcessID{0}, testCfg())
	var big []ids.ProcessID
	for i := 1; i <= 8; i++ {
		big = append(big, ids.ProcessID(i))
	}
	for _, p := range big {
		if err := w.eps[p].Join("big"); err != nil {
			t.Fatal(err)
		}
	}
	w.run(6 * time.Second)
	for _, p := range []ids.ProcessID{1, 2} {
		if err := w.eps[p].Join("small"); err != nil {
			t.Fatal(err)
		}
	}
	w.run(4 * time.Second)
	hBig, _ := w.eps[1].Mapping("big")
	hSmall, _ := w.eps[1].Mapping("small")
	if hBig != hSmall {
		t.Skip("creation-time mapping did not co-locate")
	}
	// Crash the naming server so the stale mapping cannot be refreshed;
	// the joiner must rely on the forward pointer... actually keep the
	// server but freeze its knowledge by joining immediately after the
	// switch, before the coordinator's update propagates.
	w.runPolicyEverywhere()
	w.run(100 * time.Millisecond) // switch underway, naming may be stale
	if err := w.eps[3].Join("small"); err != nil {
		t.Fatal(err)
	}
	w.run(6 * time.Second)
	w.requireLWG("small", 1, 2, 3)
}

func TestDeterministicFullStack(t *testing.T) {
	runOnce := func() string {
		w := newCWorld(t, 8, []ids.ProcessID{0, 4}, testCfg())
		w.nw.SetPartitions([]netsim.NodeID{0, 1, 2, 3}, []netsim.NodeID{4, 5, 6, 7})
		for _, p := range []ids.ProcessID{1, 2, 5, 6} {
			_ = w.eps[p].Join("a")
		}
		w.run(5 * time.Second)
		w.nw.Heal()
		w.run(8 * time.Second)
		var out string
		for _, p := range []ids.ProcessID{1, 2, 5, 6} {
			v, _ := w.eps[p].LWGView("a")
			h, _ := w.eps[p].Mapping("a")
			out += fmt.Sprintf("%v:%v@%v;", p, v, h)
		}
		return out
	}
	if a, b := runOnce(), runOnce(); a != b {
		t.Errorf("nondeterministic full-stack run:\n%s\nvs\n%s", a, b)
	}
}

package core

import (
	"testing"
	"time"

	"plwg/internal/ids"
	"plwg/internal/netsim"
)

// TestRejoinAfterResurrectionGetsFreshView pins the fix for a virtual
// synchrony hole found by the bounded enumerator (reproducer:
// explore/testdata/enum/rejoin-window-hole.schedule).
//
// The setup resurrects a departed member: p2 dissolves the group, but its
// defunct singleton view survives in p1's known-view set, and the
// post-heal merge folds it back in — so the merged view lists p2 while p2
// is still resolving its mapping (its naming lookup is stuck behind the
// partition). Data sent in that view never reaches p2 (unmapped processes
// filter HWG traffic). When p2's join request finally arrives, the old
// coordinator answer — "already a member, repeat the announcement" —
// handed p2 a view whose delivery window already had traffic p2 missed,
// breaking delivery agreement. The fix cuts a fresh view for such
// rejoiners whenever the current view has carried traffic.
func TestRejoinAfterResurrectionGetsFreshView(t *testing.T) {
	w := newCWorld(t, 3, []ids.ProcessID{0}, testCfg())
	step := func(f func()) {
		f()
		w.run(50 * time.Millisecond)
	}

	step(func() { _ = w.eps[1].Join("a") })
	step(func() { _ = w.eps[2].Join("a") })
	step(func() { _ = w.eps[1].Leave("a") })
	step(func() { _ = w.eps[2].Leave("a") }) // last member: dissolves
	step(func() { _ = w.eps[1].Join("a") })  // p1 re-founds the group
	// Cut the naming server (p0) away; p2's rejoin stalls in resolving.
	step(func() { w.nw.SetPartitions([]netsim.NodeID{0}, []netsim.NodeID{1, 2}) })
	step(func() { _ = w.eps[0].Join("a") })
	step(func() { _ = w.eps[0].Leave("a") })
	step(func() { _ = w.eps[2].Join("a") })
	// Heal: the HWG flush reconciles, and the merge resurrects p2's
	// stale membership into p1's view while p2 is still resolving.
	step(func() { w.nw.Heal() })

	// Send in the merged view before p2 completes its join.
	if err := w.eps[1].Send("a", []byte("m1")); err != nil {
		t.Fatal(err)
	}
	sendView := w.lwgView(1, "a").ID

	w.run(10 * time.Second)

	final, _ := w.requireLWG("a", 1, 2)
	if final.ID == sendView {
		t.Fatalf("rejoiner was handed the traffic-bearing view %v verbatim; "+
			"a fresh boundary view was never cut\ntrace:\n%s",
			sendView, w.tracer.Dump())
	}
	for _, d := range w.ups[2].dataOf("a") {
		if d == "m1" {
			t.Fatalf("p2 delivered %q although its window began after it\ntrace:\n%s",
				d, w.tracer.Dump())
		}
	}
	delivered := false
	for _, d := range w.ups[1].dataOf("a") {
		delivered = delivered || d == "m1"
	}
	if !delivered {
		t.Fatalf("p1 lost its own send\ntrace:\n%s", w.tracer.Dump())
	}
}

// TestAbandonedRejoinRepudiatesGhostMembership pins the companion hole
// (reproducer: explore/testdata/enum/abandoned-rejoin-ghost.schedule).
// Same resurrection prefix as above, but p2 gives up on its stuck join
// (Leave while resolving) instead of completing it. The merged view at
// p1 still lists p2; with p2's local state dropped, nothing would ever
// answer for that membership — the announcement naming p2 arrived while
// p2 had (resolving) state, so the phantom-repudiation path never fired,
// and no further announcements come. p1 keeps a ghost member forever and
// the world never converges to {p1}. The fix makes the abort scan the
// recorded views and repudiate any that claim this process.
func TestAbandonedRejoinRepudiatesGhostMembership(t *testing.T) {
	w := newCWorld(t, 3, []ids.ProcessID{0}, testCfg())
	step := func(f func()) {
		f()
		w.run(50 * time.Millisecond)
	}

	step(func() { _ = w.eps[1].Join("a") })
	step(func() { _ = w.eps[2].Join("a") })
	step(func() { _ = w.eps[1].Leave("a") })
	step(func() { _ = w.eps[2].Leave("a") }) // last member: dissolves
	step(func() { _ = w.eps[1].Join("a") })  // p1 re-founds the group
	step(func() { w.nw.SetPartitions([]netsim.NodeID{0}, []netsim.NodeID{1, 2}) })
	step(func() { _ = w.eps[0].Join("a") })
	step(func() { _ = w.eps[0].Leave("a") })
	step(func() { _ = w.eps[2].Join("a") })  // stalls in resolving (p0 cut off)
	step(func() { w.nw.Heal() })             // merge resurrects p2 into p1's view
	step(func() { _ = w.eps[2].Leave("a") }) // p2 abandons the stuck join

	w.run(10 * time.Second)

	final := w.lwgView(1, "a")
	if !final.Members.Equal(ids.NewMembers(1)) {
		t.Fatalf("p1's view kept a ghost member: %v, want {p1}\ntrace:\n%s",
			final.Members, w.tracer.Dump())
	}
	if _, ok := w.eps[2].LWGView("a"); ok {
		t.Fatalf("p2 abandoned its join but still has a view of the group\ntrace:\n%s",
			w.tracer.Dump())
	}
}

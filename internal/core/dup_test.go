package core

import (
	"fmt"
	"testing"
	"time"

	"plwg/internal/ids"
	"plwg/internal/naming"
	"plwg/internal/netsim"
	"plwg/internal/sim"
	"plwg/internal/trace"
)

// dupNet wraps the simulated network and re-sends every frame once more
// after delay — the duplicate+reorder adversary the real UDP transport's
// fault layer produces. Applied to ALL traffic (data, acks, flush,
// heartbeats), it audits that every protocol layer is idempotent under
// datagram duplication: vsync's per-view dedup must keep duplicated
// msgData/lwgBatch frames from double-delivering to the application,
// and the cumulative (max-merge) ack vectors must not double-count
// duplicated piggybacked acks.
type dupNet struct {
	*netsim.Network
	delay time.Duration
}

func (d *dupNet) Multicast(from netsim.NodeID, addr netsim.Addr, msg netsim.Message) {
	d.Network.Multicast(from, addr, msg)
	d.Sim().After(d.delay, func() {
		d.Network.Multicast(from, addr, msg)
	})
}

func (d *dupNet) Unicast(from, to netsim.NodeID, addr netsim.Addr, msg netsim.Message) {
	d.Network.Unicast(from, to, addr, msg)
	d.Sim().After(d.delay, func() {
		d.Network.Unicast(from, to, addr, msg)
	})
}

// newDupWorld is newCWorld with every frame duplicated after delay.
func newDupWorld(t *testing.T, n int, serverPids []ids.ProcessID, cfg Config, delay time.Duration) *cWorld {
	t.Helper()
	s := sim.New(3)
	nw := netsim.New(s, netsim.DefaultParams())
	dn := &dupNet{Network: nw, delay: delay}
	w := &cWorld{
		t: t, s: s, nw: nw,
		eps:     make(map[ids.ProcessID]*Endpoint),
		ups:     make(map[ids.ProcessID]*cRec),
		servers: make(map[ids.ProcessID]*naming.Server),
		tracer:  &trace.Recorder{},
	}
	for i := 0; i < n; i++ {
		pid := ids.ProcessID(i)
		mux := netsim.NewMux()
		rec := &cRec{s: s, log: make(map[ids.LWGID][]cEntry)}
		ep := New(Params{
			Net:     dn,
			PID:     pid,
			Servers: serverPids,
			Config:  cfg,
			Upcalls: rec,
			Tracer:  w.tracer,
		}, mux)
		for _, sp := range serverPids {
			if sp == pid {
				srv := naming.NewServer(naming.ServerParams{
					Net: dn, PID: pid, Peers: serverPids, Tracer: w.tracer,
				})
				mux.Handle(naming.ServerPrefix, srv.HandleMessage)
				srv.Start()
				w.servers[pid] = srv
			}
		}
		nw.AddNode(pid, mux.Handler())
		w.eps[pid] = ep
		w.ups[pid] = rec
	}
	return w
}

// requireExactlyOnce asserts each pid delivered exactly the payloads in
// want, each exactly once (order-insensitive).
func requireExactlyOnce(t *testing.T, w *cWorld, lwg ids.LWGID, want []string, pids ...ids.ProcessID) {
	t.Helper()
	wantCount := make(map[string]int, len(want))
	for _, p := range want {
		wantCount[p]++
	}
	for _, pid := range pids {
		got := make(map[string]int)
		for _, d := range w.ups[pid].dataOf(lwg) {
			got[d]++
		}
		for p, n := range got {
			if n != wantCount[p] {
				t.Errorf("%v delivered %q %d times, want %d\ntrace:\n%s",
					pid, p, n, wantCount[p], w.tracer.Dump())
			}
		}
		for p, n := range wantCount {
			if got[p] != n {
				t.Errorf("%v delivered %q %d times, want %d", pid, p, got[p], n)
			}
		}
	}
}

// TestDuplicatedFramesDeliverOnce: with every frame (data + control +
// acks) duplicated shortly after the original, application delivery must
// stay exactly-once and membership must still converge.
func TestDuplicatedFramesDeliverOnce(t *testing.T) {
	w := newDupWorld(t, 3, []ids.ProcessID{0}, testCfg(), 10*time.Millisecond)
	for _, p := range []ids.ProcessID{1, 2} {
		if err := w.eps[p].Join("a"); err != nil {
			t.Fatal(err)
		}
	}
	w.run(4 * time.Second)
	w.requireLWG("a", 1, 2)

	var want []string
	for i := 0; i < 20; i++ {
		pay := fmt.Sprintf("m%d", i)
		want = append(want, pay)
		if err := w.eps[1+ids.ProcessID(i%2)].Send("a", []byte(pay)); err != nil {
			t.Fatal(err)
		}
		w.run(5 * time.Millisecond)
	}
	w.run(3 * time.Second)
	w.requireLWG("a", 1, 2)
	requireExactlyOnce(t, w, "a", want, 1, 2)
}

// TestDuplicatedBatchAcrossViewChange: duplicates arrive 400ms late —
// after a member crash has forced a view change — so stale lwgBatch
// frames tagged with the old view land inside the new one. They must be
// discarded by the genealogy filter, not re-delivered.
func TestDuplicatedBatchAcrossViewChange(t *testing.T) {
	w := newDupWorld(t, 4, []ids.ProcessID{0}, testCfg(), 400*time.Millisecond)
	for _, p := range []ids.ProcessID{1, 2, 3} {
		if err := w.eps[p].Join("a"); err != nil {
			t.Fatal(err)
		}
	}
	w.run(4 * time.Second)
	w.requireLWG("a", 1, 2, 3)

	var want []string
	for i := 0; i < 10; i++ {
		pay := fmt.Sprintf("pre%d", i)
		want = append(want, pay)
		if err := w.eps[1].Send("a", []byte(pay)); err != nil {
			t.Fatal(err)
		}
	}
	// Crash p3 while the duplicates are still in flight: the survivors
	// reconfigure, then the late duplicates arrive under the new view.
	w.run(50 * time.Millisecond)
	w.nw.Crash(3)
	w.run(4 * time.Second)
	w.requireLWG("a", 1, 2)

	// Traffic in the new view must still flow and stay exactly-once.
	for i := 0; i < 10; i++ {
		pay := fmt.Sprintf("post%d", i)
		want = append(want, pay)
		if err := w.eps[2].Send("a", []byte(pay)); err != nil {
			t.Fatal(err)
		}
	}
	w.run(3 * time.Second)
	requireExactlyOnce(t, w, "a", want, 1, 2)
}

// TestDuplicatedReorderedAcksConverge: long-delayed duplicates mean every
// piggybacked ack vector is also replayed out of order; the cumulative
// max-merge semantics must keep stability (and thus retransmission
// buffers) correct — observable as the group still converging and
// delivering exactly-once after heavy traffic.
func TestDuplicatedReorderedAcksConverge(t *testing.T) {
	w := newDupWorld(t, 3, []ids.ProcessID{0}, testCfg(), 150*time.Millisecond)
	for _, p := range []ids.ProcessID{1, 2} {
		if err := w.eps[p].Join("a"); err != nil {
			t.Fatal(err)
		}
	}
	w.run(4 * time.Second)
	w.requireLWG("a", 1, 2)

	var want []string
	for round := 0; round < 5; round++ {
		for i := 0; i < 10; i++ {
			pay := fmt.Sprintf("r%d-%d", round, i)
			want = append(want, pay)
			if err := w.eps[1+ids.ProcessID(i%2)].Send("a", []byte(pay)); err != nil {
				t.Fatal(err)
			}
		}
		w.run(300 * time.Millisecond)
	}
	w.run(3 * time.Second)
	w.requireLWG("a", 1, 2)
	requireExactlyOnce(t, w, "a", want, 1, 2)
}

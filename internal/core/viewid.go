package core

import (
	"hash/fnv"
	"strconv"

	"plwg/internal/ids"
)

// LWG view identifiers come from two minting schemes:
//
//   - Coordinator-minted: ordinary membership changes (join, leave) are
//     installed by the LWG view's coordinator from its per-LWG counter,
//     exactly the paper's (coordinator, view-sequence-number) scheme.
//
//   - Group-minted: two situations require every member to agree on a new
//     view identifier *without* communicating — trimming a LWG view when
//     the underlying HWG view changes, and merging concurrent LWG views at
//     the end of a MERGE-VIEWS flush ("in a decentralized and
//     deterministic way", Figure 5). A counter cannot be consulted
//     decentrally, so these identifiers take their sequence number from a
//     deterministic hash of the inputs, tagged with the top bit so they
//     can never collide with counter-minted numbers. Identical inputs
//     yield the identical identifier, which makes the decision idempotent
//     across members — the property the paper's argument relies on.
const groupMintedBit = uint64(1) << 63

// trimmedViewID names the view obtained by restricting oldView to the
// members surviving in the HWG view hwgView.
func trimmedViewID(lwg ids.LWGID, oldView ids.ViewID, hwgView ids.ViewID, coord ids.ProcessID) ids.ViewID {
	return ids.ViewID{
		Coord: coord,
		Seq:   groupMintedBit | hashViewInputs("trim", lwg, []ids.ViewID{oldView, hwgView}),
	}
}

// mergedViewID names the view obtained by merging the given concurrent
// views (sorted for determinism by the caller).
func mergedViewID(lwg ids.LWGID, merged ids.ViewIDs, coord ids.ProcessID) ids.ViewID {
	return ids.ViewID{
		Coord: coord,
		Seq:   groupMintedBit | hashViewInputs("merge", lwg, merged),
	}
}

func hashViewInputs(op string, lwg ids.LWGID, views []ids.ViewID) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(op))
	_, _ = h.Write([]byte(lwg))
	for _, v := range views {
		_, _ = h.Write([]byte(strconv.FormatInt(int64(v.Coord), 10)))
		_, _ = h.Write([]byte{':'})
		_, _ = h.Write([]byte(strconv.FormatUint(v.Seq, 10)))
		_, _ = h.Write([]byte{';'})
	}
	return h.Sum64() &^ groupMintedBit
}

package core

import (
	"testing"
	"time"

	"plwg/internal/ids"
)

// TestPhantomCoordinatorExcluded pins the fix for a deadlock flushed out
// by the real-network fault sweeps (lwgcheck -rtnet): a merge can
// resurrect a member whose local LWG state is gone (its leave raced a
// partition). maybeRepudiate handles that phantom by sending a leave
// request — but when the phantom is the MINIMUM member it is also the
// view's coordinator, so before the fix nobody acted on the request: the
// survivors parked it in pendingLeavers, the view kept the phantom
// forever, and with a state-less coordinator the mapping was never
// refreshed, so the naming lease expired. The acting-coordinator rule
// (lowest member not pending leave) must let a survivor run the
// exclusion flush.
func TestPhantomCoordinatorExcluded(t *testing.T) {
	w := newCWorld(t, 4, []ids.ProcessID{0}, testCfg())
	for _, p := range []ids.ProcessID{1, 2, 3} {
		if err := w.eps[p].Join("a"); err != nil {
			t.Fatal(err)
		}
	}
	w.run(4 * time.Second)
	w.requireLWG("a", 1, 2, 3)
	if !w.eps[1].IsLWGCoordinator("a") {
		t.Fatal("p1 (minimum member) should coordinate")
	}

	// Manufacture the phantom: wipe p1's member state while the others'
	// view still claims it — the post-merge outcome of a leave lost to an
	// asymmetric partition.
	w.eps[1].dropLwg("a")

	// Re-announce the view from a survivor so the phantom sees a record
	// claiming it and repudiates (a merge round would do the same).
	m2 := w.eps[2].lwgs["a"]
	w.eps[2].hwgSend(m2.hwg, &lwgAnnounce{Views: []viewRecord{{
		LWG:       "a",
		View:      m2.view.Clone(),
		Ancestors: append(ids.ViewIDs{}, m2.ancestors...),
	}}})
	w.run(4 * time.Second)

	// The survivors must shed the phantom and converge; p2 takes over
	// coordination and keeps the mapping alive.
	w.requireLWG("a", 2, 3)
	if _, ok := w.eps[1].LWGView("a"); ok {
		t.Error("phantom still has a view")
	}
	if !w.eps[2].IsLWGCoordinator("a") {
		t.Error("p2 should take over coordination")
	}
	if got := w.servers[0].DB().Live("a"); len(got) != 1 {
		t.Errorf("naming has %d live mappings, want 1:\n%s",
			len(got), w.servers[0].DB().Dump())
	}
}

package core

import (
	"testing"
	"time"

	"plwg/internal/check"
	"plwg/internal/ids"
)

// TestPreInstallOverflowIsLoud pins the bounded pre-install buffer's
// overflow behaviour: shedding a message increments
// core_preinstall_drops_total, leaves an LWGPreInstallDrop trace event,
// and the invariant checker turns that event into a preinstall-overflow
// finding. Before this, an overflow silently dropped view-tagged data —
// a delivery gap indistinguishable from a correct run.
func TestPreInstallOverflowIsLoud(t *testing.T) {
	cfg := testCfg()
	cfg.MaxPreInstall = 2
	w := newCWorld(t, 2, []ids.ProcessID{0}, cfg)
	if err := w.eps[1].Join("a"); err != nil {
		t.Fatal(err)
	}
	w.run(2 * time.Second)
	m := w.eps[1].lwgs["a"]
	if m == nil || m.state != lwgActive {
		t.Fatalf("p1 not active on a\ntrace:\n%s", w.tracer.Dump())
	}

	// Data tagged with a view p1 never installed (a concurrent view from
	// the far side of a partition) is buffered for replay. Three such
	// messages against a cap of two must shed the oldest, loudly.
	ghost := ids.ViewID{Coord: 1, Seq: m.view.ID.Seq + 1000}
	for _, payload := range []string{"m1", "m2", "m3"} {
		m.bufferPreInstall(1, &lwgData{LWG: "a", View: ghost, Data: []byte(payload)})
	}
	if got := w.eps[1].ins.preinstallDrops.Value(); got != 1 {
		t.Fatalf("core_preinstall_drops_total = %d, want 1", got)
	}
	if got := w.eps[1].PreInstallBuffered("a"); got != 2 {
		t.Fatalf("buffered = %d, want 2 (the cap)", got)
	}

	vs := check.Overflow(w.tracer.Events)
	if len(vs) != 1 {
		t.Fatalf("Overflow found %d violations, want 1:\n%s", len(vs), check.Summary(vs))
	}
	v := vs[0]
	if v.Invariant != check.InvOverflow || v.Group != "a" || v.Node != 1 {
		t.Fatalf("violation = %v", v)
	}
	// The shed message is the oldest — m1.
	if want := `shed "m1"`; len(v.Detail) < len(want) || v.Detail[:len(want)] != want {
		t.Fatalf("detail = %q, want prefix %q", v.Detail, want)
	}

	// check.Run surfaces it too, so every sweep and the enumerator see
	// overflow-induced gaps as findings.
	all := check.Run(&check.World{Events: w.tracer.Events})
	found := false
	for _, v := range all {
		if v.Invariant == check.InvOverflow {
			found = true
		}
	}
	if !found {
		t.Fatalf("check.Run missed the overflow:\n%s", check.Summary(all))
	}
}

// TestPreInstallNoFalseOverflow: staying within the bound sheds nothing.
func TestPreInstallNoFalseOverflow(t *testing.T) {
	cfg := testCfg()
	cfg.MaxPreInstall = 4
	w := newCWorld(t, 2, []ids.ProcessID{0}, cfg)
	if err := w.eps[1].Join("a"); err != nil {
		t.Fatal(err)
	}
	w.run(2 * time.Second)
	m := w.eps[1].lwgs["a"]
	ghost := ids.ViewID{Coord: 1, Seq: m.view.ID.Seq + 1000}
	for _, payload := range []string{"m1", "m2", "m3"} {
		m.bufferPreInstall(1, &lwgData{LWG: "a", View: ghost, Data: []byte(payload)})
	}
	if got := w.eps[1].ins.preinstallDrops.Value(); got != 0 {
		t.Fatalf("core_preinstall_drops_total = %d, want 0", got)
	}
	if vs := check.Overflow(w.tracer.Events); len(vs) != 0 {
		t.Fatalf("unexpected violations:\n%s", check.Summary(vs))
	}
}

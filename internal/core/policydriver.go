package core

import (
	"plwg/internal/ids"
	"plwg/internal/policy"
)

// This file drives the Figure 1 mapping heuristics (Section 3.2). The
// rules run periodically (once a minute in the paper's prototype) at
// every process, over purely local knowledge: the memberships of the
// HWGs the process belongs to and of the LWGs it coordinates. Decisions
// are deterministic, and only a LWG view's coordinator switches it, so
// different processes cannot make incompatible mapping decisions.

// knownHWGs snapshots the heavy-weight groups this process belongs to.
func (e *Endpoint) knownHWGs() []policy.HWG {
	var out []policy.HWG
	for _, gid := range e.hwg.Groups() {
		if v, ok := e.hwg.CurrentView(gid); ok {
			out = append(out, policy.HWG{GID: gid, Members: v.Members})
		}
	}
	return out
}

func (e *Endpoint) runPolicy() {
	known := e.knownHWGs()
	e.applyInterferenceRule(known)
	e.applyShareRule(known)
	e.applyShrinkRule()
}

// applyInterferenceRule switches every LWG this process coordinates off a
// HWG it has become a minority of, onto a close-enough HWG or a fresh
// one.
func (e *Endpoint) applyInterferenceRule(known []policy.HWG) {
	for _, lwg := range e.LWGs() {
		m := e.lwgs[lwg]
		if m.state != lwgActive || !m.isCoordinator() {
			continue
		}
		hv, ok := e.hwg.CurrentView(m.hwg)
		if !ok {
			continue
		}
		d := policy.Interference(m.view.Members,
			policy.HWG{GID: m.hwg, Members: hv.Members}, known, e.cfg.Policy)
		if !d.Switch {
			continue
		}
		target, fresh := d.Target, false
		if target == ids.NoHWG {
			target, fresh = e.allocHWGID(), true
			e.trace("policy", "%s: interference, creating %v", lwg, target)
		} else {
			e.trace("policy", "%s: interference, switching to %v", lwg, target)
		}
		m.startSwitch(target, fresh)
	}
}

// applyShareRule collapses pairs of HWGs with heavy membership overlap:
// the LWGs this process coordinates on the lower-identifier HWG switch to
// the higher one; the shrink rule then deletes the abandoned HWG.
func (e *Endpoint) applyShareRule(known []policy.HWG) {
	for i := 0; i < len(known); i++ {
		for j := i + 1; j < len(known); j++ {
			g1, g2 := known[i], known[j]
			if !policy.ShouldCollapse(g1.Members, g2.Members, e.cfg.Policy) {
				continue
			}
			into := policy.CollapseInto(g1.GID, g2.GID)
			from := g1.GID
			if into == g1.GID {
				from = g2.GID
			}
			e.trace("policy", "share rule: collapse %v into %v", from, into)
			for _, lwg := range e.LWGs() {
				m := e.lwgs[lwg]
				if m.state == lwgActive && m.isCoordinator() && m.hwg == from {
					m.startSwitch(into, false)
				}
			}
		}
	}
}

// applyShrinkRule leaves HWGs that have had no local LWG mapped on them
// for ShrinkAfter (Figure 1's shrink rule); a HWG abandoned by everyone
// thereby disappears.
func (e *Endpoint) applyShrinkRule() {
	now := e.clock.Now()
	for _, gid := range e.hwg.Groups() {
		st := e.hwgs[gid]
		if st == nil {
			continue
		}
		if len(st.local) > 0 || e.hwgInUse(gid) {
			st.emptySince = 0
			continue
		}
		if st.emptySince == 0 {
			st.emptySince = now
			if st.emptySince == 0 {
				st.emptySince = 1 // distinguish from the "in use" sentinel
			}
			continue
		}
		if now.Sub(st.emptySince) >= e.cfg.ShrinkAfter {
			e.trace("policy", "shrink rule: leaving %v", gid)
			_ = e.hwg.Leave(gid)
			delete(e.hwgs, gid)
		}
	}
}

// hwgInUse reports whether any local LWG is bound to, joining, or
// switching onto the HWG (such HWGs must not be shrunk away). A switch
// whose pre-switch flush is still in flight (m.sw set, switchTarget not
// yet) counts: shrinking the target out from under it would orphan the
// LWG mid-switch.
func (e *Endpoint) hwgInUse(gid ids.HWGID) bool {
	for _, m := range e.lwgs {
		if m.hwg == gid || m.switchTarget == gid {
			return true
		}
		if m.sw != nil && m.sw.target == gid {
			return true
		}
	}
	return false
}

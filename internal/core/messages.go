package core

import (
	"plwg/internal/ids"
	"plwg/internal/vsync"
)

// The LWG protocol messages ride inside heavy-weight group multicasts
// (vsync payloads), so every message is implicitly tagged with the HWG
// view it was sent in and delivered with view synchrony. LWG-level
// messages additionally carry the LWG view they concern (Section 5.1).

// viewRecord describes one LWG view for announcements and the
// MERGE-VIEWS exchange.
type viewRecord struct {
	LWG       ids.LWGID
	View      ids.View
	Ancestors ids.ViewIDs
}

func (r viewRecord) wireSize() int {
	return 24 + 8*len(r.View.Members) + 16*len(r.Ancestors)
}

// lwgData is a user multicast: ⟨DATA, lwg, view, data⟩ from Figure 5.
type lwgData struct {
	LWG  ids.LWGID
	View ids.ViewID
	Data []byte
}

// WireSize implements vsync.Payload.
func (m *lwgData) WireSize() int { return 24 + len(m.Data) }

// lwgBatch packs several lwgData payloads from one sender — possibly
// spanning every LWG mapped on the HWG — into a single multicast. Each
// packed message keeps its own LWG and view tag, so receivers unpack
// and filter exactly as if the messages had arrived separately.
type lwgBatch struct {
	Msgs []*lwgData
}

// WireSize implements vsync.Payload.
func (m *lwgBatch) WireSize() int {
	n := 8
	for _, d := range m.Msgs {
		n += d.WireSize()
	}
	return n
}

// lwgJoinReq asks the LWG's members (on the HWG the naming service mapped
// it to) to admit the sender.
type lwgJoinReq struct {
	LWG  ids.LWGID
	From ids.ProcessID
}

// WireSize implements vsync.Payload.
func (m *lwgJoinReq) WireSize() int { return 16 }

// lwgLeaveReq asks the LWG coordinator to exclude the sender.
type lwgLeaveReq struct {
	LWG  ids.LWGID
	From ids.ProcessID
}

// WireSize implements vsync.Payload.
func (m *lwgLeaveReq) WireSize() int { return 16 }

// lwgMoved is the forward-pointer reply (Section 3.1): the LWG the sender
// asked about was switched to another HWG.
type lwgMoved struct {
	LWG    ids.LWGID
	Target ids.HWGID
}

// WireSize implements vsync.Payload.
func (m *lwgMoved) WireSize() int { return 16 }

// lwgStop starts a LWG-level flush: members of the view stop sending and
// answer with lwgFlushOk. Only the LWG's members react, so other LWGs on
// the same HWG are not disturbed (minimal interference, Section 3.1).
type lwgStop struct {
	LWG  ids.LWGID
	View ids.ViewID
}

// WireSize implements vsync.Payload.
func (m *lwgStop) WireSize() int { return 24 }

// lwgFlushOk confirms the sender has quiesced the LWG view.
type lwgFlushOk struct {
	LWG  ids.LWGID
	View ids.ViewID
	From ids.ProcessID
}

// WireSize implements vsync.Payload.
func (m *lwgFlushOk) WireSize() int { return 24 }

// lwgView installs a LWG view (after a join, leave, or switch): because
// the underlying HWG multicast is totally ordered and reliable within the
// HWG view, receiving the view message after the flush closes the old
// view consistently at every member.
type lwgView struct {
	Rec viewRecord
	// HWG is the heavy-weight group the view is (now) mapped on.
	HWG ids.HWGID
	// HasState marks a state-transfer payload for the view's joiners.
	HasState bool
	// State is the coordinator's application-state snapshot.
	State []byte
}

// WireSize implements vsync.Payload.
func (m *lwgView) WireSize() int { return 8 + m.Rec.wireSize() + len(m.State) }

// lwgAnnounce advertises the sender's LWG views mapped on this HWG. It is
// multicast after every HWG view change and lets members discover
// concurrent LWG views even when no data traffic flows (a liveness
// supplement to the paper's data-triggered local peer discovery of
// Section 6.3).
type lwgAnnounce struct {
	Views []viewRecord
}

// WireSize implements vsync.Payload.
func (m *lwgAnnounce) WireSize() int {
	n := 8
	for _, r := range m.Views {
		n += r.wireSize()
	}
	return n
}

// lwgMergeViews is Figure 5's MERGE-VIEWS trigger.
type lwgMergeViews struct{}

// WireSize implements vsync.Payload.
func (m *lwgMergeViews) WireSize() int { return 8 }

// lwgMappedViews is Figure 5's ALL-VIEWS/MAPPED-VIEWS message: the
// sender's current LWG views mapped on this HWG.
type lwgMappedViews struct {
	Views []viewRecord
}

// WireSize implements vsync.Payload.
func (m *lwgMappedViews) WireSize() int {
	n := 8
	for _, r := range m.Views {
		n += r.wireSize()
	}
	return n
}

// lwgSwitch instructs the members of a LWG view to re-map onto Target
// (the switching protocol, Sections 3 and 6.2). It is multicast on the
// old HWG.
type lwgSwitch struct {
	LWG    ids.LWGID
	View   ids.ViewID
	Target ids.HWGID
}

// WireSize implements vsync.Payload.
func (m *lwgSwitch) WireSize() int { return 32 }

// lwgSwitchReady tells the LWG coordinator (on the target HWG) that the
// sender has joined the target and is ready to re-bind.
type lwgSwitchReady struct {
	LWG  ids.LWGID
	View ids.ViewID
	From ids.ProcessID
}

// WireSize implements vsync.Payload.
func (m *lwgSwitchReady) WireSize() int { return 24 }

var (
	_ vsync.Payload = (*lwgData)(nil)
	_ vsync.Payload = (*lwgBatch)(nil)
	_ vsync.Payload = (*lwgJoinReq)(nil)
	_ vsync.Payload = (*lwgLeaveReq)(nil)
	_ vsync.Payload = (*lwgMoved)(nil)
	_ vsync.Payload = (*lwgStop)(nil)
	_ vsync.Payload = (*lwgFlushOk)(nil)
	_ vsync.Payload = (*lwgView)(nil)
	_ vsync.Payload = (*lwgAnnounce)(nil)
	_ vsync.Payload = (*lwgMergeViews)(nil)
	_ vsync.Payload = (*lwgMappedViews)(nil)
	_ vsync.Payload = (*lwgSwitch)(nil)
	_ vsync.Payload = (*lwgSwitchReady)(nil)
)

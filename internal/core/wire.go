package core

import (
	"encoding/gob"
	"sync"

	"plwg/internal/vsync"
)

var registerOnce sync.Once

// RegisterWireTypes registers the light-weight group layer's message
// types (which travel as vsync payloads) with encoding/gob, along with
// the layers underneath, for transports that serialize messages, and
// installs the binary-codec decoders for the data-path payloads.
func RegisterWireTypes() {
	registerOnce.Do(func() {
		vsync.RegisterWireTypes()
		registerCodecs()
		gob.Register(&lwgData{})
		gob.Register(&lwgBatch{})
		gob.Register(&lwgJoinReq{})
		gob.Register(&lwgLeaveReq{})
		gob.Register(&lwgMoved{})
		gob.Register(&lwgStop{})
		gob.Register(&lwgFlushOk{})
		gob.Register(&lwgView{})
		gob.Register(&lwgAnnounce{})
		gob.Register(&lwgMergeViews{})
		gob.Register(&lwgMappedViews{})
		gob.Register(&lwgSwitch{})
		gob.Register(&lwgSwitchReady{})
	})
}

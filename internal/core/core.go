// Package core implements the paper's primary contribution: a
// transparent, dynamic light-weight group (LWG) service that operates in
// partitionable networks.
//
// Each process runs an Endpoint stacked on the heavy-weight group (HWG)
// substrate (internal/vsync) and a naming-service client
// (internal/naming). The endpoint:
//
//   - preserves the virtually synchronous interface for LWG users: Join,
//     Leave, Send downcalls; View and Data upcalls (Stop/StopOk are
//     handled internally, as the paper permits for upper layers);
//   - maps LWGs onto a shared pool of HWGs, creating, collapsing and
//     shrinking HWGs according to the Figure 1 heuristics;
//   - switches LWGs between HWGs at run time (the switching protocol);
//   - reconciles after partitions heal through the four steps of
//     Section 6: naming-service callbacks (global peer discovery),
//     highest-gid mapping reconciliation, HWG-local peer discovery, and
//     the MERGE-VIEWS protocol of Figure 5.
package core

import (
	"errors"
	"fmt"
	"time"

	"plwg/internal/ids"
	"plwg/internal/metrics"
	"plwg/internal/naming"
	"plwg/internal/netsim"
	"plwg/internal/policy"
	"plwg/internal/sim"
	"plwg/internal/trace"
	"plwg/internal/vsync"
)

// Upcalls is implemented by the LWG user (the application).
type Upcalls interface {
	// View reports a new view of a light-weight group the process is a
	// member of.
	View(lwg ids.LWGID, view ids.View)
	// Data delivers a light-weight group multicast.
	Data(lwg ids.LWGID, src ids.ProcessID, data []byte)
}

// StateHandler is optionally implemented by Upcalls to transfer
// application state to joining members (the classic virtual-synchrony
// state-transfer facility). When the coordinator admits joiners, it
// snapshots the group state after the admission flush — so the snapshot
// reflects exactly the messages delivered in the old view — and the
// joiners receive it through InstallState before their first View and
// Data upcalls in the group.
//
// State transfer covers joins only. When concurrent views merge after a
// partition, every member keeps its own state: reconciling divergent
// application states is application-specific (use convergent state, or
// re-synchronize on the post-merge View upcall).
type StateHandler interface {
	// SnapshotState returns the group's application state; called at
	// the admitting coordinator. A nil return transfers nothing.
	SnapshotState(lwg ids.LWGID) []byte
	// InstallState delivers the snapshot at a joiner.
	InstallState(lwg ids.LWGID, state []byte)
}

// Errors returned by the downcalls.
var (
	ErrAlreadyMember = errors.New("core: already a member of the light-weight group")
	ErrNotMember     = errors.New("core: not a member of the light-weight group")
)

// Config holds the light-weight group service timers and policy
// parameters.
type Config struct {
	// PolicyInterval is the period of the mapping-heuristics pass. The
	// paper's prototype ran it once a minute; benchmarks shorten it.
	PolicyInterval time.Duration
	// Policy holds the Figure 1 parameters (k_m, k_c).
	Policy policy.Params
	// LwgFlushTimeout bounds a LWG-level flush round.
	LwgFlushTimeout time.Duration
	// JoinRetryInterval is the period of LWG join request retries.
	JoinRetryInterval time.Duration
	// LwgJoinTimeout is how long a joiner waits for an existing LWG view
	// before forming its own.
	LwgJoinTimeout time.Duration
	// SwitchRetryInterval re-announces switch instructions until every
	// member has re-bound.
	SwitchRetryInterval time.Duration
	// NSRetryInterval is the retry period for naming-service operations.
	NSRetryInterval time.Duration
	// ShrinkAfter is how long a process tolerates membership of a HWG
	// with no local LWG mapped on it before leaving (the shrink rule).
	ShrinkAfter time.Duration
	// ReconcileToLowest inverts the Section 6.2 rule: conflicting
	// mappings reconcile onto the LOWEST heavy-weight group identifier
	// instead of the highest. Any total order works as long as everyone
	// applies the same one; this is an ablation switch.
	ReconcileToLowest bool
	// MappingRefreshInterval is how often a LWG view's coordinator
	// refreshes its mapping lease in the naming service. Must be well
	// below naming.Config.MappingTTL.
	MappingRefreshInterval time.Duration
	// MaxBatchBytes flushes the per-HWG send batch once the packed
	// payloads reach this size. Sends from all LWGs mapped on the same
	// HWG coalesce into one multicast, amortizing per-frame overhead
	// and per-receiver processing cost across the batch.
	MaxBatchBytes int
	// MaxBatchDelay bounds how long a packed payload may wait for
	// companions before the batch is flushed — a fraction of the bus
	// round-trip, so batching never dominates delivery latency.
	MaxBatchDelay time.Duration
	// DisableBatching reverts to one HWG multicast per LWG send (the
	// A/B switch for the packing optimization).
	DisableBatching bool
	// MaxPreInstall bounds the per-member buffer of data received under
	// views not yet installed (see lwgMember.bufferPreInstall). Overflow
	// sheds the oldest message, counted by core_preinstall_drops_total
	// and traced as LWGPreInstallDrop so checkers surface the gap.
	MaxPreInstall int
}

// DefaultConfig returns timers sized for the simulated testbed. The
// policy interval defaults to the paper's one minute.
func DefaultConfig() Config {
	return Config{
		PolicyInterval:      time.Minute,
		Policy:              policy.DefaultParams(),
		LwgFlushTimeout:     400 * time.Millisecond,
		JoinRetryInterval:   200 * time.Millisecond,
		LwgJoinTimeout:      700 * time.Millisecond,
		SwitchRetryInterval: 250 * time.Millisecond,
		NSRetryInterval:     250 * time.Millisecond,
		ShrinkAfter:         2 * time.Second,

		MappingRefreshInterval: 15 * time.Second,

		MaxBatchBytes: 8 * 1024,
		MaxBatchDelay: 500 * time.Microsecond,

		MaxPreInstall: 1024,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.PolicyInterval <= 0 {
		c.PolicyInterval = d.PolicyInterval
	}
	if c.LwgFlushTimeout <= 0 {
		c.LwgFlushTimeout = d.LwgFlushTimeout
	}
	if c.JoinRetryInterval <= 0 {
		c.JoinRetryInterval = d.JoinRetryInterval
	}
	if c.LwgJoinTimeout <= 0 {
		c.LwgJoinTimeout = d.LwgJoinTimeout
	}
	if c.SwitchRetryInterval <= 0 {
		c.SwitchRetryInterval = d.SwitchRetryInterval
	}
	if c.NSRetryInterval <= 0 {
		c.NSRetryInterval = d.NSRetryInterval
	}
	if c.ShrinkAfter <= 0 {
		c.ShrinkAfter = d.ShrinkAfter
	}
	if c.MappingRefreshInterval <= 0 {
		c.MappingRefreshInterval = d.MappingRefreshInterval
	}
	if c.MaxBatchBytes <= 0 {
		c.MaxBatchBytes = d.MaxBatchBytes
	}
	if c.MaxBatchDelay <= 0 {
		c.MaxBatchDelay = d.MaxBatchDelay
	}
	if c.MaxPreInstall <= 0 {
		c.MaxPreInstall = d.MaxPreInstall
	}
	return c
}

// Params bundles the dependencies of an Endpoint.
type Params struct {
	Net netsim.Transport
	PID ids.ProcessID
	// Servers lists the naming-server nodes.
	Servers []ids.ProcessID
	Config  Config
	Vsync   vsync.Config
	Naming  naming.Config
	Upcalls Upcalls
	Tracer  trace.Tracer
	// Metrics receives the endpoint's (and the underlying stacks')
	// instrumentation; nil disables it at zero hot-path cost.
	Metrics *metrics.Registry
}

// epMetrics are the endpoint's pre-resolved instruments. The zero value
// (nil handles, from a nil registry) is fully disabled: every method on
// a nil instrument is an inlinable no-op.
type epMetrics struct {
	joins           *metrics.Counter
	leaves          *metrics.Counter
	sends           *metrics.Counter
	deliveries      *metrics.Counter
	viewInstalls    *metrics.Counter
	lwgFlushes      *metrics.Counter
	switches        *metrics.Counter
	rebinds         *metrics.Counter
	mergeTriggers   *metrics.Counter
	merges          *metrics.Counter
	batchFlushes    *metrics.Counter
	batchedMsgs     *metrics.Counter
	batchedBytes    *metrics.Counter
	preinstallDrops *metrics.Counter
	lwgCount        *metrics.Gauge
	hwgCount        *metrics.Gauge
}

func newEpMetrics(r *metrics.Registry) epMetrics {
	return epMetrics{
		joins:           r.Counter("lwg_joins_total"),
		leaves:          r.Counter("lwg_leaves_total"),
		sends:           r.Counter("lwg_sends_total"),
		deliveries:      r.Counter("lwg_deliveries_total"),
		viewInstalls:    r.Counter("lwg_view_installs_total"),
		lwgFlushes:      r.Counter("lwg_flush_rounds_total"),
		switches:        r.Counter("lwg_switches_total"),
		rebinds:         r.Counter("lwg_rebinds_total"),
		mergeTriggers:   r.Counter("lwg_merge_triggers_total"),
		merges:          r.Counter("lwg_merges_total"),
		batchFlushes:    r.Counter("lwg_batch_flushes_total"),
		batchedMsgs:     r.Counter("lwg_batched_msgs_total"),
		batchedBytes:    r.Counter("lwg_batched_bytes_total"),
		preinstallDrops: r.Counter("core_preinstall_drops_total"),
		lwgCount:        r.Gauge("lwg_groups"),
		hwgCount:        r.Gauge("hwg_groups"),
	}
}

// Endpoint is one process's light-weight group service instance.
type Endpoint struct {
	pid    ids.ProcessID
	net    netsim.Transport
	clock  *sim.Sim
	cfg    Config
	up     Upcalls
	tracer trace.Tracer
	reg    *metrics.Registry
	ins    epMetrics

	hwg *vsync.Stack
	ns  *naming.Client

	lwgs map[ids.LWGID]*lwgMember
	hwgs map[ids.HWGID]*hwgState

	// lwgSeq holds this process's per-LWG view counters (for
	// coordinator-minted views).
	lwgSeq map[ids.LWGID]uint64
	// verSeq versions this process's naming-service writes.
	verSeq uint64
	// hwgCounter allocates fresh heavy-weight group identifiers.
	hwgCounter int64

	policyTicker  *sim.Ticker
	refreshTicker *sim.Ticker
}

// hwgState is the endpoint's per-HWG bookkeeping.
type hwgState struct {
	gid ids.HWGID
	// view is the current HWG view (zero until the first View upcall).
	view ids.View
	// stopped is set between the HWG Stop upcall and the next view.
	stopped bool
	// local is the set of local LWGs mapped on this HWG.
	local map[ids.LWGID]bool
	// known is AV_p(hwg) from Figure 5: every LWG view known to be
	// mapped on this HWG, filled by announcements and the MERGE-VIEWS
	// exchange.
	known map[ids.LWGID]map[ids.ViewID]viewRecord
	// forward holds forward pointers for LWGs switched off this HWG.
	forward map[ids.LWGID]ids.HWGID
	// mergePending dedupes MERGE-VIEWS triggers until the next view.
	mergePending bool
	// emptySince records when the HWG last had no local LWGs (for the
	// shrink rule); zero while it has some.
	emptySince sim.Time

	// batch packs outgoing lwgData from every local LWG mapped on this
	// HWG into one multicast; flushed by size (Config.MaxBatchBytes),
	// delay (Config.MaxBatchDelay), or any control-message send.
	batch      []*lwgData
	batchBytes int
	batchTimer *sim.Timer
}

// New creates a light-weight group service endpoint and registers its
// protocol handlers on the mux.
func New(p Params, mux *netsim.Mux) *Endpoint {
	tr := p.Tracer
	if tr == nil {
		tr = trace.Nop{}
	}
	e := &Endpoint{
		pid:    p.PID,
		net:    p.Net,
		clock:  p.Net.Sim(),
		cfg:    p.Config.withDefaults(),
		up:     p.Upcalls,
		tracer: tr,
		reg:    p.Metrics,
		ins:    newEpMetrics(p.Metrics),
		lwgs:   make(map[ids.LWGID]*lwgMember),
		hwgs:   make(map[ids.HWGID]*hwgState),
		lwgSeq: make(map[ids.LWGID]uint64),
	}
	e.hwg = vsync.NewStack(vsync.Params{
		Net:     p.Net,
		PID:     p.PID,
		Config:  p.Vsync,
		Upcalls: (*hwgUpcalls)(e),
		Tracer:  tr,
		Metrics: p.Metrics,
	})
	e.ns = naming.NewClient(naming.ClientParams{
		Net:     p.Net,
		PID:     p.PID,
		Servers: p.Servers,
		Config:  p.Naming,
		Metrics: p.Metrics,
	})
	mux.Handle(vsync.AddrPrefix, e.hwg.HandleMessage)
	mux.Handle(naming.ClientPrefix, e.ns.HandleMessage)
	mux.Handle(naming.CallbackPrefix, e.handleNamingCallback)
	e.policyTicker = e.clock.Every(e.cfg.PolicyInterval, e.runPolicy)
	e.refreshTicker = e.clock.Every(e.cfg.MappingRefreshInterval, e.refreshMappings)
	return e
}

// refreshMappings renews the naming-service lease of every mapping this
// process is responsible for (it coordinates the LWG view). Iteration is
// in sorted group order: message emission must be deterministic.
func (e *Endpoint) refreshMappings() {
	for _, l := range e.LWGs() {
		m := e.lwgs[l]
		if m.state == lwgActive && m.isCoordinator() {
			e.updateMapping(m)
		}
	}
}

// PID returns the process identifier.
func (e *Endpoint) PID() ids.ProcessID { return e.pid }

// Registry returns the endpoint's metrics registry (nil when metrics
// are disabled).
func (e *Endpoint) Registry() *metrics.Registry { return e.reg }

// updateGauges refreshes the group-count gauges; called where LWG or
// HWG membership changes.
func (e *Endpoint) updateGauges() {
	e.ins.lwgCount.Set(int64(len(e.lwgs)))
	e.ins.hwgCount.Set(int64(e.hwg.NumGroups()))
}

// HWGStack exposes the underlying heavy-weight group stack (read-only
// introspection for tests and tools).
func (e *Endpoint) HWGStack() *vsync.Stack { return e.hwg }

// NamingClient exposes the endpoint's naming client.
func (e *Endpoint) NamingClient() *naming.Client { return e.ns }

// LWGView returns the process's current view of the light-weight group.
func (e *Endpoint) LWGView(lwg ids.LWGID) (ids.View, bool) {
	m, ok := e.lwgs[lwg]
	if !ok || m.state != lwgActive && m.state != lwgStopped && m.state != lwgSwitching {
		return ids.View{}, false
	}
	return m.view.Clone(), true
}

// LWGPhase names the protocol phase of this process's membership in the
// group: "resolving", "joining", "active", "stopped" (LWG flush in
// progress), "switching", or "" when the process holds no state for it.
// Exposed for introspection (debug endpoints) and for the schedule
// enumerator's canonical state digest.
func (e *Endpoint) LWGPhase(lwg ids.LWGID) string {
	m, ok := e.lwgs[lwg]
	if !ok {
		return ""
	}
	switch m.state {
	case lwgResolving:
		return "resolving"
	case lwgJoining:
		return "joining"
	case lwgActive:
		return "active"
	case lwgStopped:
		return "stopped"
	case lwgSwitching:
		return "switching"
	}
	return "unknown"
}

// PreInstallBuffered returns how many data messages the member currently
// holds in its pre-install buffer (0 when not a member).
func (e *Endpoint) PreInstallBuffered(lwg ids.LWGID) int {
	m, ok := e.lwgs[lwg]
	if !ok {
		return 0
	}
	return len(m.preInstall)
}

// Mapping returns the heavy-weight group the process's view of the LWG is
// mapped on.
func (e *Endpoint) Mapping(lwg ids.LWGID) (ids.HWGID, bool) {
	m, ok := e.lwgs[lwg]
	if !ok || m.hwg == ids.NoHWG {
		return ids.NoHWG, false
	}
	return m.hwg, true
}

// LWGs returns the light-weight groups this process is a member of, in
// sorted order.
func (e *Endpoint) LWGs() []ids.LWGID {
	out := make([]ids.LWGID, 0, len(e.lwgs))
	for l := range e.lwgs {
		out = append(out, l)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// HWGs returns the heavy-weight groups this process is currently a member
// of (through the vsync stack).
func (e *Endpoint) HWGs() []ids.HWGID { return e.hwg.Groups() }

// IsLWGCoordinator reports whether this process coordinates its current
// view of the group (smallest member).
func (e *Endpoint) IsLWGCoordinator(lwg ids.LWGID) bool {
	m, ok := e.lwgs[lwg]
	return ok && len(m.view.Members) > 0 && m.view.Coordinator() == e.pid
}

// RunPolicyNow runs one mapping-heuristics pass immediately (exposed for
// tests and benchmarks; production relies on the periodic timer).
func (e *Endpoint) RunPolicyNow() { e.runPolicy() }

// Stop cancels the endpoint's timers (the network node keeps existing).
func (e *Endpoint) Stop() {
	if e.policyTicker != nil {
		e.policyTicker.Stop()
		e.policyTicker = nil
	}
	if e.refreshTicker != nil {
		e.refreshTicker.Stop()
		e.refreshTicker = nil
	}
	for _, m := range e.lwgs {
		m.stopTimers()
	}
	for _, st := range e.hwgs {
		if st.batchTimer != nil {
			st.batchTimer.Stop()
			st.batchTimer = nil
		}
	}
}

func (e *Endpoint) nextLwgSeq(lwg ids.LWGID) uint64 {
	e.lwgSeq[lwg]++
	return e.lwgSeq[lwg]
}

func (e *Endpoint) observeLwgView(lwg ids.LWGID, v ids.ViewID) {
	if v.Coord == e.pid && v.Seq&groupMintedBit == 0 && e.lwgSeq[lwg] < v.Seq {
		e.lwgSeq[lwg] = v.Seq
	}
}

func (e *Endpoint) nextVer() uint64 {
	e.verSeq++
	return e.verSeq
}

// allocHWGID mints a fresh heavy-weight group identifier: globally unique
// (counter ⊕ pid) and roughly increasing over time, so later groups win
// the highest-gid tie-breaks.
func (e *Endpoint) allocHWGID() ids.HWGID {
	e.hwgCounter++
	return ids.HWGID(e.hwgCounter<<16 | int64(e.pid)&0xffff + 1)
}

func (e *Endpoint) hwgState(gid ids.HWGID) *hwgState {
	st := e.hwgs[gid]
	if st == nil {
		st = &hwgState{
			gid:     gid,
			local:   make(map[ids.LWGID]bool),
			known:   make(map[ids.LWGID]map[ids.ViewID]viewRecord),
			forward: make(map[ids.LWGID]ids.HWGID),
		}
		e.hwgs[gid] = st
	}
	return st
}

func (e *Endpoint) trace(what, format string, args ...any) {
	e.tracer.Trace(trace.Event{
		At:    e.clock.Now(),
		Node:  e.pid,
		Layer: "lwg",
		What:  what,
		Text:  fmt.Sprintf(format, args...),
	})
}

// traceEvent emits a structured event (for the invariant checker); the
// caller fills the payload fields, this stamps time, node and layer.
func (e *Endpoint) traceEvent(ev trace.Event) {
	ev.At = e.clock.Now()
	ev.Node = e.pid
	ev.Layer = "lwg"
	e.tracer.Trace(ev)
}

// hwgUpcalls adapts Endpoint to vsync.Upcalls without exporting the
// methods on Endpoint itself.
type hwgUpcalls Endpoint

var _ vsync.Upcalls = (*hwgUpcalls)(nil)

// View implements vsync.Upcalls.
func (u *hwgUpcalls) View(gid ids.HWGID, view ids.View) {
	(*Endpoint)(u).onHWGView(gid, view)
}

// Data implements vsync.Upcalls.
func (u *hwgUpcalls) Data(gid ids.HWGID, src ids.ProcessID, payload vsync.Payload) {
	(*Endpoint)(u).onHWGData(gid, src, payload)
}

// Stop implements vsync.Upcalls.
func (u *hwgUpcalls) Stop(gid ids.HWGID) {
	(*Endpoint)(u).onHWGStop(gid)
}

package core

import (
	"fmt"

	"plwg/internal/ids"
	"plwg/internal/wire"
)

// Binary-codec support (internal/wire) for the data-path payloads:
// lwgData and lwgBatch dominate traffic, so they bypass gob on the real
// transport. The LWG control messages (join, stop, view, merge) are
// rare and stay on the gob fallback. Identifiers 16–31 are reserved
// for this package.

const (
	wireLwgData byte = iota + 16
	wireLwgBatch
)

// WireID implements wire.Marshaler.
func (m *lwgData) WireID() byte { return wireLwgData }

// MarshalWire implements wire.Marshaler.
func (m *lwgData) MarshalWire(b *wire.Buffer) bool {
	b.String(string(m.LWG))
	b.Int64(int64(m.View.Coord))
	b.Uint64(m.View.Seq)
	b.Bytes(m.Data)
	return true
}

// WireID implements wire.Marshaler.
func (m *lwgBatch) WireID() byte { return wireLwgBatch }

// MarshalWire implements wire.Marshaler.
func (m *lwgBatch) MarshalWire(b *wire.Buffer) bool {
	b.Uint64(uint64(len(m.Msgs)))
	for _, d := range m.Msgs {
		if !d.MarshalWire(b) {
			return false
		}
	}
	return true
}

func decodeLwgData(r *wire.Reader) *lwgData {
	m := &lwgData{LWG: ids.LWGID(r.String())}
	m.View = ids.ViewID{Coord: ids.ProcessID(r.Int64()), Seq: r.Uint64()}
	// Copy out of the datagram so the payload does not pin (or alias)
	// the receive buffer.
	if raw := r.Bytes(); len(raw) > 0 {
		m.Data = append([]byte(nil), raw...)
	}
	return m
}

func registerCodecs() {
	wire.Register(wireLwgData, func(r *wire.Reader) (wire.Marshaler, error) {
		return decodeLwgData(r), r.Err()
	})
	wire.Register(wireLwgBatch, func(r *wire.Reader) (wire.Marshaler, error) {
		n := r.Uint64()
		const maxMsgs = 1 << 16 // sanity bound against corrupt input
		if n > maxMsgs {
			return nil, fmt.Errorf("core: lwgBatch of %d messages exceeds sanity bound", n)
		}
		m := &lwgBatch{Msgs: make([]*lwgData, 0, n)}
		for i := uint64(0); i < n && r.Err() == nil; i++ {
			m.Msgs = append(m.Msgs, decodeLwgData(r))
		}
		return m, r.Err()
	})
}

package core

import (
	"math/rand"
	"testing"

	"plwg/internal/ids"
)

func TestGroupMintedBitSeparatesIDSpaces(t *testing.T) {
	trimmed := trimmedViewID("a", ids.ViewID{Coord: 1, Seq: 5}, ids.ViewID{Coord: 0, Seq: 9}, 2)
	merged := mergedViewID("a", ids.ViewIDs{{Coord: 1, Seq: 5}, {Coord: 4, Seq: 2}}, 1)
	for _, v := range []ids.ViewID{trimmed, merged} {
		if v.Seq&groupMintedBit == 0 {
			t.Errorf("group-minted id %v lacks the reserved bit", v)
		}
	}
	// Counter-minted identifiers live in the other half of the space.
	counter := ids.ViewID{Coord: 1, Seq: 42}
	if counter.Seq&groupMintedBit != 0 {
		t.Error("counter identifiers must not carry the reserved bit")
	}
}

func TestMintingDeterministic(t *testing.T) {
	old := ids.ViewID{Coord: 2, Seq: 7}
	hv := ids.ViewID{Coord: 0, Seq: 3}
	a := trimmedViewID("grp", old, hv, 2)
	b := trimmedViewID("grp", old, hv, 2)
	if a != b {
		t.Error("identical inputs must mint identical identifiers")
	}
	m1 := mergedViewID("grp", ids.ViewIDs{old, hv}, 0)
	m2 := mergedViewID("grp", ids.ViewIDs{old, hv}, 0)
	if m1 != m2 {
		t.Error("identical merge inputs must mint identical identifiers")
	}
}

func TestMintingDistinguishesInputs(t *testing.T) {
	old := ids.ViewID{Coord: 2, Seq: 7}
	hv := ids.ViewID{Coord: 0, Seq: 3}
	base := trimmedViewID("grp", old, hv, 2)
	variants := []ids.ViewID{
		trimmedViewID("grp2", old, hv, 2),                          // different group
		trimmedViewID("grp", ids.ViewID{Coord: 2, Seq: 8}, hv, 2),  // different old view
		trimmedViewID("grp", old, ids.ViewID{Coord: 0, Seq: 4}, 2), // different hwg view
		mergedViewID("grp", ids.ViewIDs{old, hv}, 2),               // different operation
	}
	for i, v := range variants {
		if v.Seq == base.Seq {
			t.Errorf("variant %d collided with base (%v)", i, v)
		}
	}
}

func TestMintingCollisionResistanceSample(t *testing.T) {
	// Not a proof, a smoke check: 50k random mint inputs, no collisions.
	r := rand.New(rand.NewSource(7))
	seen := make(map[uint64]bool, 100_000)
	for i := 0; i < 50_000; i++ {
		old := ids.ViewID{Coord: ids.ProcessID(r.Intn(64)), Seq: uint64(r.Int63n(1 << 40))}
		hv := ids.ViewID{Coord: ids.ProcessID(r.Intn(64)), Seq: uint64(r.Int63n(1 << 40))}
		v := trimmedViewID(ids.LWGID(string(rune('a'+r.Intn(26)))), old, hv, 0)
		if seen[v.Seq] {
			t.Fatalf("collision at sample %d", i)
		}
		seen[v.Seq] = true
	}
}

func TestReconfViewIDCoordinatorInMembers(t *testing.T) {
	members := ids.NewMembers(3, 5, 9)
	v := reconfViewID("g", ids.ViewID{Coord: 1, Seq: 4}, members)
	if v.Coord != 3 {
		t.Errorf("reconf coordinator = %v, want the smallest member", v.Coord)
	}
	if v.Seq&groupMintedBit == 0 {
		t.Error("reconf ids are group-minted")
	}
	// Empty membership (dissolution) falls back to the old coordinator.
	v2 := reconfViewID("g", ids.ViewID{Coord: 7, Seq: 4}, ids.Members{})
	if v2.Coord != 7 {
		t.Errorf("dissolution coordinator = %v, want 7", v2.Coord)
	}
}

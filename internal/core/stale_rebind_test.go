package core

import (
	"testing"
	"time"

	"plwg/internal/ids"
)

// TestStaleRebindDoesNotCancelSwitch pins another bug flushed out by the
// real-network fault sweeps (lwgcheck -rtnet): while a member is
// switching HWGs, a re-sent or duplicated lwgView announcing the OLD
// binding (same view ID, old HWG — e.g. the coordinator answering a late
// join retry, or a fault-injected duplicate) used to satisfy the switch
// re-binding guard and re-bind the member BACKWARDS. installView then
// cancelled its switch, it stopped reporting readiness, and it wedged on
// the old HWG while the rest of the group reconfigured on the target
// (heal-convergence and mapping-agreement violations). Only the
// announced switch target may re-bind a switching member.
func TestStaleRebindDoesNotCancelSwitch(t *testing.T) {
	w := newCWorld(t, 4, []ids.ProcessID{0}, testCfg())
	for _, p := range []ids.ProcessID{1, 2} {
		if err := w.eps[p].Join("a"); err != nil {
			t.Fatal(err)
		}
	}
	w.run(4 * time.Second)
	w.requireLWG("a", 1, 2)
	oldHwg, _ := w.eps[1].Mapping("a")
	m1 := w.eps[1].lwgs["a"]
	if m1 == nil || !m1.isCoordinator() {
		t.Fatal("p1 (minimum member) should coordinate")
	}
	target := w.eps[1].allocHWGID()
	m1.startSwitch(target, true)

	// Step until the non-coordinator is mid-switch, then hand it a stale
	// announcement of the old binding on the old HWG.
	injected := false
	for i := 0; i < 4000 && !injected; i++ {
		w.run(time.Millisecond)
		m2 := w.eps[2].lwgs["a"]
		if m2 != nil && m2.state == lwgSwitching {
			w.eps[2].onLwgView(w.eps[2].hwgState(oldHwg), &lwgView{
				Rec: viewRecord{
					LWG:       "a",
					View:      m2.view.Clone(),
					Ancestors: append(ids.ViewIDs{}, m2.ancestors...),
				},
				HWG: oldHwg,
			})
			injected = true
		}
	}
	if !injected {
		t.Fatal("never caught p2 in the switching state; test vacuous")
	}
	w.run(5 * time.Second)

	_, hwg := w.requireLWG("a", 1, 2)
	if hwg != target {
		t.Fatalf("group settled on %v, want switch target %v\ntrace:\n%s",
			hwg, target, w.tracer.Dump())
	}
}

package core

import (
	"fmt"
	"testing"
	"time"

	"plwg/internal/ids"
	"plwg/internal/naming"
	"plwg/internal/vsync"
)

// batchCfg keeps a send parked in the batch indefinitely so a test can
// provoke a view change while the batch is non-empty: the only flushes
// are the ones the protocol itself forces.
func batchCfg() Config {
	c := testCfg()
	c.MaxBatchDelay = 5 * time.Second
	c.MaxBatchBytes = 1 << 20
	return c
}

// TestBatchPendingAcrossLeaveReconfig parks a send in the batch, then
// shrinks the LWG view. The reconfiguration's lwgStop must flush the
// batch first, so the leaver still delivers the message — exactly once
// — before its view is uninstalled.
func TestBatchPendingAcrossLeaveReconfig(t *testing.T) {
	w := newCWorld(t, 3, []ids.ProcessID{0}, batchCfg())
	for _, p := range []ids.ProcessID{1, 2} {
		if err := w.eps[p].Join("a"); err != nil {
			t.Fatal(err)
		}
	}
	w.run(4 * time.Second)
	w.requireLWG("a", 1, 2)

	if err := w.eps[1].Send("a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := w.eps[2].Leave("a"); err != nil {
		t.Fatal(err)
	}
	w.run(3 * time.Second)
	w.requireLWG("a", 1)
	for _, p := range []ids.ProcessID{1, 2} {
		if got := w.ups[p].dataOf("a"); len(got) != 1 || got[0] != "x" {
			t.Errorf("%v delivered %v, want exactly [x]\ntrace:\n%s",
				p, got, w.tracer.Dump())
		}
	}
}

// TestBatchPendingAcrossJoinReconfig parks a send in the batch, then has
// a third process join. The join forces a heavy-weight group flush (the
// vsync stop), during which the batch cannot be multicast — it must be
// requeued, re-stamped after the next view installs, and delivered to
// the old members exactly once, with no duplicates anywhere.
func TestBatchPendingAcrossJoinReconfig(t *testing.T) {
	w := newCWorld(t, 4, []ids.ProcessID{0}, batchCfg())
	for _, p := range []ids.ProcessID{1, 2} {
		if err := w.eps[p].Join("a"); err != nil {
			t.Fatal(err)
		}
	}
	w.run(4 * time.Second)
	w.requireLWG("a", 1, 2)

	if err := w.eps[1].Send("a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := w.eps[3].Join("a"); err != nil {
		t.Fatal(err)
	}
	w.run(6 * time.Second)
	w.requireLWG("a", 1, 2, 3)
	for _, p := range []ids.ProcessID{1, 2} {
		if got := w.ups[p].dataOf("a"); len(got) != 1 || got[0] != "x" {
			t.Errorf("%v delivered %v, want exactly [x]\ntrace:\n%s",
				p, got, w.tracer.Dump())
		}
	}
	// The joiner may legally see the message once (if the requeued send
	// completes in the admitted view) or not at all (if it went out
	// tagged with the pre-join view) — but never twice.
	if got := w.ups[3].dataOf("a"); len(got) > 1 || (len(got) == 1 && got[0] != "x") {
		t.Errorf("joiner delivered %v, want at most one [x]", got)
	}
}

// TestBatchFIFOAcrossBatches drives enough traffic through a small
// MaxBatchBytes that one sender's burst spans several size-flushed
// batches (plus a delay-flushed tail) and checks per-sender FIFO order
// is preserved within and across the batch boundaries.
func TestBatchFIFOAcrossBatches(t *testing.T) {
	cfg := testCfg()
	cfg.MaxBatchBytes = 100 // ~3 messages per batch
	w := newCWorld(t, 3, []ids.ProcessID{0}, cfg)
	for _, p := range []ids.ProcessID{1, 2} {
		if err := w.eps[p].Join("a"); err != nil {
			t.Fatal(err)
		}
	}
	w.run(4 * time.Second)
	w.requireLWG("a", 1, 2)

	const n = 20
	var want []string
	for i := 0; i < n; i++ {
		msg := fmt.Sprintf("m%02d", i)
		want = append(want, msg)
		if err := w.eps[1].Send("a", []byte(msg)); err != nil {
			t.Fatal(err)
		}
	}
	w.run(2 * time.Second)
	for _, p := range []ids.ProcessID{1, 2} {
		got := w.ups[p].dataOf("a")
		if len(got) != n {
			t.Fatalf("%v delivered %d messages, want %d: %v", p, len(got), n, got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v FIFO violated at %d: got %q, want %q\nfull: %v",
					p, i, got[i], want[i], got)
			}
		}
	}
}

// TestBatchTotalOrderAcrossBatches runs two concurrent senders in
// total-order mode with batching active: every member must deliver the
// identical interleaving, and each sender's messages stay in send order.
func TestBatchTotalOrderAcrossBatches(t *testing.T) {
	cfg := testCfg()
	cfg.MaxBatchBytes = 100
	w := newCWorldVS(t, 4, []ids.ProcessID{0}, cfg, naming.Config{},
		vsync.Config{Ordering: vsync.OrderingTotal})
	for _, p := range []ids.ProcessID{1, 2, 3} {
		if err := w.eps[p].Join("a"); err != nil {
			t.Fatal(err)
		}
	}
	w.run(4 * time.Second)
	w.requireLWG("a", 1, 2, 3)

	const perSender = 10
	for i := 0; i < perSender; i++ {
		if err := w.eps[1].Send("a", []byte(fmt.Sprintf("a%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := w.eps[2].Send("a", []byte(fmt.Sprintf("b%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	w.run(3 * time.Second)

	ref := w.ups[1].dataOf("a")
	if len(ref) != 2*perSender {
		t.Fatalf("p1 delivered %d messages, want %d: %v", len(ref), 2*perSender, ref)
	}
	for _, p := range []ids.ProcessID{2, 3} {
		got := w.ups[p].dataOf("a")
		if len(got) != len(ref) {
			t.Fatalf("%v delivered %d messages, p1 delivered %d", p, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("total order violated at %d: %v saw %q, p1 saw %q",
					i, p, got[i], ref[i])
			}
		}
	}
	// Per-sender FIFO inside the total order.
	for _, prefix := range []byte{'a', 'b'} {
		next := 0
		for _, d := range ref {
			if d[0] != prefix {
				continue
			}
			if want := fmt.Sprintf("%c%d", prefix, next); d != want {
				t.Fatalf("sender %c FIFO violated: got %q, want %q (seq %v)",
					prefix, d, want, ref)
			}
			next++
		}
		if next != perSender {
			t.Fatalf("sender %c: %d of %d messages delivered", prefix, next, perSender)
		}
	}
}

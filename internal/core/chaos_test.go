package core

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"plwg/internal/check"
	"plwg/internal/ids"
	"plwg/internal/naming"
	"plwg/internal/netsim"
)

// Chaos test volume. The soak sweep is also reachable the legacy way via
// PLWG_SOAK=1; for open-ended exploration beyond fixed seeds use
// `go run ./cmd/lwgcheck`, which shrinks failures to minimal reproducers.
var (
	chaosSeeds = flag.Int64("chaos.seeds", 12, "number of chaos schedule seeds to run")
	chaosSoak  = flag.Bool("chaos.soak", false, "run the 100-seed soak sweep")
)

// TestChaosConvergence drives the full stack through a random schedule
// of joins, leaves, sends, partitions, heals and crashes, then heals the
// network and hands the run to the invariant checker (internal/check),
// which verifies the paper's convergence guarantees:
//
//   - every surviving member of each light-weight group ends in the same
//     view, containing exactly the surviving members;
//   - all members agree on the group's heavy-weight mapping;
//   - the naming service ends with at most one live mapping per group,
//     and the servers agree on it;
//   - view synchrony held at the LWG level throughout (processes that
//     installed the same two consecutive views delivered the same
//     messages in between), no duplicates, and view genealogy stayed a
//     strict partial order.
//
// Runs are deterministic per seed, so any failure replays exactly:
//
//	go test ./internal/core -run 'TestChaosConvergence/seed=N$'
func TestChaosConvergence(t *testing.T) {
	seeds := *chaosSeeds
	if *chaosSoak || os.Getenv("PLWG_SOAK") != "" {
		seeds = 100 // soak mode: go test -run TestChaos ./internal/core -chaos.soak
	}
	for seed := int64(1); seed <= seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChaos(t, seed)
		})
	}
}

func runChaos(t *testing.T, seed int64) {
	t.Helper()
	w := runChaosWorld(t, seed)
	vs := check.Run(chaosSnapshot(w))
	if len(vs) > 0 {
		t.Errorf("%d invariant violations:\n%s"+
			"replay: go test ./internal/core -run 'TestChaosConvergence/seed=%d$'\n"+
			"trace tail:\n%s",
			len(vs), check.Summary(vs), seed, tail(w, 60))
	}
}

// chaosSnapshot adapts the finished chaos world into the checker's World.
func chaosSnapshot(w *cWorld) *check.World {
	expected := make(map[ids.LWGID]ids.Members)
	for l, set := range w.chaosMembers {
		var ms []ids.ProcessID
		for p := range set {
			ms = append(ms, p)
		}
		expected[l] = ids.NewMembers(ms...)
	}
	procs := make(map[ids.ProcessID]check.Process, len(w.eps))
	for p, ep := range w.eps {
		procs[p] = ep
	}
	dbs := make(map[ids.ProcessID]*naming.DB, len(w.servers))
	for p, srv := range w.servers {
		dbs[p] = srv.DB()
	}
	return &check.World{
		Events:   w.tracer.Events,
		Procs:    procs,
		Servers:  dbs,
		Expected: expected,
		Crashed:  w.chaosCrashed,
	}
}

func runChaosWorld(t *testing.T, seed int64) *cWorld {
	t.Helper()
	// Short mapping leases so that mappings orphaned by crashed views
	// (which genealogy GC can never collect) expire within the test's
	// quiescence window.
	cfg := testCfg()
	cfg.MappingRefreshInterval = 2 * time.Second
	w := newCWorldNS(t, 8, []ids.ProcessID{0, 4}, cfg,
		naming.Config{MappingTTL: 8 * time.Second})
	r := rand.New(rand.NewSource(seed))

	lwgs := []ids.LWGID{"x", "y", "z"}
	// crashable excludes the naming-server nodes so reconciliation
	// always has a reachable replica.
	crashable := []ids.ProcessID{1, 2, 3, 5, 6, 7}
	memberOf := make(map[ids.LWGID]map[ids.ProcessID]bool)
	for _, l := range lwgs {
		memberOf[l] = make(map[ids.ProcessID]bool)
	}
	crashed := make(map[ids.ProcessID]bool)
	crashes := 0
	partitioned := false
	msgID := 0

	alive := func(p ids.ProcessID) bool { return !crashed[p] }
	// pickMember selects a live member deterministically (map iteration
	// order must not leak into the schedule).
	pickMember := func(l ids.LWGID) (ids.ProcessID, bool) {
		var ms []ids.ProcessID
		for p := range memberOf[l] {
			if alive(p) {
				ms = append(ms, p)
			}
		}
		if len(ms) == 0 {
			return 0, false
		}
		sorted := ids.NewMembers(ms...)
		return sorted[r.Intn(len(sorted))], true
	}

	// 60 random operations, ~0.5s of virtual time apart.
	for op := 0; op < 60; op++ {
		w.run(time.Duration(200+r.Intn(600)) * time.Millisecond)
		switch k := r.Intn(10); {
		case k < 4: // join
			p := ids.ProcessID(r.Intn(8))
			l := lwgs[r.Intn(len(lwgs))]
			if alive(p) && !memberOf[l][p] {
				if err := w.eps[p].Join(l); err == nil {
					memberOf[l][p] = true
				}
			}
		case k < 5: // leave
			l := lwgs[r.Intn(len(lwgs))]
			if p, ok := pickMember(l); ok {
				_ = w.eps[p].Leave(l)
				delete(memberOf[l], p)
			}
		case k < 8: // send
			l := lwgs[r.Intn(len(lwgs))]
			if p, ok := pickMember(l); ok {
				msgID++
				_ = w.eps[p].Send(l, []byte(fmt.Sprintf("c%d", msgID)))
			}
		case k < 9: // partition or heal
			if partitioned {
				w.nw.Heal()
				partitioned = false
			} else {
				cut := 1 + r.Intn(7)
				var a, b []netsim.NodeID
				for i := 0; i < 8; i++ {
					if i < cut {
						a = append(a, ids.ProcessID(i))
					} else {
						b = append(b, ids.ProcessID(i))
					}
				}
				w.nw.SetPartitions(a, b)
				partitioned = true
			}
		default: // crash (at most 2)
			if crashes < 2 {
				p := crashable[r.Intn(len(crashable))]
				if alive(p) {
					w.nw.Crash(p)
					crashed[p] = true
					crashes++
					for _, l := range lwgs {
						delete(memberOf[l], p)
					}
				}
			}
		}
	}

	// Quiesce: heal and give reconciliation time to converge.
	w.nw.Heal()
	w.run(30 * time.Second)
	w.chaosMembers = memberOf
	w.chaosCrashed = crashed
	return w
}

func tail(w *cWorld, n int) string {
	evs := w.tracer.Events
	if len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	out := ""
	for _, e := range evs {
		out += e.String() + "\n"
	}
	return out
}

package core

import (
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"plwg/internal/ids"
	"plwg/internal/naming"
	"plwg/internal/netsim"
)

// TestChaosConvergence drives the full stack through a random schedule
// of joins, leaves, sends, partitions, heals and crashes, then heals the
// network and checks the paper's convergence guarantees:
//
//   - every surviving member of each light-weight group ends in the same
//     view, containing exactly the surviving members;
//   - all members agree on the group's heavy-weight mapping;
//   - the naming service ends with at most one live mapping per group;
//   - view synchrony held at the LWG level throughout (processes that
//     installed the same two consecutive views delivered the same
//     messages in between).
//
// Runs are deterministic per seed, so any failure replays exactly.
func TestChaosConvergence(t *testing.T) {
	seeds := int64(12)
	if os.Getenv("PLWG_SOAK") != "" {
		seeds = 100 // soak mode: PLWG_SOAK=1 go test -run TestChaos ./internal/core
	}
	for seed := int64(1); seed <= seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChaos(t, seed)
		})
	}
}

func runChaos(t *testing.T, seed int64) {
	t.Helper()
	w := runChaosWorld(t, seed)
	checkChaosInvariants(t, w)
}

// chaosMembers records, per LWG, the processes expected to be members at
// the end of the schedule.
var chaosLWGs = []ids.LWGID{"x", "y", "z"}

func runChaosWorld(t *testing.T, seed int64) *cWorld {
	t.Helper()
	// Short mapping leases so that mappings orphaned by crashed views
	// (which genealogy GC can never collect) expire within the test's
	// quiescence window.
	cfg := testCfg()
	cfg.MappingRefreshInterval = 2 * time.Second
	w := newCWorldNS(t, 8, []ids.ProcessID{0, 4}, cfg,
		naming.Config{MappingTTL: 8 * time.Second})
	r := rand.New(rand.NewSource(seed))

	lwgs := []ids.LWGID{"x", "y", "z"}
	// crashable excludes the naming-server nodes so reconciliation
	// always has a reachable replica.
	crashable := []ids.ProcessID{1, 2, 3, 5, 6, 7}
	memberOf := make(map[ids.LWGID]map[ids.ProcessID]bool)
	for _, l := range lwgs {
		memberOf[l] = make(map[ids.ProcessID]bool)
	}
	crashed := make(map[ids.ProcessID]bool)
	crashes := 0
	partitioned := false
	msgID := 0

	alive := func(p ids.ProcessID) bool { return !crashed[p] }
	// pickMember selects a live member deterministically (map iteration
	// order must not leak into the schedule).
	pickMember := func(l ids.LWGID) (ids.ProcessID, bool) {
		var ms []ids.ProcessID
		for p := range memberOf[l] {
			if alive(p) {
				ms = append(ms, p)
			}
		}
		if len(ms) == 0 {
			return 0, false
		}
		sorted := ids.NewMembers(ms...)
		return sorted[r.Intn(len(sorted))], true
	}

	// 60 random operations, ~0.5s of virtual time apart.
	for op := 0; op < 60; op++ {
		w.run(time.Duration(200+r.Intn(600)) * time.Millisecond)
		switch k := r.Intn(10); {
		case k < 4: // join
			p := ids.ProcessID(r.Intn(8))
			l := lwgs[r.Intn(len(lwgs))]
			if alive(p) && !memberOf[l][p] {
				if err := w.eps[p].Join(l); err == nil {
					memberOf[l][p] = true
				}
			}
		case k < 5: // leave
			l := lwgs[r.Intn(len(lwgs))]
			if p, ok := pickMember(l); ok {
				_ = w.eps[p].Leave(l)
				delete(memberOf[l], p)
			}
		case k < 8: // send
			l := lwgs[r.Intn(len(lwgs))]
			if p, ok := pickMember(l); ok {
				msgID++
				_ = w.eps[p].Send(l, []byte(fmt.Sprintf("c%d", msgID)))
			}
		case k < 9: // partition or heal
			if partitioned {
				w.nw.Heal()
				partitioned = false
			} else {
				cut := 1 + r.Intn(7)
				var a, b []netsim.NodeID
				for i := 0; i < 8; i++ {
					if i < cut {
						a = append(a, ids.ProcessID(i))
					} else {
						b = append(b, ids.ProcessID(i))
					}
				}
				w.nw.SetPartitions(a, b)
				partitioned = true
			}
		default: // crash (at most 2)
			if crashes < 2 {
				p := crashable[r.Intn(len(crashable))]
				if alive(p) {
					w.nw.Crash(p)
					crashed[p] = true
					crashes++
					for _, l := range lwgs {
						delete(memberOf[l], p)
					}
				}
			}
		}
	}

	// Quiesce: heal and give reconciliation time to converge.
	w.nw.Heal()
	w.run(30 * time.Second)
	w.chaosMembers = memberOf
	return w
}

func checkChaosInvariants(t *testing.T, w *cWorld) {
	t.Helper()
	memberOf := w.chaosMembers
	for _, l := range chaosLWGs {
		var members []ids.ProcessID
		for p := range memberOf[l] {
			members = append(members, p)
		}
		if len(members) == 0 {
			continue
		}
		want := ids.NewMembers(members...)
		ref, ok := w.eps[want[0]].LWGView(l)
		if !ok {
			t.Fatalf("%s: %v has no view\ntrace tail:\n%s", l, want[0], tail(w, 60))
		}
		refHwg, _ := w.eps[want[0]].Mapping(l)
		if !ref.Members.Equal(want) {
			t.Errorf("%s: view members %v, want %v\ntrace tail:\n%s",
				l, ref.Members, want, tail(w, 60))
		}
		for _, p := range want[1:] {
			v, ok := w.eps[p].LWGView(l)
			if !ok || v.ID != ref.ID {
				t.Errorf("%s: %v has view %v (ok=%v), want %v", l, p, v, ok, ref.ID)
			}
			if h, _ := w.eps[p].Mapping(l); h != refHwg {
				t.Errorf("%s: %v mapped on %v, %v mapped on %v", l, p, h, want[0], refHwg)
			}
		}
		for _, srv := range w.servers {
			if live := srv.DB().Live(l); len(live) > 1 {
				t.Errorf("%s: server %v has %d live mappings:\n%s",
					l, srv.PID(), len(live), srv.DB().Dump())
			}
		}
		checkLWGViewSynchrony(t, w, l)
	}
}

// checkLWGViewSynchrony verifies the LWG-level virtual synchrony
// property over the recorded upcall logs.
func checkLWGViewSynchrony(t *testing.T, w *cWorld, lwg ids.LWGID) {
	t.Helper()
	type batchMap map[string][]string
	per := make(map[ids.ProcessID]batchMap)
	for pid, rec := range w.ups {
		m := make(batchMap)
		var cur ids.ViewID
		var batch []string
		for _, e := range rec.log[lwg] {
			switch e.kind {
			case "view":
				if e.view.ID == cur {
					continue
				}
				if !cur.IsZero() {
					key := cur.String() + "->" + e.view.ID.String()
					m[key] = append([]string{}, batch...)
				}
				batch = nil
				cur = e.view.ID
			case "data":
				batch = append(batch, fmt.Sprintf("%v:%s", e.src, e.data))
			}
		}
		per[pid] = m
	}
	for p, mp := range per {
		for q, mq := range per {
			if p >= q {
				continue
			}
			for key, dp := range mp {
				dq, ok := mq[key]
				if !ok {
					continue
				}
				if len(dp) != len(dq) {
					t.Errorf("%s view synchrony violated %s: %v delivered %d, %v delivered %d",
						lwg, key, p, len(dp), q, len(dq))
					continue
				}
				diff := make(map[string]int)
				for _, d := range dp {
					diff[d]++
				}
				for _, d := range dq {
					diff[d]--
				}
				for d, n := range diff {
					if n != 0 {
						t.Errorf("%s view synchrony violated %s: %q differs between %v and %v",
							lwg, key, d, p, q)
					}
				}
			}
		}
	}
}

func tail(w *cWorld, n int) string {
	evs := w.tracer.Events
	if len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	out := ""
	for _, e := range evs {
		out += e.String() + "\n"
	}
	return out
}

package core

import (
	"fmt"
	"sort"
	"time"

	"plwg/internal/ids"
	"plwg/internal/naming"
	"plwg/internal/netsim"
	"plwg/internal/trace"
	"plwg/internal/vsync"
)

// This file implements the partition-reconciliation machinery of
// Sections 4 and 6:
//
//	Step 1 — global peer discovery: MULTIPLE-MAPPINGS callbacks from the
//	         naming service (handleNamingCallback).
//	Step 2 — mapping reconciliation: concurrent LWG views switch to the
//	         HWG with the highest identifier (the switching protocol).
//	Step 3 — local peer discovery: view-tagged DATA and announcement
//	         messages expose concurrent LWG views sharing a HWG.
//	Step 4 — merge-views (Figure 5): one forced HWG flush merges all
//	         concurrent views of all LWGs mapped on the HWG at once.

// --- HWG upcalls -----------------------------------------------------------

func (e *Endpoint) onHWGStop(gid ids.HWGID) {
	st := e.hwgState(gid)
	st.stopped = true
	// Batched data can no longer be multicast under its current view
	// tags (vsync has quiesced; a send now would surface in the next
	// HWG view, still stamped with old LWG views, and be dropped
	// everywhere). Return it to the pending queues — the post-view
	// drain re-stamps and re-sends it.
	e.requeueBatch(st)
	// The LWG layer quiesces by buffering its sends (Send checks
	// st.stopped), so it can acknowledge immediately.
	_ = e.hwg.StopOk(gid)
}

func (e *Endpoint) onHWGView(gid ids.HWGID, view ids.View) {
	st := e.hwgState(gid)
	st.view = view
	st.stopped = false
	e.updateGauges()

	// Progress joins and founders waiting for this HWG's view (sorted
	// iteration: message emission must be deterministic).
	for _, l := range e.LWGs() {
		m := e.lwgs[l]
		if m.hwg != gid {
			continue
		}
		switch m.state {
		case lwgJoining:
			m.maybeFound()
			m.sendJoinReq()
		}
	}

	// Reconcile every LWG known on this HWG: trim views to the surviving
	// members and merge concurrent views whose records were exchanged
	// (Figure 5 line 114: "when the hwg is flushed ... merge all
	// concurrent views in AV_p(hwg)").
	e.reconcileLWGs(st)
	st.mergePending = false

	// Local peer discovery seed: advertise our LWG views so concurrent
	// views meeting in this HWG view find each other even without data
	// traffic.
	e.announceLocal(st)

	// Members switching onto this HWG can now report readiness.
	for _, l := range e.LWGs() {
		m := e.lwgs[l]
		if m.state == lwgSwitching && m.switchTarget == gid {
			m.sendSwitchReady()
		}
	}

	// Buffered sends of LWGs on this HWG can flow again.
	for _, l := range e.LWGs() {
		if st.local[l] {
			if m := e.lwgs[l]; m != nil {
				m.drainSends()
			}
		}
	}
}

func (e *Endpoint) onHWGData(gid ids.HWGID, src ids.ProcessID, payload vsync.Payload) {
	st := e.hwgState(gid)
	switch msg := payload.(type) {
	case *lwgData:
		e.onLwgData(st, src, msg)
	case *lwgBatch:
		for _, d := range msg.Msgs {
			e.onLwgData(st, src, d)
		}
	case *lwgJoinReq:
		e.onLwgJoinReq(st, msg)
	case *lwgLeaveReq:
		if m := e.memberOn(msg.LWG, gid); m != nil {
			m.onLeaveReq(msg.From)
		}
	case *lwgMoved:
		e.onLwgMoved(st, msg)
	case *lwgStop:
		if m := e.memberOn(msg.LWG, gid); m != nil {
			m.onStop(msg)
		} else {
			// No state for this LWG: we may be a phantom member being
			// flushed out after our leave was lost to a partition
			// (see maybeRepudiate). Answer so the exclusion flush can
			// complete; we have nothing to quiesce.
			e.hwgSend(gid, &lwgFlushOk{LWG: msg.LWG, View: msg.View, From: e.pid})
		}
	case *lwgFlushOk:
		if m := e.memberOn(msg.LWG, gid); m != nil {
			m.onFlushOk(msg.From, msg)
		}
	case *lwgView:
		e.onLwgView(st, msg)
	case *lwgAnnounce:
		for _, rec := range msg.Views {
			e.onViewRecord(st, rec)
		}
	case *lwgMergeViews:
		e.onMergeViews(st)
	case *lwgMappedViews:
		for _, rec := range msg.Views {
			e.recordKnown(st, rec)
			e.observeLwgView(rec.LWG, rec.View.ID)
		}
	case *lwgSwitch:
		e.onLwgSwitch(st, msg)
	case *lwgSwitchReady:
		e.onSwitchReady(st, msg)
	}
}

// memberOn returns the local LWG member if it is mapped on the HWG.
func (e *Endpoint) memberOn(lwg ids.LWGID, gid ids.HWGID) *lwgMember {
	m := e.lwgs[lwg]
	if m == nil || m.hwg != gid {
		return nil
	}
	return m
}

// --- data path and local peer discovery (Step 3, Figure 5) -----------------

func (e *Endpoint) onLwgData(st *hwgState, src ids.ProcessID, msg *lwgData) {
	m := e.memberOn(msg.LWG, st.gid)
	if m == nil {
		return // no local member: filtered out (the interference cost)
	}
	if m.state == lwgJoining {
		// Admission race: the vsync view that carried our admission
		// lwgView may not have included this process yet, so data
		// stamped with our first view can arrive before the
		// (re-announced) view itself. Dropping it would lose messages
		// sent in a view we are a member of; buffer and replay at
		// install. Joiners buffer unconditionally — they have no view
		// to deliver in yet.
		m.bufferPreInstall(src, msg)
		return
	}
	switch {
	case msg.View == m.view.ID:
		// Figure 5 line 104: the message was sent in our view. Direct
		// delivery happens synchronously under the HWG Data upcall, so
		// the wire trace context (when the envelope carried one) is still
		// live — record LWG-level one-way latency here. Replayed
		// pre-install buffers deliberately skip this: their context
		// would be stale by install time.
		if tc, ok := e.hwg.InboundTC(); ok && tc.Origin == int64(src) {
			lat := time.Duration(time.Now().UnixNano() - tc.Wall)
			if lat < 0 {
				lat = 0
			}
			m.hLatency.Observe(lat)
		}
		m.deliverData(src, msg)
	case m.ancestors.Contains(msg.View):
		// Sent in a view we have since superseded: drop.
	default:
		// Sent in a view we have not installed: concurrent traffic —
		// or a successor view's data racing ahead of its announcement
		// (an HWG flush retransmission can reorder the two). Buffer it
		// for replay in case we catch up to that view; a merge round
		// resolves the genuinely concurrent case.
		m.bufferPreInstall(src, msg)
		// Figure 5 line 106: a concurrent view of our LWG shares this
		// HWG — trigger the merge.
		e.triggerMergeViews(st)
	}
}

// deliverData hands one data message to the application.
func (m *lwgMember) deliverData(src ids.ProcessID, msg *lwgData) {
	e := m.e
	m.seenTraffic = true
	e.ins.deliveries.Inc()
	m.cDelivers.Inc()
	e.traceEvent(trace.Event{
		What:  trace.LWGDeliver,
		Text:  fmt.Sprintf("%s: %q from %v in %v", msg.LWG, msg.Data, src, msg.View),
		Group: string(msg.LWG),
		View:  msg.View,
		Src:   src,
		Data:  string(msg.Data),
	})
	if e.up != nil {
		e.up.Data(msg.LWG, src, msg.Data)
	}
}

// bufferPreInstall queues data received under a view not yet installed
// for replay at install time. Config.MaxPreInstall bounds the buffer; a
// member that falls further behind sheds the oldest message (the most
// likely to be superseded by the time a view installs). Shedding is never
// silent: the drop is counted (core_preinstall_drops_total) and traced as
// LWGPreInstallDrop, which the invariant checker reports as a finding —
// an overflow-induced delivery gap must be distinguishable from the
// benign races this buffer exists to absorb.
func (m *lwgMember) bufferPreInstall(src ids.ProcessID, msg *lwgData) {
	e := m.e
	if len(m.preInstall) >= e.cfg.MaxPreInstall {
		dropped := m.preInstall[0]
		m.preInstall = m.preInstall[1:]
		e.ins.preinstallDrops.Inc()
		e.traceEvent(trace.Event{
			What:  trace.LWGPreInstallDrop,
			Group: string(dropped.msg.LWG),
			View:  dropped.msg.View,
			Src:   dropped.src,
			Data:  string(dropped.msg.Data),
			Text: fmt.Sprintf("%s: pre-install buffer full (%d), shed %q from %v in %v",
				m.id, e.cfg.MaxPreInstall, dropped.msg.Data, dropped.src, dropped.msg.View),
		})
	}
	m.preInstall = append(m.preInstall, pendingData{src: src, msg: msg})
}

// replayPreInstall delivers buffered pre-install data stamped with the
// just-installed view (in receipt order, which is the vsync total
// order), drops what the genealogy has superseded, and keeps the rest
// for a later install.
func (m *lwgMember) replayPreInstall() {
	if len(m.preInstall) == 0 {
		return
	}
	pend := m.preInstall
	m.preInstall = nil
	for _, d := range pend {
		switch {
		case d.msg.View == m.view.ID:
			m.deliverData(d.src, d.msg)
		case m.ancestors.Contains(d.msg.View):
			// Superseded while we were joining: drop.
		default:
			m.preInstall = append(m.preInstall, d)
		}
	}
}

// onLwgJoinReq handles an admission request: forward pointers redirect
// joiners of moved LWGs; the LWG coordinator admits the rest.
func (e *Endpoint) onLwgJoinReq(st *hwgState, msg *lwgJoinReq) {
	if target, moved := st.forward[msg.LWG]; moved {
		// Only one member answers to keep the bus quiet.
		if !st.view.ID.IsZero() && st.view.Coordinator() == e.pid {
			e.hwgSend(st.gid, &lwgMoved{LWG: msg.LWG, Target: target})
		}
		return
	}
	if m := e.memberOn(msg.LWG, st.gid); m != nil {
		m.onJoinReq(msg.From)
	}
}

func (e *Endpoint) onLwgMoved(st *hwgState, msg *lwgMoved) {
	m := e.memberOn(msg.LWG, st.gid)
	if m == nil || m.state != lwgJoining {
		return
	}
	e.trace("join", "%s: forwarded from %v to %v", msg.LWG, st.gid, msg.Target)
	m.stopTimers()
	m.targetHWG(msg.Target)
}

// onLwgView handles a view announcement: admission of joiners, switch
// re-binding, catch-up, and concurrency detection.
func (e *Endpoint) onLwgView(st *hwgState, msg *lwgView) {
	rec := msg.Rec
	e.observeLwgView(rec.LWG, rec.View.ID)
	m := e.lwgs[rec.LWG]
	if m == nil {
		e.recordKnown(st, rec)
		e.maybeRepudiate(st, rec)
		return
	}
	// Joiner admitted into an existing view on the HWG it targeted. A
	// state snapshot, if present, is installed before the first View
	// upcall.
	if m.state == lwgJoining && m.hwg == st.gid && rec.View.Contains(e.pid) {
		if msg.HasState && e.up != nil {
			if sh, ok := e.up.(StateHandler); ok {
				sh.InstallState(rec.LWG, msg.State)
			}
		}
		m.installView(rec, st.gid)
		return
	}
	// Switch re-binding: same view, new HWG (the lwgView was multicast on
	// the target). Only the announced switch target may re-bind us: a
	// re-sent or duplicated announcement of the OLD binding (same view,
	// old HWG — e.g. the coordinator answering a late join retry) would
	// otherwise cancel the switch and wedge this member on the old HWG
	// while the rest of the group reconfigures on the target.
	if m.state == lwgSwitching && msg.HWG == st.gid && st.gid == m.switchTarget &&
		rec.View.ID == m.view.ID {
		e.ins.rebinds.Inc()
		e.traceEvent(trace.Event{
			What:  trace.LWGRebind,
			Group: string(rec.LWG),
			View:  rec.View.ID,
			Ref:   st.gid.String(),
			Text:  fmt.Sprintf("re-bound to %v", st.gid),
		})
		m.installView(rec, st.gid)
		return
	}
	// Straggling switcher: the group re-bound and reconfigured past our
	// view before we reported ready (e.g. the binding was multicast in a
	// concurrent partition of the target HWG).
	if m.state == lwgSwitching && msg.HWG == st.gid && m.switchTarget == st.gid &&
		rec.Ancestors.Contains(m.view.ID) {
		e.recordKnown(st, rec)
		if rec.View.Contains(e.pid) {
			e.ins.rebinds.Inc()
			e.traceEvent(trace.Event{
				What:  trace.LWGRebind,
				Group: string(rec.LWG),
				View:  rec.View.ID,
				Ref:   st.gid.String(),
				Text:  fmt.Sprintf("re-bound to %v (caught up to %v)", st.gid, rec.View.ID),
			})
			m.installView(rec, st.gid)
			return
		}
		// Merged away without us: land on the target as a singleton;
		// merge-views folds us back in.
		e.traceEvent(trace.Event{
			What:  trace.LWGRebind,
			Group: string(rec.LWG),
			View:  m.view.ID,
			Ref:   st.gid.String(),
			Text:  fmt.Sprintf("superseded mid-switch, landing on %v as singleton", st.gid),
		})
		single := viewRecord{
			LWG: rec.LWG,
			View: ids.View{
				ID:      trimmedViewID(rec.LWG, m.view.ID, st.view.ID, e.pid),
				Members: ids.NewMembers(e.pid),
			},
			Ancestors: append(append(ids.ViewIDs{}, m.ancestors...), m.view.ID),
		}
		m.installView(single, st.gid)
		e.triggerMergeViews(st)
		return
	}
	if m.hwg != st.gid {
		e.recordKnown(st, rec)
		// The announcement may still claim this process — a merge on an
		// HWG we are not (or no longer) targeting can resurrect a stale
		// incarnation of us while we resolve or join elsewhere.
		e.maybeRepudiate(st, rec)
		return
	}
	e.onViewRecord(st, rec)
}

// onViewRecord folds one remote view record into local state: catch-up,
// supersession, or concurrency detection.
func (e *Endpoint) onViewRecord(st *hwgState, rec viewRecord) {
	e.recordKnown(st, rec)
	e.observeLwgView(rec.LWG, rec.View.ID)
	e.maybeRepudiate(st, rec)
	m := e.memberOn(rec.LWG, st.gid)
	if m == nil || m.state == lwgResolving || m.state == lwgJoining {
		return
	}
	switch {
	case rec.View.ID == m.view.ID:
		// Our own view echoed back.
	case rec.Ancestors.Contains(m.view.ID):
		// A successor of our view exists.
		if rec.View.Contains(e.pid) {
			e.trace("lwg-catchup", "%s: catching up to %v", rec.LWG, rec.View.ID)
			m.installView(rec, st.gid)
		} else if m.leaveRequested {
			e.dropLwg(rec.LWG)
		} else {
			// Superseded without us (we were presumed gone): continue
			// in a singleton view; reconciliation will merge us back.
			single := viewRecord{
				LWG: rec.LWG,
				View: ids.View{
					ID:      trimmedViewID(rec.LWG, m.view.ID, st.view.ID, e.pid),
					Members: ids.NewMembers(e.pid),
				},
				Ancestors: append(append(ids.ViewIDs{}, m.ancestors...), m.view.ID),
			}
			m.installView(single, st.gid)
		}
	case m.ancestors.Contains(rec.View.ID):
		// A stale echo of one of our ancestors.
	default:
		// Concurrent views of the same LWG on the same HWG: Step 3
		// found a peer; run Step 4.
		e.triggerMergeViews(st)
	}
}

// --- merge-views protocol (Step 4, Figure 5) --------------------------------

// maybeRepudiate handles phantom membership: a view claims this process
// for a light-weight group it has no state for. This happens when a
// leave completed on one side of a partition while the other side's view
// (still containing the leaver) survived the merge. Light-weight
// membership has no failure detector of its own — the leaver is alive at
// the HWG level — so the phantom must speak up: a leave request makes
// the view's coordinator exclude it.
func (e *Endpoint) maybeRepudiate(st *hwgState, rec viewRecord) {
	if !rec.View.Contains(e.pid) {
		return
	}
	if m, stillMember := e.lwgs[rec.LWG]; stillMember {
		// A resolving member — or one joining a *different* HWG, i.e.
		// a forwarded join — has never been admitted anywhere as this
		// incarnation, so a view claiming it can only be a resurrected
		// previous incarnation, and nothing else will ever answer for
		// it. Any other state is not a phantom: a member joining here
		// is about to be admitted, and an established member (e.g. a
		// switch in progress) is legitimately known on its old HWG —
		// other machinery rules those.
		if m.state != lwgResolving && !(m.state == lwgJoining && m.hwg != st.gid) {
			return
		}
	}
	e.trace("repudiate", "%s: view %v claims this process; leaving", rec.LWG, rec.View.ID)
	e.hwgSend(st.gid, &lwgLeaveReq{LWG: rec.LWG, From: e.pid})
}

// triggerMergeViews multicasts MERGE-VIEWS once per HWG view (Step 1 of
// a merge-views round; the steps of one round share the HWG view they
// run in as their correlation key).
func (e *Endpoint) triggerMergeViews(st *hwgState) {
	if st.mergePending {
		return
	}
	st.mergePending = true
	e.ins.mergeTriggers.Inc()
	e.traceEvent(trace.Event{
		What:  trace.LWGMergeStep,
		Step:  1,
		Group: st.gid.String(),
		View:  st.view.ID,
		Text:  fmt.Sprintf("trigger on %v", st.gid),
	})
	e.hwgSend(st.gid, &lwgMergeViews{})
}

// onMergeViews implements Figure 5 lines 108–111: every member multicasts
// its mapped views; the HWG coordinator forces the flush (and ignores
// further MERGE-VIEWS until the new view, which vsync does naturally).
func (e *Endpoint) onMergeViews(st *hwgState) {
	st.mergePending = true
	var views []viewRecord
	for l := range st.local {
		if m := e.lwgs[l]; m != nil {
			views = append(views, viewRecord{
				LWG: l, View: m.view.Clone(), Ancestors: append(ids.ViewIDs{}, m.ancestors...),
			})
		}
	}
	sort.Slice(views, func(i, j int) bool { return views[i].LWG < views[j].LWG })
	e.traceEvent(trace.Event{
		What:  trace.LWGMergeStep,
		Step:  2,
		Group: st.gid.String(),
		View:  st.view.ID,
		Text:  fmt.Sprintf("multicast %d mapped views", len(views)),
	})
	e.hwgSend(st.gid, &lwgMappedViews{Views: views})
	if e.hwg.IsCoordinator(st.gid) {
		e.traceEvent(trace.Event{
			What:  trace.LWGMergeStep,
			Step:  3,
			Group: st.gid.String(),
			View:  st.view.ID,
			Text:  "coordinator forcing flush",
		})
		_ = e.hwg.Flush(st.gid)
	}
}

// reconcileLWGs runs at every HWG view installation: it trims every known
// LWG view to the members that survive in the new HWG view, drops records
// superseded by descendants, merges concurrent views (deterministically —
// all members that completed the flush share the same AV set and compute
// the identical merged view), installs the result locally, and has the
// LWG coordinator update the naming service.
func (e *Endpoint) reconcileLWGs(st *hwgState) {
	names := make([]ids.LWGID, 0, len(st.known)+len(st.local))
	seen := make(map[ids.LWGID]bool)
	for l := range st.known {
		if !seen[l] {
			names = append(names, l)
			seen[l] = true
		}
	}
	for l := range st.local {
		if !seen[l] {
			names = append(names, l)
			seen[l] = true
		}
	}
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })

	for _, lwg := range names {
		e.reconcileOneLWG(st, lwg)
	}
}

func (e *Endpoint) reconcileOneLWG(st *hwgState, lwg ids.LWGID) {
	recs := make(map[ids.ViewID]viewRecord, len(st.known[lwg]))
	for id, r := range st.known[lwg] {
		recs[id] = r
	}
	m := e.memberOn(lwg, st.gid)
	if m != nil && (m.state == lwgActive || m.state == lwgStopped) {
		recs[m.view.ID] = viewRecord{
			LWG: lwg, View: m.view.Clone(), Ancestors: append(ids.ViewIDs{}, m.ancestors...),
		}
	}
	if len(recs) == 0 {
		return
	}

	// Trim every view to the members surviving in the new HWG view. The
	// trimmed identifier is a deterministic function of (old view, HWG
	// view), so every member mints the same one.
	trimmed := make(map[ids.ViewID]viewRecord, len(recs))
	for _, r := range recs {
		survivors := r.View.Members.Intersect(st.view.Members)
		if len(survivors) == 0 {
			continue // nobody left on this side
		}
		if survivors.Equal(r.View.Members) {
			trimmed[r.View.ID] = r
			continue
		}
		nr := viewRecord{
			LWG: lwg,
			View: ids.View{
				ID:      trimmedViewID(lwg, r.View.ID, st.view.ID, survivors.Min()),
				Members: survivors,
			},
			Ancestors: append(append(ids.ViewIDs{}, r.Ancestors...), r.View.ID),
		}
		trimmed[nr.View.ID] = nr
	}

	// Drop records superseded by a descendant.
	var survivors []viewRecord
	for id, r := range trimmed {
		superseded := false
		for id2, r2 := range trimmed {
			if id != id2 && r2.Ancestors.Contains(id) {
				superseded = true
				break
			}
		}
		if !superseded {
			survivors = append(survivors, r)
		}
	}
	sort.Slice(survivors, func(i, j int) bool {
		return survivors[i].View.ID.Less(survivors[j].View.ID)
	})

	var final viewRecord
	switch {
	case len(survivors) == 0:
		delete(st.known, lwg)
		return
	case len(survivors) == 1:
		final = survivors[0]
	default:
		// Merge all concurrent views into one (Figure 5 lines 114–118).
		mergedIDs := make(ids.ViewIDs, len(survivors))
		members := ids.Members{}
		ancSet := make(map[ids.ViewID]bool)
		for i, r := range survivors {
			mergedIDs[i] = r.View.ID
			members = members.Union(r.View.Members)
			for _, a := range r.Ancestors {
				ancSet[a] = true
			}
			ancSet[r.View.ID] = true
		}
		ancestors := make(ids.ViewIDs, 0, len(ancSet))
		for a := range ancSet {
			ancestors = append(ancestors, a)
		}
		ids.SortViewIDs(ancestors)
		final = viewRecord{
			LWG: lwg,
			View: ids.View{
				ID:      mergedViewID(lwg, mergedIDs, members.Min()),
				Members: members,
			},
			Ancestors: ancestors,
		}
		e.ins.merges.Inc()
		e.traceEvent(trace.Event{
			What:    trace.LWGMergeStep,
			Step:    4,
			Group:   st.gid.String(),
			View:    st.view.ID,
			Ref:     string(lwg),
			Data:    final.View.ID.String(),
			Members: final.View.Members.Clone(),
			Text: fmt.Sprintf("%s: merged %v into %v%s",
				lwg, mergedIDs, final.View.ID, final.View.Members),
		})
	}

	st.known[lwg] = map[ids.ViewID]viewRecord{final.View.ID: final}

	if m == nil || (m.state != lwgActive && m.state != lwgStopped) {
		return
	}
	switch {
	case final.View.ID == m.view.ID:
		// Same LWG view on a new HWG view: the coordinator refreshes the
		// view-to-view mapping (Table 4 step 2).
		if m.state == lwgStopped {
			// An in-flight LWG flush died with the old HWG view.
			m.abortLwgFlush()
		}
		if m.isCoordinator() {
			e.updateMapping(m)
		}
		// The aborted flush may have been carrying join/leave intent
		// (the coordinator's own leave included). installView replays
		// that intent after a view change, but this branch installs no
		// view — without the same replay the reconfiguration is lost
		// for good: nothing else retriggers a coordinator-side flush.
		if m.actsAsCoordinator() && (len(m.pendingJoiners) > 0 || len(m.pendingLeavers) > 0 ||
			len(m.pendingRejoiners) > 0 || m.leaveRequested) {
			m.maybeLwgReconfig()
		} else if m.leaveRequested && !m.isCoordinator() && m.leaveTicker == nil {
			m.armLeaveTicker()
		}
	case final.View.Contains(e.pid):
		m.installView(final, st.gid)
	case m.leaveRequested:
		e.dropLwg(lwg)
	default:
		// Not part of the surviving/merged view and not leaving: keep a
		// singleton going (partitionable semantics).
		single := viewRecord{
			LWG: lwg,
			View: ids.View{
				ID:      trimmedViewID(lwg, m.view.ID, st.view.ID, e.pid),
				Members: ids.NewMembers(e.pid),
			},
			Ancestors: append(append(ids.ViewIDs{}, m.ancestors...), m.view.ID),
		}
		m.installView(single, st.gid)
	}
}

// announceLocal advertises this process's LWG views on the HWG.
func (e *Endpoint) announceLocal(st *hwgState) {
	var views []viewRecord
	for l := range st.local {
		m := e.lwgs[l]
		if m == nil || (m.state != lwgActive && m.state != lwgStopped) {
			continue
		}
		views = append(views, viewRecord{
			LWG: l, View: m.view.Clone(), Ancestors: append(ids.ViewIDs{}, m.ancestors...),
		})
	}
	if len(views) == 0 {
		return
	}
	sort.Slice(views, func(i, j int) bool { return views[i].LWG < views[j].LWG })
	e.hwgSend(st.gid, &lwgAnnounce{Views: views})
}

// --- switching protocol (Sections 3, 6.2) -----------------------------------

// startSwitch moves the LWG (this process coordinates) onto the target
// HWG: flush the LWG, instruct members on the old HWG, collect readiness
// on the target, then re-bind with the same LWG view.
func (m *lwgMember) startSwitch(target ids.HWGID, fresh bool) {
	e := m.e
	if m.state != lwgActive || !m.isCoordinator() || target == m.hwg || target == ids.NoHWG {
		return
	}
	e.ins.switches.Inc()
	e.traceEvent(trace.Event{
		What:  trace.LWGSwitch,
		Group: string(m.id),
		View:  m.view.ID,
		Ref:   target.String(),
		Text:  fmt.Sprintf("%v -> %v", m.hwg, target),
	})
	if fresh && !e.hwg.IsMember(target) {
		_ = e.hwg.Create(target)
	}
	m.sw = &switchRound{target: target, ready: make(map[ids.ProcessID]bool)}
	m.startLwgFlush("switch", func() {
		if m.sw == nil || m.sw.target != target {
			return
		}
		e.hwgSend(m.hwg, &lwgSwitch{LWG: m.id, View: m.view.ID, Target: target})
		m.beginSwitchMember(target)
	})
}

// onLwgSwitch reacts to a switch instruction on the old HWG: members
// follow; bystanders install the forward pointer.
func (e *Endpoint) onLwgSwitch(st *hwgState, msg *lwgSwitch) {
	st.forward[msg.LWG] = msg.Target
	delete(st.known, msg.LWG)
	m := e.memberOn(msg.LWG, st.gid)
	if m == nil || m.view.ID != msg.View {
		return
	}
	if m.state == lwgSwitching && m.switchTarget == msg.Target {
		return
	}
	m.beginSwitchMember(msg.Target)
}

// beginSwitchMember is the per-member switch path: join the target HWG
// and report readiness until re-bound.
func (m *lwgMember) beginSwitchMember(target ids.HWGID) {
	e := m.e
	m.state = lwgSwitching
	m.switchTarget = target
	e.hwgState(target)
	if !e.hwg.IsMember(target) {
		_ = e.hwg.Join(target)
	}
	if m.switchTicker != nil {
		m.switchTicker.Stop()
	}
	attempts := 0
	m.switchTicker = e.clock.Every(e.cfg.SwitchRetryInterval, func() {
		// A shrink-rule leave of the target that was in flight when the
		// switch instruction arrived makes the IsMember check above pass
		// and then drops this process off the target once the leave
		// completes; without re-joining, readiness can never be reported.
		if m.state == lwgSwitching && m.switchTarget == target &&
			!e.hwg.IsMember(target) {
			e.hwgState(target)
			_ = e.hwg.Join(target)
		}
		m.sendSwitchReady()
		attempts++
		if m.sw != nil && attempts >= 4 && !m.sw.sent {
			// Stragglers will catch up through announcements; re-bind
			// the members that are ready.
			m.completeSwitch()
		}
	})
	m.sendSwitchReady()
}

func (m *lwgMember) sendSwitchReady() {
	if m.state != lwgSwitching || m.switchTarget == ids.NoHWG {
		return
	}
	if _, ok := m.e.hwg.CurrentView(m.switchTarget); !ok {
		return
	}
	m.e.hwgSend(m.switchTarget, &lwgSwitchReady{
		LWG: m.id, View: m.view.ID, From: m.e.pid,
	})
}

// onSwitchReady collects readiness at the coordinator (on the target
// HWG) and answers stragglers after the switch completed.
func (e *Endpoint) onSwitchReady(st *hwgState, msg *lwgSwitchReady) {
	m := e.lwgs[msg.LWG]
	if m == nil {
		return
	}
	if m.hwg == st.gid && m.state == lwgActive && m.isCoordinator() &&
		(m.view.ID == msg.View || m.ancestors.Contains(msg.View)) {
		// Already switched (and possibly reconfigured past the
		// straggler's view since): repeat the current binding. The
		// straggler re-binds or, if merged away, lands in a singleton
		// that merge-views folds back in.
		e.hwgSend(st.gid, &lwgView{
			Rec: viewRecord{LWG: m.id, View: m.view.Clone(), Ancestors: m.ancestors},
			HWG: st.gid,
		})
		return
	}
	if m.view.ID != msg.View {
		return
	}
	if m.sw == nil || m.sw.target != st.gid {
		return
	}
	m.sw.ready[msg.From] = true
	for _, p := range m.view.Members {
		if !m.sw.ready[p] {
			return
		}
	}
	m.completeSwitch()
}

// completeSwitch announces the re-binding on the target HWG (coordinator
// side). Installation happens on receipt, uniformly at every member.
func (m *lwgMember) completeSwitch() {
	if m.sw == nil || m.sw.sent {
		return
	}
	m.sw.sent = true
	m.e.hwgSend(m.sw.target, &lwgView{
		Rec: viewRecord{LWG: m.id, View: m.view.Clone(), Ancestors: m.ancestors},
		HWG: m.sw.target,
	})
}

// --- naming callbacks (Steps 1–2) -------------------------------------------

// handleNamingCallback receives MULTIPLE-MAPPINGS and applies the
// Section 6.2 rule: the coordinators of all concurrent views switch to
// the mapping with the highest HWG identifier; views already there keep
// their mapping.
func (e *Endpoint) handleNamingCallback(_ netsim.NodeID, _ netsim.Addr, msg netsim.Message) {
	mm, ok := msg.(*naming.MsgMultipleMappings)
	if !ok {
		return
	}
	m := e.lwgs[mm.LWG]
	if m == nil || !m.isCoordinator() || m.state != lwgActive {
		return
	}
	target := naming.PreferredHWG(mm.Mappings)
	if e.cfg.ReconcileToLowest {
		target = lowestHWG(mm.Mappings)
	}
	if target == ids.NoHWG || target == m.hwg {
		return
	}
	e.trace("reconcile", "%s: MULTIPLE-MAPPINGS, switching %v -> %v", mm.LWG, m.hwg, target)
	m.startSwitch(target, false)
}

// lowestHWG is the ablation counterpart of naming.PreferredHWG.
func lowestHWG(entries []naming.Entry) ids.HWGID {
	var best ids.HWGID
	for _, e := range entries {
		if best == ids.NoHWG || e.HWG < best {
			best = e.HWG
		}
	}
	return best
}

package core

import (
	"testing"
	"time"

	"plwg/internal/ids"
	"plwg/internal/netsim"
)

func TestPhantomMemberRepudiation(t *testing.T) {
	// A view claims a process that has no state for the group (the
	// aftermath of a leave lost to a partition): the phantom must
	// repudiate, and the exclusion flush must complete even though the
	// phantom cannot answer a normal member flush.
	w := newCWorld(t, 4, []ids.ProcessID{0}, testCfg())
	for _, p := range []ids.ProcessID{1, 2} {
		if err := w.eps[p].Join("g"); err != nil {
			t.Fatal(err)
		}
	}
	w.run(3 * time.Second)
	v, hwg := w.requireLWG("g", 1, 2)

	// Forge the post-merge situation: announce a view of g that claims
	// p3, which has no state for g. (In production this record comes
	// out of a merge with a pre-leave concurrent view.)
	m := w.eps[1].lwgs["g"]
	forged := viewRecord{
		LWG: "g",
		View: ids.View{
			ID:      ids.ViewID{Coord: 1, Seq: v.ID.Seq + 1000},
			Members: ids.NewMembers(1, 2, 3),
		},
		Ancestors: append(append(ids.ViewIDs{}, m.ancestors...), v.ID),
	}
	// p3 must be a member of the HWG to even hear about it.
	if err := w.eps[3].hwg.Join(hwg); err != nil {
		t.Fatal(err)
	}
	w.run(2 * time.Second)
	_ = w.eps[1].hwg.Send(hwg, &lwgView{Rec: forged, HWG: hwg})
	w.run(5 * time.Second)

	// The phantom repudiated and the group settled without it.
	final, _ := w.eps[1].LWGView("g")
	if final.Members.Contains(3) {
		t.Fatalf("phantom p3 still in view %v\ntrace:\n%s", final, w.tracer.Dump())
	}
	if !final.Members.Equal(ids.NewMembers(1, 2)) {
		t.Fatalf("final members = %v, want {p1,p2}", final.Members)
	}
	if len(w.tracer.Filter("lwg", "repudiate")) == 0 {
		t.Fatal("no repudiation event recorded")
	}
}

func TestRejoinAfterLeave(t *testing.T) {
	w := newCWorld(t, 3, []ids.ProcessID{0}, testCfg())
	for _, p := range []ids.ProcessID{1, 2} {
		if err := w.eps[p].Join("a"); err != nil {
			t.Fatal(err)
		}
	}
	w.run(3 * time.Second)
	if err := w.eps[2].Leave("a"); err != nil {
		t.Fatal(err)
	}
	w.run(2 * time.Second)
	if err := w.eps[2].Join("a"); err != nil {
		t.Fatal(err)
	}
	w.run(3 * time.Second)
	w.requireLWG("a", 1, 2)
}

func TestThreeWayPartitionedCreation(t *testing.T) {
	// The LWG is created independently in THREE partitions, producing
	// three conflicting mappings; reconciliation must still converge to
	// the highest-gid HWG and a single merged view.
	w := newCWorld(t, 9, []ids.ProcessID{0, 3, 6}, testCfg())
	w.nw.SetPartitions(
		[]netsim.NodeID{0, 1, 2},
		[]netsim.NodeID{3, 4, 5},
		[]netsim.NodeID{6, 7, 8},
	)
	for _, p := range []ids.ProcessID{1, 4, 7} {
		if err := w.eps[p].Join("a"); err != nil {
			t.Fatal(err)
		}
	}
	w.run(4 * time.Second)
	h1, _ := w.eps[1].Mapping("a")
	h4, _ := w.eps[4].Mapping("a")
	h7, _ := w.eps[7].Mapping("a")
	if h1 == h4 || h4 == h7 || h1 == h7 {
		t.Fatalf("expected three distinct mappings, got %v %v %v", h1, h4, h7)
	}
	want := h1
	if h4 > want {
		want = h4
	}
	if h7 > want {
		want = h7
	}

	w.nw.Heal()
	w.run(15 * time.Second)
	_, hwg := w.requireLWG("a", 1, 4, 7)
	if hwg != want {
		t.Errorf("reconciled onto %v, want highest gid %v", hwg, want)
	}
	for _, srv := range w.servers {
		if live := srv.DB().Live("a"); len(live) != 1 {
			t.Errorf("server %v: %d live mappings:\n%s", srv.PID(), len(live), srv.DB().Dump())
		}
	}
}

func TestSendsBufferedDuringSwitch(t *testing.T) {
	// Messages sent while the group is switching HWGs must be delivered
	// once the switch completes.
	w := newCWorld(t, 10, []ids.ProcessID{0}, testCfg())
	var big []ids.ProcessID
	for i := 1; i <= 8; i++ {
		big = append(big, ids.ProcessID(i))
	}
	for _, p := range big {
		if err := w.eps[p].Join("big"); err != nil {
			t.Fatal(err)
		}
	}
	w.run(6 * time.Second)
	for _, p := range []ids.ProcessID{1, 2} {
		if err := w.eps[p].Join("small"); err != nil {
			t.Fatal(err)
		}
	}
	w.run(4 * time.Second)
	hBig, _ := w.eps[1].Mapping("big")
	hSmall, _ := w.eps[1].Mapping("small")
	if hBig != hSmall {
		t.Skip("creation did not co-locate; nothing to switch")
	}
	// Trigger the interference switch, then send immediately: the
	// message rides out the switch in the buffer.
	w.runPolicyEverywhere()
	w.run(50 * time.Millisecond)
	if err := w.eps[1].Send("small", []byte("through-the-switch")); err != nil {
		t.Fatal(err)
	}
	w.run(5 * time.Second)
	found := false
	for _, e := range w.ups[2].log["small"] {
		if e.kind == "data" && e.data == "through-the-switch" {
			found = true
		}
	}
	if !found {
		t.Fatalf("message lost across the switch\ntrace:\n%s", w.tracer.Dump())
	}
	h2, _ := w.eps[1].Mapping("small")
	if h2 == hBig {
		t.Fatal("switch did not happen; test vacuous")
	}
}

func TestSwitchDuringPartitionThenHeal(t *testing.T) {
	// One side switches the LWG onto a new HWG while partitioned; the
	// other side keeps the old mapping. After the heal the mappings
	// conflict and reconcile.
	w := newCWorld(t, 8, []ids.ProcessID{0, 4}, testCfg())
	for _, p := range []ids.ProcessID{1, 2, 5, 6} {
		if err := w.eps[p].Join("a"); err != nil {
			t.Fatal(err)
		}
	}
	w.run(5 * time.Second)
	w.requireLWG("a", 1, 2, 5, 6)
	w.nw.SetPartitions([]netsim.NodeID{0, 1, 2, 3}, []netsim.NodeID{4, 5, 6, 7})
	w.run(4 * time.Second)

	// Side A's coordinator switches its view to a fresh HWG while cut
	// off (exercising switch-under-partition).
	oldHwg, _ := w.eps[1].Mapping("a")
	m := w.eps[1].lwgs["a"]
	if m == nil || !m.isCoordinator() {
		t.Fatal("p1 should coordinate side A's view")
	}
	target := w.eps[1].allocHWGID()
	m.startSwitch(target, true)
	w.run(4 * time.Second)
	newHwg, _ := w.eps[1].Mapping("a")
	if newHwg == oldHwg {
		t.Fatalf("switch did not complete under partition (still %v)", oldHwg)
	}

	w.nw.Heal()
	w.run(15 * time.Second)
	_, hwg := w.requireLWG("a", 1, 2, 5, 6)
	want := newHwg
	if oldHwg > want {
		want = oldHwg
	}
	if hwg != want {
		t.Errorf("reconciled onto %v, want %v", hwg, want)
	}
}

func TestSoleMemberPartitionDance(t *testing.T) {
	// A single-member group bounces through partitions: nothing to
	// merge, but the mapping must stay unique and the view stable.
	w := newCWorld(t, 4, []ids.ProcessID{0}, testCfg())
	if err := w.eps[1].Join("solo"); err != nil {
		t.Fatal(err)
	}
	w.run(2 * time.Second)
	v1 := w.lwgView(1, "solo")
	for i := 0; i < 3; i++ {
		w.nw.SetPartitions([]netsim.NodeID{0, 2, 3}, []netsim.NodeID{1})
		w.run(2 * time.Second)
		w.nw.Heal()
		w.run(2 * time.Second)
	}
	v2 := w.lwgView(1, "solo")
	if !v2.Members.Equal(ids.NewMembers(1)) {
		t.Fatalf("solo view = %v", v2)
	}
	_ = v1 // the identifier may change with HWG churn; membership must not
	if got := w.servers[0].DB().Live("solo"); len(got) != 1 {
		t.Errorf("naming has %d live mappings:\n%s", len(got), w.servers[0].DB().Dump())
	}
}

func TestNamingServerCrashFailover(t *testing.T) {
	// The primary naming server crashes; the service keeps working via
	// the replica (including creation of new groups).
	w := newCWorld(t, 6, []ids.ProcessID{0, 3}, testCfg())
	if err := w.eps[1].Join("a"); err != nil {
		t.Fatal(err)
	}
	w.run(3 * time.Second)
	w.nw.Crash(0)
	if err := w.eps[2].Join("a"); err != nil {
		t.Fatal(err)
	}
	if err := w.eps[4].Join("b"); err != nil {
		t.Fatal(err)
	}
	w.run(6 * time.Second)
	w.requireLWG("a", 1, 2)
	w.requireLWG("b", 4)
}

func TestOverlappingGroupsPolicyStability(t *testing.T) {
	// Overlapping (not identical) memberships: the hysteresis must keep
	// mappings stable — repeated policy passes cause no switches.
	w := newCWorld(t, 6, []ids.ProcessID{0}, testCfg())
	// g1 {1,2,3,4}; g2 {2,3,4,5}: 75% overlap.
	for _, p := range []ids.ProcessID{1, 2, 3, 4} {
		if err := w.eps[p].Join("g1"); err != nil {
			t.Fatal(err)
		}
	}
	w.run(4 * time.Second)
	for _, p := range []ids.ProcessID{2, 3, 4, 5} {
		if err := w.eps[p].Join("g2"); err != nil {
			t.Fatal(err)
		}
	}
	w.run(4 * time.Second)
	before := len(w.tracer.Filter("lwg", "switch"))
	for pass := 0; pass < 3; pass++ {
		w.runPolicyEverywhere()
		w.run(2 * time.Second)
	}
	after := len(w.tracer.Filter("lwg", "switch"))
	if after != before {
		t.Errorf("policy thrashing: %d switch events from stable overlap", after-before)
	}
	w.requireLWG("g1", 1, 2, 3, 4)
	w.requireLWG("g2", 2, 3, 4, 5)
}

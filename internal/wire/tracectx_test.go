package wire

import "testing"

func TestTraceCtxRoundTrip(t *testing.T) {
	cases := []TraceCtx{
		{},
		{Origin: 3, VT: 123456789, Wall: 1700000000000000000, Sampled: true, Ref: "hwg/7"},
		{Origin: -1, VT: -5, Wall: -9, Sampled: false, Ref: ""},
		{Origin: 1 << 40, VT: 1<<62 - 1, Wall: 1, Sampled: true, Ref: "ns/digest"},
	}
	for _, want := range cases {
		b := GetBuffer()
		want.MarshalWire(b)
		var got TraceCtx
		r := NewReader(b.B)
		if !got.UnmarshalWire(r) {
			t.Fatalf("unmarshal failed for %+v: %v", want, r.Err())
		}
		if got != want {
			t.Errorf("round trip: got %+v, want %+v", got, want)
		}
		if r.Len() != 0 {
			t.Errorf("trailing bytes after %+v", want)
		}
		b.Release()
	}
}

func TestTraceCtxBadVersion(t *testing.T) {
	b := GetBuffer()
	defer b.Release()
	(&TraceCtx{Origin: 1, Ref: "x"}).MarshalWire(b)
	b.B[0] = 0xEE
	var got TraceCtx
	if got.UnmarshalWire(NewReader(b.B)) {
		t.Fatal("unknown version must not decode")
	}
}

func TestTraceCtxTruncated(t *testing.T) {
	b := GetBuffer()
	defer b.Release()
	(&TraceCtx{Origin: 42, VT: 9, Wall: 11, Sampled: true, Ref: "hwg/1"}).MarshalWire(b)
	for cut := 0; cut < len(b.B); cut++ {
		var got TraceCtx
		if got.UnmarshalWire(NewReader(b.B[:cut])) {
			t.Fatalf("truncated encoding (%d of %d bytes) decoded", cut, len(b.B))
		}
	}
}

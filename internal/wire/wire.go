// Package wire is a compact hand-rolled binary codec for the hot-path
// protocol messages. encoding/gob ships a full type description with
// every independently decoded stream — one per UDP datagram on the real
// transport — which dominates the per-datagram encode cost. The codec
// replaces that with one identifier byte per registered type and
// varint-packed fields, and pools its buffers so the steady-state send
// path allocates nothing.
//
// Only the message types that dominate traffic (data, batches, acks,
// heartbeats) implement Marshaler; everything else falls back to gob at
// the transport layer. A Marshaler whose nested content cannot be
// encoded (e.g. a data message carrying an unregistered payload)
// reports false from MarshalWire and the caller falls back for the
// whole datagram, so the two codecs never mix within one message.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Marshaler is implemented by messages the codec can encode.
type Marshaler interface {
	// WireID returns the registered type identifier.
	WireID() byte
	// MarshalWire appends the message body to b. It returns false if
	// the message cannot be encoded by the codec (the caller must
	// discard the buffer contents and fall back to gob).
	MarshalWire(b *Buffer) bool
}

// Decoder reconstructs one message body from r.
type Decoder func(r *Reader) (Marshaler, error)

var decoders [256]Decoder

// Register installs the decoder for a type identifier. Identifier
// ranges are assigned per package (vsync 1–15, core 16–31, naming
// 32–47) so registrations cannot collide. Register panics on a
// duplicate identifier: that is a programming error, not a runtime
// condition.
func Register(id byte, dec Decoder) {
	if id == 0 {
		panic("wire: type id 0 is reserved")
	}
	if decoders[id] != nil {
		panic(fmt.Sprintf("wire: duplicate type id %d", id))
	}
	decoders[id] = dec
}

// Encode appends the type identifier and body of m. It returns false —
// with the buffer in an undefined state — if m cannot be encoded.
func Encode(b *Buffer, m Marshaler) bool {
	b.Byte(m.WireID())
	return m.MarshalWire(b)
}

// Decode reads one identifier-prefixed message from r.
func Decode(r *Reader) (Marshaler, error) {
	id := r.Byte()
	if r.err != nil {
		return nil, r.err
	}
	dec := decoders[id]
	if dec == nil {
		return nil, fmt.Errorf("wire: unknown type id %d", id)
	}
	return dec(r)
}

// --- encode buffer ---------------------------------------------------------

// Buffer is an append-only encode buffer. Get it from the pool with
// GetBuffer and return it with Release. It implements io.Writer so a
// gob encoder can share the same pooled storage on the fallback path.
//
// Buffers are reference-counted so one encoded message can be handed to
// several consumers (e.g. a UDP fan-out to N peers across goroutines)
// without copying: each consumer holds a reference via Retain and drops
// it with Release; the storage returns to the pool when the last
// reference is released. Single-owner code can ignore Retain entirely —
// GetBuffer returns a buffer with one reference and a matching Release
// pools it, exactly as before.
type Buffer struct {
	B    []byte
	refs atomic.Int32
}

var bufPool = sync.Pool{New: func() any { return &Buffer{B: make([]byte, 0, 4096)} }}

// GetBuffer returns an empty pooled buffer holding one reference.
func GetBuffer() *Buffer {
	b := bufPool.Get().(*Buffer)
	b.B = b.B[:0]
	b.refs.Store(1)
	return b
}

// Retain adds a reference. Safe from any goroutine.
func (b *Buffer) Retain() { b.refs.Add(1) }

// Release drops one reference and returns the buffer to the pool when
// the count reaches zero. The releaser of the last reference must not
// touch the buffer (or slices of B) afterwards. Safe from any
// goroutine.
func (b *Buffer) Release() {
	if b.refs.Add(-1) == 0 {
		bufPool.Put(b)
	}
}

// Reset empties the buffer without releasing its storage.
func (b *Buffer) Reset() { b.B = b.B[:0] }

// Write implements io.Writer.
func (b *Buffer) Write(p []byte) (int, error) {
	b.B = append(b.B, p...)
	return len(p), nil
}

// Byte appends one byte.
func (b *Buffer) Byte(v byte) { b.B = append(b.B, v) }

// Bool appends a boolean as one byte.
func (b *Buffer) Bool(v bool) {
	if v {
		b.B = append(b.B, 1)
	} else {
		b.B = append(b.B, 0)
	}
}

// Uint64 appends an unsigned varint.
func (b *Buffer) Uint64(v uint64) { b.B = binary.AppendUvarint(b.B, v) }

// Int64 appends a zig-zag signed varint.
func (b *Buffer) Int64(v int64) { b.B = binary.AppendVarint(b.B, v) }

// Bytes appends a length-prefixed byte slice.
func (b *Buffer) Bytes(p []byte) {
	b.B = binary.AppendUvarint(b.B, uint64(len(p)))
	b.B = append(b.B, p...)
}

// String appends a length-prefixed string.
func (b *Buffer) String(s string) {
	b.B = binary.AppendUvarint(b.B, uint64(len(s)))
	b.B = append(b.B, s...)
}

// --- decode reader ---------------------------------------------------------

// ErrTruncated reports input shorter than the encoding demands.
var ErrTruncated = errors.New("wire: truncated input")

// Reader consumes an encoded byte slice. Errors are sticky: after the
// first failure every accessor returns a zero value, so a decode
// function can read all fields and check Err once.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader wraps p for decoding. The reader aliases p; returned byte
// slices are sub-slices of it.
func NewReader(p []byte) *Reader { return &Reader{b: p} }

// Err returns the first decode error, if any.
func (r *Reader) Err() error { return r.err }

// Len returns the number of unconsumed bytes.
func (r *Reader) Len() int { return len(r.b) - r.off }

func (r *Reader) fail() {
	if r.err == nil {
		r.err = ErrTruncated
	}
}

// Byte reads one byte.
func (r *Reader) Byte() byte {
	if r.err != nil || r.off >= len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

// Bool reads a one-byte boolean.
func (r *Reader) Bool() bool { return r.Byte() != 0 }

// Uint64 reads an unsigned varint.
func (r *Reader) Uint64() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

// Int64 reads a zig-zag signed varint.
func (r *Reader) Int64() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

// Bytes reads a length-prefixed byte slice (aliasing the input).
func (r *Reader) Bytes() []byte {
	n := r.Uint64()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail()
		return nil
	}
	v := r.b[r.off : r.off+int(n) : r.off+int(n)]
	r.off += int(n)
	return v
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes()) }

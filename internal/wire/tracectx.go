package wire

// TraceCtx is the compact causal context carried on rtnet envelopes: who
// originated the message, at what origin-local virtual time, at what
// wall-clock instant, and which protocol operation it belongs to. The
// receiver records it into its trace ring at decode, so cross-node
// stitching works from live rings, and uses the wall clock to compute
// one-way send→deliver latency (origin VTs are per-node and not
// comparable across machines; wall clocks are, to NTP precision, which
// is what a latency SLO histogram needs).
//
// The context rides between the envelope tag byte and the envelope body
// (see rtnet's envCodecTC/envGobTC tags), so one layout covers codec and
// gob bodies alike and old decoders never see it.
type TraceCtx struct {
	// Origin is the sending process id.
	Origin int64
	// VT is the sender's driver-local virtual time in nanoseconds.
	VT int64
	// Wall is the sender's wall clock (UnixNano) at send.
	Wall int64
	// Sampled marks a context chosen by the sampling knob; unsampled
	// envelopes carry no context at all, so a decoded context is always
	// live — the bit survives re-export so downstream consumers can
	// scale counts back up.
	Sampled bool
	// Ref names the destination endpoint (the envelope address, e.g.
	// "hwg/3"), tying the context to a protocol operation.
	Ref string
}

// traceCtxVersion versions the context layout; unknown versions fail the
// decode (the envelope then falls back to being treated as malformed
// rather than mis-parsed).
const traceCtxVersion = 1

// MarshalWire appends the context to the buffer.
func (tc *TraceCtx) MarshalWire(b *Buffer) {
	b.Byte(traceCtxVersion)
	b.Int64(tc.Origin)
	b.Int64(tc.VT)
	b.Int64(tc.Wall)
	b.Bool(tc.Sampled)
	b.String(tc.Ref)
}

// UnmarshalWire reads a context; it reports false on a version it does
// not understand or a truncated encoding (r.Err() is then also set for
// the truncated case).
func (tc *TraceCtx) UnmarshalWire(r *Reader) bool {
	if r.Byte() != traceCtxVersion {
		return false
	}
	tc.Origin = r.Int64()
	tc.VT = r.Int64()
	tc.Wall = r.Int64()
	tc.Sampled = r.Bool()
	tc.Ref = r.String()
	return r.Err() == nil
}

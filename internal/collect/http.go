package collect

import (
	"encoding/json"
	"net/http"

	"plwg/internal/trace"
)

// Handler serves the collector's cluster-wide endpoints:
//
//	/cluster/metrics  aggregated text exposition (every node's samples
//	                  with a node label, plus cluster_* instruments)
//	/cluster/ops      stitched cross-node operation timelines as JSONL
//	/cluster/health   partition-aware health report as JSON
//
// All three serve whatever the collector knows right now — during a
// partition or node crash they degrade to last-known-state with
// staleness marked, never to an error.
func (c *Collector) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/cluster/metrics", c.serveMetrics)
	mux.HandleFunc("/cluster/ops", c.serveOps)
	mux.HandleFunc("/cluster/health", c.serveHealth)
	return mux
}

func (c *Collector) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	c.WriteClusterMetrics(w)
}

// opJSON is the JSONL shape of one stitched operation on /cluster/ops.
type opJSON struct {
	Op      string       `json:"op"`   // the human rendering ("merge-views hwg5@p0/7")
	Kind    string       `json:"kind"` // lwg-view | switch | merge-views | flush
	Group   string       `json:"group"`
	View    string       `json:"view,omitempty"`
	Ref     string       `json:"ref,omitempty"`
	Nodes   []string     `json:"nodes"`
	StartNs int64        `json:"start_ns"`
	EndNs   int64        `json:"end_ns"`
	Events  []opEventRow `json:"events"`
}

type opEventRow struct {
	AtNs int64  `json:"at_ns"`
	Node string `json:"node"`
	What string `json:"what"`
	Step int    `json:"step,omitempty"`
	Text string `json:"text,omitempty"`
}

func toOpJSON(op trace.Op) opJSON {
	out := opJSON{
		Op:      op.Key.String(),
		Kind:    op.Key.Kind,
		Group:   op.Key.Group,
		Ref:     op.Key.Ref,
		StartNs: int64(op.Start),
		EndNs:   int64(op.End),
	}
	if !op.Key.View.IsZero() {
		out.View = op.Key.View.String()
	}
	for _, n := range op.Nodes {
		out.Nodes = append(out.Nodes, n.String())
	}
	for _, e := range op.Events {
		out.Events = append(out.Events, opEventRow{
			AtNs: int64(e.At), Node: e.Node.String(), What: e.What,
			Step: e.Step, Text: e.Text,
		})
	}
	return out
}

func (c *Collector) serveOps(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	for _, op := range c.Ops() {
		_ = enc.Encode(toOpJSON(op))
	}
}

func (c *Collector) serveHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(c.HealthSnapshot())
}

package collect

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"plwg/internal/ids"
	"plwg/internal/metrics"
	"plwg/internal/rtnet"
	"plwg/internal/sim"
	"plwg/internal/trace"
)

// hostileLWG is a group name exercising every exposition escape.
const hostileLWG = "a\"b\\c\nd"

// fakeNode builds an httptest server that mimics one node's debug
// surface: a real registry rendered by WriteText (so the scrape is a
// true writer→parser round trip), a canned /debug/lwg snapshot and a
// canned trace ring.
func fakeNode(t *testing.T, pid ids.ProcessID, lwgs []rtnet.DebugLWGEntry, events []trace.Event) *httptest.Server {
	t.Helper()
	reg := metrics.NewRegistry()
	reg.Counter("lwg_sends_total", metrics.L("lwg", hostileLWG)).Add(5)
	reg.Counter("rtnet_datagrams_sent_total").Add(int64(100 + pid))
	reg.Gauge("lwg_groups").Set(int64(len(lwgs)))
	snapshot := rtnet.DebugLWG{PID: pid, LWGs: lwgs}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		_ = reg.WriteText(w)
	})
	mux.HandleFunc("/debug/lwg", func(w http.ResponseWriter, _ *http.Request) {
		_ = json.NewEncoder(w).Encode(snapshot)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
		_ = trace.WriteJSONL(w, events)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// deadTarget returns a URL nothing listens on.
func deadTarget(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + ln.Addr().String()
	ln.Close()
	return url
}

func viewEvent(node ids.ProcessID, at sim.Time, group string, view ids.ViewID, members ...ids.ProcessID) trace.Event {
	return trace.Event{
		At: at, Node: node, Layer: "lwg", What: trace.LWGViewInstall,
		Group: group, View: view, Members: ids.NewMembers(members...),
	}
}

// TestCollectorRoundTrip scrapes two live fake nodes plus one dead
// target and checks the merged view: hostile labels survive the
// writer→scraper round trip, cross-node events dedup and stitch, the
// health report maps partitions from view membership, and the dead node
// degrades without erroring anything.
func TestCollectorRoundTrip(t *testing.T) {
	viewA := ids.ViewID{Coord: 0, Seq: 3}
	viewB := ids.ViewID{Coord: 2, Seq: 1}
	// Nodes p0, p1 share group "chat" in view p0/3 ({p0,p1}); node p2 is
	// partitioned away with its own singleton view of "chat".
	n0 := fakeNode(t, 0,
		[]rtnet.DebugLWGEntry{{LWG: "chat", View: viewA.String(), Members: []string{"p0", "p1"}, HWG: "hwg1", Coord: true}},
		[]trace.Event{viewEvent(0, 1000, "chat", viewA, 0, 1)})
	n1 := fakeNode(t, 1,
		[]rtnet.DebugLWGEntry{{LWG: "chat", View: viewA.String(), Members: []string{"p0", "p1"}, HWG: "hwg1"}},
		[]trace.Event{viewEvent(1, 1200, "chat", viewA, 0, 1)})
	n2 := fakeNode(t, 2,
		[]rtnet.DebugLWGEntry{{LWG: "chat", View: viewB.String(), Members: []string{"p2"}, HWG: "hwg2"}},
		[]trace.Event{viewEvent(2, 900, "chat", viewB, 2)})
	dead := deadTarget(t)

	c := New(Config{Targets: []string{n0.URL, n1.URL, n2.URL, dead}})
	ctx := context.Background()
	c.ScrapeOnce(ctx)
	c.ScrapeOnce(ctx) // second round: everything below must be dedup-stable

	// Merged events: three distinct view installs, scraped twice, merged
	// once each.
	if got := len(c.Events()); got != 3 {
		t.Errorf("merged events = %d, want 3 (dedup across rounds)", got)
	}
	// The two p0/3 installs stitch into one cross-node lwg-view op.
	ops := c.Ops()
	var chatOp *trace.Op
	for i := range ops {
		if ops[i].Key.Kind == "lwg-view" && ops[i].Key.View == viewA {
			chatOp = &ops[i]
		}
	}
	if chatOp == nil {
		t.Fatalf("no stitched lwg-view op for %v in %+v", viewA, c.Ops())
	}
	if !chatOp.Nodes.Equal(ids.NewMembers(0, 1)) {
		t.Errorf("op nodes = %v, want p0,p1", chatOp.Nodes)
	}

	// Health: two partitions ({p0,p1} and {p2}), one disagreement on
	// "chat", and the dead target unreachable but not erroring the view.
	h := c.HealthSnapshot()
	if len(h.Partitions) != 2 {
		t.Fatalf("partitions = %+v, want 2", h.Partitions)
	}
	if got := h.Partitions[0].Members; len(got) != 2 || got[0] != "p0" || got[1] != "p1" {
		t.Errorf("partition 0 members = %v, want [p0 p1]", got)
	}
	if got := h.Partitions[1].Members; len(got) != 1 || got[0] != "p2" {
		t.Errorf("partition 1 members = %v, want [p2]", got)
	}
	if len(h.Disagreements) != 1 || !strings.HasPrefix(h.Disagreements[0], "chat:") {
		t.Errorf("disagreements = %v, want one for chat", h.Disagreements)
	}
	var deadRow, liveRow *NodeHealth
	for i := range h.Nodes {
		switch h.Nodes[i].URL {
		case dead:
			deadRow = &h.Nodes[i]
		case n0.URL:
			liveRow = &h.Nodes[i]
		}
	}
	if deadRow == nil || deadRow.Reachable || deadRow.Error == "" {
		t.Errorf("dead node row = %+v, want unreachable with error", deadRow)
	}
	if liveRow == nil || !liveRow.Reachable || liveRow.Name != "p0" {
		t.Errorf("live node row = %+v, want reachable p0", liveRow)
	}

	// Cluster metrics: per-node samples with the node label, hostile
	// label value intact, and the whole output reparsable.
	var b strings.Builder
	c.WriteClusterMetrics(&b)
	samples, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("/cluster/metrics does not reparse: %v\n%s", err, b.String())
	}
	found := false
	for _, s := range samples {
		if s.Name != "lwg_sends_total" {
			continue
		}
		var lwg, node string
		for _, l := range s.Labels {
			switch l.Key {
			case "lwg":
				lwg = l.Value
			case "node":
				node = l.Value
			}
		}
		if lwg == hostileLWG && node == "p1" {
			found = true
			if s.Value != 5 {
				t.Errorf("hostile sample value = %v, want 5", s.Value)
			}
		}
	}
	if !found {
		t.Errorf("hostile label did not survive the scrape round trip:\n%s", b.String())
	}
	var rounds, reachable float64
	for _, s := range samples {
		switch s.Name {
		case "cluster_scrape_rounds_total":
			rounds = s.Value
		case "cluster_nodes_reachable":
			reachable = s.Value
		}
	}
	if rounds != 2 || reachable != 3 {
		t.Errorf("cluster rounds=%v reachable=%v, want 2 and 3", rounds, reachable)
	}
}

// TestCollectorLastKnownState kills a node between rounds and checks it
// degrades to stale last-known-state: still present in the health
// report and cluster metrics, flagged unreachable, samples preserved.
func TestCollectorLastKnownState(t *testing.T) {
	view := ids.ViewID{Coord: 0, Seq: 1}
	n0 := fakeNode(t, 0,
		[]rtnet.DebugLWGEntry{{LWG: "g", View: view.String(), Members: []string{"p0"}}},
		[]trace.Event{viewEvent(0, 500, "g", view, 0)})
	c := New(Config{Targets: []string{n0.URL}})
	ctx := context.Background()
	c.ScrapeOnce(ctx)
	n0.Close()
	c.ScrapeOnce(ctx)

	h := c.HealthSnapshot()
	if len(h.Nodes) != 1 {
		t.Fatalf("nodes = %+v", h.Nodes)
	}
	row := h.Nodes[0]
	if row.Reachable || row.StaleSeconds <= 0 || row.Error == "" || row.Name != "p0" {
		t.Errorf("row = %+v, want stale unreachable p0 with error", row)
	}
	// Membership evidence from the stale snapshot still maps the node's
	// partition, and its samples still export (with node_stale = 1).
	if len(h.Partitions) != 1 || len(h.Partitions[0].Members) != 1 {
		t.Errorf("partitions = %+v, want p0 still mapped", h.Partitions)
	}
	var b strings.Builder
	c.WriteClusterMetrics(&b)
	out := b.String()
	if !strings.Contains(out, `node_stale{node="p0"} 1`) {
		t.Errorf("missing stale flag:\n%s", out)
	}
	if !strings.Contains(out, "lwg_sends_total") {
		t.Errorf("stale node's samples vanished:\n%s", out)
	}
	// Stitched ops from the dead node's ring survive too.
	if len(c.Ops()) != 1 {
		t.Errorf("ops = %+v, want the one from before the crash", c.Ops())
	}
}

// TestParseTextRejectsMalformed pins the scraper's failure modes.
func TestParseTextRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		`x{lwg="unterminated} 1`,
		`x{lwg="bad\escape"} 1`,
		`x{lwg=unquoted} 1`,
		`x{lwg="v"} notanumber`,
		`justaname`,
	} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseText(%q) succeeded, want error", bad)
		}
	}
}

// Package collect implements the cluster-side half of the observability
// plane: a collector that polls every node's debug endpoint (/metrics,
// /debug/trace, /debug/lwg), merges the per-node trace rings into one
// cross-node event set, stitches protocol operations out of it, and
// derives a partition-aware view of cluster health. The collector is an
// outside observer — it talks HTTP only, never the protocol wire — so it
// keeps working (on last known state) across any cluster partition.
package collect

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"plwg/internal/metrics"
)

// Sample is one parsed metric sample: a name, a sorted label set and a
// value. It mirrors what metrics.WriteText emits, plus whatever extra
// labels the collector attaches (node).
type Sample struct {
	Name   string
	Labels []metrics.Label
	Value  float64
}

// labelString renders the sample's labels in the escaped {k="v"} form.
func (s Sample) labelString() string {
	if len(s.Labels) == 0 {
		return ""
	}
	parts := make([]string, len(s.Labels))
	for i, l := range s.Labels {
		parts[i] = l.Key + `="` + metrics.EscapeLabelValue(l.Value) + `"`
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// ParseText parses a Prometheus text exposition (the subset WriteText
// emits: # comments, 'name value' and 'name{k="v",...} value' lines)
// back into samples. It is the exact inverse of the writer, including
// label-value unescaping (\\, \" and \n), so hostile label values — a
// group named `a"b\c` — survive the scrape round trip.
func ParseText(r io.Reader) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("collect: metrics line %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseSampleLine(line string) (Sample, error) {
	var s Sample
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("no value: %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		labels, tail, err := parseLabels(rest)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = tail
	}
	rest = strings.TrimSpace(rest)
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", rest, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels consumes a {k="v",...} block and returns the remainder of
// the line. Values are unescaped; the label set is returned sorted by
// key (the canonical order the registry uses).
func parseLabels(in string) ([]metrics.Label, string, error) {
	if !strings.HasPrefix(in, "{") {
		return nil, in, fmt.Errorf("labels: missing '{'")
	}
	rest := in[1:]
	var labels []metrics.Label
	for {
		rest = strings.TrimLeft(rest, ",")
		if strings.HasPrefix(rest, "}") {
			rest = rest[1:]
			break
		}
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return nil, in, fmt.Errorf("labels: missing '=' in %q", rest)
		}
		key := rest[:eq]
		rest = rest[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			return nil, in, fmt.Errorf("labels: unquoted value for %q", key)
		}
		value, tail, err := unquoteLabelValue(rest[1:])
		if err != nil {
			return nil, in, fmt.Errorf("labels: value of %q: %w", key, err)
		}
		labels = append(labels, metrics.L(key, value))
		rest = tail
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i].Key < labels[j].Key })
	return labels, rest, nil
}

// unquoteLabelValue reads an escaped label value up to its closing
// quote, inverting the exposition escapes: \\ → backslash, \" → quote,
// \n → newline. Any other escape is an error (the writer never emits
// one).
func unquoteLabelValue(in string) (value, rest string, err error) {
	var b strings.Builder
	for i := 0; i < len(in); i++ {
		switch c := in[i]; c {
		case '"':
			return b.String(), in[i+1:], nil
		case '\\':
			i++
			if i >= len(in) {
				return "", "", fmt.Errorf("dangling escape")
			}
			switch in[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("unknown escape \\%c", in[i])
			}
		default:
			b.WriteByte(c)
		}
	}
	return "", "", fmt.Errorf("unterminated value")
}

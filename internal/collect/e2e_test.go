package collect

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"plwg/internal/core"
	"plwg/internal/ids"
	"plwg/internal/metrics"
	"plwg/internal/rtnet"
	"plwg/internal/trace"
)

// nopUpcalls discards the application upcalls; the e2e test observes
// the cluster exclusively through the collector, which is the point.
type nopUpcalls struct{}

func (nopUpcalls) View(ids.LWGID, ids.View)              {}
func (nopUpcalls) Data(ids.LWGID, ids.ProcessID, []byte) {}

// startObservedCluster boots n live UDP nodes, every one instrumented
// with its own registry and trace ring and exposing a debug server, and
// returns the nodes plus a collector scraping all of them.
func startObservedCluster(t *testing.T, n int, servers []ids.ProcessID) ([]*rtnet.Node, *Collector) {
	t.Helper()
	nodes := make([]*rtnet.Node, n)
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		node, err := rtnet.Listen(rtnet.NodeConfig{
			PID:         ids.ProcessID(i),
			Listen:      "127.0.0.1:0",
			NameServers: servers,
			Upcalls:     nopUpcalls{},
			Tracer:      trace.NewRing(trace.DefaultRingCapacity),
			Metrics:     metrics.NewRegistry(),
			// Sample every data envelope so the latency histograms fill
			// from modest test traffic.
			TraceSampleEvery: 1,
			Seed:             int64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		srv := httptest.NewServer(node.DebugHandler())
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	peers := make(map[ids.ProcessID]string, n)
	for i, node := range nodes {
		peers[ids.ProcessID(i)] = node.Addr().String()
	}
	for _, node := range nodes {
		if err := node.SetPeers(peers); err != nil {
			t.Fatal(err)
		}
		if err := node.Start(); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, node := range nodes {
			node.Close()
		}
	})
	return nodes, New(Config{Targets: urls})
}

// scrapeUntil keeps running scrape rounds until the health report
// satisfies cond or the budget runs out.
func scrapeUntil(t *testing.T, c *Collector, d time.Duration, cond func(Health) bool, msg string) Health {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		c.ScrapeOnce(context.Background())
		h := c.HealthSnapshot()
		if cond(h) {
			return h
		}
		if time.Now().After(deadline) {
			b, _ := json.Marshal(h)
			t.Fatalf("%s; last health: %s", msg, b)
		}
		time.Sleep(250 * time.Millisecond)
	}
}

// partitionCount counts partitions that contain at least one member.
func partitionCount(h Health) int { return len(h.Partitions) }

// TestE2EPartitionHealObservedThroughCollector is the acceptance run:
// a live three-node UDP cluster observed ONLY through lwgcollect's
// machinery. The health view must transition 1 → 2 → 1 partitions as a
// fault splits and heals the cluster, and afterwards the collector's
// merged rings must contain a stitched cross-node merge operation plus
// a final view install spanning every node — the same op shapes the
// deterministic simulation's stitching golden asserts.
func TestE2EPartitionHealObservedThroughCollector(t *testing.T) {
	if testing.Short() {
		t.Skip("live multi-second cluster run")
	}
	nodes, c := startObservedCluster(t, 3, []ids.ProcessID{0, 2})
	for i := range nodes {
		nodes[i].Do(func(ep *core.Endpoint) { _ = ep.Join("chat") })
	}

	// Phase 1: one partition containing all three members.
	scrapeUntil(t, c, 30*time.Second, func(h Health) bool {
		return partitionCount(h) == 1 && len(h.Partitions[0].Members) == 3
	}, "cluster did not converge to one 3-member partition")

	// Traffic on both future sides, so wire trace contexts flow.
	nodes[0].Do(func(ep *core.Endpoint) { _ = ep.Send("chat", []byte("before-split")) })

	// Phase 2: split {p0,p1} | {p2}.
	nodes[0].Block(2)
	nodes[1].Block(2)
	nodes[2].Block(0, 1)
	h := scrapeUntil(t, c, 45*time.Second, func(h Health) bool {
		return partitionCount(h) == 2
	}, "collector did not observe the split")
	if len(h.Disagreements) == 0 {
		t.Errorf("split health reports no view disagreement: %+v", h)
	}
	nodes[0].Do(func(ep *core.Endpoint) { _ = ep.Send("chat", []byte("side-A")) })
	nodes[2].Do(func(ep *core.Endpoint) { _ = ep.Send("chat", []byte("side-B")) })

	// Phase 3: heal back to one partition of three.
	for _, n := range nodes {
		n.Unblock()
	}
	scrapeUntil(t, c, 60*time.Second, func(h Health) bool {
		return partitionCount(h) == 1 && len(h.Partitions[0].Members) == 3 &&
			len(h.Disagreements) == 0
	}, "collector did not observe the heal")

	// The merged rings must stitch the reconciliation: a cross-node
	// merge-views (or switch) operation, and a "chat" view install
	// spanning all three nodes.
	ops := c.Ops()
	var mergeNodes, installAll ids.Members
	for _, op := range ops {
		if (op.Key.Kind == "merge-views" || op.Key.Kind == "switch") && len(op.Nodes) > len(mergeNodes) {
			mergeNodes = op.Nodes
		}
		if op.Key.Kind == "lwg-view" && op.Key.Group == "chat" && op.Nodes.Equal(ids.NewMembers(0, 1, 2)) {
			installAll = op.Nodes
		}
	}
	if len(mergeNodes) < 2 {
		t.Errorf("no cross-node merge/switch op stitched from live rings (%d ops)", len(ops))
	}
	if len(installAll) != 3 {
		t.Errorf("no chat view install spanning all 3 nodes stitched from live rings (%d ops)", len(ops))
	}

	// The collector's HTTP surface agrees with the programmatic view.
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	var health Health
	getJSON(t, srv.URL+"/cluster/health", &health)
	if partitionCount(health) != 1 {
		t.Errorf("/cluster/health partitions = %+v, want 1", health.Partitions)
	}
	body := getBody(t, srv.URL+"/cluster/ops")
	opLines := 0
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if line == "" {
			continue
		}
		var op opJSON
		if err := json.Unmarshal([]byte(line), &op); err != nil {
			t.Fatalf("/cluster/ops line is not JSON: %v\n%s", err, line)
		}
		opLines++
	}
	if opLines != len(ops) {
		t.Errorf("/cluster/ops lines = %d, want %d", opLines, len(ops))
	}
	metricsBody := getBody(t, srv.URL+"/cluster/metrics")
	samples, err := ParseText(strings.NewReader(metricsBody))
	if err != nil {
		t.Fatalf("/cluster/metrics does not parse: %v", err)
	}
	// Layer-3 acceptance: the wire trace contexts fed the one-way
	// latency histograms at both protocol levels on at least one node.
	var hwgLat, lwgLat, tcRecv float64
	for _, s := range samples {
		switch s.Name {
		case "hwg_oneway_latency_count":
			hwgLat += s.Value
		case "lwg_oneway_latency_count":
			lwgLat += s.Value
		case "rtnet_trace_ctx_recv_total":
			tcRecv += s.Value
		}
	}
	if tcRecv == 0 {
		t.Error("no wire trace contexts received anywhere in the cluster")
	}
	if hwgLat == 0 {
		t.Error("hwg one-way latency histogram never observed a sample")
	}
	if lwgLat == 0 {
		t.Error("lwg one-way latency histogram never observed a sample")
	}
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	if err := json.Unmarshal([]byte(getBody(t, url)), v); err != nil {
		t.Fatalf("GET %s: bad JSON: %v", url, err)
	}
}

package collect

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"plwg/internal/ids"
	"plwg/internal/metrics"
	"plwg/internal/rtnet"
	"plwg/internal/trace"
)

// Config configures a Collector.
type Config struct {
	// Targets are the base URLs of the nodes' debug endpoints (e.g.
	// "http://127.0.0.1:7070"). The collector identifies each node by the
	// pid reported on its /debug/lwg once reachable; until then the URL's
	// host:port stands in.
	Targets []string
	// Interval between scrape rounds (default 2s).
	Interval time.Duration
	// Client issues the scrapes; the default has a 5-second timeout so a
	// dead node delays a round, never wedges it.
	Client *http.Client
	// MaxEvents bounds the merged cross-node event set (default 131072);
	// when exceeded, the oldest events (by origin-node virtual time) are
	// shed. A bounded collector can watch a cluster indefinitely.
	MaxEvents int
	// Logf, when set, receives one line per scrape round.
	Logf func(format string, args ...any)
}

// nodeState is the collector's last known state of one node. A scrape
// failure degrades the node to stale — the previous snapshot stays
// visible, marked with its age — so a partitioned or crashed node never
// turns the cluster view into an error.
type nodeState struct {
	url  string
	name string // pid rendering once learned, else host:port

	reachable  bool
	lastErr    string
	lastOK     time.Time // wall time of the last successful round
	everSeen   bool
	pid        ids.ProcessID
	pidKnown   bool
	samples    []Sample
	lwg        rtnet.DebugLWG
	haveLWG    bool
	ringTotal  float64 // trace_ring_events_total at last scrape
	ringDrops  float64 // trace_ring_dropped_total at last scrape
	lastEvents int     // events merged from this node's ring last round
}

// Collector polls a set of nodes and maintains the merged cluster view.
// All exported methods are safe for concurrent use (the HTTP handlers
// read while the scrape loop writes).
type Collector struct {
	cfg Config

	mu     sync.Mutex
	nodes  []*nodeState
	events map[string]trace.Event // deduped cross-node event set
	ops    []trace.Op             // stitched from events after each round
	rounds int64
}

// New creates a collector for the target list.
func New(cfg Config) *Collector {
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 5 * time.Second}
	}
	if cfg.MaxEvents <= 0 {
		cfg.MaxEvents = 131072
	}
	c := &Collector{cfg: cfg, events: make(map[string]trace.Event)}
	for _, url := range cfg.Targets {
		name := strings.TrimPrefix(strings.TrimPrefix(url, "http://"), "https://")
		c.nodes = append(c.nodes, &nodeState{url: strings.TrimRight(url, "/"), name: name})
	}
	return c
}

// Run scrapes every Interval until the context is cancelled. The first
// round runs immediately.
func (c *Collector) Run(ctx context.Context) {
	t := time.NewTicker(c.cfg.Interval)
	defer t.Stop()
	for {
		c.ScrapeOnce(ctx)
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// ScrapeOnce runs one scrape round across all targets (concurrently)
// and folds the results into the merged view.
func (c *Collector) ScrapeOnce(ctx context.Context) {
	var wg sync.WaitGroup
	results := make([]scrapeResult, len(c.nodes))
	c.mu.Lock()
	urls := make([]string, len(c.nodes))
	for i, n := range c.nodes {
		urls[i] = n.url
	}
	c.mu.Unlock()
	for i, url := range urls {
		wg.Add(1)
		go func(i int, url string) {
			defer wg.Done()
			results[i] = c.scrapeNode(ctx, url)
		}(i, url)
	}
	wg.Wait()
	c.fold(results)
}

// scrapeResult is everything one round learned from one node.
type scrapeResult struct {
	err     error
	samples []Sample
	lwg     rtnet.DebugLWG
	haveLWG bool
	events  []trace.Event
}

func (c *Collector) scrapeNode(ctx context.Context, base string) scrapeResult {
	var res scrapeResult
	body, err := c.get(ctx, base+"/metrics")
	if err != nil {
		res.err = err
		return res
	}
	res.samples, err = ParseText(strings.NewReader(string(body)))
	if err != nil {
		res.err = err
		return res
	}
	// /debug/lwg and /debug/trace are best-effort refinements: a node
	// serving metrics but not tracing still counts as reachable.
	if body, err := c.get(ctx, base+"/debug/lwg"); err == nil {
		if json.Unmarshal(body, &res.lwg) == nil {
			res.haveLWG = true
		}
	}
	if body, err := c.get(ctx, base+"/debug/trace"); err == nil {
		if evs, err := trace.ParseJSONL(strings.NewReader(string(body))); err == nil {
			res.events = evs
		}
	}
	return res
}

func (c *Collector) get(ctx context.Context, url string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	// The 64 MiB bound keeps a misbehaving node from OOMing the collector.
	return io.ReadAll(io.LimitReader(resp.Body, 64<<20))
}

// fold applies one round's results to the merged state.
func (c *Collector) fold(results []scrapeResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rounds++
	now := time.Now()
	merged := 0
	for i, res := range results {
		n := c.nodes[i]
		if res.err != nil {
			n.reachable = false
			n.lastErr = res.err.Error()
			continue
		}
		n.reachable, n.lastErr, n.lastOK, n.everSeen = true, "", now, true
		n.samples = res.samples
		for _, s := range res.samples {
			switch s.Name {
			case "trace_ring_events_total":
				n.ringTotal = s.Value
			case "trace_ring_dropped_total":
				n.ringDrops = s.Value
			}
		}
		if res.haveLWG {
			n.lwg = res.lwg
			n.haveLWG = true
			n.pid, n.pidKnown = res.lwg.PID, true
			n.name = n.pid.String()
		}
		n.lastEvents = len(res.events)
		for _, e := range res.events {
			k := eventKey(e)
			if _, dup := c.events[k]; !dup {
				c.events[k] = e
				merged++
			}
		}
	}
	c.shedOldEvents()
	all := make([]trace.Event, 0, len(c.events))
	for _, e := range c.events {
		all = append(all, e)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].At != all[j].At {
			return all[i].At < all[j].At
		}
		return all[i].Node < all[j].Node
	})
	c.ops = trace.Stitch(all)
	if c.cfg.Logf != nil {
		up := 0
		for _, n := range c.nodes {
			if n.reachable {
				up++
			}
		}
		c.cfg.Logf("round %d: %d/%d nodes up, +%d events (%d total), %d ops",
			c.rounds, up, len(c.nodes), merged, len(c.events), len(c.ops))
	}
}

// shedOldEvents enforces the MaxEvents bound, dropping the oldest
// events by virtual time first. Shedding can orphan the early legs of a
// long-lived op; the ring drop counters on /cluster/metrics make that
// diagnosable.
func (c *Collector) shedOldEvents() {
	over := len(c.events) - c.cfg.MaxEvents
	if over <= 0 {
		return
	}
	type ke struct {
		k string
		e trace.Event
	}
	all := make([]ke, 0, len(c.events))
	for k, e := range c.events {
		all = append(all, ke{k, e})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].e.At < all[j].e.At })
	for _, x := range all[:over] {
		delete(c.events, x.k)
	}
}

// eventKey is the dedup identity of a ring event across repeated
// scrapes of overlapping snapshots. Every field participates: two
// legitimately distinct events never collide, and the same event
// scraped twice always does.
func eventKey(e trace.Event) string {
	return fmt.Sprintf("%d|%d|%s|%s|%s|%s|%v|%v|%v|%d|%s|%s|%d",
		int64(e.At), int32(e.Node), e.Layer, e.What, e.Text, e.Group,
		e.View, e.Members, e.Parents, int32(e.Src), e.Data, e.Ref, e.Step)
}

// Ops returns the stitched cross-node operations as of the last round.
func (c *Collector) Ops() []trace.Op {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]trace.Op(nil), c.ops...)
}

// Events returns the merged deduped event set, time-ordered.
func (c *Collector) Events() []trace.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	all := make([]trace.Event, 0, len(c.events))
	for _, e := range c.events {
		all = append(all, e)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].At != all[j].At {
			return all[i].At < all[j].At
		}
		return all[i].Node < all[j].Node
	})
	return all
}

// Rounds returns the number of completed scrape rounds.
func (c *Collector) Rounds() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rounds
}

// NodeHealth is one node's row in the health report.
type NodeHealth struct {
	Name      string `json:"name"`
	URL       string `json:"url"`
	PID       int32  `json:"pid,omitempty"`
	Reachable bool   `json:"reachable"`
	// StaleSeconds is the age of the data shown for an unreachable node
	// that was seen before (last-known-state degradation); 0 when fresh.
	StaleSeconds float64 `json:"stale_seconds,omitempty"`
	Error        string  `json:"error,omitempty"`
	RingDropped  float64 `json:"trace_ring_dropped,omitempty"`
}

// Partition is one connected component of the cluster as implied by LWG
// view memberships.
type Partition struct {
	Members []string `json:"members"` // pid renderings, sorted
	LWGs    []string `json:"lwgs"`    // groups whose current views live here
}

// Health is the /cluster/health JSON document.
type Health struct {
	Rounds     int64        `json:"rounds"`
	Nodes      []NodeHealth `json:"nodes"`
	Partitions []Partition  `json:"partitions"`
	// Disagreements lists LWGs whose reachable members report different
	// current views — the signature of a partition mid-reconciliation.
	Disagreements []string `json:"disagreements,omitempty"`
}

// HealthSnapshot derives the partition-aware health view from the last
// known state of every node. Unreachable nodes degrade to their last
// snapshot (marked stale); they still contribute membership evidence,
// because an unreachable node is exactly the one whose partition you
// want mapped.
func (c *Collector) HealthSnapshot() Health {
	c.mu.Lock()
	defer c.mu.Unlock()
	h := Health{Rounds: c.rounds}
	now := time.Now()

	// Node rows.
	for _, n := range c.nodes {
		row := NodeHealth{Name: n.name, URL: n.url, Reachable: n.reachable,
			Error: n.lastErr, RingDropped: n.ringDrops}
		if n.pidKnown {
			row.PID = int32(n.pid)
		}
		if !n.reachable && n.everSeen {
			row.StaleSeconds = now.Sub(n.lastOK).Seconds()
		}
		h.Nodes = append(h.Nodes, row)
	}

	// Union-find over process ids: every LWG view's membership is an
	// edge set (those members see each other), and every scraped node is
	// at least its own singleton.
	uf := newUnionFind()
	lwgHome := make(map[string]ids.ProcessID) // LWG → representative after unions
	lwgViews := make(map[string]map[string]bool)
	for _, n := range c.nodes {
		if !n.haveLWG {
			continue
		}
		uf.add(n.lwg.PID)
		for _, e := range n.lwg.LWGs {
			if e.View != "" {
				if lwgViews[e.LWG] == nil {
					lwgViews[e.LWG] = make(map[string]bool)
				}
				lwgViews[e.LWG][e.View] = true
			}
			var first ids.ProcessID
			for i, ms := range e.Members {
				p, ok := parsePID(ms)
				if !ok {
					continue
				}
				uf.add(p)
				if i == 0 {
					first = p
				} else {
					uf.union(first, p)
				}
			}
			if len(e.Members) > 0 {
				if p, ok := parsePID(e.Members[0]); ok {
					lwgHome[e.LWG] = p
				}
			}
		}
	}

	// Components → partitions.
	comp := make(map[ids.ProcessID][]ids.ProcessID)
	for _, p := range uf.all() {
		root := uf.find(p)
		comp[root] = append(comp[root], p)
	}
	roots := make([]ids.ProcessID, 0, len(comp))
	for r := range comp {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	rootLWGs := make(map[ids.ProcessID][]string)
	for lwg, p := range lwgHome {
		rootLWGs[uf.find(p)] = append(rootLWGs[uf.find(p)], lwg)
	}
	for _, r := range roots {
		members := comp[r]
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		part := Partition{}
		for _, m := range members {
			part.Members = append(part.Members, m.String())
		}
		part.LWGs = rootLWGs[r]
		sort.Strings(part.LWGs)
		h.Partitions = append(h.Partitions, part)
	}

	// Disagreements: one LWG, several current views across nodes.
	for lwg, views := range lwgViews {
		if len(views) > 1 {
			vs := make([]string, 0, len(views))
			for v := range views {
				vs = append(vs, v)
			}
			sort.Strings(vs)
			h.Disagreements = append(h.Disagreements,
				fmt.Sprintf("%s: views %s", lwg, strings.Join(vs, " vs ")))
		}
	}
	sort.Strings(h.Disagreements)
	return h
}

// WriteClusterMetrics renders the aggregated exposition: the
// collector's own cluster_* instruments, one node_stale flag per node,
// then every node's samples re-emitted with a node label attached.
// Unreachable nodes keep exporting their last-known samples (their
// node_stale flag says so) rather than vanishing from dashboards
// mid-partition.
func (c *Collector) WriteClusterMetrics(w io.Writer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var b strings.Builder
	up := 0
	for _, n := range c.nodes {
		if n.reachable {
			up++
		}
	}
	fmt.Fprintf(&b, "# TYPE cluster_scrape_rounds_total counter\ncluster_scrape_rounds_total %d\n", c.rounds)
	fmt.Fprintf(&b, "# TYPE cluster_nodes_total gauge\ncluster_nodes_total %d\n", len(c.nodes))
	fmt.Fprintf(&b, "# TYPE cluster_nodes_reachable gauge\ncluster_nodes_reachable %d\n", up)
	fmt.Fprintf(&b, "# TYPE cluster_events_merged gauge\ncluster_events_merged %d\n", len(c.events))
	fmt.Fprintf(&b, "# TYPE cluster_ops_stitched gauge\ncluster_ops_stitched %d\n", len(c.ops))
	b.WriteString("# TYPE node_stale gauge\n")
	for _, n := range c.nodes {
		if !n.everSeen {
			continue
		}
		stale := 0
		if !n.reachable {
			stale = 1
		}
		fmt.Fprintf(&b, "%s %d\n", "node_stale"+Sample{Labels: []metrics.Label{metrics.L("node", n.name)}}.labelString(), stale)
	}
	for _, n := range c.nodes {
		if !n.everSeen {
			continue
		}
		for _, s := range n.samples {
			labels := append(append([]metrics.Label(nil), s.Labels...), metrics.L("node", n.name))
			sort.Slice(labels, func(i, j int) bool { return labels[i].Key < labels[j].Key })
			fmt.Fprintf(&b, "%s%s %v\n", s.Name, Sample{Labels: labels}.labelString(), s.Value)
		}
	}
	_, _ = io.WriteString(w, b.String())
}

// parsePID inverts the "p<N>" process-id rendering.
func parsePID(s string) (ids.ProcessID, bool) {
	if !strings.HasPrefix(s, "p") {
		return 0, false
	}
	var n int32
	if _, err := fmt.Sscanf(s[1:], "%d", &n); err != nil {
		return 0, false
	}
	return ids.ProcessID(n), true
}

// unionFind is a plain disjoint-set over process ids.
type unionFind struct {
	parent map[ids.ProcessID]ids.ProcessID
}

func newUnionFind() *unionFind {
	return &unionFind{parent: make(map[ids.ProcessID]ids.ProcessID)}
}

func (u *unionFind) add(p ids.ProcessID) {
	if _, ok := u.parent[p]; !ok {
		u.parent[p] = p
	}
}

func (u *unionFind) find(p ids.ProcessID) ids.ProcessID {
	u.add(p)
	for u.parent[p] != p {
		u.parent[p] = u.parent[u.parent[p]]
		p = u.parent[p]
	}
	return p
}

func (u *unionFind) union(a, b ids.ProcessID) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		if rb < ra {
			ra, rb = rb, ra
		}
		u.parent[rb] = ra
	}
}

func (u *unionFind) all() []ids.ProcessID {
	out := make([]ids.ProcessID, 0, len(u.parent))
	for p := range u.parent {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

package netsim

import (
	"testing"
	"time"

	"plwg/internal/sim"
)

type rx struct {
	from NodeID
	addr Addr
	msg  Message
	at   sim.Time
}

type recorder struct {
	s    *sim.Sim
	msgs []rx
}

func (r *recorder) handler() Handler {
	return func(from NodeID, addr Addr, msg Message) {
		r.msgs = append(r.msgs, rx{from: from, addr: addr, msg: msg, at: r.s.Now()})
	}
}

func testNet(t *testing.T) (*sim.Sim, *Network, map[NodeID]*recorder) {
	t.Helper()
	s := sim.New(7)
	nw := New(s, DefaultParams())
	recs := make(map[NodeID]*recorder)
	for id := NodeID(0); id < 4; id++ {
		r := &recorder{s: s}
		recs[id] = r
		nw.AddNode(id, r.handler())
	}
	return s, nw, recs
}

func TestMulticastDeliversToSubscribersOnly(t *testing.T) {
	s, nw, recs := testNet(t)
	nw.Subscribe(0, "g")
	nw.Subscribe(1, "g")
	nw.Subscribe(2, "other")

	nw.Multicast(0, "g", RawMessage{Bytes: 100})
	s.Run()

	if len(recs[0].msgs) != 1 {
		t.Errorf("sender loopback: got %d deliveries, want 1", len(recs[0].msgs))
	}
	if len(recs[1].msgs) != 1 {
		t.Errorf("subscriber: got %d deliveries, want 1", len(recs[1].msgs))
	}
	if len(recs[2].msgs) != 0 {
		t.Errorf("non-subscriber of addr got %d deliveries", len(recs[2].msgs))
	}
	if len(recs[3].msgs) != 0 {
		t.Errorf("unsubscribed node got %d deliveries", len(recs[3].msgs))
	}
}

func TestUnicast(t *testing.T) {
	s, nw, recs := testNet(t)
	nw.Unicast(0, 3, "ep", RawMessage{Bytes: 10})
	s.Run()
	if len(recs[3].msgs) != 1 || recs[3].msgs[0].from != 0 {
		t.Fatalf("unicast not delivered: %+v", recs[3].msgs)
	}
	for id := NodeID(0); id < 3; id++ {
		if len(recs[id].msgs) != 0 {
			t.Errorf("node %v received a unicast not addressed to it", id)
		}
	}
}

func TestBusSerialization(t *testing.T) {
	// Two frames sent at the same instant must serialize on the bus: the
	// second arrives one transmission time after the first.
	s, nw, recs := testNet(t)
	nw.Subscribe(1, "g")
	nw.Multicast(0, "g", RawMessage{Bytes: 1000})
	nw.Multicast(2, "g", RawMessage{Bytes: 1000})
	s.Run()

	if len(recs[1].msgs) != 2 {
		t.Fatalf("got %d deliveries, want 2", len(recs[1].msgs))
	}
	frame := (1000 + nw.Params().FrameOverheadBytes) * 8
	tx := time.Duration(float64(frame) / nw.Params().BandwidthBps * float64(time.Second))
	gap := recs[1].msgs[1].at.Sub(recs[1].msgs[0].at)
	// The receiver CPU may also space deliveries; the gap must be at
	// least one transmission time.
	if gap < tx {
		t.Errorf("frames did not serialize: gap %v < tx %v", gap, tx)
	}
}

func TestPartitionBlocksDelivery(t *testing.T) {
	s, nw, recs := testNet(t)
	nw.Subscribe(1, "g")
	nw.Subscribe(2, "g")
	nw.SetPartitions([]NodeID{0, 1}, []NodeID{2, 3})

	nw.Multicast(0, "g", RawMessage{Bytes: 100})
	s.Run()

	if len(recs[1].msgs) != 1 {
		t.Errorf("same-side node: got %d deliveries, want 1", len(recs[1].msgs))
	}
	if len(recs[2].msgs) != 0 {
		t.Errorf("cross-partition node received %d frames", len(recs[2].msgs))
	}
	if !nw.Reachable(0, 1) || nw.Reachable(0, 2) {
		t.Error("Reachable inconsistent with partition")
	}
}

func TestHealRestoresDelivery(t *testing.T) {
	s, nw, recs := testNet(t)
	nw.Subscribe(2, "g")
	nw.SetPartitions([]NodeID{0, 1}, []NodeID{2, 3})
	nw.Heal()
	nw.Multicast(0, "g", RawMessage{Bytes: 100})
	s.Run()
	if len(recs[2].msgs) != 1 {
		t.Errorf("after heal: got %d deliveries, want 1", len(recs[2].msgs))
	}
}

func TestInFlightFrameAtPartitionTime(t *testing.T) {
	// A frame sent just before the partition is evaluated at delivery
	// time: it must not cross the new boundary. This is the divergence
	// window the flush protocol exists for.
	s, nw, recs := testNet(t)
	nw.Subscribe(1, "g")
	nw.Subscribe(2, "g")
	nw.Multicast(0, "g", RawMessage{Bytes: 1000})
	// Partition strikes while the frame is in flight.
	s.After(time.Microsecond, func() {
		nw.SetPartitions([]NodeID{0, 1}, []NodeID{2, 3})
	})
	s.Run()
	if len(recs[1].msgs) != 1 {
		t.Errorf("same-side delivery suppressed: %d", len(recs[1].msgs))
	}
	if len(recs[2].msgs) != 0 {
		t.Errorf("cross-partition in-flight frame delivered: %d", len(recs[2].msgs))
	}
}

func TestCrashedNodeSendsAndReceivesNothing(t *testing.T) {
	s, nw, recs := testNet(t)
	nw.Subscribe(1, "g")
	nw.Crash(1)
	nw.Multicast(0, "g", RawMessage{Bytes: 100})
	nw.Crash(2)
	nw.Multicast(2, "g", RawMessage{Bytes: 100}) // silently dropped
	s.Run()
	if len(recs[1].msgs) != 0 {
		t.Errorf("crashed node received %d frames", len(recs[1].msgs))
	}
	st := nw.Stats()
	if st.Frames != 1 {
		t.Errorf("crashed sender put a frame on the bus: frames = %d", st.Frames)
	}
}

func TestStatsAccounting(t *testing.T) {
	s, nw, _ := testNet(t)
	nw.Subscribe(1, "g")
	nw.Subscribe(2, "g")
	nw.Multicast(0, "g", RawMessage{Bytes: 500, Label: "data"})
	nw.Multicast(1, "g", RawMessage{Bytes: 64, Label: "ack"})
	s.Run()

	st := nw.Stats()
	if st.Frames != 2 {
		t.Errorf("Frames = %d, want 2", st.Frames)
	}
	wantBytes := int64(500 + 64 + 2*nw.Params().FrameOverheadBytes)
	if st.Bytes != wantBytes {
		t.Errorf("Bytes = %d, want %d", st.Bytes, wantBytes)
	}
	if st.ByKind["data"] != 1 || st.ByKind["ack"] != 1 {
		t.Errorf("ByKind = %v", st.ByKind)
	}
	// First frame: subscribers 1,2 (sender 0 not subscribed) = 2;
	// second: subscribers 1 (loopback), 2 = 2.
	if st.Delivered != 4 {
		t.Errorf("Delivered = %d, want 4", st.Delivered)
	}
	nw.ResetStats()
	if st := nw.Stats(); st.Frames != 0 || len(st.ByKind) != 0 {
		t.Errorf("ResetStats did not clear counters: %+v", st)
	}
}

func TestReceiverCPUQueueing(t *testing.T) {
	// A burst of frames must space out at the receiver by at least the
	// per-message CPU cost: the receiver processes serially.
	s := sim.New(1)
	p := DefaultParams()
	p.CPUPerMsg = 5 * time.Millisecond // dominate tx time
	nw := New(s, p)
	r := &recorder{s: s}
	nw.AddNode(0, nil)
	nw.AddNode(1, r.handler())
	nw.Subscribe(1, "g")
	for i := 0; i < 3; i++ {
		nw.Multicast(0, "g", RawMessage{Bytes: 10})
	}
	s.Run()
	if len(r.msgs) != 3 {
		t.Fatalf("got %d deliveries, want 3", len(r.msgs))
	}
	for i := 1; i < 3; i++ {
		gap := r.msgs[i].at.Sub(r.msgs[i-1].at)
		if gap < p.CPUPerMsg {
			t.Errorf("delivery %d gap %v < CPU cost %v", i, gap, p.CPUPerMsg)
		}
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	s, nw, recs := testNet(t)
	nw.Subscribe(1, "g")
	nw.Unsubscribe(1, "g")
	nw.Multicast(0, "g", RawMessage{Bytes: 10})
	s.Run()
	if len(recs[1].msgs) != 0 {
		t.Errorf("unsubscribed node received %d frames", len(recs[1].msgs))
	}
	if nw.Subscribed(1, "g") {
		t.Error("Subscribed must be false after Unsubscribe")
	}
}

func TestDeterministicDeliveryOrder(t *testing.T) {
	run := func() []NodeID {
		s := sim.New(3)
		nw := New(s, DefaultParams())
		var order []NodeID
		for id := NodeID(0); id < 4; id++ {
			id := id
			nw.AddNode(id, func(NodeID, Addr, Message) { order = append(order, id) })
			nw.Subscribe(id, "g")
		}
		for i := 0; i < 5; i++ {
			nw.Multicast(NodeID(i%4), "g", RawMessage{Bytes: 200})
		}
		s.Run()
		return order
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic delivery count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic delivery order at %d", i)
		}
	}
}

func TestThroughputBoundedByBandwidth(t *testing.T) {
	// Saturating sender: delivered payload bytes per second must not
	// exceed the bus bandwidth.
	s := sim.New(1)
	p := DefaultParams()
	nw := New(s, p)
	var got int64
	nw.AddNode(0, nil)
	nw.AddNode(1, func(_ NodeID, _ Addr, m Message) { got += int64(m.WireSize()) })
	nw.Subscribe(1, "g")

	const msgSize = 1024
	tk := s.Every(100*time.Microsecond, func() {
		nw.Multicast(0, "g", RawMessage{Bytes: msgSize}) // ~82 Mbps offered
	})
	s.RunFor(time.Second)
	tk.Stop()

	gotBps := float64(got*8) / 1.0
	if gotBps > p.BandwidthBps {
		t.Errorf("delivered %v bps exceeds bus bandwidth %v", gotBps, p.BandwidthBps)
	}
	// It should also be close to saturation (> 80%).
	if gotBps < 0.8*p.BandwidthBps {
		t.Errorf("delivered only %v bps of a saturated %v bus", gotBps, p.BandwidthBps)
	}
}

package netsim

import (
	"testing"

	"plwg/internal/sim"
)

func TestMuxDispatchByPrefix(t *testing.T) {
	s := sim.New(1)
	nw := New(s, DefaultParams())
	mux := NewMux()
	var hwgGot, nsGot []Addr
	mux.Handle("hwg", func(_ NodeID, addr Addr, _ Message) { hwgGot = append(hwgGot, addr) })
	mux.Handle("ns", func(_ NodeID, addr Addr, _ Message) { nsGot = append(nsGot, addr) })
	nw.AddNode(0, nil)
	nw.AddNode(1, mux.Handler())
	nw.Subscribe(1, "hwg/17")
	nw.Subscribe(1, "ns")
	nw.Subscribe(1, "other/1")

	nw.Multicast(0, "hwg/17", RawMessage{Bytes: 10})
	nw.Multicast(0, "ns", RawMessage{Bytes: 10})
	nw.Multicast(0, "other/1", RawMessage{Bytes: 10}) // no handler: dropped
	nw.Unicast(0, 1, "ns", RawMessage{Bytes: 10})
	s.Run()

	if len(hwgGot) != 1 || hwgGot[0] != "hwg/17" {
		t.Errorf("hwg handler got %v", hwgGot)
	}
	if len(nsGot) != 2 {
		t.Errorf("ns handler got %v", nsGot)
	}
}

func TestMuxExactPrefixBoundaries(t *testing.T) {
	s := sim.New(1)
	nw := New(s, DefaultParams())
	mux := NewMux()
	var got int
	mux.Handle("hwg", func(NodeID, Addr, Message) { got++ })
	nw.AddNode(0, nil)
	nw.AddNode(1, mux.Handler())
	// "hwgx" must NOT match the "hwg" prefix (no separator).
	nw.Subscribe(1, "hwgx")
	nw.Multicast(0, "hwgx", RawMessage{Bytes: 1})
	s.Run()
	if got != 0 {
		t.Error(`address "hwgx" must not dispatch to prefix "hwg"`)
	}
}

// TestMuxEdgeCases drives the mux handler directly (no network) through
// the address-shape corner cases.
func TestMuxEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		addr Addr
		want string // handler that must fire; "" means dropped
	}{
		{"bare prefix", "hwg", "hwg"},
		{"prefix with rest", "hwg/17", "hwg"},
		{"rest with nested separators", "ns/a/b", "ns"},
		{"longer address is not a prefix match", "hwgx", ""},
		{"empty address", "", ""},
		{"unregistered prefix", "other/1", ""},
		{"bare separator", "/", ""},
		{"empty prefix with rest", "/17", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mux := NewMux()
			got := ""
			mux.Handle("hwg", func(NodeID, Addr, Message) { got = "hwg" })
			mux.Handle("ns", func(NodeID, Addr, Message) { got = "ns" })
			mux.Handler()(0, tc.addr, RawMessage{Bytes: 1})
			if got != tc.want {
				t.Errorf("addr %q dispatched to %q, want %q", tc.addr, got, tc.want)
			}
		})
	}
}

func TestPointToPointModeParallelism(t *testing.T) {
	// Two senders transmitting simultaneously: on the shared bus their
	// frames serialize; on point-to-point links they arrive in parallel.
	arrivalSpread := func(p2p bool) sim.Time {
		s := sim.New(1)
		params := DefaultParams()
		params.PointToPoint = p2p
		params.CPUPerMsg = 0
		params.CPUPerKB = 0
		nw := New(s, params)
		var times []sim.Time
		nw.AddNode(0, nil)
		nw.AddNode(1, nil)
		nw.AddNode(2, func(NodeID, Addr, Message) { times = append(times, s.Now()) })
		nw.Subscribe(2, "g")
		nw.Multicast(0, "g", RawMessage{Bytes: 5000})
		nw.Multicast(1, "g", RawMessage{Bytes: 5000})
		s.Run()
		if len(times) != 2 {
			t.Fatalf("got %d deliveries", len(times))
		}
		return times[1] - times[0]
	}
	busSpread := arrivalSpread(false)
	p2pSpread := arrivalSpread(true)
	if busSpread <= 0 {
		t.Errorf("shared bus must serialize: spread %v", busSpread)
	}
	if p2pSpread != 0 {
		t.Errorf("point-to-point must deliver in parallel: spread %v", p2pSpread)
	}
}

func TestPointToPointSerializesPerSender(t *testing.T) {
	// One sender's frames still serialize on its own NIC.
	s := sim.New(1)
	params := DefaultParams()
	params.PointToPoint = true
	params.CPUPerMsg = 0
	params.CPUPerKB = 0
	nw := New(s, params)
	var times []sim.Time
	nw.AddNode(0, nil)
	nw.AddNode(1, func(NodeID, Addr, Message) { times = append(times, s.Now()) })
	nw.Subscribe(1, "g")
	nw.Multicast(0, "g", RawMessage{Bytes: 5000})
	nw.Multicast(0, "g", RawMessage{Bytes: 5000})
	s.Run()
	if len(times) != 2 || times[1] == times[0] {
		t.Errorf("per-sender NIC must serialize its own frames: %v", times)
	}
}

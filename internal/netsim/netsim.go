// Package netsim simulates the network substrate the paper's experiments
// ran on: a set of workstations attached to a single shared 10 Mbps
// Ethernet segment with IP-multicast (Section 3.3). The model captures the
// three first-order effects behind the paper's performance results:
//
//   - bus contention: all frames — data, acknowledgements, heartbeats and
//     flush traffic — serialize on one shared medium, so protocol overhead
//     in one group delays traffic of every other group;
//   - receiver CPU: every subscribed node pays a per-message processing
//     cost, so a process that receives (and filters out) traffic of
//     unrelated light-weight groups loses capacity — the paper's
//     "interference" effect;
//   - partitions: the node set can be split into components; frames do not
//     cross component boundaries, and components can later be healed.
//
// The simulation is deterministic: delivery order is fixed by the bus
// serialization and the event engine's FIFO tie-breaking, and any jitter is
// drawn from the engine's seeded random source.
package netsim

import (
	"fmt"
	"time"

	"plwg/internal/ids"
	"plwg/internal/sim"
)

// NodeID identifies a network node; nodes host exactly one process, so the
// node identifier is the process identifier.
type NodeID = ids.ProcessID

// Addr is a multicast address. Protocol layers derive addresses from group
// identifiers (one address per heavy-weight group plus discovery and naming
// addresses).
type Addr string

// Message is anything that can be sent on the network. WireSize returns the
// payload size in bytes; netsim adds per-frame header overhead on top.
type Message interface {
	WireSize() int
}

// Kinder is optionally implemented by messages to label per-kind traffic
// accounting (e.g. "data", "ack", "heartbeat", "flush").
type Kinder interface {
	Kind() string
}

// Handler receives delivered messages on a node.
type Handler func(from NodeID, addr Addr, msg Message)

// Transport is the network surface the protocol stacks (vsync, naming,
// core) are written against. The simulated Network implements it; so
// does the real-time UDP transport (internal/rtnet), which is how the
// same protocol code runs both under the deterministic simulator and on
// a real network.
type Transport interface {
	// Sim returns the event engine providing the clock and timers. A
	// real-time transport drives its engine from wall-clock time.
	Sim() *sim.Sim
	// Multicast sends to every subscriber of addr (including the sender
	// if subscribed).
	Multicast(from NodeID, addr Addr, msg Message)
	// Unicast sends to one node; addr names the protocol endpoint for
	// dispatch and needs no subscription.
	Unicast(from, to NodeID, addr Addr, msg Message)
	// Subscribe and Unsubscribe manage addr membership of a local node.
	Subscribe(id NodeID, addr Addr)
	Unsubscribe(id NodeID, addr Addr)
}

// Params configures the network model. The defaults (see DefaultParams)
// approximate the paper's testbed: SparcStation-class machines on a loaded
// 10 Mbps shared Ethernet.
type Params struct {
	// BandwidthBps is the shared bus bandwidth in bits per second.
	BandwidthBps float64
	// FrameOverheadBytes is added to every frame (Ethernet + IP + UDP
	// headers).
	FrameOverheadBytes int
	// PropDelay is the propagation delay from bus to receiver.
	PropDelay time.Duration
	// CPUPerMsg is the fixed receive-processing cost per message at each
	// receiver. Receivers process messages serially, so a node flooded
	// with unrelated traffic queues behind this cost — the interference
	// effect.
	CPUPerMsg time.Duration
	// CPUPerKB is the additional receive-processing cost per kilobyte.
	CPUPerKB time.Duration
	// Jitter, when non-zero, adds a uniform random [0, Jitter) delay per
	// delivery, drawn from the simulation's seeded random source.
	Jitter time.Duration
	// LossRate, when non-zero, drops each per-receiver delivery with the
	// given probability (drawn from the seeded random source) — the
	// lossy-datagram behaviour of a real UDP network. The protocol
	// stacks repair losses via negative acknowledgements and periodic
	// retries. Self-deliveries (multicast loopback) are never lost:
	// a real stack delivers locally without touching the wire, and the
	// protocols rely on "the sender holds its own message".
	LossRate float64
	// PointToPoint replaces the shared-bus model with independent
	// full-duplex links: frames serialize per sending NIC instead of on
	// one medium, so aggregate bandwidth scales with the number of
	// senders. This is an ablation switch — the paper's interference
	// effect depends on the shared medium — not a realistic model of
	// the paper's testbed.
	PointToPoint bool
}

// DefaultParams returns parameters approximating the paper's testbed.
func DefaultParams() Params {
	return Params{
		BandwidthBps:       10e6, // 10 Mbps shared Ethernet
		FrameOverheadBytes: 46,   // Ethernet + IP + UDP headers
		PropDelay:          50 * time.Microsecond,
		CPUPerMsg:          120 * time.Microsecond,
		CPUPerKB:           80 * time.Microsecond,
		Jitter:             0,
	}
}

// Stats accumulates traffic counters.
type Stats struct {
	// Frames is the number of frames placed on the bus.
	Frames int64
	// Bytes is the total bytes (payload + overhead) placed on the bus.
	Bytes int64
	// Delivered is the number of per-receiver deliveries.
	Delivered int64
	// Dropped counts deliveries suppressed by partitions or crashes.
	Dropped int64
	// BusBusy is the cumulative time the bus spent transmitting.
	BusBusy time.Duration
	// ByKind counts frames per message kind (for messages implementing
	// Kinder).
	ByKind map[string]int64
	// BytesByKind accumulates frame bytes (payload + overhead) per
	// message kind, so experiments can attribute bus load to a protocol.
	BytesByKind map[string]int64
}

type node struct {
	id        NodeID
	handler   Handler
	subs      map[Addr]bool
	cpuFreeAt sim.Time
	nicFreeAt sim.Time // PointToPoint: per-sender serialization
	crashed   bool
}

// Network is the simulated shared-bus network.
type Network struct {
	sim       *sim.Sim
	params    Params
	nodes     map[NodeID]*node
	order     []NodeID // deterministic iteration order (insertion order)
	partition map[NodeID]int
	busFreeAt sim.Time
	stats     Stats
}

// New creates a network driven by the given simulation engine.
func New(s *sim.Sim, p Params) *Network {
	if p.BandwidthBps <= 0 {
		p.BandwidthBps = DefaultParams().BandwidthBps
	}
	return &Network{
		sim:       s,
		params:    p,
		nodes:     make(map[NodeID]*node),
		partition: make(map[NodeID]int),
		stats: Stats{
			ByKind:      make(map[string]int64),
			BytesByKind: make(map[string]int64),
		},
	}
}

// Sim returns the engine driving the network.
func (n *Network) Sim() *sim.Sim { return n.sim }

// Params returns the network parameters.
func (n *Network) Params() Params { return n.params }

// AddNode registers a node. Adding an existing node replaces its handler.
func (n *Network) AddNode(id NodeID, h Handler) {
	if nd, ok := n.nodes[id]; ok {
		nd.handler = h
		return
	}
	n.nodes[id] = &node{id: id, handler: h, subs: make(map[Addr]bool)}
	n.order = append(n.order, id)
}

// Subscribe adds the node to the multicast address.
func (n *Network) Subscribe(id NodeID, addr Addr) {
	if nd, ok := n.nodes[id]; ok {
		nd.subs[addr] = true
	}
}

// Unsubscribe removes the node from the multicast address.
func (n *Network) Unsubscribe(id NodeID, addr Addr) {
	if nd, ok := n.nodes[id]; ok {
		delete(nd.subs, addr)
	}
}

// Subscribed reports whether the node is subscribed to addr.
func (n *Network) Subscribed(id NodeID, addr Addr) bool {
	nd, ok := n.nodes[id]
	return ok && nd.subs[addr]
}

// Crash marks a node as crashed. A crashed node sends nothing and receives
// nothing; frames already in flight from it are still delivered (they were
// on the wire).
func (n *Network) Crash(id NodeID) {
	if nd, ok := n.nodes[id]; ok {
		nd.crashed = true
	}
}

// Crashed reports whether the node has crashed.
func (n *Network) Crashed(id NodeID) bool {
	nd, ok := n.nodes[id]
	return ok && nd.crashed
}

// SetPartitions splits the network into the given components. Nodes not
// mentioned keep component 0. Frames are delivered only between nodes in
// the same component, evaluated at delivery time — so frames in flight when
// the partition strikes may reach some members and not others, which is
// exactly the divergence virtual synchrony must reconcile.
func (n *Network) SetPartitions(components ...[]NodeID) {
	n.partition = make(map[NodeID]int)
	for i, comp := range components {
		for _, id := range comp {
			n.partition[id] = i + 1
		}
	}
}

// Heal removes all partitions.
func (n *Network) Heal() {
	n.partition = make(map[NodeID]int)
}

// Reachable reports whether a frame from a would currently be delivered
// to b.
func (n *Network) Reachable(a, b NodeID) bool {
	if n.Crashed(a) || n.Crashed(b) {
		return false
	}
	return n.partition[a] == n.partition[b]
}

// Component returns the partition component label of the node.
func (n *Network) Component(id NodeID) int { return n.partition[id] }

// Stats returns a snapshot of the traffic counters.
func (n *Network) Stats() Stats {
	s := n.stats
	s.ByKind = make(map[string]int64, len(n.stats.ByKind))
	for k, v := range n.stats.ByKind {
		s.ByKind[k] = v
	}
	s.BytesByKind = make(map[string]int64, len(n.stats.BytesByKind))
	for k, v := range n.stats.BytesByKind {
		s.BytesByKind[k] = v
	}
	return s
}

// ResetStats zeroes the traffic counters (e.g. after warm-up).
func (n *Network) ResetStats() {
	n.stats = Stats{
		ByKind:      make(map[string]int64),
		BytesByKind: make(map[string]int64),
	}
}

// BusUtilization returns the fraction of the interval [since, now] the bus
// spent transmitting. Note BusBusy accumulates from simulation start.
func (n *Network) BusUtilization(busBusyAtStart time.Duration, since sim.Time) float64 {
	elapsed := n.sim.Now().Sub(since)
	if elapsed <= 0 {
		return 0
	}
	return float64(n.stats.BusBusy-busBusyAtStart) / float64(elapsed)
}

// Multicast places one frame on the bus addressed to addr. Every node
// subscribed to addr and reachable from the sender at delivery time
// receives it, including the sender itself (multicast loopback), so all
// group members observe a uniform delivery order.
func (n *Network) Multicast(from NodeID, addr Addr, msg Message) {
	n.transmit(from, addr, msg, nil)
}

// Unicast places one frame on the bus addressed to a single node. The
// addr names the destination protocol endpoint (for dispatch by Mux); it
// does not require a subscription. Unicast frames share the bus with
// multicast traffic (it is one segment).
func (n *Network) Unicast(from, to NodeID, addr Addr, msg Message) {
	n.transmit(from, addr, msg, &to)
}

func (n *Network) transmit(from NodeID, addr Addr, msg Message, to *NodeID) {
	sender, ok := n.nodes[from]
	if !ok || sender.crashed {
		return
	}
	frameBytes := msg.WireSize() + n.params.FrameOverheadBytes
	tx := time.Duration(float64(frameBytes*8) / n.params.BandwidthBps * float64(time.Second))

	start := n.sim.Now()
	if n.params.PointToPoint {
		if sender.nicFreeAt > start {
			start = sender.nicFreeAt
		}
	} else if n.busFreeAt > start {
		start = n.busFreeAt
	}
	end := start.Add(tx)
	if n.params.PointToPoint {
		sender.nicFreeAt = end
	} else {
		n.busFreeAt = end
	}

	n.stats.Frames++
	n.stats.Bytes += int64(frameBytes)
	n.stats.BusBusy += tx
	if k, ok := msg.(Kinder); ok {
		n.stats.ByKind[k.Kind()]++
		n.stats.BytesByKind[k.Kind()] += int64(frameBytes)
	}

	// Collect receivers in deterministic (insertion) order.
	for _, id := range n.order {
		nd := n.nodes[id]
		if to != nil {
			if id != *to {
				continue
			}
		} else if !nd.subs[addr] {
			continue
		}
		n.scheduleDelivery(from, nd, addr, msg, end)
	}
}

func (n *Network) scheduleDelivery(from NodeID, nd *node, addr Addr, msg Message, wireAt sim.Time) {
	if n.params.LossRate > 0 && from != nd.id && n.sim.Rand().Float64() < n.params.LossRate {
		n.stats.Dropped++
		return
	}
	arrival := wireAt.Add(n.params.PropDelay)
	if n.params.Jitter > 0 {
		arrival = arrival.Add(time.Duration(n.sim.Rand().Int63n(int64(n.params.Jitter))))
	}
	n.sim.At(arrival, func() {
		// Partition and crash status are evaluated at arrival time.
		if !n.Reachable(from, nd.id) {
			n.stats.Dropped++
			return
		}
		procStart := n.sim.Now()
		if nd.cpuFreeAt > procStart {
			procStart = nd.cpuFreeAt
		}
		proc := n.params.CPUPerMsg +
			time.Duration(float64(msg.WireSize())/1024*float64(n.params.CPUPerKB))
		done := procStart.Add(proc)
		nd.cpuFreeAt = done
		n.sim.At(done, func() {
			if nd.crashed {
				n.stats.Dropped++
				return
			}
			n.stats.Delivered++
			if nd.handler != nil {
				nd.handler(from, addr, msg)
			}
		})
	})
}

// RawMessage is a convenience Message for tests and padding traffic.
type RawMessage struct {
	Bytes int
	Label string
	Data  any
}

// WireSize implements Message.
func (m RawMessage) WireSize() int { return m.Bytes }

// Kind implements Kinder.
func (m RawMessage) Kind() string {
	if m.Label == "" {
		return "raw"
	}
	return m.Label
}

// String implements fmt.Stringer.
func (m RawMessage) String() string {
	return fmt.Sprintf("raw(%s,%dB)", m.Kind(), m.Bytes)
}

var _ Transport = (*Network)(nil)

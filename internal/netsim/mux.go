package netsim

import "strings"

// Mux dispatches a node's incoming messages to protocol endpoints by
// address prefix. A node hosts several stacked subsystems (the
// heavy-weight-group layer, the light-weight-group layer, a naming-service
// client and possibly a naming server); each claims an address prefix.
//
// Addresses use the convention "<prefix>/<rest>" (e.g. "hwg/17"); a handler
// registered for "hwg" receives every message whose address is "hwg" or
// starts with "hwg/".
type Mux struct {
	handlers map[string]Handler
}

// NewMux returns an empty mux.
func NewMux() *Mux {
	return &Mux{handlers: make(map[string]Handler)}
}

// Handle registers h for the given address prefix, replacing any previous
// registration.
func (m *Mux) Handle(prefix string, h Handler) {
	m.handlers[prefix] = h
}

// Handler returns the netsim Handler that performs the dispatch. Messages
// with no matching prefix are dropped.
func (m *Mux) Handler() Handler {
	return func(from NodeID, addr Addr, msg Message) {
		prefix := string(addr)
		if i := strings.IndexByte(prefix, '/'); i >= 0 {
			prefix = prefix[:i]
		}
		if h, ok := m.handlers[prefix]; ok {
			h(from, addr, msg)
		}
	}
}

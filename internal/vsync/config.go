package vsync

import "time"

// AckPolicy selects how message stability is tracked.
type AckPolicy int

const (
	// AckPerMessage sends one small acknowledgement frame per delivered
	// data message (Horus-style stability). The acknowledgement traffic
	// is a first-order component of the paper's interference effect,
	// because a group of 8 produces more than twice the stability
	// traffic of a group of 4 per data message.
	AckPerMessage AckPolicy = iota + 1
	// AckPeriodic sends one cumulative acknowledgement vector per
	// AckInterval instead — an ablation of the stability-traffic design
	// choice.
	AckPeriodic
	// AckPiggyback (the default) carries the cumulative acknowledgement
	// vector on every outgoing data message, falling back to one
	// standalone vector per AckInterval only when the member sent no
	// data since the last tick. Busy bidirectional traffic pays no
	// extra frames at all; idle receivers cost one small frame per
	// interval.
	AckPiggyback
)

// OrderingMode selects the delivery order guarantee for group multicasts.
type OrderingMode int

const (
	// OrderingFIFO (the default) delivers messages in per-sender FIFO
	// order; messages from different senders may interleave differently
	// at different members.
	OrderingFIFO OrderingMode = iota + 1
	// OrderingTotal delivers all multicasts of a view in one total order
	// agreed by every member (sequencer-based: the view coordinator
	// assigns order tokens). Messages left un-sequenced when a view
	// changes — e.g. because the sequencer crashed — are delivered in a
	// deterministic residual order before the new view installs, so the
	// total order extends across view changes consistently.
	OrderingTotal
)

// Config holds the protocol timers of the heavy-weight group layer.
type Config struct {
	// HeartbeatInterval is the period of per-member liveness heartbeats.
	HeartbeatInterval time.Duration
	// FDTimeout is the silence threshold after which a peer is suspected.
	FDTimeout time.Duration
	// FDCheckInterval is the period of the suspicion check.
	FDCheckInterval time.Duration
	// FDSuspectMisses is how many consecutive suspicion checks must see
	// the peer silent past FDTimeout before it is suspected. One silent
	// check can be a delay spike (scheduling hiccup, injected jitter, a
	// burst of loss); demanding several in a row keeps spikes shorter
	// than FDTimeout + (FDSuspectMisses-1)*FDCheckInterval from forcing
	// a spurious view change.
	FDSuspectMisses int
	// PresenceInterval is the period of the coordinator's presence
	// announcement, used for peer discovery when partitions heal.
	PresenceInterval time.Duration
	// JoinRetryInterval is the period of the joiner's JOIN-REQ multicast.
	JoinRetryInterval time.Duration
	// JoinTimeout is how long a joiner waits for an existing view before
	// forming a singleton view of its own.
	JoinTimeout time.Duration
	// FlushTimeout bounds one flush round: responders that have not sent
	// FLUSH-OK by then are excluded and the round restarts.
	FlushTimeout time.Duration
	// ResponderTimeout bounds how long a stopped member waits for the
	// new view before giving up on the initiator and resuming.
	ResponderTimeout time.Duration
	// MaxFlushAttempts bounds reconfiguration retries.
	MaxFlushAttempts int
	// AutoStopOk makes the stack acknowledge Stop itself instead of
	// upcalling the user. The light-weight group layer keeps it false so
	// it can quiesce its own groups first (Table 1's Stop/StopOk pair).
	AutoStopOk bool
	// AckPolicy selects the stability scheme (default AckPiggyback).
	AckPolicy AckPolicy
	// AckInterval is the cumulative-acknowledgement period under
	// AckPeriodic, and the idle-receiver fallback period under
	// AckPiggyback.
	AckInterval time.Duration
	// Ordering selects the multicast delivery order (default
	// OrderingFIFO).
	Ordering OrderingMode
	// NackInterval is the period of the loss-repair scan: observed
	// sequence gaps older than one interval are NACKed to their sender.
	NackInterval time.Duration
}

// DefaultConfig returns timers sized for the simulated 10 Mbps testbed:
// failure detection in a few hundred milliseconds, flush rounds bounded
// well above a worst-case bus round-trip.
func DefaultConfig() Config {
	return Config{
		HeartbeatInterval: 100 * time.Millisecond,
		FDTimeout:         350 * time.Millisecond,
		FDCheckInterval:   50 * time.Millisecond,
		FDSuspectMisses:   3,
		PresenceInterval:  250 * time.Millisecond,
		JoinRetryInterval: 150 * time.Millisecond,
		JoinTimeout:       400 * time.Millisecond,
		FlushTimeout:      500 * time.Millisecond,
		ResponderTimeout:  1500 * time.Millisecond,
		MaxFlushAttempts:  5,
		AutoStopOk:        false,
		AckPolicy:         AckPiggyback,
		AckInterval:       50 * time.Millisecond,
		NackInterval:      100 * time.Millisecond,
	}
}

// withDefaults fills zero fields from DefaultConfig.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = d.HeartbeatInterval
	}
	if c.FDTimeout <= 0 {
		c.FDTimeout = d.FDTimeout
	}
	if c.FDCheckInterval <= 0 {
		c.FDCheckInterval = d.FDCheckInterval
	}
	if c.FDSuspectMisses <= 0 {
		c.FDSuspectMisses = d.FDSuspectMisses
	}
	if c.PresenceInterval <= 0 {
		c.PresenceInterval = d.PresenceInterval
	}
	if c.JoinRetryInterval <= 0 {
		c.JoinRetryInterval = d.JoinRetryInterval
	}
	if c.JoinTimeout <= 0 {
		c.JoinTimeout = d.JoinTimeout
	}
	if c.FlushTimeout <= 0 {
		c.FlushTimeout = d.FlushTimeout
	}
	if c.ResponderTimeout <= 0 {
		c.ResponderTimeout = d.ResponderTimeout
	}
	if c.MaxFlushAttempts <= 0 {
		c.MaxFlushAttempts = d.MaxFlushAttempts
	}
	if c.AckPolicy == 0 {
		c.AckPolicy = d.AckPolicy
	}
	if c.AckInterval <= 0 {
		c.AckInterval = d.AckInterval
	}
	if c.Ordering == 0 {
		c.Ordering = OrderingFIFO
	}
	if c.NackInterval <= 0 {
		c.NackInterval = d.NackInterval
	}
	return c
}

package vsync

import (
	"testing"
	"time"

	"plwg/internal/ids"
	"plwg/internal/netsim"
)

// fdCfg pins the failure-detector timers so the tests can reason about
// the suspicion deadline exactly: silence is tolerated up to
// FDTimeout + (FDSuspectMisses-1)*FDCheckInterval = 350 + 100 ms. The
// heartbeat period is kept small so the phase of the last heartbeat
// before a spike adds at most 25ms of extra observed silence.
func fdCfg() Config {
	c := autoCfg()
	c.HeartbeatInterval = 25 * time.Millisecond
	c.FDTimeout = 350 * time.Millisecond
	c.FDCheckInterval = 50 * time.Millisecond
	c.FDSuspectMisses = 3
	return c
}

// TestFDToleratesDelaySpike: a silence spike longer than FDTimeout but
// shorter than the strike budget must NOT change the view. Under the old
// single-comparison detector the first check past FDTimeout suspected
// the peer and forced a spurious reconfiguration.
func TestFDToleratesDelaySpike(t *testing.T) {
	w := newWorld(t, 3, fdCfg())
	for i := 0; i < 3; i++ {
		if err := w.stacks[ids.ProcessID(i)].Join(g1); err != nil {
			t.Fatal(err)
		}
	}
	w.run(4 * time.Second)
	before := w.requireSameView(g1, 0, 1, 2)

	// 380ms of total silence: past FDTimeout (so the old detector
	// suspects), but only 1–2 suspicion checks deep — under the
	// 3-strike budget.
	w.nw.SetPartitions([]netsim.NodeID{0}, []netsim.NodeID{1, 2})
	w.run(380 * time.Millisecond)
	w.nw.Heal()
	w.run(3 * time.Second)

	after := w.requireSameView(g1, 0, 1, 2)
	if after.ID != before.ID {
		t.Fatalf("delay spike forced a view change: %v -> %v", before.ID, after.ID)
	}
	checkViewSynchrony(t, w, g1)
}

// TestFDStillDetectsSustainedSilence: the strike budget must delay
// suspicion, not disable it — a genuinely dead member is still excluded.
func TestFDStillDetectsSustainedSilence(t *testing.T) {
	w := newWorld(t, 3, fdCfg())
	for i := 0; i < 3; i++ {
		if err := w.stacks[ids.ProcessID(i)].Join(g1); err != nil {
			t.Fatal(err)
		}
	}
	w.run(4 * time.Second)
	w.requireSameView(g1, 0, 1, 2)

	w.nw.Crash(2)
	w.run(3 * time.Second)
	v := w.requireSameView(g1, 0, 1)
	if v.Members.Contains(2) {
		t.Fatalf("crashed member still in view %v", v)
	}
	checkViewSynchrony(t, w, g1)
}

// TestFDStrikesResetOnHeartbeat: strikes accumulated during a spike are
// cleared once the peer is heard again, so two separate sub-budget
// spikes do not add up to a suspicion.
func TestFDStrikesResetOnHeartbeat(t *testing.T) {
	w := newWorld(t, 2, fdCfg())
	for i := 0; i < 2; i++ {
		if err := w.stacks[ids.ProcessID(i)].Join(g1); err != nil {
			t.Fatal(err)
		}
	}
	w.run(3 * time.Second)
	before := w.requireSameView(g1, 0, 1)

	for spike := 0; spike < 3; spike++ {
		w.nw.SetPartitions([]netsim.NodeID{0}, []netsim.NodeID{1})
		w.run(380 * time.Millisecond)
		w.nw.Heal()
		w.run(time.Second) // heartbeats resume, strikes reset
	}
	after := w.requireSameView(g1, 0, 1)
	if after.ID != before.ID {
		t.Fatalf("repeated sub-budget spikes forced a view change: %v -> %v", before.ID, after.ID)
	}
}

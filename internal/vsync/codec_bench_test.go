package vsync

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"plwg/internal/ids"
	"plwg/internal/wire"
)

func vid(c ids.ProcessID, s uint64) ids.ViewID { return ids.ViewID{Coord: c, Seq: s} }

// BenchmarkCodecEncode compares encoding the representative hot-path
// data message with the binary codec against the gob fallback (pooled
// buffer, fresh encoder per datagram — the real transport's path).
func BenchmarkCodecEncode(b *testing.B) {
	RegisterWireTypes()
	msg := benchMsgData()
	b.Run("wire", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bb := wire.GetBuffer()
			if !wire.Encode(bb, msg) {
				b.Fatal("codec refused the message")
			}
			bb.Release()
		}
	})
	b.Run("gob", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bb := wire.GetBuffer()
			if err := gob.NewEncoder(bb).Encode(msg); err != nil {
				b.Fatal(err)
			}
			bb.Release()
		}
	})
}

// BenchmarkCodecDecode is the receive-side counterpart.
func BenchmarkCodecDecode(b *testing.B) {
	RegisterWireTypes()
	msg := benchMsgData()
	buf := wire.GetBuffer()
	wire.Encode(buf, msg)
	wireBytes := append([]byte(nil), buf.B...)
	buf.Release()
	var gobBuf bytes.Buffer
	if err := gob.NewEncoder(&gobBuf).Encode(msg); err != nil {
		b.Fatal(err)
	}
	gobBytes := gobBuf.Bytes()

	b.Run("wire", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := wire.Decode(wire.NewReader(wireBytes)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("gob", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var m msgData
			if err := gob.NewDecoder(bytes.NewReader(gobBytes)).Decode(&m); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestCodecRoundTrip pins the codec against the source of truth: a
// message must decode back to exactly what was encoded.
func TestCodecRoundTrip(t *testing.T) {
	RegisterWireTypes()
	msgs := []wire.Marshaler{
		benchMsgData(),
		&msgData{GID: 1, View: vid(2, 9), Sender: 2, Seq: 1, Ordered: true},
		&ordToken{Key: msgKey{View: vid(1, 4), Sender: 7, Seq: 19}, Idx: 3},
		&msgAck{GID: 4, Key: msgKey{View: vid(0, 1), Sender: 1, Seq: 2}, From: 6},
		&msgAckVector{GID: 2, View: vid(5, 8), From: 3,
			MaxSeq: map[ids.ProcessID]uint64{1: 10, 4: 7}},
		&msgHeartbeat{GID: 9, From: 2, View: vid(2, 2), MaxSeq: 55},
	}
	for _, m := range msgs {
		buf := wire.GetBuffer()
		if !wire.Encode(buf, m) {
			t.Fatalf("codec refused %T", m)
		}
		got, err := wire.Decode(wire.NewReader(buf.B))
		buf.Release()
		if err != nil {
			t.Fatalf("decode %T: %v", m, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("round trip mismatch:\n sent %#v\n got  %#v", m, got)
		}
	}
}

// TestCodecTruncated verifies corrupt input fails cleanly rather than
// panicking or fabricating a message.
func TestCodecTruncated(t *testing.T) {
	RegisterWireTypes()
	buf := wire.GetBuffer()
	defer buf.Release()
	wire.Encode(buf, benchMsgData())
	for cut := 0; cut < len(buf.B); cut += 7 {
		if _, err := wire.Decode(wire.NewReader(buf.B[:cut])); err == nil {
			// Some prefixes can decode to a valid shorter message only
			// if every field boundary aligns; for msgData the payload
			// length prefix makes that impossible.
			t.Errorf("truncation at %d decoded without error", cut)
		}
	}
}

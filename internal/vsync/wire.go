package vsync

import (
	"encoding/gob"
	"sync"
)

var registerOnce sync.Once

// RegisterWireTypes registers the heavy-weight group layer's message
// types with encoding/gob, for transports that serialize messages (the
// real-network transport), and installs the binary-codec decoders for
// the hot message types. The simulated network passes messages by
// reference and does not need this.
func RegisterWireTypes() {
	registerOnce.Do(func() {
		registerCodecs()
		gob.Register(&msgData{})
		gob.Register(&ordToken{})
		gob.Register(&msgAck{})
		gob.Register(&msgNack{})
		gob.Register(&msgRetrans{})
		gob.Register(&msgAckVector{})
		gob.Register(&msgHeartbeat{})
		gob.Register(&msgPresence{})
		gob.Register(&msgJoinReq{})
		gob.Register(&msgLeaveReq{})
		gob.Register(&msgStop{})
		gob.Register(&msgAbort{})
		gob.Register(&msgFlushOk{})
		gob.Register(&msgFlushPull{})
		gob.Register(&msgFlushFill{})
		gob.Register(&msgNewView{})
		gob.Register(&benchPayload{})
	})
}

package vsync

import (
	"bytes"
	"encoding/gob"
	"testing"

	"plwg/internal/ids"
	"plwg/internal/wire"
)

// benchPayload stands in for an application payload in the codec
// microbenchmarks: an opaque byte blob, like the lwgData the LWG layer
// actually ships inside msgData.
type benchPayload struct {
	Data []byte
}

// WireSize implements Payload.
func (p *benchPayload) WireSize() int { return len(p.Data) }

// WireID implements wire.Marshaler.
func (p *benchPayload) WireID() byte { return wireBenchPayload }

// MarshalWire implements wire.Marshaler.
func (p *benchPayload) MarshalWire(b *wire.Buffer) bool {
	b.Bytes(p.Data)
	return true
}

// benchMsgData builds a representative hot-path datagram: a 1 KiB data
// message carrying a cumulative ack vector, as the steady state of the
// Figure 2 workload produces.
func benchMsgData() *msgData {
	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	return &msgData{
		GID:     7,
		View:    ids.ViewID{Coord: 3, Seq: 12},
		Sender:  5,
		Seq:     42,
		Payload: &benchPayload{Data: payload},
		Acks: map[ids.ProcessID]uint64{
			0: 40, 1: 39, 2: 41, 3: 38, 4: 42, 5: 37, 6: 40, 7: 41,
		},
	}
}

// CodecStat is one codec microbenchmark result.
type CodecStat struct {
	Name        string
	NsPerOp     float64
	AllocsPerOp float64
}

// CodecBenchStats measures the binary codec against per-datagram gob —
// encode and decode of the representative data message — and returns
// the results for inclusion in BENCH_plwg.json (cmd/lwgbench -json).
// The gob side reproduces the transport's fallback path exactly: a
// pooled buffer but a fresh encoder per datagram, because every
// datagram is decoded as an independent stream.
func CodecBenchStats() []CodecStat {
	RegisterWireTypes()
	msg := benchMsgData()

	buf := wire.GetBuffer()
	wire.Encode(buf, msg)
	wireBytes := append([]byte(nil), buf.B...)
	buf.Release()
	var gobBuf bytes.Buffer
	if err := gob.NewEncoder(&gobBuf).Encode(msg); err != nil {
		return nil
	}
	gobBytes := gobBuf.Bytes()

	mk := func(name string, fn func(b *testing.B)) CodecStat {
		r := testing.Benchmark(fn)
		return CodecStat{Name: name, NsPerOp: float64(r.NsPerOp()), AllocsPerOp: float64(r.AllocsPerOp())}
	}
	return []CodecStat{
		mk("encode-wire", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bb := wire.GetBuffer()
				wire.Encode(bb, msg)
				bb.Release()
			}
		}),
		mk("encode-gob", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bb := wire.GetBuffer()
				_ = gob.NewEncoder(bb).Encode(msg)
				bb.Release()
			}
		}),
		mk("decode-wire", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := wire.Decode(wire.NewReader(wireBytes)); err != nil {
					b.Fatal(err)
				}
			}
		}),
		mk("decode-gob", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var m msgData
				if err := gob.NewDecoder(bytes.NewReader(gobBytes)).Decode(&m); err != nil {
					b.Fatal(err)
				}
			}
		}),
	}
}

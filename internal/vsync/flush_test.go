package vsync

import (
	"fmt"
	"testing"
	"time"

	"plwg/internal/ids"
	"plwg/internal/netsim"
	"plwg/internal/sim"
	"plwg/internal/trace"
)

func TestCreateInstallsSingletonImmediately(t *testing.T) {
	w := newWorld(t, 2, autoCfg())
	if err := w.stacks[0].Create(g1); err != nil {
		t.Fatal(err)
	}
	// No join-discovery timeout: the view exists before any time passes.
	v, ok := w.stacks[0].CurrentView(g1)
	if !ok || !v.Members.Equal(ids.NewMembers(0)) {
		t.Fatalf("Create did not install a singleton view: %v %v", v, ok)
	}
	if err := w.stacks[0].Create(g1); err != ErrAlreadyJoined {
		t.Fatalf("second Create = %v", err)
	}
	// A racing Create elsewhere merges through presence discovery.
	if err := w.stacks[1].Create(g1); err != nil {
		t.Fatal(err)
	}
	w.run(3 * time.Second)
	w.requireSameView(g1, 0, 1)
}

func TestForcedFlushInstallsSameMembership(t *testing.T) {
	w := newWorld(t, 3, autoCfg())
	for i := 0; i < 3; i++ {
		if err := w.stacks[ids.ProcessID(i)].Join(g1); err != nil {
			t.Fatal(err)
		}
	}
	w.run(4 * time.Second)
	before := w.requireSameView(g1, 0, 1, 2)

	// Only the coordinator can force; a non-coordinator call is a no-op.
	if err := w.stacks[1].Flush(g1); err != nil {
		t.Fatal(err)
	}
	w.run(time.Second)
	if v := w.view(0, g1); v.ID != before.ID {
		t.Fatalf("non-coordinator Flush changed the view: %v", v)
	}

	if err := w.stacks[0].Flush(g1); err != nil {
		t.Fatal(err)
	}
	w.run(2 * time.Second)
	after := w.requireSameView(g1, 0, 1, 2)
	if after.ID == before.ID {
		t.Fatal("forced flush must install a fresh view identifier")
	}
	if err := w.stacks[1].Flush(ids.HWGID(99)); err != ErrNotMember {
		t.Fatalf("Flush on unknown group = %v", err)
	}
}

func TestDigestTracking(t *testing.T) {
	// Unit-level check of the flush digest: contiguous prefix plus
	// out-of-order extras, with absorption when gaps close.
	s := sim.New(1)
	nw := netsim.New(s, netsim.DefaultParams())
	st := NewStack(Params{Net: nw, PID: 0, Config: autoCfg()})
	nw.AddNode(0, nil)
	if err := st.Create(g1); err != nil {
		t.Fatal(err)
	}
	m := st.groups[g1]
	mk := func(seq uint64) *msgData {
		return &msgData{GID: g1, View: m.view.ID, Sender: 7, Seq: seq, Payload: tPayload{ID: "x"}}
	}
	m.deliverData(mk(1), false)
	m.deliverData(mk(2), false)
	if m.deliveredSeq[7] != 2 || len(m.extras) != 0 {
		t.Fatalf("contig = %d extras = %d, want 2/0", m.deliveredSeq[7], len(m.extras))
	}
	// Out of order: 5 and 4 arrive before 3.
	m.deliverData(mk(5), false)
	m.deliverData(mk(4), false)
	if m.deliveredSeq[7] != 2 || len(m.extras) != 2 {
		t.Fatalf("contig = %d extras = %d, want 2/2", m.deliveredSeq[7], len(m.extras))
	}
	// 3 closes the gap; extras are absorbed.
	m.deliverData(mk(3), false)
	if m.deliveredSeq[7] != 5 || len(m.extras) != 0 {
		t.Fatalf("contig = %d extras = %d, want 5/0", m.deliveredSeq[7], len(m.extras))
	}
	// Duplicates are ignored.
	m.deliverData(mk(3), false)
	if m.deliveredSeq[7] != 5 {
		t.Fatalf("duplicate moved the digest: %d", m.deliveredSeq[7])
	}
}

// TestGapRetransmissionOnDivergence drives the flush-pull path: delivery
// jitter plus a partition striking mid-flight make two members of one
// side diverge on the messages they received; the flush digests expose
// the gap, the initiator pulls the copies, and view synchrony holds.
func TestGapRetransmissionOnDivergence(t *testing.T) {
	runSeed := func(seed int64) (pulled bool, w *world) {
		s := sim.New(seed)
		params := netsim.DefaultParams()
		params.Jitter = 3 * time.Millisecond
		nw := netsim.New(s, params)
		rec := &trace.Recorder{}
		w = &world{
			t: t, s: s, nw: nw,
			stacks: make(map[ids.ProcessID]*Stack),
			ups:    make(map[ids.ProcessID]*tUp),
		}
		for i := 0; i < 4; i++ {
			pid := ids.ProcessID(i)
			up := &tUp{pid: pid, log: make(map[ids.HWGID][]logEntry), s: s}
			st := NewStack(Params{Net: nw, PID: pid, Config: autoCfg(), Upcalls: up, Tracer: rec})
			up.st = st
			mux := netsim.NewMux()
			mux.Handle(AddrPrefix, st.HandleMessage)
			nw.AddNode(pid, mux.Handler())
			w.stacks[pid] = st
			w.ups[pid] = up
		}
		for i := 0; i < 4; i++ {
			if err := w.stacks[ids.ProcessID(i)].Join(g1); err != nil {
				t.Fatal(err)
			}
		}
		w.run(5 * time.Second)
		w.requireSameView(g1, 0, 1, 2, 3)

		// Burst of sends from p0, partition strikes while frames are in
		// flight: with jitter, p2 and p3 may receive different prefixes.
		for i := 0; i < 10; i++ {
			_ = w.stacks[0].Send(g1, tPayload{ID: fmt.Sprintf("m%d", i), Size: 400})
		}
		s.After(2*time.Millisecond, func() {
			nw.SetPartitions([]netsim.NodeID{0, 1}, []netsim.NodeID{2, 3})
		})
		w.run(4 * time.Second)

		for _, e := range rec.Events {
			if e.What == "flush-pull" {
				pulled = true
			}
		}
		return pulled, w
	}

	for seed := int64(1); seed <= 40; seed++ {
		pulled, w := runSeed(seed)
		// Whatever happened, view synchrony must hold on both sides.
		checkViewSynchrony(t, w, g1)
		if pulled {
			return // the gap machinery ran and the invariant held
		}
	}
	t.Fatal("no seed exercised the flush-pull path; divergence injection is broken")
}

func TestPeriodicAcksSurvivePartitionMerge(t *testing.T) {
	cfg := autoCfg()
	cfg.AckPolicy = AckPeriodic
	w := newWorld(t, 4, cfg)
	for i := 0; i < 4; i++ {
		if err := w.stacks[ids.ProcessID(i)].Join(g1); err != nil {
			t.Fatal(err)
		}
	}
	w.run(5 * time.Second)
	w.nw.SetPartitions([]netsim.NodeID{0, 1}, []netsim.NodeID{2, 3})
	w.run(2 * time.Second)
	_ = w.stacks[0].Send(g1, tPayload{ID: "A"})
	_ = w.stacks[2].Send(g1, tPayload{ID: "B"})
	w.run(2 * time.Second)
	w.nw.Heal()
	w.run(4 * time.Second)
	w.requireSameView(g1, 0, 1, 2, 3)
	checkViewSynchrony(t, w, g1)
	// Stability must also converge in the merged view.
	_ = w.stacks[3].Send(g1, tPayload{ID: "C"})
	w.run(2 * time.Second)
	for pid := ids.ProcessID(0); pid < 4; pid++ {
		if n := len(w.stacks[pid].groups[g1].buffer); n != 0 {
			t.Errorf("%v still buffers %d messages", pid, n)
		}
	}
}

func TestLeaveDuringPartition(t *testing.T) {
	w := newWorld(t, 4, autoCfg())
	for i := 0; i < 4; i++ {
		if err := w.stacks[ids.ProcessID(i)].Join(g1); err != nil {
			t.Fatal(err)
		}
	}
	w.run(5 * time.Second)
	w.nw.SetPartitions([]netsim.NodeID{0, 1}, []netsim.NodeID{2, 3})
	w.run(3 * time.Second)
	// p3 leaves while partitioned; after the heal, the merged view must
	// contain everyone except p3.
	if err := w.stacks[3].Leave(g1); err != nil {
		t.Fatal(err)
	}
	w.run(2 * time.Second)
	w.nw.Heal()
	w.run(5 * time.Second)
	w.requireSameView(g1, 0, 1, 2)
	if w.stacks[3].IsMember(g1) {
		t.Error("leaver still present")
	}
}

func TestThreeWayPartitionAndHeal(t *testing.T) {
	w := newWorld(t, 6, autoCfg())
	for i := 0; i < 6; i++ {
		if err := w.stacks[ids.ProcessID(i)].Join(g1); err != nil {
			t.Fatal(err)
		}
	}
	w.run(6 * time.Second)
	w.requireSameView(g1, 0, 1, 2, 3, 4, 5)
	w.nw.SetPartitions(
		[]netsim.NodeID{0, 1},
		[]netsim.NodeID{2, 3},
		[]netsim.NodeID{4, 5},
	)
	w.run(3 * time.Second)
	for _, pair := range [][2]ids.ProcessID{{0, 1}, {2, 3}, {4, 5}} {
		va := w.view(pair[0], g1)
		if va.ID != w.view(pair[1], g1).ID {
			t.Fatalf("component %v did not agree", pair)
		}
		if !va.Members.Equal(ids.NewMembers(pair[0], pair[1])) {
			t.Fatalf("component %v members = %v", pair, va.Members)
		}
	}
	w.nw.Heal()
	w.run(6 * time.Second)
	w.requireSameView(g1, 0, 1, 2, 3, 4, 5)
	checkViewSynchrony(t, w, g1)
}

func TestAsymmetricPartitionSizes(t *testing.T) {
	// A 5|1 split: the singleton side keeps operating and merges back.
	w := newWorld(t, 6, autoCfg())
	for i := 0; i < 6; i++ {
		if err := w.stacks[ids.ProcessID(i)].Join(g1); err != nil {
			t.Fatal(err)
		}
	}
	w.run(6 * time.Second)
	w.nw.SetPartitions([]netsim.NodeID{0, 1, 2, 3, 4}, []netsim.NodeID{5})
	w.run(3 * time.Second)
	v5 := w.view(5, g1)
	if !v5.Members.Equal(ids.NewMembers(5)) {
		t.Fatalf("isolated member view = %v", v5)
	}
	_ = w.stacks[5].Send(g1, tPayload{ID: "alone"}) // progress while isolated
	w.run(time.Second)
	w.nw.Heal()
	w.run(5 * time.Second)
	w.requireSameView(g1, 0, 1, 2, 3, 4, 5)
	checkViewSynchrony(t, w, g1)
}

package vsync

import (
	"fmt"
	"testing"
	"time"

	"plwg/internal/check"
	"plwg/internal/ids"
	"plwg/internal/netsim"
	"plwg/internal/sim"
)

// tPayload is a test payload.
type tPayload struct {
	ID   string
	Size int
}

func (p tPayload) WireSize() int {
	if p.Size > 0 {
		return p.Size
	}
	return len(p.ID)
}

// logEntry is one upcall observed by a test process.
type logEntry struct {
	kind string // "view", "data", "stop"
	view ids.View
	src  ids.ProcessID
	pay  string
	at   sim.Time
}

// tUp records upcalls per group.
type tUp struct {
	pid ids.ProcessID
	st  *Stack
	log map[ids.HWGID][]logEntry
	s   *sim.Sim
	// manualStop, when set, leaves Stop unanswered until the test calls
	// StopOk itself.
	manualStop bool
}

func (u *tUp) View(gid ids.HWGID, v ids.View) {
	u.log[gid] = append(u.log[gid], logEntry{kind: "view", view: v, at: u.s.Now()})
}

func (u *tUp) Data(gid ids.HWGID, src ids.ProcessID, p Payload) {
	tp, _ := p.(tPayload)
	u.log[gid] = append(u.log[gid], logEntry{kind: "data", src: src, pay: tp.ID, at: u.s.Now()})
}

func (u *tUp) Stop(gid ids.HWGID) {
	u.log[gid] = append(u.log[gid], logEntry{kind: "stop", at: u.s.Now()})
	if !u.manualStop {
		// Behave like a prompt user: quiesce immediately.
		if err := u.st.StopOk(gid); err != nil {
			panic(err)
		}
	}
}

// world is a test cluster.
type world struct {
	t      *testing.T
	s      *sim.Sim
	nw     *netsim.Network
	stacks map[ids.ProcessID]*Stack
	ups    map[ids.ProcessID]*tUp
}

func newWorld(t *testing.T, n int, cfg Config) *world {
	t.Helper()
	s := sim.New(1)
	nw := netsim.New(s, netsim.DefaultParams())
	w := &world{
		t: t, s: s, nw: nw,
		stacks: make(map[ids.ProcessID]*Stack),
		ups:    make(map[ids.ProcessID]*tUp),
	}
	for i := 0; i < n; i++ {
		pid := ids.ProcessID(i)
		up := &tUp{pid: pid, log: make(map[ids.HWGID][]logEntry), s: s}
		st := NewStack(Params{Net: nw, PID: pid, Config: cfg, Upcalls: up})
		up.st = st
		mux := netsim.NewMux()
		mux.Handle(AddrPrefix, st.HandleMessage)
		nw.AddNode(pid, mux.Handler())
		w.stacks[pid] = st
		w.ups[pid] = up
	}
	return w
}

func (w *world) run(d time.Duration) { w.s.RunFor(d) }

// view returns the current view of gid at pid, failing if absent.
func (w *world) view(pid ids.ProcessID, gid ids.HWGID) ids.View {
	w.t.Helper()
	v, ok := w.stacks[pid].CurrentView(gid)
	if !ok {
		w.t.Fatalf("%v has no view of %v", pid, gid)
	}
	return v
}

// requireSameView asserts all pids share one view of gid with the given
// membership.
func (w *world) requireSameView(gid ids.HWGID, pids ...ids.ProcessID) ids.View {
	w.t.Helper()
	want := w.view(pids[0], gid)
	for _, p := range pids[1:] {
		got := w.view(p, gid)
		if got.ID != want.ID {
			w.t.Fatalf("%v view %v != %v view %v", p, got, pids[0], want)
		}
	}
	wantMembers := ids.NewMembers(pids...)
	if !want.Members.Equal(wantMembers) {
		w.t.Fatalf("view members %v, want %v", want.Members, wantMembers)
	}
	return want
}

// checkViewSynchrony verifies the defining property: any two processes
// that both install the same two consecutive views delivered the same
// messages between them. The comparison itself lives in internal/check,
// shared with the LWG-level chaos tests and the schedule explorer.
func checkViewSynchrony(t *testing.T, w *world, gid ids.HWGID) {
	t.Helper()
	logs := make(map[ids.ProcessID][]check.Record)
	for pid, up := range w.ups {
		var rec []check.Record
		for _, e := range up.log[gid] {
			switch e.kind {
			case "view":
				rec = append(rec, check.Install(e.view.ID))
			case "data":
				rec = append(rec, check.Deliver(e.src, e.pay))
			}
		}
		logs[pid] = rec
	}
	for _, v := range check.Agreement(gid.String(), logs, nil) {
		t.Errorf("view synchrony violated: %s", v)
	}
}

func autoCfg() Config {
	c := DefaultConfig()
	c.AutoStopOk = true
	return c
}

const g1 ids.HWGID = 1

// --- tests ---------------------------------------------------------------

func TestSingletonFormation(t *testing.T) {
	w := newWorld(t, 1, autoCfg())
	if err := w.stacks[0].Join(g1); err != nil {
		t.Fatal(err)
	}
	w.run(time.Second)
	v := w.view(0, g1)
	if !v.Members.Equal(ids.NewMembers(0)) {
		t.Fatalf("singleton view = %v", v)
	}
	if !w.stacks[0].IsCoordinator(g1) {
		t.Error("sole member must be coordinator")
	}
}

func TestJoinExistingView(t *testing.T) {
	w := newWorld(t, 2, autoCfg())
	if err := w.stacks[0].Join(g1); err != nil {
		t.Fatal(err)
	}
	w.run(time.Second) // p0 forms a singleton
	if err := w.stacks[1].Join(g1); err != nil {
		t.Fatal(err)
	}
	w.run(2 * time.Second)
	w.requireSameView(g1, 0, 1)
}

func TestManyConcurrentJoinsConverge(t *testing.T) {
	const n = 6
	w := newWorld(t, n, autoCfg())
	var pids []ids.ProcessID
	for i := 0; i < n; i++ {
		pid := ids.ProcessID(i)
		pids = append(pids, pid)
		if err := w.stacks[pid].Join(g1); err != nil {
			t.Fatal(err)
		}
	}
	w.run(6 * time.Second)
	w.requireSameView(g1, pids...)
	checkViewSynchrony(t, w, g1)
}

func TestDoubleJoinRejected(t *testing.T) {
	w := newWorld(t, 1, autoCfg())
	if err := w.stacks[0].Join(g1); err != nil {
		t.Fatal(err)
	}
	if err := w.stacks[0].Join(g1); err != ErrAlreadyJoined {
		t.Fatalf("second Join = %v, want ErrAlreadyJoined", err)
	}
}

func TestSendToUnjoinedGroup(t *testing.T) {
	w := newWorld(t, 1, autoCfg())
	if err := w.stacks[0].Send(g1, tPayload{ID: "x"}); err != ErrNotMember {
		t.Fatalf("Send = %v, want ErrNotMember", err)
	}
	if err := w.stacks[0].Leave(g1); err != ErrNotMember {
		t.Fatalf("Leave = %v, want ErrNotMember", err)
	}
}

func TestDataDeliveryToAllMembers(t *testing.T) {
	w := newWorld(t, 3, autoCfg())
	for i := 0; i < 3; i++ {
		if err := w.stacks[ids.ProcessID(i)].Join(g1); err != nil {
			t.Fatal(err)
		}
	}
	w.run(4 * time.Second)
	w.requireSameView(g1, 0, 1, 2)

	if err := w.stacks[0].Send(g1, tPayload{ID: "hello"}); err != nil {
		t.Fatal(err)
	}
	w.run(time.Second)
	for pid := ids.ProcessID(0); pid < 3; pid++ {
		var got []string
		for _, e := range w.ups[pid].log[g1] {
			if e.kind == "data" {
				got = append(got, e.pay)
			}
		}
		if len(got) != 1 || got[0] != "hello" {
			t.Errorf("%v delivered %v, want [hello] (self-delivery included)", pid, got)
		}
	}
}

func TestStabilityDiscardsBuffers(t *testing.T) {
	w := newWorld(t, 3, autoCfg())
	for i := 0; i < 3; i++ {
		if err := w.stacks[ids.ProcessID(i)].Join(g1); err != nil {
			t.Fatal(err)
		}
	}
	w.run(4 * time.Second)
	for i := 0; i < 10; i++ {
		if err := w.stacks[0].Send(g1, tPayload{ID: fmt.Sprintf("m%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	w.run(2 * time.Second)
	for pid := ids.ProcessID(0); pid < 3; pid++ {
		m := w.stacks[pid].groups[g1]
		if len(m.buffer) != 0 {
			t.Errorf("%v still buffers %d messages after stability", pid, len(m.buffer))
		}
	}
}

func TestPeriodicAckStability(t *testing.T) {
	cfg := autoCfg()
	cfg.AckPolicy = AckPeriodic
	w := newWorld(t, 3, cfg)
	for i := 0; i < 3; i++ {
		if err := w.stacks[ids.ProcessID(i)].Join(g1); err != nil {
			t.Fatal(err)
		}
	}
	w.run(4 * time.Second)
	w.requireSameView(g1, 0, 1, 2)
	for i := 0; i < 10; i++ {
		if err := w.stacks[0].Send(g1, tPayload{ID: fmt.Sprintf("m%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	w.run(2 * time.Second)
	for pid := ids.ProcessID(0); pid < 3; pid++ {
		var got int
		for _, e := range w.ups[pid].log[g1] {
			if e.kind == "data" {
				got++
			}
		}
		if got != 10 {
			t.Errorf("%v delivered %d, want 10", pid, got)
		}
		m := w.stacks[pid].groups[g1]
		if len(m.buffer) != 0 {
			t.Errorf("%v still buffers %d messages under periodic acks", pid, len(m.buffer))
		}
	}
}

func TestLeave(t *testing.T) {
	w := newWorld(t, 3, autoCfg())
	for i := 0; i < 3; i++ {
		if err := w.stacks[ids.ProcessID(i)].Join(g1); err != nil {
			t.Fatal(err)
		}
	}
	w.run(4 * time.Second)
	if err := w.stacks[2].Leave(g1); err != nil {
		t.Fatal(err)
	}
	w.run(2 * time.Second)
	w.requireSameView(g1, 0, 1)
	if w.stacks[2].IsMember(g1) {
		t.Error("leaver still has member state")
	}
}

func TestCoordinatorLeave(t *testing.T) {
	w := newWorld(t, 3, autoCfg())
	for i := 0; i < 3; i++ {
		if err := w.stacks[ids.ProcessID(i)].Join(g1); err != nil {
			t.Fatal(err)
		}
	}
	w.run(4 * time.Second)
	// p0 is the coordinator (smallest pid).
	if !w.stacks[0].IsCoordinator(g1) {
		t.Fatal("expected p0 to coordinate")
	}
	if err := w.stacks[0].Leave(g1); err != nil {
		t.Fatal(err)
	}
	w.run(2 * time.Second)
	w.requireSameView(g1, 1, 2)
	if !w.stacks[1].IsCoordinator(g1) {
		t.Error("p1 should take over coordination")
	}
}

func TestLastMemberLeaveDissolvesGroup(t *testing.T) {
	w := newWorld(t, 1, autoCfg())
	if err := w.stacks[0].Join(g1); err != nil {
		t.Fatal(err)
	}
	w.run(time.Second)
	if err := w.stacks[0].Leave(g1); err != nil {
		t.Fatal(err)
	}
	w.run(time.Second)
	if w.stacks[0].IsMember(g1) {
		t.Error("group not dissolved")
	}
}

func TestCrashRecovery(t *testing.T) {
	w := newWorld(t, 4, autoCfg())
	for i := 0; i < 4; i++ {
		if err := w.stacks[ids.ProcessID(i)].Join(g1); err != nil {
			t.Fatal(err)
		}
	}
	w.run(5 * time.Second)
	w.requireSameView(g1, 0, 1, 2, 3)

	w.nw.Crash(3)
	w.run(3 * time.Second)
	w.requireSameView(g1, 0, 1, 2)
	checkViewSynchrony(t, w, g1)
}

func TestCoordinatorCrashRecovery(t *testing.T) {
	w := newWorld(t, 4, autoCfg())
	for i := 0; i < 4; i++ {
		if err := w.stacks[ids.ProcessID(i)].Join(g1); err != nil {
			t.Fatal(err)
		}
	}
	w.run(5 * time.Second)
	w.nw.Crash(0) // the coordinator
	w.run(3 * time.Second)
	w.requireSameView(g1, 1, 2, 3)
	if !w.stacks[1].IsCoordinator(g1) {
		t.Error("p1 should take over after coordinator crash")
	}
	checkViewSynchrony(t, w, g1)
}

func TestPartitionSplitsViews(t *testing.T) {
	w := newWorld(t, 4, autoCfg())
	for i := 0; i < 4; i++ {
		if err := w.stacks[ids.ProcessID(i)].Join(g1); err != nil {
			t.Fatal(err)
		}
	}
	w.run(5 * time.Second)
	w.requireSameView(g1, 0, 1, 2, 3)

	w.nw.SetPartitions([]netsim.NodeID{0, 1}, []netsim.NodeID{2, 3})
	w.run(3 * time.Second)

	va := w.requireSameView(g1, 0, 1)
	// requireSameView checks membership == pids; need separate checks.
	vb := w.view(2, g1)
	if vb.ID != w.view(3, g1).ID {
		t.Fatal("side B did not agree on a view")
	}
	if !vb.Members.Equal(ids.NewMembers(2, 3)) {
		t.Fatalf("side B members = %v", vb.Members)
	}
	if va.ID == vb.ID {
		t.Fatal("concurrent views must be distinct")
	}
	checkViewSynchrony(t, w, g1)
}

func TestPartitionHealMergesViews(t *testing.T) {
	w := newWorld(t, 4, autoCfg())
	for i := 0; i < 4; i++ {
		if err := w.stacks[ids.ProcessID(i)].Join(g1); err != nil {
			t.Fatal(err)
		}
	}
	w.run(5 * time.Second)
	w.nw.SetPartitions([]netsim.NodeID{0, 1}, []netsim.NodeID{2, 3})
	w.run(3 * time.Second)
	// Traffic flows independently in both partitions.
	if err := w.stacks[0].Send(g1, tPayload{ID: "sideA"}); err != nil {
		t.Fatal(err)
	}
	if err := w.stacks[2].Send(g1, tPayload{ID: "sideB"}); err != nil {
		t.Fatal(err)
	}
	w.run(time.Second)

	w.nw.Heal()
	w.run(4 * time.Second)
	w.requireSameView(g1, 0, 1, 2, 3)
	checkViewSynchrony(t, w, g1)
}

func TestViewTaggedDeliveryAcrossPartition(t *testing.T) {
	// Messages sent inside partition A must not be delivered to members
	// of partition B (they were sent in a view B is not in).
	w := newWorld(t, 4, autoCfg())
	for i := 0; i < 4; i++ {
		if err := w.stacks[ids.ProcessID(i)].Join(g1); err != nil {
			t.Fatal(err)
		}
	}
	w.run(5 * time.Second)
	w.nw.SetPartitions([]netsim.NodeID{0, 1}, []netsim.NodeID{2, 3})
	w.run(3 * time.Second)
	if err := w.stacks[0].Send(g1, tPayload{ID: "private-A"}); err != nil {
		t.Fatal(err)
	}
	w.run(time.Second)
	w.nw.Heal()
	w.run(4 * time.Second)
	for _, pid := range []ids.ProcessID{2, 3} {
		for _, e := range w.ups[pid].log[g1] {
			if e.kind == "data" && e.pay == "private-A" {
				t.Errorf("%v delivered a message from a view it never installed", pid)
			}
		}
	}
}

func TestStopUpcallAndManualStopOk(t *testing.T) {
	cfg := DefaultConfig() // AutoStopOk = false
	w := newWorld(t, 2, cfg)
	w.ups[0].manualStop = true
	if err := w.stacks[0].Join(g1); err != nil {
		t.Fatal(err)
	}
	w.run(time.Second)
	if err := w.stacks[1].Join(g1); err != nil {
		t.Fatal(err)
	}
	// p0 starts a flush to admit p1; p0 gets the Stop upcall and the
	// flush must not complete until StopOk.
	w.run(time.Second)
	var stops int
	for _, e := range w.ups[0].log[g1] {
		if e.kind == "stop" {
			stops++
		}
	}
	if stops == 0 {
		t.Fatal("no Stop upcall delivered")
	}
	if _, ok := w.stacks[1].CurrentView(g1); ok {
		v, _ := w.stacks[1].CurrentView(g1)
		if v.Members.Contains(0) {
			t.Fatal("flush completed without StopOk")
		}
	}
	// Release the gate and behave promptly from now on (later flushes,
	// if any, auto-acknowledge).
	w.ups[0].manualStop = false
	if err := w.stacks[0].StopOk(g1); err != nil {
		t.Fatal(err)
	}
	w.run(2 * time.Second)
	w.requireSameView(g1, 0, 1)
}

func TestStopOkWithoutStopPending(t *testing.T) {
	w := newWorld(t, 1, autoCfg())
	if err := w.stacks[0].Join(g1); err != nil {
		t.Fatal(err)
	}
	w.run(time.Second)
	if err := w.stacks[0].StopOk(g1); err != ErrNoStopPending {
		t.Fatalf("StopOk = %v, want ErrNoStopPending", err)
	}
}

func TestSendsBufferedDuringFlush(t *testing.T) {
	cfg := DefaultConfig()
	w := newWorld(t, 2, cfg)
	w.ups[0].manualStop = true
	if err := w.stacks[0].Join(g1); err != nil {
		t.Fatal(err)
	}
	w.run(time.Second)
	if err := w.stacks[1].Join(g1); err != nil {
		t.Fatal(err)
	}
	w.run(time.Second) // p0 now has a pending Stop upcall
	// Send while stopped: must be buffered, then delivered in new view.
	if err := w.stacks[0].Send(g1, tPayload{ID: "buffered"}); err != nil {
		t.Fatal(err)
	}
	w.ups[0].manualStop = false
	if err := w.stacks[0].StopOk(g1); err != nil {
		t.Fatal(err)
	}
	w.run(2 * time.Second)
	w.requireSameView(g1, 0, 1)
	found := false
	for _, e := range w.ups[1].log[g1] {
		if e.kind == "data" && e.pay == "buffered" {
			found = true
		}
	}
	if !found {
		t.Error("message buffered during flush never delivered to the new view")
	}
}

func TestMultipleGroupsIndependent(t *testing.T) {
	const g2 ids.HWGID = 2
	w := newWorld(t, 3, autoCfg())
	for i := 0; i < 3; i++ {
		if err := w.stacks[ids.ProcessID(i)].Join(g1); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.stacks[0].Join(g2); err != nil {
		t.Fatal(err)
	}
	if err := w.stacks[1].Join(g2); err != nil {
		t.Fatal(err)
	}
	w.run(5 * time.Second)
	w.requireSameView(g1, 0, 1, 2)
	vg2 := w.view(0, g2)
	if !vg2.Members.Equal(ids.NewMembers(0, 1)) {
		t.Fatalf("g2 members = %v", vg2.Members)
	}
	gs := w.stacks[0].Groups()
	if len(gs) != 2 || gs[0] != g1 || gs[1] != g2 {
		t.Errorf("Groups() = %v", gs)
	}
}

func TestDeterministicRuns(t *testing.T) {
	runOnce := func() string {
		w := newWorld(t, 5, autoCfg())
		for i := 0; i < 5; i++ {
			if err := w.stacks[ids.ProcessID(i)].Join(g1); err != nil {
				t.Fatal(err)
			}
		}
		w.run(3 * time.Second)
		w.nw.SetPartitions([]netsim.NodeID{0, 1, 2}, []netsim.NodeID{3, 4})
		w.run(3 * time.Second)
		w.nw.Heal()
		w.run(4 * time.Second)
		var out string
		for pid := ids.ProcessID(0); pid < 5; pid++ {
			out += fmt.Sprintf("%v:", pid)
			for _, e := range w.ups[pid].log[g1] {
				if e.kind == "view" {
					out += e.view.String() + ";"
				}
			}
			out += "\n"
		}
		return out
	}
	if a, b := runOnce(), runOnce(); a != b {
		t.Errorf("nondeterministic runs:\n%s\nvs\n%s", a, b)
	}
}

func TestTable1Interface(t *testing.T) {
	// Experiment E1: the substrate exports exactly the Table 1 interface.
	// Downcalls: Join, Leave, Send, StopOk. Upcalls: View, Data, Stop.
	// This assertion is structural: it fails to compile if the interface
	// drifts.
	type downcalls interface {
		Join(ids.HWGID) error
		Leave(ids.HWGID) error
		Send(ids.HWGID, Payload) error
		StopOk(ids.HWGID) error
	}
	var _ downcalls = (*Stack)(nil)
	var _ Upcalls = (*tUp)(nil)
}

func TestHeavyTrafficUnderChurn(t *testing.T) {
	// Stress: continuous traffic while members crash and partitions come
	// and go; view synchrony must hold throughout.
	w := newWorld(t, 6, autoCfg())
	for i := 0; i < 6; i++ {
		if err := w.stacks[ids.ProcessID(i)].Join(g1); err != nil {
			t.Fatal(err)
		}
	}
	w.run(6 * time.Second)

	seq := 0
	tick := w.s.Every(20*time.Millisecond, func() {
		seq++
		sender := ids.ProcessID(seq % 6)
		if w.nw.Crashed(sender) {
			return
		}
		if w.stacks[sender].IsMember(g1) {
			_ = w.stacks[sender].Send(g1, tPayload{ID: fmt.Sprintf("s%d", seq), Size: 200})
		}
	})
	w.run(time.Second)
	w.nw.SetPartitions([]netsim.NodeID{0, 1, 2}, []netsim.NodeID{3, 4, 5})
	w.run(2 * time.Second)
	w.nw.Heal()
	w.run(2 * time.Second)
	w.nw.Crash(5)
	w.run(2 * time.Second)
	tick.Stop()
	w.run(3 * time.Second)

	w.requireSameView(g1, 0, 1, 2, 3, 4)
	checkViewSynchrony(t, w, g1)
}

package vsync

import (
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"plwg/internal/ids"
	"plwg/internal/netsim"
)

// TestVsyncChaos drives the substrate alone through randomized churn —
// joins, leaves, sends, crashes, partitions, heals — and asserts the two
// core guarantees afterwards: all live members converge on one view, and
// view synchrony held throughout. Deterministic per seed.
func TestVsyncChaos(t *testing.T) {
	seeds := int64(8)
	if os.Getenv("PLWG_SOAK") != "" {
		seeds = 100
	}
	for seed := int64(1); seed <= seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runVsyncChaos(t, seed, autoCfg())
		})
	}
}

// TestVsyncChaosTotalOrder repeats the churn under total-order delivery
// and additionally checks identical delivery sequences per stable view.
func TestVsyncChaosTotalOrder(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			w := runVsyncChaos(t, seed, totalCfg())
			// Everyone alive and in the final view delivered the same
			// sequence within each pair of consecutive shared views;
			// checkViewSynchrony (already run) covers sets. For total
			// order we additionally compare full sequences of members
			// that share the complete view history from the last
			// stable view — approximate by comparing final-view
			// members' deliveries AFTER their final view install.
			final, _ := firstLiveView(w)
			type seq []string
			per := make(map[ids.ProcessID]seq)
			for _, p := range final.Members {
				var out seq
				inFinal := false
				for _, e := range w.ups[p].log[g1] {
					switch e.kind {
					case "view":
						inFinal = e.view.ID == final.ID
					case "data":
						if inFinal {
							out = append(out, fmt.Sprintf("%v:%s", e.src, e.pay))
						}
					}
				}
				per[p] = out
			}
			ref := per[final.Members[0]]
			for _, p := range final.Members[1:] {
				got := per[p]
				if len(got) != len(ref) {
					t.Fatalf("final-view delivery counts differ: %v=%d vs %v=%d",
						p, len(got), final.Members[0], len(ref))
				}
				for i := range ref {
					if got[i] != ref[i] {
						t.Fatalf("total order violated in final view at %d: %q vs %q",
							i, got[i], ref[i])
					}
				}
			}
		})
	}
}

func firstLiveView(w *world) (ids.View, ids.ProcessID) {
	for pid, st := range w.stacks {
		if w.nw.Crashed(pid) {
			continue
		}
		if v, ok := st.CurrentView(g1); ok {
			return v, pid
		}
	}
	return ids.View{}, -1
}

func runVsyncChaos(t *testing.T, seed int64, cfg Config) *world {
	t.Helper()
	const n = 6
	w := newWorld(t, n, cfg)
	r := rand.New(rand.NewSource(seed))

	member := make(map[ids.ProcessID]bool)
	crashed := make(map[ids.ProcessID]bool)
	crashes := 0
	partitioned := false
	msg := 0

	for i := 0; i < n; i++ {
		_ = w.stacks[ids.ProcessID(i)].Join(g1)
		member[ids.ProcessID(i)] = true
	}
	w.run(6 * time.Second)

	for op := 0; op < 50; op++ {
		w.run(time.Duration(100+r.Intn(500)) * time.Millisecond)
		p := ids.ProcessID(r.Intn(n))
		switch k := r.Intn(12); {
		case k < 5: // send
			if member[p] && !crashed[p] {
				msg++
				_ = w.stacks[p].Send(g1, tPayload{ID: fmt.Sprintf("v%d", msg), Size: 100})
			}
		case k < 7: // leave
			if member[p] && !crashed[p] {
				_ = w.stacks[p].Leave(g1)
				member[p] = false
			}
		case k < 9: // (re)join
			if !member[p] && !crashed[p] {
				_ = w.stacks[p].Join(g1)
				member[p] = true
			}
		case k < 11: // partition toggle
			if partitioned {
				w.nw.Heal()
				partitioned = false
			} else {
				cut := 1 + r.Intn(n-1)
				var a, b []netsim.NodeID
				for i := 0; i < n; i++ {
					if i < cut {
						a = append(a, ids.ProcessID(i))
					} else {
						b = append(b, ids.ProcessID(i))
					}
				}
				w.nw.SetPartitions(a, b)
				partitioned = true
			}
		default: // crash (≤2)
			if crashes < 2 && !crashed[p] {
				w.nw.Crash(p)
				crashed[p] = true
				member[p] = false
				crashes++
			}
		}
	}
	w.nw.Heal()
	w.run(20 * time.Second)

	var want []ids.ProcessID
	for p, in := range member {
		if in && !crashed[p] {
			want = append(want, p)
		}
	}
	if len(want) > 0 {
		w.requireSameView(g1, want...)
	}
	checkViewSynchrony(t, w, g1)
	return w
}

package vsync

import (
	"fmt"
	"sort"

	"plwg/internal/ids"
	"plwg/internal/wire"
)

// Binary-codec support (internal/wire) for the hot message types: data,
// order tokens, acks and heartbeats dominate datagram volume, so they
// bypass gob on the real transport. The rare control messages (join,
// flush, view installation) stay on the gob fallback. Identifiers 1–15
// are reserved for this package.

const (
	wireMsgData byte = iota + 1
	wireOrdToken
	wireMsgAck
	wireMsgAckVector
	wireMsgHeartbeat

	// wireBenchPayload (top of the vsync range) is the stand-in
	// application payload of the codec microbenchmarks.
	wireBenchPayload byte = 15
)

func putViewID(b *wire.Buffer, v ids.ViewID) {
	b.Int64(int64(v.Coord))
	b.Uint64(v.Seq)
}

func getViewID(r *wire.Reader) ids.ViewID {
	return ids.ViewID{Coord: ids.ProcessID(r.Int64()), Seq: r.Uint64()}
}

func putMsgKey(b *wire.Buffer, k msgKey) {
	putViewID(b, k.View)
	b.Int64(int64(k.Sender))
	b.Uint64(k.Seq)
}

func getMsgKey(r *wire.Reader) msgKey {
	return msgKey{View: getViewID(r), Sender: ids.ProcessID(r.Int64()), Seq: r.Uint64()}
}

// putSeqMap encodes a per-process sequence vector with sorted keys, so
// identical vectors encode to identical bytes.
func putSeqMap(b *wire.Buffer, m map[ids.ProcessID]uint64) {
	b.Uint64(uint64(len(m)))
	if len(m) == 0 {
		return
	}
	keys := make([]ids.ProcessID, 0, len(m))
	for p := range m {
		keys = append(keys, p)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, p := range keys {
		b.Int64(int64(p))
		b.Uint64(m[p])
	}
}

func getSeqMap(r *wire.Reader) map[ids.ProcessID]uint64 {
	n := r.Uint64()
	if n == 0 || r.Err() != nil {
		return nil
	}
	const maxEntries = 1 << 16 // sanity bound against corrupt input
	if n > maxEntries {
		return nil
	}
	m := make(map[ids.ProcessID]uint64, n)
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		p := ids.ProcessID(r.Int64())
		m[p] = r.Uint64()
	}
	return m
}

// WireID implements wire.Marshaler.
func (m *msgData) WireID() byte { return wireMsgData }

// MarshalWire implements wire.Marshaler. It reports false when the
// payload has no codec support; the transport then falls back to gob
// for the whole datagram.
func (m *msgData) MarshalWire(b *wire.Buffer) bool {
	b.Int64(int64(m.GID))
	putViewID(b, m.View)
	b.Int64(int64(m.Sender))
	b.Uint64(m.Seq)
	b.Bool(m.Ordered)
	putSeqMap(b, m.Acks)
	if m.Payload == nil {
		b.Byte(0)
		return true
	}
	pm, ok := m.Payload.(wire.Marshaler)
	if !ok {
		return false
	}
	b.Byte(1)
	return wire.Encode(b, pm)
}

// WireID implements wire.Marshaler.
func (t *ordToken) WireID() byte { return wireOrdToken }

// MarshalWire implements wire.Marshaler.
func (t *ordToken) MarshalWire(b *wire.Buffer) bool {
	putMsgKey(b, t.Key)
	b.Uint64(t.Idx)
	return true
}

// WireID implements wire.Marshaler.
func (m *msgAck) WireID() byte { return wireMsgAck }

// MarshalWire implements wire.Marshaler.
func (m *msgAck) MarshalWire(b *wire.Buffer) bool {
	b.Int64(int64(m.GID))
	putMsgKey(b, m.Key)
	b.Int64(int64(m.From))
	return true
}

// WireID implements wire.Marshaler.
func (m *msgAckVector) WireID() byte { return wireMsgAckVector }

// MarshalWire implements wire.Marshaler.
func (m *msgAckVector) MarshalWire(b *wire.Buffer) bool {
	b.Int64(int64(m.GID))
	putViewID(b, m.View)
	b.Int64(int64(m.From))
	putSeqMap(b, m.MaxSeq)
	return true
}

// WireID implements wire.Marshaler.
func (m *msgHeartbeat) WireID() byte { return wireMsgHeartbeat }

// MarshalWire implements wire.Marshaler.
func (m *msgHeartbeat) MarshalWire(b *wire.Buffer) bool {
	b.Int64(int64(m.GID))
	b.Int64(int64(m.From))
	putViewID(b, m.View)
	b.Uint64(m.MaxSeq)
	return true
}

func registerCodecs() {
	wire.Register(wireMsgData, func(r *wire.Reader) (wire.Marshaler, error) {
		m := &msgData{
			GID: ids.HWGID(r.Int64()),
		}
		m.View = getViewID(r)
		m.Sender = ids.ProcessID(r.Int64())
		m.Seq = r.Uint64()
		m.Ordered = r.Bool()
		m.Acks = getSeqMap(r)
		if r.Bool() {
			pm, err := wire.Decode(r)
			if err != nil {
				return nil, err
			}
			p, ok := pm.(Payload)
			if !ok {
				return nil, fmt.Errorf("vsync: decoded payload %T is not a Payload", pm)
			}
			m.Payload = p
		}
		return m, r.Err()
	})
	wire.Register(wireOrdToken, func(r *wire.Reader) (wire.Marshaler, error) {
		return &ordToken{Key: getMsgKey(r), Idx: r.Uint64()}, r.Err()
	})
	wire.Register(wireMsgAck, func(r *wire.Reader) (wire.Marshaler, error) {
		m := &msgAck{GID: ids.HWGID(r.Int64())}
		m.Key = getMsgKey(r)
		m.From = ids.ProcessID(r.Int64())
		return m, r.Err()
	})
	wire.Register(wireMsgAckVector, func(r *wire.Reader) (wire.Marshaler, error) {
		m := &msgAckVector{GID: ids.HWGID(r.Int64())}
		m.View = getViewID(r)
		m.From = ids.ProcessID(r.Int64())
		m.MaxSeq = getSeqMap(r)
		return m, r.Err()
	})
	wire.Register(wireMsgHeartbeat, func(r *wire.Reader) (wire.Marshaler, error) {
		m := &msgHeartbeat{GID: ids.HWGID(r.Int64())}
		m.From = ids.ProcessID(r.Int64())
		m.View = getViewID(r)
		m.MaxSeq = r.Uint64()
		return m, r.Err()
	})
	wire.Register(wireBenchPayload, func(r *wire.Reader) (wire.Marshaler, error) {
		p := &benchPayload{}
		if raw := r.Bytes(); len(raw) > 0 {
			p.Data = append([]byte(nil), raw...)
		}
		return p, r.Err()
	})
}

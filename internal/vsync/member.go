package vsync

import (
	"fmt"
	"sort"
	"time"

	"plwg/internal/ids"
	"plwg/internal/metrics"
	"plwg/internal/sim"
	"plwg/internal/trace"
)

// memberState is the per-group protocol state of a process.
type memberState int

const (
	// stateJoining: announcing JOIN-REQ, waiting to be admitted into an
	// existing view or to form a singleton view.
	stateJoining memberState = iota + 1
	// stateNormal: a view is installed and traffic flows.
	stateNormal
	// stateStopped: a STOP was received; the member has quiesced (or is
	// waiting for the user's StopOk) and awaits the NEW-VIEW.
	stateStopped
)

// member is the per-(process, group) protocol instance.
type member struct {
	st  *Stack
	gid ids.HWGID

	state memberState
	view  ids.View

	// Sending.
	nextSeq uint64
	pending []Payload
	// piggybacked is set when an outgoing data message carried the
	// cumulative ack vector (AckPiggyback); the ack ticker skips one
	// standalone vector per interval in which it is set.
	piggybacked bool

	// Per-view delivery and stability state (reset at each install).
	delivered map[msgKey]bool
	buffer    map[msgKey]*msgData
	acks      map[msgKey]map[ids.ProcessID]bool
	// ackVectors holds, per peer, the highest contiguous sequence the
	// peer acknowledged per sender (AckPeriodic only).
	ackVectors map[ids.ProcessID]map[ids.ProcessID]uint64
	// deliveredSeq tracks the highest contiguous sequence delivered per
	// sender; together with extras it forms the flush digest.
	deliveredSeq map[ids.ProcessID]uint64
	// extras records deliveries beyond the contiguous prefix (possible
	// only through flush retransmissions).
	extras map[msgKey]bool

	// Loss repair (reset per view). maxSeen is the highest sequence
	// observed per sender; gaps below it that persist across two scans
	// are NACKed to the sender.
	maxSeen  map[ids.ProcessID]uint64
	prevGaps map[msgKey]bool

	// Total-order state (OrderingTotal; reset per view).
	// ordBuf holds received Ordered messages awaiting their token.
	ordBuf map[msgKey]*msgData
	// ordTokens maps order indices to message keys.
	ordTokens map[uint64]msgKey
	// ordNext is the next order index to deliver.
	ordNext uint64
	// ordCounter is the coordinator's token allocator.
	ordCounter uint64

	// Failure detection. Suspicion needs FDSuspectMisses consecutive
	// checks past FDTimeout (fdStrikes counts them), so a single delay
	// spike does not trigger a view change.
	lastHeard map[ids.ProcessID]sim.Time
	fdStrikes map[ids.ProcessID]int
	suspects  map[ids.ProcessID]bool

	// Flush participation (responder side).
	stopEpoch   epoch
	stopPending bool // Stop upcall delivered, awaiting StopOk
	respTimer   *sim.Timer

	// joinCommit is the admission round a joiner has committed to. A
	// joiner answers one admission at a time (defecting only to a
	// lower-numbered initiator); otherwise two concurrent coordinators
	// could both install views claiming the joiner, while the joiner
	// enters only one of them.
	joinCommit      epoch
	joinCommitTimer *sim.Timer

	// Reconfiguration (initiator side); nil when idle.
	rc *reconfig

	// knownPeers holds concurrent views discovered through presence
	// announcements (HWG-level peer discovery), pending a merge.
	knownPeers map[ids.ViewID]ids.View

	// Joins observed while this process coordinates the group.
	pendingJoiners map[ids.ProcessID]bool
	// Leave requests observed while this process coordinates the group.
	leavers map[ids.ProcessID]bool

	// Leave intent of this process itself.
	leaveRequested bool

	// Timers.
	hbTicker   *sim.Ticker
	fdTicker   *sim.Ticker
	presTicker *sim.Ticker
	ackTicker  *sim.Ticker
	nackTicker *sim.Ticker
	joinTicker *sim.Ticker
	joinTimer  *sim.Timer

	// hLatency is the per-group one-way send→deliver latency histogram,
	// fed by wire trace contexts on sampled data envelopes (rtnet only;
	// nil histogram when metrics are disabled).
	hLatency *metrics.Histo
}

// reconfig is the initiator-side state of one flush round.
type reconfig struct {
	epoch epoch
	// startedAt is when the round began, for the flush-duration
	// histogram observed at completion.
	startedAt sim.Time
	// targets maps each old view being flushed to its expected
	// responders.
	targets map[ids.ViewID]ids.Members
	joiners ids.Members
	// got holds the FLUSH-OK received per responder.
	got      map[ids.ProcessID]*msgFlushOk
	expected ids.Members
	timer    *sim.Timer
	attempts int
	// pulling is set while gap messages are being fetched from their
	// holders; wanted maps each missing message to nil until its copy
	// arrives in a FLUSH-FILL.
	pulling bool
	wanted  map[msgKey]*msgData
}

func newMember(s *Stack, gid ids.HWGID) *member {
	return &member{
		st:             s,
		gid:            gid,
		knownPeers:     make(map[ids.ViewID]ids.View),
		pendingJoiners: make(map[ids.ProcessID]bool),
		leavers:        make(map[ids.ProcessID]bool),
		hLatency:       s.reg.Histogram("hwg_oneway_latency", metrics.L("hwg", gid.String())),
	}
}

func (m *member) multicast(msg interface {
	WireSize() int
}) {
	m.st.net.Multicast(m.st.pid, GroupAddr(m.gid), msg)
}

func (m *member) unicast(to ids.ProcessID, msg interface {
	WireSize() int
}) {
	m.st.net.Unicast(m.st.pid, to, GroupAddr(m.gid), msg)
}

// --- joining -------------------------------------------------------------

func (m *member) startJoin() {
	m.state = stateJoining
	m.st.net.Subscribe(m.st.pid, GroupAddr(m.gid))
	m.st.trace(m.gid, "join-start", "joining")
	send := func() { m.multicast(&msgJoinReq{GID: m.gid, From: m.st.pid}) }
	send()
	m.joinTicker = m.st.clock.Every(m.st.cfg.JoinRetryInterval, send)
	m.armJoinDeadline()
}

func (m *member) armJoinDeadline() {
	m.extendJoinDeadline(m.st.cfg.JoinTimeout)
}

// extendJoinDeadline postpones the fall-back-to-singleton decision, e.g.
// while a flush that admits this process is in progress.
func (m *member) extendJoinDeadline(d time.Duration) {
	if m.joinTimer != nil {
		m.joinTimer.Stop()
	}
	m.joinTimer = m.st.clock.After(d, m.formSingleton)
}

// formSingleton installs a view containing only this process, making it
// the group's first (or a partitioned-away) member. Concurrent singletons
// later merge through presence discovery.
func (m *member) formSingleton() {
	if m.state != stateJoining {
		return
	}
	v := ids.View{
		ID:      ids.ViewID{Coord: m.st.pid, Seq: m.st.nextViewSeq(m.gid)},
		Members: ids.NewMembers(m.st.pid),
	}
	m.install(v)
}

func (m *member) onJoinReq(from ids.ProcessID, _ *msgJoinReq) {
	m.heard(from)
	if m.state == stateJoining {
		return // joiners cannot admit each other
	}
	if m.view.Contains(from) {
		return // already admitted; duplicate or stale request
	}
	if m.view.Coordinator() != m.st.pid {
		return // only the operating coordinator admits joiners
	}
	m.pendingJoiners[from] = true
	m.maybeReconfigure("join")
}

// --- leaving -------------------------------------------------------------

func (m *member) requestLeave() {
	if m.state == stateJoining {
		// Not yet in any view: abort the join silently.
		m.st.trace(m.gid, "leave", "aborted join")
		m.st.dropMember(m.gid)
		return
	}
	m.leaveRequested = true
	if len(m.view.Members) <= 1 {
		m.st.trace(m.gid, "leave", "last member, dissolving")
		m.st.dropMember(m.gid)
		return
	}
	if m.view.Coordinator() == m.st.pid {
		m.maybeReconfigure("leave")
		return
	}
	m.multicast(&msgLeaveReq{GID: m.gid, From: m.st.pid})
}

func (m *member) onLeaveReq(from ids.ProcessID, _ *msgLeaveReq) {
	m.heard(from)
	if !m.view.Contains(from) {
		return
	}
	m.leavers[from] = true
	if m.state == stateNormal && m.view.Coordinator() == m.st.pid {
		m.maybeReconfigure("leave")
	}
}

// --- data path -----------------------------------------------------------

func (m *member) send(p Payload) {
	if m.state != stateNormal {
		m.pending = append(m.pending, p)
		return
	}
	m.nextSeq++
	m.st.ins.sends.Inc()
	m.multicast(&msgData{
		GID:     m.gid,
		View:    m.view.ID,
		Sender:  m.st.pid,
		Seq:     m.nextSeq,
		Payload: p,
		Ordered: m.st.cfg.Ordering == OrderingTotal,
		Acks:    m.ackSnapshot(),
	})
}

// ackSnapshot copies the delivered-sequence vector for piggybacking on an
// outgoing data message (nil under the other ack policies, or when
// nothing was delivered yet).
func (m *member) ackSnapshot() map[ids.ProcessID]uint64 {
	if m.st.cfg.AckPolicy != AckPiggyback || len(m.deliveredSeq) == 0 {
		return nil
	}
	vec := make(map[ids.ProcessID]uint64, len(m.deliveredSeq))
	for s, q := range m.deliveredSeq {
		vec[s] = q
	}
	m.piggybacked = true
	return vec
}

// sendInternal multicasts a protocol-internal payload (order tokens) as
// an unordered data message, sharing reliability and flush semantics
// with application traffic.
func (m *member) sendInternal(p Payload) {
	m.nextSeq++
	m.multicast(&msgData{
		GID:     m.gid,
		View:    m.view.ID,
		Sender:  m.st.pid,
		Seq:     m.nextSeq,
		Payload: p,
		Acks:    m.ackSnapshot(),
	})
}

func (m *member) onData(from ids.ProcessID, d *msgData) {
	if d.View != m.view.ID {
		return // tagged with a view this process is not in
	}
	m.heard(from)
	// Attach the envelope's wire trace context (live transport only, and
	// only the sampled minority of data envelopes). Guarding on the
	// origin keeps retransmitted copies — which re-enter via onRetrans
	// and flush fills, not here — from ever carrying a stale context.
	if tc, ok := m.st.inboundTC(); ok && tc.Origin == int64(d.Sender) {
		d.tc, d.tcOK = tc, true
	}
	m.deliverData(d, true)
	if len(d.Acks) > 0 {
		// Piggybacked cumulative vector: same stability rule as a
		// standalone msgAckVector.
		m.applyAckVector(d.Sender, d.Acks)
	}
}

// deliverData performs deduplicated delivery; ack controls whether a
// stability acknowledgement is sent (live traffic yes, flush
// retransmissions no).
func (m *member) deliverData(d *msgData, ack bool) {
	k := d.key()
	if d.Seq > m.maxSeen[d.Sender] {
		m.maxSeen[d.Sender] = d.Seq
	}
	if m.delivered[k] {
		return
	}
	m.delivered[k] = true
	m.buffer[k] = d
	// Maintain the flush digest: contiguous prefix per sender, plus
	// out-of-order extras (absorbed into the prefix as gaps close).
	if m.deliveredSeq[d.Sender]+1 == d.Seq {
		m.deliveredSeq[d.Sender] = d.Seq
		for {
			next := msgKey{View: d.View, Sender: d.Sender, Seq: m.deliveredSeq[d.Sender] + 1}
			if !m.extras[next] {
				break
			}
			delete(m.extras, next)
			m.deliveredSeq[d.Sender]++
		}
	} else if d.Seq > m.deliveredSeq[d.Sender] {
		m.extras[k] = true
	}
	if d.Sender != m.st.pid && m.st.cfg.AckPolicy == AckPerMessage && ack {
		m.multicast(&msgAck{GID: m.gid, Key: k, From: m.st.pid})
	}
	m.recordAck(k, d.Sender) // the sender trivially has its own message
	m.recordAck(k, m.st.pid)

	// Total-order machinery: tokens sequence buffered Ordered messages;
	// Ordered messages wait for their token.
	if tok, isToken := d.Payload.(*ordToken); isToken {
		m.ordTokens[tok.Idx] = tok.Key
		m.drainOrdered()
		return
	}
	if d.Ordered {
		m.ordBuf[k] = d
		if m.view.Coordinator() == m.st.pid {
			// This member sequences the view's traffic.
			m.ordCounter++
			m.sendInternal(&ordToken{Key: k, Idx: m.ordCounter})
		}
		m.drainOrdered()
		return
	}
	m.appDeliver(d)
}

// appDeliver hands a message to the user. When the message arrived with
// a wire trace context it also records one-way send→deliver latency
// (wall clocks are the only cross-machine-comparable timebase; origin
// virtual times are per-node) and exposes the context to the upcall via
// Stack.InboundTC for the duration of the call.
func (m *member) appDeliver(d *msgData) {
	m.st.ins.deliveries.Inc()
	if d.tcOK && d.Sender != m.st.pid {
		lat := time.Duration(time.Now().UnixNano() - d.tc.Wall)
		if lat < 0 {
			lat = 0 // clock skew between hosts; clamp, don't poison
		}
		m.hLatency.Observe(lat)
	}
	m.st.inTC, m.st.inTCOK = d.tc, d.tcOK
	if m.st.up != nil {
		m.st.up.Data(m.gid, d.Sender, d.Payload)
	}
	m.st.inTCOK = false
}

// drainOrdered delivers buffered Ordered messages in token order.
func (m *member) drainOrdered() {
	for {
		k, ok := m.ordTokens[m.ordNext+1]
		if !ok {
			return
		}
		d, have := m.ordBuf[k]
		if !have {
			return // token arrived before its message (possible on UDP)
		}
		delete(m.ordBuf, k)
		delete(m.ordTokens, m.ordNext+1)
		m.ordNext++
		m.appDeliver(d)
	}
}

// flushOrderedResidue delivers, at the end of a view, every Ordered
// message still waiting for a token: first any fully tokenized prefix,
// then the untokenized rest in deterministic key order. View synchrony
// makes the residue identical at every surviving member, so the total
// order extends across the view change consistently.
func (m *member) flushOrderedResidue() {
	if len(m.ordBuf) == 0 {
		return
	}
	m.drainOrdered()
	if len(m.ordBuf) == 0 {
		return
	}
	keys := make([]msgKey, 0, len(m.ordBuf))
	for k := range m.ordBuf {
		keys = append(keys, k)
	}
	sortKeys(keys)
	for _, k := range keys {
		d := m.ordBuf[k]
		delete(m.ordBuf, k)
		m.appDeliver(d)
	}
}

func (m *member) onAck(from ids.ProcessID, a *msgAck) {
	if a.Key.View != m.view.ID {
		return
	}
	m.heard(from)
	m.recordAck(a.Key, from)
}

func (m *member) onAckVector(from ids.ProcessID, a *msgAckVector) {
	if a.View != m.view.ID {
		return
	}
	m.heard(from)
	m.applyAckVector(from, a.MaxSeq)
}

// applyAckVector merges a cumulative acknowledgement vector from a peer
// (standalone or piggybacked; the caller has checked the view) and
// collects any stability it unlocks.
func (m *member) applyAckVector(from ids.ProcessID, maxSeq map[ids.ProcessID]uint64) {
	vec := m.ackVectors[from]
	if vec == nil {
		vec = make(map[ids.ProcessID]uint64)
		m.ackVectors[from] = vec
	}
	for sender, seq := range maxSeq {
		if vec[sender] < seq {
			vec[sender] = seq
		}
	}
	m.collectVectorStability()
}

func (m *member) recordAck(k msgKey, from ids.ProcessID) {
	set := m.acks[k]
	if set == nil {
		set = make(map[ids.ProcessID]bool)
		m.acks[k] = set
	}
	set[from] = true
	m.checkStable(k)
}

// checkStable discards the buffered copy once every view member holds the
// message.
func (m *member) checkStable(k msgKey) {
	set := m.acks[k]
	for _, p := range m.view.Members {
		if !set[p] {
			return
		}
	}
	delete(m.buffer, k)
	delete(m.acks, k)
}

// collectVectorStability applies cumulative-ack stability (AckPeriodic
// and AckPiggyback).
func (m *member) collectVectorStability() {
	for k := range m.buffer {
		stable := true
		for _, p := range m.view.Members {
			if p == m.st.pid || p == k.Sender {
				continue
			}
			if m.ackVectors[p][k.Sender] < k.Seq {
				stable = false
				break
			}
		}
		if stable {
			delete(m.buffer, k)
			delete(m.acks, k)
		}
	}
}

func (m *member) sendAckVector() {
	if m.state != stateNormal || len(m.deliveredSeq) == 0 {
		return
	}
	if m.st.cfg.AckPolicy == AckPiggyback && m.piggybacked {
		// Data traffic carried the vector since the last tick; the
		// standalone frame would be pure overhead.
		m.piggybacked = false
		return
	}
	vec := make(map[ids.ProcessID]uint64, len(m.deliveredSeq))
	for s, q := range m.deliveredSeq {
		vec[s] = q
	}
	m.multicast(&msgAckVector{GID: m.gid, View: m.view.ID, From: m.st.pid, MaxSeq: vec})
}

// --- loss repair -----------------------------------------------------------

// scanGaps NACKs sequence gaps that persisted across two consecutive
// scans (one interval of grace absorbs in-flight reordering). The
// simulated bus never loses frames unless configured to; on real UDP
// this is what keeps a lost datagram from stalling delivery until the
// next view change.
func (m *member) scanGaps() {
	if m.state != stateNormal {
		m.prevGaps = make(map[msgKey]bool)
		return
	}
	const maxNackPerScan = 64
	cur := make(map[msgKey]bool)
	perTarget := make(map[ids.ProcessID][]msgKey)
	total := 0
	for _, s := range m.view.Members {
		// Ask the sender for its own messages; when WE are the sender
		// (our loopback delivery was lost), any other member that
		// delivered the message still buffers it — unstable, since we
		// never acknowledged it.
		target := s
		if s == m.st.pid {
			target = -1
			for _, p := range m.view.Members {
				if p != m.st.pid {
					target = p
					break
				}
			}
			if target < 0 {
				continue // sole member: nobody can help
			}
		}
		top := m.maxSeen[s]
		for seq := m.deliveredSeq[s] + 1; seq <= top && total < maxNackPerScan; seq++ {
			k := msgKey{View: m.view.ID, Sender: s, Seq: seq}
			if m.delivered[k] {
				continue
			}
			cur[k] = true
			if m.prevGaps[k] {
				perTarget[target] = append(perTarget[target], k)
				total++
			}
		}
	}
	m.prevGaps = cur
	for _, p := range m.view.Members { // deterministic emission order
		keys := perTarget[p]
		if len(keys) == 0 {
			continue
		}
		sortKeys(keys)
		m.st.ins.nacks.Inc()
		m.unicast(p, &msgNack{GID: m.gid, From: m.st.pid, Keys: keys})
	}
}

// onNack answers with buffered copies. A message the requester is missing
// cannot be stable (it never acknowledged it), so the sender still holds
// it.
func (m *member) onNack(from ids.ProcessID, n *msgNack) {
	m.heard(from)
	var msgs []*msgData
	for _, k := range n.Keys {
		if k.View != m.view.ID {
			continue
		}
		if d, ok := m.buffer[k]; ok {
			msgs = append(msgs, d)
		}
	}
	if len(msgs) > 0 {
		m.st.ins.retransMsgs.Add(int64(len(msgs)))
		m.st.traceEvent(trace.Event{
			What:  trace.HWGRetrans,
			Group: m.gid.String(),
			View:  m.view.ID,
			Src:   from,
			Text:  fmt.Sprintf("%d msgs for %v", len(msgs), from),
		})
		m.unicast(from, &msgRetrans{GID: m.gid, Msgs: msgs})
	}
}

func (m *member) onRetrans(from ids.ProcessID, r *msgRetrans) {
	m.heard(from)
	for _, d := range r.Msgs {
		if d.View == m.view.ID {
			m.deliverData(d, true)
		}
	}
}

// --- failure detection and presence --------------------------------------

func (m *member) heard(p ids.ProcessID) {
	if m.lastHeard != nil {
		m.lastHeard[p] = m.st.clock.Now()
	}
	if m.fdStrikes != nil {
		delete(m.fdStrikes, p)
	}
}

// onHeartbeat refreshes the failure detector only for peers that share
// this member's view: a heartbeat tagged with another view proves the
// process is alive, but not that it still participates in ours — counting
// it would mask exactly the divergence that needs repair.
func (m *member) onHeartbeat(from ids.ProcessID, hb *msgHeartbeat) {
	if hb.View != m.view.ID {
		return
	}
	m.heard(from)
	if hb.MaxSeq > m.maxSeen[from] {
		m.maxSeen[from] = hb.MaxSeq
	}
}

func (m *member) sendHeartbeat() {
	if m.state == stateJoining {
		return
	}
	m.multicast(&msgHeartbeat{
		GID: m.gid, From: m.st.pid, View: m.view.ID, MaxSeq: m.nextSeq,
	})
}

func (m *member) checkFailures() {
	if m.state != stateNormal {
		return
	}
	now := m.st.clock.Now()
	changed := false
	for _, p := range m.view.Members {
		if p == m.st.pid || m.suspects[p] {
			continue
		}
		if now.Sub(m.lastHeard[p]) <= m.st.cfg.FDTimeout {
			delete(m.fdStrikes, p)
			continue
		}
		m.fdStrikes[p]++
		if m.fdStrikes[p] < m.st.cfg.FDSuspectMisses {
			continue
		}
		delete(m.fdStrikes, p)
		m.suspects[p] = true
		changed = true
		m.st.ins.suspects.Inc()
		m.st.trace(m.gid, "suspect", "%v", p)
	}
	if !changed && len(m.suspects) == 0 {
		return
	}
	// The smallest non-suspected member acts as coordinator for the
	// exclusion.
	acting := ids.ProcessID(-1)
	for _, p := range m.view.Members {
		if !m.suspects[p] {
			acting = p
			break
		}
	}
	if acting == m.st.pid {
		m.maybeReconfigure("exclude")
	}
}

func (m *member) sendPresence() {
	if m.state != stateNormal || m.view.Coordinator() != m.st.pid {
		return
	}
	m.multicast(&msgPresence{GID: m.gid, View: m.view.Clone()})
}

// onPresence implements HWG-level peer discovery: when two concurrent
// views of the group can hear each other again, the coordinator with the
// smaller identifier initiates a merge (Section 4, strategy point 1).
// Discovered views accumulate in knownPeers so one flush can absorb
// several concurrent views at once.
func (m *member) onPresence(from ids.ProcessID, p *msgPresence) {
	if p.View.ID == m.view.ID {
		m.heard(from)
	}
	if m.view.ID.IsZero() || m.view.Coordinator() != m.st.pid {
		return
	}
	w := p.View
	if w.ID == m.view.ID {
		return
	}
	if m.view.Contains(from) {
		return // stale presence from a view already merged into ours
	}
	if w.Contains(m.st.pid) {
		return // stale presence of a view this process has since left
	}
	// Concurrent views never share members, so a fresh announcement of w
	// proves any known view overlapping it is stale. Purging here matters:
	// a stale superset (e.g. one still listing a crashed process) would
	// otherwise both swallow w in mergePeers' subset hygiene and defer
	// merge initiation to a coordinator that no longer exists.
	for vid, kw := range m.knownPeers {
		if vid != w.ID && len(kw.Members.Intersect(w.Members)) > 0 {
			delete(m.knownPeers, vid)
		}
	}
	if _, seen := m.knownPeers[w.ID]; !seen {
		m.st.trace(m.gid, "discover", "concurrent view %v", w)
	}
	m.knownPeers[w.ID] = w.Clone()
	m.mergePeers()
}

// --- timers --------------------------------------------------------------

// startTimers arms the periodic protocol timers after the first install.
// Heartbeat phases are staggered per (group, process) so that unrelated
// groups do not beat in lockstep.
func (m *member) startTimers() {
	if m.hbTicker != nil {
		return
	}
	cfg := m.st.cfg
	phase := time.Duration((int64(m.gid)*131 + int64(m.st.pid)*17) % int64(cfg.HeartbeatInterval))
	m.st.clock.After(phase, func() {
		if m.hbTicker != nil {
			return
		}
		if _, ok := m.st.groups[m.gid]; !ok {
			return
		}
		m.hbTicker = m.st.clock.Every(cfg.HeartbeatInterval, m.sendHeartbeat)
		m.fdTicker = m.st.clock.Every(cfg.FDCheckInterval, m.checkFailures)
		m.presTicker = m.st.clock.Every(cfg.PresenceInterval, m.sendPresence)
		m.nackTicker = m.st.clock.Every(cfg.NackInterval, m.scanGaps)
		if cfg.AckPolicy == AckPeriodic || cfg.AckPolicy == AckPiggyback {
			m.ackTicker = m.st.clock.Every(cfg.AckInterval, m.sendAckVector)
		}
	})
}

func (m *member) stopTimers() {
	for _, t := range []*sim.Ticker{m.hbTicker, m.fdTicker, m.presTicker, m.ackTicker, m.nackTicker, m.joinTicker} {
		if t != nil {
			t.Stop()
		}
	}
	m.hbTicker, m.fdTicker, m.presTicker, m.ackTicker, m.nackTicker, m.joinTicker =
		nil, nil, nil, nil, nil, nil
	for _, t := range []*sim.Timer{m.joinTimer, m.respTimer} {
		if t != nil {
			t.Stop()
		}
	}
	m.joinTimer, m.respTimer = nil, nil
	if m.joinCommitTimer != nil {
		m.joinCommitTimer.Stop()
		m.joinCommitTimer = nil
	}
	if m.rc != nil {
		if m.rc.timer != nil {
			m.rc.timer.Stop()
		}
		m.rc = nil
	}
}

// --- view installation ---------------------------------------------------

// install makes v the current view: the old view's ordered residue is
// delivered, per-view state is reset, pending sends drain into the new
// view, and the View upcall fires.
func (m *member) install(v ids.View) {
	// Close the old view's total order before anything of the new view
	// becomes visible.
	m.flushOrderedResidue()
	if m.joinTicker != nil {
		m.joinTicker.Stop()
		m.joinTicker = nil
	}
	if m.joinTimer != nil {
		m.joinTimer.Stop()
		m.joinTimer = nil
	}
	if m.respTimer != nil {
		m.respTimer.Stop()
		m.respTimer = nil
	}
	if m.joinCommitTimer != nil {
		m.joinCommitTimer.Stop()
		m.joinCommitTimer = nil
	}
	m.joinCommit = epoch{}
	// A competing round supersedes any round of our own; void it so its
	// responders resume immediately.
	m.abortRound()
	m.state = stateNormal
	m.view = v.Clone()
	m.stopPending = false
	m.stopEpoch = epoch{}
	m.nextSeq = 0
	m.piggybacked = false
	m.delivered = make(map[msgKey]bool)
	m.buffer = make(map[msgKey]*msgData)
	m.acks = make(map[msgKey]map[ids.ProcessID]bool)
	m.ackVectors = make(map[ids.ProcessID]map[ids.ProcessID]uint64)
	m.deliveredSeq = make(map[ids.ProcessID]uint64)
	m.extras = make(map[msgKey]bool)
	m.ordBuf = make(map[msgKey]*msgData)
	m.ordTokens = make(map[uint64]msgKey)
	m.ordNext = 0
	m.ordCounter = 0
	m.maxSeen = make(map[ids.ProcessID]uint64)
	m.prevGaps = make(map[msgKey]bool)
	m.lastHeard = make(map[ids.ProcessID]sim.Time, len(v.Members))
	now := m.st.clock.Now()
	for _, p := range v.Members {
		m.lastHeard[p] = now
	}
	m.fdStrikes = make(map[ids.ProcessID]int)
	m.suspects = make(map[ids.ProcessID]bool)
	for p := range m.pendingJoiners {
		if v.Contains(p) {
			delete(m.pendingJoiners, p)
		}
	}
	for p := range m.leavers {
		if !v.Contains(p) {
			delete(m.leavers, p)
		}
	}
	if v.ID.Coord == m.st.pid {
		m.st.observeViewSeq(m.gid, v.ID.Seq)
	}
	m.st.ins.viewInstalls.Inc()
	m.st.traceEvent(trace.Event{
		What:    trace.HWGViewInstall,
		Text:    fmt.Sprintf("%v: %v%s", m.gid, v.ID, v.Members),
		Group:   m.gid.String(),
		View:    v.ID,
		Members: v.Members.Clone(),
	})
	m.startTimers()

	if m.st.up != nil {
		m.st.up.View(m.gid, v.Clone())
	}
	// Drain sends buffered during the change; they are (re)sent in the
	// new view, preserving view-tagged delivery.
	pend := m.pending
	m.pending = nil
	for _, p := range pend {
		m.send(p)
	}
	// Serve joins and leaves that arrived while the flush was running.
	if (len(m.pendingJoiners) > 0 || len(m.leavers) > 0) && m.view.Coordinator() == m.st.pid {
		m.maybeReconfigure("join/leave")
	}
	// Keep merging concurrent views discovered during the change.
	m.mergePeers()
}

// sortKeys orders message keys deterministically.
func sortKeys(ks []msgKey) {
	sort.Slice(ks, func(i, j int) bool {
		a, b := ks[i], ks[j]
		if a.View != b.View {
			return a.View.Less(b.View)
		}
		if a.Sender != b.Sender {
			return a.Sender < b.Sender
		}
		return a.Seq < b.Seq
	})
}

// sortedFlushData orders retransmissions deterministically.
func sortedFlushData(in map[msgKey]*msgData) []*msgData {
	out := make([]*msgData, 0, len(in))
	for _, d := range in {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.View != b.View {
			return a.View.Less(b.View)
		}
		if a.Sender != b.Sender {
			return a.Sender < b.Sender
		}
		return a.Seq < b.Seq
	})
	return out
}

package vsync

import (
	"fmt"
	"testing"
	"time"

	"plwg/internal/ids"
	"plwg/internal/netsim"
)

func totalCfg() Config {
	c := autoCfg()
	c.Ordering = OrderingTotal
	return c
}

// deliveredSeqOf extracts the exact delivery sequence at one member.
func deliveredSeqOf(u *tUp, gid ids.HWGID) []string {
	var out []string
	for _, e := range u.log[gid] {
		if e.kind == "data" {
			out = append(out, fmt.Sprintf("%v:%s", e.src, e.pay))
		}
	}
	return out
}

func requireIdenticalSequences(t *testing.T, w *world, gid ids.HWGID, pids ...ids.ProcessID) {
	t.Helper()
	ref := deliveredSeqOf(w.ups[pids[0]], gid)
	for _, p := range pids[1:] {
		got := deliveredSeqOf(w.ups[p], gid)
		if len(got) != len(ref) {
			t.Fatalf("%v delivered %d messages, %v delivered %d\n%v\nvs\n%v",
				p, len(got), pids[0], len(ref), got, ref)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("total order violated at position %d: %v saw %q, %v saw %q",
					i, p, got[i], pids[0], ref[i])
			}
		}
	}
}

func TestTotalOrderUniformDelivery(t *testing.T) {
	w := newWorld(t, 4, totalCfg())
	for i := 0; i < 4; i++ {
		if err := w.stacks[ids.ProcessID(i)].Join(g1); err != nil {
			t.Fatal(err)
		}
	}
	w.run(5 * time.Second)
	w.requireSameView(g1, 0, 1, 2, 3)

	// Three senders interleave bursts in the same instants.
	for round := 0; round < 10; round++ {
		for _, s := range []ids.ProcessID{1, 2, 3} {
			_ = w.stacks[s].Send(g1, tPayload{ID: fmt.Sprintf("r%d", round)})
		}
	}
	w.run(2 * time.Second)
	for _, p := range []ids.ProcessID{0, 1, 2, 3} {
		if got := len(deliveredSeqOf(w.ups[p], g1)); got != 30 {
			t.Fatalf("%v delivered %d, want 30", p, got)
		}
	}
	requireIdenticalSequences(t, w, g1, 0, 1, 2, 3)
}

func TestTotalOrderAcrossMemberCrash(t *testing.T) {
	w := newWorld(t, 4, totalCfg())
	for i := 0; i < 4; i++ {
		if err := w.stacks[ids.ProcessID(i)].Join(g1); err != nil {
			t.Fatal(err)
		}
	}
	w.run(5 * time.Second)
	// Traffic flows while a (non-coordinator) member crashes.
	tick := w.s.Every(15*time.Millisecond, func() {
		for _, s := range []ids.ProcessID{1, 2} {
			if !w.nw.Crashed(s) {
				_ = w.stacks[s].Send(g1, tPayload{ID: fmt.Sprintf("t%d", w.s.Steps())})
			}
		}
	})
	w.run(500 * time.Millisecond)
	w.nw.Crash(3)
	w.run(2 * time.Second)
	tick.Stop()
	w.run(3 * time.Second)
	w.requireSameView(g1, 0, 1, 2)
	requireIdenticalSequences(t, w, g1, 0, 1, 2)
	checkViewSynchrony(t, w, g1)
}

func TestTotalOrderSequencerCrashResidue(t *testing.T) {
	// The coordinator (sequencer) crashes mid-stream: un-sequenced
	// messages must be delivered in the deterministic residual order,
	// identically at every survivor.
	w := newWorld(t, 4, totalCfg())
	for i := 0; i < 4; i++ {
		if err := w.stacks[ids.ProcessID(i)].Join(g1); err != nil {
			t.Fatal(err)
		}
	}
	w.run(5 * time.Second)
	if !w.stacks[0].IsCoordinator(g1) {
		t.Fatal("p0 should coordinate")
	}
	// Burst from several senders, then kill the sequencer while tokens
	// are still being assigned.
	for i := 0; i < 8; i++ {
		_ = w.stacks[1].Send(g1, tPayload{ID: fmt.Sprintf("a%d", i)})
		_ = w.stacks[2].Send(g1, tPayload{ID: fmt.Sprintf("b%d", i)})
	}
	w.s.After(2*time.Millisecond, func() { w.nw.Crash(0) })
	w.run(5 * time.Second)
	w.requireSameView(g1, 1, 2, 3)
	requireIdenticalSequences(t, w, g1, 1, 2, 3)
	// Nothing may be lost: survivors deliver all 16 messages.
	for _, p := range []ids.ProcessID{1, 2, 3} {
		if got := len(deliveredSeqOf(w.ups[p], g1)); got != 16 {
			t.Errorf("%v delivered %d, want 16", p, got)
		}
	}
	checkViewSynchrony(t, w, g1)
}

func TestTotalOrderAcrossPartitionMerge(t *testing.T) {
	w := newWorld(t, 4, totalCfg())
	for i := 0; i < 4; i++ {
		if err := w.stacks[ids.ProcessID(i)].Join(g1); err != nil {
			t.Fatal(err)
		}
	}
	w.run(5 * time.Second)
	w.nw.SetPartitions([]netsim.NodeID{0, 1}, []netsim.NodeID{2, 3})
	w.run(2 * time.Second)
	_ = w.stacks[0].Send(g1, tPayload{ID: "A1"})
	_ = w.stacks[1].Send(g1, tPayload{ID: "A2"})
	_ = w.stacks[2].Send(g1, tPayload{ID: "B1"})
	_ = w.stacks[3].Send(g1, tPayload{ID: "B2"})
	w.run(time.Second)
	// Within each side the order is uniform.
	requireIdenticalSequences(t, w, g1, 0, 1)
	requireIdenticalSequences(t, w, g1, 2, 3)
	w.nw.Heal()
	w.run(5 * time.Second)
	w.requireSameView(g1, 0, 1, 2, 3)
	// Post-merge traffic is again totally ordered everywhere.
	for i := 0; i < 5; i++ {
		_ = w.stacks[0].Send(g1, tPayload{ID: fmt.Sprintf("m%d", i)})
		_ = w.stacks[3].Send(g1, tPayload{ID: fmt.Sprintf("n%d", i)})
	}
	mark := map[ids.ProcessID]int{}
	for _, p := range []ids.ProcessID{0, 1, 2, 3} {
		mark[p] = len(deliveredSeqOf(w.ups[p], g1))
	}
	w.run(2 * time.Second)
	ref := deliveredSeqOf(w.ups[0], g1)[mark[0]:]
	if len(ref) != 10 {
		t.Fatalf("post-merge deliveries = %d, want 10", len(ref))
	}
	for _, p := range []ids.ProcessID{1, 2, 3} {
		got := deliveredSeqOf(w.ups[p], g1)[mark[p]:]
		if len(got) != len(ref) {
			t.Fatalf("%v post-merge count %d != %d", p, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("post-merge order differs at %d: %q vs %q", i, got[i], ref[i])
			}
		}
	}
}

func TestFIFOModeDeliversWithoutTokens(t *testing.T) {
	// Regression guard: default FIFO mode must not grow ordering state.
	w := newWorld(t, 2, autoCfg())
	_ = w.stacks[0].Join(g1)
	_ = w.stacks[1].Join(g1)
	w.run(3 * time.Second)
	for i := 0; i < 5; i++ {
		_ = w.stacks[0].Send(g1, tPayload{ID: fmt.Sprintf("f%d", i)})
	}
	w.run(time.Second)
	m := w.stacks[1].groups[g1]
	if len(m.ordBuf) != 0 || len(m.ordTokens) != 0 {
		t.Errorf("FIFO mode accumulated ordering state: buf=%d tokens=%d",
			len(m.ordBuf), len(m.ordTokens))
	}
	if got := len(deliveredSeqOf(w.ups[1], g1)); got != 5 {
		t.Errorf("delivered %d, want 5", got)
	}
}

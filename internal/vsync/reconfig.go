package vsync

import (
	"fmt"

	"plwg/internal/ids"
	"plwg/internal/trace"
)

// This file implements the view-change (flush) protocol.
//
// Initiator side: maybeReconfigure/mergeWith build a reconfig round,
// multicast STOP, collect FLUSH-OK from every expected responder, then
// multicast NEW-VIEW carrying the union of unstable messages per old view.
//
// Responder side: onStop quiesces the member (through the Stop upcall and
// StopOk downcall, per Table 1), onNewView delivers the retransmission
// set for the member's old view and installs the new one.
//
// Competing initiators are resolved deterministically: a stopped member
// defects to a STOP from a lower-numbered initiator, and an initiator
// aborts its own round when it finds itself stopped by a lower-numbered
// one. Unresponsive initiators are survived via ResponderTimeout.

// traceRound emits a structured flush-round event. Every event of one
// round — the initiator's flush-start/flush-done and each responder's
// stopped/stop-ok — carries (Group, Ref=epoch), the cross-node
// correlation key trace.Stitch reassembles the round from.
func (m *member) traceRound(what string, e epoch, format string, args ...any) {
	m.st.traceEvent(trace.Event{
		What:  what,
		Group: m.gid.String(),
		View:  m.view.ID,
		Ref:   e.String(),
		Text:  fmt.Sprintf(format, args...),
	})
}

// maybeReconfigure starts a view change over the member's own view,
// excluding current suspects, removing pending leavers and admitting
// pending joiners. It is a no-op unless the member is in a steady state
// with no round in flight (pending triggers re-fire after the install).
func (m *member) maybeReconfigure(reason string) {
	if m.state != stateNormal || m.rc != nil {
		return
	}
	targets := map[ids.ViewID]ids.Members{
		m.view.ID: m.liveMembers(),
	}
	m.startRound(reason, targets)
}

// mergePeers starts a view change merging the member's own view with
// every concurrent view discovered through presence announcements for
// which this process is the designated initiator (the lower coordinator
// initiates, so concurrent views agree on who merges whom without
// coordination).
func (m *member) mergePeers() {
	if m.state != stateNormal || m.rc != nil || m.view.Coordinator() != m.st.pid {
		return
	}
	targets := map[ids.ViewID]ids.Members{
		m.view.ID: m.liveMembers(),
	}
	// Hygiene: a known view whose members are all inside another known
	// (or our own) view is stale — concurrent views never share members.
	for vid, w := range m.knownPeers {
		if vid == m.view.ID || w.Members.SubsetOf(m.view.Members) {
			delete(m.knownPeers, vid)
			continue
		}
		for vid2, w2 := range m.knownPeers {
			if vid != vid2 && w.Members.SubsetOf(w2.Members) && len(w.Members) < len(w2.Members) {
				delete(m.knownPeers, vid)
				break
			}
		}
	}
	merging := false
	for vid, w := range m.knownPeers {
		if m.st.pid >= w.Coordinator() {
			continue // the other coordinator initiates
		}
		targets[vid] = w.Members.Clone()
		// Consume the entry now: if the merge fails (the view is gone or
		// absorbed elsewhere), a fresh presence will re-add a live one;
		// keeping it would retrigger merges with a stale target forever.
		delete(m.knownPeers, vid)
		merging = true
	}
	if merging {
		m.startRound("merge", targets)
	}
}

// liveMembers returns the member's view minus current suspects.
func (m *member) liveMembers() ids.Members {
	out := make(ids.Members, 0, len(m.view.Members))
	for _, p := range m.view.Members {
		if !m.suspects[p] {
			out = append(out, p)
		}
	}
	return out
}

func (m *member) startRound(reason string, targets map[ids.ViewID]ids.Members) {
	joiners := make(ids.Members, 0, len(m.pendingJoiners))
	for p := range m.pendingJoiners {
		joiners = append(joiners, p)
	}
	joiners = ids.NewMembers(joiners...)

	rc := &reconfig{
		epoch:     m.st.nextEpoch(),
		startedAt: m.st.clock.Now(),
		targets:   targets,
		joiners:   joiners,
		got:       make(map[ids.ProcessID]*msgFlushOk),
	}
	rc.expected = joiners
	for _, mm := range targets {
		rc.expected = rc.expected.Union(mm)
	}
	m.rc = rc
	m.st.ins.flushRounds.Inc()
	m.traceRound(trace.HWGFlushStart, rc.epoch, "%s targets=%d expected=%s",
		reason, len(targets), rc.expected)
	m.sendStop()
}

func (m *member) sendStop() {
	rc := m.rc
	tids := make(ids.ViewIDs, 0, len(rc.targets))
	for vid := range rc.targets {
		tids = append(tids, vid)
	}
	ids.SortViewIDs(tids)
	m.multicast(&msgStop{GID: m.gid, Epoch: rc.epoch, Targets: tids, Joiners: rc.joiners})
	if rc.timer != nil {
		rc.timer.Stop()
	}
	rc.timer = m.st.clock.After(m.st.cfg.FlushTimeout, m.onFlushTimeout)
}

func (m *member) onFlushTimeout() {
	rc := m.rc
	if rc == nil {
		return
	}
	// If a lower-numbered initiator has stopped us meanwhile, yield.
	if m.state == stateStopped && m.stopEpoch.Initiator < m.st.pid {
		m.st.trace(m.gid, "flush-yield", "to %v", m.stopEpoch)
		m.abortRound()
		return
	}
	rc.attempts++
	if rc.attempts >= m.st.cfg.MaxFlushAttempts {
		m.st.ins.flushAborts.Inc()
		m.st.trace(m.gid, "flush-abort", "epoch=%v after %d attempts", rc.epoch, rc.attempts)
		m.abortRound()
		return
	}
	// Exclude non-responders: suspects in our own view; shrink or drop
	// merge targets.
	newTargets := make(map[ids.ViewID]ids.Members, len(rc.targets))
	for vid, mm := range rc.targets {
		var resp ids.Members
		for _, p := range mm {
			if rc.got[p] != nil {
				resp = append(resp, p)
			} else if vid == m.view.ID && p != m.st.pid {
				m.suspects[p] = true
				m.st.trace(m.gid, "suspect", "%v (no flush-ok)", p)
			}
		}
		if vid == m.view.ID {
			resp = ids.NewMembers(append(resp, m.st.pid)...)
		}
		if len(resp) > 0 {
			newTargets[vid] = resp
		}
	}
	var joiners ids.Members
	for _, p := range rc.joiners {
		if f := rc.got[p]; f != nil && f.Joining {
			joiners = append(joiners, p)
		} else {
			// The joiner lost interest (typically: another view admitted
			// it); forget the request or we would reconfigure forever.
			delete(m.pendingJoiners, p)
		}
	}
	rc.epoch = m.st.nextEpoch()
	rc.targets = newTargets
	rc.joiners = ids.NewMembers(joiners...)
	rc.got = make(map[ids.ProcessID]*msgFlushOk)
	rc.pulling = false
	rc.wanted = nil
	rc.expected = rc.joiners
	for _, mm := range newTargets {
		rc.expected = rc.expected.Union(mm)
	}
	m.st.trace(m.gid, "flush-retry", "epoch=%v expected=%s", rc.epoch, rc.expected)
	m.sendStop()
}

// abortRound voids the in-flight round and tells its responders to resume
// immediately (the initiator itself resumes through the abort's loopback).
func (m *member) abortRound() {
	rc := m.rc
	if rc == nil {
		return
	}
	m.rc = nil
	if rc.timer != nil {
		rc.timer.Stop()
	}
	m.multicast(&msgAbort{GID: m.gid, Epoch: rc.epoch})
}

func (m *member) onAbort(_ ids.ProcessID, a *msgAbort) {
	if m.state == stateJoining && m.joinCommit == a.Epoch {
		m.joinCommit = epoch{}
		return
	}
	if m.state == stateStopped && m.stopEpoch == a.Epoch {
		m.st.trace(m.gid, "flush-resume", "round %v aborted", a.Epoch)
		m.resumeView("round aborted")
	}
}

// --- responder side -------------------------------------------------------

func (m *member) onStop(from ids.ProcessID, s *msgStop) {
	m.heard(from)
	switch m.state {
	case stateJoining:
		if !s.Joiners.Contains(m.st.pid) {
			return
		}
		// Commit to one admission round at a time (defecting only to a
		// lower-numbered initiator or a retry of the committed one);
		// answering several concurrent rounds would let multiple
		// coordinators install views all claiming this joiner.
		cur := m.joinCommit
		switch {
		case cur == epoch{}:
		case s.Epoch.Initiator == cur.Initiator && s.Epoch.N >= cur.N:
		case s.Epoch.Initiator < cur.Initiator:
		default:
			return
		}
		m.joinCommit = s.Epoch
		if m.joinCommitTimer != nil {
			m.joinCommitTimer.Stop()
		}
		m.joinCommitTimer = m.st.clock.After(m.st.cfg.ResponderTimeout, func() {
			m.joinCommit = epoch{}
		})
		// A flush admitting us is in progress: answer and give it time
		// (including retries) before falling back to a singleton view.
		m.extendJoinDeadline(m.st.cfg.ResponderTimeout)
		m.unicast(s.Epoch.Initiator, &msgFlushOk{
			GID: m.gid, Epoch: s.Epoch, From: m.st.pid, Joining: true,
		})
	case stateNormal:
		if !s.Targets.Contains(m.view.ID) {
			return
		}
		m.enterStopped(s.Epoch)
	case stateStopped:
		if !s.Targets.Contains(m.view.ID) {
			return
		}
		cur := m.stopEpoch
		sameInitiatorRetry := s.Epoch.Initiator == cur.Initiator && s.Epoch.N > cur.N
		lowerInitiator := s.Epoch.Initiator < cur.Initiator
		if !sameInitiatorRetry && !lowerInitiator {
			return
		}
		m.stopEpoch = s.Epoch
		m.st.trace(m.gid, "flush-adopt", "epoch=%v", s.Epoch)
		if !m.stopPending {
			m.sendFlushOk()
		}
	}
}

func (m *member) enterStopped(e epoch) {
	m.traceRound("stopped", e, "by %v", e.Initiator)
	m.state = stateStopped
	m.stopEpoch = e
	if m.respTimer != nil {
		m.respTimer.Stop()
	}
	m.respTimer = m.st.clock.After(m.st.cfg.ResponderTimeout, m.onResponderTimeout)
	if m.st.cfg.AutoStopOk || m.st.up == nil {
		m.sendFlushOk()
		return
	}
	m.stopPending = true
	m.st.up.Stop(m.gid)
}

func (m *member) stopOk() error {
	if !m.stopPending {
		return ErrNoStopPending
	}
	m.traceRound("stop-ok", m.stopEpoch, "app quiesced")
	m.stopPending = false
	m.sendFlushOk()
	return nil
}

// sendFlushOk reports this member's flush contribution to the initiator:
// a digest of its deliveries in the current view.
func (m *member) sendFlushOk() {
	digest := make(map[ids.ProcessID]uint64, len(m.deliveredSeq))
	for s, q := range m.deliveredSeq {
		digest[s] = q
	}
	extras := make([]msgKey, 0, len(m.extras))
	for k := range m.extras {
		extras = append(extras, k)
	}
	sortKeys(extras)
	m.unicast(m.stopEpoch.Initiator, &msgFlushOk{
		GID:     m.gid,
		Epoch:   m.stopEpoch,
		From:    m.st.pid,
		View:    m.view.ID,
		Leaving: m.leaveRequested,
		Digest:  digest,
		Extras:  extras,
	})
}

// onResponderTimeout fires when a stopped member has waited too long for
// the NEW-VIEW: the initiator is presumed dead, the member resumes its old
// view and lets failure detection and peer discovery repair membership.
func (m *member) onResponderTimeout() {
	if m.state != stateStopped {
		return
	}
	m.st.trace(m.gid, "flush-resume", "initiator %v silent", m.stopEpoch.Initiator)
	m.resumeView("initiator silent")
}

// resumeView returns a stopped member to normal operation in its current
// view, re-announcing the view upward as a restart signal.
func (m *member) resumeView(why string) {
	m.state = stateNormal
	m.stopEpoch = epoch{}
	m.stopPending = false
	if m.respTimer != nil {
		m.respTimer.Stop()
		m.respTimer = nil
	}
	_ = why
	if m.st.up != nil {
		m.st.up.View(m.gid, m.view.Clone())
	}
	pend := m.pending
	m.pending = nil
	for _, p := range pend {
		m.send(p)
	}
}

// --- completion -----------------------------------------------------------

func (m *member) onFlushOk(from ids.ProcessID, f *msgFlushOk) {
	m.heard(from)
	rc := m.rc
	if rc == nil || f.Epoch != rc.epoch || rc.pulling {
		return
	}
	if !rc.expected.Contains(from) {
		return
	}
	rc.got[from] = f
	for _, p := range rc.expected {
		if rc.got[p] == nil {
			return
		}
	}
	m.collectGaps()
}

// collectGaps compares the responders' digests per old view, computes the
// delivery cut, and pulls copies of the messages some responder is
// missing. With no gaps (the common case on the totally ordered bus) the
// round completes immediately.
func (m *member) collectGaps() {
	rc := m.rc
	// needed maps each gap message to the responder it will be pulled
	// from.
	needed := make(map[msgKey]ids.ProcessID)
	for vid, members := range rc.targets {
		var resp []*msgFlushOk
		for _, p := range members {
			if f := rc.got[p]; f != nil && f.View == vid {
				resp = append(resp, f)
			}
		}
		if len(resp) < 2 {
			continue // nobody to diverge from
		}
		cut := make(map[ids.ProcessID]uint64)
		extras := make(map[msgKey]bool)
		for _, f := range resp {
			for s, q := range f.Digest {
				if q > cut[s] {
					cut[s] = q
				}
			}
			for _, k := range f.Extras {
				extras[k] = true
			}
		}
		covered := func(f *msgFlushOk, k msgKey) bool {
			if f.Digest[k.Sender] >= k.Seq {
				return true
			}
			for _, e := range f.Extras {
				if e == k {
					return true
				}
			}
			return false
		}
		addNeeded := func(k msgKey) {
			if _, ok := needed[k]; ok {
				return
			}
			for _, h := range resp { // resp is in member order: deterministic
				if covered(h, k) {
					needed[k] = h.From
					return
				}
			}
		}
		for _, f := range resp {
			for s, q := range cut {
				for seq := f.Digest[s] + 1; seq <= q; seq++ {
					k := msgKey{View: vid, Sender: s, Seq: seq}
					if !covered(f, k) {
						addNeeded(k)
					}
				}
			}
			for k := range extras {
				if !covered(f, k) {
					addNeeded(k)
				}
			}
		}
	}
	if len(needed) == 0 {
		m.finishRound(nil)
		return
	}
	// Pull phase: group the wanted keys per holder.
	rc.pulling = true
	rc.wanted = make(map[msgKey]*msgData, len(needed))
	perHolder := make(map[ids.ProcessID][]msgKey)
	for k, h := range needed {
		rc.wanted[k] = nil
		perHolder[h] = append(perHolder[h], k)
	}
	m.st.trace(m.gid, "flush-pull", "epoch=%v pulling %d gap messages from %d holders",
		rc.epoch, len(needed), len(perHolder))
	holders := make(ids.Members, 0, len(perHolder))
	for h := range perHolder {
		holders = append(holders, h)
	}
	holders = ids.NewMembers(holders...) // deterministic emission order
	for _, h := range holders {
		keys := perHolder[h]
		sortKeys(keys)
		m.unicast(h, &msgFlushPull{GID: m.gid, Epoch: rc.epoch, Keys: keys})
	}
	// Restart the round timer for the pull phase.
	if rc.timer != nil {
		rc.timer.Stop()
	}
	rc.timer = m.st.clock.After(m.st.cfg.FlushTimeout, m.onFlushTimeout)
}

// onFlushPull serves buffered copies of the requested messages.
func (m *member) onFlushPull(from ids.ProcessID, p *msgFlushPull) {
	m.heard(from)
	fill := &msgFlushFill{GID: m.gid, Epoch: p.Epoch, From: m.st.pid}
	for _, k := range p.Keys {
		if d, ok := m.buffer[k]; ok {
			fill.Msgs = append(fill.Msgs, d)
		}
	}
	m.unicast(from, fill)
}

func (m *member) onFlushFill(from ids.ProcessID, f *msgFlushFill) {
	m.heard(from)
	rc := m.rc
	if rc == nil || !rc.pulling || f.Epoch != rc.epoch {
		return
	}
	for _, d := range f.Msgs {
		k := d.key()
		if cur, wanted := rc.wanted[k]; wanted && cur == nil {
			rc.wanted[k] = d
		}
	}
	for _, d := range rc.wanted {
		if d == nil {
			return
		}
	}
	m.finishRound(rc.wanted)
}

// finishRound installs the outcome: the new view plus the gap
// retransmissions every survivor needs to close its old view on the
// identical delivery set (view synchrony).
func (m *member) finishRound(fills map[msgKey]*msgData) {
	rc := m.rc
	m.rc = nil
	if rc.timer != nil {
		rc.timer.Stop()
	}

	var members ids.Members
	for _, p := range rc.expected {
		f := rc.got[p]
		if f.Leaving || m.pendingLeaver(p) {
			continue
		}
		members = append(members, p)
	}
	members = ids.NewMembers(members...)

	prev := make(ids.ViewIDs, 0, len(rc.targets))
	for vid := range rc.targets {
		prev = append(prev, vid)
	}
	ids.SortViewIDs(prev)

	var flushData []*msgData
	if len(fills) > 0 {
		flushData = sortedFlushData(fills)
	}
	nv := &msgNewView{
		GID:   m.gid,
		Epoch: rc.epoch,
		View: ids.View{
			ID:      ids.ViewID{Coord: m.st.pid, Seq: m.st.nextViewSeq(m.gid)},
			Members: members,
		},
		PrevViews: prev,
		FlushData: flushData,
	}
	m.st.ins.flushDur.Observe(m.st.clock.Now().Sub(rc.startedAt))
	m.st.traceEvent(trace.Event{
		What:    trace.HWGFlushDone,
		Group:   m.gid.String(),
		View:    nv.View.ID,
		Ref:     rc.epoch.String(),
		Members: nv.View.Members.Clone(),
		Text:    fmt.Sprintf("newview=%v%s retrans=%d", nv.View.ID, nv.View.Members, len(nv.FlushData)),
	})
	m.multicast(nv)
}

// pendingLeaver reports whether p asked to leave through a LEAVE-REQ this
// coordinator has seen (its FLUSH-OK may predate the request).
func (m *member) pendingLeaver(p ids.ProcessID) bool {
	return m.leavers != nil && m.leavers[p]
}

func (m *member) onNewView(from ids.ProcessID, nv *msgNewView) {
	m.heard(from)
	switch m.state {
	case stateJoining:
		if nv.View.Contains(m.st.pid) {
			m.install(nv.View)
		}
	case stateNormal, stateStopped:
		if !nv.PrevViews.Contains(m.view.ID) {
			return
		}
		// Close the old view: deliver the retransmitted messages that
		// belong to it and that we have not delivered yet.
		for _, d := range nv.FlushData {
			if d.View == m.view.ID {
				m.deliverData(d, false)
			}
		}
		switch {
		case nv.View.Contains(m.st.pid):
			m.install(nv.View)
		case m.leaveRequested:
			m.st.trace(m.gid, "left", "via %v", nv.View.ID)
			m.st.dropMember(m.gid)
		default:
			// Excluded without asking to leave (false suspicion or a
			// partition): continue in a singleton view; peer discovery
			// merges us back when connectivity allows (partitionable
			// semantics).
			m.st.trace(m.gid, "excluded", "from %v, forming singleton", nv.View.ID)
			m.install(ids.View{
				ID:      ids.ViewID{Coord: m.st.pid, Seq: m.st.nextViewSeq(m.gid)},
				Members: ids.NewMembers(m.st.pid),
			})
		}
	}
}

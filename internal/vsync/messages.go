package vsync

import (
	"fmt"
	"strconv"

	"plwg/internal/ids"
	"plwg/internal/netsim"
	"plwg/internal/wire"
)

// Payload is the user content of a virtually synchronous multicast (for
// the light-weight group layer: one LWG protocol message). WireSize is the
// serialized size in bytes, used by the network model.
type Payload interface {
	WireSize() int
}

// GroupAddr returns the multicast address of a heavy-weight group.
func GroupAddr(gid ids.HWGID) netsim.Addr {
	return netsim.Addr("hwg/" + strconv.FormatInt(int64(gid), 10))
}

// AddrPrefix is the mux prefix claimed by the heavy-weight group layer.
const AddrPrefix = "hwg"

// epoch identifies one reconfiguration attempt: the initiator plus a
// counter local to it. Responders use it to match FLUSH-OK messages with
// STOP messages.
type epoch struct {
	Initiator ids.ProcessID
	N         uint64
}

func (e epoch) String() string { return fmt.Sprintf("%v#%d", e.Initiator, e.N) }

// msgKey identifies one data message within a view.
type msgKey struct {
	View   ids.ViewID
	Sender ids.ProcessID
	Seq    uint64
}

// msgData is a virtually synchronous multicast, tagged with the view it
// was sent in (Section 5.1: "each protocol message ... is tagged with a
// view identifier when it is sent and is only delivered to members of that
// view").
type msgData struct {
	GID     ids.HWGID
	View    ids.ViewID
	Sender  ids.ProcessID
	Seq     uint64
	Payload Payload
	// Ordered marks messages subject to total-order delivery: they are
	// held back until the view coordinator's order token arrives.
	Ordered bool
	// Acks piggybacks the sender's cumulative acknowledgement vector
	// (highest contiguous sequence delivered per sender in View); nil
	// unless the AckPiggyback policy is active.
	Acks map[ids.ProcessID]uint64

	// tc is the wire trace context of the envelope this message arrived
	// in, attached by the receiver in onData (never serialized — it is
	// not part of the message, it is delivery metadata). Keeping it on
	// the message lets it survive total-order holdback in ordBuf so the
	// latency observation happens at the actual Data upcall.
	tc   wire.TraceCtx
	tcOK bool
}

func (m *msgData) key() msgKey { return msgKey{View: m.View, Sender: m.Sender, Seq: m.Seq} }

// WireSize implements netsim.Message.
func (m *msgData) WireSize() int {
	n := 32 + 12*len(m.Acks)
	if m.Payload != nil {
		n += m.Payload.WireSize()
	}
	return n
}

// Kind implements netsim.Kinder.
func (m *msgData) Kind() string { return "data" }

// ordToken is the internal payload carrying one total-order assignment:
// the view coordinator sequences every Ordered message it receives and
// multicasts the token as a regular (reliable, flushed) data message, so
// tokens share the delivery guarantees of the messages they order.
type ordToken struct {
	Key msgKey
	Idx uint64
}

// WireSize implements Payload.
func (t *ordToken) WireSize() int { return 28 }

// msgAck acknowledges delivery of one data message (AckPerMessage).
type msgAck struct {
	GID  ids.HWGID
	Key  msgKey
	From ids.ProcessID
}

// WireSize implements netsim.Message.
func (m *msgAck) WireSize() int { return 32 }

// Kind implements netsim.Kinder.
func (m *msgAck) Kind() string { return "ack" }

// msgAckVector is a cumulative acknowledgement (AckPeriodic): the highest
// contiguous sequence number delivered per sender in the current view.
type msgAckVector struct {
	GID    ids.HWGID
	View   ids.ViewID
	From   ids.ProcessID
	MaxSeq map[ids.ProcessID]uint64
}

// WireSize implements netsim.Message.
func (m *msgAckVector) WireSize() int { return 24 + 12*len(m.MaxSeq) }

// Kind implements netsim.Kinder.
func (m *msgAckVector) Kind() string { return "ack" }

// msgNack asks a sender to retransmit messages the requester observed a
// sequence gap for — loss repair on unreliable transports. (The
// simulated bus never loses frames unless configured to; real UDP
// does.)
type msgNack struct {
	GID  ids.HWGID
	From ids.ProcessID
	Keys []msgKey
}

// WireSize implements netsim.Message.
func (m *msgNack) WireSize() int { return 24 + 16*len(m.Keys) }

// Kind implements netsim.Kinder.
func (m *msgNack) Kind() string { return "nack" }

// msgRetrans answers a NACK with buffered copies.
type msgRetrans struct {
	GID  ids.HWGID
	Msgs []*msgData
}

// WireSize implements netsim.Message.
func (m *msgRetrans) WireSize() int {
	n := 16
	for _, d := range m.Msgs {
		n += d.WireSize()
	}
	return n
}

// Kind implements netsim.Kinder.
func (m *msgRetrans) Kind() string { return "nack" }

// msgHeartbeat is the per-member liveness beacon. It advertises the
// sender's highest used sequence number so receivers can detect the loss
// of a sender's most recent messages (a tail loss leaves no later message
// to expose the gap).
type msgHeartbeat struct {
	GID    ids.HWGID
	From   ids.ProcessID
	View   ids.ViewID
	MaxSeq uint64
}

// WireSize implements netsim.Message.
func (m *msgHeartbeat) WireSize() int { return 32 }

// Kind implements netsim.Kinder.
func (m *msgHeartbeat) Kind() string { return "heartbeat" }

// msgPresence is the coordinator's periodic view announcement; when
// presences from concurrent views meet after a heal, the lower-coordinator
// view initiates a merge ("peer discovery" at the HWG level, Section 4).
type msgPresence struct {
	GID  ids.HWGID
	View ids.View
}

// WireSize implements netsim.Message.
func (m *msgPresence) WireSize() int { return 24 + 8*len(m.View.Members) }

// Kind implements netsim.Kinder.
func (m *msgPresence) Kind() string { return "presence" }

// msgJoinReq announces a process wanting to join the group.
type msgJoinReq struct {
	GID  ids.HWGID
	From ids.ProcessID
}

// WireSize implements netsim.Message.
func (m *msgJoinReq) WireSize() int { return 16 }

// Kind implements netsim.Kinder.
func (m *msgJoinReq) Kind() string { return "join" }

// msgLeaveReq asks the coordinator to exclude the sender.
type msgLeaveReq struct {
	GID  ids.HWGID
	From ids.ProcessID
}

// WireSize implements netsim.Message.
func (m *msgLeaveReq) WireSize() int { return 16 }

// Kind implements netsim.Kinder.
func (m *msgLeaveReq) Kind() string { return "leave" }

// msgStop starts a flush round. Every process whose current view is listed
// in Targets — and every listed joiner — must quiesce and answer FLUSH-OK.
type msgStop struct {
	GID     ids.HWGID
	Epoch   epoch
	Targets ids.ViewIDs
	Joiners ids.Members
}

// WireSize implements netsim.Message.
func (m *msgStop) WireSize() int { return 32 + 16*len(m.Targets) + 8*len(m.Joiners) }

// Kind implements netsim.Kinder.
func (m *msgStop) Kind() string { return "flush" }

// msgAbort voids a flush round whose initiator gave up (it yielded to a
// lower-numbered competitor, exhausted its retries, or was itself absorbed
// into another view). Responders stopped on the epoch resume immediately
// instead of waiting out ResponderTimeout.
type msgAbort struct {
	GID   ids.HWGID
	Epoch epoch
}

// WireSize implements netsim.Message.
func (m *msgAbort) WireSize() int { return 24 }

// Kind implements netsim.Kinder.
func (m *msgAbort) Kind() string { return "flush" }

// msgFlushOk is a responder's flush contribution: its identity, the view
// it is flushing, and a compact digest of what it delivered in that view
// (per-sender highest contiguous sequence number, plus any out-of-order
// extras). The initiator compares digests to find the delivery cut; only
// actual gap messages are then pulled and re-multicast, so the flush cost
// scales with divergence, not with the volume of in-flight traffic.
type msgFlushOk struct {
	GID     ids.HWGID
	Epoch   epoch
	From    ids.ProcessID
	View    ids.ViewID // zero for joiners
	Joining bool
	Leaving bool
	// Digest maps each sender to the highest contiguous sequence the
	// responder delivered in View.
	Digest map[ids.ProcessID]uint64
	// Extras lists deliveries beyond the contiguous prefix (possible
	// after earlier retransmissions).
	Extras []msgKey
}

// WireSize implements netsim.Message.
func (m *msgFlushOk) WireSize() int {
	return 48 + 12*len(m.Digest) + 16*len(m.Extras)
}

// Kind implements netsim.Kinder.
func (m *msgFlushOk) Kind() string { return "flush" }

// msgFlushPull asks a responder for copies of specific unstable messages
// the initiator must re-multicast to close delivery gaps.
type msgFlushPull struct {
	GID   ids.HWGID
	Epoch epoch
	Keys  []msgKey
}

// WireSize implements netsim.Message.
func (m *msgFlushPull) WireSize() int { return 24 + 16*len(m.Keys) }

// Kind implements netsim.Kinder.
func (m *msgFlushPull) Kind() string { return "flush" }

// msgFlushFill answers a pull with the requested message copies.
type msgFlushFill struct {
	GID   ids.HWGID
	Epoch epoch
	From  ids.ProcessID
	Msgs  []*msgData
}

// WireSize implements netsim.Message.
func (m *msgFlushFill) WireSize() int {
	n := 24
	for _, d := range m.Msgs {
		n += d.WireSize()
	}
	return n
}

// Kind implements netsim.Kinder.
func (m *msgFlushFill) Kind() string { return "flush" }

// msgNewView ends a flush round: it carries the new view, the old views it
// supersedes, and the retransmission set (union of unstable messages per
// old view) that every survivor must deliver before installing.
type msgNewView struct {
	GID       ids.HWGID
	Epoch     epoch
	View      ids.View
	PrevViews ids.ViewIDs
	FlushData []*msgData
}

// WireSize implements netsim.Message.
func (m *msgNewView) WireSize() int {
	n := 48 + 8*len(m.View.Members) + 16*len(m.PrevViews)
	for _, d := range m.FlushData {
		n += d.WireSize()
	}
	return n
}

// Kind implements netsim.Kinder.
func (m *msgNewView) Kind() string { return "flush" }

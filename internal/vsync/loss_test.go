package vsync

import (
	"fmt"
	"testing"
	"time"

	"plwg/internal/ids"
	"plwg/internal/netsim"
	"plwg/internal/sim"
)

// lossyWorld builds a cluster on a network that drops a fraction of
// deliveries, like real UDP.
func lossyWorld(t *testing.T, n int, cfg Config, lossRate float64, seed int64) *world {
	t.Helper()
	s := sim.New(seed)
	params := netsim.DefaultParams()
	params.LossRate = lossRate
	nw := netsim.New(s, params)
	w := &world{
		t: t, s: s, nw: nw,
		stacks: make(map[ids.ProcessID]*Stack),
		ups:    make(map[ids.ProcessID]*tUp),
	}
	for i := 0; i < n; i++ {
		pid := ids.ProcessID(i)
		up := &tUp{pid: pid, log: make(map[ids.HWGID][]logEntry), s: s}
		st := NewStack(Params{Net: nw, PID: pid, Config: cfg, Upcalls: up})
		up.st = st
		mux := netsim.NewMux()
		mux.Handle(AddrPrefix, st.HandleMessage)
		nw.AddNode(pid, mux.Handler())
		w.stacks[pid] = st
		w.ups[pid] = up
	}
	return w
}

// TestLossRepairDelivery: with 3% delivery loss, NACK-based repair (plus
// the periodic ack vectors) must still deliver every message everywhere.
func TestLossRepairDelivery(t *testing.T) {
	cfg := autoCfg()
	cfg.AckPolicy = AckPeriodic // per-message acks are themselves lossy
	w := lossyWorld(t, 3, cfg, 0.03, 5)
	for i := 0; i < 3; i++ {
		if err := w.stacks[ids.ProcessID(i)].Join(g1); err != nil {
			t.Fatal(err)
		}
	}
	w.run(6 * time.Second)
	w.requireSameView(g1, 0, 1, 2)

	const msgs = 100
	for i := 0; i < msgs; i++ {
		sender := ids.ProcessID(i % 3)
		_ = w.stacks[sender].Send(g1, tPayload{ID: fmt.Sprintf("l%d", i), Size: 300})
		w.run(10 * time.Millisecond)
	}
	w.run(5 * time.Second) // repair time

	if st := w.nw.Stats(); st.Dropped == 0 {
		t.Fatal("the lossy network dropped nothing; test is vacuous")
	}
	for pid := ids.ProcessID(0); pid < 3; pid++ {
		got := 0
		for _, e := range w.ups[pid].log[g1] {
			if e.kind == "data" {
				got++
			}
		}
		if got != msgs {
			t.Errorf("%v delivered %d/%d despite loss repair", pid, got, msgs)
		}
	}
	checkViewSynchrony(t, w, g1)
}

// TestLossRepairTotalOrder: total order must survive datagram loss — a
// lost token or message is repaired and the sequence stays uniform.
func TestLossRepairTotalOrder(t *testing.T) {
	cfg := totalCfg()
	cfg.AckPolicy = AckPeriodic
	w := lossyWorld(t, 3, cfg, 0.03, 8)
	for i := 0; i < 3; i++ {
		if err := w.stacks[ids.ProcessID(i)].Join(g1); err != nil {
			t.Fatal(err)
		}
	}
	w.run(6 * time.Second)
	w.requireSameView(g1, 0, 1, 2)

	const msgs = 60
	for i := 0; i < msgs; i++ {
		_ = w.stacks[ids.ProcessID(i%3)].Send(g1, tPayload{ID: fmt.Sprintf("o%d", i)})
		w.run(8 * time.Millisecond)
	}
	w.run(5 * time.Second)

	for pid := ids.ProcessID(0); pid < 3; pid++ {
		if got := len(deliveredSeqOf(w.ups[pid], g1)); got != msgs {
			t.Fatalf("%v delivered %d/%d", pid, got, msgs)
		}
	}
	requireIdenticalSequences(t, w, g1, 0, 1, 2)
}

// TestLossyMembershipChurn: joins, a crash and a view change under loss.
func TestLossyMembershipChurn(t *testing.T) {
	cfg := autoCfg()
	cfg.AckPolicy = AckPeriodic
	w := lossyWorld(t, 4, cfg, 0.02, 11)
	for i := 0; i < 3; i++ {
		if err := w.stacks[ids.ProcessID(i)].Join(g1); err != nil {
			t.Fatal(err)
		}
	}
	w.run(6 * time.Second)
	if err := w.stacks[3].Join(g1); err != nil {
		t.Fatal(err)
	}
	w.run(4 * time.Second)
	w.requireSameView(g1, 0, 1, 2, 3)
	w.nw.Crash(2)
	w.run(5 * time.Second)
	w.requireSameView(g1, 0, 1, 3)
	checkViewSynchrony(t, w, g1)
}

package vsync

import (
	"testing"
	"time"

	"plwg/internal/ids"
	"plwg/internal/netsim"
)

// TestConcurrentAdmissionSingleCommit is the regression test for the
// joiner-commitment rule: two concurrent singleton coordinators both try
// to admit the same joiner; the joiner must end up in exactly one view,
// and no coordinator may install a view claiming a member that never
// joined it.
func TestConcurrentAdmissionSingleCommit(t *testing.T) {
	w := newWorld(t, 3, autoCfg())
	// p0 and p2 form concurrent singleton views (they join while p1
	// stays out, then the two views exist side by side before merging).
	if err := w.stacks[0].Create(g1); err != nil {
		t.Fatal(err)
	}
	if err := w.stacks[2].Create(g1); err != nil {
		t.Fatal(err)
	}
	// p1 joins immediately: both coordinators see the JOIN-REQ at the
	// same time and race to admit.
	if err := w.stacks[1].Join(g1); err != nil {
		t.Fatal(err)
	}
	w.run(500 * time.Millisecond)
	// Invariant: no process's installed view may contain p1 unless p1
	// itself has installed that very view.
	for pid, st := range w.stacks {
		v, ok := st.CurrentView(g1)
		if !ok || !v.Contains(1) || pid == 1 {
			continue
		}
		v1, ok1 := w.stacks[1].CurrentView(g1)
		if !ok1 || v1.ID != v.ID {
			t.Fatalf("%v installed %v claiming p1, but p1 has %v (ok=%v)", pid, v, v1, ok1)
		}
	}
	// Eventually everyone converges anyway.
	w.run(5 * time.Second)
	w.requireSameView(g1, 0, 1, 2)
	checkViewSynchrony(t, w, g1)
}

// TestHeartbeatsFromForeignViewsDoNotFeedFD is the regression test for
// the view-tagged failure detector: liveness evidence from a process in
// a different view must not mask divergence.
func TestHeartbeatsFromForeignViewsDoNotFeedFD(t *testing.T) {
	w := newWorld(t, 2, autoCfg())
	if err := w.stacks[0].Join(g1); err != nil {
		t.Fatal(err)
	}
	if err := w.stacks[1].Join(g1); err != nil {
		t.Fatal(err)
	}
	w.run(3 * time.Second)
	w.requireSameView(g1, 0, 1)

	// Force divergence: p1 is excluded via a partition, forms a
	// singleton, then the network heals. While both run concurrent
	// views, their heartbeats cross — and must NOT prevent the merge
	// machinery from running (if foreign heartbeats fed the FD, a view
	// erroneously containing a divergent member would never heal).
	w.nw.SetPartitions([]netsim.NodeID{0}, []netsim.NodeID{1})
	w.run(2 * time.Second)
	w.nw.Heal()
	w.run(4 * time.Second)
	w.requireSameView(g1, 0, 1)
}

// TestInitiatorCrashDuringFlush: the initiator dies between STOP and
// NEW-VIEW; responders must resume via ResponderTimeout and re-form the
// group without it.
func TestInitiatorCrashDuringFlush(t *testing.T) {
	cfg := DefaultConfig() // manual StopOk so we can freeze the flush
	w := newWorld(t, 3, cfg)
	for i := 0; i < 3; i++ {
		if err := w.stacks[ids.ProcessID(i)].Join(g1); err != nil {
			t.Fatal(err)
		}
	}
	w.run(4 * time.Second)
	w.requireSameView(g1, 0, 1, 2)
	w.ups[1].manualStop = true // from now on, p1 blocks flushes
	// p0 (coordinator) admits a new round by excluding a leaver; freeze
	// it by crashing p0 right after the STOP goes out.
	_ = w.stacks[2].Leave(g1)
	w.run(30 * time.Millisecond) // STOP is out, p1 blocks the flush
	w.nw.Crash(0)
	w.ups[1].manualStop = false
	_ = w.stacks[1].StopOk(g1)
	w.run(8 * time.Second)
	// p1 must have survived the stalled flush and now run its own view.
	v, ok := w.stacks[1].CurrentView(g1)
	if !ok {
		t.Fatal("p1 lost its membership after the initiator crash")
	}
	if !v.Members.Equal(ids.NewMembers(1)) {
		t.Fatalf("surviving view = %v, want {p1} (p0 crashed, p2 left)", v)
	}
}

// TestAllMembersLeave drains a group completely.
func TestAllMembersLeave(t *testing.T) {
	w := newWorld(t, 3, autoCfg())
	for i := 0; i < 3; i++ {
		if err := w.stacks[ids.ProcessID(i)].Join(g1); err != nil {
			t.Fatal(err)
		}
	}
	w.run(4 * time.Second)
	for i := 0; i < 3; i++ {
		if err := w.stacks[ids.ProcessID(i)].Leave(g1); err != nil {
			t.Fatal(err)
		}
		w.run(time.Second)
	}
	for i := 0; i < 3; i++ {
		if w.stacks[ids.ProcessID(i)].IsMember(g1) {
			t.Errorf("p%d still a member after everyone left", i)
		}
	}
}

// TestJoinLeaveJoinAgain re-joins a group after leaving it.
func TestJoinLeaveJoinAgain(t *testing.T) {
	w := newWorld(t, 2, autoCfg())
	if err := w.stacks[0].Join(g1); err != nil {
		t.Fatal(err)
	}
	if err := w.stacks[1].Join(g1); err != nil {
		t.Fatal(err)
	}
	w.run(3 * time.Second)
	if err := w.stacks[1].Leave(g1); err != nil {
		t.Fatal(err)
	}
	w.run(2 * time.Second)
	if err := w.stacks[1].Join(g1); err != nil {
		t.Fatal(err)
	}
	w.run(3 * time.Second)
	w.requireSameView(g1, 0, 1)
	checkViewSynchrony(t, w, g1)
}

// TestSimultaneousCrashOfMajority kills 3 of 4 members at once.
func TestSimultaneousCrashOfMajority(t *testing.T) {
	w := newWorld(t, 4, autoCfg())
	for i := 0; i < 4; i++ {
		if err := w.stacks[ids.ProcessID(i)].Join(g1); err != nil {
			t.Fatal(err)
		}
	}
	w.run(5 * time.Second)
	w.nw.Crash(1)
	w.nw.Crash(2)
	w.nw.Crash(3)
	w.run(5 * time.Second)
	v, ok := w.stacks[0].CurrentView(g1)
	if !ok || !v.Members.Equal(ids.NewMembers(0)) {
		t.Fatalf("survivor view = %v ok=%v, want {p0} (no primary partition needed)", v, ok)
	}
}

// TestDataLargerThanTypical exercises big payload accounting.
func TestLargePayloadDelivery(t *testing.T) {
	w := newWorld(t, 2, autoCfg())
	_ = w.stacks[0].Join(g1)
	_ = w.stacks[1].Join(g1)
	w.run(3 * time.Second)
	if err := w.stacks[0].Send(g1, tPayload{ID: "big", Size: 60_000}); err != nil {
		t.Fatal(err)
	}
	w.run(time.Second)
	found := false
	for _, e := range w.ups[1].log[g1] {
		if e.kind == "data" && e.pay == "big" {
			found = true
		}
	}
	if !found {
		t.Fatal("large payload not delivered")
	}
	// A 60 KB frame at 10 Mbps takes ~48 ms on the wire; the traffic
	// stats must reflect the payload.
	if st := w.nw.Stats(); st.Bytes < 60_000 {
		t.Errorf("stats bytes = %d", st.Bytes)
	}
}

// TestPartitionDuringJoin: the group splits while a joiner's admission
// is in flight.
func TestPartitionDuringJoin(t *testing.T) {
	w := newWorld(t, 3, autoCfg())
	_ = w.stacks[0].Join(g1)
	_ = w.stacks[1].Join(g1)
	w.run(3 * time.Second)
	// p2 starts joining; the partition separates it from the group
	// moments later.
	_ = w.stacks[2].Join(g1)
	w.s.After(20*time.Millisecond, func() {
		w.nw.SetPartitions([]netsim.NodeID{0, 1}, []netsim.NodeID{2})
	})
	w.run(3 * time.Second)
	// p2 must have fallen back to a singleton view on its side.
	v2, ok := w.stacks[2].CurrentView(g1)
	if !ok || !v2.Members.Equal(ids.NewMembers(2)) {
		t.Fatalf("isolated joiner view = %v ok=%v", v2, ok)
	}
	w.nw.Heal()
	w.run(5 * time.Second)
	w.requireSameView(g1, 0, 1, 2)
}

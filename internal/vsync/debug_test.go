package vsync

import (
	"os"
	"testing"
	"time"

	"plwg/internal/ids"
	"plwg/internal/netsim"
	"plwg/internal/sim"
	"plwg/internal/trace"
)

// TestDebugConvergence is a scaffolding test used while developing the
// protocol; enable with VSYNC_DEBUG=1 to dump a full trace of the
// six-singleton merge storm.
func TestDebugConvergence(t *testing.T) {
	if os.Getenv("VSYNC_DEBUG") == "" {
		t.Skip("set VSYNC_DEBUG=1 to run")
	}
	s := sim.New(1)
	nw := netsim.New(s, netsim.DefaultParams())
	rec := &trace.Recorder{}
	stacks := make(map[ids.ProcessID]*Stack)
	for i := 0; i < 6; i++ {
		pid := ids.ProcessID(i)
		st := NewStack(Params{Net: nw, PID: pid, Config: autoCfg(), Tracer: rec})
		mux := netsim.NewMux()
		mux.Handle(AddrPrefix, st.HandleMessage)
		nw.AddNode(pid, mux.Handler())
		stacks[pid] = st
	}
	for i := 0; i < 6; i++ {
		if err := stacks[ids.ProcessID(i)].Join(g1); err != nil {
			t.Fatal(err)
		}
	}
	s.RunFor(6 * time.Second)
	t.Log("\n" + rec.Dump())
	for pid, st := range stacks {
		v, ok := st.CurrentView(g1)
		t.Logf("%v: view=%v ok=%v", pid, v, ok)
	}
}

// Package vsync implements the paper's heavy-weight group (HWG) substrate:
// a partitionable, virtually synchronous group communication layer
// (Sections 3.1 and 5.1). It provides exactly the Table 1 interface —
// Join, Leave, Send and StopOk downcalls; View, Data and Stop upcalls —
// on top of the simulated network.
//
// Guarantees (within the limits of a suspicion-based partitionable model):
//
//   - View synchrony: processes that install the same two consecutive
//     views deliver the same set of messages between them. This is
//     enforced by a coordinator-driven flush: a STOP round quiesces the
//     old view, FLUSH-OK responses carry each member's unstable messages,
//     and the NEW-VIEW message re-multicasts the per-view union so every
//     survivor closes the old view with an identical delivery set.
//   - Partitionable membership: when the network splits, each side
//     installs a concurrent view covering its reachable members; when the
//     partition heals, coordinators discover each other through periodic
//     presence announcements and merge the concurrent views.
//   - View-tagged delivery: every message carries the view identifier it
//     was sent in and is delivered only to members of that view
//     (Section 5.1), which is what lets the LWG layer decouple its own
//     merges from HWG merges.
package vsync

import (
	"errors"
	"fmt"

	"plwg/internal/ids"
	"plwg/internal/metrics"
	"plwg/internal/netsim"
	"plwg/internal/sim"
	"plwg/internal/trace"
	"plwg/internal/wire"
)

// tcSource is the optional transport capability of exposing the wire
// trace context of the envelope currently being delivered (rtnet's
// Transport implements it; the simulated network does not, keeping sim
// runs free of wall-clock reads).
type tcSource interface {
	InboundTraceCtx() (wire.TraceCtx, bool)
}

// Upcalls is the interface the user of the HWG layer implements to receive
// the Table 1 upcalls. The light-weight group service is such a user.
type Upcalls interface {
	// View reports installation of a new view of the group.
	View(gid ids.HWGID, view ids.View)
	// Data delivers a virtually synchronous multicast.
	Data(gid ids.HWGID, src ids.ProcessID, payload Payload)
	// Stop asks the user to cease sending on the group; the user must
	// answer with Stack.StopOk once quiesced. With Config.AutoStopOk the
	// stack answers itself and this upcall is informational.
	Stop(gid ids.HWGID)
}

// Errors returned by the downcalls.
var (
	ErrNotMember     = errors.New("vsync: not a member of the group")
	ErrAlreadyJoined = errors.New("vsync: already joined or joining the group")
	ErrNoStopPending = errors.New("vsync: no stop pending")
)

// Params bundles the dependencies of a Stack.
type Params struct {
	Net     netsim.Transport
	PID     ids.ProcessID
	Config  Config
	Upcalls Upcalls
	Tracer  trace.Tracer
	// Metrics receives the stack's instrumentation; nil disables it at
	// zero hot-path cost.
	Metrics *metrics.Registry
}

// stackMetrics are the Stack's pre-resolved instruments. The zero value
// (nil handles, from a nil registry) is fully disabled.
type stackMetrics struct {
	sends        *metrics.Counter
	deliveries   *metrics.Counter
	nacks        *metrics.Counter
	retransMsgs  *metrics.Counter
	flushRounds  *metrics.Counter
	flushAborts  *metrics.Counter
	viewInstalls *metrics.Counter
	suspects     *metrics.Counter
	flushDur     *metrics.Histo
}

func newStackMetrics(r *metrics.Registry) stackMetrics {
	return stackMetrics{
		sends:        r.Counter("hwg_sends_total"),
		deliveries:   r.Counter("hwg_deliveries_total"),
		nacks:        r.Counter("hwg_nacks_total"),
		retransMsgs:  r.Counter("hwg_retrans_msgs_total"),
		flushRounds:  r.Counter("hwg_flush_rounds_total"),
		flushAborts:  r.Counter("hwg_flush_aborts_total"),
		viewInstalls: r.Counter("hwg_view_installs_total"),
		suspects:     r.Counter("hwg_suspects_total"),
		flushDur:     r.Histogram("hwg_flush_duration"),
	}
}

// Stack is one process's heavy-weight group endpoint. It can be a member
// of any number of groups at once. All methods must be called from the
// simulation goroutine.
type Stack struct {
	net    netsim.Transport
	clock  *sim.Sim
	pid    ids.ProcessID
	cfg    Config
	up     Upcalls
	tracer trace.Tracer
	ins    stackMetrics
	// reg resolves per-group labeled instruments lazily (nil disables).
	reg *metrics.Registry
	// netTC is the transport's inbound trace-context capability, nil on
	// the simulated network.
	netTC tcSource
	// inTC/inTCOK expose the wire trace context of the message currently
	// being handed up via the Data upcall; valid only for the duration of
	// that synchronous upcall (single protocol goroutine).
	inTC   wire.TraceCtx
	inTCOK bool

	groups map[ids.HWGID]*member
	// viewSeq is this process's per-group view-sequence counter: "a local
	// counter incremented by the coordinator of the view whenever a new
	// view is installed" (Section 5.1). It is never reset, so the pair
	// (pid, seq) is globally unique.
	viewSeq map[ids.HWGID]uint64
	// epochN numbers this process's reconfiguration attempts.
	epochN uint64
}

// NewStack creates a heavy-weight group endpoint for the process. The
// caller must route messages with the AddrPrefix mux prefix to
// HandleMessage.
func NewStack(p Params) *Stack {
	cfg := p.Config.withDefaults()
	tr := p.Tracer
	if tr == nil {
		tr = trace.Nop{}
	}
	netTC, _ := p.Net.(tcSource)
	return &Stack{
		net:     p.Net,
		clock:   p.Net.Sim(),
		pid:     p.PID,
		cfg:     cfg,
		up:      p.Upcalls,
		tracer:  tr,
		ins:     newStackMetrics(p.Metrics),
		reg:     p.Metrics,
		netTC:   netTC,
		groups:  make(map[ids.HWGID]*member),
		viewSeq: make(map[ids.HWGID]uint64),
	}
}

// inboundTC returns the wire trace context of the envelope currently
// being delivered by the transport, if the transport exposes one.
func (s *Stack) inboundTC() (wire.TraceCtx, bool) {
	if s.netTC == nil {
		return wire.TraceCtx{}, false
	}
	return s.netTC.InboundTraceCtx()
}

// InboundTC returns the wire trace context of the data message currently
// being delivered through the Data upcall, when the message's envelope
// carried one (sampling makes that the minority of data traffic). Valid
// only inside the upcall, on the protocol goroutine — the light-weight
// layer uses it to extend one-way latency accounting to LWG deliveries.
func (s *Stack) InboundTC() (wire.TraceCtx, bool) { return s.inTC, s.inTCOK }

// NumGroups returns the number of groups the stack participates in
// (allocation-free, for gauges).
func (s *Stack) NumGroups() int { return len(s.groups) }

// PID returns the process identifier of this endpoint.
func (s *Stack) PID() ids.ProcessID { return s.pid }

// Config returns the stack's effective configuration.
func (s *Stack) Config() Config { return s.cfg }

// Join starts joining the group (Table 1 downcall). The caller learns the
// outcome through the View upcall: either an existing view admits the
// process, or after Config.JoinTimeout the process installs a singleton
// view of itself.
func (s *Stack) Join(gid ids.HWGID) error {
	if _, ok := s.groups[gid]; ok {
		return ErrAlreadyJoined
	}
	m := newMember(s, gid)
	s.groups[gid] = m
	m.startJoin()
	return nil
}

// Create founds the group: the process installs a singleton view of
// itself immediately, without the join-discovery timeout. Intended for
// freshly allocated group identifiers (the caller knows no other member
// can exist); if two processes do race, their singleton views merge
// through presence discovery like any concurrent views.
func (s *Stack) Create(gid ids.HWGID) error {
	if _, ok := s.groups[gid]; ok {
		return ErrAlreadyJoined
	}
	m := newMember(s, gid)
	s.groups[gid] = m
	s.net.Subscribe(s.pid, GroupAddr(gid))
	m.state = stateJoining
	m.formSingleton()
	return nil
}

// Flush forces a flush and reinstallation of the group's view without a
// membership change. Only the operating coordinator can force a flush;
// calls from other members, or while a view change is already in
// progress, are no-ops. The light-weight group layer uses this to realize
// Figure 5's "force the flush of the hwg".
func (s *Stack) Flush(gid ids.HWGID) error {
	m, ok := s.groups[gid]
	if !ok {
		return ErrNotMember
	}
	if m.view.ID.IsZero() || m.view.Coordinator() != s.pid {
		return nil
	}
	m.maybeReconfigure("forced-flush")
	return nil
}

// Leave starts leaving the group (Table 1 downcall). The process keeps
// participating in any in-progress flush (so its messages survive) and is
// removed by the next view change.
func (s *Stack) Leave(gid ids.HWGID) error {
	m, ok := s.groups[gid]
	if !ok {
		return ErrNotMember
	}
	m.requestLeave()
	return nil
}

// Send multicasts a virtually synchronous message on the group (Table 1
// downcall). While a flush is in progress (or the join has not completed)
// the message is buffered and transmitted in the next installed view.
func (s *Stack) Send(gid ids.HWGID, payload Payload) error {
	m, ok := s.groups[gid]
	if !ok {
		return ErrNotMember
	}
	m.send(payload)
	return nil
}

// StopOk confirms a Stop upcall (Table 1 downcall): the user has quiesced
// and the flush may proceed.
func (s *Stack) StopOk(gid ids.HWGID) error {
	m, ok := s.groups[gid]
	if !ok {
		return ErrNotMember
	}
	return m.stopOk()
}

// CurrentView returns the installed view of the group, if any.
func (s *Stack) CurrentView(gid ids.HWGID) (ids.View, bool) {
	m, ok := s.groups[gid]
	if !ok || m.view.ID.IsZero() {
		return ids.View{}, false
	}
	return m.view.Clone(), true
}

// IsMember reports whether the process has (or is acquiring) membership of
// the group.
func (s *Stack) IsMember(gid ids.HWGID) bool {
	_, ok := s.groups[gid]
	return ok
}

// IsCoordinator reports whether the process is the operating coordinator
// (smallest member) of its current view of the group.
func (s *Stack) IsCoordinator(gid ids.HWGID) bool {
	m, ok := s.groups[gid]
	return ok && !m.view.ID.IsZero() && m.view.Coordinator() == s.pid
}

// Groups returns the groups this stack participates in, in sorted order.
func (s *Stack) Groups() []ids.HWGID {
	out := make([]ids.HWGID, 0, len(s.groups))
	for gid := range s.groups {
		out = append(out, gid)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// HandleMessage is the network receive entry point; register it on the
// node's mux under AddrPrefix.
func (s *Stack) HandleMessage(from netsim.NodeID, _ netsim.Addr, msg netsim.Message) {
	switch m := msg.(type) {
	case *msgData:
		s.withMember(m.GID, func(mb *member) { mb.onData(from, m) })
	case *msgAck:
		s.withMember(m.GID, func(mb *member) { mb.onAck(from, m) })
	case *msgNack:
		s.withMember(m.GID, func(mb *member) { mb.onNack(from, m) })
	case *msgRetrans:
		s.withMember(m.GID, func(mb *member) { mb.onRetrans(from, m) })
	case *msgAckVector:
		s.withMember(m.GID, func(mb *member) { mb.onAckVector(from, m) })
	case *msgHeartbeat:
		s.withMember(m.GID, func(mb *member) { mb.onHeartbeat(from, m) })
	case *msgPresence:
		s.withMember(m.GID, func(mb *member) { mb.onPresence(from, m) })
	case *msgJoinReq:
		s.withMember(m.GID, func(mb *member) { mb.onJoinReq(from, m) })
	case *msgLeaveReq:
		s.withMember(m.GID, func(mb *member) { mb.onLeaveReq(from, m) })
	case *msgStop:
		s.withMember(m.GID, func(mb *member) { mb.onStop(from, m) })
	case *msgAbort:
		s.withMember(m.GID, func(mb *member) { mb.onAbort(from, m) })
	case *msgFlushOk:
		s.withMember(m.GID, func(mb *member) { mb.onFlushOk(from, m) })
	case *msgFlushPull:
		s.withMember(m.GID, func(mb *member) { mb.onFlushPull(from, m) })
	case *msgFlushFill:
		s.withMember(m.GID, func(mb *member) { mb.onFlushFill(from, m) })
	case *msgNewView:
		s.withMember(m.GID, func(mb *member) { mb.onNewView(from, m) })
	}
}

func (s *Stack) withMember(gid ids.HWGID, fn func(*member)) {
	if m, ok := s.groups[gid]; ok {
		fn(m)
	}
}

// nextViewSeq mints the next view sequence number for a view this process
// installs in the group.
func (s *Stack) nextViewSeq(gid ids.HWGID) uint64 {
	s.viewSeq[gid]++
	return s.viewSeq[gid]
}

// observeViewSeq advances the local counter past seq (used when a view
// identifier bearing this process's name was minted deterministically by
// the group, e.g. a light-weight merge).
func (s *Stack) observeViewSeq(gid ids.HWGID, seq uint64) {
	if s.viewSeq[gid] < seq {
		s.viewSeq[gid] = seq
	}
}

func (s *Stack) nextEpoch() epoch {
	s.epochN++
	return epoch{Initiator: s.pid, N: s.epochN}
}

func (s *Stack) trace(gid ids.HWGID, what, format string, args ...any) {
	s.tracer.Trace(trace.Event{
		At:    s.clock.Now(),
		Node:  s.pid,
		Layer: "vsync",
		What:  what,
		Text:  fmt.Sprintf("%v: %s", gid, fmt.Sprintf(format, args...)),
	})
}

// traceEvent emits a structured event (for the invariant checker); the
// caller fills the payload fields, this stamps time, node and layer.
func (s *Stack) traceEvent(ev trace.Event) {
	ev.At = s.clock.Now()
	ev.Node = s.pid
	ev.Layer = "vsync"
	s.tracer.Trace(ev)
}

// dropMember removes all state for the group (after leave or exclusion).
func (s *Stack) dropMember(gid ids.HWGID) {
	m, ok := s.groups[gid]
	if !ok {
		return
	}
	m.stopTimers()
	s.net.Unsubscribe(s.pid, GroupAddr(gid))
	delete(s.groups, gid)
}

package ids

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewMembersSortsAndDedups(t *testing.T) {
	tests := []struct {
		name string
		in   []ProcessID
		want Members
	}{
		{"empty", nil, Members{}},
		{"single", []ProcessID{3}, Members{3}},
		{"sorted", []ProcessID{1, 2, 3}, Members{1, 2, 3}},
		{"reverse", []ProcessID{3, 2, 1}, Members{1, 2, 3}},
		{"dups", []ProcessID{2, 1, 2, 3, 1}, Members{1, 2, 3}},
		{"all same", []ProcessID{7, 7, 7}, Members{7}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := NewMembers(tt.in...)
			if !got.Equal(tt.want) {
				t.Errorf("NewMembers(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestMembersContains(t *testing.T) {
	m := NewMembers(1, 3, 5, 7)
	for _, p := range []ProcessID{1, 3, 5, 7} {
		if !m.Contains(p) {
			t.Errorf("Contains(%v) = false, want true", p)
		}
	}
	for _, p := range []ProcessID{0, 2, 4, 6, 8} {
		if m.Contains(p) {
			t.Errorf("Contains(%v) = true, want false", p)
		}
	}
}

func TestMembersMin(t *testing.T) {
	if got := NewMembers().Min(); got != -1 {
		t.Errorf("empty Min = %v, want -1", got)
	}
	if got := NewMembers(5, 2, 9).Min(); got != 2 {
		t.Errorf("Min = %v, want 2", got)
	}
}

func TestMembersUnionIntersect(t *testing.T) {
	a := NewMembers(1, 2, 3, 4)
	b := NewMembers(3, 4, 5, 6)
	if got := a.Union(b); !got.Equal(NewMembers(1, 2, 3, 4, 5, 6)) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); !got.Equal(NewMembers(3, 4)) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Union(NewMembers()); !got.Equal(a) {
		t.Errorf("Union with empty = %v", got)
	}
	if got := a.Intersect(NewMembers()); len(got) != 0 {
		t.Errorf("Intersect with empty = %v", got)
	}
}

func TestMembersSubsetOf(t *testing.T) {
	a := NewMembers(2, 4)
	b := NewMembers(1, 2, 3, 4)
	if !a.SubsetOf(b) {
		t.Error("a should be subset of b")
	}
	if b.SubsetOf(a) {
		t.Error("b should not be subset of a")
	}
	if !a.SubsetOf(a) {
		t.Error("a should be subset of itself")
	}
	if !NewMembers().SubsetOf(a) {
		t.Error("empty should be subset of anything")
	}
}

func TestMembersWithWithout(t *testing.T) {
	m := NewMembers(1, 3)
	if got := m.With(2); !got.Equal(NewMembers(1, 2, 3)) {
		t.Errorf("With(2) = %v", got)
	}
	if got := m.With(3); !got.Equal(m) {
		t.Errorf("With(existing) = %v", got)
	}
	if got := m.With(9); !got.Equal(NewMembers(1, 3, 9)) {
		t.Errorf("With(9) = %v", got)
	}
	if got := m.Without(1); !got.Equal(NewMembers(3)) {
		t.Errorf("Without(1) = %v", got)
	}
	if got := m.Without(99); !got.Equal(m) {
		t.Errorf("Without(absent) = %v", got)
	}
	// Original must be untouched.
	if !m.Equal(NewMembers(1, 3)) {
		t.Errorf("original mutated: %v", m)
	}
}

func TestViewIDOrder(t *testing.T) {
	a := ViewID{Coord: 1, Seq: 2}
	b := ViewID{Coord: 1, Seq: 3}
	c := ViewID{Coord: 2, Seq: 1}
	if !a.Less(b) || !b.Less(c) || !a.Less(c) {
		t.Error("expected a < b < c")
	}
	if a.Less(a) {
		t.Error("a < a must be false")
	}
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 {
		t.Error("Compare inconsistent with Less")
	}
}

func TestViewIDString(t *testing.T) {
	if got := (ViewID{Coord: 3, Seq: 7}).String(); got != "p3/7" {
		t.Errorf("String = %q", got)
	}
	if got := ZeroView.String(); got != "⊥" {
		t.Errorf("zero String = %q", got)
	}
}

func TestViewCoordinatorIsMinMember(t *testing.T) {
	v := View{ID: ViewID{Coord: 2, Seq: 1}, Members: NewMembers(5, 2, 9)}
	if got := v.Coordinator(); got != 2 {
		t.Errorf("Coordinator = %v, want 2", got)
	}
}

func TestSortViewIDs(t *testing.T) {
	vs := ViewIDs{{Coord: 2, Seq: 1}, {Coord: 1, Seq: 9}, {Coord: 1, Seq: 2}}
	SortViewIDs(vs)
	want := ViewIDs{{Coord: 1, Seq: 2}, {Coord: 1, Seq: 9}, {Coord: 2, Seq: 1}}
	if !reflect.DeepEqual(vs, want) {
		t.Errorf("sorted = %v, want %v", vs, want)
	}
}

// randomMembers generates a member set for property tests.
func randomMembers(r *rand.Rand) Members {
	n := r.Intn(8)
	ps := make([]ProcessID, n)
	for i := range ps {
		ps[i] = ProcessID(r.Intn(16))
	}
	return NewMembers(ps...)
}

func TestMembersUnionProperties(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(randomMembers(r))
			vals[1] = reflect.ValueOf(randomMembers(r))
		},
	}
	// Union is commutative, contains both operands, and stays sorted.
	prop := func(a, b Members) bool {
		u := a.Union(b)
		if !u.Equal(b.Union(a)) {
			return false
		}
		if !a.SubsetOf(u) || !b.SubsetOf(u) {
			return false
		}
		return sort.SliceIsSorted(u, func(i, j int) bool { return u[i] < u[j] })
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestMembersIntersectProperties(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(randomMembers(r))
			vals[1] = reflect.ValueOf(randomMembers(r))
		},
	}
	// Intersection is commutative and a subset of both operands.
	prop := func(a, b Members) bool {
		x := a.Intersect(b)
		return x.Equal(b.Intersect(a)) && x.SubsetOf(a) && x.SubsetOf(b)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestMembersDeMorganProperty(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(randomMembers(r))
			vals[1] = reflect.ValueOf(randomMembers(r))
		},
	}
	// |A ∪ B| + |A ∩ B| == |A| + |B| (inclusion–exclusion).
	prop := func(a, b Members) bool {
		return len(a.Union(b))+len(a.Intersect(b)) == len(a)+len(b)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

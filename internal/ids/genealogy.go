package ids

// Genealogy records the partial order (ancestry DAG) of views of a single
// group. The paper's naming service must "be aware of the partial order of
// views" to garbage-collect obsolete mappings (Section 5.2): once the
// merged view's mapping is stored, the mappings of the views it merged
// are obsolete and can be deleted.
//
// Each view records its immediate parents (the views it succeeded or
// merged). Because entries for ancestors may themselves have been garbage
// collected by the time a descendant arrives, every node additionally keeps
// its full transitive ancestor set, so that ancestry queries never depend
// on intermediate nodes being present.
type Genealogy struct {
	// ancestors maps a view identifier to the set of all its strict
	// ancestors.
	ancestors map[ViewID]map[ViewID]bool
}

// NewGenealogy returns an empty genealogy.
func NewGenealogy() *Genealogy {
	return &Genealogy{ancestors: make(map[ViewID]map[ViewID]bool)}
}

// Record adds view v with the given immediate parents. Inputs must form
// a DAG — a view's ancestors causally precede it, which the protocols
// guarantee by construction. The transitive
// ancestor set of v becomes parents ∪ (ancestors of each parent), and any
// node already recorded with v among its ancestors inherits the additions
// — so the closure is correct regardless of the order in which edges
// arrive (replicas learn history in arbitrary order). Recording the same
// view twice merges the ancestor sets.
func (g *Genealogy) Record(v ViewID, parents []ViewID) {
	set := g.ancestors[v]
	if set == nil {
		set = make(map[ViewID]bool)
		g.ancestors[v] = set
	}
	for _, p := range parents {
		if p.IsZero() || p == v {
			continue
		}
		set[p] = true
		for a := range g.ancestors[p] {
			if a != v {
				set[a] = true
			}
		}
	}
	// Forward propagation: descendants of v (nodes that already list v as
	// an ancestor) inherit v's ancestors.
	if len(set) == 0 {
		return
	}
	for w, ws := range g.ancestors {
		if w == v || !ws[v] {
			continue
		}
		for a := range set {
			if a != w {
				ws[a] = true
			}
		}
	}
}

// IsAncestor reports whether a is a strict ancestor of b.
func (g *Genealogy) IsAncestor(a, b ViewID) bool {
	return g.ancestors[b][a]
}

// Concurrent reports whether the two views are concurrent: distinct, and
// neither is an ancestor of the other. Concurrent views of the same group
// exist exactly when the group was split by a partition.
func (g *Genealogy) Concurrent(a, b ViewID) bool {
	if a == b {
		return false
	}
	return !g.IsAncestor(a, b) && !g.IsAncestor(b, a)
}

// Ancestors returns the strict ancestor set of v in deterministic order.
func (g *Genealogy) Ancestors(v ViewID) ViewIDs {
	set := g.ancestors[v]
	out := make(ViewIDs, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	return SortViewIDs(out)
}

// Known reports whether v has ever been recorded.
func (g *Genealogy) Known(v ViewID) bool {
	_, ok := g.ancestors[v]
	return ok
}

// Forget drops the node for v. Descendants keep their full ancestor sets,
// so ancestry queries about v remain correct.
func (g *Genealogy) Forget(v ViewID) {
	delete(g.ancestors, v)
}

// Merge copies every node of other into g, merging ancestor sets. It is
// used by the naming service when reconciling databases after a partition
// heals.
func (g *Genealogy) Merge(other *Genealogy) {
	for v, set := range other.ancestors {
		dst := g.ancestors[v]
		if dst == nil {
			dst = make(map[ViewID]bool, len(set))
			g.ancestors[v] = dst
		}
		for a := range set {
			dst[a] = true
		}
	}
}

// Size returns the number of recorded views.
func (g *Genealogy) Size() int { return len(g.ancestors) }

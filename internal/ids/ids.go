// Package ids defines the identifier and view types shared by every layer
// of the partitionable light-weight group service: process identifiers,
// heavy-weight group identifiers, light-weight group names, view identifiers
// and views.
//
// Following the paper (Section 5.1), a view is identified by the pair
// (coordinator, view-sequence-number), where the sequence number is a local
// counter incremented by the coordinator each time it installs a new view.
// Because a coordinator never reuses a sequence number, view identifiers are
// globally unique even across concurrent partitions.
package ids

import (
	"fmt"
	"sort"
	"strings"
)

// ProcessID identifies a process (one per simulated node).
type ProcessID int32

// String returns the conventional "p<N>" rendering of a process identifier.
func (p ProcessID) String() string { return fmt.Sprintf("p%d", int32(p)) }

// HWGID identifies a heavy-weight group. HWGIDs are allocated from a
// totally ordered space; the total order is used by the mapping heuristics
// and by the partition-reconciliation rule of Section 6.2 ("switch to the
// HWG with highest group identifier") to make deterministic decisions
// without coordination.
type HWGID int64

// String returns the conventional "hwg<N>" rendering.
func (h HWGID) String() string { return fmt.Sprintf("hwg%d", int64(h)) }

// NoHWG is the zero HWGID, meaning "no heavy-weight group".
const NoHWG HWGID = 0

// LWGID names a user-level light-weight group. LWG names are chosen by the
// application (e.g. a data "subject" in a trading system).
type LWGID string

// ViewID identifies one view of a group (either level). It is the pair
// (coordinator, view-sequence-number) from Section 5.1 of the paper.
type ViewID struct {
	// Coord is the process that installed the view and acts as its
	// coordinator.
	Coord ProcessID
	// Seq is the coordinator-local view sequence number.
	Seq uint64
}

// ZeroView is the zero ViewID, meaning "no view".
var ZeroView ViewID

// IsZero reports whether v is the zero view identifier.
func (v ViewID) IsZero() bool { return v == ZeroView }

// String renders the identifier as "<coord>/<seq>".
func (v ViewID) String() string {
	if v.IsZero() {
		return "⊥"
	}
	return fmt.Sprintf("%v/%d", v.Coord, v.Seq)
}

// Less imposes a deterministic total order on view identifiers
// (lexicographic on coordinator then sequence number). The order carries no
// causal meaning; it is used only for tie-breaking and stable iteration.
func (v ViewID) Less(o ViewID) bool {
	if v.Coord != o.Coord {
		return v.Coord < o.Coord
	}
	return v.Seq < o.Seq
}

// Compare returns -1, 0 or +1 according to the total order of Less.
func (v ViewID) Compare(o ViewID) int {
	switch {
	case v == o:
		return 0
	case v.Less(o):
		return -1
	default:
		return 1
	}
}

// View is an installed view: an identifier plus the sorted member list.
type View struct {
	ID      ViewID
	Members Members
}

// Clone returns a deep copy of the view.
func (v View) Clone() View {
	return View{ID: v.ID, Members: v.Members.Clone()}
}

// String renders the view as "<id>{p1,p2,...}".
func (v View) String() string {
	return v.ID.String() + v.Members.String()
}

// Coordinator returns the process responsible for the view's membership
// decisions: by convention the member with the smallest identifier. For an
// installed view this equals ID.Coord; during view formation it identifies
// who should become the coordinator.
func (v View) Coordinator() ProcessID { return v.Members.Min() }

// Contains reports whether p is a member of the view.
func (v View) Contains(p ProcessID) bool { return v.Members.Contains(p) }

// Members is a sorted, duplicate-free set of process identifiers.
type Members []ProcessID

// NewMembers builds a member set from the given processes, sorting and
// de-duplicating them.
func NewMembers(ps ...ProcessID) Members {
	m := make(Members, len(ps))
	copy(m, ps)
	sort.Slice(m, func(i, j int) bool { return m[i] < m[j] })
	out := m[:0]
	for i, p := range m {
		if i == 0 || p != m[i-1] {
			out = append(out, p)
		}
	}
	return out
}

// Clone returns a copy of the member set.
func (m Members) Clone() Members {
	out := make(Members, len(m))
	copy(out, m)
	return out
}

// String renders the set as "{p1,p2,...}".
func (m Members) String() string {
	parts := make([]string, len(m))
	for i, p := range m {
		parts[i] = p.String()
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Contains reports whether p is in the set.
func (m Members) Contains(p ProcessID) bool {
	i := sort.Search(len(m), func(i int) bool { return m[i] >= p })
	return i < len(m) && m[i] == p
}

// Min returns the smallest member, or -1 if the set is empty.
func (m Members) Min() ProcessID {
	if len(m) == 0 {
		return -1
	}
	return m[0]
}

// Equal reports whether the two sets contain exactly the same processes.
func (m Members) Equal(o Members) bool {
	if len(m) != len(o) {
		return false
	}
	for i := range m {
		if m[i] != o[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every member of m is also in o.
func (m Members) SubsetOf(o Members) bool {
	i := 0
	for _, p := range m {
		for i < len(o) && o[i] < p {
			i++
		}
		if i >= len(o) || o[i] != p {
			return false
		}
	}
	return true
}

// Union returns the sorted union of the two sets.
func (m Members) Union(o Members) Members {
	out := make(Members, 0, len(m)+len(o))
	i, j := 0, 0
	for i < len(m) && j < len(o) {
		switch {
		case m[i] < o[j]:
			out = append(out, m[i])
			i++
		case m[i] > o[j]:
			out = append(out, o[j])
			j++
		default:
			out = append(out, m[i])
			i++
			j++
		}
	}
	out = append(out, m[i:]...)
	out = append(out, o[j:]...)
	return out
}

// Intersect returns the sorted intersection of the two sets.
func (m Members) Intersect(o Members) Members {
	var out Members
	i, j := 0, 0
	for i < len(m) && j < len(o) {
		switch {
		case m[i] < o[j]:
			i++
		case m[i] > o[j]:
			j++
		default:
			out = append(out, m[i])
			i++
			j++
		}
	}
	return out
}

// Without returns a copy of m with p removed (no-op if absent).
func (m Members) Without(p ProcessID) Members {
	out := make(Members, 0, len(m))
	for _, q := range m {
		if q != p {
			out = append(out, q)
		}
	}
	return out
}

// With returns a copy of m with p added (no-op if present).
func (m Members) With(p ProcessID) Members {
	if m.Contains(p) {
		return m.Clone()
	}
	out := make(Members, 0, len(m)+1)
	inserted := false
	for _, q := range m {
		if !inserted && p < q {
			out = append(out, p)
			inserted = true
		}
		out = append(out, q)
	}
	if !inserted {
		out = append(out, p)
	}
	return out
}

// ViewIDs is a slice of view identifiers with set-style helpers.
type ViewIDs []ViewID

// SortViewIDs sorts the slice in the deterministic total order of
// ViewID.Less and returns it.
func SortViewIDs(vs ViewIDs) ViewIDs {
	sort.Slice(vs, func(i, j int) bool { return vs[i].Less(vs[j]) })
	return vs
}

// Contains reports whether v is in the slice.
func (vs ViewIDs) Contains(v ViewID) bool {
	for _, x := range vs {
		if x == v {
			return true
		}
	}
	return false
}

// String renders the slice as "[v1 v2 ...]".
func (vs ViewIDs) String() string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = v.String()
	}
	return "[" + strings.Join(parts, " ") + "]"
}

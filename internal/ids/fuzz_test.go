package ids

import (
	"testing"
)

// FuzzMembersOps decodes bytes into two member sets and checks the
// algebraic laws the protocols rely on.
func FuzzMembersOps(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{3, 4, 5})
	f.Add([]byte{}, []byte{0})
	f.Add([]byte{9, 9, 9, 1}, []byte{2})
	f.Fuzz(func(t *testing.T, ra, rb []byte) {
		a := decodeMembers(ra)
		b := decodeMembers(rb)

		u := a.Union(b)
		if !u.Equal(b.Union(a)) {
			t.Fatal("union not commutative")
		}
		if !a.SubsetOf(u) || !b.SubsetOf(u) {
			t.Fatal("union lost members")
		}
		x := a.Intersect(b)
		if !x.Equal(b.Intersect(a)) {
			t.Fatal("intersection not commutative")
		}
		if !x.SubsetOf(a) || !x.SubsetOf(b) {
			t.Fatal("intersection grew members")
		}
		if len(u)+len(x) != len(a)+len(b) {
			t.Fatal("inclusion-exclusion violated")
		}
		for _, p := range x {
			if !a.Contains(p) || !b.Contains(p) {
				t.Fatal("intersection member missing from operand")
			}
		}
		// With/Without are inverses on absent/present members.
		for _, p := range a {
			if got := a.Without(p).With(p); !got.Equal(a) {
				t.Fatalf("Without/With not inverse at %v: %v vs %v", p, got, a)
			}
		}
		// Clone isolation.
		c := a.Clone()
		if len(c) > 0 {
			c[0] = c[0] + 1000
			if a.Contains(c[0]) && !decodeMembers(ra).Contains(c[0]) {
				t.Fatal("Clone shares backing storage")
			}
		}
	})
}

// FuzzGenealogy decodes bytes into a DAG-constrained sequence of Record
// calls (parents only ever reference previously recorded views, as the
// protocols guarantee by construction) and checks that ancestry stays a
// strict partial order, that the transitive closure is independent of the
// order history is learned in, and that Merge/Forget preserve answers.
func FuzzGenealogy(f *testing.F) {
	f.Add([]byte{0, 0, 1, 0, 2, 0, 1})
	f.Add([]byte{0, 0, 2, 0, 1, 3, 0, 1, 2})
	f.Add([]byte{0, 1, 0, 1, 1, 1, 2, 1, 3, 1, 4})
	f.Fuzz(func(t *testing.T, raw []byte) {
		type rec struct {
			v       ViewID
			parents ViewIDs
		}
		var script []rec
		var known ViewIDs
		for i := 0; i < len(raw) && len(script) < 24; {
			np := int(raw[i]) % 4
			i++
			var parents ViewIDs
			for j := 0; j < np && i < len(raw); j++ {
				if len(known) > 0 {
					parents = append(parents, known[int(raw[i])%len(known)])
				}
				i++
			}
			v := ViewID{Coord: ProcessID(len(script) % 5), Seq: uint64(len(script)/5 + 1)}
			script = append(script, rec{v: v, parents: parents})
			known = append(known, v)
		}
		if len(script) == 0 {
			return
		}

		g := NewGenealogy()
		for _, r := range script {
			g.Record(r.v, r.parents)
		}

		// Strict partial order: irreflexive, antisymmetric, transitive.
		for _, a := range known {
			if g.IsAncestor(a, a) {
				t.Fatalf("%v is its own ancestor", a)
			}
			for _, b := range known {
				if a != b && g.IsAncestor(a, b) && g.IsAncestor(b, a) {
					t.Fatalf("ancestry cycle between %v and %v", a, b)
				}
				for _, c := range known {
					if g.IsAncestor(a, b) && g.IsAncestor(b, c) && !g.IsAncestor(a, c) {
						t.Fatalf("transitivity violated: %v < %v < %v", a, b, c)
					}
				}
			}
		}
		// Every declared parent is an ancestor, and Concurrent is
		// symmetric and consistent with IsAncestor.
		for _, r := range script {
			for _, p := range r.parents {
				if p != r.v && !g.IsAncestor(p, r.v) {
					t.Fatalf("parent %v not ancestor of %v", p, r.v)
				}
			}
		}
		for _, a := range known {
			for _, b := range known {
				want := a != b && !g.IsAncestor(a, b) && !g.IsAncestor(b, a)
				if g.Concurrent(a, b) != want || g.Concurrent(a, b) != g.Concurrent(b, a) {
					t.Fatalf("Concurrent(%v,%v) inconsistent", a, b)
				}
			}
		}

		// Order independence: replaying the script in reverse (replicas
		// learn history in arbitrary order) yields the same closure.
		rev := NewGenealogy()
		for i := len(script) - 1; i >= 0; i-- {
			rev.Record(script[i].v, script[i].parents)
		}
		for _, a := range known {
			for _, b := range known {
				if g.IsAncestor(a, b) != rev.IsAncestor(a, b) {
					t.Fatalf("closure depends on arrival order at (%v,%v)", a, b)
				}
			}
		}

		// Merge into an empty genealogy reproduces the answers; Forget of
		// an intermediate node keeps descendants' ancestor sets intact.
		merged := NewGenealogy()
		merged.Merge(g)
		mid := known[len(known)/2]
		g.Forget(mid)
		for _, a := range known {
			for _, b := range known {
				if b == mid {
					continue
				}
				if g.IsAncestor(a, b) != merged.IsAncestor(a, b) {
					t.Fatalf("Forget(%v) changed answer at (%v,%v)", mid, a, b)
				}
			}
		}
	})
}

func decodeMembers(raw []byte) Members {
	ps := make([]ProcessID, 0, len(raw))
	for _, b := range raw {
		ps = append(ps, ProcessID(b%32))
	}
	return NewMembers(ps...)
}

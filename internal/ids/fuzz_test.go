package ids

import (
	"testing"
)

// FuzzMembersOps decodes bytes into two member sets and checks the
// algebraic laws the protocols rely on.
func FuzzMembersOps(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{3, 4, 5})
	f.Add([]byte{}, []byte{0})
	f.Add([]byte{9, 9, 9, 1}, []byte{2})
	f.Fuzz(func(t *testing.T, ra, rb []byte) {
		a := decodeMembers(ra)
		b := decodeMembers(rb)

		u := a.Union(b)
		if !u.Equal(b.Union(a)) {
			t.Fatal("union not commutative")
		}
		if !a.SubsetOf(u) || !b.SubsetOf(u) {
			t.Fatal("union lost members")
		}
		x := a.Intersect(b)
		if !x.Equal(b.Intersect(a)) {
			t.Fatal("intersection not commutative")
		}
		if !x.SubsetOf(a) || !x.SubsetOf(b) {
			t.Fatal("intersection grew members")
		}
		if len(u)+len(x) != len(a)+len(b) {
			t.Fatal("inclusion-exclusion violated")
		}
		for _, p := range x {
			if !a.Contains(p) || !b.Contains(p) {
				t.Fatal("intersection member missing from operand")
			}
		}
		// With/Without are inverses on absent/present members.
		for _, p := range a {
			if got := a.Without(p).With(p); !got.Equal(a) {
				t.Fatalf("Without/With not inverse at %v: %v vs %v", p, got, a)
			}
		}
		// Clone isolation.
		c := a.Clone()
		if len(c) > 0 {
			c[0] = c[0] + 1000
			if a.Contains(c[0]) && !decodeMembers(ra).Contains(c[0]) {
				t.Fatal("Clone shares backing storage")
			}
		}
	})
}

func decodeMembers(raw []byte) Members {
	ps := make([]ProcessID, 0, len(raw))
	for _, b := range raw {
		ps = append(ps, ProcessID(b%32))
	}
	return NewMembers(ps...)
}

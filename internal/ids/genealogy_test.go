package ids

import (
	"math/rand"
	"testing"
)

func vid(c ProcessID, s uint64) ViewID { return ViewID{Coord: c, Seq: s} }

func TestGenealogyLinearChain(t *testing.T) {
	g := NewGenealogy()
	v1, v2, v3 := vid(1, 1), vid(1, 2), vid(1, 3)
	g.Record(v1, nil)
	g.Record(v2, []ViewID{v1})
	g.Record(v3, []ViewID{v2})

	if !g.IsAncestor(v1, v2) || !g.IsAncestor(v2, v3) {
		t.Error("direct parents must be ancestors")
	}
	if !g.IsAncestor(v1, v3) {
		t.Error("ancestry must be transitive")
	}
	if g.IsAncestor(v3, v1) {
		t.Error("ancestry must not be symmetric")
	}
	if g.Concurrent(v1, v3) {
		t.Error("related views must not be concurrent")
	}
}

func TestGenealogyMerge(t *testing.T) {
	// Two concurrent views merge into one, as in Figure 4 of the paper:
	// lwg_a and lwg'_a merge into lwg''_a.
	g := NewGenealogy()
	base := vid(1, 1)
	left := vid(1, 2)   // installed in partition p
	right := vid(4, 1)  // installed in partition p'
	merged := vid(1, 3) // after the heal
	g.Record(base, nil)
	g.Record(left, []ViewID{base})
	g.Record(right, []ViewID{base})
	g.Record(merged, []ViewID{left, right})

	if !g.Concurrent(left, right) {
		t.Error("views from disjoint partitions must be concurrent")
	}
	if !g.IsAncestor(left, merged) || !g.IsAncestor(right, merged) {
		t.Error("merged view must descend from both inputs")
	}
	if !g.IsAncestor(base, merged) {
		t.Error("merged view must descend from the common base")
	}
	if g.Concurrent(merged, left) {
		t.Error("merged view is not concurrent with its parents")
	}
}

func TestGenealogyForgetKeepsDescendantAncestry(t *testing.T) {
	g := NewGenealogy()
	v1, v2, v3 := vid(1, 1), vid(1, 2), vid(1, 3)
	g.Record(v1, nil)
	g.Record(v2, []ViewID{v1})
	g.Record(v3, []ViewID{v2})
	g.Forget(v2) // garbage-collect the middle node

	if !g.IsAncestor(v1, v3) {
		t.Error("forgetting an intermediate node must not lose ancestry")
	}
	if g.Known(v2) {
		t.Error("forgotten node must not be known")
	}
}

func TestGenealogyMergeDatabases(t *testing.T) {
	// Two name servers learned disjoint halves of the history; after
	// reconciliation the merged genealogy answers queries spanning both.
	a := NewGenealogy()
	b := NewGenealogy()
	base, l, r := vid(1, 1), vid(1, 2), vid(4, 1)
	a.Record(base, nil)
	a.Record(l, []ViewID{base})
	b.Record(base, nil)
	b.Record(r, []ViewID{base})

	a.Merge(b)
	if !a.IsAncestor(base, r) {
		t.Error("merged genealogy must include the other server's edges")
	}
	if !a.Concurrent(l, r) {
		t.Error("merged genealogy must see l and r as concurrent")
	}
}

func TestGenealogySelfAndZeroParents(t *testing.T) {
	g := NewGenealogy()
	v := vid(1, 1)
	g.Record(v, []ViewID{v, ZeroView}) // degenerate inputs are ignored
	if g.IsAncestor(v, v) {
		t.Error("a view must not be its own ancestor")
	}
	if g.IsAncestor(ZeroView, v) {
		t.Error("the zero view must never be recorded as an ancestor")
	}
}

func TestGenealogyAncestorsSorted(t *testing.T) {
	g := NewGenealogy()
	v1, v2, v3, v4 := vid(2, 1), vid(1, 5), vid(3, 1), vid(1, 9)
	g.Record(v1, nil)
	g.Record(v2, nil)
	g.Record(v3, []ViewID{v1, v2})
	g.Record(v4, []ViewID{v3})

	got := g.Ancestors(v4)
	want := ViewIDs{v2, v1, v3} // sorted order: p1/5, p2/1, p3/1
	if len(got) != len(want) {
		t.Fatalf("Ancestors = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Ancestors = %v, want %v", got, want)
		}
	}
}

// TestGenealogyRandomDAGInvariants grows a random DAG and checks the core
// invariants: irreflexivity, antisymmetry, transitivity via merged nodes.
func TestGenealogyRandomDAGInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		g := NewGenealogy()
		var all ViewIDs
		for i := 0; i < 30; i++ {
			v := vid(ProcessID(r.Intn(4)), uint64(i+1))
			// pick up to 2 random existing views as parents
			var parents []ViewID
			for k := 0; k < 2 && len(all) > 0; k++ {
				parents = append(parents, all[r.Intn(len(all))])
			}
			g.Record(v, parents)
			all = append(all, v)
		}
		for _, a := range all {
			if g.IsAncestor(a, a) {
				t.Fatalf("irreflexivity violated at %v", a)
			}
			for _, b := range all {
				if a != b && g.IsAncestor(a, b) && g.IsAncestor(b, a) {
					t.Fatalf("antisymmetry violated at %v,%v", a, b)
				}
			}
		}
		// Transitivity: ancestors of ancestors are ancestors.
		for _, b := range all {
			for _, a := range g.Ancestors(b) {
				for _, aa := range g.Ancestors(a) {
					if !g.IsAncestor(aa, b) {
						t.Fatalf("transitivity violated: %v < %v < %v", aa, a, b)
					}
				}
			}
		}
	}
}

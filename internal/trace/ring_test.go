package trace

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"plwg/internal/ids"
	"plwg/internal/sim"
)

func TestRingDropsOldest(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Trace(Event{At: sim.Time(i), Text: fmt.Sprintf("e%d", i)})
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("retained %d events, want 4", len(snap))
	}
	for i, e := range snap {
		if want := fmt.Sprintf("e%d", 6+i); e.Text != want {
			t.Errorf("snapshot[%d] = %q, want %q (oldest-first, newest retained)", i, e.Text, want)
		}
	}
	if r.Total() != 10 {
		t.Errorf("Total = %d, want 10", r.Total())
	}
	if r.Dropped() != 6 {
		t.Errorf("Dropped = %d, want 6", r.Dropped())
	}
}

func TestRingBelowCapacity(t *testing.T) {
	r := NewRing(8)
	r.Trace(Event{Text: "a"})
	r.Trace(Event{Text: "b"})
	snap := r.Snapshot()
	if len(snap) != 2 || snap[0].Text != "a" || snap[1].Text != "b" {
		t.Errorf("snapshot = %v", snap)
	}
	if r.Dropped() != 0 {
		t.Errorf("Dropped = %d, want 0", r.Dropped())
	}
}

func TestRingDefaultCapacity(t *testing.T) {
	r := NewRing(0)
	r.Trace(Event{})
	if got := len(r.buf); got != DefaultRingCapacity {
		t.Errorf("default capacity = %d, want %d", got, DefaultRingCapacity)
	}
}

// TestRingConcurrentNonBlocking drives many concurrent senders into a
// tiny ring with NO reader draining it, and asserts (a) every sender
// completes promptly — a full ring never blocks or backpressures the
// protocol goroutines, it drops the oldest events instead — and (b) the
// retained window is exactly the newest events by total order. Run
// under -race this also proves the synchronization is sound.
func TestRingConcurrentNonBlocking(t *testing.T) {
	const (
		senders   = 8
		perSender = 5000
		capacity  = 64
	)
	r := NewRing(capacity)
	var wg sync.WaitGroup
	done := make(chan struct{})
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				r.Trace(Event{Node: ids.ProcessID(s), At: sim.Time(i)})
			}
		}(s)
	}
	// Concurrent snapshots must not disturb the senders.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			if got := len(r.Snapshot()); got > capacity {
				t.Errorf("snapshot longer than capacity: %d", got)
				return
			}
		}
	}()
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("senders blocked on a full, undrained ring")
	}
	if got := r.Total(); got != senders*perSender {
		t.Errorf("Total = %d, want %d", got, senders*perSender)
	}
	if got := r.Dropped(); got != senders*perSender-capacity {
		t.Errorf("Dropped = %d, want %d", got, senders*perSender-capacity)
	}
	if got := len(r.Snapshot()); got != capacity {
		t.Errorf("retained %d, want %d", got, capacity)
	}
}

func BenchmarkRingTrace(b *testing.B) {
	r := NewRing(DefaultRingCapacity)
	e := Event{Node: 3, Layer: "lwg", What: LWGSend, Group: "g", Data: "m1"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.At = sim.Time(i)
		r.Trace(e)
	}
}

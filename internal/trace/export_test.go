package trace

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"plwg/internal/ids"
	"plwg/internal/sim"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

// sampleEvents is a small but representative trace: a three-node LWG
// with a view install, sends/deliveries, a switch and a merge step.
func sampleEvents() []Event {
	at := func(ms int) sim.Time { return sim.Time(time.Duration(ms) * time.Millisecond) }
	v1 := ids.ViewID{Coord: 0, Seq: 1}
	v2 := ids.ViewID{Coord: 0, Seq: 2}
	hv := ids.ViewID{Coord: 0, Seq: 7}
	var events []Event
	for _, n := range []ids.ProcessID{0, 1, 2} {
		events = append(events, Event{
			At: at(10 + int(n)), Node: n, Layer: "lwg", What: LWGViewInstall,
			Group: "chat", View: v1, Members: ids.NewMembers(0, 1, 2),
			Parents: ids.ViewIDs{{Coord: 0, Seq: 0}},
		})
	}
	events = append(events,
		Event{At: at(20), Node: 1, Layer: "lwg", What: LWGSend,
			Group: "chat", View: v1, Src: 1, Data: "m1"},
		Event{At: at(22), Node: 0, Layer: "lwg", What: LWGDeliver,
			Group: "chat", View: v1, Src: 1, Data: "m1"},
		Event{At: at(22), Node: 2, Layer: "lwg", What: LWGDeliver,
			Group: "chat", View: v1, Src: 1, Data: "m1"},
		Event{At: at(30), Node: 0, Layer: "lwg", What: LWGSwitch,
			Group: "chat", View: v1, Ref: "hwg3", Text: "hwg1 -> hwg3"},
	)
	for _, n := range []ids.ProcessID{0, 1, 2} {
		events = append(events, Event{
			At: at(34 + int(n)), Node: n, Layer: "lwg", What: LWGRebind,
			Group: "chat", View: v2, Ref: "hwg3", Text: "re-bound to hwg3",
		})
	}
	for _, n := range []ids.ProcessID{0, 1, 2} {
		events = append(events, Event{
			At: at(40 + int(n)), Node: n, Layer: "lwg", What: LWGMergeStep,
			Group: "hwg3", View: hv, Step: 4, Ref: "chat", Data: v2.String(),
		})
	}
	return events
}

func TestJSONLRoundTrip(t *testing.T) {
	events := sampleEvents()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	back, err := ParseJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(events, back) {
		t.Errorf("round trip mismatch:\n got %#v\nwant %#v", back, events)
	}
}

func TestParseJSONLSkipsBlanksRejectsGarbage(t *testing.T) {
	events, err := ParseJSONL(bytes.NewBufferString(
		"\n{\"at_ns\":1,\"node\":0,\"layer\":\"lwg\",\"what\":\"x\"}\n\n"))
	if err != nil || len(events) != 1 {
		t.Fatalf("parse = %v events, err %v", len(events), err)
	}
	if _, err := ParseJSONL(bytes.NewBufferString("{\n")); err == nil {
		t.Error("garbage line did not fail")
	}
}

// TestChromeTraceGolden pins the Chrome trace-event export byte-for-byte
// against testdata/chrome_trace.golden. Regenerate deliberately with
// go test ./internal/trace -run ChromeTraceGolden -update-golden.
func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_trace.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Chrome trace export drifted from golden file.\ngot:\n%s\nwant:\n%s",
			buf.Bytes(), want)
	}
}

func TestStitchSyntheticOps(t *testing.T) {
	ops := Stitch(sampleEvents())
	byKind := make(map[string][]Op)
	for _, op := range ops {
		byKind[op.Key.Kind] = append(byKind[op.Key.Kind], op)
	}
	view := byKind["lwg-view"]
	if len(view) != 1 || len(view[0].Nodes) != 3 {
		t.Errorf("lwg-view ops = %+v, want one op over 3 nodes", view)
	}
	sw := byKind["switch"]
	if len(sw) != 1 {
		t.Fatalf("switch ops = %+v, want 1", sw)
	}
	if len(sw[0].Nodes) != 3 || len(sw[0].Events) != 4 {
		t.Errorf("switch op: nodes=%v events=%d, want 3 nodes / 4 events (announce + 3 rebinds)",
			sw[0].Nodes, len(sw[0].Events))
	}
	mv := byKind["merge-views"]
	if len(mv) != 1 || len(mv[0].Nodes) != 3 {
		t.Errorf("merge-views ops = %+v, want one op over 3 nodes", mv)
	}
	// Events inside an op are (time, node)-ordered.
	for _, op := range ops {
		for i := 1; i < len(op.Events); i++ {
			a, b := op.Events[i-1], op.Events[i]
			if a.At > b.At || (a.At == b.At && a.Node > b.Node) {
				t.Errorf("op %v events out of order at %d", op.Key, i)
			}
		}
	}
	// Explain renders every event of the op.
	text := Explain(sw[0])
	if want := "switch chat→hwg3"; !bytes.Contains([]byte(text), []byte(want)) {
		t.Errorf("Explain missing %q:\n%s", want, text)
	}
}

// Package trace provides lightweight structured event tracing for the
// protocol stacks. Traces are used by tests to assert protocol behaviour
// and by the scenario player (cmd/lwgsim) to narrate reconciliation runs.
package trace

import (
	"fmt"
	"strings"
	"sync"

	"plwg/internal/ids"
	"plwg/internal/sim"
)

// Canonical What values for the structured events consumed by the
// invariant checker (internal/check). Other events are free-form.
const (
	// LWGViewInstall marks a light-weight group view installation. The
	// event carries Group, View, Members and Parents.
	LWGViewInstall = "lwg-view"
	// LWGDeliver marks a Data upcall to the LWG user. The event carries
	// Group, View (the view the message was delivered in), Src and Data.
	LWGDeliver = "lwg-deliver"
	// LWGSend marks an actual LWG multicast emission (after any
	// buffering), stamped with the view it was sent in. The event carries
	// Group, View, Src (the sender itself) and Data.
	LWGSend = "lwg-send"
	// HWGViewInstall marks a heavy-weight group view installation. The
	// event carries Group, View and Members.
	HWGViewInstall = "view-install"

	// LWGSwitch marks a switch announcement: the LWG view's coordinator
	// instructs the members to re-map the group onto another HWG. The
	// event carries Group (the LWG), View (the view being switched) and
	// Ref (the target HWG). Every member's matching LWGRebind carries
	// the same Group and Ref, which is the cross-node correlation key of
	// the switching operation.
	LWGSwitch = "lwg-switch"
	// LWGRebind marks one member completing a switch: it is now bound to
	// the target HWG. The event carries Group, View (the view bound on
	// the target) and Ref (the target HWG).
	LWGRebind = "lwg-rebind"
	// LWGMergeStep marks one step of the Figure 5 MERGE-VIEWS protocol
	// executing at one member. The event carries Group (the HWG the
	// merge runs on), View (the HWG view it executes in — the cross-node
	// correlation key), Step (1 trigger, 2 mapped-views exchange,
	// 3 forced flush, 4 reconcile/merge) and, for step 4, Ref (the LWG
	// being reconciled) plus Data (the merged LWG view identifier).
	LWGMergeStep = "merge-step"
	// HWGFlushStart / HWGFlushDone bracket a vsync flush round. Both
	// carry Group, View (the view being flushed) and Ref (the round's
	// epoch — the cross-node correlation key; responders' "stopped"
	// events carry the same Ref).
	HWGFlushStart = "flush-start"
	// HWGFlushDone — see HWGFlushStart.
	HWGFlushDone = "flush-done"
	// HWGRetrans marks a retransmission of stored messages to a peer
	// that NACKed a gap. The event carries Group, View and Ref (the
	// requesting process).
	HWGRetrans = "retransmit"
	// NSDigest marks one leg of a naming-service digest/delta
	// anti-entropy exchange. The event carries Ref (the peer).
	NSDigest = "ns-digest"
	// LWGPreInstallDrop marks a pre-install buffer overflow shedding a
	// view-tagged data message before it could be replayed. The event
	// carries Group, View (the tag of the dropped message), Src and Data.
	// The invariant checker treats it as a finding: an overflow-induced
	// delivery gap must never pass as silence.
	LWGPreInstallDrop = "lwg-preinstall-drop"
	// WireRecv marks a trace-context-carrying envelope arriving at a
	// live rtnet node (Layer "net"). The event carries Src (the origin
	// process from the wire context) and Ref (the context's operation
	// reference — the envelope address it was sent to), tying the
	// receiver's ring to the sender's without a shared recorder.
	WireRecv = "wire-recv"
)

// Event is one traced protocol event.
//
// At/Node/Layer/What/Text describe the event for humans. The remaining
// fields are optional structured payload filled in by the protocol layers
// for the canonical What values above, so that checkers can verify safety
// properties without parsing log text.
type Event struct {
	At    sim.Time
	Node  ids.ProcessID
	Layer string // "vsync", "lwg", "ns"
	What  string // e.g. "view-install", "merge-views", "switch"
	Text  string

	// Group names the group the event concerns: the LWG name, or the
	// HWGID rendering for vsync-level events.
	Group string
	// View is the view identifier the event concerns (installed view,
	// or the view a message was sent/delivered in).
	View ids.ViewID
	// Members is the membership of an installed view.
	Members ids.Members
	// Parents is the ancestor set declared for an installed view (the
	// genealogy edge set; may be the full transitive ancestor set).
	Parents ids.ViewIDs
	// Src is the originator of a delivered or sent message.
	Src ids.ProcessID
	// Data is the (stringified) payload of a sent/delivered message.
	Data string
	// Ref is a free-form correlation reference: the target HWG of a
	// switch, the epoch of a flush round, the peer of a digest
	// exchange. Events of one cross-node operation share it (see
	// Stitch).
	Ref string
	// Step numbers the protocol step within a multi-step operation
	// (MERGE-VIEWS steps 1–4); zero elsewhere.
	Step int
}

// String renders the event as a single log line.
func (e Event) String() string {
	return fmt.Sprintf("%10.4fs %-4v %-5s %-16s %s",
		e.At.Seconds(), e.Node, e.Layer, e.What, e.Text)
}

// Tracer receives protocol events.
type Tracer interface {
	Trace(e Event)
}

// Nop is a Tracer that discards everything.
type Nop struct{}

// Trace implements Tracer.
func (Nop) Trace(Event) {}

var _ Tracer = Nop{}

// Recorder is a Tracer that stores events in memory.
type Recorder struct {
	Events []Event
}

var _ Tracer = (*Recorder)(nil)

// Trace implements Tracer.
func (r *Recorder) Trace(e Event) { r.Events = append(r.Events, e) }

// Filter returns the recorded events matching layer and/or what (empty
// string matches anything).
func (r *Recorder) Filter(layer, what string) []Event {
	var out []Event
	for _, e := range r.Events {
		if (layer == "" || e.Layer == layer) && (what == "" || e.What == what) {
			out = append(out, e)
		}
	}
	return out
}

// Dump renders all recorded events, one per line.
func (r *Recorder) Dump() string {
	var b strings.Builder
	for _, e := range r.Events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// SyncRecorder is a Recorder that is safe for concurrent use. Real-network
// runs (internal/rtnet) trace from one protocol goroutine per node, so a
// shared recorder must serialise appends. Per-node event order is
// preserved (each node traces from a single goroutine); the interleaving
// across nodes is whatever the lock order happened to be, which is all
// the invariant checker relies on.
type SyncRecorder struct {
	mu  sync.Mutex
	rec Recorder
}

var _ Tracer = (*SyncRecorder)(nil)

// Trace implements Tracer.
func (r *SyncRecorder) Trace(e Event) {
	r.mu.Lock()
	r.rec.Trace(e)
	r.mu.Unlock()
}

// Snapshot returns a copy of the events recorded so far.
func (r *SyncRecorder) Snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.rec.Events...)
}

// Func adapts a function to the Tracer interface.
type Func func(Event)

// Trace implements Tracer.
func (f Func) Trace(e Event) { f(e) }

// Package trace provides lightweight structured event tracing for the
// protocol stacks. Traces are used by tests to assert protocol behaviour
// and by the scenario player (cmd/lwgsim) to narrate reconciliation runs.
package trace

import (
	"fmt"
	"strings"
	"sync"

	"plwg/internal/ids"
	"plwg/internal/sim"
)

// Canonical What values for the structured events consumed by the
// invariant checker (internal/check). Other events are free-form.
const (
	// LWGViewInstall marks a light-weight group view installation. The
	// event carries Group, View, Members and Parents.
	LWGViewInstall = "lwg-view"
	// LWGDeliver marks a Data upcall to the LWG user. The event carries
	// Group, View (the view the message was delivered in), Src and Data.
	LWGDeliver = "lwg-deliver"
	// LWGSend marks an actual LWG multicast emission (after any
	// buffering), stamped with the view it was sent in. The event carries
	// Group, View, Src (the sender itself) and Data.
	LWGSend = "lwg-send"
	// HWGViewInstall marks a heavy-weight group view installation. The
	// event carries Group, View and Members.
	HWGViewInstall = "view-install"
)

// Event is one traced protocol event.
//
// At/Node/Layer/What/Text describe the event for humans. The remaining
// fields are optional structured payload filled in by the protocol layers
// for the canonical What values above, so that checkers can verify safety
// properties without parsing log text.
type Event struct {
	At    sim.Time
	Node  ids.ProcessID
	Layer string // "vsync", "lwg", "ns"
	What  string // e.g. "view-install", "merge-views", "switch"
	Text  string

	// Group names the group the event concerns: the LWG name, or the
	// HWGID rendering for vsync-level events.
	Group string
	// View is the view identifier the event concerns (installed view,
	// or the view a message was sent/delivered in).
	View ids.ViewID
	// Members is the membership of an installed view.
	Members ids.Members
	// Parents is the ancestor set declared for an installed view (the
	// genealogy edge set; may be the full transitive ancestor set).
	Parents ids.ViewIDs
	// Src is the originator of a delivered or sent message.
	Src ids.ProcessID
	// Data is the (stringified) payload of a sent/delivered message.
	Data string
}

// String renders the event as a single log line.
func (e Event) String() string {
	return fmt.Sprintf("%10.4fs %-4v %-5s %-16s %s",
		e.At.Seconds(), e.Node, e.Layer, e.What, e.Text)
}

// Tracer receives protocol events.
type Tracer interface {
	Trace(e Event)
}

// Nop is a Tracer that discards everything.
type Nop struct{}

// Trace implements Tracer.
func (Nop) Trace(Event) {}

var _ Tracer = Nop{}

// Recorder is a Tracer that stores events in memory.
type Recorder struct {
	Events []Event
}

var _ Tracer = (*Recorder)(nil)

// Trace implements Tracer.
func (r *Recorder) Trace(e Event) { r.Events = append(r.Events, e) }

// Filter returns the recorded events matching layer and/or what (empty
// string matches anything).
func (r *Recorder) Filter(layer, what string) []Event {
	var out []Event
	for _, e := range r.Events {
		if (layer == "" || e.Layer == layer) && (what == "" || e.What == what) {
			out = append(out, e)
		}
	}
	return out
}

// Dump renders all recorded events, one per line.
func (r *Recorder) Dump() string {
	var b strings.Builder
	for _, e := range r.Events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// SyncRecorder is a Recorder that is safe for concurrent use. Real-network
// runs (internal/rtnet) trace from one protocol goroutine per node, so a
// shared recorder must serialise appends. Per-node event order is
// preserved (each node traces from a single goroutine); the interleaving
// across nodes is whatever the lock order happened to be, which is all
// the invariant checker relies on.
type SyncRecorder struct {
	mu  sync.Mutex
	rec Recorder
}

var _ Tracer = (*SyncRecorder)(nil)

// Trace implements Tracer.
func (r *SyncRecorder) Trace(e Event) {
	r.mu.Lock()
	r.rec.Trace(e)
	r.mu.Unlock()
}

// Snapshot returns a copy of the events recorded so far.
func (r *SyncRecorder) Snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.rec.Events...)
}

// Func adapts a function to the Tracer interface.
type Func func(Event)

// Trace implements Tracer.
func (f Func) Trace(e Event) { f(e) }

// Package trace provides lightweight structured event tracing for the
// protocol stacks. Traces are used by tests to assert protocol behaviour
// and by the scenario player (cmd/lwgsim) to narrate reconciliation runs.
package trace

import (
	"fmt"
	"strings"

	"plwg/internal/ids"
	"plwg/internal/sim"
)

// Event is one traced protocol event.
type Event struct {
	At    sim.Time
	Node  ids.ProcessID
	Layer string // "vsync", "lwg", "ns"
	What  string // e.g. "view-install", "merge-views", "switch"
	Text  string
}

// String renders the event as a single log line.
func (e Event) String() string {
	return fmt.Sprintf("%10.4fs %-4v %-5s %-16s %s",
		e.At.Seconds(), e.Node, e.Layer, e.What, e.Text)
}

// Tracer receives protocol events.
type Tracer interface {
	Trace(e Event)
}

// Nop is a Tracer that discards everything.
type Nop struct{}

// Trace implements Tracer.
func (Nop) Trace(Event) {}

var _ Tracer = Nop{}

// Recorder is a Tracer that stores events in memory.
type Recorder struct {
	Events []Event
}

var _ Tracer = (*Recorder)(nil)

// Trace implements Tracer.
func (r *Recorder) Trace(e Event) { r.Events = append(r.Events, e) }

// Filter returns the recorded events matching layer and/or what (empty
// string matches anything).
func (r *Recorder) Filter(layer, what string) []Event {
	var out []Event
	for _, e := range r.Events {
		if (layer == "" || e.Layer == layer) && (what == "" || e.What == what) {
			out = append(out, e)
		}
	}
	return out
}

// Dump renders all recorded events, one per line.
func (r *Recorder) Dump() string {
	var b strings.Builder
	for _, e := range r.Events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Func adapts a function to the Tracer interface.
type Func func(Event)

// Trace implements Tracer.
func (f Func) Trace(e Event) { f(e) }

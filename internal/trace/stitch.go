package trace

import (
	"fmt"
	"sort"

	"plwg/internal/ids"
	"plwg/internal/sim"
)

// OpKey is the cross-node correlation key of one protocol operation.
// Events traced by different nodes while executing the same logical
// operation share a key:
//
//   - "lwg-view": installations of one LWG view, keyed by (Group, View)
//     — view identifiers are globally unique (Section 5.1), so every
//     member's install of the view stitches together.
//   - "switch": a switching operation, keyed by (Group, Ref=target
//     HWG): the coordinator's announcement plus every member's re-bind.
//   - "merge-views": one MERGE-VIEWS execution, keyed by (Group=HWG,
//     View=the HWG view the steps run in).
//   - "flush": one vsync flush round, keyed by (Group=HWG, Ref=epoch).
type OpKey struct {
	Kind  string
	Group string
	View  ids.ViewID
	Ref   string
}

// String renders the key compactly ("switch g→hwg3", "merge-views
// hwg5@p0/7", ...).
func (k OpKey) String() string {
	switch k.Kind {
	case "switch":
		return fmt.Sprintf("switch %s→%s", k.Group, k.Ref)
	case "flush":
		return fmt.Sprintf("flush %s %s", k.Group, k.Ref)
	case "merge-views":
		return fmt.Sprintf("merge-views %s@%v", k.Group, k.View)
	default:
		return fmt.Sprintf("%s %s %v", k.Kind, k.Group, k.View)
	}
}

// Op is one stitched operation: the events of all participating nodes,
// in (time, node) order.
type Op struct {
	Key    OpKey
	Events []Event
	// Nodes are the distinct participants, sorted.
	Nodes ids.Members
	// Start and End bound the operation across all nodes.
	Start, End sim.Time
}

// opKeyOf classifies an event into the operation it belongs to; ok is
// false for events that are not part of a stitchable operation.
func opKeyOf(e Event) (OpKey, bool) {
	switch e.What {
	case LWGViewInstall:
		return OpKey{Kind: "lwg-view", Group: e.Group, View: e.View}, true
	case LWGSwitch, LWGRebind:
		if e.Ref == "" {
			return OpKey{}, false
		}
		return OpKey{Kind: "switch", Group: e.Group, Ref: e.Ref}, true
	case LWGMergeStep:
		if e.View.IsZero() {
			return OpKey{}, false
		}
		return OpKey{Kind: "merge-views", Group: e.Group, View: e.View}, true
	case HWGFlushStart, HWGFlushDone, "stopped", "stop-ok":
		if e.Ref == "" {
			return OpKey{}, false
		}
		return OpKey{Kind: "flush", Group: e.Group, Ref: e.Ref}, true
	default:
		return OpKey{}, false
	}
}

// Stitch groups the events of a (possibly multi-node) trace into
// cross-node operations and returns them ordered by start time. Events
// that belong to no operation are ignored. This is how a single LWG
// switch or MERGE-VIEWS round is reconstructed across every node that
// took part in it, from nothing but the exported spans.
func Stitch(events []Event) []Op {
	byKey := make(map[OpKey]*Op)
	var order []OpKey
	for _, e := range events {
		key, ok := opKeyOf(e)
		if !ok {
			continue
		}
		op := byKey[key]
		if op == nil {
			op = &Op{Key: key, Start: e.At, End: e.At}
			byKey[key] = op
			order = append(order, key)
		}
		op.Events = append(op.Events, e)
		if e.At < op.Start {
			op.Start = e.At
		}
		if e.At > op.End {
			op.End = e.At
		}
	}
	out := make([]Op, 0, len(order))
	for _, key := range order {
		op := byKey[key]
		sort.SliceStable(op.Events, func(i, j int) bool {
			a, b := op.Events[i], op.Events[j]
			if a.At != b.At {
				return a.At < b.At
			}
			return a.Node < b.Node
		})
		var nodes []ids.ProcessID
		for _, e := range op.Events {
			nodes = append(nodes, e.Node)
		}
		op.Nodes = ids.NewMembers(nodes...)
		out = append(out, *op)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Key.String() < out[j].Key.String()
	})
	return out
}

// Explain renders a stitched operation as a human-readable multi-line
// timeline (one line per event), for the lwgcheck -trace explain mode.
func Explain(op Op) string {
	s := fmt.Sprintf("%s  nodes=%v  %0.4fs..%0.4fs\n",
		op.Key, op.Nodes, op.Start.Seconds(), op.End.Seconds())
	for _, e := range op.Events {
		detail := e.Text
		if e.Step != 0 {
			detail = fmt.Sprintf("step %d: %s", e.Step, detail)
		}
		s += fmt.Sprintf("  %10.4fs %-4v %-5s %-12s %s\n",
			e.At.Seconds(), e.Node, e.Layer, e.What, detail)
	}
	return s
}

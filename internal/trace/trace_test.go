package trace

import (
	"strings"
	"testing"
	"time"

	"plwg/internal/ids"
	"plwg/internal/sim"
)

func ev(layer, what, text string) Event {
	return Event{
		At:    sim.Time(1500 * time.Millisecond),
		Node:  ids.ProcessID(3),
		Layer: layer,
		What:  what,
		Text:  text,
	}
}

func TestEventString(t *testing.T) {
	s := ev("lwg", "switch", "a: hwg1 -> hwg2").String()
	for _, want := range []string{"1.5000s", "p3", "lwg", "switch", "hwg1 -> hwg2"} {
		if !strings.Contains(s, want) {
			t.Errorf("event string %q missing %q", s, want)
		}
	}
}

func TestRecorderFilter(t *testing.T) {
	r := &Recorder{}
	r.Trace(ev("lwg", "switch", "x"))
	r.Trace(ev("lwg", "join", "y"))
	r.Trace(ev("ns", "switch", "z"))

	if got := r.Filter("lwg", ""); len(got) != 2 {
		t.Errorf("Filter(lwg) = %d events", len(got))
	}
	if got := r.Filter("", "switch"); len(got) != 2 {
		t.Errorf("Filter(switch) = %d events", len(got))
	}
	if got := r.Filter("lwg", "switch"); len(got) != 1 {
		t.Errorf("Filter(lwg,switch) = %d events", len(got))
	}
	if got := r.Filter("", ""); len(got) != 3 {
		t.Errorf("Filter(all) = %d events", len(got))
	}
}

func TestRecorderDump(t *testing.T) {
	r := &Recorder{}
	r.Trace(ev("lwg", "a", "one"))
	r.Trace(ev("ns", "b", "two"))
	d := r.Dump()
	if strings.Count(d, "\n") != 2 {
		t.Errorf("Dump should have one line per event:\n%s", d)
	}
}

func TestNopAndFunc(t *testing.T) {
	Nop{}.Trace(ev("x", "y", "z")) // must not panic

	var got []Event
	f := Func(func(e Event) { got = append(got, e) })
	f.Trace(ev("lwg", "w", "t"))
	if len(got) != 1 || got[0].What != "w" {
		t.Errorf("Func tracer got %v", got)
	}
}

package trace

import "sync"

// Snapshotter is implemented by tracers that can report the events
// recorded so far (SyncRecorder, Ring). The debug endpoints use it to
// expose live trace snapshots without knowing the tracer's shape.
type Snapshotter interface {
	Snapshot() []Event
}

var (
	_ Snapshotter = (*SyncRecorder)(nil)
	_ Snapshotter = (*Ring)(nil)
)

// Ring is a bounded, concurrency-safe tracer for production paths: it
// keeps the most recent capacity events and silently drops the oldest
// when full, so a long-running node can leave tracing enabled with a
// fixed memory ceiling and no backpressure onto the protocol
// goroutines. Trace is O(1) — one short critical section and one slot
// assignment, never an allocation or a growing append.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	total uint64 // events ever traced; total - len(buf) were dropped
}

var _ Tracer = (*Ring)(nil)

// DefaultRingCapacity is the event capacity used when NewRing is given
// a non-positive one.
const DefaultRingCapacity = 65536

// NewRing creates a ring tracer holding at most capacity events.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Trace implements Tracer: record e, overwriting the oldest retained
// event when the ring is full.
func (r *Ring) Trace(e Event) {
	r.mu.Lock()
	r.buf[r.total%uint64(len(r.buf))] = e
	r.total++
	r.mu.Unlock()
}

// Snapshot returns a copy of the retained events, oldest first.
func (r *Ring) Snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.total
	cap64 := uint64(len(r.buf))
	if n > cap64 {
		n = cap64
	}
	out := make([]Event, 0, n)
	start := r.total - n
	for i := uint64(0); i < n; i++ {
		out = append(out, r.buf[(start+i)%cap64])
	}
	return out
}

// Total returns how many events were ever traced.
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped returns how many events were overwritten before being
// snapshotted.
func (r *Ring) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.total <= uint64(len(r.buf)) {
		return 0
	}
	return r.total - uint64(len(r.buf))
}

package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"plwg/internal/ids"
	"plwg/internal/sim"
)

// jsonViewID is the wire form of a view identifier.
type jsonViewID struct {
	Coord int32  `json:"coord"`
	Seq   uint64 `json:"seq"`
}

func toJSONViewID(v ids.ViewID) *jsonViewID {
	if v.IsZero() {
		return nil
	}
	return &jsonViewID{Coord: int32(v.Coord), Seq: v.Seq}
}

func fromJSONViewID(v *jsonViewID) ids.ViewID {
	if v == nil {
		return ids.ZeroView
	}
	return ids.ViewID{Coord: ids.ProcessID(v.Coord), Seq: v.Seq}
}

// jsonEvent is the JSONL wire form of one Event. Optional fields are
// omitted when zero, so the common events stay one short line each.
type jsonEvent struct {
	AtNs    int64        `json:"at_ns"`
	Node    int32        `json:"node"`
	Layer   string       `json:"layer"`
	What    string       `json:"what"`
	Text    string       `json:"text,omitempty"`
	Group   string       `json:"group,omitempty"`
	View    *jsonViewID  `json:"view,omitempty"`
	Members []int32      `json:"members,omitempty"`
	Parents []jsonViewID `json:"parents,omitempty"`
	Src     int32        `json:"src,omitempty"`
	Data    string       `json:"data,omitempty"`
	Ref     string       `json:"ref,omitempty"`
	Step    int          `json:"step,omitempty"`
}

func toJSONEvent(e Event) jsonEvent {
	je := jsonEvent{
		AtNs:  int64(e.At),
		Node:  int32(e.Node),
		Layer: e.Layer,
		What:  e.What,
		Text:  e.Text,
		Group: e.Group,
		View:  toJSONViewID(e.View),
		Src:   int32(e.Src),
		Data:  e.Data,
		Ref:   e.Ref,
		Step:  e.Step,
	}
	for _, m := range e.Members {
		je.Members = append(je.Members, int32(m))
	}
	for _, p := range e.Parents {
		je.Parents = append(je.Parents, jsonViewID{Coord: int32(p.Coord), Seq: p.Seq})
	}
	return je
}

func fromJSONEvent(je jsonEvent) Event {
	e := Event{
		At:    sim.Time(je.AtNs),
		Node:  ids.ProcessID(je.Node),
		Layer: je.Layer,
		What:  je.What,
		Text:  je.Text,
		Group: je.Group,
		View:  fromJSONViewID(je.View),
		Src:   ids.ProcessID(je.Src),
		Data:  je.Data,
		Ref:   je.Ref,
		Step:  je.Step,
	}
	for _, m := range je.Members {
		e.Members = append(e.Members, ids.ProcessID(m))
	}
	for _, p := range je.Parents {
		e.Parents = append(e.Parents, ids.ViewID{Coord: ids.ProcessID(p.Coord), Seq: p.Seq})
	}
	return e
}

// WriteJSONL writes the events as JSON Lines: one self-contained JSON
// object per event, in input order. The format round-trips through
// ParseJSONL, which is what the trace explain tooling and the
// span-stitching tests consume.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetEscapeHTML(false)
	for _, e := range events {
		if err := enc.Encode(toJSONEvent(e)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseJSONL parses a JSON Lines export back into events. Blank lines
// are skipped; a malformed line fails with its 1-based line number.
func ParseJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var je jsonEvent
		if err := json.Unmarshal([]byte(text), &je); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, fromJSONEvent(je))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// chromeEvent is one entry of the Chrome trace-event format
// (chrome://tracing, Perfetto). Virtual-time nanoseconds map onto the
// format's microsecond timestamps; nodes map onto pids so the viewer
// lays the cluster out as one track per node, with the protocol layers
// as threads.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TsUs  float64        `json:"ts"`
	DurUs float64        `json:"dur,omitempty"` // "X" phase only
	PID   int32          `json:"pid"`
	TID   string         `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the events in the Chrome trace-event JSON
// format, loadable in chrome://tracing or Perfetto: every protocol
// event becomes an instant event on its node's track, and every
// stitched multi-event operation (see Stitch) additionally becomes a
// duration span on a per-node "ops" thread, so a switch or a
// MERGE-VIEWS round is visible as one bar per participating node.
func WriteChromeTrace(w io.Writer, events []Event) error {
	doc := chromeDoc{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	for _, e := range events {
		ce := chromeEvent{
			Name:  e.What,
			Phase: "i",
			TsUs:  float64(e.At) / 1e3,
			PID:   int32(e.Node),
			TID:   e.Layer,
			Scope: "p",
			Args:  chromeArgs(e),
		}
		doc.TraceEvents = append(doc.TraceEvents, ce)
	}
	for _, op := range Stitch(events) {
		if len(op.Events) < 2 || op.End <= op.Start {
			continue
		}
		// One spanning bar per participating node, bounded by the
		// node's own first and last event of the operation.
		starts := make(map[ids.ProcessID]sim.Time)
		ends := make(map[ids.ProcessID]sim.Time)
		for _, e := range op.Events {
			if s, ok := starts[e.Node]; !ok || e.At < s {
				starts[e.Node] = e.At
			}
			if s, ok := ends[e.Node]; !ok || e.At > s {
				ends[e.Node] = e.At
			}
		}
		for _, n := range op.Nodes {
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name:  op.Key.String(),
				Phase: "X",
				TsUs:  float64(starts[n]) / 1e3,
				DurUs: float64(ends[n]-starts[n]) / 1e3,
				PID:   int32(n),
				TID:   "ops",
				Args: map[string]any{
					"kind":     op.Key.Kind,
					"group":    op.Key.Group,
					"nodes":    len(op.Nodes),
					"events":   len(op.Events),
					"span_all": fmt.Sprintf("%v..%v", op.Start.Seconds(), op.End.Seconds()),
				},
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// chromeArgs renders an event's structured payload for the viewer's
// detail pane.
func chromeArgs(e Event) map[string]any {
	args := make(map[string]any, 8)
	if e.Text != "" {
		args["text"] = e.Text
	}
	if e.Group != "" {
		args["group"] = e.Group
	}
	if !e.View.IsZero() {
		args["view"] = e.View.String()
	}
	if len(e.Members) > 0 {
		args["members"] = e.Members.String()
	}
	if len(e.Parents) > 0 {
		args["parents"] = e.Parents.String()
	}
	if e.Src != 0 || e.What == LWGDeliver || e.What == LWGSend {
		args["src"] = e.Src.String()
	}
	if e.Data != "" {
		args["data"] = e.Data
	}
	if e.Ref != "" {
		args["ref"] = e.Ref
	}
	if e.Step != 0 {
		args["step"] = e.Step
	}
	if len(args) == 0 {
		return nil
	}
	return args
}

package sim

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestEventOrderProperty schedules random batches of events and checks
// the fundamental engine invariant: execution times are monotone
// non-decreasing, and events at equal instants run in scheduling order.
func TestEventOrderProperty(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		s := New(int64(trial))
		type fired struct {
			at  Time
			seq int
		}
		var log []fired
		total := 50 + r.Intn(100)
		for i := 0; i < total; i++ {
			i := i
			d := time.Duration(r.Intn(20)) * time.Millisecond // deliberate ties
			s.After(d, func() { log = append(log, fired{at: s.Now(), seq: i}) })
		}
		s.Run()
		if len(log) != total {
			t.Fatalf("trial %d: %d fired, want %d", trial, len(log), total)
		}
		if !sort.SliceIsSorted(log, func(i, j int) bool {
			if log[i].at != log[j].at {
				return log[i].at < log[j].at
			}
			return log[i].seq < log[j].seq
		}) {
			t.Fatalf("trial %d: events out of order: %v", trial, log)
		}
	}
}

// TestNestedTimersProperty schedules timers from within timers at random
// depths and checks the clock never regresses.
func TestNestedTimersProperty(t *testing.T) {
	s := New(4)
	last := Time(0)
	var fired int
	var spawn func(depth int)
	spawn = func(depth int) {
		if depth > 4 {
			return
		}
		for i := 0; i < 3; i++ {
			d := time.Duration(s.Rand().Intn(10)+1) * time.Millisecond
			s.After(d, func() {
				fired++
				if s.Now() < last {
					t.Fatalf("clock regressed: %v < %v", s.Now(), last)
				}
				last = s.Now()
				spawn(depth + 1)
			})
		}
	}
	spawn(0)
	s.Run()
	if fired == 0 {
		t.Fatal("nothing fired")
	}
}

// TestStopDuringRunProperty randomly cancels timers while others fire.
func TestStopDuringRunProperty(t *testing.T) {
	s := New(11)
	var timers []*Timer
	firedStopped := false
	stopped := make(map[int]bool)
	for i := 0; i < 100; i++ {
		i := i
		d := time.Duration(s.Rand().Intn(50)+10) * time.Millisecond
		timers = append(timers, s.After(d, func() {
			if stopped[i] {
				firedStopped = true
			}
		}))
	}
	// Cancel half of them from an early event.
	s.After(time.Millisecond, func() {
		for i := 0; i < 100; i += 2 {
			if timers[i].Stop() {
				stopped[i] = true
			}
		}
	})
	s.Run()
	if firedStopped {
		t.Fatal("a stopped timer fired")
	}
}

package sim

import (
	"testing"
	"time"
)

func TestAfterOrdering(t *testing.T) {
	s := New(1)
	var order []int
	s.After(30*time.Millisecond, func() { order = append(order, 3) })
	s.After(10*time.Millisecond, func() { order = append(order, 1) })
	s.After(20*time.Millisecond, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", order)
	}
	if s.Now() != Time(30*time.Millisecond) {
		t.Errorf("Now = %v, want 30ms", s.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(time.Millisecond, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("events at the same instant must fire FIFO; got %v", order)
		}
	}
}

func TestNegativeDelayClampedToNow(t *testing.T) {
	s := New(1)
	fired := false
	s.After(-time.Second, func() { fired = true })
	s.Run()
	if !fired {
		t.Error("negative-delay event must still fire")
	}
	if s.Now() != 0 {
		t.Errorf("clock must not go backwards; Now = %v", s.Now())
	}
}

func TestTimerStop(t *testing.T) {
	s := New(1)
	fired := false
	tm := s.After(time.Millisecond, func() { fired = true })
	if !tm.Stop() {
		t.Error("Stop on pending timer must return true")
	}
	if tm.Stop() {
		t.Error("second Stop must return false")
	}
	s.Run()
	if fired {
		t.Error("stopped timer must not fire")
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s := New(1)
	var fired []Time
	s.After(5*time.Millisecond, func() { fired = append(fired, s.Now()) })
	s.After(50*time.Millisecond, func() { fired = append(fired, s.Now()) })
	s.RunUntil(Time(10 * time.Millisecond))
	if len(fired) != 1 {
		t.Fatalf("expected exactly the 5ms event, got %d events", len(fired))
	}
	if s.Now() != Time(10*time.Millisecond) {
		t.Errorf("Now = %v, want 10ms", s.Now())
	}
	s.RunFor(40 * time.Millisecond)
	if len(fired) != 2 {
		t.Fatalf("expected the 50ms event after RunFor, got %d events", len(fired))
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New(1)
	var times []Time
	s.After(time.Millisecond, func() {
		times = append(times, s.Now())
		s.After(time.Millisecond, func() {
			times = append(times, s.Now())
		})
	})
	s.Run()
	if len(times) != 2 {
		t.Fatalf("got %d events, want 2", len(times))
	}
	if times[1] != Time(2*time.Millisecond) {
		t.Errorf("nested event fired at %v, want 2ms", times[1])
	}
}

func TestTicker(t *testing.T) {
	s := New(1)
	count := 0
	tk := s.Every(10*time.Millisecond, func() { count++ })
	s.RunFor(55 * time.Millisecond)
	if count != 5 {
		t.Errorf("ticks = %d, want 5", count)
	}
	tk.Stop()
	s.RunFor(100 * time.Millisecond)
	if count != 5 {
		t.Errorf("ticker fired after Stop; ticks = %d", count)
	}
}

func TestTickerStopFromWithinCallback(t *testing.T) {
	s := New(1)
	count := 0
	var tk *Ticker
	tk = s.Every(time.Millisecond, func() {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	s.RunFor(20 * time.Millisecond)
	if count != 3 {
		t.Errorf("ticks = %d, want 3", count)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []int64 {
		s := New(99)
		var out []int64
		// Schedule events with random delays drawn from the seeded rng.
		for i := 0; i < 100; i++ {
			d := time.Duration(s.Rand().Intn(1000)) * time.Microsecond
			s.After(d, func() { out = append(out, int64(s.Now())) })
		}
		s.Run()
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different event counts across identical runs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at event %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestTimeHelpers(t *testing.T) {
	tt := Time(1500 * time.Millisecond)
	if tt.Seconds() != 1.5 {
		t.Errorf("Seconds = %v", tt.Seconds())
	}
	if tt.Add(500*time.Millisecond) != Time(2*time.Second) {
		t.Errorf("Add wrong")
	}
	if tt.Sub(Time(time.Second)) != 500*time.Millisecond {
		t.Errorf("Sub wrong")
	}
}

func TestRunWhile(t *testing.T) {
	s := New(1)
	count := 0
	s.Every(time.Millisecond, func() { count++ })
	s.RunWhile(func() bool { return count < 7 })
	if count != 7 {
		t.Errorf("count = %d, want 7", count)
	}
}

func TestStepsAndPending(t *testing.T) {
	s := New(1)
	s.After(time.Millisecond, func() {})
	s.After(time.Millisecond, func() {})
	if s.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", s.Pending())
	}
	s.Run()
	if s.Steps() != 2 {
		t.Errorf("Steps = %d, want 2", s.Steps())
	}
	if s.Pending() != 0 {
		t.Errorf("Pending after Run = %d, want 0", s.Pending())
	}
}

// Package sim provides the deterministic discrete-event engine underneath
// the simulated network. All protocol code in this repository runs inside a
// single-threaded event loop with a virtual clock, which makes every test
// and benchmark bit-reproducible and lets experiments measure latency,
// throughput and recovery time in exact virtual time.
//
// The engine is deliberately minimal: a priority queue of timestamped
// events, a seeded random source, and timers. Events scheduled for the same
// instant fire in scheduling order (FIFO), which keeps runs deterministic.
package sim

import (
	"container/heap"
	"math/rand"
	"time"
)

// Time is an instant of virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Add returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration from o to t.
func (t Time) Sub(o Time) time.Duration { return time.Duration(t - o) }

// Duration converts the instant to a duration since the simulation start.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds returns the instant as floating-point seconds since start.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

type event struct {
	at  Time
	seq uint64 // FIFO tie-break for events at the same instant
	fn  func()
	// canceled is set by Timer.Stop; the event is skipped when popped.
	canceled bool
	index    int // heap index
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Sim is a discrete-event simulation: a virtual clock and an event queue.
// Sim is not safe for concurrent use; all callbacks run on the caller's
// goroutine inside Run/RunFor/RunUntil.
type Sim struct {
	now   Time
	queue eventQueue
	seq   uint64
	seed  int64
	rng   *rand.Rand
	// steps counts executed events, as a runaway guard and a statistic.
	steps uint64
}

// New returns a simulation whose random source is seeded with seed.
func New(seed int64) *Sim {
	return &Sim{seed: seed}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Rand returns the simulation's deterministic random source. The source
// is built lazily on first use: seeding math/rand's lagged-Fibonacci
// state costs more than a short simulation that never draws from it (the
// bounded enumerator builds millions of single-use worlds, most of which
// never need randomness).
func (s *Sim) Rand() *rand.Rand {
	if s.rng == nil {
		s.rng = rand.New(rand.NewSource(s.seed))
	}
	return s.rng
}

// Steps returns the number of events executed so far.
func (s *Sim) Steps() uint64 { return s.steps }

// Pending returns the number of events waiting in the queue.
func (s *Sim) Pending() int { return len(s.queue) }

// Timer is a handle to a scheduled event that can be stopped.
type Timer struct {
	e *event
}

// Stop cancels the timer if it has not fired yet. It reports whether the
// timer was still pending.
func (t *Timer) Stop() bool {
	if t == nil || t.e == nil || t.e.canceled {
		return false
	}
	t.e.canceled = true
	return true
}

// After schedules fn to run d after the current virtual time and returns a
// stoppable handle. A negative d is treated as zero.
func (s *Sim) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.at(s.now.Add(d), fn)
}

// At schedules fn at the absolute virtual instant t (or now, if t is in the
// past) and returns a stoppable handle.
func (s *Sim) At(t Time, fn func()) *Timer {
	if t < s.now {
		t = s.now
	}
	return s.at(t, fn)
}

func (s *Sim) at(t Time, fn func()) *Timer {
	e := &event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, e)
	return &Timer{e: e}
}

// Every schedules fn to run every period, first after one period. The
// returned Ticker keeps rescheduling itself until stopped.
func (s *Sim) Every(period time.Duration, fn func()) *Ticker {
	if period <= 0 {
		period = 1
	}
	t := &Ticker{sim: s, period: period, fn: fn}
	t.schedule()
	return t
}

// Ticker is a repeating timer.
type Ticker struct {
	sim     *Sim
	period  time.Duration
	fn      func()
	timer   *Timer
	stopped bool
}

func (t *Ticker) schedule() {
	t.timer = t.sim.After(t.period, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.schedule()
		}
	})
}

// Stop cancels the ticker.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.timer != nil {
		t.timer.Stop()
	}
}

// step executes the next event, if any, and reports whether one ran.
func (s *Sim) step() bool {
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*event)
		if e.canceled {
			continue
		}
		s.now = e.at
		s.steps++
		e.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty. Protocol stacks with
// periodic timers never drain the queue, so most callers want RunFor or
// RunUntil instead.
func (s *Sim) Run() {
	for s.step() {
	}
}

// RunUntil executes events with timestamps at or before t, then advances
// the clock to t.
func (s *Sim) RunUntil(t Time) {
	for len(s.queue) > 0 {
		next := s.peek()
		if next == nil {
			break
		}
		if next.at > t {
			break
		}
		s.step()
	}
	if s.now < t {
		s.now = t
	}
}

// RunFor advances the simulation by d of virtual time.
func (s *Sim) RunFor(d time.Duration) {
	s.RunUntil(s.now.Add(d))
}

// RunForCapped advances the simulation by d of virtual time, but executes
// at most maxSteps events. It reports whether the full interval completed
// within the budget. Schedule explorers use it as a livelock guard: a
// protocol bug that floods the event queue would otherwise hang a sweep
// instead of failing it.
func (s *Sim) RunForCapped(d time.Duration, maxSteps uint64) bool {
	deadline := s.now.Add(d)
	budget := s.steps + maxSteps
	for len(s.queue) > 0 && s.steps < budget {
		next := s.peek()
		if next == nil || next.at > deadline {
			break
		}
		s.step()
	}
	if next := s.peek(); next != nil && next.at <= deadline {
		return false // budget exhausted with work still due
	}
	if s.now < deadline {
		s.now = deadline
	}
	return true
}

// RunWhile executes events while cond returns true and the queue is
// non-empty. It is useful for "run until the system converges" loops with a
// safety horizon.
func (s *Sim) RunWhile(cond func() bool) {
	for cond() && s.step() {
	}
}

// NextAt returns the timestamp of the earliest pending event, if any.
// Real-time drivers use it to sleep exactly until the next deadline.
func (s *Sim) NextAt() (Time, bool) {
	e := s.peek()
	if e == nil {
		return 0, false
	}
	return e.at, true
}

func (s *Sim) peek() *event {
	for len(s.queue) > 0 {
		if s.queue[0].canceled {
			heap.Pop(&s.queue)
			continue
		}
		return s.queue[0]
	}
	return nil
}

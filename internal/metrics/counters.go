package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// Counters is a set of named monotonic int64 counters. The zero value is
// ready to use. It is not safe for concurrent use; callers on the
// simulated event loop need no locking.
type Counters struct {
	m map[string]int64
}

// Add increments the named counter by delta (which may be negative).
func (c *Counters) Add(name string, delta int64) {
	if c.m == nil {
		c.m = make(map[string]int64)
	}
	c.m[name] += delta
}

// Get returns the named counter's value (zero when never incremented).
func (c *Counters) Get(name string) int64 { return c.m[name] }

// Names returns the counter names in sorted order.
func (c *Counters) Names() []string {
	out := make([]string, 0, len(c.m))
	for name := range c.m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Snapshot returns a copy of the counter values.
func (c *Counters) Snapshot() map[string]int64 {
	out := make(map[string]int64, len(c.m))
	for name, v := range c.m {
		out[name] = v
	}
	return out
}

// Reset zeroes all counters.
func (c *Counters) Reset() { c.m = nil }

// String renders "name=value" pairs in sorted order.
func (c *Counters) String() string {
	parts := make([]string, 0, len(c.m))
	for _, name := range c.Names() {
		parts = append(parts, fmt.Sprintf("%s=%d", name, c.m[name]))
	}
	return strings.Join(parts, " ")
}

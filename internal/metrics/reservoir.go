package metrics

import (
	"math/rand"
	"time"
)

// Reservoir is a bounded-memory histogram: it keeps a uniform random
// sample of at most cap samples (Vitter's algorithm R) together with
// exact count, mean, min and max over ALL samples. Percentiles are
// answered from the reservoir, so they are estimates once the sample
// count exceeds the capacity. Use it where an experiment can record an
// unbounded number of samples and the exact-percentile Histogram would
// grow without limit.
//
// The replacement decisions come from a seeded deterministic source, so
// a simulation run reports identical numbers on every execution.
type Reservoir struct {
	h     Histogram
	cap   int
	rng   *rand.Rand
	count int64
	sum   float64
	min   time.Duration
	max   time.Duration
}

// NewReservoir builds a reservoir keeping at most capacity samples.
func NewReservoir(capacity int, seed int64) *Reservoir {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Reservoir{cap: capacity, rng: rand.New(rand.NewSource(seed))}
}

// Add records one sample.
func (r *Reservoir) Add(d time.Duration) {
	r.count++
	r.sum += float64(d)
	if r.count == 1 || d < r.min {
		r.min = d
	}
	if d > r.max {
		r.max = d
	}
	if len(r.h.samples) < r.cap {
		r.h.Add(d)
		return
	}
	if j := r.rng.Int63n(r.count); j < int64(r.cap) {
		r.h.samples[j] = d
		r.h.sorted = false
	}
}

// Count returns the number of samples recorded (not retained).
func (r *Reservoir) Count() int64 { return r.count }

// Mean returns the exact mean over all samples.
func (r *Reservoir) Mean() time.Duration {
	if r.count == 0 {
		return 0
	}
	return time.Duration(r.sum / float64(r.count))
}

// Min returns the exact minimum over all samples.
func (r *Reservoir) Min() time.Duration { return r.min }

// Max returns the exact maximum over all samples.
func (r *Reservoir) Max() time.Duration { return r.max }

// Percentile estimates the p-th percentile from the retained sample.
// The edge-case contract matches Histogram.Percentile: 0 with no
// samples or a NaN p, the single sample for any valid p when only one
// was recorded, and clamping of out-of-range p to (0, 100].
func (r *Reservoir) Percentile(p float64) time.Duration {
	return r.h.Percentile(p)
}

package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Error("empty histogram must report zeros")
	}
	if h.Percentile(50) != 0 || h.Stddev() != 0 {
		t.Error("empty histogram percentile/stddev must be zero")
	}
}

func TestHistogramBasicStats(t *testing.T) {
	var h Histogram
	for _, d := range []time.Duration{1, 2, 3, 4, 5} {
		h.Add(d * time.Millisecond)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Mean() != 3*time.Millisecond {
		t.Errorf("Mean = %v", h.Mean())
	}
	if h.Min() != time.Millisecond || h.Max() != 5*time.Millisecond {
		t.Errorf("Min/Max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Add(time.Duration(i) * time.Millisecond)
	}
	tests := []struct {
		p    float64
		want time.Duration
	}{
		{50, 50 * time.Millisecond},
		{90, 90 * time.Millisecond},
		{99, 99 * time.Millisecond},
		{100, 100 * time.Millisecond},
		{1, 1 * time.Millisecond},
	}
	for _, tt := range tests {
		if got := h.Percentile(tt.p); got != tt.want {
			t.Errorf("P%v = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestHistogramAddAfterQuery(t *testing.T) {
	// Adding after a sorted query must re-sort.
	var h Histogram
	h.Add(5 * time.Millisecond)
	_ = h.Max()
	h.Add(time.Millisecond)
	if h.Min() != time.Millisecond {
		t.Errorf("Min after late Add = %v", h.Min())
	}
}

func TestHistogramStddev(t *testing.T) {
	var h Histogram
	for _, d := range []time.Duration{2, 4, 4, 4, 5, 5, 7, 9} {
		h.Add(d)
	}
	if got := h.Stddev(); got != 2 { // classic example: σ = 2
		t.Errorf("Stddev = %v, want 2", got)
	}
}

func TestHistogramSummary(t *testing.T) {
	var h Histogram
	h.Add(time.Millisecond)
	s := h.Summary()
	for _, want := range []string{"n=1", "mean=", "p50=", "p99=", "max="} {
		if !strings.Contains(s, want) {
			t.Errorf("Summary %q missing %q", s, want)
		}
	}
}

func TestRate(t *testing.T) {
	if got := Rate(100, time.Second); got != 100 {
		t.Errorf("Rate = %v", got)
	}
	if got := Rate(50, 500*time.Millisecond); got != 100 {
		t.Errorf("Rate = %v", got)
	}
	if got := Rate(10, 0); got != 0 {
		t.Errorf("Rate over zero interval = %v, want 0", got)
	}
}

package metrics

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a concurrency-safe collection of named metric instruments
// (counters, gauges, reservoir-backed histograms), each optionally
// qualified by labels (per-LWG, per-HWG, per-peer, ...). It replaces the
// ad-hoc per-subsystem counter maps: every protocol layer resolves its
// instruments once at construction time and then updates them on the hot
// path with a single atomic operation.
//
// A nil *Registry is a valid, fully disabled registry: every
// resolution method returns a nil instrument, and every instrument
// method is a nil-receiver no-op that performs zero allocations. The
// hot paths therefore carry no conditionals beyond the nil check
// inlined into the instrument methods.
//
// Counters and gauges are atomics, so instruments may be updated from
// any goroutine (the rtnet transport updates them from its socket
// goroutines) and read concurrently by the HTTP /metrics handler.
// Histograms serialize observations with a mutex.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// Kind is the instrument type of a metric family.
type Kind int

// The instrument kinds.
const (
	KindCounter Kind = iota + 1
	KindGauge
	KindHistogram
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "unknown"
	}
}

// Label is one name=value metric dimension.
type Label struct{ Key, Value string }

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// family is all instruments sharing one metric name.
type family struct {
	name string
	kind Kind
	// entries maps the canonical label encoding to the instrument.
	entries map[string]*entry
}

// entry is one labeled instrument of a family.
type entry struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histo
}

// HistogramCapacity is the reservoir size of registry histograms.
const HistogramCapacity = 2048

// NewRegistry creates an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelKey returns the canonical encoding of a label set (sorted by
// key). The input slice is not modified.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(0)
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// resolve finds or creates the labeled entry of the named family,
// checking the instrument kind is consistent.
func (r *Registry) resolve(name string, kind Kind, labels []Label) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, kind: kind, entries: make(map[string]*entry)}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("metrics: %q registered as %v, requested as %v", name, f.kind, kind))
	}
	key := labelKey(labels)
	e := f.entries[key]
	if e == nil {
		ls := append([]Label(nil), labels...)
		sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
		e = &entry{labels: ls}
		switch kind {
		case KindCounter:
			e.c = &Counter{}
		case KindGauge:
			e.g = &Gauge{}
		case KindHistogram:
			h := fnv.New64a()
			h.Write([]byte(name))
			h.Write([]byte{0})
			h.Write([]byte(key))
			e.h = &Histo{r: NewReservoir(HistogramCapacity, int64(h.Sum64()))}
		}
		f.entries[key] = e
	}
	return e
}

// Counter resolves (creating on first use) the labeled counter. On a
// nil registry it returns nil, which is a valid disabled counter.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.resolve(name, KindCounter, labels).c
}

// Gauge resolves (creating on first use) the labeled gauge. On a nil
// registry it returns nil, which is a valid disabled gauge.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.resolve(name, KindGauge, labels).g
}

// Histogram resolves (creating on first use) the labeled histogram. On
// a nil registry it returns nil, which is a valid disabled histogram.
// The backing reservoir's seed derives from the name and labels, so
// deterministic simulations report identical estimates on every run.
func (r *Registry) Histogram(name string, labels ...Label) *Histo {
	if r == nil {
		return nil
	}
	return r.resolve(name, KindHistogram, labels).h
}

// Counter is a monotonically increasing atomic counter. The nil counter
// (from a disabled registry) discards updates without allocating.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds delta (counters are monotonic; negative deltas are a bug in
// the caller but are not policed on the hot path).
func (c *Counter) Add(delta int64) {
	if c != nil {
		c.v.Add(delta)
	}
}

// Value returns the current count (0 on the nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable instantaneous value. The nil gauge
// (from a disabled registry) discards updates without allocating.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the value by delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (0 on the nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histo is a mutex-guarded duration histogram backed by a bounded
// Reservoir: exact count/mean/min/max, estimated quantiles. The nil
// histogram (from a disabled registry) discards observations.
type Histo struct {
	mu sync.Mutex
	r  *Reservoir
}

// Observe records one duration sample.
func (h *Histo) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.r.Add(d)
	h.mu.Unlock()
}

// Count returns the number of observations (0 on the nil histogram).
func (h *Histo) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.r.Count()
}

// Quantile estimates the p-th percentile (0 on the nil histogram).
func (h *Histo) Quantile(p float64) time.Duration {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.r.Percentile(p)
}

// summary returns (count, mean, min, max, p50, p99) under the lock.
func (h *Histo) summary() (count int64, mean, min, max, p50, p99 time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.r.Count(), h.r.Mean(), h.r.Min(), h.r.Max(),
		h.r.Percentile(50), h.r.Percentile(99)
}

// Sample is one exported metric value. Histograms flatten into several
// samples with suffixed names (_count, _mean_seconds, _p50_seconds,
// _p99_seconds, _min_seconds, _max_seconds).
type Sample struct {
	Name   string  `json:"name"`
	Labels string  `json:"labels,omitempty"` // "k=v,k=v" rendering, sorted by key
	Kind   string  `json:"kind"`
	Value  float64 `json:"value"`
}

// renderLabels returns the "k=v,k=v" form of a sorted label set.
func renderLabels(ls []Label) string {
	if len(ls) == 0 {
		return ""
	}
	parts := make([]string, len(ls))
	for i, l := range ls {
		parts[i] = l.Key + "=" + l.Value
	}
	return strings.Join(parts, ",")
}

// Snapshot returns every metric value, deterministically ordered by
// family name then label encoding. On a nil registry it returns nil.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	var out []Sample
	r.eachEntry(func(f *family, e *entry) {
		labels := renderLabels(e.labels)
		switch f.kind {
		case KindCounter:
			out = append(out, Sample{f.name, labels, "counter", float64(e.c.Value())})
		case KindGauge:
			out = append(out, Sample{f.name, labels, "gauge", float64(e.g.Value())})
		case KindHistogram:
			count, mean, min, max, p50, p99 := e.h.summary()
			out = append(out,
				Sample{f.name + "_count", labels, "counter", float64(count)},
				Sample{f.name + "_mean_seconds", labels, "gauge", mean.Seconds()},
				Sample{f.name + "_min_seconds", labels, "gauge", min.Seconds()},
				Sample{f.name + "_max_seconds", labels, "gauge", max.Seconds()},
				Sample{f.name + "_p50_seconds", labels, "gauge", p50.Seconds()},
				Sample{f.name + "_p99_seconds", labels, "gauge", p99.Seconds()})
		}
	})
	return out
}

// Totals sums every counter family across its labels. The aggregate is
// what the benchmark baseline records: bounded in size no matter how
// many per-group label values the run created.
func (r *Registry) Totals() map[string]int64 {
	if r == nil {
		return nil
	}
	out := make(map[string]int64)
	r.eachEntry(func(f *family, e *entry) {
		if f.kind == KindCounter {
			out[f.name] += e.c.Value()
		}
	})
	return out
}

// eachEntry visits every entry in deterministic order. The family and
// entry maps are copied under the registry lock, then visited without
// it (instrument reads are atomic / self-locking), so a visitor may
// itself take time without stalling hot-path resolution.
func (r *Registry) eachEntry(fn func(*family, *entry)) {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	entries := make(map[*family][]string, len(fams))
	for _, f := range fams {
		keys := make([]string, 0, len(f.entries))
		for k := range f.entries {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		entries[f] = keys
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		for _, k := range entries[f] {
			r.mu.Lock()
			e := f.entries[k]
			r.mu.Unlock()
			if e != nil {
				fn(f, e)
			}
		}
	}
}

// WriteText renders the registry in the Prometheus text exposition
// style: "# TYPE" comments followed by 'name{k="v"} value' lines,
// deterministically ordered. Label values are escaped per the
// exposition format (backslash, double quote, newline — and nothing
// else; Go's %q escaping is NOT valid exposition text). On a nil
// registry it writes nothing.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	var err error
	write := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	lastFamily := ""
	r.eachEntry(func(f *family, e *entry) {
		if f.name != lastFamily {
			write("# TYPE %s %v\n", f.name, f.kind)
			lastFamily = f.name
		}
		lbl := promLabels(e.labels)
		switch f.kind {
		case KindCounter:
			write("%s%s %v\n", f.name, lbl, float64(e.c.Value()))
		case KindGauge:
			write("%s%s %v\n", f.name, lbl, float64(e.g.Value()))
		case KindHistogram:
			count, mean, min, max, p50, p99 := e.h.summary()
			write("%s_count%s %v\n", f.name, lbl, float64(count))
			write("%s_mean_seconds%s %v\n", f.name, lbl, mean.Seconds())
			write("%s_min_seconds%s %v\n", f.name, lbl, min.Seconds())
			write("%s_max_seconds%s %v\n", f.name, lbl, max.Seconds())
			write("%s_p50_seconds%s %v\n", f.name, lbl, p50.Seconds())
			write("%s_p99_seconds%s %v\n", f.name, lbl, p99.Seconds())
		}
	})
	return err
}

// EscapeLabelValue escapes a label value for the Prometheus text
// exposition format: backslash, double quote and newline, nothing else.
// Exported so scrapers (internal/collect) can invert it exactly.
func EscapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// promLabels renders a sorted label set as {k="v",k="v"} with escaped
// values (empty string for the unlabeled entry).
func promLabels(ls []Label) string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(EscapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// histogramSuffixes are the sample-name suffixes a histogram flattens
// into; WriteText groups them back under one TYPE comment.
var histogramSuffixes = []string{
	"_count", "_mean_seconds", "_min_seconds", "_max_seconds",
	"_p50_seconds", "_p99_seconds",
}

func histogramBase(name string) string {
	for _, suf := range histogramSuffixes {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

package metrics

import (
	"testing"
	"time"
)

func TestReservoirExactStatsBelowCapacity(t *testing.T) {
	// Under capacity the reservoir must behave exactly like a Histogram.
	r := NewReservoir(100, 1)
	for _, d := range []time.Duration{1, 2, 3, 4, 5} {
		r.Add(d * time.Millisecond)
	}
	if r.Count() != 5 {
		t.Errorf("Count = %d", r.Count())
	}
	if r.Mean() != 3*time.Millisecond {
		t.Errorf("Mean = %v", r.Mean())
	}
	if r.Min() != time.Millisecond || r.Max() != 5*time.Millisecond {
		t.Errorf("Min/Max = %v/%v", r.Min(), r.Max())
	}
	if got := r.Percentile(100); got != 5*time.Millisecond {
		t.Errorf("P100 = %v", got)
	}
}

func TestReservoirBoundedRetention(t *testing.T) {
	// Exact aggregates survive far past the capacity while memory stays
	// bounded at cap samples.
	const cap = 64
	r := NewReservoir(cap, 7)
	const n = 100_000
	for i := 1; i <= n; i++ {
		r.Add(time.Duration(i) * time.Microsecond)
	}
	if r.Count() != n {
		t.Errorf("Count = %d, want %d", r.Count(), n)
	}
	if len(r.h.samples) != cap {
		t.Errorf("retained %d samples, want cap %d", len(r.h.samples), cap)
	}
	if r.Min() != time.Microsecond || r.Max() != n*time.Microsecond {
		t.Errorf("exact Min/Max lost: %v/%v", r.Min(), r.Max())
	}
	wantMean := time.Duration((n + 1) / 2 * int64(time.Microsecond))
	if got := r.Mean(); got < wantMean-time.Microsecond || got > wantMean+time.Microsecond {
		t.Errorf("Mean = %v, want ~%v", got, wantMean)
	}
	// The uniform sample must put the median estimate in the right
	// neighborhood (a uniform 64-sample estimate of U(0,100ms)'s median
	// is within ±25% with overwhelming probability for a fixed seed).
	p50 := r.Percentile(50)
	if p50 < n/4*time.Microsecond || p50 > 3*n/4*time.Microsecond {
		t.Errorf("P50 estimate wildly off: %v", p50)
	}
}

func TestReservoirDeterministic(t *testing.T) {
	run := func() time.Duration {
		r := NewReservoir(32, 42)
		for i := 0; i < 10_000; i++ {
			r.Add(time.Duration(i%997) * time.Millisecond)
		}
		return r.Percentile(90)
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed produced different estimates: %v vs %v", a, b)
	}
}

func TestReservoirDefaultCapacity(t *testing.T) {
	r := NewReservoir(0, 1)
	for i := 0; i < 3000; i++ {
		r.Add(time.Duration(i))
	}
	if len(r.h.samples) != 1024 {
		t.Errorf("default capacity retained %d, want 1024", len(r.h.samples))
	}
}

package metrics

import (
	"math"
	"testing"
	"time"
)

func TestReservoirExactStatsBelowCapacity(t *testing.T) {
	// Under capacity the reservoir must behave exactly like a Histogram.
	r := NewReservoir(100, 1)
	for _, d := range []time.Duration{1, 2, 3, 4, 5} {
		r.Add(d * time.Millisecond)
	}
	if r.Count() != 5 {
		t.Errorf("Count = %d", r.Count())
	}
	if r.Mean() != 3*time.Millisecond {
		t.Errorf("Mean = %v", r.Mean())
	}
	if r.Min() != time.Millisecond || r.Max() != 5*time.Millisecond {
		t.Errorf("Min/Max = %v/%v", r.Min(), r.Max())
	}
	if got := r.Percentile(100); got != 5*time.Millisecond {
		t.Errorf("P100 = %v", got)
	}
}

func TestReservoirBoundedRetention(t *testing.T) {
	// Exact aggregates survive far past the capacity while memory stays
	// bounded at cap samples.
	const cap = 64
	r := NewReservoir(cap, 7)
	const n = 100_000
	for i := 1; i <= n; i++ {
		r.Add(time.Duration(i) * time.Microsecond)
	}
	if r.Count() != n {
		t.Errorf("Count = %d, want %d", r.Count(), n)
	}
	if len(r.h.samples) != cap {
		t.Errorf("retained %d samples, want cap %d", len(r.h.samples), cap)
	}
	if r.Min() != time.Microsecond || r.Max() != n*time.Microsecond {
		t.Errorf("exact Min/Max lost: %v/%v", r.Min(), r.Max())
	}
	wantMean := time.Duration((n + 1) / 2 * int64(time.Microsecond))
	if got := r.Mean(); got < wantMean-time.Microsecond || got > wantMean+time.Microsecond {
		t.Errorf("Mean = %v, want ~%v", got, wantMean)
	}
	// The uniform sample must put the median estimate in the right
	// neighborhood (a uniform 64-sample estimate of U(0,100ms)'s median
	// is within ±25% with overwhelming probability for a fixed seed).
	p50 := r.Percentile(50)
	if p50 < n/4*time.Microsecond || p50 > 3*n/4*time.Microsecond {
		t.Errorf("P50 estimate wildly off: %v", p50)
	}
}

func TestReservoirDeterministic(t *testing.T) {
	run := func() time.Duration {
		r := NewReservoir(32, 42)
		for i := 0; i < 10_000; i++ {
			r.Add(time.Duration(i%997) * time.Millisecond)
		}
		return r.Percentile(90)
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed produced different estimates: %v vs %v", a, b)
	}
}

func TestReservoirDefaultCapacity(t *testing.T) {
	r := NewReservoir(0, 1)
	for i := 0; i < 3000; i++ {
		r.Add(time.Duration(i))
	}
	if len(r.h.samples) != 1024 {
		t.Errorf("default capacity retained %d, want 1024", len(r.h.samples))
	}
}

// TestReservoirQuantileEdgeCases pins the Percentile contract at the
// boundaries: empty reservoir, single sample, NaN and out-of-range p.
func TestReservoirQuantileEdgeCases(t *testing.T) {
	single := func() *Reservoir {
		r := NewReservoir(8, 1)
		r.Add(42 * time.Millisecond)
		return r
	}
	many := func() *Reservoir {
		r := NewReservoir(128, 1)
		for i := 1; i <= 100; i++ {
			r.Add(time.Duration(i) * time.Millisecond)
		}
		return r
	}
	tests := []struct {
		name string
		r    *Reservoir
		p    float64
		want time.Duration
	}{
		{"empty p50", NewReservoir(8, 1), 50, 0},
		{"empty p0", NewReservoir(8, 1), 0, 0},
		{"empty NaN", NewReservoir(8, 1), math.NaN(), 0},
		{"single p50", single(), 50, 42 * time.Millisecond},
		{"single p100", single(), 100, 42 * time.Millisecond},
		{"single p0 clamps to min", single(), 0, 42 * time.Millisecond},
		{"single p negative clamps to min", single(), -10, 42 * time.Millisecond},
		{"single p above 100 clamps to max", single(), 250, 42 * time.Millisecond},
		{"single NaN is invalid", single(), math.NaN(), 0},
		{"many p0 is min", many(), 0, time.Millisecond},
		{"many p-5 is min", many(), -5, time.Millisecond},
		{"many p101 is max", many(), 101, 100 * time.Millisecond},
		{"many +Inf is max", many(), math.Inf(1), 100 * time.Millisecond},
		{"many -Inf is min", many(), math.Inf(-1), time.Millisecond},
		{"many NaN is invalid", many(), math.NaN(), 0},
		{"many p50 exact under capacity", many(), 50, 50 * time.Millisecond},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.r.Percentile(tt.p); got != tt.want {
				t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
			}
		})
	}
}

// TestReservoirEmptyAggregates: the zero-observation reservoir answers
// zeros for every aggregate, and a single observation is reflected
// exactly everywhere.
func TestReservoirEmptyAndSingleAggregates(t *testing.T) {
	r := NewReservoir(8, 1)
	if r.Count() != 0 || r.Mean() != 0 || r.Min() != 0 || r.Max() != 0 {
		t.Errorf("empty aggregates: count=%d mean=%v min=%v max=%v",
			r.Count(), r.Mean(), r.Min(), r.Max())
	}
	r.Add(7 * time.Millisecond)
	if r.Count() != 1 || r.Mean() != 7*time.Millisecond ||
		r.Min() != 7*time.Millisecond || r.Max() != 7*time.Millisecond {
		t.Errorf("single-sample aggregates: count=%d mean=%v min=%v max=%v",
			r.Count(), r.Mean(), r.Min(), r.Max())
	}
}

// TestHistogramPercentileNaN covers the shared nearest-rank helper
// directly (the reservoir delegates to it).
func TestHistogramPercentileEdgeCases(t *testing.T) {
	var h Histogram
	h.Add(3 * time.Millisecond)
	h.Add(9 * time.Millisecond)
	if got := h.Percentile(math.NaN()); got != 0 {
		t.Errorf("NaN percentile = %v, want 0", got)
	}
	if got := h.Percentile(-1); got != 3*time.Millisecond {
		t.Errorf("negative percentile = %v, want min", got)
	}
	if got := h.Percentile(math.Inf(1)); got != 9*time.Millisecond {
		t.Errorf("+Inf percentile = %v, want max", got)
	}
}

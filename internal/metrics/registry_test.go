package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sends_total", L("group", "chat"))
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	// Re-resolving the same name+labels yields the same instrument.
	if r.Counter("sends_total", L("group", "chat")) != c {
		t.Error("re-resolution returned a different counter")
	}
	// Different labels yield a different instrument.
	if r.Counter("sends_total", L("group", "news")) == c {
		t.Error("different labels shared an instrument")
	}

	g := r.Gauge("groups")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}
}

func TestRegistryLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x", L("b", "2"), L("a", "1"))
	b := r.Counter("x", L("a", "1"), L("b", "2"))
	if a != b {
		t.Error("label order changed instrument identity")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("x")
	r.Gauge("x")
}

func TestRegistryHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("flush", L("hwg", "hwg1"))
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Errorf("count = %d", h.Count())
	}
	if got := h.Quantile(50); got != 50*time.Millisecond {
		t.Errorf("p50 = %v", got)
	}
}

func TestRegistryHistogramDeterministicSeed(t *testing.T) {
	// Same name+labels on two registries must estimate identically for
	// identical observation sequences (reservoir seeds derive from the
	// metric identity).
	run := func() time.Duration {
		h := NewRegistry().Histogram("flush", L("hwg", "hwg9"))
		for i := 0; i < 50_000; i++ {
			h.Observe(time.Duration(i%977) * time.Microsecond)
		}
		return h.Quantile(90)
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same identity produced different estimates: %v vs %v", a, b)
	}
}

func TestRegistrySnapshotAndTotals(t *testing.T) {
	r := NewRegistry()
	r.Counter("sends_total", L("group", "a")).Add(3)
	r.Counter("sends_total", L("group", "b")).Add(4)
	r.Gauge("groups").Set(2)
	r.Histogram("lat").Observe(time.Second)

	tot := r.Totals()
	if tot["sends_total"] != 7 {
		t.Errorf("Totals[sends_total] = %d, want 7", tot["sends_total"])
	}
	if _, ok := tot["groups"]; ok {
		t.Error("Totals must cover counters only")
	}

	snap := r.Snapshot()
	names := make(map[string]bool)
	for _, s := range snap {
		names[s.Name] = true
	}
	for _, want := range []string{"sends_total", "groups", "lat_count", "lat_p99_seconds"} {
		if !names[want] {
			t.Errorf("snapshot missing %q (have %v)", want, snap)
		}
	}
	// Deterministic ordering.
	for i := range snap {
		if i > 0 && snap[i-1].Name == snap[i].Name && snap[i-1].Labels > snap[i].Labels {
			t.Errorf("snapshot labels out of order at %d: %v", i, snap)
		}
	}
}

func TestRegistryWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("sends_total", L("group", "chat")).Add(5)
	r.Gauge("groups").Set(1)
	r.Histogram("lat").Observe(2 * time.Second)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE sends_total counter",
		`sends_total{group="chat"} 5`,
		"# TYPE groups gauge",
		"groups 1",
		"# TYPE lat histogram",
		"lat_count 1",
		"lat_max_seconds 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText output missing %q:\n%s", want, out)
		}
	}
}

// TestWriteTextLabelEscaping pins the Prometheus exposition escaping
// rules on hostile label values: exactly backslash, double quote and
// newline are escaped (as \\, \" and \n), and nothing else — Go's %q
// would emit \x.. sequences no exposition parser accepts.
func TestWriteTextLabelEscaping(t *testing.T) {
	cases := []struct {
		name     string
		value    string
		rendered string
	}{
		{"plain", "chat", `chat`},
		{"backslash", `a\b`, `a\\b`},
		{"quote", `say "hi"`, `say \"hi\"`},
		{"newline", "line1\nline2", `line1\nline2`},
		{"all-three", "\\\"\n", `\\\"\n`},
		{"comma-equals", `k=v,x=y`, `k=v,x=y`},          // structural chars pass through inside quotes
		{"tab-and-unicode", "a\tb\u00e9", "a\tb\u00e9"}, // NOT escaped: only \ " and newline are
		{"trailing-backslash", `c:\`, `c:\\`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegistry()
			r.Counter("escape_total", L("lwg", tc.value)).Add(7)
			var b strings.Builder
			if err := r.WriteText(&b); err != nil {
				t.Fatal(err)
			}
			want := `escape_total{lwg="` + tc.rendered + `"} 7`
			if !strings.Contains(b.String(), want+"\n") {
				t.Errorf("WriteText(%q): missing %q in:\n%s", tc.value, want, b.String())
			}
		})
	}
}

func TestNilRegistryDisabled(t *testing.T) {
	var r *Registry
	c := r.Counter("x", L("a", "b"))
	g := r.Gauge("y")
	h := r.Histogram("z")
	c.Inc()
	c.Add(3)
	g.Set(9)
	h.Observe(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Quantile(50) != 0 {
		t.Error("nil instruments must read as zero")
	}
	if r.Snapshot() != nil || r.Totals() != nil {
		t.Error("nil registry must snapshot as nil")
	}
	if err := r.WriteText(&strings.Builder{}); err != nil {
		t.Errorf("nil WriteText: %v", err)
	}
}

// TestDisabledRegistryZeroAlloc is the metrics-overhead guard: the
// instrument updates compiled into the protocol hot paths must cost
// zero allocations when the registry is disabled (nil instruments).
func TestDisabledRegistryZeroAlloc(t *testing.T) {
	var (
		c *Counter
		g *Gauge
		h *Histo
	)
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(1)
		g.Add(-1)
		h.Observe(time.Millisecond)
	}); n != 0 {
		t.Errorf("disabled instruments allocated %v per run, want 0", n)
	}
}

// TestEnabledCounterZeroAlloc pins the enabled hot path too: updating a
// resolved counter or gauge is a single atomic op with no allocation.
func TestEnabledCounterZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	g := r.Gauge("y")
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Add(2)
	}); n != 0 {
		t.Errorf("enabled counter/gauge allocated %v per run, want 0", n)
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := r.Counter("sends_total", L("group", string(rune('a'+i%4))))
			h := r.Histogram("lat")
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(time.Duration(j))
			}
		}(i)
	}
	// Concurrent reader (the /metrics handler).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var b strings.Builder
			_ = r.WriteText(&b)
			_ = r.Snapshot()
		}
	}()
	wg.Wait()
	if got := r.Totals()["sends_total"]; got != 8000 {
		t.Errorf("sends_total = %d, want 8000", got)
	}
}

// BenchmarkRegistryHotPath measures the per-update cost of the enabled
// instruments as used on the protocol hot paths: pre-resolved handles,
// one update per operation.
func BenchmarkRegistryHotPath(b *testing.B) {
	r := NewRegistry()
	b.Run("counter", func(b *testing.B) {
		c := r.Counter("bench_counter")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("counter-disabled", func(b *testing.B) {
		var c *Counter
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("gauge", func(b *testing.B) {
		g := r.Gauge("bench_gauge")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.Set(int64(i))
		}
	})
	b.Run("histogram", func(b *testing.B) {
		h := r.Histogram("bench_hist")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(time.Duration(i))
		}
	})
	b.Run("resolve", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = r.Counter("bench_counter")
		}
	})
}

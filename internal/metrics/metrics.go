// Package metrics provides the small statistics toolkit used by the
// benchmark harness: duration histograms with percentiles and simple
// throughput counters, all on virtual time.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Histogram collects duration samples and answers summary queries. The
// zero value is ready to use.
type Histogram struct {
	samples []time.Duration
	sorted  bool
}

// Add records one sample.
func (h *Histogram) Add(d time.Duration) {
	h.samples = append(h.samples, d)
	h.sorted = false
}

// Count returns the number of samples.
func (h *Histogram) Count() int { return len(h.samples) }

// Mean returns the average sample, or 0 with no samples.
func (h *Histogram) Mean() time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range h.samples {
		sum += float64(s)
	}
	return time.Duration(sum / float64(len(h.samples)))
}

// Min returns the smallest sample, or 0 with no samples.
func (h *Histogram) Min() time.Duration {
	h.sort()
	if len(h.samples) == 0 {
		return 0
	}
	return h.samples[0]
}

// Max returns the largest sample, or 0 with no samples.
func (h *Histogram) Max() time.Duration {
	h.sort()
	if len(h.samples) == 0 {
		return 0
	}
	return h.samples[len(h.samples)-1]
}

// Percentile returns the p-th percentile using nearest-rank, or 0 with
// no samples. Out-of-range p is clamped to (0, 100]: p <= 0 answers the
// minimum, p > 100 the maximum. A NaN p is an invalid query and
// answers 0 (the int conversion of a NaN float is otherwise
// platform-defined, which silently corrupted the rank).
func (h *Histogram) Percentile(p float64) time.Duration {
	if math.IsNaN(p) {
		return 0
	}
	h.sort()
	if len(h.samples) == 0 {
		return 0
	}
	rank := 1
	if p > 0 {
		// +Inf stays above len after Ceil and clamps to the maximum.
		if r := math.Ceil(p / 100 * float64(len(h.samples))); r > 1 {
			rank = int(math.Min(r, float64(len(h.samples))))
		}
	}
	return h.samples[rank-1]
}

// Stddev returns the population standard deviation of the samples.
func (h *Histogram) Stddev() time.Duration {
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	mean := float64(h.Mean())
	var acc float64
	for _, s := range h.samples {
		d := float64(s) - mean
		acc += d * d
	}
	return time.Duration(math.Sqrt(acc / float64(n)))
}

// Summary renders "n=… mean=… p50=… p99=… max=…".
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.Count(), h.Mean().Round(time.Microsecond),
		h.Percentile(50).Round(time.Microsecond),
		h.Percentile(99).Round(time.Microsecond),
		h.Max().Round(time.Microsecond))
}

func (h *Histogram) sort() {
	if h.sorted {
		return
	}
	sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
	h.sorted = true
}

// Rate converts a count observed over an interval into a per-second rate.
func Rate(count int64, over time.Duration) float64 {
	if over <= 0 {
		return 0
	}
	return float64(count) / over.Seconds()
}

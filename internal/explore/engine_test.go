package explore

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

// enumEqual asserts two sweep results are identical: stats, swept
// verdict, findings (by schedule and violation shape) and — when present
// — the checkpoint's exact encoded bytes.
func enumEqual(t *testing.T, label string, a, b EnumResult) {
	t.Helper()
	if !reflect.DeepEqual(a.Stats, b.Stats) {
		t.Fatalf("%s: stats differ:\n%+v\n%+v", label, a.Stats, b.Stats)
	}
	if a.Swept != b.Swept {
		t.Fatalf("%s: swept differs: %v vs %v", label, a.Swept, b.Swept)
	}
	if len(a.Findings) != len(b.Findings) {
		t.Fatalf("%s: finding counts differ: %d vs %d", label, len(a.Findings), len(b.Findings))
	}
	for i := range a.Findings {
		if Encode(a.Findings[i].Schedule) != Encode(b.Findings[i].Schedule) {
			t.Fatalf("%s: finding %d schedules differ", label, i)
		}
		if len(a.Findings[i].Result.Violations) != len(b.Findings[i].Result.Violations) {
			t.Fatalf("%s: finding %d violation counts differ", label, i)
		}
	}
	switch {
	case a.Checkpoint == nil && b.Checkpoint == nil:
	case a.Checkpoint == nil || b.Checkpoint == nil:
		t.Fatalf("%s: one result has a checkpoint, the other does not", label)
	default:
		ea, eb := EncodeCheckpoint(a.Checkpoint), EncodeCheckpoint(b.Checkpoint)
		if ea != eb {
			t.Fatalf("%s: checkpoints differ:\n%s\nvs\n%s", label, ea, eb)
		}
	}
}

// TestEnumerateParallelDeterminism: the worker pool must be invisible in
// the results — a -par 8 sweep is byte-identical to the serial one, with
// the pruning layers off and on, complete and budget-sliced. This is the
// contract that makes the parallel engine safe to use for real sweeps.
func TestEnumerateParallelDeterminism(t *testing.T) {
	scopes := []struct {
		name string
		cfg  EnumConfig
	}{
		{"n2g1-plain", EnumConfig{
			Scope: Scope{Nodes: 2, Groups: 1, Quiesce: 8 * time.Second},
			Depth: 4,
		}},
		{"n2g2-pruned", EnumConfig{
			Scope: Scope{Nodes: 2, Groups: 2, Quiesce: 8 * time.Second},
			Depth: 4, POR: true, ProbeMemo: true,
		}},
		{"n2g1-budget-slice", EnumConfig{
			Scope: Scope{Nodes: 2, Groups: 1, Quiesce: 8 * time.Second},
			Depth: 4, Budget: 40, POR: true, ProbeMemo: true,
		}},
	}
	for _, tc := range scopes {
		t.Run(tc.name, func(t *testing.T) {
			serial, par := tc.cfg, tc.cfg
			serial.Par = 1
			par.Par = 8
			enumEqual(t, tc.name, Enumerate(serial), Enumerate(par))
		})
	}
}

// replayWorld re-executes a prefix from a fresh world. Callers check
// w.completed to detect a livelocked prefix.
func replayWorld(sc Scope, ops []Op) *world {
	w := newWorld(sc.schedule(ops))
	for _, op := range ops {
		w.advance(op.Delay)
		if !w.completed {
			return w
		}
		w.apply(op)
	}
	return w
}

// TestRideEquivalence is the property behind settle-suffix riding
// (engine.go): for a healed state, the liveness probe's chunked timeline
// IS the wait-successor chain. Every healed state reached by a BFS over
// the scope must satisfy: probe chunk k's digest equals a fresh replay of
// prefix + k wait ops, the wait child's enabled set equals the parent's,
// and the chunked probe reaches the same verdict as the one-shot finish.
func TestRideEquivalence(t *testing.T) {
	sc, err := ParseScope("n2g2")
	if err != nil {
		t.Fatal(err)
	}
	wait := Op{Delay: sc.Settle, Kind: OpWait}
	frontier := [][]Op{nil}
	tested := 0
	for len(frontier) > 0 && tested < 12 {
		prefix := frontier[0]
		frontier = frontier[1:]
		w := replayWorld(sc, prefix)
		if !w.completed {
			continue
		}
		succ := w.enabledOps(sc)
		healed := w.cut == 0
		out := w.probe(sc, func(uint64) bool { return false })
		if out.hit != 0 {
			t.Fatalf("always-false memo produced a hit at prefix %v", prefix)
		}
		if healed && len(out.traj) >= 2 && out.res.Completed {
			// Chunk digests vs the wait-child chain (first two chunks).
			for k := 1; k <= 2; k++ {
				ops := append(append([]Op(nil), prefix...), wait)
				if k == 2 {
					ops = append(ops, wait)
				}
				child := replayWorld(sc, ops)
				if !child.completed {
					t.Fatalf("wait chain livelocked below healed prefix %v", prefix)
				}
				if got := child.digest(); got != out.traj[k-1] {
					t.Fatalf("prefix %v: probe chunk %d digest %x != wait-chain digest %x",
						prefix, k, out.traj[k-1], got)
				}
				if k == 1 {
					if childSucc := child.enabledOps(sc); !reflect.DeepEqual(childSucc, succ) {
						t.Fatalf("prefix %v: wait child enabled set differs from parent", prefix)
					}
				}
			}
			// Chunked probe verdict vs the one-shot finish().
			w2 := replayWorld(sc, prefix)
			res := w2.finish()
			if res.Completed != out.res.Completed || len(res.Violations) != len(out.res.Violations) {
				t.Fatalf("prefix %v: chunked probe verdict (%v/%d) != finish (%v/%d)",
					prefix, out.res.Completed, len(out.res.Violations),
					res.Completed, len(res.Violations))
			}
			tested++
		}
		if len(prefix) < 3 {
			for _, op := range succ {
				frontier = append(frontier, append(append([]Op(nil), prefix...), op))
			}
		}
	}
	if tested < 5 {
		t.Fatalf("too few healed states exercised: %d", tested)
	}
}

// TestMemoEquivalence: on a scope that sweeps clean, the probe memo is
// a pure accelerator — stats, findings and the swept verdict match the
// memo-off sweep exactly.
func TestMemoEquivalence(t *testing.T) {
	for _, scope := range []Scope{
		{Nodes: 2, Groups: 1, Quiesce: 8 * time.Second},
		{Nodes: 2, Groups: 2, Quiesce: 8 * time.Second},
	} {
		cfg := EnumConfig{Scope: scope, Depth: 4}
		plain := Enumerate(cfg)
		cfg.ProbeMemo = true
		memo := Enumerate(cfg)
		enumEqual(t, scope.String(), plain, memo)
	}
}

// TestPOREquivalence: partial-order reduction must not change what a
// sweep concludes — same findings, same swept verdict — while executing
// fewer prefixes on any scope with commutative structure to cut (g2+).
// On single-group scopes the filter never fires and the sweeps are
// identical.
func TestPOREquivalence(t *testing.T) {
	t.Run("n2g1-identical", func(t *testing.T) {
		cfg := EnumConfig{Scope: Scope{Nodes: 2, Groups: 1, Quiesce: 8 * time.Second}, Depth: 4}
		plain := Enumerate(cfg)
		cfg.POR = true
		por := Enumerate(cfg)
		enumEqual(t, "n2g1", plain, por)
	})
	t.Run("n2g2-reduced", func(t *testing.T) {
		cfg := EnumConfig{Scope: Scope{Nodes: 2, Groups: 2, Quiesce: 8 * time.Second}, Depth: 5}
		plain := Enumerate(cfg)
		cfg.POR = true
		por := Enumerate(cfg)
		if plain.Swept != por.Swept {
			t.Fatalf("swept differs: plain %v, por %v", plain.Swept, por.Swept)
		}
		if len(plain.Findings) != len(por.Findings) {
			t.Fatalf("finding counts differ: plain %d, por %d",
				len(plain.Findings), len(por.Findings))
		}
		for i := range plain.Findings {
			if Encode(plain.Findings[i].Schedule) != Encode(por.Findings[i].Schedule) {
				t.Fatalf("finding %d schedules differ", i)
			}
		}
		if por.Stats.Runs >= plain.Stats.Runs {
			t.Fatalf("POR did not reduce executed prefixes: %d vs %d",
				por.Stats.Runs, plain.Stats.Runs)
		}
		t.Logf("POR: %d runs vs %d (%.2fx), visited %d vs %d",
			por.Stats.Runs, plain.Stats.Runs,
			float64(plain.Stats.Runs)/float64(por.Stats.Runs),
			por.Stats.Visited, plain.Stats.Visited)
	})
}

// TestCheckpointV2RoundTrip: the compressed format round-trips every
// field, including the pruning flags, the memo set and a root frontier
// entry.
func TestCheckpointV2RoundTrip(t *testing.T) {
	sc, err := ParseScope("n3g2c1")
	if err != nil {
		t.Fatal(err)
	}
	cp := &Checkpoint{
		Scope:     sc,
		Depth:     9,
		POR:       true,
		ProbeMemo: true,
		Visited:   []uint64{3, 5, 0xdeadbeefcafe, 1 << 63, ^uint64(0)},
		Memo:      []uint64{7, 9, 0xfeedface},
		Frontier: [][]Op{
			nil, // the root entry: no ops
			{{Delay: sc.OpDelay, Kind: OpJoin, P: 1, LWG: "a"}},
			{
				{Delay: sc.OpDelay, Kind: OpPart, Cut: 2},
				{Delay: sc.Settle, Kind: OpWait},
				{Delay: sc.OpDelay, Kind: OpCrash, P: 1},
			},
		},
		Stats: EnumStats{Visited: 120, Pruned: 340, Runs: 460, Deepest: 8},
	}
	text := EncodeCheckpoint(cp)
	if !strings.HasPrefix(text, "enumcheckpoint v2\n") {
		t.Fatalf("encoder did not emit v2:\n%s", text)
	}
	got, err := ParseCheckpoint(text)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if !reflect.DeepEqual(got, cp) {
		t.Fatalf("round-trip changed the checkpoint:\n%+v\nvs\n%+v", got, cp)
	}
}

// TestCheckpointV1Compat: the uncompressed v1 format written by earlier
// versions still parses, with the pruning flags off (what those sweeps
// ran with).
func TestCheckpointV1Compat(t *testing.T) {
	text := strings.Join([]string{
		"enumcheckpoint v1",
		"scope n3g1",
		"timing 50ms 500ms 12s",
		"depth 6",
		"stats 10 4 14 3",
		"visited 1a2b 3c4d ffffffffffffffff",
		"frontier op 50ms join 0 a;op 500ms wait",
		"frontier op 50ms part 1",
		"",
	}, "\n")
	cp, err := ParseCheckpoint(text)
	if err != nil {
		t.Fatalf("v1 parse: %v", err)
	}
	if cp.POR || cp.ProbeMemo || cp.Memo != nil {
		t.Fatalf("v1 checkpoint resumed with pruning state: %+v", cp)
	}
	if cp.Scope.Nodes != 3 || cp.Scope.Groups != 1 || cp.Depth != 6 {
		t.Fatalf("v1 scope/depth wrong: %+v", cp)
	}
	want := []uint64{0x1a2b, 0x3c4d, ^uint64(0)}
	if !reflect.DeepEqual(cp.Visited, want) {
		t.Fatalf("v1 visited wrong: %x", cp.Visited)
	}
	if len(cp.Frontier) != 2 || len(cp.Frontier[0]) != 2 || len(cp.Frontier[1]) != 1 {
		t.Fatalf("v1 frontier wrong: %+v", cp.Frontier)
	}
	if cp.Stats != (EnumStats{Visited: 10, Pruned: 4, Runs: 14, Deepest: 3}) {
		t.Fatalf("v1 stats wrong: %+v", cp.Stats)
	}
}

// TestCheckpointCompression: the v2 encoding of a realistic checkpoint
// must be materially smaller than the v1 rendering of the same data.
func TestCheckpointCompression(t *testing.T) {
	res := Enumerate(EnumConfig{
		Scope:  Scope{Nodes: 3, Groups: 1, Quiesce: 8 * time.Second},
		Depth:  6,
		Budget: 300,
	})
	if res.Checkpoint == nil {
		t.Skip("scope swept within budget; no checkpoint to measure")
	}
	v2 := len(EncodeCheckpoint(res.Checkpoint))
	v1 := len(encodeCheckpointV1(res.Checkpoint))
	if v2*2 > v1 {
		t.Fatalf("v2 checkpoint not at least 2x smaller: v2=%dB v1=%dB", v2, v1)
	}
	t.Logf("checkpoint size: v1=%dB v2=%dB (%.1fx)", v1, v2, float64(v1)/float64(v2))
}

// encodeCheckpointV1 reproduces the old uncompressed rendering, kept only
// as the baseline for the compression test.
func encodeCheckpointV1(cp *Checkpoint) string {
	var b strings.Builder
	b.WriteString("enumcheckpoint v1\n")
	b.WriteString("scope " + cp.Scope.String() + "\n")
	for i := 0; i < len(cp.Visited); i += 64 {
		end := i + 64
		if end > len(cp.Visited) {
			end = len(cp.Visited)
		}
		b.WriteString("visited")
		for _, d := range cp.Visited[i:end] {
			b.WriteString(" ")
			b.WriteString(strings.ToLower(strings.TrimPrefix(hex64(d), "0x")))
		}
		b.WriteByte('\n')
	}
	for _, ops := range cp.Frontier {
		b.WriteString("frontier")
		for i, op := range ops {
			if i == 0 {
				b.WriteByte(' ')
			} else {
				b.WriteByte(';')
			}
			b.WriteString(op.String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func hex64(d uint64) string {
	const digits = "0123456789abcdef"
	var out [16]byte
	for i := 15; i >= 0; i-- {
		out[i] = digits[d&0xf]
		d >>= 4
	}
	return string(out[:])
}

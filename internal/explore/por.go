package explore

// Partial-order reduction for the bounded enumerator: sleep sets over a
// syntactic independence relation.
//
// Two operations are independent when neither can observe the other at
// the intent level: both are single-process, single-group actions (join,
// leave, send) on different processes AND different light-weight groups.
// Everything else — partition, heal, crash, policy, wait — touches global
// state or global time and is dependent on every other op.
//
// The reduction is the classic sleep-set algorithm specialised to the
// BFS frontier: when a state s expands its successors e1..ek in canonical
// order, the child reached by ei inherits a sleep set holding every
// earlier-explored sibling ej (j < i) independent of ei, plus the
// entries of s's own sleep set still independent of ei. An enabled op
// found in the expanding state's sleep set is not explored at all: every
// interleaving it would lead to is a commuted reordering of one already
// reachable through the sibling subtree that put it to sleep. Taking any
// dependent op (all the global ones) empties the sleep set, so an entry
// only survives along paths made of ops it commutes with — which is
// exactly the window where the reordering argument holds.
//
// Independence here is judged at the digest abstraction the enumerator
// works at, and it is approximate: the two orderings of an independent
// pair place the ops at different virtual times (+OpDelay vs +2×OpDelay),
// so their transient states can digest differently even though the
// settled states coincide. That makes POR a coverage heuristic of
// exactly the same character as the bitstate digest pruning (digest.go) —
// the swept graph is the abstracted one — while findings stay sound:
// every reported wedge still carries a concrete schedule that replays
// it. The por-on/por-off equivalence sweeps in the tests check that the
// reduction changes neither the findings nor the swept verdict on the
// scopes they cover, and -por=false disables it for exact sweeps.
//
// Sleep sets are part of a sweep's identity: a checkpoint records each
// frontier entry's sleep set (checkpoint.go), and the POR flag must
// match at resume.

// porLocal reports whether the op kind is a single-process, single-group
// action.
func porLocal(kind string) bool {
	return kind == OpJoin || kind == OpLeave || kind == OpSend
}

// porIndep reports whether the two ops commute at the intent level.
func porIndep(a, b Op) bool {
	return porLocal(a.Kind) && porLocal(b.Kind) && a.P != b.P && a.LWG != b.LWG
}

// porSleeps reports whether op is covered by the sleep set.
func porSleeps(sleep []Op, op Op) bool {
	for _, e := range sleep {
		if e == op {
			return true
		}
	}
	return false
}

// porChildSleep builds the sleep set for the child reached by taken:
// surviving entries of the parent's sleep set plus the earlier-explored
// siblings, each kept only while independent of the op taken.
func porChildSleep(sleep, explored []Op, taken Op) []Op {
	var out []Op
	for _, e := range sleep {
		if porIndep(e, taken) {
			out = append(out, e)
		}
	}
	for _, e := range explored {
		if porIndep(e, taken) {
			out = append(out, e)
		}
	}
	return out
}

package explore

import (
	"sort"
	"strconv"

	"plwg/internal/ids"
)

// State digest for the bounded enumerator (see enumerate.go).
//
// The digest is a canonical fingerprint of the protocol-visible state of a
// world: per-process LWG phase/view/mapping/pre-install backlog, vsync
// membership and views, the naming databases' live mappings, the crash set
// and the applied partition. Two worlds with equal digests are treated as
// the same state and the enumerator explores successors from only one of
// them.
//
// Canonicalisation makes the digest history-independent where the raw
// state is not: view identifiers carry coordinator-local sequence numbers
// and HWG identifiers come from an allocation counter, so two runs that
// reach protocol-equivalent states through different interleavings hold
// different raw identifiers. The digest therefore renames every ViewID and
// HWGID to a small index assigned by first appearance in a deterministic
// scan order (processes ascending, groups sorted, servers ascending).
// Genealogy ancestry, lease timestamps, entry version counters and
// in-flight network messages are deliberately excluded: they encode how
// the state was reached (or when), not what it is.
//
// The abstraction makes pruning aggressive but approximate, in the spirit
// of bitstate hashing: a pruned state's in-flight traffic may differ from
// the representative's, so coverage is of the abstracted state graph, not
// the concrete one. Soundness of findings is unaffected — every reported
// wedge or violation comes with a concrete schedule that replays it.
//
// The rendering is built with manual byte appends into a buffer reused
// across calls: the probe-trajectory memoisation (engine.go) digests every
// settle-chunk boundary of every liveness probe, so this function runs an
// order of magnitude more often than it did when it fingerprinted one
// state per run. The byte layout is frozen — digests are persisted in
// checkpoints, and changing a single byte of the rendering would silently
// invalidate every in-flight sweep (digestReference in the tests pins it).

// canon renames raw identifiers to first-appearance indices. The slices
// are reused across digest calls; linear scans beat maps at the handful of
// identifiers a small-scope world holds.
type canon struct {
	views []ids.ViewID
	hwgs  []ids.HWGID
}

func (c *canon) reset() {
	c.views = c.views[:0]
	c.hwgs = c.hwgs[:0]
}

// appendView appends the canonical view token ("-" for the zero view,
// "v<idx>" otherwise).
func (c *canon) appendView(b []byte, v ids.ViewID) []byte {
	if v.IsZero() {
		return append(b, '-')
	}
	for i, x := range c.views {
		if x == v {
			return strconv.AppendInt(append(b, 'v'), int64(i), 10)
		}
	}
	c.views = append(c.views, v)
	return strconv.AppendInt(append(b, 'v'), int64(len(c.views)-1), 10)
}

// appendHWG appends the canonical HWG token ("-" for NoHWG, "h<idx>"
// otherwise).
func (c *canon) appendHWG(b []byte, h ids.HWGID) []byte {
	if h == ids.NoHWG {
		return append(b, '-')
	}
	for i, x := range c.hwgs {
		if x == h {
			return strconv.AppendInt(append(b, 'h'), int64(i), 10)
		}
	}
	c.hwgs = append(c.hwgs, h)
	return strconv.AppendInt(append(b, 'h'), int64(len(c.hwgs)-1), 10)
}

// appendMembers appends the fmt rendering of a member set: "{p0,p1}".
func appendMembers(b []byte, ms ids.Members) []byte {
	b = append(b, '{')
	for i, p := range ms {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(append(b, 'p'), int64(p), 10)
	}
	return append(b, '}')
}

// digest fingerprints the world's protocol-visible state.
func (w *world) digest() uint64 {
	c := &w.dcanon
	c.reset()
	b := w.dbuf[:0]

	b = append(b, "cut="...)
	b = strconv.AppendInt(b, int64(w.cut), 10)
	b = append(b, '\n')
	for i := 0; i < w.sched.Nodes; i++ {
		pid := ids.ProcessID(i)
		ep := w.eps[pid]
		b = strconv.AppendInt(append(b, 'p'), int64(i), 10)
		if w.crashed[pid] {
			b = append(b, " crashed=true\n"...)
			continue // a crashed process's state is unreachable forever
		}
		b = append(b, " crashed=false\n"...)
		for _, l := range w.lwgList {
			phase := ep.LWGPhase(l)
			if phase == "" {
				continue
			}
			b = append(b, " lwg "...)
			b = append(b, l...)
			b = append(b, ' ')
			b = append(b, phase...)
			if v, ok := ep.LWGView(l); ok {
				b = append(b, ' ')
				b = c.appendView(b, v.ID)
				b = appendMembers(b, v.Members)
			}
			if h, ok := ep.Mapping(l); ok {
				b = append(b, " on "...)
				b = c.appendHWG(b, h)
			}
			// The backlog count is bucketed: the exact depth encodes run
			// history (every send grows it), and an unbounded counter in
			// the digest would make the state graph infinite.
			if n := ep.PreInstallBuffered(l); n > 2 {
				b = append(b, " buf=2+"...)
			} else if n > 0 {
				b = append(b, " buf="...)
				b = strconv.AppendInt(b, int64(n), 10)
			}
			b = append(b, '\n')
		}
		stack := ep.HWGStack()
		for _, g := range stack.Groups() {
			b = append(b, " hwg "...)
			b = c.appendHWG(b, g)
			v, ok := stack.CurrentView(g)
			if !ok {
				b = append(b, " joining\n"...)
				continue
			}
			b = append(b, ' ')
			b = c.appendView(b, v.ID)
			b = appendMembers(b, v.Members)
			b = append(b, '\n')
		}
	}
	for _, srv := range w.serverList {
		db := w.servers[srv].DB()
		// The doubled p is a historical quirk ("ns p" + the p<N> String of
		// the id); it is frozen into persisted digests.
		b = append(b, "ns p"...)
		b = strconv.AppendInt(append(b, 'p'), int64(srv), 10)
		b = append(b, '\n')
		for _, l := range db.LWGs() {
			for _, e := range db.Live(l) {
				b = append(b, " map "...)
				b = append(b, l...)
				b = append(b, ' ')
				b = c.appendView(b, e.View)
				b = append(b, " -> "...)
				b = c.appendHWG(b, e.HWG)
				b = append(b, '\n')
			}
		}
	}

	w.dbuf = b
	// Inlined FNV-64a over the buffer (hash/fnv would allocate the state).
	h := uint64(14695981039346656037)
	for _, x := range b {
		h ^= uint64(x)
		h *= 1099511628211
	}
	return h
}

func sortedServerPids[V any](m map[ids.ProcessID]V) []ids.ProcessID {
	out := make([]ids.ProcessID, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

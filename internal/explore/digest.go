package explore

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"plwg/internal/ids"
)

// State digest for the bounded enumerator (see enumerate.go).
//
// The digest is a canonical fingerprint of the protocol-visible state of a
// world: per-process LWG phase/view/mapping/pre-install backlog, vsync
// membership and views, the naming databases' live mappings, the crash set
// and the applied partition. Two worlds with equal digests are treated as
// the same state and the enumerator explores successors from only one of
// them.
//
// Canonicalisation makes the digest history-independent where the raw
// state is not: view identifiers carry coordinator-local sequence numbers
// and HWG identifiers come from an allocation counter, so two runs that
// reach protocol-equivalent states through different interleavings hold
// different raw identifiers. The digest therefore renames every ViewID and
// HWGID to a small index assigned by first appearance in a deterministic
// scan order (processes ascending, groups sorted, servers ascending).
// Genealogy ancestry, lease timestamps, entry version counters and
// in-flight network messages are deliberately excluded: they encode how
// the state was reached (or when), not what it is.
//
// The abstraction makes pruning aggressive but approximate, in the spirit
// of bitstate hashing: a pruned state's in-flight traffic may differ from
// the representative's, so coverage is of the abstracted state graph, not
// the concrete one. Soundness of findings is unaffected — every reported
// wedge or violation comes with a concrete schedule that replays it.

// canon renames raw identifiers to first-appearance indices.
type canon struct {
	views map[ids.ViewID]int
	hwgs  map[ids.HWGID]int
}

func newCanon() *canon {
	return &canon{views: make(map[ids.ViewID]int), hwgs: make(map[ids.HWGID]int)}
}

func (c *canon) view(v ids.ViewID) string {
	if v.IsZero() {
		return "-"
	}
	i, ok := c.views[v]
	if !ok {
		i = len(c.views)
		c.views[v] = i
	}
	return fmt.Sprintf("v%d", i)
}

func (c *canon) hwg(h ids.HWGID) string {
	if h == ids.NoHWG {
		return "-"
	}
	i, ok := c.hwgs[h]
	if !ok {
		i = len(c.hwgs)
		c.hwgs[h] = i
	}
	return fmt.Sprintf("h%d", i)
}

// digest fingerprints the world's protocol-visible state.
func (w *world) digest() uint64 {
	c := newCanon()
	var b strings.Builder

	lwgs := append([]ids.LWGID(nil), w.sched.LWGs...)
	sort.Slice(lwgs, func(i, j int) bool { return lwgs[i] < lwgs[j] })

	fmt.Fprintf(&b, "cut=%d\n", w.cut)
	for i := 0; i < w.sched.Nodes; i++ {
		pid := ids.ProcessID(i)
		ep := w.eps[pid]
		fmt.Fprintf(&b, "p%d crashed=%v\n", i, w.crashed[pid])
		if w.crashed[pid] {
			continue // a crashed process's state is unreachable forever
		}
		for _, l := range lwgs {
			phase := ep.LWGPhase(l)
			if phase == "" {
				continue
			}
			fmt.Fprintf(&b, " lwg %s %s", l, phase)
			if v, ok := ep.LWGView(l); ok {
				fmt.Fprintf(&b, " %s%v", c.view(v.ID), v.Members)
			}
			if h, ok := ep.Mapping(l); ok {
				fmt.Fprintf(&b, " on %s", c.hwg(h))
			}
			// The backlog count is bucketed: the exact depth encodes run
			// history (every send grows it), and an unbounded counter in
			// the digest would make the state graph infinite.
			if n := ep.PreInstallBuffered(l); n > 2 {
				b.WriteString(" buf=2+")
			} else if n > 0 {
				fmt.Fprintf(&b, " buf=%d", n)
			}
			b.WriteByte('\n')
		}
		stack := ep.HWGStack()
		for _, g := range stack.Groups() {
			v, ok := stack.CurrentView(g)
			if !ok {
				fmt.Fprintf(&b, " hwg %s joining\n", c.hwg(g))
				continue
			}
			fmt.Fprintf(&b, " hwg %s %s%v\n", c.hwg(g), c.view(v.ID), v.Members)
		}
	}
	for _, srv := range sortedServerPids(w.servers) {
		db := w.servers[srv].DB()
		fmt.Fprintf(&b, "ns p%v\n", srv)
		for _, l := range db.LWGs() {
			for _, e := range db.Live(l) {
				fmt.Fprintf(&b, " map %s %s -> %s\n", l, c.view(e.View), c.hwg(e.HWG))
			}
		}
	}

	h := fnv.New64a()
	_, _ = h.Write([]byte(b.String()))
	return h.Sum64()
}

func sortedServerPids[V any](m map[ids.ProcessID]V) []ids.ProcessID {
	out := make([]ids.ProcessID, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

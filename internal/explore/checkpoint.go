package explore

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Checkpoint is a resumable sweep: the visited-state set, the memoised
// probe trajectories and the unexplored frontier. It lets CI split one
// scope across bounded slices (run with -budget, save, resume) without
// re-walking visited states.
//
// The v2 text format compresses the two heavy sections. Digest sets are
// sorted, delta-encoded as uvarints (neighbouring digests share no
// structure, but deltas of a sorted 64-bit set are ~8× smaller than the
// raw values), then flate-compressed and base64-armoured. The frontier —
// whose op lists used to dominate checkpoint size, since a BFS frontier
// at depth d holds O(branching^d) prefixes of d ops each — is rendered
// as op text lines and flate-compressed, which squeezes the heavily
// repeated prefixes out. ParseCheckpoint still reads the uncompressed v1
// format, so in-flight sweeps survive the upgrade; v1 files carry no
// flags line and resume with POR and the probe memo off, which is what
// the sweep that wrote them ran.
type Checkpoint struct {
	Scope Scope
	Depth int
	// POR and ProbeMemo record the pruning flags the sweep ran with. They
	// are part of the sweep's identity: the visited set of a POR sweep
	// does not cover the orderings POR skipped, so resuming it with
	// different flags would silently corrupt the sweep.
	POR       bool
	ProbeMemo bool
	Visited   []uint64
	// Memo is the probe-trajectory memo set (ProbeMemo sweeps only).
	Memo     []uint64
	Frontier [][]Op
	// Sleep holds each frontier entry's POR sleep set (por.go), parallel
	// to Frontier. Nil unless the sweep ran with POR and the frontier is
	// non-empty.
	Sleep [][]Op
	Stats EnumStats
}

// EncodeCheckpoint renders the checkpoint in the v2 text format read by
// ParseCheckpoint.
func EncodeCheckpoint(cp *Checkpoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "enumcheckpoint v2\n")
	fmt.Fprintf(&b, "scope %s\n", cp.Scope)
	// Timing is part of scope identity: resuming with different delays
	// would explore a different schedule space against the same visited
	// set, silently corrupting the sweep.
	fmt.Fprintf(&b, "timing %s %s %s\n", cp.Scope.OpDelay, cp.Scope.Settle, cp.Scope.Quiesce)
	fmt.Fprintf(&b, "depth %d\n", cp.Depth)
	fmt.Fprintf(&b, "flags por=%v memo=%v\n", cp.POR, cp.ProbeMemo)
	fmt.Fprintf(&b, "stats %d %d %d %d\n",
		cp.Stats.Visited, cp.Stats.Pruned, cp.Stats.Runs, cp.Stats.Deepest)
	writeB64Section(&b, "visitedz", encodeDigests(cp.Visited))
	writeB64Section(&b, "memoz", encodeDigests(cp.Memo))
	writeB64Section(&b, "frontierz", encodeFrontier(cp.Frontier, cp.Sleep))
	return b.String()
}

// writeB64Section emits the payload as tag-prefixed lines of bounded
// width (an empty payload emits nothing).
func writeB64Section(b *strings.Builder, tag, payload string) {
	const width = 96
	for len(payload) > 0 {
		n := width
		if n > len(payload) {
			n = len(payload)
		}
		b.WriteString(tag)
		b.WriteByte(' ')
		b.WriteString(payload[:n])
		b.WriteByte('\n')
		payload = payload[n:]
	}
}

// encodeDigests renders a sorted digest set: uvarint deltas, flate,
// base64. Empty sets render empty.
func encodeDigests(ds []uint64) string {
	if len(ds) == 0 {
		return ""
	}
	raw := make([]byte, 0, len(ds)*5)
	var tmp [binary.MaxVarintLen64]byte
	prev := uint64(0)
	for _, d := range ds {
		n := binary.PutUvarint(tmp[:], d-prev)
		raw = append(raw, tmp[:n]...)
		prev = d
	}
	return deflateB64(raw)
}

func decodeDigests(payload string) ([]uint64, error) {
	if payload == "" {
		return nil, nil
	}
	raw, err := inflateB64(payload)
	if err != nil {
		return nil, err
	}
	var out []uint64
	prev := uint64(0)
	for len(raw) > 0 {
		d, n := binary.Uvarint(raw)
		if n <= 0 {
			return nil, fmt.Errorf("truncated digest varint")
		}
		prev += d
		out = append(out, prev)
		raw = raw[n:]
	}
	return out, nil
}

// encodeFrontier renders the frontier as one text line per entry — the
// ";"-joined op prefix, then "|" and the ";"-joined sleep set when the
// entry has one — flate'd and base64-armoured: the shared prefixes
// compress away.
func encodeFrontier(frontier, sleep [][]Op) string {
	if len(frontier) == 0 {
		return ""
	}
	var b strings.Builder
	for i, ops := range frontier {
		for j, op := range ops {
			if j > 0 {
				b.WriteByte(';')
			}
			b.WriteString(op.String())
		}
		if i < len(sleep) && len(sleep[i]) > 0 {
			b.WriteByte('|')
			for j, op := range sleep[i] {
				if j > 0 {
					b.WriteByte(';')
				}
				b.WriteString(op.String())
			}
		}
		b.WriteByte('\n')
	}
	return deflateB64([]byte(b.String()))
}

func decodeFrontier(payload string) (frontier, sleep [][]Op, err error) {
	if payload == "" {
		return nil, nil, nil
	}
	raw, err := inflateB64(payload)
	if err != nil {
		return nil, nil, err
	}
	text := string(raw)
	if !strings.HasSuffix(text, "\n") {
		return nil, nil, fmt.Errorf("frontier section not newline-terminated")
	}
	lines := strings.Split(strings.TrimSuffix(text, "\n"), "\n")
	frontier = make([][]Op, 0, len(lines))
	sawSleep := false
	for _, line := range lines {
		opsText, sleepText, hasSleep := strings.Cut(line, "|")
		ops, err := parseFrontierEntry(opsText)
		if err != nil {
			return nil, nil, err
		}
		frontier = append(frontier, ops)
		var sl []Op
		if hasSleep {
			sawSleep = true
			if sl, err = parseFrontierEntry(sleepText); err != nil {
				return nil, nil, err
			}
		}
		sleep = append(sleep, sl)
	}
	if !sawSleep {
		sleep = nil
	}
	return frontier, sleep, nil
}

// parseFrontierEntry parses one ";"-joined op list ("" = the root entry).
func parseFrontierEntry(line string) ([]Op, error) {
	if line == "" {
		return nil, nil
	}
	var ops []Op
	for _, opText := range strings.Split(line, ";") {
		f := strings.Fields(opText)
		if len(f) == 0 || f[0] != "op" {
			return nil, fmt.Errorf("frontier op must start with %q", "op")
		}
		op, err := parseOp(f[1:])
		if err != nil {
			return nil, err
		}
		ops = append(ops, op)
	}
	return ops, nil
}

func deflateB64(raw []byte) string {
	var buf bytes.Buffer
	zw, err := flate.NewWriter(&buf, flate.DefaultCompression)
	if err != nil {
		panic(err) // only fires on an invalid level
	}
	_, _ = zw.Write(raw)
	_ = zw.Close()
	return base64.StdEncoding.EncodeToString(buf.Bytes())
}

func inflateB64(payload string) ([]byte, error) {
	comp, err := base64.StdEncoding.DecodeString(payload)
	if err != nil {
		return nil, err
	}
	zr := flate.NewReader(bytes.NewReader(comp))
	raw, err := io.ReadAll(zr)
	if err != nil {
		return nil, err
	}
	return raw, zr.Close()
}

// ParseCheckpoint reads the EncodeCheckpoint format — the current v2 and
// the uncompressed v1 written by earlier versions.
func ParseCheckpoint(text string) (*Checkpoint, error) {
	cp := &Checkpoint{}
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	line := 0
	version := 0
	var visitedz, memoz, frontierz strings.Builder
	fail := func(msg string) (*Checkpoint, error) {
		return nil, fmt.Errorf("checkpoint line %d: %s", line, msg)
	}
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		if version == 0 {
			if len(fields) != 2 || fields[0] != "enumcheckpoint" {
				return fail(`expected header "enumcheckpoint v1" or "enumcheckpoint v2"`)
			}
			switch fields[1] {
			case "v1":
				version = 1
			case "v2":
				version = 2
			default:
				return fail("unsupported checkpoint version " + strconv.Quote(fields[1]))
			}
			continue
		}
		switch fields[0] {
		case "scope":
			if len(fields) != 2 {
				return fail("scope wants one value")
			}
			s, err := ParseScope(fields[1])
			if err != nil {
				return fail(err.Error())
			}
			cp.Scope = s
		case "timing":
			if len(fields) != 4 {
				return fail("timing wants <opdelay> <settle> <quiesce>")
			}
			ds := make([]time.Duration, 3)
			for i, f := range fields[1:] {
				d, err := time.ParseDuration(f)
				if err != nil {
					return fail(err.Error())
				}
				ds[i] = d
			}
			cp.Scope.OpDelay, cp.Scope.Settle, cp.Scope.Quiesce = ds[0], ds[1], ds[2]
		case "depth":
			if len(fields) != 2 {
				return fail("depth wants one value")
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				return fail(err.Error())
			}
			cp.Depth = n
		case "flags":
			for _, f := range fields[1:] {
				switch f {
				case "por=true":
					cp.POR = true
				case "memo=true":
					cp.ProbeMemo = true
				case "por=false", "memo=false":
				default:
					return fail("unknown flag " + strconv.Quote(f))
				}
			}
		case "stats":
			if len(fields) != 5 {
				return fail("stats wants <visited> <pruned> <runs> <deepest>")
			}
			vals := make([]int, 4)
			for i, f := range fields[1:] {
				n, err := strconv.Atoi(f)
				if err != nil {
					return fail(err.Error())
				}
				vals[i] = n
			}
			cp.Stats = EnumStats{Visited: vals[0], Pruned: vals[1], Runs: vals[2], Deepest: vals[3]}
		case "visited": // v1 uncompressed digests
			for _, f := range fields[1:] {
				d, err := strconv.ParseUint(f, 16, 64)
				if err != nil {
					return fail(err.Error())
				}
				cp.Visited = append(cp.Visited, d)
			}
		case "frontier": // v1 uncompressed op list
			rest := strings.TrimSpace(strings.TrimPrefix(sc.Text(), "frontier"))
			ops, err := parseFrontierEntry(rest)
			if err != nil {
				return fail(err.Error())
			}
			cp.Frontier = append(cp.Frontier, ops)
		case "visitedz", "memoz", "frontierz":
			if len(fields) != 2 {
				return fail(fields[0] + " wants one base64 chunk")
			}
			switch fields[0] {
			case "visitedz":
				visitedz.WriteString(fields[1])
			case "memoz":
				memoz.WriteString(fields[1])
			case "frontierz":
				frontierz.WriteString(fields[1])
			}
		default:
			return fail("unknown directive " + strconv.Quote(fields[0]))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if version == 0 {
		return nil, fmt.Errorf("checkpoint: empty input")
	}
	if cp.Scope.Nodes == 0 {
		return nil, fmt.Errorf("checkpoint: scope not set")
	}
	var err error
	if cp.Visited == nil {
		if cp.Visited, err = decodeDigests(visitedz.String()); err != nil {
			return nil, fmt.Errorf("checkpoint visitedz: %w", err)
		}
	}
	if cp.Memo, err = decodeDigests(memoz.String()); err != nil {
		return nil, fmt.Errorf("checkpoint memoz: %w", err)
	}
	if cp.Frontier == nil {
		if cp.Frontier, cp.Sleep, err = decodeFrontier(frontierz.String()); err != nil {
			return nil, fmt.Errorf("checkpoint frontierz: %w", err)
		}
	}
	return cp, nil
}

package explore

import (
	"plwg/internal/check"
	"plwg/internal/ids"
	"plwg/internal/trace"
)

// maxSteps bounds the simulation work of one run. A protocol bug that
// floods the event queue (a retry storm, a livelock) fails the run as
// incomplete instead of hanging the sweep.
const maxSteps = 4_000_000

// Result is the outcome of running one schedule.
type Result struct {
	// Violations are the detected safety breaches, deterministically
	// ordered. A run "fails" when this is non-empty or Completed is
	// false.
	Violations []check.Violation
	// Completed reports that the whole schedule ran within the step
	// budget (false indicates a livelock or event flood).
	Completed bool
	// World is the checked snapshot (trace, endpoints, naming state).
	World *check.World
}

// Failed reports whether the run violated an invariant or livelocked.
func (r Result) Failed() bool { return len(r.Violations) > 0 || !r.Completed }

// nopUpcalls discards the application upcalls; the checker consumes the
// structured trace instead.
type nopUpcalls struct{}

func (nopUpcalls) View(ids.LWGID, ids.View)              {}
func (nopUpcalls) Data(ids.LWGID, ids.ProcessID, []byte) {}

// Run executes the schedule against the full stack — endpoints, virtual
// synchrony substrate, naming servers, simulated network — and checks
// every safety property at quiescence. It is deterministic: the same
// schedule always yields the same Result.
func Run(s Schedule) Result {
	w := newWorld(s)
	for _, op := range s.Ops {
		w.advance(op.Delay)
		if !w.completed {
			break
		}
		w.apply(op)
	}
	return w.finish()
}

// injectFault suppresses the Drop-th LWG delivery at Fault.Node,
// simulating a process that skipped an upcall. With Drop == 0 the trace
// passes through untouched.
func injectFault(events []trace.Event, f Fault) []trace.Event {
	if f.Drop <= 0 {
		return events
	}
	out := make([]trace.Event, 0, len(events))
	n := 0
	for _, e := range events {
		if e.Layer == "lwg" && e.What == trace.LWGDeliver && e.Node == f.Node {
			n++
			if n == f.Drop {
				continue
			}
		}
		out = append(out, e)
	}
	return out
}

package explore

import (
	"fmt"
	"time"

	"plwg/internal/check"
	"plwg/internal/core"
	"plwg/internal/ids"
	"plwg/internal/naming"
	"plwg/internal/netsim"
	"plwg/internal/sim"
	"plwg/internal/trace"
)

// maxSteps bounds the simulation work of one run. A protocol bug that
// floods the event queue (a retry storm, a livelock) fails the run as
// incomplete instead of hanging the sweep.
const maxSteps = 4_000_000

// Result is the outcome of running one schedule.
type Result struct {
	// Violations are the detected safety breaches, deterministically
	// ordered. A run "fails" when this is non-empty or Completed is
	// false.
	Violations []check.Violation
	// Completed reports that the whole schedule ran within the step
	// budget (false indicates a livelock or event flood).
	Completed bool
	// World is the checked snapshot (trace, endpoints, naming state).
	World *check.World
}

// Failed reports whether the run violated an invariant or livelocked.
func (r Result) Failed() bool { return len(r.Violations) > 0 || !r.Completed }

// nopUpcalls discards the application upcalls; the checker consumes the
// structured trace instead.
type nopUpcalls struct{}

func (nopUpcalls) View(ids.LWGID, ids.View)              {}
func (nopUpcalls) Data(ids.LWGID, ids.ProcessID, []byte) {}

// Run executes the schedule against the full stack — endpoints, virtual
// synchrony substrate, naming servers, simulated network — and checks
// every safety property at quiescence. It is deterministic: the same
// schedule always yields the same Result.
func Run(s Schedule) Result {
	eng := sim.New(s.Seed)
	nw := netsim.New(eng, netsim.DefaultParams())
	tracer := &trace.Recorder{}

	cfg := core.DefaultConfig()
	cfg.PolicyInterval = time.Hour // policy runs only via OpPolicy
	// Short mapping leases so mappings orphaned by crashed views expire
	// within the quiescence window (genealogy GC cannot collect them).
	cfg.MappingRefreshInterval = 2 * time.Second
	nsCfg := naming.Config{MappingTTL: 8 * time.Second}

	serverPids := s.Servers()
	eps := make(map[ids.ProcessID]*core.Endpoint, s.Nodes)
	servers := make(map[ids.ProcessID]*naming.Server)
	for i := 0; i < s.Nodes; i++ {
		pid := ids.ProcessID(i)
		mux := netsim.NewMux()
		eps[pid] = core.New(core.Params{
			Net:     nw,
			PID:     pid,
			Servers: serverPids,
			Config:  cfg,
			Naming:  nsCfg,
			Upcalls: nopUpcalls{},
			Tracer:  tracer,
		}, mux)
		for _, sp := range serverPids {
			if sp == pid {
				srv := naming.NewServer(naming.ServerParams{
					Net: nw, PID: pid, Peers: serverPids, Config: nsCfg, Tracer: tracer,
				})
				mux.Handle(naming.ServerPrefix, srv.HandleMessage)
				srv.Start()
				servers[pid] = srv
			}
		}
		nw.AddNode(pid, mux.Handler())
	}

	isServer := make(map[ids.ProcessID]bool)
	for _, p := range serverPids {
		isServer[p] = true
	}

	memberOf := make(map[ids.LWGID]map[ids.ProcessID]bool)
	for _, l := range s.LWGs {
		memberOf[l] = make(map[ids.ProcessID]bool)
	}
	crashed := make(map[ids.ProcessID]bool)

	completed := true
	advance := func(d time.Duration) {
		if !eng.RunForCapped(d, maxSteps-eng.Steps()) {
			completed = false
		}
	}

	known := func(l ids.LWGID) bool { return memberOf[l] != nil }
	msgID := 0
	for _, op := range s.Ops {
		advance(op.Delay)
		if !completed {
			break
		}
		switch op.Kind {
		case OpJoin:
			if ep := eps[op.P]; ep != nil && known(op.LWG) && !crashed[op.P] && !memberOf[op.LWG][op.P] {
				if err := ep.Join(op.LWG); err == nil {
					memberOf[op.LWG][op.P] = true
				}
			}
		case OpLeave:
			if ep := eps[op.P]; ep != nil && known(op.LWG) && !crashed[op.P] && memberOf[op.LWG][op.P] {
				_ = ep.Leave(op.LWG)
				delete(memberOf[op.LWG], op.P)
			}
		case OpSend:
			if ep := eps[op.P]; ep != nil && known(op.LWG) && !crashed[op.P] && memberOf[op.LWG][op.P] {
				msgID++
				_ = ep.Send(op.LWG, []byte(fmt.Sprintf("m%d", msgID)))
			}
		case OpPart:
			if op.Cut > 0 && op.Cut < s.Nodes {
				var a, b []netsim.NodeID
				for i := 0; i < s.Nodes; i++ {
					if i < op.Cut {
						a = append(a, ids.ProcessID(i))
					} else {
						b = append(b, ids.ProcessID(i))
					}
				}
				nw.SetPartitions(a, b)
			}
		case OpHeal:
			nw.Heal()
		case OpCrash:
			if int(op.P) < s.Nodes && !isServer[op.P] && !crashed[op.P] {
				nw.Crash(op.P)
				crashed[op.P] = true
				for _, l := range s.LWGs {
					delete(memberOf[l], op.P)
				}
			}
		case OpPolicy:
			// Process order, so message emission is deterministic.
			for i := 0; i < s.Nodes; i++ {
				if p := ids.ProcessID(i); !crashed[p] {
					eps[p].RunPolicyNow()
				}
			}
		}
	}

	// Quiesce: heal everything and let reconciliation converge.
	if completed {
		nw.Heal()
		advance(s.Quiesce)
	}

	expected := make(map[ids.LWGID]ids.Members)
	for _, l := range sortedGroups(memberOf) {
		var ms []ids.ProcessID
		for p := range memberOf[l] {
			ms = append(ms, p)
		}
		expected[l] = ids.NewMembers(ms...)
	}

	procs := make(map[ids.ProcessID]check.Process, len(eps))
	for p, ep := range eps {
		procs[p] = ep
	}
	dbs := make(map[ids.ProcessID]*naming.DB, len(servers))
	for p, srv := range servers {
		dbs[p] = srv.DB()
	}
	world := &check.World{
		Events:   injectFault(tracer.Events, s.Fault),
		Procs:    procs,
		Servers:  dbs,
		Expected: expected,
		Crashed:  crashed,
	}

	res := Result{Completed: completed, World: world}
	if completed {
		res.Violations = check.Run(world)
	}
	return res
}

// injectFault suppresses the Drop-th LWG delivery at Fault.Node,
// simulating a process that skipped an upcall. With Drop == 0 the trace
// passes through untouched.
func injectFault(events []trace.Event, f Fault) []trace.Event {
	if f.Drop <= 0 {
		return events
	}
	out := make([]trace.Event, 0, len(events))
	n := 0
	for _, e := range events {
		if e.Layer == "lwg" && e.What == trace.LWGDeliver && e.Node == f.Node {
			n++
			if n == f.Drop {
				continue
			}
		}
		out = append(out, e)
	}
	return out
}
